// Command gaiactl queries a GAIA accounting database (the CSV store
// written by gaia-sim -db), in the spirit of Slurm's sacct: filter job
// records and aggregate carbon, cost, waiting and placement by run,
// queue, user, region or workload.
//
// Examples:
//
//	gaia-sim -policy carbon-time -db runs.csv
//	gaia-sim -policy nowait      -db runs.csv
//	gaiactl -db runs.csv -summary -by run
//	gaiactl -db runs.csv -summary -by user -queue short
//	gaiactl -db runs.csv -jobs -run Carbon-Time -user u01
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/carbonsched/gaia/internal/accountdb"
	"github.com/carbonsched/gaia/internal/simtime"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "gaiactl: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gaiactl", flag.ContinueOnError)
	var (
		dbPath   = fs.String("db", "", "accounting CSV written by gaia-sim -db (required)")
		summary  = fs.Bool("summary", false, "print group aggregates")
		jobs     = fs.Bool("jobs", false, "print matching job records")
		by       = fs.String("by", "run", "summary grouping: run|queue|user|region|workload")
		runLabel = fs.String("run", "", "filter: run label")
		region   = fs.String("region", "", "filter: region")
		queue    = fs.String("queue", "", "filter: queue")
		user     = fs.String("user", "", "filter: user")
		limit    = fs.Int("limit", 20, "max job rows printed with -jobs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" {
		return fmt.Errorf("-db is required")
	}
	f, err := os.Open(*dbPath)
	if err != nil {
		return err
	}
	defer f.Close()
	db := &accountdb.DB{}
	if err := db.Load(f); err != nil {
		return err
	}

	filter := accountdb.Filter{Run: *runLabel, Region: *region, Queue: *queue, User: *user}
	switch {
	case *summary:
		groups, err := db.GroupAggregate(filter, *by)
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %6s %10s %10s %9s %9s %8s %6s\n",
			*by, "jobs", "cpu·h", "carbon_kg", "saved_kg", "cost$", "wait_h", "evict")
		for _, g := range groups {
			fmt.Printf("%-24s %6d %10.1f %10.3f %9.3f %9.2f %8.2f %6d\n",
				g.Key, g.Jobs, g.CPUHours, g.CarbonKg, g.SavedKg, g.UsageCost, g.MeanWaitH, g.Evictions)
		}
		return nil
	case *jobs:
		recs := db.Select(filter)
		fmt.Printf("%-20s %6s %-6s %-6s %5s %9s %9s %9s\n",
			"run", "job", "queue", "user", "cpus", "arrival", "wait", "carbon_g")
		for i, r := range recs {
			if i >= *limit {
				fmt.Printf("... %d more (raise -limit)\n", len(recs)-i)
				break
			}
			fmt.Printf("%-20s %6d %-6s %-6s %5d %9s %9s %9.2f\n",
				r.Run, r.JobID, r.Queue, r.User, r.CPUs,
				simtime.Time(r.ArrivalMin).String(),
				simtime.Duration(r.WaitingMin).String(), r.CarbonG)
		}
		return nil
	default:
		return fmt.Errorf("pick -summary or -jobs")
	}
}
