package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/carbonsched/gaia/internal/accountdb"
)

func writeTestDB(t *testing.T) string {
	t.Helper()
	db := &accountdb.DB{}
	db.Append(
		accountdb.Record{Run: "Carbon-Time", Region: "SA-AU", Workload: "alibaba",
			JobID: 0, Queue: "short", User: "u01", CPUs: 1, WaitingMin: 120,
			CarbonG: 100, BaselineCarbonG: 150, UsageCost: 1, OnDemandCPUH: 1},
		accountdb.Record{Run: "NoWait", Region: "SA-AU", Workload: "alibaba",
			JobID: 0, Queue: "long", User: "u02", CPUs: 2, WaitingMin: 0,
			CarbonG: 300, BaselineCarbonG: 300, UsageCost: 4, OnDemandCPUH: 4},
	)
	path := filepath.Join(t.TempDir(), "runs.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := db.Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummaryByRun(t *testing.T) {
	path := writeTestDB(t)
	if err := run([]string{"-db", path, "-summary", "-by", "run"}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryByUserFiltered(t *testing.T) {
	path := writeTestDB(t)
	if err := run([]string{"-db", path, "-summary", "-by", "user", "-queue", "short"}); err != nil {
		t.Fatal(err)
	}
}

func TestJobsListing(t *testing.T) {
	path := writeTestDB(t)
	if err := run([]string{"-db", path, "-jobs", "-run", "NoWait", "-limit", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	path := writeTestDB(t)
	cases := [][]string{
		{},                          // no db
		{"-db", "/nonexistent.csv"}, // missing file
		{"-db", path},               // neither -summary nor -jobs
		{"-db", path, "-summary", "-by", "bogus"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}
