// Command gaia-serve runs the carbon-aware scheduling advisory service:
// a long-running HTTP server answering online "when should this job
// start?" queries (POST /v1/advise) and full what-if simulations
// (POST /v1/simulate) over the same policy implementations, oracle
// tables and run cache the offline tools use.
//
// Examples:
//
//	# Serve on the default port with a 14-day advisory horizon:
//	gaia-serve
//
//	# Persistent simulation cache and tighter load shedding:
//	gaia-serve -cache-dir /var/cache/gaia -max-concurrent 8 -queue-depth 32
//
//	# Ask for advice:
//	curl -s localhost:8404/v1/advise -d '{"policy":"carbon-time","region":"CA-US","length_minutes":120}'
//
// SIGINT/SIGTERM drain gracefully: queued requests are shed with 503,
// in-flight work finishes (up to -drain-timeout), then the listener
// closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/carbonsched/gaia/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "gaia-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gaia-serve", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8404", "listen address")
		traceDays     = fs.Int("trace-days", 14, "advisory carbon-trace horizon in days")
		maxConcurrent = fs.Int("max-concurrent", 4, "requests doing work at once")
		queueDepth    = fs.Int("queue-depth", 64, "requests waiting beyond max-concurrent before 429s")
		adviseTO      = fs.Duration("advise-timeout", 2*time.Second, "per-request /v1/advise deadline")
		simulateTO    = fs.Duration("simulate-timeout", 120*time.Second, "per-request /v1/simulate deadline")
		drainTO       = fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
		retryAfter    = fs.Duration("retry-after", time.Second, "Retry-After hint on shed responses")
		cacheDir      = fs.String("cache-dir", "", "simulation result cache directory (empty = memory only)")
		batchTO       = fs.Duration("batch-timeout", 30*time.Second, "per-request /v1/advise/batch deadline")
		fleetSelf     = fs.String("fleet-self", "", "this replica's base URL in the shared cache tier (http://host:port; empty with -fleet-peers = pure client)")
		fleetPeers    = fs.String("fleet-peers", "", "comma-separated base URLs of the other cache-tier members")
		debugAddr     = fs.String("debug-addr", "", "optional net/http/pprof listen address (e.g. localhost:6060; empty = disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := serve.New(serve.Config{
		Addr:            *addr,
		TraceDays:       *traceDays,
		MaxConcurrent:   *maxConcurrent,
		QueueDepth:      *queueDepth,
		AdviseTimeout:   *adviseTO,
		BatchTimeout:    *batchTO,
		SimulateTimeout: *simulateTO,
		RetryAfter:      *retryAfter,
		CacheDir:        *cacheDir,
	})
	if err != nil {
		return err
	}
	if *fleetSelf != "" || *fleetPeers != "" {
		var peers []string
		for _, p := range strings.Split(*fleetPeers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		if err := srv.ConfigureFleet(strings.TrimSpace(*fleetSelf), peers); err != nil {
			return err
		}
	}

	// The profiling endpoints live on their own listener so they are never
	// reachable through the public address: bind -debug-addr to localhost
	// (or a management network) and the service port stays clean.
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer ln.Close()
		go func() {
			if err := http.Serve(ln, http.DefaultServeMux); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("gaia-serve: debug listener: %v", err)
			}
		}()
		log.Printf("gaia-serve: pprof on http://%s/debug/pprof/", ln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	log.Printf("gaia-serve: listening on %s (advisory horizon %d days)", *addr, *traceDays)

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	log.Printf("gaia-serve: draining (up to %v)", *drainTO)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("gaia-serve: drained, bye")
	return nil
}
