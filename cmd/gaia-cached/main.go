// Command gaia-cached runs a standalone node of the shared simulation-
// result cache tier: one fleet.BlobStore behind the minimal HTTP shard
// protocol (GET/PUT /v1/cache/{fingerprint}, GET /v1/cache/stats), with
// nothing else — no simulator, no oracle tables, no admission gate.
//
// Use it to give a gaia-serve fleet cache capacity that survives replica
// deploys: point every replica's -fleet-peers at a set of gaia-cached
// nodes (leaving -fleet-self empty makes the replicas pure clients), and
// cache ownership stays put while the serving tier churns.
//
//	# 1 GB in-memory shard, persisted under /var/cache/gaia-cached:
//	gaia-cached -addr :8405 -max-bytes 1073741824 -dir /var/cache/gaia-cached
//
// SIGINT/SIGTERM shut the listener down cleanly; with -dir set the shard
// contents come back on restart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/carbonsched/gaia/internal/fleet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "gaia-cached: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gaia-cached", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8405", "listen address")
		dir      = fs.String("dir", "", "write-through disk directory (empty = memory only)")
		maxBytes = fs.Int64("max-bytes", fleet.DefaultMaxBytes, "in-memory shard byte budget")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	store := fleet.NewBlobStore(*maxBytes)
	if *dir != "" {
		if err := store.SetDir(*dir); err != nil {
			return err
		}
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           fleet.NewCacheServer(store).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	log.Printf("gaia-cached: serving shard on %s (budget %d bytes)", *addr, *maxBytes)

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	st := store.Stats()
	log.Printf("gaia-cached: bye (%d entries, %d bytes, %d hits, %d misses)",
		st.Entries, st.Bytes, st.Hits, st.Misses)
	return nil
}
