// Command gaia-bench converts `go test -bench` output into a
// machine-readable JSON document, so benchmark numbers can be committed
// alongside the code they measure and diffed across PRs.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | gaia-bench -label pr2 -o BENCH.json
//
// The converter keeps the environment headers (goos/goarch/cpu), splits
// the canonical ns/op, B/op and allocs/op columns into typed fields, and
// collects any custom b.ReportMetric units (speedup, jobs/op, ...) into a
// per-benchmark metrics map. No timestamps are recorded: reruns on the
// same machine producing the same numbers yield byte-identical files.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one result line of `go test -bench` output.
type Benchmark struct {
	// Name is the benchmark (and sub-benchmark) name without the
	// Benchmark prefix and the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Package is the import path from the preceding pkg: header.
	Package string `json:"package"`
	// Procs is the GOMAXPROCS suffix of the name (1 when absent).
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every remaining value/unit pair (custom
	// b.ReportMetric units such as "speedup" or "jobs/op").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the document gaia-bench emits.
type Report struct {
	Label      string      `json:"label,omitempty"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		label = flag.String("label", "", "free-form label recorded in the report (e.g. a PR id)")
		out   = flag.String("o", "", "output path (default stdout)")
	)
	flag.Parse()

	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gaia-bench: %v\n", err)
		os.Exit(1)
	}
	report.Label = *label
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "gaia-bench: no benchmark lines on stdin")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gaia-bench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "gaia-bench: %v\n", err)
		os.Exit(1)
	}
}

// parse reads go-test benchmark output: environment headers, one line per
// benchmark, PASS/ok trailers (ignored).
func parse(r io.Reader) (*Report, error) {
	report := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line, pkg)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	return report, sc.Err()
}

// parseLine splits one result line: name, iteration count, then value/unit
// pairs.
func parseLine(line, pkg string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line")
	}
	b := Benchmark{Package: pkg, Procs: 1}
	b.Name = strings.TrimPrefix(fields[0], "Benchmark")
	// The trailing -N is the GOMAXPROCS the benchmark ran at.
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iteration count: %w", err)
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}
