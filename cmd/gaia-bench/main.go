// Command gaia-bench converts `go test -bench` output into a
// machine-readable JSON document, so benchmark numbers can be committed
// alongside the code they measure and diffed across PRs.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | gaia-bench -label pr3 -o BENCH.json
//	go test -run='^$' -bench=. -benchmem ./... | gaia-bench -baseline BENCH_PR3.json
//
// The converter keeps the environment headers (goos/goarch/cpu), splits
// the canonical ns/op, B/op and allocs/op columns into typed fields, and
// collects any custom b.ReportMetric units (speedup, jobs/op, ...) into a
// per-benchmark metrics map. Each report is stamped with the provenance
// of the build: git commit, Go version and GOMAXPROCS. No timestamps are
// recorded: reruns on the same machine at the same commit producing the
// same numbers yield byte-identical files.
//
// With -baseline the parsed report is additionally compared against a
// previously committed report: any benchmark present in both whose ns/op
// grew by more than -tolerance (default 15%) is flagged, and the command
// exits nonzero — the CI gate against performance regressions sneaking
// into a PR.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one result line of `go test -bench` output.
type Benchmark struct {
	// Name is the benchmark (and sub-benchmark) name without the
	// Benchmark prefix and the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Package is the import path from the preceding pkg: header.
	Package string `json:"package"`
	// Procs is the GOMAXPROCS suffix of the name (1 when absent).
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every remaining value/unit pair (custom
	// b.ReportMetric units such as "speedup" or "jobs/op").
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Path records which simulation run path the benchmark exercised
	// ("direct", "direct+plan", "wheel/engine" or "heap/engine"), derived
	// from the sub-benchmark name under -pathmix. Empty when the name does
	// not declare a path (or -pathmix is off), so unrelated benchmarks
	// stay unstamped.
	Path string `json:"path,omitempty"`
}

// Report is the document gaia-bench emits.
type Report struct {
	Label string `json:"label,omitempty"`
	// Commit, GoVersion and MaxProcs record where the numbers came from:
	// the git revision of the working tree (suffixed "-dirty" when it has
	// uncommitted changes), the toolchain, and the parallelism the
	// benchmarks ran at.
	Commit     string      `json:"commit,omitempty"`
	GoVersion  string      `json:"go_version,omitempty"`
	MaxProcs   int         `json:"gomaxprocs,omitempty"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		label     = flag.String("label", "", "free-form label recorded in the report (e.g. a PR id)")
		out       = flag.String("o", "", "output path (default stdout)")
		baseline  = flag.String("baseline", "", "committed report to compare against; exit nonzero on ns/op regressions")
		tolerance = flag.Float64("tolerance", 15, "ns/op growth in percent tolerated before a benchmark counts as regressed")
		pathmix   = flag.Bool("pathmix", false, "stamp each benchmark with the run path its name declares (direct, wheel/engine, heap/engine, elastic/engine)")
	)
	flag.Parse()

	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gaia-bench: %v\n", err)
		os.Exit(1)
	}
	if *pathmix {
		for i := range report.Benchmarks {
			report.Benchmarks[i].Path = pathOf(report.Benchmarks[i].Name)
		}
	}
	report.Label = *label
	report.Commit = gitCommit()
	report.GoVersion = runtime.Version()
	report.MaxProcs = runtime.GOMAXPROCS(0)
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "gaia-bench: no benchmark lines on stdin")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gaia-bench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" && *baseline == "" {
		os.Stdout.Write(buf)
	}
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "gaia-bench: %v\n", err)
			os.Exit(1)
		}
	}
	if *baseline != "" {
		regressed, err := compare(report, *baseline, *tolerance, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gaia-bench: %v\n", err)
			os.Exit(1)
		}
		if regressed {
			os.Exit(2)
		}
	}
}

// pathOf derives the simulation run path from a benchmark name's
// sub-benchmark segments. The convention: a segment named "direct" marks
// the direct-execution path; "plan" the direct path replaying a cached
// decision plan; "engine" or "wheel" the timing-wheel event engine;
// "heap" the reference heap queue (an engine variant by definition);
// "elastic" the event engine driving malleable or DAG jobs through the
// hourly reallocation loop.
// Names declaring no path return "" and stay unstamped — most benchmarks
// measure something other than the run path.
func pathOf(name string) string {
	for _, seg := range strings.Split(name, "/") {
		switch seg {
		case "direct":
			return "direct"
		case "plan":
			return "direct+plan"
		case "engine", "wheel":
			return "wheel/engine"
		case "heap":
			return "heap/engine"
		case "elastic":
			return "elastic/engine"
		}
	}
	return ""
}

// gitCommit returns the working tree's revision, "-dirty"-suffixed when
// there are uncommitted changes, or "" outside a git checkout.
func gitCommit() string {
	rev, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	commit := strings.TrimSpace(string(rev))
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil &&
		len(strings.TrimSpace(string(status))) > 0 {
		commit += "-dirty"
	}
	return commit
}

// compare prints a per-benchmark delta table for every benchmark present
// in both reports and returns whether any exceeded the tolerated ns/op
// growth. Deltas beyond the tolerance in the other direction are marked
// "improved" (they never gate, but make wins visible in CI logs), and a
// geomean summary line aggregates the overall movement. Benchmarks only
// one side knows are listed but never gate.
func compare(current *Report, baselinePath string, tolerancePct float64, w io.Writer) (bool, error) {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return false, err
	}
	var base Report
	if err := json.Unmarshal(buf, &base); err != nil {
		return false, fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	baseByName := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseByName[b.Package+"."+b.Name] = b
	}
	regressed := false
	logRatioSum, compared := 0.0, 0
	fmt.Fprintf(w, "comparing against %s (label %q, commit %s), tolerance +%.0f%% ns/op\n",
		baselinePath, base.Label, base.Commit, tolerancePct)
	for _, b := range current.Benchmarks {
		old, ok := baseByName[b.Package+"."+b.Name]
		if !ok {
			fmt.Fprintf(w, "  %-40s %12.0f ns/op  (new, not in baseline)\n", b.Name, b.NsPerOp)
			continue
		}
		deltaPct := 0.0
		if old.NsPerOp > 0 {
			deltaPct = 100 * (b.NsPerOp - old.NsPerOp) / old.NsPerOp
			if b.NsPerOp > 0 {
				logRatioSum += math.Log(b.NsPerOp / old.NsPerOp)
				compared++
			}
		}
		verdict := "ok"
		switch {
		case deltaPct > tolerancePct:
			verdict = "REGRESSED"
			regressed = true
		case deltaPct < -tolerancePct:
			verdict = "improved"
		}
		fmt.Fprintf(w, "  %-40s %12.0f -> %12.0f ns/op  %+7.1f%%  %s\n",
			b.Name, old.NsPerOp, b.NsPerOp, deltaPct, verdict)
	}
	if compared > 0 {
		geomeanPct := 100 * (math.Exp(logRatioSum/float64(compared)) - 1)
		fmt.Fprintf(w, "geomean ns/op delta: %+.1f%% across %d benchmarks\n", geomeanPct, compared)
	} else {
		// Nothing overlapped (every benchmark is new, or the baseline ran
		// a disjoint pattern): say so instead of silently omitting the
		// summary — and never divide by the zero count.
		fmt.Fprintf(w, "geomean ns/op delta: n/a (no benchmarks in common with the baseline)\n")
	}
	if regressed {
		fmt.Fprintf(w, "FAIL: ns/op regressions beyond +%.0f%%\n", tolerancePct)
	}
	return regressed, nil
}

// parse reads go-test benchmark output: environment headers, one line per
// benchmark, PASS/ok trailers (ignored).
func parse(r io.Reader) (*Report, error) {
	report := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line, pkg)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	return dedupeFastest(report), sc.Err()
}

// dedupeFastest collapses repeated samples of one benchmark (go test
// -count=N) into the fastest one — minimum ns/op is the standard
// noise-robust estimator, and it keeps committed snapshots and regression
// comparisons stable on shared machines.
func dedupeFastest(report *Report) *Report {
	seen := make(map[string]int)
	out := report.Benchmarks[:0]
	for _, b := range report.Benchmarks {
		key := fmt.Sprintf("%s.%s-%d", b.Package, b.Name, b.Procs)
		if i, ok := seen[key]; ok {
			if b.NsPerOp < out[i].NsPerOp {
				out[i] = b
			}
			continue
		}
		seen[key] = len(out)
		out = append(out, b)
	}
	report.Benchmarks = out
	return report
}

// parseLine splits one result line: name, iteration count, then value/unit
// pairs.
func parseLine(line, pkg string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line")
	}
	b := Benchmark{Package: pkg, Procs: 1}
	b.Name = strings.TrimPrefix(fields[0], "Benchmark")
	// The trailing -N is the GOMAXPROCS the benchmark ran at.
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iteration count: %w", err)
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}
