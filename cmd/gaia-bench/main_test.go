package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: example.com/mod
cpu: Test CPU
BenchmarkFast-8     	    1000	      1200 ns/op	     512 B/op	       3 allocs/op
BenchmarkFast-8     	    1000	      1000 ns/op	     512 B/op	       3 allocs/op
BenchmarkCustom     	      10	    500000 ns/op	        42.5 jobs/op
PASS
ok  	example.com/mod	1.234s
`

func TestParseAndDedupe(t *testing.T) {
	report, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if report.GoOS != "linux" || report.CPU != "Test CPU" {
		t.Errorf("headers = %q %q", report.GoOS, report.CPU)
	}
	if len(report.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2 after dedupe", len(report.Benchmarks))
	}
	fast := report.Benchmarks[0]
	if fast.Name != "Fast" || fast.Procs != 8 {
		t.Errorf("name/procs = %q/%d", fast.Name, fast.Procs)
	}
	// -count runs collapse to the fastest sample.
	if fast.NsPerOp != 1000 || fast.BytesPerOp != 512 || fast.AllocsPerOp != 3 {
		t.Errorf("fast = %+v", fast)
	}
	custom := report.Benchmarks[1]
	if custom.Metrics["jobs/op"] != 42.5 {
		t.Errorf("custom metrics = %v", custom.Metrics)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	baseline := `{"label":"old","benchmarks":[
		{"name":"Fast","package":"example.com/mod","ns_per_op":1000},
		{"name":"Custom","package":"example.com/mod","ns_per_op":500000}]}`
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	current, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	regressed, err := compare(current, path, 15, &out)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Errorf("flat numbers flagged as regression:\n%s", out.String())
	}

	// Inflate one benchmark past the tolerance.
	current.Benchmarks[0].NsPerOp = 1200
	out.Reset()
	regressed, err = compare(current, path, 15, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Errorf("+20%% ns/op not flagged:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("report lacks REGRESSED marker:\n%s", out.String())
	}
	// The delta column carries the signed growth, not just the verdict.
	if !strings.Contains(out.String(), "+20.0%") {
		t.Errorf("report lacks signed delta column:\n%s", out.String())
	}

	// A benchmark missing from the baseline never gates.
	current.Benchmarks[0].NsPerOp = 1000
	current.Benchmarks[0].Name = "Brand-New"
	out.Reset()
	regressed, err = compare(current, path, 15, &out)
	if err != nil || regressed {
		t.Errorf("new benchmark gated: regressed=%v err=%v", regressed, err)
	}
}

func TestCompareMarksImprovementsAndGeomean(t *testing.T) {
	baseline := `{"label":"old","benchmarks":[
		{"name":"Fast","package":"example.com/mod","ns_per_op":2000},
		{"name":"Custom","package":"example.com/mod","ns_per_op":500000}]}`
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	current, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}

	// Fast halved (1000 vs 2000); Custom is flat. Improvements must be
	// visible but never gate.
	var out strings.Builder
	regressed, err := compare(current, path, 15, &out)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Errorf("improvement flagged as regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "-50.0%") || !strings.Contains(out.String(), "improved") {
		t.Errorf("report lacks improved marker with signed delta:\n%s", out.String())
	}
	// geomean of (0.5, 1.0) is sqrt(0.5) ≈ 0.7071 → -29.3%.
	if !strings.Contains(out.String(), "geomean ns/op delta: -29.3% across 2 benchmarks") {
		t.Errorf("report lacks geomean summary:\n%s", out.String())
	}
}

// TestPathOf pins the -pathmix naming convention: sub-benchmark segments
// declare the run path; anything else stays unstamped.
func TestPathOf(t *testing.T) {
	cases := []struct{ name, want string }{
		{"MillionJobRun/streaming", ""},
		{"MillionJobRun/streaming/engine", "wheel/engine"},
		{"DirectRun/direct", "direct"},
		{"DirectRun/engine", "wheel/engine"},
		{"ReservedSweepPlanReuse/plan", "direct+plan"},
		{"ReservedSweepPlanReuse/direct", "direct"},
		{"EventCoreMillionJobs/wheel", "wheel/engine"},
		{"ElasticYear/elastic", "elastic/engine"},
		{"DAGCriticalPath/elastic", "elastic/engine"},
		{"EventCoreMillionJobs/heap", "heap/engine"},
		{"SchedulerThroughput", ""},
		{"Chatty/direction", ""}, // substring of a segment must not match
		{"Suite/elasticity", ""}, // likewise for the elastic segment
		{"Suite/planner", ""},    // likewise for the plan segment
	}
	for _, tc := range cases {
		if got := pathOf(tc.name); got != tc.want {
			t.Errorf("pathOf(%q) = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestCompareDisjointBaseline pins the degenerate comparison: when no
// benchmark overlaps the baseline (all new), every row is listed as new,
// nothing gates, and the geomean line reports the empty overlap instead
// of dividing by zero.
func TestCompareDisjointBaseline(t *testing.T) {
	baseline := `{"label":"old","benchmarks":[
		{"name":"Retired","package":"example.com/mod","ns_per_op":2000}]}`
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	current, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	regressed, err := compare(current, path, 15, &out)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Errorf("disjoint baseline flagged a regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "(new, not in baseline)") {
		t.Errorf("report lacks new-benchmark rows:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "geomean ns/op delta: n/a (no benchmarks in common with the baseline)") {
		t.Errorf("report lacks the empty-overlap geomean line:\n%s", out.String())
	}
}

// TestPathmixStamping checks the end-to-end stamp: parse output with path
// segments, stamp, and confirm only declaring benchmarks carry a path.
func TestPathmixStamping(t *testing.T) {
	out := `pkg: example.com/mod
BenchmarkRun/direct-8     	      10	 100 ns/op
BenchmarkRun/engine-8     	      10	 200 ns/op
BenchmarkOther-8          	      10	 300 ns/op
`
	report, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	for i := range report.Benchmarks {
		report.Benchmarks[i].Path = pathOf(report.Benchmarks[i].Name)
	}
	want := map[string]string{"Run/direct": "direct", "Run/engine": "wheel/engine", "Other": ""}
	for _, b := range report.Benchmarks {
		if b.Path != want[b.Name] {
			t.Errorf("%s stamped %q, want %q", b.Name, b.Path, want[b.Name])
		}
	}
}
