// Command gaia-load drives a gaia-serve replica set to saturation and
// reports what the fleet did under the pressure: the client-side latency
// distribution per endpoint, how much load was shed (429/503) and how the
// adaptive Retry-After hints moved, plus the server-side counters that
// explain the result — coalescing roles and cache-tier outcomes scraped
// from each replica's /metrics before and after the run.
//
// Two arrival models, mixable:
//
//   - Closed loop (-rate 0): -concurrency workers each keep exactly one
//     request in flight, so offered load tracks service rate and the run
//     measures the fleet's capacity.
//   - Open loop (-rate N): arrivals fire at N requests/second fleet-wide
//     regardless of completions — the model under which queues actually
//     build and shedding engages.
//
// Examples:
//
//	# Saturate two replicas for 30 s with the default advise-heavy mix:
//	gaia-load -targets http://a:8404,http://b:8404 -duration 30s -concurrency 64
//
//	# Open-loop overload, profile written for later comparison:
//	gaia-load -targets http://a:8404 -rate 500 -duration 10s -out profile.json
//
//	# Self-contained two-replica fleet smoke test (used by CI under -race):
//	gaia-load -smoke
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/carbonsched/gaia/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "gaia-load: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	targets     []string
	duration    time.Duration
	concurrency int
	rate        float64
	mix         map[string]int
	batchJobs   int
	seed        int64
	out         string
}

func run(args []string) error {
	fs := flag.NewFlagSet("gaia-load", flag.ContinueOnError)
	var (
		targets     = fs.String("targets", "", "comma-separated replica base URLs")
		duration    = fs.Duration("duration", 10*time.Second, "how long to generate load")
		concurrency = fs.Int("concurrency", 16, "closed-loop workers (in-flight requests)")
		rate        = fs.Float64("rate", 0, "open-loop arrivals per second fleet-wide (0 = closed loop)")
		mix         = fs.String("mix", "advise:8,batch:1,simulate:1", "endpoint weights, e.g. advise:8,batch:1,simulate:1")
		batchJobs   = fs.Int("batch-jobs", 256, "jobs per /v1/advise/batch request")
		seed        = fs.Int64("seed", 1, "request-generation seed")
		out         = fs.String("out", "", "write the JSON profile here (default stdout)")
		smoke       = fs.Bool("smoke", false, "run a self-contained two-replica fleet smoke test and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	weights, err := parseMix(*mix)
	if err != nil {
		return err
	}
	opts := options{
		duration:    *duration,
		concurrency: *concurrency,
		rate:        *rate,
		mix:         weights,
		batchJobs:   *batchJobs,
		seed:        *seed,
		out:         *out,
	}
	if *smoke {
		return runSmoke(opts)
	}
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			opts.targets = append(opts.targets, strings.TrimRight(t, "/"))
		}
	}
	if len(opts.targets) == 0 {
		return errors.New("no -targets given (or use -smoke)")
	}
	profile, err := loadRun(opts)
	if err != nil {
		return err
	}
	return writeProfile(profile, opts.out)
}

func parseMix(s string) (map[string]int, error) {
	weights := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, w, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("bad -mix element %q (want endpoint:weight)", part)
		}
		n, err := strconv.Atoi(w)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -mix weight in %q", part)
		}
		switch name {
		case "advise", "batch", "simulate":
		default:
			return nil, fmt.Errorf("unknown -mix endpoint %q (want advise, batch or simulate)", name)
		}
		weights[name] += n
	}
	total := 0
	for _, n := range weights {
		total += n
	}
	if total == 0 {
		return nil, errors.New("-mix has zero total weight")
	}
	return weights, nil
}

// Profile is the run's result artifact: everything needed to compare two
// runs (or two builds) of the same scenario.
type Profile struct {
	Targets     []string `json:"targets"`
	DurationSec float64  `json:"duration_sec"`
	Concurrency int      `json:"concurrency"`
	RatePerSec  float64  `json:"rate_per_sec,omitempty"`

	Requests       int64   `json:"requests"`
	TransportErrs  int64   `json:"transport_errors"`
	AchievedPerSec float64 `json:"achieved_per_sec"`

	Status    map[string]int64              `json:"status"`
	Endpoints map[string]EndpointProfile    `json:"endpoints"`
	Servers   map[string]map[string]float64 `json:"servers"`
}

// EndpointProfile is the client-observed latency distribution for one
// endpoint, plus how often it was shed.
type EndpointProfile struct {
	Requests int64   `json:"requests"`
	Shed     int64   `json:"shed"`
	P50Ms    float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
	MeanMs   float64 `json:"mean_ms"`
}

// sample is one finished request, recorded lock-free per worker and
// merged after the run.
type sample struct {
	endpoint string
	status   int
	err      bool
	latency  time.Duration
}

func loadRun(opts options) (*Profile, error) {
	client := &http.Client{Timeout: 2 * time.Minute}
	before, err := scrapeAll(client, opts.targets)
	if err != nil {
		return nil, err
	}

	// The endpoint schedule is a weight-expanded deck each worker walks at
	// its own offset: the realized mix matches the weights without the
	// workers sharing any state.
	var deck []string
	for _, name := range []string{"advise", "batch", "simulate"} {
		for i := 0; i < opts.mix[name]; i++ {
			deck = append(deck, name)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), opts.duration)
	defer cancel()

	// Open loop: a token bucket paces arrivals fleet-wide; closed loop
	// leaves tokens nil and each worker re-fires on completion.
	var tokens chan struct{}
	if opts.rate > 0 {
		tokens = make(chan struct{}, opts.concurrency)
		go func() {
			interval := time.Duration(float64(time.Second) / opts.rate)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default: // workers saturated: the arrival is lost, like a real open-loop client timing out
					}
				}
			}
		}()
	}

	results := make([][]sample, opts.concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opts.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.seed + int64(w)*7919))
			var local []sample
			for n := 0; ; n++ {
				if tokens != nil {
					select {
					case <-ctx.Done():
						results[w] = local
						return
					case <-tokens:
					}
				} else if ctx.Err() != nil {
					results[w] = local
					return
				}
				// The target draw is random, not (w+n)-derived like the deck
				// walk: deriving both from the same counter correlates
				// endpoint with replica (deck length and fleet size share
				// factors) and skews the per-replica mix.
				endpoint := deck[(w+n)%len(deck)]
				target := opts.targets[rng.Intn(len(opts.targets))]
				local = append(local, fire(ctx, client, rng, target, endpoint, opts.batchJobs))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := scrapeAll(client, opts.targets)
	if err != nil {
		return nil, err
	}
	return assemble(opts, elapsed, results, before, after), nil
}

// Request generation. Policies and regions are a fixed slice of the
// server's catalog, and simulate cells draw from a small pool on purpose:
// repeated cells are what exercise coalescing and the shared cache tier.
var (
	loadPolicies = []string{"nowait", "wait-awhile", "carbon-time", "lowest-window"}
	loadRegions  = []string{"CA-US", "SA-AU", "SE", "NL"}
)

// adviseJobFields writes one job's fields (no surrounding braces), so the
// same generator feeds both the single-advise envelope and batch entries.
func adviseJobFields(rng *rand.Rand, b *bytes.Buffer) {
	fmt.Fprintf(b, `"length_minutes":%d,"arrival_minute":%d,"cpus":%d`,
		5+rng.Intn(600), rng.Intn(1440), 1+rng.Intn(8))
	if rng.Intn(4) == 0 {
		fmt.Fprintf(b, `,"spot_max_minutes":%d`, 30+rng.Intn(120))
	}
}

func buildBody(rng *rand.Rand, endpoint string, batchJobs int) (path string, body []byte) {
	pol := loadPolicies[rng.Intn(len(loadPolicies))]
	region := loadRegions[rng.Intn(len(loadRegions))]
	var b bytes.Buffer
	switch endpoint {
	case "advise":
		fmt.Fprintf(&b, `{"policy":%q,"region":%q,`, pol, region)
		adviseJobFields(rng, &b)
		b.WriteByte('}')
		return "/v1/advise", b.Bytes()
	case "batch":
		fmt.Fprintf(&b, `{"policy":%q,"region":%q,"jobs":[`, pol, region)
		for i := 0; i < batchJobs; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteByte('{')
			adviseJobFields(rng, &b)
			b.WriteByte('}')
		}
		b.WriteString(`]}`)
		return "/v1/advise/batch", b.Bytes()
	default: // simulate
		fmt.Fprintf(&b, `{"policy":%q,"region":%q,"jobs":%d,"days":%d,"seed":%d}`,
			pol, region, 200+100*rng.Intn(3), 1+rng.Intn(2), rng.Intn(4))
		return "/v1/simulate", b.Bytes()
	}
}

func fire(ctx context.Context, client *http.Client, rng *rand.Rand, target, endpoint string, batchJobs int) sample {
	path, body := buildBody(rng, endpoint, batchJobs)
	s := sample{endpoint: endpoint}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+path, bytes.NewReader(body))
	if err != nil {
		s.err = true
		return s
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		// A request cut off by the run deadline is not a server failure.
		s.err = ctx.Err() == nil
		s.latency = time.Since(start)
		return s
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s.status = resp.StatusCode
	s.latency = time.Since(start)
	return s
}

// scrapeAll fetches the counters this profile reports from every target's
// /metrics. Only plain "name{labels} value" lines participate.
func scrapeAll(client *http.Client, targets []string) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64, len(targets))
	for _, t := range targets {
		resp, err := client.Get(t + "/metrics")
		if err != nil {
			return nil, fmt.Errorf("scraping %s: %w", t, err)
		}
		m := make(map[string]float64)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			name, val, ok := strings.Cut(line, " ")
			if !ok {
				continue
			}
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				m[name] = v
			}
		}
		resp.Body.Close()
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("scraping %s: %w", t, err)
		}
		out[t] = m
	}
	return out, nil
}

// reportedSeries are the server counters whose deltas the profile keeps:
// shedding, coalescing roles and cache-tier outcomes.
var reportedSeries = []string{
	`gaia_serve_shed_total{reason="queue_full"}`,
	`gaia_serve_shed_total{reason="draining"}`,
	`gaia_serve_coalesce_total{role="leader"}`,
	`gaia_serve_coalesce_total{role="joined"}`,
	`gaia_serve_simulate_cache_total{outcome="computed"}`,
	`gaia_serve_simulate_cache_total{outcome="hit"}`,
	`gaia_serve_simulate_cache_total{outcome="dedup"}`,
	`gaia_serve_simulate_cache_total{outcome="disk-hit"}`,
	`gaia_serve_simulate_cache_total{outcome="remote-hit"}`,
}

func assemble(opts options, elapsed time.Duration, results [][]sample, before, after map[string]map[string]float64) *Profile {
	p := &Profile{
		Targets:     opts.targets,
		DurationSec: elapsed.Seconds(),
		Concurrency: opts.concurrency,
		RatePerSec:  opts.rate,
		Status:      make(map[string]int64),
		Endpoints:   make(map[string]EndpointProfile),
		Servers:     make(map[string]map[string]float64),
	}
	lat := make(map[string][]float64)
	shed := make(map[string]int64)
	count := make(map[string]int64)
	for _, local := range results {
		for _, s := range local {
			p.Requests++
			if s.err {
				p.TransportErrs++
				continue
			}
			if s.status == 0 {
				continue // cut off by the run deadline
			}
			p.Status[strconv.Itoa(s.status)]++
			count[s.endpoint]++
			if s.status == http.StatusTooManyRequests || s.status == http.StatusServiceUnavailable {
				shed[s.endpoint]++
			} else {
				lat[s.endpoint] = append(lat[s.endpoint], float64(s.latency)/float64(time.Millisecond))
			}
		}
	}
	if secs := elapsed.Seconds(); secs > 0 {
		p.AchievedPerSec = float64(p.Requests) / secs
	}
	for ep, ls := range lat {
		sort.Float64s(ls)
		mean := 0.0
		for _, v := range ls {
			mean += v
		}
		mean /= float64(len(ls))
		p.Endpoints[ep] = EndpointProfile{
			Requests: count[ep],
			Shed:     shed[ep],
			P50Ms:    quantile(ls, 0.50),
			P90Ms:    quantile(ls, 0.90),
			P99Ms:    quantile(ls, 0.99),
			MaxMs:    ls[len(ls)-1],
			MeanMs:   mean,
		}
	}
	for _, t := range opts.targets {
		deltas := make(map[string]float64)
		for _, series := range reportedSeries {
			if d := after[t][series] - before[t][series]; d != 0 {
				deltas[series] = d
			}
		}
		p.Servers[t] = deltas
	}
	return p
}

// quantile reads the q-th quantile from an ascending slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func writeProfile(p *Profile, out string) error {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if out == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(out, b, 0o644)
}

// runSmoke boots a two-replica fleet in-process, runs a short burst of
// mixed load against it, then checks the tier's core promise end to end:
// a cell computed on replica A is a remote hit on replica B. Exit status
// is the test verdict, which is what CI runs under the race detector.
func runSmoke(opts options) error {
	silent := func(string, ...any) {}
	cfg := serve.Config{TraceDays: 2, MaxConcurrent: 2, QueueDepth: 32, Logf: silent}

	var urls []string
	var servers []*serve.Server
	var serveErr sync.WaitGroup
	for i := 0; i < 2; i++ {
		srv, err := serve.New(cfg)
		if err != nil {
			return err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		urls = append(urls, "http://"+l.Addr().String())
		servers = append(servers, srv)
		serveErr.Add(1)
		go func() {
			defer serveErr.Done()
			srv.Serve(l)
		}()
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, srv := range servers {
			srv.Shutdown(ctx)
		}
		serveErr.Wait()
	}()
	if err := servers[0].ConfigureFleet(urls[0], urls[1:]); err != nil {
		return err
	}
	if err := servers[1].ConfigureFleet(urls[1], urls[:1]); err != nil {
		return err
	}

	// Deterministic tier check before any load touches the caches.
	client := &http.Client{Timeout: time.Minute}
	cell := `{"policy":"carbon-time","region":"CA-US","jobs":300,"days":2,"seed":424242}`
	outcome, err := simulateOutcome(client, urls[0], cell)
	if err != nil {
		return err
	}
	if outcome != "computed" {
		return fmt.Errorf("smoke: first simulate outcome = %q, want computed", outcome)
	}
	outcome, err = simulateOutcome(client, urls[1], cell)
	if err != nil {
		return err
	}
	if outcome != "remote-hit" {
		return fmt.Errorf("smoke: second replica outcome = %q, want remote-hit", outcome)
	}

	// A short saturation burst across both replicas: everything must be
	// answered or shed, never dropped.
	opts.targets = urls
	if opts.duration > 3*time.Second {
		opts.duration = 3 * time.Second
	}
	if opts.concurrency > 8 {
		opts.concurrency = 8
	}
	if opts.batchJobs > 64 {
		opts.batchJobs = 64
	}
	profile, err := loadRun(opts)
	if err != nil {
		return err
	}
	if profile.TransportErrs > 0 {
		return fmt.Errorf("smoke: %d transport errors", profile.TransportErrs)
	}
	if profile.Requests == 0 {
		return errors.New("smoke: no requests completed")
	}
	for code := range profile.Status {
		if strings.HasPrefix(code, "5") && code != "503" {
			return fmt.Errorf("smoke: server errors (status %s)", code)
		}
	}
	if err := writeProfile(profile, opts.out); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "gaia-load: smoke OK (remote-hit verified, no transport errors)")
	return nil
}

func simulateOutcome(client *http.Client, target, body string) (string, error) {
	resp, err := client.Post(target+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("simulate on %s: status %d, body %s", target, resp.StatusCode, raw)
	}
	var out struct {
		CacheOutcome string `json:"cache_outcome"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return "", err
	}
	return out.CacheOutcome, nil
}
