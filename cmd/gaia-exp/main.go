// Command gaia-exp regenerates the paper's evaluation figures on the GAIA
// simulator.
//
// Usage:
//
//	gaia-exp -list
//	gaia-exp -figure fig08            # one figure, quick scale
//	gaia-exp -figure fig13 -full      # paper-scale (year, ~100k jobs)
//	gaia-exp -all                     # every figure, quick scale
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/carbonsched/gaia/internal/experiments"
)

func main() {
	var (
		figure = flag.String("figure", "", "experiment id to run (e.g. fig08)")
		all    = flag.Bool("all", false, "run every experiment")
		list   = flag.Bool("list", false, "list available experiments")
		full   = flag.Bool("full", false, "paper-scale runs (year-long traces) instead of quick")
		outdir = flag.String("outdir", "", "also write each result to <outdir>/<id>.txt")
	)
	flag.Parse()

	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-7s %s\n", e.ID, e.Title)
		}
	case *all:
		for _, e := range experiments.All() {
			if err := runOne(e, scale, *outdir); err != nil {
				fmt.Fprintf(os.Stderr, "gaia-exp: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	case *figure != "":
		e, err := experiments.ByID(*figure)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gaia-exp: %v\n", err)
			os.Exit(1)
		}
		if err := runOne(e, scale, *outdir); err != nil {
			fmt.Fprintf(os.Stderr, "gaia-exp: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(e experiments.Experiment, scale experiments.Scale, outdir string) error {
	start := time.Now()
	out, err := e.Run(scale)
	if err != nil {
		return err
	}
	text := out.String()
	fmt.Printf("== %s (%s scale, %v) ==\n%s\n", e.ID, scale, time.Since(start).Round(time.Millisecond), text)
	if outdir != "" {
		if err := os.MkdirAll(outdir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(outdir, e.ID+".txt")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			return err
		}
		if tsv, ok := out.(experiments.TSVer); ok {
			path := filepath.Join(outdir, e.ID+".tsv")
			if err := os.WriteFile(path, []byte(tsv.TSV()), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
