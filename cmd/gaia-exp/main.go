// Command gaia-exp regenerates the paper's evaluation figures on the GAIA
// simulator.
//
// Usage:
//
//	gaia-exp -list
//	gaia-exp -figure fig08            # one figure, quick scale
//	gaia-exp -figure fig13 -full      # paper-scale (year, ~100k jobs)
//	gaia-exp -all                     # every figure, quick scale
//	gaia-exp -all -j 4                # at most 4 experiments in flight
//	gaia-exp -all -cache .gaia-cache  # persist results; warm re-runs skip simulation
//	gaia-exp -all -nocache            # re-simulate every cell
//	gaia-exp -figure fig11 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// With -all, experiments run concurrently on a bounded worker pool
// (sweeps inside each experiment additionally parallelize across cores);
// output is printed in ID order and is byte-identical to a sequential
// run. Per-experiment and total wall-clock times are reported so the
// speedup is visible.
//
// Simulation cells are deduplicated through a content-addressed cache:
// identical (policy, trace, cluster) cells across figures simulate once,
// and with -cache the results persist across invocations. Output is
// byte-identical with the cache on, off, or warm; a summary after -all
// attributes hits, in-flight dedups and disk hits per figure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/carbonsched/gaia/internal/experiments"
	"github.com/carbonsched/gaia/internal/par"
)

// main only converts run's code into an exit status; all the work happens
// in run so its deferred profile teardown executes before os.Exit.
func main() { os.Exit(run()) }

func run() int {
	var (
		figure     = flag.String("figure", "", "experiment id to run (e.g. fig08)")
		all        = flag.Bool("all", false, "run every experiment")
		list       = flag.Bool("list", false, "list available experiments")
		full       = flag.Bool("full", false, "paper-scale runs (year-long traces) instead of quick")
		outdir     = flag.String("outdir", "", "also write each result to <outdir>/<id>.txt")
		workers    = flag.Int("j", runtime.NumCPU(), "max experiments in flight for -all (results stay deterministic)")
		cachedir   = flag.String("cache", "", "persist simulation results under this directory (warm re-runs skip simulation)")
		nocache    = flag.Bool("nocache", false, "disable the in-memory simulation cache (every cell re-simulates)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	switch {
	case *nocache:
		experiments.SetCache(nil)
	case *cachedir != "":
		c := experiments.ActiveCache()
		if err := c.SetDir(*cachedir); err != nil {
			fmt.Fprintf(os.Stderr, "gaia-exp: %v\n", err)
			return 1
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gaia-exp: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "gaia-exp: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gaia-exp: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "gaia-exp: %v\n", err)
			}
		}()
	}

	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-7s %s\n", e.ID, e.Title)
		}
	case *all:
		if err := runAll(scale, *workers, *outdir); err != nil {
			fmt.Fprintf(os.Stderr, "gaia-exp: %v\n", err)
			return 1
		}
	case *figure != "":
		e, err := experiments.ByID(*figure)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gaia-exp: %v\n", err)
			return 1
		}
		if err := runOne(e, scale, *outdir); err != nil {
			fmt.Fprintf(os.Stderr, "gaia-exp: %s: %v\n", e.ID, err)
			return 1
		}
	default:
		flag.Usage()
		return 2
	}
	return 0
}

// runAll executes every experiment on a worker pool of the given size and
// prints the results in ID order, each with its own wall-clock, followed
// by the total wall-clock of the whole sweep.
func runAll(scale experiments.Scale, workers int, outdir string) error {
	exps := experiments.All()
	type outcome struct {
		out fmt.Stringer
		dur time.Duration
	}
	start := time.Now()
	outs, err := par.Map(workers, exps, func(_ int, e experiments.Experiment) (outcome, error) {
		t0 := time.Now()
		out, err := e.Run(scale)
		if err != nil {
			return outcome{}, fmt.Errorf("%s: %w", e.ID, err)
		}
		return outcome{out, time.Since(t0)}, nil
	})
	if err != nil {
		return err
	}
	total := time.Since(start)

	var cpuTime time.Duration
	for i, e := range exps {
		cpuTime += outs[i].dur
		if err := emit(e, scale, outs[i].out, outs[i].dur, outdir); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	fmt.Printf("total: %d experiments in %v wall-clock (%v summed, -j %d)\n",
		len(exps), total.Round(time.Millisecond), cpuTime.Round(time.Millisecond), par.Workers(workers))
	printCacheStats()
	return nil
}

// printCacheStats reports how the simulation cache served each figure's
// cells, and in total how many simulations it avoided. Nothing is printed
// when caching is disabled (-nocache).
func printCacheStats() {
	if experiments.ActiveCache() == nil {
		return
	}
	ids, byFigure, total := experiments.CacheStats()
	if total.Total() == 0 {
		return
	}
	fmt.Println("cache: figure breakdown (cells: computed/hit/dedup/disk/bypass/plan/plan-disk)")
	for _, id := range ids {
		s := byFigure[id]
		fmt.Printf("cache:   %-14s %3d cells: %d/%d/%d/%d/%d/%d/%d\n",
			id, s.Total(), s.Computed, s.Hits, s.Dedups, s.DiskHits, s.Bypassed,
			s.PlanHits, s.PlanDiskHits)
	}
	fmt.Printf("cache: total %d cells — %d computed, %d hits, %d in-flight dedups, %d disk hits, %d bypassed; %d simulated cells avoided\n",
		total.Total(), total.Computed, total.Hits, total.Dedups, total.DiskHits, total.Bypassed, total.Avoided())
	if n := total.DecisionsAvoided(); n > 0 {
		fmt.Printf("cache: plan tier served the decide phase of %d more cells (%d from memory, %d from disk) — replay only\n",
			n, total.PlanHits, total.PlanDiskHits)
	}
}

func runOne(e experiments.Experiment, scale experiments.Scale, outdir string) error {
	start := time.Now()
	out, err := e.Run(scale)
	if err != nil {
		return err
	}
	return emit(e, scale, out, time.Since(start), outdir)
}

// emit prints one experiment's result and optionally writes its .txt (and
// .tsv, when available) files under outdir.
func emit(e experiments.Experiment, scale experiments.Scale, out fmt.Stringer, dur time.Duration, outdir string) error {
	text := out.String()
	fmt.Printf("== %s (%s scale, %v) ==\n%s\n", e.ID, scale, dur.Round(time.Millisecond), text)
	if outdir != "" {
		if err := os.MkdirAll(outdir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(outdir, e.ID+".txt")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			return err
		}
		if tsv, ok := out.(experiments.TSVer); ok {
			path := filepath.Join(outdir, e.ID+".tsv")
			if err := os.WriteFile(path, []byte(tsv.TSV()), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
