package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	if err := run([]string{"-policy", "nowait", "-jobs", "50", "-days", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllPolicies(t *testing.T) {
	for _, p := range []string{"nowait", "allwait", "lowest-slot", "lowest-window",
		"carbon-time", "wait-awhile", "ecovisor"} {
		args := []string{"-policy", p, "-jobs", "30", "-days", "2", "-region", "SA-AU"}
		if p == "allwait" {
			args = append(args, "-reserved", "5", "-work-conserving")
		}
		if err := run(args); err != nil {
			t.Errorf("policy %s: %v", p, err)
		}
	}
}

func TestRunHybridAndSpot(t *testing.T) {
	err := run([]string{"-policy", "carbon-time", "-jobs", "50", "-days", "2",
		"-reserved", "5", "-work-conserving", "-spot-max", "2", "-eviction", "0.1"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesOutputFiles(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "res")
	err := run([]string{"-policy", "carbon-time", "-jobs", "30", "-days", "2", "-out", prefix})
	if err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{"-summary.csv", "-details.csv"} {
		if _, err := os.Stat(prefix + suffix); err != nil {
			t.Errorf("missing %s: %v", suffix, err)
		}
	}
}

func TestRunCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ciPath := filepath.Join(dir, "ci.csv")
	wlPath := filepath.Join(dir, "wl.csv")
	// Generate input CSVs with gaia-trace's underlying logic via the
	// workload/carbon packages would duplicate; instead exercise the
	// -carbon/-workload file path with files we write here.
	writeTestTraces(t, ciPath, wlPath)
	err := run([]string{"-policy", "lowest-window", "-carbon", ciPath, "-workload", wlPath})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunElectricityMapsFormat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "em.csv")
	content := "datetime,ci\n"
	times := []string{"2022-01-01T00:00:00Z", "2022-01-01T01:00:00Z", "2022-01-01T02:00:00Z"}
	for i, ts := range times {
		content += ts + "," + itoa(100+i*50) + "\n"
	}
	// Extend to cover the scheduling window.
	for h := 3; h < 24*6; h++ {
		content += "2022-01-0" + itoa(1+h/24) + "T"
		hh := h % 24
		if hh < 10 {
			content += "0"
		}
		content += itoa(hh) + ":00:00Z,200\n"
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-policy", "nowait", "-carbon", path, "-carbon-format", "emaps",
		"-jobs", "10", "-days", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-carbon", path, "-carbon-format", "bogus"}); err == nil {
		t.Error("bad format should error")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-policy", "bogus"},
		{"-w", "abc"},
		{"-region", "XX"},
		{"-family", "bogus"},
		{"-carbon", "/nonexistent/ci.csv"},
		{"-workload", "/nonexistent/wl.csv"},
		{"-eviction", "1.5", "-spot-max", "1"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestParseWaits(t *testing.T) {
	s, l, err := parseWaits("6x24")
	if err != nil || s.Hours() != 6 || l.Hours() != 24 {
		t.Errorf("parseWaits = %v, %v, %v", s, l, err)
	}
	s, l, err = parseWaits("0x12")
	if err != nil || s != -1 || l.Hours() != 12 {
		t.Errorf("explicit zero = %v, %v, %v", s, l, err)
	}
	if _, _, err := parseWaits("xx"); err == nil {
		t.Error("malformed waits should error")
	}
}

func writeTestTraces(t *testing.T, ciPath, wlPath string) {
	t.Helper()
	ci := "hour,carbon_intensity\n"
	for h := 0; h < 24*5; h++ {
		v := "300"
		if h%24 == 12 {
			v = "50"
		}
		ci += itoa(h) + "," + v + "\n"
	}
	if err := os.WriteFile(ciPath, []byte(ci), 0o644); err != nil {
		t.Fatal(err)
	}
	wl := "id,arrival_min,length_min,cpus,queue\n" +
		"0,0,60,1,short\n" +
		"1,30,300,2,long\n" +
		"2,120,90,1,short\n"
	if err := os.WriteFile(wlPath, []byte(wl), 0o644); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
