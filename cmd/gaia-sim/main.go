// Command gaia-sim runs one GAIA cluster simulation — the equivalent of
// the paper artifact's src/run.py. It loads or generates a carbon trace
// and a workload, applies one scheduling configuration, and reports
// carbon, cost and waiting time (optionally writing the artifact-style
// aggregate and per-job details CSV files).
//
// Examples:
//
//	# Carbon- and cost-agnostic baseline on the default week-long trace:
//	gaia-sim -policy nowait
//
//	# Lowest carbon window with 6h/24h waits, in South Australia:
//	gaia-sim -policy lowest-window -region SA-AU -w 6x24
//
//	# The paper's RES-First-Carbon-Time with 18 reserved CPUs:
//	gaia-sim -policy carbon-time -reserved 18 -work-conserving
//
//	# Spot for jobs up to 2h with a 5%/h eviction rate:
//	gaia-sim -policy carbon-time -spot-max 2 -eviction 0.05
//
//	# Replay real traces exported to CSV:
//	gaia-sim -policy carbon-time -carbon ci.csv -workload jobs.csv
//
//	# Malleable jobs with precedence edges, resized hourly by the
//	# greedy-marginal allocator:
//	gaia-sim -policy critical-path -elastic jobs.csv -dag edges.csv -allocator greedy-marginal
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"github.com/carbonsched/gaia/internal/accountdb"
	"github.com/carbonsched/gaia/internal/batch"
	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "gaia-sim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gaia-sim", flag.ContinueOnError)
	var (
		policyName = fs.String("policy", "carbon-time",
			"scheduling policy: nowait|allwait|lowest-slot|lowest-window|carbon-time|wait-awhile|wait-awhile-est|ecovisor|critical-path")
		region     = fs.String("region", "CA-US", "built-in carbon region (SE|ON-CA|SA-AU|CA-US|NL|KY-US)")
		carbonFile = fs.String("carbon", "", "carbon trace CSV (overrides -region)")
		carbonFmt  = fs.String("carbon-format", "gaia", "carbon CSV schema: gaia (hour,ci) or emaps (datetime,...,ci)")
		wlFile     = fs.String("workload", "", "workload trace CSV (overrides -family)")
		family     = fs.String("family", "alibaba", "synthetic workload family: alibaba|azure|mustang|poisson")
		jobs       = fs.Int("jobs", 1000, "number of synthetic jobs")
		days       = fs.Int("days", 7, "workload span in days")
		reserved   = fs.Int("reserved", 0, "reserved CPU units")
		workCons   = fs.Bool("work-conserving", false, "enable RES-First work conservation")
		spotMax    = fs.Float64("spot-max", 0, "max job hours routed to spot (0 = no spot)")
		eviction   = fs.Float64("eviction", 0, "hourly spot eviction probability")
		waits      = fs.String("w", "6x24", "max waiting hours as SHORTxLONG, e.g. 6x24 (0 allowed)")
		seed       = fs.Int64("seed", 1, "random seed (workload generation and evictions)")
		out        = fs.String("out", "", "output file prefix: writes <out>-summary.csv and <out>-details.csv")
		dbPath     = fs.String("db", "", "append job records to this accounting CSV (query with gaiactl)")
		runtime    = fs.String("runtime", "sim", "execution model: sim (GAIA-Simulator) or prototype (node-level batch runtime)")
		scenario   = fs.String("scenario", "", "JSON scenario file describing a batch of runs to compare (ignores other flags)")
		checkpoint = fs.Float64("checkpoint", 0, "spot checkpoint interval in hours (0 = progress lost on eviction)")
		elastic    = fs.String("elastic", "", "malleable workload CSV with per-job replica bounds and scale curves (overrides -workload/-family)")
		dag        = fs.String("dag", "", "precedence edges CSV (src,dst job ids) attached to the -elastic workload")
		allocator  = fs.String("allocator", "", "elastic replica allocator: "+strings.Join(policy.AllocatorNames(), "|")+" (default static-min)")
		elasticCap = fs.Int("elastic-capacity", 0, "cap on extra-replica CPUs per hour beyond the idle reserved pool (0 = idle pool only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *scenario != "" {
		return runScenario(*scenario)
	}

	pol, err := policyByName(*policyName)
	if err != nil {
		return err
	}
	wShort, wLong, err := parseWaits(*waits)
	if err != nil {
		return err
	}
	carbonTr, err := loadCarbon(*carbonFile, *carbonFmt, *region, *days)
	if err != nil {
		return err
	}
	var elasticTr *workload.ElasticTrace
	var jobsTr *workload.Trace
	if *elastic != "" {
		elasticTr, err = loadElastic(*elastic, *dag)
		if err != nil {
			return err
		}
		jobsTr = elasticTr.Jobs
	} else {
		if *dag != "" {
			return fmt.Errorf("-dag requires -elastic (edges refer to the elastic workload's job ids)")
		}
		jobsTr, err = loadWorkload(*wlFile, *family, *jobs, *days, *seed)
		if err != nil {
			return err
		}
	}
	var alloc policy.ElasticAllocator
	if *allocator != "" {
		if elasticTr == nil {
			return fmt.Errorf("-allocator requires -elastic")
		}
		alloc, err = policy.AllocatorByName(*allocator)
		if err != nil {
			return err
		}
	}

	horizon := simtime.Duration(*days+3) * simtime.Day
	if *runtime == "prototype" {
		if elasticTr != nil {
			return fmt.Errorf("the prototype runtime does not support -elastic workloads")
		}
		return runPrototype(batch.Config{
			Policy:        pol,
			Carbon:        carbonTr,
			ReservedNodes: *reserved,
			SpotMaxLen:    simtime.HoursDur(*spotMax),
			EvictionRate:  *eviction,
			WaitShort:     wShort,
			WaitLong:      wLong,
			Horizon:       horizon,
			Seed:          *seed,
		}, jobsTr)
	}
	if *runtime != "sim" {
		return fmt.Errorf("unknown -runtime %q (want sim or prototype)", *runtime)
	}

	cfg := core.Config{
		Policy:             pol,
		Carbon:             carbonTr,
		Reserved:           *reserved,
		WorkConserving:     *workCons,
		SpotMaxLen:         simtime.HoursDur(*spotMax),
		EvictionRate:       *eviction,
		CheckpointInterval: simtime.HoursDur(*checkpoint),
		WaitShort:          wShort,
		WaitLong:           wLong,
		Horizon:            horizon,
		Seed:               *seed,
		// Per-job records are only needed when they are exported; plain
		// summary runs stream into the aggregate accumulator.
		RetainJobs:      *out != "" || *dbPath != "",
		Elastic:         elasticTr,
		Allocator:       alloc,
		ElasticCapacity: *elasticCap,
	}
	res, err := core.Run(cfg, jobsTr)
	if err != nil {
		return err
	}

	fmt.Printf("config:   %s\n", res.Label)
	fmt.Printf("region:   %s   workload: %s (%d jobs)\n", res.Region, res.Workload, res.JobCount())
	fmt.Printf("carbon:   %.3f kg (baseline %.3f kg, savings %.1f%%)\n",
		res.TotalCarbonKg(), res.BaselineCarbon()/1000, 100*res.CarbonSavingsFraction())
	fmt.Printf("cost:     $%.2f (reserved upfront $%.2f + usage $%.2f)\n",
		res.TotalCost(), res.ReservedUpfront(), res.UsageCost())
	fmt.Printf("waiting:  %v mean   completion: %v mean\n", res.MeanWaiting(), res.MeanCompletion())
	if res.Reserved > 0 {
		fmt.Printf("reserved: %d units, %.1f%% utilized\n", res.Reserved, 100*res.ReservedUtilization())
	}
	if res.TotalEvictions() > 0 {
		fmt.Printf("spot:     %d evictions\n", res.TotalEvictions())
	}

	if *out != "" {
		if err := writeFile(*out+"-summary.csv", res.WriteSummary); err != nil {
			return err
		}
		if err := writeFile(*out+"-details.csv", res.WriteDetailsCSV); err != nil {
			return err
		}
		fmt.Printf("wrote %s-summary.csv and %s-details.csv\n", *out, *out)
	}
	if *dbPath != "" {
		if err := appendToDB(*dbPath, res); err != nil {
			return err
		}
		fmt.Printf("appended %d records to %s\n", res.JobCount(), *dbPath)
	}
	return nil
}

// appendToDB loads an existing accounting CSV (if any), appends this
// run's records, and rewrites the file.
func appendToDB(path string, res *metrics.Result) error {
	db := &accountdb.DB{}
	if f, err := os.Open(path); err == nil {
		loadErr := db.Load(f)
		f.Close()
		if loadErr != nil {
			return fmt.Errorf("existing db %s: %w", path, loadErr)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	db.AppendResult(res)
	return writeFile(path, db.Save)
}

// runPrototype executes on the node-level batch runtime and prints its
// fleet-style report.
func runPrototype(cfg batch.Config, jobs *workload.Trace) error {
	res, err := batch.Run(cfg, jobs)
	if err != nil {
		return err
	}
	fmt.Printf("runtime:  prototype (node-level, whole-lifetime billing)\n")
	fmt.Printf("config:   %s\n", res.Label)
	fmt.Printf("jobs:     %d   nodes launched: %d\n", len(res.Jobs), res.NodesLaunched)
	fmt.Printf("carbon:   %.3f kg\n", res.CarbonKg())
	fmt.Printf("cost:     $%.2f\n", res.Cost)
	fmt.Printf("waiting:  %v mean\n", res.MeanWaiting())
	if res.TotalEvictions() > 0 {
		fmt.Printf("spot:     %d interruptions\n", res.TotalEvictions())
	}
	return nil
}

// policyByName delegates to the shared tag registry in internal/policy,
// so the CLI and the serving API accept exactly the same names.
func policyByName(name string) (policy.Policy, error) {
	return policy.ByName(name)
}

func parseWaits(s string) (short, long simtime.Duration, err error) {
	parts := strings.SplitN(strings.ToLower(s), "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -w %q (want SHORTxLONG, e.g. 6x24)", s)
	}
	sh, err1 := strconv.ParseFloat(parts[0], 64)
	lo, err2 := strconv.ParseFloat(parts[1], 64)
	if err1 != nil || err2 != nil || sh < 0 || lo < 0 {
		return 0, 0, fmt.Errorf("bad -w %q (want SHORTxLONG, e.g. 6x24)", s)
	}
	conv := func(h float64) simtime.Duration {
		if h == 0 {
			return -1 // explicit zero wait
		}
		return simtime.HoursDur(h)
	}
	return conv(sh), conv(lo), nil
}

func loadCarbon(file, format, region string, days int) (*carbon.Trace, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		switch format {
		case "gaia":
			return carbon.ReadCSV(file, f)
		case "emaps":
			// ElectricityMaps exports: datetime first, intensity last.
			return carbon.ReadElectricityMapsCSV(file, f, 0, 1)
		default:
			return nil, fmt.Errorf("unknown -carbon-format %q", format)
		}
	}
	spec, err := carbon.RegionByCode(region)
	if err != nil {
		return nil, err
	}
	return spec.Generate((days+3)*24, 2022), nil
}

func loadWorkload(file, family string, jobs, days int, seed int64) (*workload.Trace, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.ReadCSV(file, f)
	}
	span := simtime.Duration(days) * simtime.Day
	rng := rand.New(rand.NewSource(seed))
	switch strings.ToLower(family) {
	case "alibaba":
		return workload.AlibabaPAI().GenerateByCount(rng, jobs, span), nil
	case "azure":
		return workload.AzureVM().GenerateByCount(rng, jobs, span), nil
	case "mustang":
		return workload.MustangHPC().GenerateByCount(rng, jobs, span), nil
	case "poisson":
		return workload.SectionThreeWorkload().Generate(rng, span), nil
	default:
		return nil, fmt.Errorf("unknown workload family %q", family)
	}
}

// loadElastic reads a malleable workload CSV plus an optional precedence
// edges CSV into the ElasticTrace passed to core.Run as both the workload
// and the elastic metadata.
func loadElastic(jobsFile, edgesFile string) (*workload.ElasticTrace, error) {
	jf, err := os.Open(jobsFile)
	if err != nil {
		return nil, err
	}
	defer jf.Close()
	var edges io.Reader
	if edgesFile != "" {
		ef, err := os.Open(edgesFile)
		if err != nil {
			return nil, err
		}
		defer ef.Close()
		edges = ef
	}
	return workload.ReadElasticCSV(jobsFile, jf, edges)
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
