package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeScenario(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestScenarioRuns(t *testing.T) {
	db := filepath.Join(t.TempDir(), "runs.csv")
	path := writeScenario(t, `{
		"region": "SA-AU",
		"family": "alibaba",
		"jobs": 60,
		"days": 2,
		"db": "`+db+`",
		"runs": [
			{"name": "baseline", "policy": "nowait"},
			{"name": "gaia", "policy": "carbon-time", "reserved": 5, "work_conserving": true},
			{"policy": "carbon-time", "spot_max_hours": 2, "eviction": 0.1, "checkpoint_hours": 0.5}
		]
	}`)
	if err := run([]string{"-scenario", path}); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(db); err != nil || st.Size() == 0 {
		t.Errorf("accounting db missing: %v", err)
	}
}

func TestScenarioDefaults(t *testing.T) {
	path := writeScenario(t, `{"jobs": 30, "days": 2, "runs": [{"policy": "nowait"}]}`)
	if err := run([]string{"-scenario", path}); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"runs": []}`,
		`{"runs": [{"policy": "bogus"}]}`,
		`{"waits": "xx", "runs": [{"policy": "nowait"}]}`,
		`{"region": "XX", "runs": [{"policy": "nowait"}]}`,
	}
	for i, c := range cases {
		path := writeScenario(t, c)
		if err := run([]string{"-scenario", path}); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if err := run([]string{"-scenario", "/nonexistent.json"}); err == nil {
		t.Error("missing file should error")
	}
}
