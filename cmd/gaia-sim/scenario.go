package main

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/carbonsched/gaia/internal/accountdb"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/simtime"
)

// Scenario is a JSON-described batch of simulator runs over one shared
// workload and carbon trace — the artifact-appendix style "experiment
// customization" file. All runs are compared against the first.
//
//	{
//	  "region": "SA-AU",
//	  "family": "alibaba",
//	  "jobs": 1000,
//	  "days": 7,
//	  "seed": 1,
//	  "db": "runs.csv",
//	  "runs": [
//	    {"name": "baseline", "policy": "nowait"},
//	    {"name": "gaia", "policy": "carbon-time",
//	     "reserved": 18, "work_conserving": true},
//	    {"policy": "carbon-time", "spot_max_hours": 2, "eviction": 0.10}
//	  ]
//	}
type Scenario struct {
	Region     string `json:"region"`
	CarbonFile string `json:"carbon_file"`
	Family     string `json:"family"`
	Workload   string `json:"workload_file"`
	Jobs       int    `json:"jobs"`
	Days       int    `json:"days"`
	Seed       int64  `json:"seed"`
	Waits      string `json:"waits"` // "6x24"
	DB         string `json:"db"`    // optional accounting CSV to append to
	Runs       []ScenarioRun
}

// ScenarioRun is one configuration inside a scenario.
type ScenarioRun struct {
	Name           string  `json:"name"`
	Policy         string  `json:"policy"`
	Reserved       int     `json:"reserved"`
	WorkConserving bool    `json:"work_conserving"`
	SpotMaxHours   float64 `json:"spot_max_hours"`
	Eviction       float64 `json:"eviction"`
	CheckpointH    float64 `json:"checkpoint_hours"`
}

// runScenario executes every run and prints a comparison table.
func runScenario(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var sc Scenario
	if err := json.Unmarshal(raw, &sc); err != nil {
		return fmt.Errorf("scenario %s: %w", path, err)
	}
	if len(sc.Runs) == 0 {
		return fmt.Errorf("scenario %s: no runs", path)
	}
	// Defaults.
	if sc.Region == "" {
		sc.Region = "CA-US"
	}
	if sc.Family == "" {
		sc.Family = "alibaba"
	}
	if sc.Jobs == 0 {
		sc.Jobs = 1000
	}
	if sc.Days == 0 {
		sc.Days = 7
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.Waits == "" {
		sc.Waits = "6x24"
	}
	wShort, wLong, err := parseWaits(sc.Waits)
	if err != nil {
		return err
	}
	carbonTr, err := loadCarbon(sc.CarbonFile, "gaia", sc.Region, sc.Days)
	if err != nil {
		return err
	}
	jobsTr, err := loadWorkload(sc.Workload, sc.Family, sc.Jobs, sc.Days, sc.Seed)
	if err != nil {
		return err
	}

	db := &accountdb.DB{}
	var base *metrics.Result
	fmt.Printf("%-28s %10s %9s %10s %9s\n", "run", "carbon_kg", "vs_base", "cost$", "wait")
	for i, r := range sc.Runs {
		pol, err := policyByName(r.Policy)
		if err != nil {
			return fmt.Errorf("run %d: %w", i, err)
		}
		cfg := core.Config{
			Label:              r.Name,
			Policy:             pol,
			Carbon:             carbonTr,
			Reserved:           r.Reserved,
			WorkConserving:     r.WorkConserving,
			SpotMaxLen:         simtime.HoursDur(r.SpotMaxHours),
			EvictionRate:       r.Eviction,
			CheckpointInterval: simtime.HoursDur(r.CheckpointH),
			WaitShort:          wShort,
			WaitLong:           wLong,
			Horizon:            simtime.Duration(sc.Days+3) * simtime.Day,
			Seed:               sc.Seed,
		}
		res, err := core.Run(cfg, jobsTr)
		if err != nil {
			return fmt.Errorf("run %d (%s): %w", i, res.Label, err)
		}
		if i == 0 {
			base = res
		}
		rel := res.CompareTo(base)
		fmt.Printf("%-28s %10.3f %9.3f %10.2f %9v\n",
			res.Label, res.TotalCarbonKg(), rel.Carbon, res.TotalCost(), res.MeanWaiting())
		db.AppendResult(res)
	}
	if sc.DB != "" {
		if err := writeFile(sc.DB, db.Save); err != nil {
			return err
		}
		fmt.Printf("wrote %d records to %s\n", db.Len(), sc.DB)
	}
	return nil
}
