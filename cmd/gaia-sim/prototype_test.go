package main

import "testing"

func TestRunPrototypeRuntime(t *testing.T) {
	err := run([]string{"-runtime", "prototype", "-policy", "carbon-time",
		"-jobs", "40", "-days", "2", "-reserved", "5"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPrototypeWithSpot(t *testing.T) {
	err := run([]string{"-runtime", "prototype", "-policy", "nowait",
		"-jobs", "40", "-days", "2", "-spot-max", "2", "-eviction", "0.2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckpointFlag(t *testing.T) {
	err := run([]string{"-policy", "carbon-time", "-jobs", "40", "-days", "2",
		"-spot-max", "6", "-eviction", "0.2", "-checkpoint", "0.5"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownRuntime(t *testing.T) {
	if err := run([]string{"-runtime", "bogus"}); err == nil {
		t.Error("unknown runtime should error")
	}
}

func TestRunPrototypeSuspendResumePolicies(t *testing.T) {
	for _, p := range []string{"wait-awhile", "ecovisor"} {
		err := run([]string{"-runtime", "prototype", "-policy", p,
			"-jobs", "10", "-days", "2", "-reserved", "3"})
		if err != nil {
			t.Errorf("%s on prototype: %v", p, err)
		}
	}
}
