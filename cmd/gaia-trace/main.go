// Command gaia-trace generates and inspects the simulator's input traces:
// synthetic carbon-intensity series for the built-in grid regions,
// synthetic workload traces for the production-trace stand-ins, and
// ERCOT-style paired carbon/price series.
//
// Examples:
//
//	# A year of South Australian carbon intensity to CSV:
//	gaia-trace -kind carbon -region SA-AU -hours 8760 -o sa.csv
//
//	# A week-long 1000-job Alibaba-like workload:
//	gaia-trace -kind workload -family alibaba -jobs 1000 -days 7 -o jobs.csv
//
//	# Statistics of an existing trace:
//	gaia-trace -stats-carbon sa.csv
//	gaia-trace -stats-workload jobs.csv
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "gaia-trace: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gaia-trace", flag.ContinueOnError)
	var (
		kind     = fs.String("kind", "carbon", "what to generate: carbon|workload")
		region   = fs.String("region", "CA-US", "carbon region (SE|ON-CA|SA-AU|CA-US|NL|KY-US)")
		hours    = fs.Int("hours", 24*365, "carbon trace length in hours")
		family   = fs.String("family", "alibaba", "workload family: alibaba|azure|mustang|poisson")
		jobs     = fs.Int("jobs", 1000, "workload job count")
		days     = fs.Int("days", 7, "workload span in days")
		seed     = fs.Int64("seed", 1, "random seed")
		out      = fs.String("o", "", "output CSV path (default stdout)")
		statsCar = fs.String("stats-carbon", "", "print statistics of a carbon CSV instead of generating")
		statsWl  = fs.String("stats-workload", "", "print statistics of a workload CSV instead of generating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *statsCar != "":
		return printCarbonStats(*statsCar)
	case *statsWl != "":
		return printWorkloadStats(*statsWl)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch strings.ToLower(*kind) {
	case "carbon":
		spec, err := carbon.RegionByCode(*region)
		if err != nil {
			return err
		}
		return spec.Generate(*hours, *seed).WriteCSV(w)
	case "workload":
		span := simtime.Duration(*days) * simtime.Day
		rng := rand.New(rand.NewSource(*seed))
		var tr *workload.Trace
		switch strings.ToLower(*family) {
		case "alibaba":
			tr = workload.AlibabaPAI().GenerateByCount(rng, *jobs, span)
		case "azure":
			tr = workload.AzureVM().GenerateByCount(rng, *jobs, span)
		case "mustang":
			tr = workload.MustangHPC().GenerateByCount(rng, *jobs, span)
		case "poisson":
			tr = workload.SectionThreeWorkload().Generate(rng, span)
		default:
			return fmt.Errorf("unknown family %q", *family)
		}
		tr.AssignQueues(2 * simtime.Hour)
		return tr.WriteCSV(w)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
}

func printCarbonStats(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := carbon.ReadCSV(path, f)
	if err != nil {
		return err
	}
	s := tr.Summary()
	fmt.Printf("hours: %d  mean: %.1f  std: %.1f  CV: %.3f  min: %.1f  max: %.1f g/kWh\n",
		tr.Len(), s.Mean, s.Std, s.CV, s.Min, s.Max)
	return nil
}

func printWorkloadStats(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := workload.ReadCSV(path, f)
	if err != nil {
		return err
	}
	span := tr.Span() + simtime.Day
	lc := tr.LengthCDF()
	fmt.Printf("jobs: %d  span: %.1f days  total: %.0f CPU·h  mean demand: %.1f CPUs\n",
		tr.Len(), tr.Span().Days(), tr.TotalCPUHours(), tr.MeanDemand(span))
	fmt.Printf("mean length: %v  ≤1h: %.0f%%  ≤12h: %.0f%%  demand CV: %.2f\n",
		tr.MeanLength(), 100*lc.At(60), 100*lc.At(12*60), tr.DemandCV(span))
	return nil
}
