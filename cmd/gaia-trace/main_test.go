package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateCarbonAndStats(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ci.csv")
	if err := run([]string{"-kind", "carbon", "-region", "SA-AU", "-hours", "100", "-o", out}); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(out); err != nil || st.Size() == 0 {
		t.Fatalf("output missing: %v", err)
	}
	if err := run([]string{"-stats-carbon", out}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateWorkloadAndStats(t *testing.T) {
	dir := t.TempDir()
	for _, fam := range []string{"alibaba", "azure", "mustang", "poisson"} {
		out := filepath.Join(dir, fam+".csv")
		if err := run([]string{"-kind", "workload", "-family", fam, "-jobs", "50", "-days", "3", "-o", out}); err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if err := run([]string{"-stats-workload", out}); err != nil {
			t.Fatalf("%s stats: %v", fam, err)
		}
	}
}

func TestTraceErrors(t *testing.T) {
	cases := [][]string{
		{"-kind", "bogus"},
		{"-kind", "carbon", "-region", "XX"},
		{"-kind", "workload", "-family", "bogus"},
		{"-stats-carbon", "/nonexistent.csv"},
		{"-stats-workload", "/nonexistent.csv"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}
