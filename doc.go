// Package gaia is a Go reproduction of GAIA — the carbon-, performance-
// and cost-aware cloud batch scheduler from "Going Green for Less Green:
// Optimizing the Cost of Reducing Cloud Carbon Emissions" (ASPLOS 2024).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); cmd/ holds the simulator and experiment CLIs; examples/
// holds runnable walkthroughs; bench_test.go regenerates every evaluation
// figure as a benchmark.
package gaia
