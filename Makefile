# GAIA-Go build targets. Everything is stdlib Go; `go` >= 1.22 suffices.

GO ?= go

.PHONY: all build vet lint test race cover bench bench-json bench-check bench-quick load-smoke figures figures-full examples serve clean

all: build lint test race bench-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Style gate: gofmt must have nothing to rewrite, go vet must be clean.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

test:
	$(GO) test ./...

# The sweep engine runs simulation cells concurrently; keep it race-clean.
race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./internal/... ./cmd/...

# Every benchmark in the module: the root package's figure + hot-path
# benchmarks and any per-package micro-benchmarks. -run='^$' skips the
# unit tests.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Machine-readable snapshot of the hot-path + scaling benchmarks (see
# cmd/gaia-bench). BENCH_JSON names the snapshot this PR commits;
# bench-check replays the same benchmarks and fails on >15% ns/op
# regressions against BENCH_BASELINE, the previous PR's snapshot (only
# benchmarks present in both are compared, so new benchmarks simply
# start their history in the new snapshot).
BENCH_JSON ?= BENCH_PR10.json
BENCH_LABEL ?= pr10
BENCH_BASELINE ?= BENCH_PR9.json
BENCH_PATTERN = SchedulerThroughput|MillionJobRun|DirectRun|PolicyDecide|WaitAwhilePlan|CarbonIntegral|SuiteColdVsWarm|Fingerprint|AdviseThroughput|AdviseBatch|SimulateColdVsWarm|EventCore|Chatty|ReservedSweepPlanReuse|ElasticYear|DAGCriticalPath
# -count=3: gaia-bench keeps each benchmark's fastest sample, which damps
# scheduler noise on shared machines enough for the 15% gate to be stable.
bench-json:
	$(GO) test -run='^$$' -bench='$(BENCH_PATTERN)' -count=3 \
		-benchmem . | $(GO) run ./cmd/gaia-bench -label $(BENCH_LABEL) -o $(BENCH_JSON)

bench-check:
	$(GO) test -run='^$$' -bench='$(BENCH_PATTERN)' -count=3 \
		-benchmem . | $(GO) run ./cmd/gaia-bench -baseline $(BENCH_BASELINE)

# Fast CI smoke of the run-path micro-benchmarks: a short -benchtime run
# that exists to execute the wheel, heap, direct and plan-replay paths
# under bench conditions (and catch gross regressions or panics), not to
# produce stable numbers — those come from the committed BENCH_PR*.json
# snapshots. The second command replays the run-path differentials under
# the race detector at a fixed parallelism, so every bench-quick run also
# re-proves the direct path bit-identical to the engine and plan replays
# bit-identical to full runs (cold-then-warm sweep with plan hits
# asserted in TestReservedSweepSharesPlans). The -race list also replays
# the elastic degenerate differential (rigid jobs byte-identical under the
# elastic machinery) and the resize/cancel-storm wheel-vs-heap fuzz seeds.
bench-quick:
	$(GO) test -run='^$$' -bench='EventCore|Chatty|DirectRun|ReservedSweepPlanReuse|ElasticYear|DAGCriticalPath' -benchtime=0.1s -benchmem .
	$(GO) test -race -cpu 4 -run 'TestFiguresIdenticalAcrossRunPaths|TestDirectMatchesEngine|TestShardedFillMatchesAddJob|TestReservedSweepSharesPlans|TestPlanReplayMatchesDirect|TestPlanTier|TestElasticDegenerateMatchesRigid|TestElasticStormWheelVsHeap|TestFiguresIdenticalElasticDegenerate' \
		./internal/experiments ./internal/core ./internal/metrics ./internal/runcache

# End-to-end fleet smoke test: gaia-load boots two gaia-serve replicas
# joined into one cache tier, drives a short mixed load, and fails unless
# a cell computed on one replica is served as a remote hit on the other
# with zero transport errors. -race catches cross-replica data races.
load-smoke:
	$(GO) run -race ./cmd/gaia-load -smoke -duration 2s

# Regenerate the evaluation tables (quick scale; figures-full = paper scale).
figures:
	$(GO) run ./cmd/gaia-exp -all -outdir results-quick

figures-full:
	$(GO) run ./cmd/gaia-exp -all -full -outdir results

examples:
	@for d in examples/*/; do echo "== $$d"; $(GO) run ./$$d || exit 1; done

# Run the advisory service locally (ctrl-C drains gracefully). Override
# SERVE_FLAGS for knobs, e.g. make serve SERVE_FLAGS='-addr :9000'.
SERVE_FLAGS ?=
serve:
	$(GO) run ./cmd/gaia-serve $(SERVE_FLAGS)

clean:
	rm -rf results-quick
