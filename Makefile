# GAIA-Go build targets. Everything is stdlib Go; `go` >= 1.22 suffices.

GO ?= go

.PHONY: all build vet test race cover bench figures figures-full examples clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The sweep engine runs simulation cells concurrently; keep it race-clean.
race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./internal/... ./cmd/...

# Every paper figure + extension as benchmarks (quick scale).
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate the evaluation tables (quick scale; figures-full = paper scale).
figures:
	$(GO) run ./cmd/gaia-exp -all -outdir results-quick

figures-full:
	$(GO) run ./cmd/gaia-exp -all -full -outdir results

examples:
	@for d in examples/*/; do echo "== $$d"; $(GO) run ./$$d || exit 1; done

clean:
	rm -rf results-quick
