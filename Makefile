# GAIA-Go build targets. Everything is stdlib Go; `go` >= 1.22 suffices.

GO ?= go

.PHONY: all build vet test race cover bench bench-json figures figures-full examples clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The sweep engine runs simulation cells concurrently; keep it race-clean.
race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./internal/... ./cmd/...

# Every benchmark in the module: the root package's figure + hot-path
# benchmarks and any per-package micro-benchmarks. -run='^$' skips the
# unit tests.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Machine-readable snapshot of the hot-path benchmarks (see cmd/gaia-bench).
BENCH_JSON ?= BENCH_PR2.json
bench-json:
	$(GO) test -run='^$$' \
		-bench='SchedulerThroughput|PolicyDecide|WaitAwhilePlan|CarbonIntegral' \
		-benchmem . | $(GO) run ./cmd/gaia-bench -label pr2 -o $(BENCH_JSON)

# Regenerate the evaluation tables (quick scale; figures-full = paper scale).
figures:
	$(GO) run ./cmd/gaia-exp -all -outdir results-quick

figures-full:
	$(GO) run ./cmd/gaia-exp -all -full -outdir results

examples:
	@for d in examples/*/; do echo "== $$d"; $(GO) run ./$$d || exit 1; done

clean:
	rm -rf results-quick
