package gaia

// Elastic-subsystem benchmarks: a year-long malleable run through the
// hourly reallocation loop, and the DAG pipeline workload under the
// critical-path policy. The "/elastic" sub-benchmark names follow the
// gaia-bench -pathmix convention (stamped elastic/engine): these runs are
// ineligible for the direct path by construction, so their ns/op tracks
// the event engine driving resize and precedence-release events.

import (
	"math/rand"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// elasticYearFixture builds a 20k-job year of alibaba-style work where
// 60% of the jobs are malleable (half of those preemptible), mirroring
// the x09 figure's mix at benchmark scale.
func elasticYearFixture() (*carbon.Trace, *workload.ElasticTrace) {
	tr := carbon.RegionSAAU.GenerateYear(1)
	jobs := workload.AlibabaPAI().GenerateByCount(rand.New(rand.NewSource(2)), 20_000, 350*simtime.Day)
	specs := make([]workload.ElasticSpec, len(jobs.Jobs))
	for i := range specs {
		switch i % 5 {
		case 0, 1:
			specs[i] = workload.DegenerateSpec()
		case 2, 3:
			specs[i] = workload.ElasticSpec{MinReplicas: 1, MaxReplicas: 4, Curve: workload.AmdahlCurve(0.9, 4)}
		default:
			specs[i] = workload.ElasticSpec{MinReplicas: 0, MaxReplicas: 2, Curve: workload.AmdahlCurve(0.85, 2)}
		}
	}
	return tr, workload.MustElasticTrace("bench-elastic-year", jobs.Jobs, specs, nil)
}

// BenchmarkElasticYear runs the malleable year end to end: Carbon-Time
// start decisions plus Greedy-Marginal resizes at every hour boundary,
// scale-ups bounded by the idle reserved pool.
func BenchmarkElasticYear(b *testing.B) {
	tr, et := elasticYearFixture()
	cfg := core.Config{
		Policy:    policy.CarbonTime{},
		Carbon:    tr,
		Reserved:  60,
		Elastic:   et,
		Allocator: policy.GreedyMarginal{},
		Horizon:   simtime.Year,
	}
	b.Run("elastic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(cfg, et.Jobs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// dagFixture builds 2000 unbalanced diamond pipelines (10k jobs, 12k
// edges) like the x10 figure's workload at benchmark scale.
func dagFixture() (*carbon.Trace, *workload.ElasticTrace) {
	tr := carbon.RegionSAAU.GenerateYear(1)
	jobs, edges := dagJobs(2000)
	specs := make([]workload.ElasticSpec, len(jobs))
	for i := range specs {
		specs[i] = workload.DegenerateSpec()
	}
	return tr, workload.MustElasticTrace("bench-dag", jobs, specs, edges)
}

func dagJobs(n int) ([]workload.Job, []workload.Edge) {
	rng := rand.New(rand.NewSource(3))
	jobs := make([]workload.Job, 0, 5*n)
	edges := make([]workload.Edge, 0, 6*n)
	for i := 0; i < n; i++ {
		arrival := simtime.Time(rng.Int63n(int64(340 * simtime.Day)))
		for _, spec := range []struct {
			length simtime.Duration
			cpus   int
		}{
			{simtime.Duration(30+rng.Int63n(60)) * simtime.Minute, 2},
			{simtime.Duration(600+rng.Int63n(240)) * simtime.Minute, 2},
			{simtime.Duration(150+rng.Int63n(90)) * simtime.Minute, 8},
			{simtime.Duration(150+rng.Int63n(90)) * simtime.Minute, 8},
			{simtime.Duration(30+rng.Int63n(60)) * simtime.Minute, 2},
		} {
			q := workload.QueueShort
			if spec.length > 2*simtime.Hour {
				q = workload.QueueLong
			}
			jobs = append(jobs, workload.Job{Arrival: arrival, Length: spec.length, CPUs: spec.cpus, Queue: q})
		}
		b := 5 * i
		edges = append(edges,
			workload.Edge{Src: b, Dst: b + 1},
			workload.Edge{Src: b, Dst: b + 2},
			workload.Edge{Src: b, Dst: b + 3},
			workload.Edge{Src: b + 1, Dst: b + 4},
			workload.Edge{Src: b + 2, Dst: b + 4},
			workload.Edge{Src: b + 3, Dst: b + 4})
	}
	return jobs, edges
}

// BenchmarkDAGCriticalPath measures the precedence machinery: the /build
// sub-benchmark is trace construction (acyclicity check plus the
// critical-path/slack analysis), /elastic the scheduling run whose every
// stage release routes through predecessor bookkeeping and whose policy
// caps each wait by the precomputed slack.
func BenchmarkDAGCriticalPath(b *testing.B) {
	tr, et := dagFixture()
	b.Run("build", func(b *testing.B) {
		jobs, edges := dagJobs(2000)
		specs := make([]workload.ElasticSpec, len(jobs))
		for i := range specs {
			specs[i] = workload.DegenerateSpec()
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := workload.NewElasticTrace("bench-dag", jobs, specs, edges); err != nil {
				b.Fatal(err)
			}
		}
	})
	cfg := core.Config{
		Policy:  policy.CriticalPathShift{},
		Carbon:  tr,
		Elastic: et,
		Horizon: simtime.Year,
	}
	b.Run("elastic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(cfg, et.Jobs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
