package gaia

// One benchmark per table/figure of the paper's evaluation: each runs the
// corresponding experiment end-to-end (workload + carbon generation,
// scheduling, accounting, table rendering) at Quick scale, so
// `go test -bench=Fig -benchmem` both regenerates every figure and tracks
// simulator performance. Use cmd/gaia-exp -full for paper-scale output.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/experiments"
	"github.com/carbonsched/gaia/internal/par"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/runcache"
	"github.com/carbonsched/gaia/internal/serve"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func benchFigure(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	// Disable the simulation cache: these benchmarks track simulator
	// performance, and a warm cache would serve every iteration after the
	// first from memory. BenchmarkSuiteColdVsWarm measures the cache.
	prev := experiments.ActiveCache()
	experiments.SetCache(nil)
	defer experiments.SetCache(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := e.Run(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if out.String() == "" {
			b.Fatal("empty output")
		}
	}
}

func BenchmarkFig01CarbonVariation(b *testing.B)    { benchFigure(b, "fig01") }
func BenchmarkFig02Tension(b *testing.B)            { benchFigure(b, "fig02") }
func BenchmarkFig05TraceDistributions(b *testing.B) { benchFigure(b, "fig05") }
func BenchmarkFig06RegionalCI(b *testing.B)         { benchFigure(b, "fig06") }
func BenchmarkFig07MonthlyCI(b *testing.B)          { benchFigure(b, "fig07") }
func BenchmarkFig08Policies(b *testing.B)           { benchFigure(b, "fig08") }
func BenchmarkFig09SavingsCDF(b *testing.B)         { benchFigure(b, "fig09") }
func BenchmarkFig10ReservedPolicies(b *testing.B)   { benchFigure(b, "fig10") }
func BenchmarkFig11ReservedSweep(b *testing.B)      { benchFigure(b, "fig11") }
func BenchmarkFig12SpotReserved(b *testing.B)       { benchFigure(b, "fig12") }
func BenchmarkFig13WorkloadTradeoffs(b *testing.B)  { benchFigure(b, "fig13") }
func BenchmarkFig14WaitingSweep(b *testing.B)       { benchFigure(b, "fig14") }
func BenchmarkFig15Regions(b *testing.B)            { benchFigure(b, "fig15") }
func BenchmarkFig16TotalSavings(b *testing.B)       { benchFigure(b, "fig16") }
func BenchmarkFig17ReservedTraces(b *testing.B)     { benchFigure(b, "fig17") }
func BenchmarkFig18SpotSweep(b *testing.B)          { benchFigure(b, "fig18") }
func BenchmarkFig19HybridSweep(b *testing.B)        { benchFigure(b, "fig19") }
func BenchmarkFig20CarbonPrice(b *testing.B)        { benchFigure(b, "fig20") }

// Extensions beyond the paper (see internal/experiments/extensions.go).
func BenchmarkX01ForecastError(b *testing.B)   { benchFigure(b, "x01-forecast") }
func BenchmarkX02EstimateQuality(b *testing.B) { benchFigure(b, "x02-estimates") }
func BenchmarkX03SuspendResume(b *testing.B)   { benchFigure(b, "x03-suspend") }
func BenchmarkX04Prototype(b *testing.B)       { benchFigure(b, "x04-prototype") }
func BenchmarkX05Checkpoint(b *testing.B)      { benchFigure(b, "x05-checkpoint") }
func BenchmarkX06Spatial(b *testing.B)         { benchFigure(b, "x06-spatial") }
func BenchmarkX07CarbonTax(b *testing.B)       { benchFigure(b, "x07-carbontax") }
func BenchmarkX08Scaling(b *testing.B)         { benchFigure(b, "x08-scaling") }
func BenchmarkX09Elastic(b *testing.B)         { benchFigure(b, "x09-elastic") }
func BenchmarkX10DAG(b *testing.B)             { benchFigure(b, "x10-dag") }

// sweepCells builds a 16-cell reserved-size sweep — the canonical sweep
// shape of the evaluation (Figure 11) — shared by the sequential and
// parallel sweep benchmarks below.
func sweepCells() ([]core.Config, *workload.Trace) {
	tr := carbon.RegionSAAU.Generate(24*10, 1)
	jobs := workload.AlibabaPAIWeek().GenerateByCount(rand.New(rand.NewSource(2)), 1000, simtime.Week)
	cfgs := make([]core.Config, 16)
	for i := range cfgs {
		cfgs[i] = core.Config{
			Policy:         policy.CarbonTime{},
			Carbon:         tr,
			Reserved:       10 * i,
			WorkConserving: true,
		}
	}
	return cfgs, jobs
}

// BenchmarkSweepSequential runs the 16-cell sweep one cell at a time.
func BenchmarkSweepSequential(b *testing.B) {
	cfgs, jobs := sweepCells()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := par.Map(1, cfgs, func(_ int, cfg core.Config) (any, error) {
			return core.Run(cfg, jobs)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallel fans the same 16 cells across all cores and
// reports the speedup over an in-benchmark sequential pass.
func BenchmarkSweepParallel(b *testing.B) {
	cfgs, jobs := sweepCells()
	run := func(workers int) error {
		_, err := par.Map(workers, cfgs, func(_ int, cfg core.Config) (any, error) {
			return core.Run(cfg, jobs)
		})
		return err
	}
	seqStart := time.Now()
	if err := run(1); err != nil {
		b.Fatal(err)
	}
	seqTime := time.Since(seqStart)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(0); err != nil {
			b.Fatal(err)
		}
	}
	parPerOp := float64(b.Elapsed()) / float64(b.N)
	if parPerOp > 0 {
		b.ReportMetric(float64(seqTime)/parPerOp, "speedup")
	}
}

// planSweepCells builds a 16-cell reserved-size sweep that is
// direct-eligible (no work-conserving backfill), so every cell projects
// onto one shared decision plan. Counterpart of sweepCells, which keeps
// backfill on and therefore measures the engine path.
func planSweepCells() ([]core.Config, *workload.Trace) {
	tr := carbon.RegionSAAU.Generate(24*10, 1)
	jobs := workload.AlibabaPAIWeek().GenerateByCount(rand.New(rand.NewSource(2)), 1000, simtime.Week)
	cfgs := make([]core.Config, 16)
	for i := range cfgs {
		cfgs[i] = core.Config{
			Policy:   policy.CarbonTime{},
			Carbon:   tr,
			Reserved: 10 * i,
		}
	}
	return cfgs, jobs
}

// BenchmarkReservedSweepPlanReuse measures what the plan tier buys a
// reserved-size sweep. The direct sub-benchmark is the cold sweep: every
// cell runs the full decide + replay path. The plan sub-benchmark is the
// warm sweep: the decision plan is computed once outside the timer and
// every cell only replays it. The plan variant also reports the
// warm-over-cold speedup from an in-benchmark cold pass.
func BenchmarkReservedSweepPlanReuse(b *testing.B) {
	cfgs, jobs := planSweepCells()
	nJobs := float64(len(cfgs) * jobs.Len())
	coldSweep := func() error {
		for _, cfg := range cfgs {
			if _, err := core.Run(cfg, jobs); err != nil {
				return err
			}
		}
		return nil
	}

	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := coldSweep(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed())/(float64(b.N)*nJobs), "ns/job")
	})

	b.Run("plan", func(b *testing.B) {
		plan, err := core.DecidePlan(context.Background(), cfgs[0], jobs)
		if err != nil {
			b.Fatal(err)
		}
		coldStart := time.Now()
		if err := coldSweep(); err != nil {
			b.Fatal(err)
		}
		coldTime := time.Since(coldStart)

		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, cfg := range cfgs {
				if _, err := core.RunWithPlan(context.Background(), cfg, jobs, plan); err != nil {
					b.Fatal(err)
				}
			}
		}
		warmPerOp := float64(b.Elapsed()) / float64(b.N)
		if warmPerOp > 0 {
			b.ReportMetric(float64(coldTime)/warmPerOp, "speedup")
		}
		b.ReportMetric(warmPerOp/nJobs, "ns/job")
	})
}

// runSuite renders every registered experiment once at quick scale.
func runSuite(b *testing.B) {
	b.Helper()
	for _, e := range experiments.All() {
		out, err := e.Run(experiments.Quick)
		if err != nil {
			b.Fatalf("%s: %v", e.ID, err)
		}
		if out.String() == "" {
			b.Fatalf("%s: empty output", e.ID)
		}
	}
}

// BenchmarkSuiteColdVsWarm is the headline number of the simulation
// cache: the full registered figure suite rendered against a cold cache
// (every unique cell simulates once, duplicates dedup) versus a warm one
// (every cacheable cell served from memory). The warm/cold gap is the
// suite time the cache gives back on re-runs. The figure count rides in
// the sub-benchmark name (like events= and depth= elsewhere) because the
// op is "render the whole suite": when a PR adds figures the workload
// changes, so the name changes and snapshot history restarts instead of
// reading as a regression of unchanged machinery.
func BenchmarkSuiteColdVsWarm(b *testing.B) {
	prev := experiments.ActiveCache()
	defer experiments.SetCache(prev)
	n := len(experiments.All())
	b.Run(fmt.Sprintf("cold/figures=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			experiments.SetCache(runcache.New())
			runSuite(b)
		}
	})
	b.Run(fmt.Sprintf("warm/figures=%d", n), func(b *testing.B) {
		experiments.SetCache(runcache.New())
		runSuite(b) // prime the cache outside the timer
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runSuite(b)
		}
	})
}

// BenchmarkFingerprint measures deriving one cell's cache key (canonical
// config encoding; the trace hashes are memoized after the first call).
func BenchmarkFingerprint(b *testing.B) {
	cfgs, jobs := sweepCells()
	cfg := cfgs[7]
	if _, ok := cfg.Fingerprint(jobs); !ok {
		b.Fatal("sweep cell unexpectedly not fingerprintable")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := cfg.Fingerprint(jobs); !ok {
			b.Fatal("not fingerprintable")
		}
	}
}

// Micro-benchmarks of the hot paths the figures exercise.

// BenchmarkSchedulerThroughput measures end-to-end jobs/second through the
// core scheduler (policy decisions + event simulation + accounting).
func BenchmarkSchedulerThroughput(b *testing.B) {
	tr := carbon.RegionSAAU.Generate(24*40, 1)
	jobs := workload.AlibabaPAI().GenerateByCount(rand.New(rand.NewSource(1)), 2000, 30*simtime.Day)
	cfg := core.Config{
		Policy:         policy.CarbonTime{},
		Carbon:         tr,
		Reserved:       50,
		WorkConserving: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(cfg, jobs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(jobs.Len()), "jobs/op")
}

// BenchmarkMillionJobRun is the scaling benchmark of the streaming
// metrics engine: one simulated year, one million jobs, in both retention
// modes. The sub-benchmark bytes/op is the headline number — streaming
// must hold at least a 5x advantage (pinned by the regression check in
// cmd/gaia-bench; the ratio is ~6x) — and ns/job plus post-GC live-heap
// MB are reported alongside.
func BenchmarkMillionJobRun(b *testing.B) {
	const nJobs = 1_000_000
	tr := carbon.RegionSAAU.GenerateYear(1)
	jobs := workload.AlibabaPAI().GenerateByCount(rand.New(rand.NewSource(1)), nJobs, 350*simtime.Day)
	for _, mode := range []struct {
		name   string
		retain bool
		engine bool
	}{
		{"streaming", false, false},
		{"retained", true, false},
		// The same cell with the event engine forced on: the gap to
		// "streaming" is what the direct-execution run path saves.
		{"streaming/engine", false, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := core.Config{
				Policy:     policy.CarbonTime{},
				Carbon:     tr,
				Reserved:   500,
				RetainJobs: mode.retain,
			}
			if mode.engine {
				core.ForceEventEngine(true)
				defer core.ForceEventEngine(false)
			}
			var res interface{ JobCount() int }
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := core.Run(cfg, jobs)
				if err != nil {
					b.Fatal(err)
				}
				if r.JobCount() != nJobs {
					b.Fatalf("completed %d jobs", r.JobCount())
				}
				res = r
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed())/float64(b.N)/nJobs, "ns/job")
			// Live heap with the last result still referenced: the
			// footprint a caller pays to keep the answer around.
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			b.ReportMetric(float64(ms.HeapAlloc)/(1<<20), "live-heap-MB")
			runtime.KeepAlive(res)
		})
	}
}

// BenchmarkDirectRun pins the direct-execution run path against the event
// engine on one direct-eligible cell (start-based policy, no work
// conservation, no spot): identical configuration, identical results
// (pinned by the run-path differentials), different mechanism. The
// "direct" ns/job against "engine" ns/job is the tentpole ratio.
func BenchmarkDirectRun(b *testing.B) {
	const nJobs = 200_000
	tr := carbon.RegionSAAU.GenerateYear(1)
	jobs := workload.AlibabaPAI().GenerateByCount(rand.New(rand.NewSource(1)), nJobs, 300*simtime.Day)
	run := func(forceEngine bool) func(*testing.B) {
		return func(b *testing.B) {
			cfg := core.Config{
				Policy:   policy.CarbonTime{},
				Carbon:   tr,
				Reserved: 100,
			}
			core.ForceEventEngine(forceEngine)
			defer core.ForceEventEngine(false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := core.Run(cfg, jobs)
				if err != nil {
					b.Fatal(err)
				}
				if r.JobCount() != nJobs {
					b.Fatalf("completed %d jobs", r.JobCount())
				}
			}
			b.ReportMetric(float64(b.Elapsed())/float64(b.N)/nJobs, "ns/job")
		}
	}
	b.Run("direct", run(false))
	b.Run("engine", run(true))
}

// BenchmarkCarbonIntegral measures the O(1) prefix-sum window integral.
func BenchmarkCarbonIntegral(b *testing.B) {
	tr := carbon.RegionCAUS.GenerateYear(1)
	iv := simtime.Interval{Start: 12345, End: 12345 + simtime.Time(7*simtime.Hour) + 30}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tr.Integral(iv)
	}
}

// BenchmarkPolicyDecide measures one scheduling decision per policy with
// the oracle fast paths enabled (the simulator's configuration), plus a
// reference-path variant of Carbon-Time for the before/after comparison.
// The slot-granular policies must not allocate in steady state; the
// differential tests in internal/policy pin the exact budgets.
func BenchmarkPolicyDecide(b *testing.B) {
	tr := carbon.RegionSAAU.GenerateYear(1)
	queues := map[workload.Queue]policy.QueueInfo{
		workload.QueueShort: {MaxWait: 6 * simtime.Hour, AvgLength: 90 * simtime.Minute},
		workload.QueueLong:  {MaxWait: 24 * simtime.Hour, AvgLength: 4 * simtime.Hour},
	}
	job := workload.Job{ID: 1, Length: 4 * simtime.Hour, CPUs: 2, Queue: workload.QueueLong}
	bench := func(p policy.Policy, fast bool) func(*testing.B) {
		return func(b *testing.B) {
			ctx := &policy.Context{CIS: carbon.NewPerfectService(tr), Queues: queues}
			if fast {
				ctx.EnableFastPaths()
			}
			_ = p.Decide(job, 0, ctx) // warm scratch buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = p.Decide(job, simtime.Time(i%100000), ctx)
			}
		}
	}
	for _, p := range []policy.Policy{
		policy.NoWait{}, policy.AllWait{},
		policy.LowestSlot{}, policy.LowestWindow{}, policy.CarbonTime{},
		policy.WaitAwhile{},
	} {
		b.Run(p.Name(), bench(p, true))
	}
	b.Run("CarbonTime-reference", bench(policy.CarbonTime{}, false))
}

// BenchmarkWaitAwhilePlan measures building one suspend-resume plan.
func BenchmarkWaitAwhilePlan(b *testing.B) {
	tr := carbon.RegionSAAU.GenerateYear(1)
	ctx := &policy.Context{
		CIS: carbon.NewPerfectService(tr),
		Queues: map[workload.Queue]policy.QueueInfo{
			workload.QueueLong: {MaxWait: 24 * simtime.Hour, AvgLength: 4 * simtime.Hour},
		},
	}
	job := workload.Job{ID: 1, Length: 6 * simtime.Hour, CPUs: 1, Queue: workload.QueueLong}
	p := policy.WaitAwhile{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Decide(job, simtime.Time(i%100000), ctx)
	}
}

// newBenchServer builds a small advisory service for the HTTP-layer
// benchmarks and returns its base URL.
func newBenchServer(b *testing.B) string {
	b.Helper()
	srv, err := serve.New(serve.Config{
		TraceDays:     7,
		MaxConcurrent: runtime.GOMAXPROCS(0),
		QueueDepth:    1024,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	return ts.URL
}

func benchPost(b *testing.B, url, body string, want int) {
	b.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != want {
		b.Fatalf("status = %d, want %d", resp.StatusCode, want)
	}
}

// BenchmarkAdviseThroughput measures end-to-end /v1/advise requests —
// HTTP decode, admission, an oracle-table policy decision and the carbon
// arithmetic — under client parallelism. This is the serving fast path:
// each request must stay in O(1) table lookups, never a trace scan.
func BenchmarkAdviseThroughput(b *testing.B) {
	url := newBenchServer(b) + "/v1/advise"
	body := `{"policy":"carbon-time","region":"CA-US","length_minutes":120,"arrival_minute":300}`
	benchPost(b, url, body, http.StatusOK) // warm the tables outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchPost(b, url, body, http.StatusOK)
		}
	})
}

// BenchmarkAdviseBatch measures the per-job cost of /v1/advise/batch: one
// HTTP request carrying N jobs, answered as N NDJSON verdict lines.
// Reported ns/op is per JOB, not per request — directly comparable to
// BenchmarkAdviseThroughput, whose per-request HTTP/decode/admission
// overhead is what batching amortizes away.
//
// "fleet" is the endpoint's design case — a day's queue of template jobs
// (few distinct shapes swept across arrival minutes), where the
// intra-batch memo answers repeated queries from their first verdict.
// "distinct" is the worst case: every job unique, every verdict computed.
func BenchmarkAdviseBatch(b *testing.B) {
	base := newBenchServer(b)
	url := base + "/v1/advise/batch"
	benchPost(b, base+"/v1/advise",
		`{"policy":"carbon-time","region":"CA-US","length_minutes":120,"arrival_minute":300}`,
		http.StatusOK) // warm the tables outside the timer
	batchBody := func(n int, job func(i int) string) string {
		var sb strings.Builder
		sb.WriteString(`{"policy":"carbon-time","region":"CA-US","jobs":[`)
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(job(i))
		}
		sb.WriteString(`]}`)
		return sb.String()
	}
	run := func(name string, n int, body string) {
		b.Run(fmt.Sprintf("%s/jobs=%d", name, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i += n {
				benchPost(b, url, body, http.StatusOK)
			}
		})
	}
	for _, n := range []int{1024, 8192} {
		run("fleet", n, batchBody(n, func(i int) string {
			return fmt.Sprintf(`{"length_minutes":%d,"arrival_minute":%d}`, 60+60*(i%2), i%1440)
		}))
	}
	run("distinct", 8192, batchBody(8192, func(i int) string {
		return fmt.Sprintf(`{"length_minutes":%d,"arrival_minute":%d}`, 30+i%300, i)
	}))
}

// BenchmarkSimulateColdVsWarm measures one /v1/simulate cell against a
// cold run cache (every iteration simulates a fresh cell) versus a warm
// one (every iteration is a content-addressed cache hit). The gap is
// what coalescing+caching gives interactive what-if clients.
func BenchmarkSimulateColdVsWarm(b *testing.B) {
	url := newBenchServer(b) + "/v1/simulate"
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			body := fmt.Sprintf(`{"policy":"carbon-time","region":"SA-AU","jobs":200,"days":2,"seed":%d}`, i+1)
			benchPost(b, url, body, http.StatusOK)
		}
	})
	b.Run("warm", func(b *testing.B) {
		body := `{"policy":"carbon-time","region":"SA-AU","jobs":200,"days":2,"seed":999}`
		benchPost(b, url, body, http.StatusOK) // prime outside the timer
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchPost(b, url, body, http.StatusOK)
		}
	})
}
