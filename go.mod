module github.com/carbonsched/gaia

go 1.22
