package gaia

// Event-core benchmarks: the engine's timing wheel against the reference
// heap, plus the "chatty" workload family that motivated the wheel —
// elastic jobs rescheduling their finish every simulated hour and
// cancel/reschedule storms over candidate starts. These run the sim
// package directly (no policies, no accounting), so ns/op is the cost of
// the event mechanism itself.

import (
	"fmt"
	"testing"

	"github.com/carbonsched/gaia/internal/sim"
	"github.com/carbonsched/gaia/internal/simtime"
)

// xorshift64 is the benchmarks' deterministic RNG: no math/rand in the
// measured loop, identical sequences under both queue kinds.
func xorshift64(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

var queueKinds = []struct {
	name string
	kind sim.QueueKind
}{
	{"wheel", sim.QueueWheel},
	{"heap", sim.QueueHeap},
}

// churnState sustains a fixed queue depth: every fired event schedules
// one replacement until the budget is spent, so the engine holds ~depth
// pending events for the whole measurement.
type churnState struct {
	e         *sim.Engine
	rng       uint64
	remaining int
}

type churnAction struct{ st *churnState }

func (a *churnAction) Fire() {
	st := a.st
	if st.remaining <= 0 {
		return
	}
	st.remaining--
	st.rng = xorshift64(st.rng)
	// Mostly near offsets (within the inner wheel's window), with an
	// occasional multi-day event that exercises the outer levels.
	d := simtime.Duration(st.rng & 255)
	if st.rng&0xF == 0 {
		d = simtime.Duration(st.rng % 65536)
	}
	st.e.ScheduleAction(st.e.Now().Add(d), sim.PriorityStart, a)
}

// BenchmarkEventCore measures raw schedule+fire cost per event at steady
// queue depths, wheel vs heap. ns/op is per fired event.
func BenchmarkEventCore(b *testing.B) {
	for _, q := range queueKinds {
		for _, depth := range []int{64, 1024, 16384} {
			b.Run(fmt.Sprintf("%s/depth=%d", q.name, depth), func(b *testing.B) {
				e := sim.NewEngine()
				e.SetQueue(q.kind)
				st := &churnState{e: e, rng: 0x9E3779B97F4A7C15, remaining: b.N}
				acts := make([]churnAction, depth)
				for i := range acts {
					acts[i] = churnAction{st: st}
					st.rng = xorshift64(st.rng)
					e.ScheduleAction(simtime.Time(st.rng&1023), sim.PriorityStart, &acts[i])
				}
				b.ReportAllocs()
				b.ResetTimer()
				e.Run()
			})
		}
	}
}

// elasticJob models a CarbonScaler-style autoscaled job: a pending finish
// event plus an hourly resize tick that revises the completion estimate —
// one Reschedule per simulated hour of runtime.
type elasticJob struct {
	e         *sim.Engine
	finish    sim.Handle
	end       simtime.Time
	ticksLeft int
	rng       uint64
	fired     *int
}

// The same record backs both of the job's event kinds; the distinct types
// pick the callback, so no closures are allocated.
type elasticFinish elasticJob

func (a *elasticFinish) Fire() { *a.fired++ }

type elasticTick elasticJob

func (a *elasticTick) Fire() {
	jb := (*elasticJob)(a)
	jb.ticksLeft--
	jb.rng = xorshift64(jb.rng)
	// Resize revises the completion estimate by up to ±1h, clamped to
	// stay in the future.
	end := jb.end.Add(simtime.Duration(jb.rng%120) - 60)
	if min := jb.e.Now() + 1; end < min {
		end = min
	}
	if nh, ok := jb.e.Reschedule(jb.finish, end, sim.PriorityFinish); ok {
		jb.finish, jb.end = nh, end
	}
	if jb.ticksLeft > 0 {
		jb.e.ScheduleAction(jb.e.Now().Add(simtime.Hour), sim.PriorityLow, a)
	}
}

// BenchmarkChattyElastic runs a fleet of 2048 elastic jobs, each firing
// `ticks` hourly resize ticks that Reschedule its finish event. One op is
// the whole fleet's simulation.
func BenchmarkChattyElastic(b *testing.B) {
	const nJobs = 2048
	for _, q := range queueKinds {
		for _, ticks := range []int{8, 64} {
			b.Run(fmt.Sprintf("%s/ticks=%d", q.name, ticks), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					e := sim.NewEngine()
					e.SetQueue(q.kind)
					jobs := make([]elasticJob, nJobs)
					rng := uint64(0x9E3779B97F4A7C15)
					fired := 0
					for j := range jobs {
						rng = xorshift64(rng)
						jb := &jobs[j]
						jb.e, jb.rng, jb.fired = e, rng, &fired
						jb.ticksLeft = ticks
						arrival := simtime.Time(rng % (7 * 1440))
						jb.end = arrival.Add(simtime.Duration(ticks)*simtime.Hour +
							simtime.Duration(rng%240))
						jb.finish = e.ScheduleAction(jb.end, sim.PriorityFinish, (*elasticFinish)(jb))
						e.ScheduleAction(arrival.Add(simtime.Hour), sim.PriorityLow, (*elasticTick)(jb))
					}
					e.Run()
					if fired != nJobs {
						b.Fatalf("finished %d jobs, want %d", fired, nJobs)
					}
				}
				b.ReportMetric(float64(nJobs*(ticks+2)), "events/op")
			})
		}
	}
}

// stormStart counts the surviving candidate start when it fires.
type stormStart struct{ fired *int }

func (a *stormStart) Fire() { *a.fired++ }

// BenchmarkChattyCancelStorm schedules `events` candidate start times per
// job — a planner hedging across green windows — then cancels all but
// one, so the queue churns through (events-1)/events canceled records.
// One op is a 2048-job fleet.
func BenchmarkChattyCancelStorm(b *testing.B) {
	const nJobs = 2048
	for _, q := range queueKinds {
		for _, events := range []int{8, 64} {
			b.Run(fmt.Sprintf("%s/events=%d", q.name, events), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					e := sim.NewEngine()
					e.SetQueue(q.kind)
					fired := 0
					act := stormStart{fired: &fired}
					rng := uint64(0x2545F4914F6CDD1D)
					for j := 0; j < nJobs; j++ {
						rng = xorshift64(rng)
						base := simtime.Time(rng % (7 * 1440))
						keep := int(rng % uint64(events))
						for k := 0; k < events; k++ {
							h := e.ScheduleAction(base.Add(simtime.Duration(k)*simtime.Hour),
								sim.PriorityStart, &act)
							if k != keep {
								e.Cancel(h)
							}
						}
					}
					e.Run()
					if fired != nJobs {
						b.Fatalf("fired %d starts, want %d", fired, nJobs)
					}
				}
				b.ReportMetric(float64(nJobs*events), "events/op")
			})
		}
	}
}
