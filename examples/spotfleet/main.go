// Spot fleet walkthrough: how deep discounts interact with evictions.
// Spot instances let a carbon-aware schedule run at 20% of the on-demand
// price — but evictions lose all progress, so routing long jobs to spot
// backfires (paper §4.2.4, Figure 18, guidance #5).
//
//	go run ./examples/spotfleet
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func main() {
	ci := carbon.RegionSAAU.Generate(20*24, 1)
	jobs := workload.AzureVM().GenerateByCount(
		rand.New(rand.NewSource(4)), 1500, 2*simtime.Week)

	base, err := core.Run(core.Config{
		Policy: policy.NoWait{}, Carbon: ci, Horizon: 18 * simtime.Day,
	}, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Spot-First-Carbon-Time vs on-demand NoWait")
	fmt.Println("evict%/h  Jmax   cost(norm)  carbon(norm)  evictions  wasted CPU·h")
	for _, evict := range []float64{0, 0.10} {
		for _, jmaxH := range []int{2, 6, 24} {
			res, err := core.Run(core.Config{
				Policy:       policy.CarbonTime{},
				Carbon:       ci,
				Horizon:      18 * simtime.Day,
				SpotMaxLen:   simtime.Duration(jmaxH) * simtime.Hour,
				EvictionRate: evict,
				Seed:         7,
			}, jobs)
			if err != nil {
				log.Fatal(err)
			}
			rel := res.CompareTo(base)
			wasted := res.TotalWastedCPUHours()
			fmt.Printf("%7.0f%%  %3dh  %10.3f  %12.3f  %9d  %10.1f\n",
				100*evict, jmaxH, rel.Cost, rel.Carbon, res.TotalEvictions(), wasted)
		}
	}
	fmt.Println("\nwith evictions, extending Jmax past a few hours stops paying:")
	fmt.Println("lost progress costs money AND carbon (it reruns in a dirtier slot).")
}
