// Quickstart: schedule a synthetic batch workload carbon-aware and compare
// it against the carbon-agnostic baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func main() {
	// 1. Grid carbon intensity: two weeks of the California duck curve.
	//    (Use carbon.ReadCSV to load real ElectricityMaps exports.)
	ci := carbon.RegionCAUS.Generate(14*24, 1)

	// 2. A week of batch jobs resembling the Alibaba-PAI ML platform.
	jobs := workload.AlibabaPAI().GenerateByCount(
		rand.New(rand.NewSource(2)), 500, simtime.Week)

	// 3. Run three schedulers over the same workload.
	for _, p := range []policy.Policy{
		policy.NoWait{},       // run on arrival (baseline)
		policy.LowestWindow{}, // chase the lowest-carbon window
		policy.CarbonTime{},   // GAIA: carbon saving per completion time
	} {
		res, err := core.Run(core.Config{
			Policy: p,
			Carbon: ci,
			// Defaults: short queue ≤2h waits ≤6h, long queue waits ≤24h,
			// on-demand capacity only.
		}, jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s carbon %6.2f kg   savings %5.1f%%   mean wait %v\n",
			res.Label, res.TotalCarbonKg(),
			100*res.CarbonSavingsFraction(), res.MeanWaiting())
	}
}
