// Prototype walkthrough: the same policies on the GAIA-Simulator and on
// the node-level prototype runtime (boot delays, idle timeouts, spot
// interruption, whole-instance billing — the paper's AWS ParallelCluster
// deployment, §5). Absolute numbers shift with the node overheads;
// normalized comparisons barely move.
//
//	go run ./examples/prototype
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/carbonsched/gaia/internal/batch"
	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func main() {
	ci := carbon.RegionSAAU.Generate(10*24, 1)
	jobs := workload.AlibabaPAIWeek().GenerateByCount(
		rand.New(rand.NewSource(6)), 600, simtime.Week)
	const reserved = 12

	fmt.Println("policy         runtime    carbon(kg)  cost($)   wait     extra")
	for _, p := range []policy.Policy{policy.NoWait{}, policy.CarbonTime{}} {
		sim, err := core.Run(core.Config{
			Policy:   p,
			Carbon:   ci,
			Reserved: reserved,
			Horizon:  10 * simtime.Day,
		}, jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s  simulator  %10.3f  %8.2f  %-7v  —\n",
			sim.Label, sim.TotalCarbonKg(), sim.TotalCost(), sim.MeanWaiting())

		proto, err := batch.Run(batch.Config{
			Policy:        p,
			Carbon:        ci,
			ReservedNodes: reserved,
			BootDelay:     3 * simtime.Minute,
			IdleTimeout:   10 * simtime.Minute,
			Horizon:       10 * simtime.Day,
		}, jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s  prototype  %10.3f  %8.2f  %-7v  %d nodes launched\n",
			proto.Label, proto.CarbonKg(), proto.Cost, proto.MeanWaiting(), proto.NodesLaunched)
	}
	fmt.Println("\nthe prototype pays for boots and idle tails the simulator ignores;")
	fmt.Println("normalized policy comparisons survive (experiment x04 quantifies this).")
}
