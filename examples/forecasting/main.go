// Forecasting walkthrough: GAIA without the perfect-forecast assumption.
// A seasonal-naive forecaster trained on the trailing four weeks drives
// Carbon-Time's decisions; its savings are compared against perfect
// knowledge, and the forecaster's own accuracy is reported per lead time.
//
//	go run ./examples/forecasting
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/forecast"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func main() {
	// Ten weeks of the volatile South Australian grid.
	ci := carbon.RegionSAAU.Generate(10*7*24, 1)
	jobs := workload.AlibabaPAI().GenerateByCount(
		rand.New(rand.NewSource(7)), 4000, 10*7*simtime.Day)

	model, err := forecast.NewSeasonalNaive(ci, 28, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("forecaster accuracy (hour-of-week profile + AR residual):")
	for _, a := range model.Evaluate([]int{1, 6, 24, 48}) {
		fmt.Printf("  %2dh ahead: MAPE %5.1f%%  RMSE %5.1f g/kWh\n",
			a.LeadHours, 100*a.MAPE, a.RMSE)
	}

	base, err := core.Run(core.Config{Policy: policy.NoWait{}, Carbon: ci}, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCarbon-Time savings vs NoWait:")
	for _, cis := range []struct {
		name string
		svc  carbon.Service
	}{
		{"perfect forecasts (paper's assumption)", carbon.NewPerfectService(ci)},
		{"trained seasonal-naive forecaster", model},
	} {
		res, err := core.Run(core.Config{
			Policy: policy.CarbonTime{},
			Carbon: ci,
			CIS:    cis.svc,
		}, jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-42s %5.1f%% savings, mean wait %v\n",
			cis.name, 100*(1-res.TotalCarbon()/base.TotalCarbon()), res.MeanWaiting())
	}
	fmt.Println("\nshifting targets the next diurnal trough, which forecasts robustly —")
	fmt.Println("the perfect-forecast assumption costs almost nothing (experiment x01).")
}
