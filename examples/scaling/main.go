// Scaling walkthrough: carbon-aware demand regulation, the paper
// conclusion's named future work. An elastic (malleable) job widens in
// clean hours and narrows in dirty ones; the planner buys marginal
// throughput where CI / marginal-speedup is cheapest.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/scaling"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/viz"
)

func main() {
	ci := carbon.RegionSAAU.Generate(72, 1)
	cis := carbon.NewPerfectService(ci)
	fmt.Println("carbon intensity (72h):", viz.Sparkline(ci.Values()))

	job := scaling.ElasticJob{
		Arrival:     0,
		Work:        16, // serial CPU-hours
		MaxParallel: 8,
		Curve:       scaling.Amdahl{Parallel: 0.9},
		Deadline:    60 * simtime.Hour,
	}

	const kw = 0.01
	serial, err := scaling.StaticPlan(job, 1)
	if err != nil {
		log.Fatal(err)
	}
	scaled, err := scaling.PlanJob(job, cis)
	if err != nil {
		log.Fatal(err)
	}

	// Render the width schedule alongside the CI curve.
	width := make([]float64, 72)
	for _, a := range scaled.Allocs {
		if a.Slot < len(width) {
			width[a.Slot] = float64(a.CPUs)
		}
	}
	fmt.Println("scaled width  (72h):", viz.Sparkline(width))

	fmt.Printf("\n%-14s %10s %8s %12s\n", "plan", "carbon(g)", "cpu·h", "completion")
	for _, p := range []struct {
		name string
		plan scaling.Plan
	}{{"serial (k=1)", serial}, {"carbon-scaler", scaled}} {
		fmt.Printf("%-14s %10.1f %8.1f %12v\n",
			p.name, p.plan.Carbon(ci, kw), p.plan.CPUHours(),
			p.plan.Completion(job.Arrival).Sub(job.Arrival))
	}
	fmt.Println("\nthe width curve is the CI curve upside down: the job runs wide in")
	fmt.Println("the solar trough, pays Amdahl overhead, and cuts carbon well below")
	fmt.Println("anything temporal shifting alone can reach (experiment x08).")
}
