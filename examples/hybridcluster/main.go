// Hybrid cluster walkthrough: size reserved capacity on a cluster that
// schedules carbon-aware, reproducing the paper's central cost insight —
// carbon-aware demand spikes cut reserved utilization, so reserved
// capacity trades cost savings against carbon savings (Figure 11, §4.2.3).
//
//	go run ./examples/hybridcluster
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func main() {
	ci := carbon.RegionSAAU.Generate(14*24, 1)
	jobs := workload.AlibabaPAIWeek().GenerateByCount(
		rand.New(rand.NewSource(3)), 1000, simtime.Week)
	demand := jobs.MeanDemand(simtime.Week)
	fmt.Printf("workload: %d jobs, mean demand %.1f CPUs\n\n", jobs.Len(), demand)

	// Pure on-demand, carbon-agnostic reference point.
	base, err := core.Run(core.Config{
		Policy: policy.NoWait{}, Carbon: ci, Horizon: 10 * simtime.Day,
	}, jobs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("reserved  cost(norm)  carbon(norm)  wait    reserved-util")
	type point struct {
		r            int
		cost, carbon float64
	}
	var best point
	best.cost = math.Inf(1)
	for frac := 0.0; frac <= 1.5; frac += 0.25 {
		r := int(math.Round(frac * demand))
		res, err := core.Run(core.Config{
			Policy:         policy.CarbonTime{},
			Carbon:         ci,
			Horizon:        10 * simtime.Day,
			Reserved:       r,
			WorkConserving: true, // RES-First: never idle a paid unit
		}, jobs)
		if err != nil {
			log.Fatal(err)
		}
		rel := res.CompareTo(base)
		fmt.Printf("%8d  %10.3f  %12.3f  %-6v  %5.1f%%\n",
			r, rel.Cost, rel.Carbon, res.MeanWaiting(), 100*res.ReservedUtilization())
		if rel.Cost < best.cost {
			best = point{r, rel.Cost, rel.Carbon}
		}
	}
	fmt.Printf("\ncost valley at R=%d: %.0f%% cheaper than on-demand NoWait with %.0f%% carbon savings.\n",
		best.r, 100*(1-best.cost), 100*(1-best.carbon))
	fmt.Println("paper guidance: reserve between the base and the mean demand (§7).")
}
