// Region comparison: the same workload scheduled carbon-aware across six
// grid regions. Normalized savings track a grid's variability, but total
// kilograms avoided track its absolute carbon intensity — judge
// deployments by total reduction (paper Figures 15-16, §6.4.3).
//
//	go run ./examples/regions
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func main() {
	jobs := workload.AlibabaPAI().GenerateByCount(
		rand.New(rand.NewSource(5)), 2000, 3*simtime.Week)

	fmt.Println("region  class            meanCI  savings%  saved(kg)  total(kg)  mean wait")
	for i, spec := range carbon.Regions() {
		ci := spec.Generate(24*24, int64(10+i))
		run := func(p policy.Policy) *coreResult {
			res, err := core.Run(core.Config{
				Policy: p, Carbon: ci, Horizon: 24 * simtime.Day,
			}, jobs)
			if err != nil {
				log.Fatal(err)
			}
			return &coreResult{res.TotalCarbonKg(), res.MeanWaiting()}
		}
		base := run(policy.NoWait{})
		aware := run(policy.CarbonTime{})
		fmt.Printf("%-6s  %-15s  %6.0f  %7.1f%%  %9.2f  %9.2f  %v\n",
			spec.Code, spec.Class, ci.Mean(),
			100*(1-aware.kg/base.kg), base.kg-aware.kg, aware.kg, aware.wait)
	}
	fmt.Println("\nvariable grids (SA-AU, CA-US) give the biggest relative cuts;")
	fmt.Println("dirty grids (KY-US) can still avoid more absolute kilograms per point.")
	fmt.Println("waiting time is workload-determined and stays flat across regions.")
}

type coreResult struct {
	kg   float64
	wait simtime.Duration
}
