// Spatial scheduling walkthrough: the future work the paper defers —
// choosing *where* as well as *when* each job runs. Each job is placed in
// the candidate region whose temporal schedule forecasts the least
// carbon; per-region clusters then run normally.
//
//	go run ./examples/spatial
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/geo"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func main() {
	regions := []*carbon.Trace{
		carbon.RegionSAAU.Generate(24*24, 1), // variable, deep solar troughs
		carbon.RegionONCA.Generate(24*24, 2), // low and stable
		carbon.RegionKYUS.Generate(24*24, 3), // high and stable
	}
	jobs := workload.AlibabaPAI().GenerateByCount(
		rand.New(rand.NewSource(8)), 2000, 3*simtime.Week)

	fmt.Println("temporal shifting only (Carbon-Time in one region):")
	for _, tr := range regions {
		res, err := core.Run(core.Config{Policy: policy.CarbonTime{}, Carbon: tr}, jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %8.2f kg\n", tr.Region(), res.TotalCarbonKg())
	}

	multi, err := geo.Run(geo.Config{Policy: policy.CarbonTime{}, Regions: regions}, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspatial + temporal: %.2f kg\n", multi.TotalCarbon()/1000)
	shares := multi.JobShare()
	for i, tr := range regions {
		fmt.Printf("  %-6s receives %4.1f%% of jobs\n", tr.Region(), 100*shares[i])
	}
	fmt.Println("\njobs overwhelmingly chase the cleanest grid; only deep solar")
	fmt.Println("troughs occasionally beat it. Region choice dominates temporal")
	fmt.Println("shifting — which is why the paper scopes to a single region.")
}
