package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/par"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// The direct-execution run path.
//
// In any configuration admitted by Config.directEligible the scheduler
// never feeds information back into decisions: policies see only
// (job, arrival, oracle tables), jobs run uninterrupted from their chosen
// start, and the reserved-vs-on-demand split is a pure replay of pool
// occupancy over the start/finish endpoints. That lets Run skip the event
// engine entirely:
//
//	phase 1  fan every decision across cores (par.Shards), each shard
//	         writing job-ID-indexed columns — embarrassingly parallel;
//	phase 2  sort the start and finish endpoints and replay a sequential
//	         two-pointer sweep over them, reproducing the engine's pool
//	         arithmetic and folding the order-sensitive float totals in
//	         the exact finish order the engine would produce;
//	phase 3  fan the remaining order-free accounting (usage bins, cost
//	         column, retained records) back across cores.
//
// Bit-identity with the event engine rests on its fire-order guarantees
// (DESIGN.md §15): with every job length >= 1 minute, starts fire in
// (time, jobID) order, finishes fire in (time, startRank) order, and at
// any instant all finishes precede all starts. The sweep processes
// endpoints in exactly that merged order, and every float the engine
// computes is either stored per job (order-free columns) or folded here
// in replayed finish order, so results — aggregates, fingerprints and
// retained records alike — are byte-identical.

// errDirectFallback signals that a nominally eligible run must be
// re-executed on the event engine (a start-based policy dynamically
// returned a suspend-resume plan, which the sweep replay does not model).
var errDirectFallback = errors.New("core: direct path fallback")

// directRuns counts completed direct-path executions; tests use the delta
// to assert which configurations ride the fast path.
var directRuns atomic.Int64

// directShardMin is the minimum decide-phase shard size. Figure sweeps
// already run one cell per core; keeping small cells single-shard avoids
// nested-parallelism thrash while million-job cells still fan out fully.
const directShardMin = 8192

// directWorkersOverride pins the fan-out width (test seam: differential
// tests force multi-shard execution on any machine; 0 = automatic).
var directWorkersOverride atomic.Int32

// directWorkers picks the decide fan-out width for an n-job trace.
func directWorkers(n int) int {
	if v := directWorkersOverride.Load(); v > 0 {
		return int(v)
	}
	w := n / directShardMin
	if w < 1 {
		w = 1
	}
	if max := runtime.GOMAXPROCS(0); w > max {
		w = max
	}
	return w
}

// runDirect executes a direct-eligible configuration. Errors other than
// errDirectFallback are in their final API form.
func runDirect(ctx context.Context, cfg Config, trace *workload.Trace) (*metrics.Result, error) {
	n := len(trace.Jobs)
	bounds := cfg.queueBounds()
	acc := metrics.NewAccumulator(n, cfg.Horizon)
	carbonOf := func(iv simtime.Interval, cpus int) float64 {
		return cfg.Power.Carbon(cfg.Carbon.Integral(iv), cpus)
	}

	// Phase 1: decide every job in parallel. Shards cover disjoint job-ID
	// ranges, so the column writes never contend; the oracle tables behind
	// the fast paths are immutable and shared, while each worker gets its
	// own policy.Context (scratch buffers are not goroutine-safe). The
	// Queues map is read-only after construction and shared to avoid
	// per-worker O(n) mean-length scans.
	base := cfg.policyContext(trace)
	starts := make([]simtime.Time, n)
	done := ctx.Done()
	shards := par.Shards(directWorkers(n), n)
	if err := par.ForEach(len(shards), shards, func(_ int, sh par.Range) error {
		pctx := &policy.Context{CIS: cfg.CIS, Queues: base.Queues}
		pctx.EnableFastPaths()
		for i := sh.Lo; i < sh.Hi; i++ {
			if done != nil && (i-sh.Lo)%interruptStride == 0 {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("core: run canceled: %w", err)
				}
			}
			job := trace.Jobs[i]
			job.Queue = workload.ClassifyLength(job.Length, bounds)
			now := job.Arrival
			baseline := carbonOf(simtime.Interval{Start: now, End: now.Add(job.Length)}, job.CPUs)
			d := cfg.Policy.Decide(job, now, pctx)
			if err := d.Validate(job, now); err != nil {
				return fmt.Errorf("core: run failed: policy %s: %v", cfg.Policy.Name(), err)
			}
			if d.IsPlan() {
				return errDirectFallback
			}
			iv := simtime.Interval{Start: d.Start, End: d.Start.Add(job.Length)}
			starts[i] = d.Start
			// Waiting is finish - arrival - length, which the integer time
			// model reduces to start - arrival exactly.
			acc.PutJob(i, d.Start.Sub(job.Arrival), job.Length,
				carbonOf(iv, job.CPUs), baseline, job.Queue)
		}
		return nil
	}); err != nil {
		if errors.Is(err, errDirectFallback) {
			return nil, errDirectFallback
		}
		return nil, err
	}

	// Phase 2: sequential sweep. startOrd lists job IDs by (start, ID) —
	// the engine's start fire order; finOrd lists start ranks by
	// (finish, rank) — its finish fire order. The two-pointer merge below
	// processes, at each instant, all finishes before any start, exactly
	// as the engine's priority ordering does, replaying the reserved
	// pool's acquire/release arithmetic and folding the CPU·hour totals.
	startOrd := timeOrder(starts)
	stR := make([]simtime.Time, n)
	enR := make([]simtime.Time, n)
	cpuR := make([]int32, n)
	for r, id := range startOrd {
		j := &trace.Jobs[id]
		stR[r] = starts[id]
		enR[r] = starts[id].Add(j.Length)
		cpuR[r] = int32(j.CPUs)
	}
	finOrd := timeOrder(enR)
	if n > 0 {
		acc.GrowUsage(enR[finOrd[n-1]])
	}
	reservedBy := make([]int32, n) // indexed by job ID
	idle := cfg.Reserved
	si := 0
	for fi := 0; fi < n; fi++ {
		if done != nil && fi%interruptStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: run canceled: %w", err)
			}
		}
		r := int(finOrd[fi])
		for si < n && stR[si] < enR[r] {
			res := int(cpuR[si])
			if res > idle {
				res = idle
			}
			idle -= res
			reservedBy[startOrd[si]] = int32(res)
			si++
		}
		res := int(reservedBy[startOrd[r]])
		idle += res
		hours := simtime.Interval{Start: stR[r], End: enR[r]}.Len().Hours()
		var h [3]float64
		h[cloud.Reserved] = float64(res) * hours
		h[cloud.OnDemand] = float64(int(cpuR[r])-res) * hours
		h[cloud.Spot] = float64(0) * hours
		acc.AddCPUHours(h)
	}

	// Phase 3: order-free accounting back in parallel — usage bins commute
	// under integer addition (atomic adds into the pre-grown bins), the
	// cost column and retained records are ID-indexed.
	var results []metrics.JobResult
	if cfg.RetainJobs {
		results = make([]metrics.JobResult, n)
	}
	odRate, spotRate := cfg.Pricing.HourlyRate(cloud.OnDemand), cfg.Pricing.HourlyRate(cloud.Spot)
	// With a single shard the pass is sequential, so the cheaper
	// non-atomic binning applies; sharded passes need the atomic variant
	// (identical arithmetic — integer adds commute exactly).
	addUsage := acc.AddUsageAtomic
	if len(shards) <= 1 {
		addUsage = acc.AddUsage
	}
	if err := par.ForEach(len(shards), shards, func(_ int, sh par.Range) error {
		for i := sh.Lo; i < sh.Hi; i++ {
			if done != nil && (i-sh.Lo)%interruptStride == 0 {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("core: run canceled: %w", err)
				}
			}
			job := &trace.Jobs[i]
			res := int(reservedBy[i])
			od := job.CPUs - res
			iv := simtime.Interval{Start: starts[i], End: starts[i].Add(job.Length)}
			hours := iv.Len().Hours()
			cost := (float64(od)*odRate + float64(0)*spotRate) * hours
			acc.PutCost(i, cost)
			addUsage(iv, res, od, 0)
			if results != nil {
				var h [3]float64
				h[cloud.Reserved] = float64(res) * hours
				h[cloud.OnDemand] = float64(od) * hours
				h[cloud.Spot] = float64(0) * hours
				results[i] = metrics.JobResult{
					JobID:          i,
					Queue:          acc.Queue(i),
					User:           job.User,
					CPUs:           job.CPUs,
					Length:         job.Length,
					Arrival:        job.Arrival,
					Start:          iv.Start,
					Finish:         iv.End,
					Waiting:        iv.End.Sub(job.Arrival) - job.Length,
					Carbon:         carbonOf(iv, job.CPUs),
					BaselineCarbon: carbonOf(simtime.Interval{Start: job.Arrival, End: job.Arrival.Add(job.Length)}, job.CPUs),
					UsageCost:      cost,
					CPUHours:       h,
					Segments: []metrics.Segment{{
						Interval: iv, Reserved: res, OnDemand: od,
					}},
				}
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	directRuns.Add(1)
	res := &metrics.Result{
		Label:    cfg.Label,
		Region:   cfg.Carbon.Region(),
		Workload: trace.Name,
		Reserved: cfg.Reserved,
		Horizon:  cfg.Horizon,
		Pricing:  cfg.Pricing,
		Jobs:     results,
	}
	res.AttachAccumulator(acc)
	return res, nil
}

// timeOrder returns 0..len(keys)-1 stably sorted ascending by key: a
// counting sort when the key range is comparable to n (simulation
// endpoints cluster into at most a horizon's worth of minutes), a stdlib
// stable sort otherwise. Both are stable, so ties keep input order —
// exactly the (time, index) lexicographic order the sweep needs.
func timeOrder(keys []simtime.Time) []int32 {
	n := len(keys)
	ord := make([]int32, n)
	for i := range ord {
		ord[i] = int32(i)
	}
	if n < 2 {
		return ord
	}
	lo, hi := keys[0], keys[0]
	for _, k := range keys[1:] {
		if k < lo {
			lo = k
		} else if k > hi {
			hi = k
		}
	}
	span := int64(hi-lo) + 1
	if span <= int64(8*n) || span <= 1<<16 {
		cnt := make([]int32, span+1)
		for _, k := range keys {
			cnt[int64(k-lo)+1]++
		}
		for b := 1; b < len(cnt); b++ {
			cnt[b] += cnt[b-1]
		}
		for i, k := range keys {
			b := int64(k - lo)
			ord[cnt[b]] = int32(i)
			cnt[b]++
		}
		return ord
	}
	sort.SliceStable(ord, func(a, b int) bool {
		return keys[ord[a]] < keys[ord[b]]
	})
	return ord
}
