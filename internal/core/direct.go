package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/par"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// The direct-execution run path.
//
// In any configuration admitted by Config.directEligible the scheduler
// never feeds information back into decisions: policies see only
// (job, arrival, oracle tables), jobs run uninterrupted from their chosen
// start, and the reserved-vs-on-demand split is a pure replay of pool
// occupancy over the start/finish endpoints. That lets Run skip the event
// engine entirely:
//
//	phase 1  fan every decision across cores (par.Shards), each shard
//	         writing a job-ID-indexed start column — embarrassingly
//	         parallel (decideDirect);
//	phase 2  sort the start and finish endpoints and replay a sequential
//	         two-pointer sweep over them, reproducing the engine's pool
//	         arithmetic and folding the order-sensitive float totals in
//	         the exact finish order the engine would produce;
//	phase 3  fan the remaining order-free accounting (per-job columns,
//	         usage bins, cost column, retained records) back across cores.
//
// Phase 1 is the decide phase; phases 2-3 together are the replay
// (replayDirect). The split is the seam the decision-plan cache rides
// (plan.go): decisions depend only on (policy, CIS, queue bounds and
// waits, workload), so a sweep that varies accounting knobs — reserved
// size, prices, the realized carbon trace — decides once and replays every
// cell from the shared start column.
//
// Bit-identity with the event engine rests on its fire-order guarantees
// (DESIGN.md §15): with every job length >= 1 minute, starts fire in
// (time, jobID) order, finishes fire in (time, startRank) order, and at
// any instant all finishes precede all starts. The sweep processes
// endpoints in exactly that merged order, and every float the engine
// computes is either stored per job (order-free columns) or folded here
// in replayed finish order, so results — aggregates, fingerprints and
// retained records alike — are byte-identical.

// errDirectFallback signals that a nominally eligible run must be
// re-executed on the event engine (a start-based policy dynamically
// returned a suspend-resume plan, which the sweep replay does not model).
var errDirectFallback = errors.New("core: direct path fallback")

// directRuns counts completed direct-path executions (full runs and plan
// replays alike); tests use the delta to assert which configurations ride
// the fast path.
var directRuns atomic.Int64

// directShardMin is the minimum decide-phase shard size. Figure sweeps
// already run one cell per core; keeping small cells single-shard avoids
// nested-parallelism thrash while million-job cells still fan out fully.
const directShardMin = 8192

// directWorkersOverride pins the fan-out width (test seam: differential
// tests force multi-shard execution on any machine; 0 = automatic).
var directWorkersOverride atomic.Int32

// directWorkers picks the decide fan-out width for an n-job trace.
func directWorkers(n int) int {
	if v := directWorkersOverride.Load(); v > 0 {
		return int(v)
	}
	w := n / directShardMin
	if w < 1 {
		w = 1
	}
	if max := runtime.GOMAXPROCS(0); w > max {
		w = max
	}
	return w
}

// runDirect executes a direct-eligible configuration: decide, then replay.
// Errors other than errDirectFallback are in their final API form.
func runDirect(ctx context.Context, cfg Config, trace *workload.Trace) (*metrics.Result, error) {
	starts, err := decideDirect(ctx, cfg, trace)
	if err != nil {
		return nil, err
	}
	return replayDirect(ctx, cfg, trace, starts, nil)
}

// decideDirect is phase 1: decide every job in parallel and return the
// start column. Shards cover disjoint job-ID ranges, so the column writes
// never contend; the oracle tables behind the fast paths are immutable and
// shared, while each worker gets its own policy.Context (scratch buffers
// are not goroutine-safe). The Queues map is read-only after construction
// and shared to avoid per-worker O(n) mean-length scans.
func decideDirect(ctx context.Context, cfg Config, trace *workload.Trace) ([]simtime.Time, error) {
	n := len(trace.Jobs)
	bounds := cfg.queueBounds()
	base := cfg.policyContext(trace)
	starts := make([]simtime.Time, n)
	done := ctx.Done()
	shards := par.Shards(directWorkers(n), n)
	if err := par.ForEach(len(shards), shards, func(_ int, sh par.Range) error {
		pctx := &policy.Context{CIS: cfg.CIS, Queues: base.Queues}
		pctx.EnableFastPaths()
		for i := sh.Lo; i < sh.Hi; i++ {
			if done != nil && (i-sh.Lo)%interruptStride == 0 {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("core: run canceled: %w", err)
				}
			}
			job := trace.Jobs[i]
			job.Queue = workload.ClassifyLength(job.Length, bounds)
			now := job.Arrival
			d := cfg.Policy.Decide(job, now, pctx)
			if err := d.Validate(job, now); err != nil {
				return fmt.Errorf("core: run failed: policy %s: %v", cfg.Policy.Name(), err)
			}
			if d.IsPlan() {
				return errDirectFallback
			}
			starts[i] = d.Start
		}
		return nil
	}); err != nil {
		if errors.Is(err, errDirectFallback) {
			return nil, errDirectFallback
		}
		return nil, err
	}
	return starts, nil
}

// directScratch is the per-replay scratch the sweep phase needs: the two
// endpoint orderings, the rank-indexed start/finish/CPU columns, the
// reserved-allocation column and the counting-sort buckets. Replayed cells
// recycle it through directScratchPool so a warm sweep costs no per-cell
// endpoint allocations.
type directScratch struct {
	startOrd, finOrd []int32
	stR, enR         []simtime.Time
	cpuR             []int32
	reservedBy       []int32
	cnt              []int32
}

var directScratchPool = sync.Pool{New: func() any { return new(directScratch) }}

// directScratchMax caps the column size a scratch may have and still
// return to the pool. Sweep cells — the replays the pool exists for —
// run thousands of jobs; a million-job one-shot run would otherwise park
// tens of MB of dead scratch in the pool, inflating the live heap and
// skewing GC pacing for the rest of the process.
const directScratchMax = 1 << 18

// release returns the scratch to the pool, or drops an oversized one.
func (s *directScratch) release() {
	if cap(s.reservedBy) > directScratchMax {
		return
	}
	directScratchPool.Put(s)
}

// grow resizes every column to n, reusing capacity from earlier replays.
// Contents are overwritten before use (reservedBy explicitly below), so no
// clearing is needed here.
func (s *directScratch) grow(n int) {
	grow32 := func(b []int32) []int32 {
		if cap(b) < n {
			return make([]int32, n)
		}
		return b[:n]
	}
	s.startOrd = grow32(s.startOrd)
	s.finOrd = grow32(s.finOrd)
	s.cpuR = grow32(s.cpuR)
	if cap(s.stR) < n {
		s.stR = make([]simtime.Time, n)
		s.enR = make([]simtime.Time, n)
	} else {
		s.stR, s.enR = s.stR[:n], s.enR[:n]
	}
	s.growReserved(n)
}

// growReserved resizes only the reserved-allocation column — all a replay
// needs when the endpoint orderings come memoized from a plan.
func (s *directScratch) growReserved(n int) {
	if cap(s.reservedBy) < n {
		s.reservedBy = make([]int32, n)
	} else {
		s.reservedBy = s.reservedBy[:n]
	}
}

// replayOrders is the sweep phase's endpoint geometry: job IDs in start
// fire order, start ranks in finish fire order, and the rank-indexed
// start/finish/CPU columns. It is a pure function of (starts, trace), so
// every cell of a sweep replaying one plan shares identical orders; plans
// memoize the value (trace-identity keyed) and replays after the first
// skip both counting sorts. A memoized value is shared across concurrent
// replays and must never be mutated.
type replayOrders struct {
	trace            *workload.Trace
	startOrd, finOrd []int32
	stR, enR         []simtime.Time
	cpuR             []int32
}

// fill computes the orderings for (starts, o.trace) into o's columns,
// which must already have length len(starts). cnt is a reusable
// counting-sort bucket buffer.
func (o *replayOrders) fill(cnt *[]int32, starts []simtime.Time) {
	o.startOrd = timeOrderInto(o.startOrd, cnt, starts)
	for r, id := range o.startOrd {
		j := &o.trace.Jobs[id]
		o.stR[r] = starts[id]
		o.enR[r] = starts[id].Add(j.Length)
		o.cpuR[r] = int32(j.CPUs)
	}
	o.finOrd = timeOrderInto(o.finOrd, cnt, o.enR)
}

// replayDirect is phases 2-3: given the decided start column (freshly
// decided or replayed from a cached plan — the slice is treated as
// immutable either way), sweep the endpoints sequentially and fan the
// order-free accounting back out. The result is bit-identical to a full
// runDirect whose decide phase produced the same starts. A non-nil plan
// supplies (and on first use receives) the memoized endpoint orderings;
// runDirect passes nil and sorts into pooled scratch.
func replayDirect(ctx context.Context, cfg Config, trace *workload.Trace, starts []simtime.Time, plan *DecisionPlan) (*metrics.Result, error) {
	n := len(trace.Jobs)
	bounds := cfg.queueBounds()
	acc := metrics.NewAccumulator(n, cfg.Horizon)
	carbonOf := func(iv simtime.Interval, cpus int) float64 {
		return cfg.Power.Carbon(cfg.Carbon.Integral(iv), cpus)
	}
	done := ctx.Done()

	// Phase 2: sequential sweep. startOrd lists job IDs by (start, ID) —
	// the engine's start fire order; finOrd lists start ranks by
	// (finish, rank) — its finish fire order. The two-pointer merge below
	// processes, at each instant, all finishes before any start, exactly
	// as the engine's priority ordering does, replaying the reserved
	// pool's acquire/release arithmetic and folding the CPU·hour totals.
	sc := directScratchPool.Get().(*directScratch)
	defer sc.release()
	var ord *replayOrders
	if plan != nil {
		if m := plan.orders.Load(); m != nil && m.trace == trace {
			ord = m // warm sweep cell: skip both endpoint sorts
		}
	}
	if ord == nil && plan != nil {
		// First replay of this plan against this trace: compute into
		// plan-owned columns and publish (racing replays may each compute;
		// last store wins and all values are identical).
		ord = &replayOrders{
			trace:    trace,
			startOrd: make([]int32, n), finOrd: make([]int32, n),
			stR: make([]simtime.Time, n), enR: make([]simtime.Time, n),
			cpuR: make([]int32, n),
		}
		ord.fill(&sc.cnt, starts)
		plan.orders.Store(ord)
	}
	if ord == nil {
		sc.grow(n)
		ord = &replayOrders{
			trace:    trace,
			startOrd: sc.startOrd, finOrd: sc.finOrd,
			stR: sc.stR, enR: sc.enR, cpuR: sc.cpuR,
		}
		ord.fill(&sc.cnt, starts)
	} else {
		sc.growReserved(n)
	}
	startOrd, finOrd := ord.startOrd, ord.finOrd
	stR, enR, cpuR := ord.stR, ord.enR, ord.cpuR
	if n > 0 {
		acc.GrowUsage(enR[finOrd[n-1]])
	}
	reservedBy := sc.reservedBy // indexed by job ID
	idle := cfg.Reserved
	si := 0
	for fi := 0; fi < n; fi++ {
		if done != nil && fi%interruptStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: run canceled: %w", err)
			}
		}
		r := int(finOrd[fi])
		for si < n && stR[si] < enR[r] {
			res := int(cpuR[si])
			if res > idle {
				res = idle
			}
			idle -= res
			reservedBy[startOrd[si]] = int32(res)
			si++
		}
		res := int(reservedBy[startOrd[r]])
		idle += res
		hours := simtime.Interval{Start: stR[r], End: enR[r]}.Len().Hours()
		var h [3]float64
		h[cloud.Reserved] = float64(res) * hours
		h[cloud.OnDemand] = float64(int(cpuR[r])-res) * hours
		h[cloud.Spot] = float64(0) * hours
		acc.AddCPUHours(h)
	}

	// Phase 3: order-free accounting back in parallel — per-job columns,
	// the cost column and retained records are ID-indexed, and usage bins
	// commute under integer addition (atomic adds into the pre-grown
	// bins). The per-job carbon and baseline integrals live here rather
	// than in the decide phase because they are accounting (they read the
	// realized carbon trace and power model), so a replayed cell computes
	// them under its own knobs.
	var results []metrics.JobResult
	var segs []metrics.Segment
	if cfg.RetainJobs {
		results = make([]metrics.JobResult, n)
		// Every direct-path job runs in one uninterrupted segment; carving
		// the per-job slices from one slab instead of a million one-element
		// allocations keeps retained runs off the GC's back (the records
		// compare equal either way — the differentials check values).
		segs = make([]metrics.Segment, n)
	}
	odRate, spotRate := cfg.Pricing.HourlyRate(cloud.OnDemand), cfg.Pricing.HourlyRate(cloud.Spot)
	shards := par.Shards(directWorkers(n), n)
	// With a single shard the pass is sequential, so the cheaper
	// non-atomic binning applies; sharded passes need the atomic variant
	// (identical arithmetic — integer adds commute exactly).
	addUsage := acc.AddUsageAtomic
	if len(shards) <= 1 {
		addUsage = acc.AddUsage
	}
	account := func(sh par.Range) error {
		for i := sh.Lo; i < sh.Hi; i++ {
			if done != nil && (i-sh.Lo)%interruptStride == 0 {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("core: run canceled: %w", err)
				}
			}
			job := &trace.Jobs[i]
			q := workload.ClassifyLength(job.Length, bounds)
			iv := simtime.Interval{Start: starts[i], End: starts[i].Add(job.Length)}
			carbon := carbonOf(iv, job.CPUs)
			baseline := carbonOf(simtime.Interval{Start: job.Arrival, End: job.Arrival.Add(job.Length)}, job.CPUs)
			// Waiting is finish - arrival - length, which the integer time
			// model reduces to start - arrival exactly.
			acc.PutJob(i, iv.Start.Sub(job.Arrival), job.Length, carbon, baseline, q)
			res := int(reservedBy[i])
			od := job.CPUs - res
			hours := iv.Len().Hours()
			cost := (float64(od)*odRate + float64(0)*spotRate) * hours
			acc.PutCost(i, cost)
			addUsage(iv, res, od, 0)
			if results != nil {
				var h [3]float64
				h[cloud.Reserved] = float64(res) * hours
				h[cloud.OnDemand] = float64(od) * hours
				h[cloud.Spot] = float64(0) * hours
				segs[i] = metrics.Segment{Interval: iv, Reserved: res, OnDemand: od}
				results[i] = metrics.JobResult{
					JobID:          i,
					Queue:          q,
					User:           job.User,
					CPUs:           job.CPUs,
					Length:         job.Length,
					Arrival:        job.Arrival,
					Start:          iv.Start,
					Finish:         iv.End,
					Waiting:        iv.End.Sub(job.Arrival) - job.Length,
					Carbon:         carbon,
					BaselineCarbon: baseline,
					UsageCost:      cost,
					CPUHours:       h,
					Segments:       segs[i : i+1 : i+1],
				}
			}
		}
		return nil
	}
	if len(shards) == 1 {
		// Replayed sweep cells are the hot caller (one cell per core
		// already); skipping the worker pool keeps them allocation-light.
		if err := account(shards[0]); err != nil {
			return nil, err
		}
	} else if err := par.ForEach(len(shards), shards, func(_ int, sh par.Range) error {
		return account(sh)
	}); err != nil {
		return nil, err
	}

	directRuns.Add(1)
	res := &metrics.Result{
		Label:    cfg.Label,
		Region:   cfg.Carbon.Region(),
		Workload: trace.Name,
		Reserved: cfg.Reserved,
		Horizon:  cfg.Horizon,
		Pricing:  cfg.Pricing,
		Jobs:     results,
	}
	res.AttachAccumulator(acc)
	return res, nil
}

// timeOrder returns 0..len(keys)-1 stably sorted ascending by key; see
// timeOrderInto for the algorithm.
func timeOrder(keys []simtime.Time) []int32 {
	return timeOrderInto(make([]int32, len(keys)), new([]int32), keys)
}

// timeOrderInto fills ord (len(ord) == len(keys)) with 0..len(keys)-1
// stably sorted ascending by key: a counting sort when the key range is
// comparable to n (simulation endpoints cluster into at most a horizon's
// worth of minutes), a stdlib stable sort otherwise. Both are stable, so
// ties keep input order — exactly the (time, index) lexicographic order
// the sweep needs. cnt is the reusable counting-bucket buffer (resliced
// and cleared here, grown when a wider key span needs it).
func timeOrderInto(ord []int32, cnt *[]int32, keys []simtime.Time) []int32 {
	n := len(keys)
	ord = ord[:n]
	for i := range ord {
		ord[i] = int32(i)
	}
	if n < 2 {
		return ord
	}
	lo, hi := keys[0], keys[0]
	for _, k := range keys[1:] {
		if k < lo {
			lo = k
		} else if k > hi {
			hi = k
		}
	}
	span := int64(hi-lo) + 1
	if span <= int64(8*n) || span <= 1<<16 {
		want := int(span) + 1
		if cap(*cnt) < want {
			*cnt = make([]int32, want)
		} else {
			*cnt = (*cnt)[:want]
			clear(*cnt)
		}
		buckets := *cnt
		for _, k := range keys {
			buckets[int64(k-lo)+1]++
		}
		for b := 1; b < len(buckets); b++ {
			buckets[b] += buckets[b-1]
		}
		for i, k := range keys {
			b := int64(k - lo)
			ord[buckets[b]] = int32(i)
			buckets[b]++
		}
		return ord
	}
	sort.SliceStable(ord, func(a, b int) bool {
		return keys[ord[a]] < keys[ord[b]]
	})
	return ord
}
