package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync/atomic"

	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// The decision-plan cache seam.
//
// The evaluation's dominant sweeps vary accounting knobs — reserved
// capacity (Figures 8-12, 17), prices, a carbon tax (x07) — while the job
// start-time decisions are identical across every cell: for direct-eligible
// configurations a decision depends only on (policy, CIS trace, queue
// ladder and waits, average-length estimates, workload), never on Reserved
// or any price. DecidePlan runs the direct path's phase 1 alone and returns
// the decisions as a compact columnar artifact; RunWithPlan replays phases
// 2-3 (sweep-line + accounting fan-out) over a cached plan, skipping the
// decide phase entirely. Config.DecisionFingerprint (fingerprint.go) is the
// content address that tells cache layers which configurations may share a
// plan. DecidePlan(cfg) followed by RunWithPlan(cfg', plan) for any cfg'
// that decision-fingerprints equal to cfg is bit-identical to Run(cfg').

// A DecisionPlan is the artifact of the decide phase: one start time and
// execution class per job of the (normalized) trace, in job-ID order. The
// decisions are immutable after creation; plans are shared across
// concurrent replays.
type DecisionPlan struct {
	starts []simtime.Time
	// classes records each job's execution class (0 = pooled
	// reserved/on-demand capacity). Direct-eligible configurations never
	// route jobs to spot today, so the column is all zeros; it is part of
	// the artifact so a future spot-capable decide phase extends the codec
	// without a layout break.
	classes []uint8
	// orders memoizes the replay sweep's endpoint orderings, which are a
	// pure function of (starts, trace): a sweep replaying this plan sorts
	// its endpoints once, not once per cell. Built lazily on first replay,
	// keyed by trace identity, and excluded from the encoded artifact
	// (a decoded plan rebuilds it on first use).
	orders atomic.Pointer[replayOrders]
}

// NumJobs returns how many jobs the plan covers.
func (p *DecisionPlan) NumJobs() int { return len(p.starts) }

// ErrNoPlan reports that a configuration cannot be served by the decision
// plan seam — it is not direct-eligible, or its policy dynamically returned
// a suspend-resume plan — and the caller must use Run.
var ErrNoPlan = errors.New("core: configuration has no decision plan")

// PlanCodecVersion identifies the binary layout EncodeDecisionPlan writes.
// It participates in on-disk cache entry names: bump it whenever the plan
// gains, loses or reorders state, and old entries simply never match.
const PlanCodecVersion = 1

// planMagic opens every encoded plan. The trailing byte is a format
// generation separate from PlanCodecVersion, mirroring the accumulator
// codec's container convention (internal/metrics/codec.go).
var planMagic = [8]byte{'G', 'A', 'I', 'A', 'P', 'L', 'N', 1}

// EncodeDecisionPlan serializes a plan into a self-contained blob:
//
//	magic [8] | codec version u64 | nJobs u64
//	| starts (u64 LE each) | classes (1 byte each)
//	| crc32-IEEE of everything above (u32 LE)
//
// Integers are little-endian; start times are exact bit patterns, so a
// decoded plan replays bit-identically to the one the decide phase built.
func EncodeDecisionPlan(p *DecisionPlan) []byte {
	n := len(p.starts)
	buf := make([]byte, 0, 8+8+8+n*8+n+4)
	le := binary.LittleEndian
	buf = append(buf, planMagic[:]...)
	buf = le.AppendUint64(buf, PlanCodecVersion)
	buf = le.AppendUint64(buf, uint64(n))
	for _, v := range p.starts {
		buf = le.AppendUint64(buf, uint64(v))
	}
	buf = append(buf, p.classes...)
	buf = le.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

// DecodeDecisionPlan parses a blob produced by EncodeDecisionPlan. It
// returns an error — never a partial plan — on a bad magic, version
// mismatch, checksum failure, truncation, or trailing garbage.
func DecodeDecisionPlan(data []byte) (*DecisionPlan, error) {
	if len(data) < len(planMagic)+8+8+4 {
		return nil, fmt.Errorf("core: encoded plan too short (%d bytes)", len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	le := binary.LittleEndian
	if got, want := le.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("core: plan checksum mismatch (got %08x want %08x)", got, want)
	}
	var magic [8]byte
	copy(magic[:], body[:8])
	if magic != planMagic {
		return nil, fmt.Errorf("core: bad plan magic %q", magic)
	}
	if v := le.Uint64(body[8:16]); v != PlanCodecVersion {
		return nil, fmt.Errorf("core: plan codec version %d, want %d", v, PlanCodecVersion)
	}
	n64 := le.Uint64(body[16:24])
	rest := body[24:]
	// Each job costs 9 bytes (8-byte start + 1-byte class); bound the count
	// before allocating so a corrupted header cannot drive a huge make.
	if n64 > uint64(len(rest))/9+1 {
		return nil, fmt.Errorf("core: plan job count %d exceeds payload", n64)
	}
	n := int(n64)
	if len(rest) != n*8+n {
		return nil, fmt.Errorf("core: plan payload %d bytes, want %d for %d jobs", len(rest), n*9, n)
	}
	p := &DecisionPlan{
		starts:  make([]simtime.Time, n),
		classes: make([]uint8, n),
	}
	for i := range p.starts {
		p.starts[i] = simtime.Time(le.Uint64(rest[i*8:]))
	}
	copy(p.classes, rest[n*8:])
	return p, nil
}

// DecidePlan runs the decide phase of the direct-execution path alone and
// returns the decisions as a reusable plan. It fails with ErrNoPlan when
// the configuration is not direct-eligible (or its policy dynamically
// returned a suspend-resume plan); any other error is exactly the error
// Run would have returned. The plan indexes jobs of the normalized trace —
// callers must replay it against the same workload trace content (cache
// layers guarantee this by content address, DecisionFingerprint).
func DecidePlan(ctx context.Context, cfg Config, jobs *workload.Trace) (plan *DecisionPlan, err error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: run canceled: %w", err)
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if !cfg.directEligible() {
		return nil, ErrNoPlan
	}
	defer func() {
		if r := recover(); r != nil {
			plan, err = nil, fmt.Errorf("core: run failed: %v", r)
		}
	}()
	trace := normalizedTrace(jobs)
	starts, err := decideDirect(ctx, cfg, trace)
	if err != nil {
		if errors.Is(err, errDirectFallback) {
			return nil, ErrNoPlan
		}
		return nil, err
	}
	return &DecisionPlan{starts: starts, classes: make([]uint8, len(starts))}, nil
}

// RunWithPlan is Run for a direct-eligible configuration whose decide phase
// already happened: it replays the sweep-line and accounting phases over
// the plan's start times and returns a Result bit-identical to what
// Run(cfg, jobs) would produce. The plan must come from a DecidePlan call
// whose configuration decision-fingerprints equal to cfg over the same
// workload; a plan of the wrong shape (length mismatch, start before
// arrival) is rejected with an error, never replayed into wrong numbers.
func RunWithPlan(ctx context.Context, cfg Config, jobs *workload.Trace, plan *DecisionPlan) (res *metrics.Result, err error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: run canceled: %w", err)
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if !cfg.directEligible() {
		return nil, fmt.Errorf("core: %w: configuration is not direct-eligible", ErrNoPlan)
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("core: run failed: %v", r)
		}
	}()
	trace := normalizedTrace(jobs)
	if plan == nil || len(plan.starts) != len(trace.Jobs) {
		got := 0
		if plan != nil {
			got = len(plan.starts)
		}
		return nil, fmt.Errorf("core: plan covers %d jobs, trace has %d", got, len(trace.Jobs))
	}
	for i := range plan.starts {
		if plan.starts[i] < trace.Jobs[i].Arrival {
			return nil, fmt.Errorf("core: plan starts job %d at %v before its arrival %v",
				i, plan.starts[i], trace.Jobs[i].Arrival)
		}
	}
	return replayDirect(ctx, cfg, trace, plan.starts, plan)
}
