package core

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// tookDirectPath runs cfg and reports whether the direct-execution path
// served it (via the completed-run counter).
func tookDirectPath(t *testing.T, cfg Config, jobs *workload.Trace) bool {
	t.Helper()
	before := directRuns.Load()
	if _, err := Run(cfg, jobs); err != nil {
		t.Fatal(err)
	}
	return directRuns.Load() != before
}

// TestDirectPathEligibility is the admission audit: exactly these Config
// shapes ride the direct path, and every mechanism the sweep replay does
// not model falls back to the event engine. A future knob that should
// disqualify a config must be added to directEligible AND here — the
// counter assertion catches it silently riding the fast path.
func TestDirectPathEligibility(t *testing.T) {
	tr, jobs := randomInstance(31)
	cases := []struct {
		name   string
		mutate func(*Config)
		direct bool
	}{
		{"carbon-time", func(c *Config) { c.Policy = policy.CarbonTime{} }, true},
		{"no-wait", func(c *Config) { c.Policy = policy.NoWait{} }, true},
		{"all-wait", func(c *Config) { c.Policy = policy.AllWait{} }, true},
		{"lowest-slot", func(c *Config) { c.Policy = policy.LowestSlot{} }, true},
		{"lowest-window", func(c *Config) { c.Policy = policy.LowestWindow{} }, true},
		{"reserved", func(c *Config) { c.Policy = policy.CarbonTime{}; c.Reserved = 20 }, true},
		{"retained", func(c *Config) { c.Policy = policy.CarbonTime{}; c.RetainJobs = true }, true},
		{"work-conserving", func(c *Config) {
			c.Policy = policy.CarbonTime{}
			c.Reserved = 20
			c.WorkConserving = true
		}, false},
		{"spot", func(c *Config) {
			c.Policy = policy.CarbonTime{}
			c.SpotMaxLen = 4 * simtime.Hour
			c.EvictionRate = 0.2
		}, false},
		{"critical-path", func(c *Config) { c.Policy = policy.CriticalPathShift{} }, true},
		{"plan-waitawhile", func(c *Config) { c.Policy = policy.WaitAwhile{} }, false},
		{"plan-waitawhile-est", func(c *Config) { c.Policy = policy.WaitAwhileEst{} }, false},
		{"plan-ecovisor", func(c *Config) { c.Policy = policy.Ecovisor{} }, false},
		{"opaque-cis", func(c *Config) {
			c.Policy = policy.CarbonTime{}
			c.CIS = carbon.NewNoisyService(tr, 0.1, 1)
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig(tr, nil)
			cfg.RetainJobs = false
			tc.mutate(&cfg)
			if got := cfg.DirectPathEligible(); got != tc.direct {
				t.Errorf("DirectPathEligible() = %v, want %v", got, tc.direct)
			}
			if got := tookDirectPath(t, cfg, jobs); got != tc.direct {
				t.Errorf("Run took direct path = %v, want %v", got, tc.direct)
			}
		})
	}

	t.Run("force-event-engine", func(t *testing.T) {
		cfg := baseConfig(tr, policy.CarbonTime{})
		cfg.RetainJobs = false
		ForceEventEngine(true)
		defer ForceEventEngine(false)
		if tookDirectPath(t, cfg, jobs) {
			t.Error("ForceEventEngine did not disable the direct path")
		}
	})
	t.Run("force-heap-engine", func(t *testing.T) {
		cfg := baseConfig(tr, policy.CarbonTime{})
		cfg.RetainJobs = false
		ForceHeapEngine(true)
		defer ForceHeapEngine(false)
		if tookDirectPath(t, cfg, jobs) {
			t.Error("ForceHeapEngine did not disable the direct path")
		}
	})
	// Elastic metadata disqualifies a config even when it is fully
	// degenerate: the decide-replay sweep has no resize or precedence
	// model, so any Elastic pointer must fall back to the event engine.
	t.Run("elastic-degenerate", func(t *testing.T) {
		cfg := baseConfig(tr, policy.CarbonTime{})
		cfg.RetainJobs = false
		cfg.Elastic = workload.Degenerate(jobs)
		if cfg.DirectPathEligible() {
			t.Error("DirectPathEligible() accepted a degenerate elastic config")
		}
		if tookDirectPath(t, cfg, jobs) {
			t.Error("degenerate elastic config rode the direct path")
		}
	})
	t.Run("elastic-managed", func(t *testing.T) {
		_, et := randomElasticInstance(31, 40)
		cfg := baseConfig(tr, policy.CarbonTime{})
		cfg.RetainJobs = false
		cfg.Elastic = et
		if cfg.DirectPathEligible() {
			t.Error("DirectPathEligible() accepted a managed elastic config")
		}
		if tookDirectPath(t, cfg, et.Jobs) {
			t.Error("managed elastic config rode the direct path")
		}
	})
	t.Run("force-elastic-degenerate", func(t *testing.T) {
		cfg := baseConfig(tr, policy.CarbonTime{})
		cfg.RetainJobs = false
		ForceElasticDegenerate(true)
		defer ForceElasticDegenerate(false)
		if tookDirectPath(t, cfg, jobs) {
			t.Error("ForceElasticDegenerate did not disable the direct path")
		}
	})
}

// runBothPaths executes cfg on the direct path and on the forced event
// engine, failing unless the direct path actually served the first run.
func runBothPaths(t *testing.T, cfg Config, jobs *workload.Trace) (direct, engine *metrics.Result) {
	t.Helper()
	before := directRuns.Load()
	direct, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if directRuns.Load() == before {
		t.Fatal("config unexpectedly fell back to the event engine")
	}
	ForceEventEngine(true)
	engine, err = Run(cfg, jobs)
	ForceEventEngine(false)
	if err != nil {
		t.Fatal(err)
	}
	return direct, engine
}

// assertIdenticalResults compares two results at every level a consumer
// can observe: the raw accumulator bytes (the strongest pin — every
// column, total and usage bin bit-identical), the full aggregate query
// surface, and the retained per-job records when present.
func assertIdenticalResults(t *testing.T, direct, engine *metrics.Result) {
	t.Helper()
	db := metrics.EncodeAccumulator(direct.Accumulator())
	eb := metrics.EncodeAccumulator(engine.Accumulator())
	if !bytes.Equal(db, eb) {
		t.Error("accumulator bytes differ between direct and engine paths")
	}
	if direct.JobCount() > 0 {
		got := fingerprint(direct, direct.Horizon)
		want := fingerprint(engine, engine.Horizon)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("aggregates diverge:\ndirect %+v\nengine %+v", got, want)
		}
	} else if direct.String() != engine.String() {
		t.Errorf("empty-trace renderings diverge:\n%s\nvs\n%s", direct.String(), engine.String())
	}
	if len(direct.Jobs) != len(engine.Jobs) {
		t.Fatalf("retained %d records direct vs %d engine", len(direct.Jobs), len(engine.Jobs))
	}
	for i := range direct.Jobs {
		if !reflect.DeepEqual(direct.Jobs[i], engine.Jobs[i]) {
			t.Fatalf("job %d diverged:\ndirect %+v\nengine %+v", i, direct.Jobs[i], engine.Jobs[i])
		}
	}
}

// TestDirectMatchesEngine is the run-path differential pin over every
// eligible policy and the eligibility-boundary configurations, in both
// retention modes and at forced multi-shard fan-out (so shard boundaries
// and the atomic usage bins are exercised even on small machines).
func TestDirectMatchesEngine(t *testing.T) {
	tr, jobs := randomInstance(47)
	policies := []policy.Policy{
		policy.NoWait{}, policy.AllWait{}, policy.LowestSlot{},
		policy.LowestWindow{}, policy.CarbonTime{},
	}
	boundaries := []struct {
		name   string
		cfg    func() Config
		jobs   *workload.Trace
		shards int32
	}{
		{"reserved-zero", func() Config {
			c := baseConfig(tr, policy.CarbonTime{})
			c.Reserved = 0
			return c
		}, jobs, 0},
		{"reserved-over-peak", func() Config {
			c := baseConfig(tr, policy.CarbonTime{})
			c.Reserved = 1 << 20
			return c
		}, jobs, 0},
		{"single-job", func() Config {
			return baseConfig(flatTrace(48, 100), policy.LowestSlot{})
		}, oneJob(90*simtime.Minute, 3), 0},
		{"empty-trace", func() Config {
			return baseConfig(flatTrace(48, 100), policy.CarbonTime{})
		}, workload.MustTrace("empty", nil), 0},
		{"multi-shard", func() Config {
			return baseConfig(tr, policy.CarbonTime{})
		}, jobs, 5},
	}
	for _, p := range policies {
		for _, retain := range []bool{false, true} {
			name := p.Name()
			if retain {
				name += "-retained"
			}
			t.Run(name, func(t *testing.T) {
				cfg := baseConfig(tr, p)
				cfg.Reserved = 25
				cfg.RetainJobs = retain
				d, e := runBothPaths(t, cfg, jobs)
				assertIdenticalResults(t, d, e)
			})
		}
	}
	for _, tc := range boundaries {
		t.Run(tc.name, func(t *testing.T) {
			if tc.shards > 0 {
				directWorkersOverride.Store(tc.shards)
				defer directWorkersOverride.Store(0)
			}
			cfg := tc.cfg()
			cfg.RetainJobs = true
			d, e := runBothPaths(t, cfg, tc.jobs)
			assertIdenticalResults(t, d, e)
		})
	}
}

// FuzzDirectVsEngine fuzzes random (Config, trace) pairs through both run
// paths asserting byte-identical accumulators — the property the run
// cache's correctness rests on, since direct and engine runs share cache
// entries.
func FuzzDirectVsEngine(f *testing.F) {
	f.Add(int64(1), 0, 0, int64(5), false)
	f.Add(int64(2), 25, 1, int64(8), true)
	f.Add(int64(3), 1000, 2, int64(13), false)
	f.Add(int64(4), 7, 3, int64(2), true)
	f.Add(int64(5), 120, 4, int64(21), false)
	f.Fuzz(func(t *testing.T, seed int64, reserved, policyIdx int, wait int64, retain bool) {
		policies := []policy.Policy{
			policy.NoWait{}, policy.AllWait{}, policy.LowestSlot{},
			policy.LowestWindow{}, policy.CarbonTime{},
		}
		if policyIdx < 0 || policyIdx >= len(policies) || reserved < 0 || reserved > 1<<20 {
			t.Skip()
		}
		if wait < 1 || wait > 96 {
			t.Skip()
		}
		tr, jobs := randomInstance(seed%64 + 1)
		cfg := baseConfig(tr, policies[policyIdx])
		cfg.Reserved = reserved
		cfg.RetainJobs = retain
		cfg.WaitShort = simtime.Duration(wait) * simtime.Hour
		cfg.WaitLong = simtime.Duration(wait) * 4 * simtime.Hour
		directWorkersOverride.Store(int32(seed%4 + 1))
		defer directWorkersOverride.Store(0)
		d, e := runBothPaths(t, cfg, jobs)
		assertIdenticalResults(t, d, e)
	})
}

// TestTimeOrder pins the sort the sweep is built on: stable ascending
// order on both the counting and comparison branches, which must agree
// with each other exactly.
func TestTimeOrder(t *testing.T) {
	keys := []simtime.Time{50, 10, 50, 10, 0, 99, 50, 10}
	want := []int32{4, 1, 3, 7, 0, 2, 6, 5}
	if got := timeOrder(keys); !reflect.DeepEqual(got, want) {
		t.Errorf("timeOrder(%v) = %v, want %v", keys, got, want)
	}
	if got := timeOrder(nil); len(got) != 0 {
		t.Errorf("timeOrder(nil) = %v", got)
	}
	if got := timeOrder([]simtime.Time{7}); !reflect.DeepEqual(got, []int32{0}) {
		t.Errorf("single-key order = %v", got)
	}

	// A sparse key set (span >> 8n) exercises the comparison fallback;
	// the dense copy of the same relative order uses counting. Both must
	// produce the identical permutation.
	rnd := newRand(9)
	sparse := make([]simtime.Time, 500)
	for i := range sparse {
		sparse[i] = simtime.Time(rnd.Int63n(1 << 40))
	}
	dense := make([]simtime.Time, len(sparse))
	ranks := append([]simtime.Time(nil), sparse...)
	sort.Slice(ranks, func(a, b int) bool { return ranks[a] < ranks[b] })
	for i, k := range sparse {
		dense[i] = simtime.Time(sort.Search(len(ranks), func(j int) bool { return ranks[j] >= k }))
	}
	if got, want := timeOrder(sparse), timeOrder(dense); !reflect.DeepEqual(got, want) {
		t.Error("comparison and counting branches disagree")
	}
}
