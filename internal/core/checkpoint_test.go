package core

import (
	"math"
	"testing"

	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func TestCheckpointedSpotCleanRun(t *testing.T) {
	tr := flatTrace(48, 100)
	cfg := baseConfig(tr, policy.NoWait{})
	cfg.SpotMaxLen = 10 * simtime.Hour
	cfg.CheckpointInterval = simtime.Hour
	cfg.CheckpointOverhead = 6 * simtime.Minute
	res, err := Run(cfg, oneJob(3*simtime.Hour, 1))
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	// 3 h job with checkpoints at 1 h and 2 h of work: padded by 12 min.
	wantLen := 3*simtime.Hour + 12*simtime.Minute
	if j.Finish != simtime.Time(wantLen) {
		t.Errorf("finish = %v, want %v", j.Finish, wantLen)
	}
	if j.Evictions != 0 || j.WastedCPUHours != 0 {
		t.Errorf("clean run should have no waste: %+v", j)
	}
	// The overhead counts as waiting (delay beyond pure execution).
	if j.Waiting != 12*simtime.Minute {
		t.Errorf("waiting = %v", j.Waiting)
	}
	if math.Abs(j.CPUHours[cloud.Spot]-wantLen.Hours()) > 1e-9 {
		t.Errorf("spot hours = %v", j.CPUHours[cloud.Spot])
	}
}

func TestCheckpointedSpotEvictionKeepsProgress(t *testing.T) {
	tr := flatTrace(100, 100)
	cfg := baseConfig(tr, policy.NoWait{})
	cfg.SpotMaxLen = 24 * simtime.Hour
	cfg.EvictionRate = 0.95 // evict at the first check (1 h of runtime)
	cfg.Seed = 1
	cfg.CheckpointInterval = 30 * simtime.Minute
	cfg.CheckpointOverhead = 5 * simtime.Minute
	res, err := Run(cfg, oneJob(8*simtime.Hour, 1))
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.Evictions != 1 {
		t.Fatalf("evictions = %d", j.Evictions)
	}
	// Evicted after 60 min of runtime = 1 full cycle (30 work + 5 ck)
	// plus 25 min into the second cycle: 30 min of work saved.
	savedWork := 30 * simtime.Minute
	remaining := 8*simtime.Hour - savedWork
	wantFinish := simtime.Time(simtime.Hour).Add(remaining)
	if j.Finish != wantFinish {
		t.Errorf("finish = %v, want %v", j.Finish, wantFinish)
	}
	// Waste is the evicted hour minus the saved work.
	if math.Abs(j.WastedCPUHours-0.5) > 1e-9 {
		t.Errorf("wasted = %v, want 0.5", j.WastedCPUHours)
	}
	// Without checkpointing the same seed loses the full hour and reruns
	// all 8 h: checkpointing must finish earlier and waste less.
	cfg2 := cfg
	cfg2.CheckpointInterval, cfg2.CheckpointOverhead = 0, 0
	res2, err := Run(cfg2, oneJob(8*simtime.Hour, 1))
	if err != nil {
		t.Fatal(err)
	}
	plain := res2.Jobs[0]
	if plain.Evictions == 1 {
		if j.Finish >= plain.Finish {
			t.Errorf("checkpointed finish %v should beat plain %v", j.Finish, plain.Finish)
		}
		if j.WastedCPUHours >= plain.WastedCPUHours {
			t.Errorf("checkpointed waste %v should beat plain %v", j.WastedCPUHours, plain.WastedCPUHours)
		}
	}
}

func TestCheckpointValidation(t *testing.T) {
	tr := flatTrace(10, 100)
	cfg := baseConfig(tr, policy.NoWait{})
	cfg.CheckpointInterval = -1
	if _, err := Run(cfg, oneJob(simtime.Hour, 1)); err == nil {
		t.Error("negative interval should error")
	}
}

func TestCheckpointDefaultOverhead(t *testing.T) {
	tr := flatTrace(10, 100)
	cfg := Config{Policy: policy.NoWait{}, Carbon: tr, CheckpointInterval: simtime.Hour}
	got := cfg.withDefaults()
	if got.CheckpointOverhead != 2*simtime.Minute {
		t.Errorf("default overhead = %v", got.CheckpointOverhead)
	}
}

func TestCheckpointedAccountingIdentity(t *testing.T) {
	tr := flatTrace(24*20, 150)
	cfg := baseConfig(tr, policy.CarbonTime{})
	cfg.SpotMaxLen = 12 * simtime.Hour
	cfg.EvictionRate = 0.2
	cfg.Seed = 9
	cfg.CheckpointInterval = simtime.Hour
	cfg.CheckpointOverhead = 3 * simtime.Minute
	jobs := workload.AlibabaPAIWeek().GenerateByCount(newRand(3), 100, simtime.Week)
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Jobs {
		var billed float64
		for _, h := range j.CPUHours {
			billed += h
		}
		// Billed = useful length + checkpoint overheads (clean part) +
		// waste. Lower bound: at least the job volume.
		if billed+1e-9 < float64(j.CPUs)*j.Length.Hours() {
			t.Fatalf("job %d billed %v < volume", j.JobID, billed)
		}
		if j.WastedCPUHours < 0 {
			t.Fatalf("negative waste on job %d", j.JobID)
		}
	}
}
