package core

import (
	"math"
	"reflect"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// Round-number fixtures: $1/h on-demand, 0.01 kW per CPU, so a 1-CPU hour
// at CI 100 emits exactly 1 g and costs exactly $1 on demand.
var (
	testPricing = cloud.Pricing{OnDemandHourly: 1, ReservedFraction: 0.4, SpotFraction: 0.2}
	testPower   = cloud.Power{KWPerCPU: 0.01}
)

func flatTrace(hours int, ci float64) *carbon.Trace {
	vals := make([]float64, hours)
	for i := range vals {
		vals[i] = ci
	}
	return carbon.MustTrace("flat", vals)
}

func baseConfig(tr *carbon.Trace, p policy.Policy) Config {
	return Config{
		Policy:  p,
		Carbon:  tr,
		Pricing: testPricing,
		Power:   testPower,
		// The hand-checked tests assert on individual job records, which
		// only exist when retention is on.
		RetainJobs: true,
	}
}

func oneJob(length simtime.Duration, cpus int) *workload.Trace {
	return workload.MustTrace("one", []workload.Job{
		{Arrival: 0, Length: length, CPUs: cpus},
	})
}

func TestNoWaitHandChecked(t *testing.T) {
	tr := flatTrace(48, 100)
	res, err := Run(baseConfig(tr, policy.NoWait{}), oneJob(2*simtime.Hour, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 1 {
		t.Fatalf("%d job records", len(res.Jobs))
	}
	j := res.Jobs[0]
	if j.Start != 0 || j.Finish != simtime.Time(2*simtime.Hour) || j.Waiting != 0 {
		t.Errorf("timing: %+v", j)
	}
	// Carbon: 100 g/kWh × 0.01 kW × 2 h = 2 g; baseline identical.
	if math.Abs(j.Carbon-2) > 1e-9 || math.Abs(j.BaselineCarbon-2) > 1e-9 {
		t.Errorf("carbon = %v baseline = %v", j.Carbon, j.BaselineCarbon)
	}
	// Cost: 2 h on demand at $1/h.
	if math.Abs(j.UsageCost-2) > 1e-9 {
		t.Errorf("cost = %v", j.UsageCost)
	}
	if math.Abs(res.TotalCost()-2) > 1e-9 {
		t.Errorf("total cost = %v", res.TotalCost())
	}
	if j.CPUHours[cloud.OnDemand] != 2 || j.CPUHours[cloud.Reserved] != 0 {
		t.Errorf("cpu hours = %v", j.CPUHours)
	}
}

func TestReservedPreferredAndUpfrontCharged(t *testing.T) {
	tr := flatTrace(100, 100)
	cfg := baseConfig(tr, policy.NoWait{})
	cfg.Reserved = 2
	res, err := Run(cfg, oneJob(simtime.Hour, 1))
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.CPUHours[cloud.Reserved] != 1 || j.CPUHours[cloud.OnDemand] != 0 {
		t.Errorf("placement: %v", j.CPUHours)
	}
	if j.UsageCost != 0 {
		t.Errorf("reserved usage should cost nothing marginally, got %v", j.UsageCost)
	}
	// Upfront: 2 units × 100 h × $0.40.
	if math.Abs(res.TotalCost()-80) > 1e-9 {
		t.Errorf("total cost = %v, want 80", res.TotalCost())
	}
	if util := res.ReservedUtilization(); math.Abs(util-1.0/200) > 1e-12 {
		t.Errorf("utilization = %v", util)
	}
}

func TestReservedOverflowSplitsToOnDemand(t *testing.T) {
	tr := flatTrace(48, 100)
	cfg := baseConfig(tr, policy.NoWait{})
	cfg.Reserved = 1
	res, err := Run(cfg, oneJob(simtime.Hour, 3))
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.CPUHours[cloud.Reserved] != 1 || j.CPUHours[cloud.OnDemand] != 2 {
		t.Errorf("split placement: %v", j.CPUHours)
	}
	if math.Abs(j.UsageCost-2) > 1e-9 {
		t.Errorf("cost = %v", j.UsageCost)
	}
	// Carbon covers all 3 CPUs: 100 × 0.01 × 1 h × 3 = 3 g.
	if math.Abs(j.Carbon-3) > 1e-9 {
		t.Errorf("carbon = %v", j.Carbon)
	}
}

func TestWorkConservingImmediateStart(t *testing.T) {
	// AllWait would delay to now+W, but an idle reserved unit means the
	// job starts immediately.
	tr := flatTrace(100, 100)
	cfg := baseConfig(tr, policy.AllWait{})
	cfg.Reserved = 1
	cfg.WorkConserving = true
	res, err := Run(cfg, oneJob(simtime.Hour, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Waiting != 0 {
		t.Errorf("waiting = %v, want 0", res.Jobs[0].Waiting)
	}
	if res.Jobs[0].CPUHours[cloud.Reserved] != 1 {
		t.Errorf("placement: %v", res.Jobs[0].CPUHours)
	}
}

func TestWorkConservingEarlyStartOnRelease(t *testing.T) {
	// Job A holds the single reserved unit for 2 h. Job B arrives at
	// 1 h; AllWait would run it at 1h+6h=7h, but A's completion at 2 h
	// frees the unit and B starts there.
	tr := flatTrace(100, 100)
	cfg := baseConfig(tr, policy.AllWait{})
	cfg.Reserved = 1
	cfg.WorkConserving = true
	jobs := workload.MustTrace("two", []workload.Job{
		{Arrival: 0, Length: 2 * simtime.Hour, CPUs: 1},
		{Arrival: simtime.Time(simtime.Hour), Length: simtime.Hour, CPUs: 1},
	})
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Jobs[1]
	if b.Start != simtime.Time(2*simtime.Hour) {
		t.Errorf("B started at %v, want 2h", b.Start)
	}
	if b.Waiting != simtime.Hour {
		t.Errorf("B waiting = %v, want 1h", b.Waiting)
	}
	if b.CPUHours[cloud.Reserved] != 1 {
		t.Errorf("B placement: %v", b.CPUHours)
	}
}

func TestWorkConservingFallsBackToOnDemandAtPlannedStart(t *testing.T) {
	// The reserved unit stays busy past B's maximum wait; B must start
	// at its planned time on on-demand capacity.
	tr := flatTrace(100, 100)
	cfg := baseConfig(tr, policy.AllWait{})
	cfg.Reserved = 1
	cfg.WorkConserving = true
	jobs := workload.MustTrace("two", []workload.Job{
		{Arrival: 0, Length: 20 * simtime.Hour, CPUs: 1}, // long queue: W=24h... keep queue short? length 20h → long queue
		{Arrival: 0, Length: simtime.Hour, CPUs: 1},      // short queue: W=6h
	})
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Jobs[1]
	if b.Start != simtime.Time(6*simtime.Hour) {
		t.Errorf("B started at %v, want 6h (Wshort)", b.Start)
	}
	if b.CPUHours[cloud.OnDemand] != 1 {
		t.Errorf("B placement: %v", b.CPUHours)
	}
}

func TestCarbonAwareStartPicksTrough(t *testing.T) {
	vals := make([]float64, 48)
	for i := range vals {
		vals[i] = 500
	}
	vals[4] = 50 // trough at hour 4
	tr := carbon.MustTrace("dip", vals)
	res, err := Run(baseConfig(tr, policy.LowestWindow{}), oneJob(simtime.Hour, 1))
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.Start != simtime.Time(4*simtime.Hour) {
		t.Errorf("start = %v, want hour 4", j.Start)
	}
	// Carbon at trough: 50 × 0.01 × 1 = 0.5 g vs baseline 5 g.
	if math.Abs(j.Carbon-0.5) > 1e-9 || math.Abs(j.BaselineCarbon-5) > 1e-9 {
		t.Errorf("carbon = %v baseline = %v", j.Carbon, j.BaselineCarbon)
	}
	if j.Waiting != 4*simtime.Hour {
		t.Errorf("waiting = %v", j.Waiting)
	}
}

func TestSuspendResumeAccounting(t *testing.T) {
	// CI: expensive except hours 2 and 5; WaitAwhile splits a 2 h job
	// across the two cheap slots.
	vals := []float64{900, 900, 100, 900, 900, 100, 900, 900, 900, 900}
	tr := carbon.MustTrace("two-dips", vals)
	res, err := Run(baseConfig(tr, policy.WaitAwhile{}), oneJob(2*simtime.Hour, 1))
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	// Runs hours [2,3) and [5,6): carbon = (100+100) × 0.01 = 2 g.
	if math.Abs(j.Carbon-2) > 1e-9 {
		t.Errorf("carbon = %v, want 2", j.Carbon)
	}
	if j.Start != simtime.Time(2*simtime.Hour) || j.Finish != simtime.Time(6*simtime.Hour) {
		t.Errorf("start/finish = %v/%v", j.Start, j.Finish)
	}
	// Waiting: 6 h completion − 2 h run = 4 h of pauses.
	if j.Waiting != 4*simtime.Hour {
		t.Errorf("waiting = %v", j.Waiting)
	}
	if math.Abs(j.UsageCost-2) > 1e-9 {
		t.Errorf("cost = %v", j.UsageCost)
	}
}

func TestSpotCleanExecution(t *testing.T) {
	tr := flatTrace(48, 100)
	cfg := baseConfig(tr, policy.NoWait{})
	cfg.SpotMaxLen = 2 * simtime.Hour
	res, err := Run(cfg, oneJob(2*simtime.Hour, 1))
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.CPUHours[cloud.Spot] != 2 || j.CPUHours[cloud.OnDemand] != 0 {
		t.Errorf("placement: %v", j.CPUHours)
	}
	// Spot: 2 h × $0.20.
	if math.Abs(j.UsageCost-0.4) > 1e-9 {
		t.Errorf("cost = %v", j.UsageCost)
	}
	if j.Evictions != 0 || j.WastedCPUHours != 0 {
		t.Errorf("unexpected eviction: %+v", j)
	}
}

func TestSpotIneligibleLongJob(t *testing.T) {
	tr := flatTrace(48, 100)
	cfg := baseConfig(tr, policy.NoWait{})
	cfg.SpotMaxLen = 2 * simtime.Hour
	res, err := Run(cfg, oneJob(3*simtime.Hour, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].CPUHours[cloud.Spot] != 0 {
		t.Errorf("long job must not use spot: %v", res.Jobs[0].CPUHours)
	}
}

func TestSpotEvictionRestartsOnDemand(t *testing.T) {
	tr := flatTrace(100, 100)
	cfg := baseConfig(tr, policy.NoWait{})
	cfg.SpotMaxLen = 10 * simtime.Hour
	cfg.EvictionRate = 0.95 // essentially guaranteed eviction at hour 1
	cfg.Seed = 1
	res, err := Run(cfg, oneJob(5*simtime.Hour, 1))
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.Evictions != 1 {
		t.Fatalf("evictions = %d", j.Evictions)
	}
	if j.WastedCPUHours <= 0 || j.WastedCost <= 0 || j.WastedCarbon <= 0 {
		t.Errorf("waste not recorded: %+v", j)
	}
	// Progress lost: total executed hours = wasted + full 5 h rerun.
	total := j.CPUHours[cloud.Spot] + j.CPUHours[cloud.OnDemand]
	if math.Abs(total-(j.WastedCPUHours+5)) > 1e-9 {
		t.Errorf("hours: spot=%v od=%v wasted=%v", j.CPUHours[cloud.Spot], j.CPUHours[cloud.OnDemand], j.WastedCPUHours)
	}
	// Finish = evictAt + 5 h, and waiting reflects the lost time.
	wantFinish := j.Start.Add(simtime.Duration(j.WastedCPUHours*60) + 5*simtime.Hour)
	if j.Finish != wantFinish {
		t.Errorf("finish = %v, want %v", j.Finish, wantFinish)
	}
	if j.Waiting != j.Finish.Sub(j.Arrival)-j.Length {
		t.Errorf("waiting identity broken: %+v", j)
	}
}

func TestSpotRESRestartPrefersReserved(t *testing.T) {
	tr := flatTrace(100, 100)
	cfg := baseConfig(tr, policy.NoWait{})
	cfg.SpotMaxLen = 10 * simtime.Hour
	cfg.EvictionRate = 0.95
	cfg.Reserved = 2
	cfg.Seed = 1
	res, err := Run(cfg, oneJob(5*simtime.Hour, 1))
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.Evictions != 1 {
		t.Fatalf("evictions = %d", j.Evictions)
	}
	if j.CPUHours[cloud.Reserved] != 5 {
		t.Errorf("restart should land on idle reserved: %v", j.CPUHours)
	}
}

func TestAllJobsComplete(t *testing.T) {
	tr := carbon.RegionSAAU.Generate(24*40, 3)
	jobs := workload.AlibabaPAIWeek().GenerateByCount(newRand(7), 300, simtime.Week)
	policies := []policy.Policy{
		policy.NoWait{}, policy.AllWait{}, policy.LowestSlot{},
		policy.LowestWindow{}, policy.CarbonTime{}, policy.WaitAwhile{},
		policy.WaitAwhileEst{}, policy.Ecovisor{},
	}
	for _, p := range policies {
		cfg := baseConfig(tr, p)
		if p.Name() == "AllWait-Threshold" {
			cfg.WorkConserving = true
			cfg.Reserved = 5
		}
		res, err := Run(cfg, jobs)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if len(res.Jobs) != jobs.Len() {
			t.Fatalf("%s: %d of %d jobs finished", p.Name(), len(res.Jobs), jobs.Len())
		}
		for _, j := range res.Jobs {
			if j.Finish <= j.Start || j.Waiting < 0 {
				t.Fatalf("%s: malformed record %+v", p.Name(), j)
			}
			// Waiting bound: W per queue (6h short / 24h long).
			w := 6 * simtime.Hour
			if j.Queue == workload.QueueLong {
				w = 24 * simtime.Hour
			}
			if j.Waiting > w {
				t.Fatalf("%s: job %d waited %v > %v", p.Name(), j.JobID, j.Waiting, w)
			}
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	tr := carbon.RegionCAUS.Generate(24*40, 3)
	jobs := workload.AlibabaPAIWeek().GenerateByCount(newRand(7), 200, simtime.Week)
	cfg := baseConfig(tr, policy.CarbonTime{})
	cfg.Reserved = 5
	cfg.WorkConserving = true
	cfg.SpotMaxLen = 2 * simtime.Hour
	cfg.EvictionRate = 0.1
	cfg.Seed = 42
	a, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("job counts differ")
	}
	for i := range a.Jobs {
		if !reflect.DeepEqual(a.Jobs[i], b.Jobs[i]) {
			t.Fatalf("job %d diverged:\n%+v\n%+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
}

func TestNormalizePlan(t *testing.T) {
	plan := []simtime.Interval{{Start: 60, End: 120}, {Start: 180, End: 240}}
	// Truncation: 90 min job uses all of window 1 and half of window 2.
	got := policy.NormalizePlan(plan, 90*simtime.Minute)
	if len(got) != 2 || got[1] != (simtime.Interval{Start: 180, End: 210}) {
		t.Errorf("truncated plan = %v", got)
	}
	// Exact: unchanged.
	got = policy.NormalizePlan(plan, 2*simtime.Hour)
	if len(got) != 2 || got[0] != plan[0] || got[1] != plan[1] {
		t.Errorf("exact plan = %v", got)
	}
	// Extension: a 3h job runs 1h past the final window.
	got = policy.NormalizePlan(plan, 3*simtime.Hour)
	if len(got) != 2 || got[1] != (simtime.Interval{Start: 180, End: 300}) {
		t.Errorf("extended plan = %v", got)
	}
	// Sub-window job: only the first window, truncated.
	got = policy.NormalizePlan(plan, 10*simtime.Minute)
	if len(got) != 1 || got[0] != (simtime.Interval{Start: 60, End: 70}) {
		t.Errorf("tiny plan = %v", got)
	}
}

func TestEstimateBasedSuspendResume(t *testing.T) {
	// Queue average 1h (one 1h job + the 3h job under test ⇒ avg 2h...
	// craft: many 30min jobs pull the short-queue average to ≈1h).
	vals := []float64{900, 50, 900, 900, 60, 900, 900, 900, 900, 900, 900, 900}
	tr := carbon.MustTrace("dips", vals)
	jobs := workload.MustTrace("mix", []workload.Job{
		{Arrival: 0, Length: 2 * simtime.Hour, CPUs: 1},
	})
	res, err := Run(baseConfig(tr, policy.WaitAwhileEst{}), jobs)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	// The only job sets its own queue average (2h), so the plan is exact
	// here: hours 1 and 4 are the cheap slots.
	if j.Finish != simtime.Time(5*simtime.Hour) {
		t.Errorf("finish = %v, want hour 5", j.Finish)
	}
	wantCarbon := (50 + 60) * 0.01
	if math.Abs(j.Carbon-wantCarbon) > 1e-9 {
		t.Errorf("carbon = %v, want %v", j.Carbon, wantCarbon)
	}
}

func TestConfigValidation(t *testing.T) {
	tr := flatTrace(10, 100)
	jobs := oneJob(simtime.Hour, 1)
	cases := []Config{
		{Carbon: tr},              // no policy
		{Policy: policy.NoWait{}}, // no carbon
		{Policy: policy.NoWait{}, Carbon: tr, Reserved: -1},
		{Policy: policy.NoWait{}, Carbon: tr, EvictionRate: 1.0},
		{Policy: policy.NoWait{}, Carbon: tr, SpotMaxLen: -1},
		{Policy: policy.NoWait{}, Carbon: tr, Pricing: cloud.Pricing{OnDemandHourly: -1, ReservedFraction: 0.4, SpotFraction: 0.2}},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg, jobs); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestWorkConservingRejectsPlans(t *testing.T) {
	tr := flatTrace(48, 100)
	cfg := baseConfig(tr, policy.WaitAwhile{})
	cfg.WorkConserving = true
	cfg.Reserved = 0 // no idle reserved unit, so the policy is consulted
	if _, err := Run(cfg, oneJob(3*simtime.Hour, 1)); err == nil {
		t.Error("suspend-resume under work conservation should fail")
	}
}

func TestLabelDerivation(t *testing.T) {
	tr := flatTrace(10, 100)
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Policy: policy.CarbonTime{}, Carbon: tr}, "Carbon-Time"},
		{Config{Policy: policy.CarbonTime{}, Carbon: tr, WorkConserving: true, Reserved: 5}, "RES-First-Carbon-Time"},
		{Config{Policy: policy.CarbonTime{}, Carbon: tr, SpotMaxLen: simtime.Hour}, "Spot-First-Carbon-Time"},
		{Config{Policy: policy.CarbonTime{}, Carbon: tr, SpotMaxLen: simtime.Hour, Reserved: 5}, "Spot-RES-Carbon-Time"},
		{Config{Policy: policy.AllWait{}, Carbon: tr, WorkConserving: true}, "AllWait-Threshold"},
		{Config{Policy: policy.NoWait{}, Carbon: tr, Label: "custom"}, "custom"},
	}
	for i, c := range cases {
		got := c.cfg.withDefaults().Label
		if got != c.want {
			t.Errorf("case %d: label = %q, want %q", i, got, c.want)
		}
	}
}

func TestMultiQueueLadder(t *testing.T) {
	tr := flatTrace(24*8, 100)
	cfg := baseConfig(tr, policy.AllWait{})
	cfg.Queues = []QueueSpec{
		{MaxLength: simtime.Hour, MaxWait: 2 * simtime.Hour},
		{MaxLength: 6 * simtime.Hour, MaxWait: 8 * simtime.Hour},
		{MaxLength: 0, MaxWait: 30 * simtime.Hour},
	}
	jobs := workload.MustTrace("ladder", []workload.Job{
		{Arrival: 0, Length: 30 * simtime.Minute, CPUs: 1},
		{Arrival: 0, Length: 3 * simtime.Hour, CPUs: 1},
		{Arrival: 0, Length: 20 * simtime.Hour, CPUs: 1},
	})
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// AllWait without reserved capacity: each job waits its queue's W.
	wantWaits := []simtime.Duration{2 * simtime.Hour, 8 * simtime.Hour, 30 * simtime.Hour}
	for i, j := range res.Jobs {
		if j.Queue != workload.Queue(i) {
			t.Errorf("job %d in queue %v", i, j.Queue)
		}
		if j.Waiting != wantWaits[i] {
			t.Errorf("job %d waited %v, want %v", i, j.Waiting, wantWaits[i])
		}
	}
}

func TestQueueLadderValidation(t *testing.T) {
	tr := flatTrace(10, 100)
	jobs := oneJob(simtime.Hour, 1)
	bad := [][]QueueSpec{
		{{MaxLength: 0, MaxWait: simtime.Hour}, {MaxLength: 0, MaxWait: simtime.Hour}},                           // non-last unbounded
		{{MaxLength: 2 * simtime.Hour, MaxWait: simtime.Hour}, {MaxLength: simtime.Hour, MaxWait: simtime.Hour}}, // descending
	}
	for i, qs := range bad {
		cfg := baseConfig(tr, policy.NoWait{})
		cfg.Queues = qs
		if _, err := Run(cfg, jobs); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	// Explicit zero wait on a ladder queue.
	cfg := baseConfig(tr, policy.AllWait{})
	cfg.Queues = []QueueSpec{{MaxLength: 0, MaxWait: -1}}
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Waiting != 0 {
		t.Errorf("zero-wait queue waited %v", res.Jobs[0].Waiting)
	}
}

func TestEmptyWorkload(t *testing.T) {
	tr := flatTrace(10, 100)
	res, err := Run(baseConfig(tr, policy.NoWait{}), workload.MustTrace("empty", nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 0 || res.TotalCarbon() != 0 {
		t.Error("empty workload should produce empty result")
	}
	// With reserved capacity the upfront is still due.
	cfg := baseConfig(tr, policy.NoWait{})
	cfg.Reserved = 3
	res, err = Run(cfg, workload.MustTrace("empty", nil))
	if err != nil {
		t.Fatal(err)
	}
	want := 3.0 * tr.Horizon().Hours() * 0.4
	if math.Abs(res.TotalCost()-want) > 1e-9 {
		t.Errorf("idle cluster cost = %v, want %v", res.TotalCost(), want)
	}
}
