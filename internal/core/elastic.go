package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/sim"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// elasticState is the scheduler's malleable-job machinery: precedence
// gating for DAG jobs and the hourly reallocation loop that resizes
// running jobs via Reschedule of their finish events. It exists only when
// the run's ElasticTrace has managed jobs (a non-degenerate spec or a
// precedence edge); every other job takes the rigid path untouched, which
// is what makes the all-degenerate differential byte-identical.
type elasticState struct {
	s        *scheduler
	et       *workload.ElasticTrace
	alloc    policy.ElasticAllocator
	capacity int

	// running holds started, unfinished managed jobs (replicas 0 =
	// suspended). parked holds arrived jobs still gated on predecessors;
	// preds is the mutable remaining-predecessor count, arrived marks
	// submission so a job releases at max(arrival, last predecessor
	// finish) whichever event comes second.
	running map[int]*elasticJob
	parked  map[int]workload.Job
	preds   []int32
	arrived []bool

	// tickSet tracks whether the hourly reallocation tick is pending; the
	// tick reschedules itself while any managed job is in flight and lapses
	// otherwise, so an idle tail of the trace costs no events.
	tickSet bool

	// Scratch reused across ticks.
	ids   []int
	views []policy.ElasticJobView
}

// elasticJob phases dispatched by Fire.
const (
	elPhaseStart uint8 = iota
	elPhaseFinish
)

// elasticJob carries one managed job from release to finish. Like
// jobState it is its own engine Action for both its scheduled phases; the
// finish handle is live between starts and resizes so the hourly tick can
// Reschedule it in O(1).
type elasticJob struct {
	el    *elasticState
	job   workload.Job
	spec  workload.ElasticSpec
	rec   *metrics.JobResult
	phase uint8
	// ready is when the job cleared arrival + precedence; deadline is
	// ready plus the queue's waiting-time guarantee — past it a suspended
	// job is forcibly resumed, which bounds every run's length.
	ready    simtime.Time
	deadline simtime.Time
	// remaining is serial-equivalent work left in unit-minutes; replicas
	// and reserved describe the current allocation; segStart opens the
	// accounting segment the next flush closes.
	remaining float64
	replicas  int
	reserved  int
	segStart  simtime.Time
	finish    sim.Handle
	// scratch is the streaming-mode accounting record (rec points here);
	// with RetainJobs rec points into scheduler.results instead.
	scratch metrics.JobResult
}

// Fire dispatches the elasticJob's scheduled phase.
func (ej *elasticJob) Fire() {
	switch ej.phase {
	case elPhaseStart:
		ej.el.start(ej)
	case elPhaseFinish:
		ej.el.finishJob(ej)
	}
}

// newElasticState builds the machinery for a run whose trace has managed
// jobs. cfg is the defaulted config (Allocator non-nil).
func newElasticState(s *scheduler, et *workload.ElasticTrace) *elasticState {
	el := &elasticState{
		s:        s,
		et:       et,
		alloc:    s.cfg.Allocator,
		capacity: s.cfg.ElasticCapacity,
		running:  make(map[int]*elasticJob),
		parked:   make(map[int]workload.Job),
		preds:    make([]int32, et.Len()),
		arrived:  make([]bool, et.Len()),
	}
	for id := 0; id < et.Len(); id++ {
		el.preds[id] = int32(et.PredCount(id))
	}
	return el
}

// arrive admits a managed job: parked while predecessors are outstanding,
// released to the policy otherwise.
func (el *elasticState) arrive(job workload.Job) {
	el.arrived[job.ID] = true
	if el.preds[job.ID] > 0 {
		el.parked[job.ID] = job
		return
	}
	el.release(job)
}

// release runs the policy for a job that cleared arrival and precedence.
// now — the later of the two — is the job's ready time: the decision, its
// waiting window, the carbon baseline and the suspension deadline are all
// anchored there, exactly as the rigid path anchors them at arrival.
func (el *elasticState) release(job workload.Job) {
	s := el.s
	now := s.engine.Now()
	ej := &elasticJob{el: el, job: job, spec: el.et.Spec(job.ID), ready: now}
	ej.deadline = now.Add(s.ctx.Queue(job.Queue).MaxWait)
	if s.results != nil {
		ej.rec = &s.results[job.ID]
	} else {
		ej.rec = &ej.scratch
	}
	rec := ej.rec
	rec.JobID = job.ID
	rec.Queue = job.Queue
	rec.User = job.User
	rec.CPUs = job.CPUs
	rec.Length = job.Length
	rec.Arrival = job.Arrival
	rec.BaselineCarbon = s.carbonOf(simtime.Interval{
		Start: now, End: now.Add(job.Length),
	}, job.CPUs)

	d := s.cfg.Policy.Decide(job, now, s.ctx)
	if err := d.Validate(job, now); err != nil {
		panic(fmt.Sprintf("policy %s: %v", s.cfg.Policy.Name(), err))
	}
	if d.IsPlan() {
		panic(fmt.Sprintf("policy %s: suspend-resume plans cannot drive elastic jobs", s.cfg.Policy.Name()))
	}
	ej.phase = elPhaseStart
	s.engine.ScheduleAction(d.Start, sim.PriorityStart, ej)
}

// start begins execution at the base width max(Min, 1); the allocator
// first sees the job at the next hourly tick.
func (el *elasticState) start(ej *elasticJob) {
	s := el.s
	now := s.engine.Now()
	base := ej.spec.MinReplicas
	if base < 1 {
		base = 1
	}
	ej.remaining = float64(ej.job.Length)
	ej.replicas = base
	ej.reserved = s.pool.Acquire(base * ej.job.CPUs)
	ej.segStart = now
	ej.rec.Start = now
	ej.phase = elPhaseFinish
	ej.finish = s.engine.ScheduleAction(now.Add(elasticDur(ej.remaining, ej.rate())), sim.PriorityFinish, ej)
	el.running[ej.job.ID] = ej
	el.ensureTick(now)
}

// rate is the job's current serial-equivalent throughput in unit-minutes
// per minute (0 while suspended).
func (ej *elasticJob) rate() float64 { return ej.spec.Curve.Throughput(ej.replicas) }

// elasticDur converts remaining work at a throughput into a whole-minute
// duration, rounding up so the finish event never undershoots the work
// (the final flush clamps the remainder at zero). The epsilon forgives
// float noise from segment splitting so an exact quotient does not round
// an extra minute up.
func elasticDur(remaining, rate float64) simtime.Duration {
	d := simtime.Duration(math.Ceil(remaining/rate - 1e-9))
	if d < 1 {
		d = 1
	}
	return d
}

// flush closes the job's open accounting segment at now, booking the
// replicas' CPU-time reserved-first and advancing remaining by the work
// done. Suspended jobs and empty segments flush to nothing.
func (el *elasticState) flush(ej *elasticJob, now simtime.Time) {
	if ej.replicas == 0 || now <= ej.segStart {
		return
	}
	iv := simtime.Interval{Start: ej.segStart, End: now}
	width := ej.replicas * ej.job.CPUs
	onDemand := width - ej.reserved
	el.s.account(ej.rec, iv, ej.reserved, onDemand, 0, false)
	ej.remaining -= float64(iv.Len()) * ej.rate()
	if ej.remaining < 0 {
		ej.remaining = 0
	}
	ej.segStart = now
}

// finishJob completes a managed job: final segment flushed, capacity
// released, record folded into the accumulator, successors unblocked.
func (el *elasticState) finishJob(ej *elasticJob) {
	s := el.s
	now := s.engine.Now()
	el.flush(ej, now)
	s.pool.Release(ej.reserved)
	ej.reserved = 0
	ej.replicas = 0
	delete(el.running, ej.job.ID)

	rec := ej.rec
	rec.Finish = now
	// Negative waiting means elasticity beat the serial length — the
	// paper's waiting metric measures completion against the rigid run.
	rec.Waiting = now.Sub(rec.Arrival) - rec.Length
	s.acc.AddJob(rec)

	for _, succ := range el.et.Succs(ej.job.ID) {
		el.preds[succ]--
		if el.preds[succ] == 0 && el.arrived[succ] {
			job := el.parked[int(succ)]
			delete(el.parked, int(succ))
			el.release(job)
		}
	}
}

// ensureTick schedules the hourly reallocation tick at the next hour
// boundary strictly after now, unless one is already pending.
func (el *elasticState) ensureTick(now simtime.Time) {
	if el.tickSet {
		return
	}
	el.tickSet = true
	boundary := simtime.Time(now.HourIndex()+1) * simtime.Time(simtime.Hour)
	el.s.engine.Schedule(boundary, sim.PriorityLow, el.tick)
}

// tick is the hourly reallocation boundary: every running managed job's
// view goes to the allocator in one call, grants are clamped to the specs'
// bounds and the waiting-time guarantee, and each change is applied as
// flush + re-acquire + Reschedule of the finish event. Iteration is in
// ascending job ID so wheel and heap runs allocate identically.
func (el *elasticState) tick() {
	el.tickSet = false
	s := el.s
	now := s.engine.Now()
	if len(el.running) == 0 {
		return
	}

	el.ids = el.ids[:0]
	for id := range el.running {
		el.ids = append(el.ids, id)
	}
	sort.Ints(el.ids)

	el.views = el.views[:0]
	for _, id := range el.ids {
		ej := el.running[id]
		// Effective remaining without flushing: the segment stays open so
		// an unchanged grant costs no accounting split.
		er := ej.remaining - float64(now.Sub(ej.segStart))*ej.rate()
		el.views = append(el.views, policy.ElasticJobView{
			ID:        id,
			Queue:     ej.job.Queue,
			CPUs:      ej.job.CPUs,
			Min:       ej.spec.MinReplicas,
			Max:       ej.spec.MaxReplicas,
			Curve:     ej.spec.Curve,
			Remaining: er,
			Replicas:  ej.replicas,
		})
	}

	// The extra-replica budget is the prepaid capacity currently idle —
	// scale-ups are free by construction — further capped by the config
	// bound when one is set. The snapshot is taken once per boundary; a
	// job downsized earlier in the loop frees capacity the allocator
	// could not see until the next tick, which keeps the grant a pure
	// function of the views.
	budget := s.pool.Idle()
	if el.capacity > 0 && el.capacity < budget {
		budget = el.capacity
	}
	grants := el.alloc.Allocate(el.views, now, budget, s.ctx)
	if len(grants) != len(el.views) {
		panic(fmt.Sprintf("allocator %s: %d grants for %d jobs", el.alloc.Name(), len(grants), len(el.views)))
	}
	for i, id := range el.ids {
		el.resize(el.running[id], now, grants[i], el.views[i].Remaining)
	}
	el.ensureTick(now)
}

// resize applies one allocator grant. target is clamped to [base, Max]
// where base = max(Min, 1), except that a zero grant suspends a
// preemptible job (Min 0) while its waiting-time guarantee has room; at
// the deadline a suspended job is forcibly resumed at base width, so
// progress — and hence termination — is guaranteed past it.
func (el *elasticState) resize(ej *elasticJob, now simtime.Time, target int, er float64) {
	s := el.s
	base := ej.spec.MinReplicas
	if base < 1 {
		base = 1
	}
	if target > ej.spec.MaxReplicas {
		target = ej.spec.MaxReplicas
	}
	if target < base {
		if !(target <= 0 && ej.spec.MinReplicas == 0 && now < ej.deadline) {
			target = base
		} else {
			target = 0
		}
	}
	if target == ej.replicas {
		return
	}

	el.flush(ej, now)
	s.pool.Release(ej.reserved)
	ej.reserved = 0

	if target == 0 {
		// Suspend: drop the finish event until a later tick resumes.
		s.engine.Cancel(ej.finish)
		ej.finish = sim.Handle{}
		ej.replicas = 0
		return
	}

	resumed := ej.replicas == 0
	ej.replicas = target
	ej.reserved = s.pool.Acquire(target * ej.job.CPUs)
	ej.segStart = now
	end := now.Add(elasticDur(ej.remaining, ej.rate()))
	if resumed {
		ej.finish = s.engine.ScheduleAction(end, sim.PriorityFinish, ej)
		return
	}
	h, ok := s.engine.Reschedule(ej.finish, end, sim.PriorityFinish)
	if !ok {
		panic(fmt.Sprintf("core: stale finish handle for elastic job %d", ej.job.ID))
	}
	ej.finish = h
}
