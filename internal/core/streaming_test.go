package core

import (
	"reflect"
	"testing"

	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// aggregateFingerprint captures every aggregate query a figure can ask of
// a result. Streaming and retained runs must produce DeepEqual
// fingerprints — bit-identical floats, not approximately equal ones.
type aggregateFingerprint struct {
	Label          string
	Jobs           int
	Carbon         float64
	Baseline       float64
	Savings        float64
	UsageCost      float64
	TotalCost      float64
	TotalWaiting   simtime.Duration
	WaitingHours   float64
	MeanWaiting    simtime.Duration
	MeanCompletion simtime.Duration
	Percentiles    [4]simtime.Duration
	Evictions      int
	CPUHours       [3]float64
	Wasted         float64
	Utilization    float64
	Usage          [3][]float64
	PeakDemand     float64
	CDFTotal       float64
	CDFSamples     [3]float64
	Text           string
}

func fingerprint(res *metrics.Result, horizon simtime.Duration) aggregateFingerprint {
	cdf := res.SavingsByLengthCDF()
	return aggregateFingerprint{
		Label:          res.Label,
		Jobs:           res.JobCount(),
		Carbon:         res.TotalCarbon(),
		Baseline:       res.BaselineCarbon(),
		Savings:        res.CarbonSavingsFraction(),
		UsageCost:      res.UsageCost(),
		TotalCost:      res.TotalCost(),
		TotalWaiting:   res.TotalWaiting(),
		WaitingHours:   res.TotalWaitingHours(),
		MeanWaiting:    res.MeanWaiting(),
		MeanCompletion: res.MeanCompletion(),
		Percentiles: [4]simtime.Duration{
			res.WaitingPercentile(50), res.WaitingPercentile(90),
			res.WaitingPercentile(99), res.WaitingPercentile(100),
		},
		Evictions:   res.TotalEvictions(),
		CPUHours:    res.CPUHoursByOption(),
		Wasted:      res.TotalWastedCPUHours(),
		Utilization: res.ReservedUtilization(),
		Usage:       res.UsageSeries(horizon),
		PeakDemand:  res.PeakDemand(horizon),
		CDFTotal:    cdf.Total(),
		CDFSamples:  [3]float64{cdf.At(0.5), cdf.At(2), cdf.At(12)},
		Text:        res.String(),
	}
}

// TestStreamingMatchesRetained is the scheduler-level differential pin:
// for every mechanism the simulator models — reserved work conservation,
// spot with evictions, checkpointed spot, suspend-resume plans — a
// streaming run must answer every aggregate query bit-identically to a
// retained run of the same configuration.
func TestStreamingMatchesRetained(t *testing.T) {
	tr, jobs := randomInstance(23)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"carbontime-plain", func(c *Config) { c.Policy = policy.CarbonTime{} }},
		{"res-first", func(c *Config) {
			c.Policy = policy.CarbonTime{}
			c.Reserved = 10
			c.WorkConserving = true
		}},
		{"spot-evictions", func(c *Config) {
			c.Policy = policy.LowestWindow{}
			c.SpotMaxLen = 4 * simtime.Hour
			c.EvictionRate = 0.2
			c.Seed = 5
		}},
		{"checkpointed-spot", func(c *Config) {
			c.Policy = policy.CarbonTime{}
			c.SpotMaxLen = 12 * simtime.Hour
			c.EvictionRate = 0.15
			c.Seed = 8
			c.CheckpointInterval = simtime.Hour
		}},
		{"suspend-resume-plan", func(c *Config) { c.Policy = policy.WaitAwhile{} }},
		{"ecovisor-plan", func(c *Config) { c.Policy = policy.Ecovisor{} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig(tr, nil)
			cfg.RetainJobs = false
			tc.mutate(&cfg)

			streaming, err := Run(cfg, jobs)
			if err != nil {
				t.Fatal(err)
			}
			if len(streaming.Jobs) != 0 {
				t.Fatalf("streaming run retained %d job records", len(streaming.Jobs))
			}
			retainedCfg := cfg
			retainedCfg.RetainJobs = true
			retained, err := Run(retainedCfg, jobs)
			if err != nil {
				t.Fatal(err)
			}
			if len(retained.Jobs) != jobs.Len() {
				t.Fatalf("retained run kept %d records, want %d", len(retained.Jobs), jobs.Len())
			}
			horizon := streaming.Horizon
			got := fingerprint(streaming, horizon)
			want := fingerprint(retained, horizon)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("aggregates diverge between modes:\nstreaming %+v\nretained  %+v", got, want)
			}
		})
	}
}

// TestForceRetainJobs covers the global override the figure differential
// tests use: it must flip a streaming config into retention and back.
func TestForceRetainJobs(t *testing.T) {
	tr := flatTrace(48, 100)
	cfg := baseConfig(tr, policy.NoWait{})
	cfg.RetainJobs = false
	jobs := workload.MustTrace("pair", []workload.Job{
		{Arrival: 0, Length: simtime.Hour, CPUs: 1},
		{Arrival: 30, Length: 2 * simtime.Hour, CPUs: 1},
	})

	ForceRetainJobs(true)
	forced, err := Run(cfg, jobs)
	ForceRetainJobs(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(forced.Jobs) != 2 {
		t.Fatalf("forced run kept %d records, want 2", len(forced.Jobs))
	}
	plain, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Jobs) != 0 {
		t.Fatalf("override leaked: plain run kept %d records", len(plain.Jobs))
	}
}

// TestStreamingEmptyWorkload pins the degenerate streaming run: zero jobs
// must answer zero everywhere without dividing by zero.
func TestStreamingEmptyWorkload(t *testing.T) {
	tr := flatTrace(24, 100)
	cfg := baseConfig(tr, policy.CarbonTime{})
	cfg.RetainJobs = false
	res, err := Run(cfg, workload.MustTrace("empty", nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.JobCount() != 0 {
		t.Errorf("JobCount = %d", res.JobCount())
	}
	if res.MeanWaiting() != 0 || res.MeanCompletion() != 0 ||
		res.CarbonSavingsFraction() != 0 || res.WaitingPercentile(99) != 0 {
		t.Errorf("degenerate aggregates nonzero: %s", res)
	}
}
