package core

import (
	"container/heap"
	"fmt"

	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/sim"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// Run simulates the configured GAIA cluster over the workload trace and
// returns per-job and cluster-level accounting. The input trace is never
// modified: an already-normalized trace (the output of workload.NewTrace)
// is shared as-is, so many concurrent Runs over the same trace cost no
// per-run copies. Runs are deterministic for a given (Config, trace).
func Run(cfg Config, jobs *workload.Trace) (res *metrics.Result, err error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Scheduler invariant violations surface as panics deep in event
	// callbacks; convert them to errors at the API boundary.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("core: run failed: %v", r)
		}
	}()

	trace := normalizedTrace(jobs)
	bounds := cfg.queueBounds()

	pool, err := cloud.NewReservedPool(cfg.Reserved)
	if err != nil {
		return nil, err
	}
	evict, err := cloud.NewEvictionModel(cfg.EvictionRate, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := &scheduler{
		cfg:    cfg,
		ctx:    cfg.policyContext(trace),
		engine: sim.NewEngine(),
		pool:   pool,
		evict:  evict,
		// A normalized trace numbers jobs 0..n-1, so each job's record
		// lives at results[job.ID]: no append growth, no final sort.
		results: make([]metrics.JobResult, len(trace.Jobs)),
	}
	for _, job := range trace.Jobs {
		job := job
		// Queue classification happens on the per-event copy of the job,
		// never on the (shared, immutable) trace. Arrivals ride the
		// engine's sorted stream — the normalized trace is already in
		// arrival order — so the event heap only ever holds in-flight
		// starts and finishes.
		job.Queue = workload.ClassifyLength(job.Length, bounds)
		s.engine.ScheduleSorted(job.Arrival, sim.PriorityArrival, func() { s.arrive(job) })
	}
	s.engine.Run()

	return &metrics.Result{
		Label:    cfg.Label,
		Region:   cfg.Carbon.Region(),
		Workload: trace.Name,
		Reserved: cfg.Reserved,
		Horizon:  cfg.Horizon,
		Pricing:  cfg.Pricing,
		Jobs:     s.results,
	}, nil
}

// normalizedTrace returns jobs itself when it already satisfies the
// invariants workload.NewTrace establishes — sorted by arrival, IDs
// numbered in order, every job valid — and a normalizing copy otherwise.
// The fast path is what makes a 30-cell sweep share one immutable trace
// instead of deep-copying it 30 times.
func normalizedTrace(jobs *workload.Trace) *workload.Trace {
	for i, j := range jobs.Jobs {
		if j.ID != i || (i > 0 && jobs.Jobs[i-1].Arrival > j.Arrival) || j.Validate() != nil {
			return workload.MustTrace(jobs.Name, jobs.Jobs)
		}
	}
	return jobs
}

// scheduler is the run-scoped state machine driven by the event engine.
type scheduler struct {
	cfg     Config
	ctx     *policy.Context
	engine  *sim.Engine
	pool    *cloud.ReservedPool
	evict   *cloud.EvictionModel
	waiting waitQueue
	results []metrics.JobResult
}

// arrive handles a job submission.
func (s *scheduler) arrive(job workload.Job) {
	now := s.engine.Now()
	rec := &s.results[job.ID]
	rec.JobID = job.ID
	rec.Queue = job.Queue
	rec.User = job.User
	rec.CPUs = job.CPUs
	rec.Length = job.Length
	rec.Arrival = now
	rec.BaselineCarbon = s.carbonOf(simtime.Interval{
		Start: now, End: now.Add(job.Length),
	}, job.CPUs)

	if s.spotEligible(job) {
		s.scheduleSpot(job, rec)
		return
	}

	// RES-First work conservation: run immediately when the job fits in
	// idle reserved capacity — those units are pre-paid either way.
	if s.cfg.WorkConserving && s.pool.Idle() >= job.CPUs {
		s.startJob(job, rec)
		return
	}

	d := s.cfg.Policy.Decide(job, now, s.ctx)
	if err := d.Validate(job, now); err != nil {
		panic(fmt.Sprintf("policy %s: %v", s.cfg.Policy.Name(), err))
	}

	if d.IsPlan() {
		if s.cfg.WorkConserving {
			panic(fmt.Sprintf("policy %s: suspend-resume plans cannot be work-conserving", s.cfg.Policy.Name()))
		}
		s.schedulePlan(job, rec, d.Plan)
		return
	}

	if s.cfg.WorkConserving {
		w := &waiter{job: job, rec: rec, plannedStart: d.Start}
		w.startEvent = s.engine.Schedule(d.Start, sim.PriorityStart, func() { s.startPlanned(w) })
		heap.Push(&s.waiting, w)
		return
	}
	s.engine.Schedule(d.Start, sim.PriorityStart, func() { s.startJob(job, rec) })
}

// spotEligible reports whether the job is routed to spot capacity.
func (s *scheduler) spotEligible(job workload.Job) bool {
	return s.cfg.SpotMaxLen > 0 && job.Length <= s.cfg.SpotMaxLen
}

// startPlanned fires when a waiting job's carbon-aware start time arrives
// without a reserved unit having freed up first.
func (s *scheduler) startPlanned(w *waiter) {
	heap.Remove(&s.waiting, w.index)
	s.startJob(w.job, w.rec)
}

// startJob begins uninterruptible execution now, filling from idle
// reserved units first and on-demand for the remainder (the resource
// manager's placement rule, §4.1).
func (s *scheduler) startJob(job workload.Job, rec *metrics.JobResult) {
	now := s.engine.Now()
	reserved := s.pool.Acquire(job.CPUs)
	onDemand := job.CPUs - reserved
	iv := simtime.Interval{Start: now, End: now.Add(job.Length)}
	rec.Start = now
	s.account(rec, iv, reserved, onDemand, 0, false)
	s.engine.Schedule(iv.End, sim.PriorityFinish, func() {
		s.pool.Release(reserved)
		s.finish(rec, iv.End)
	})
}

// normalizePlan delegates to policy.NormalizePlan (shared with the
// prototype runtime).
func normalizePlan(plan []simtime.Interval, length simtime.Duration) []simtime.Interval {
	return policy.NormalizePlan(plan, length)
}

// schedulePlan executes a suspend-resume plan: each interval independently
// claims reserved-first capacity at its start and releases it at its end.
func (s *scheduler) schedulePlan(job workload.Job, rec *metrics.JobResult, plan []simtime.Interval) {
	plan = normalizePlan(plan, job.Length)
	rec.Start = plan[0].Start
	last := plan[len(plan)-1].End
	for _, iv := range plan {
		iv := iv
		s.engine.Schedule(iv.Start, sim.PriorityStart, func() {
			reserved := s.pool.Acquire(job.CPUs)
			onDemand := job.CPUs - reserved
			s.account(rec, iv, reserved, onDemand, 0, false)
			s.engine.Schedule(iv.End, sim.PriorityFinish, func() {
				s.pool.Release(reserved)
				if iv.End == last {
					s.finish(rec, last)
				}
			})
		})
	}
}

// scheduleSpot runs a spot-eligible job: the policy's carbon-aware
// schedule executes on spot capacity; if the spot allocation is revoked,
// all progress is lost (the paper's assumption) and the job restarts
// immediately on on-demand capacity — falling back to idle reserved units
// first under Spot-RES.
func (s *scheduler) scheduleSpot(job workload.Job, rec *metrics.JobResult) {
	now := s.engine.Now()
	d := s.cfg.Policy.Decide(job, now, s.ctx)
	if err := d.Validate(job, now); err != nil {
		panic(fmt.Sprintf("policy %s: %v", s.cfg.Policy.Name(), err))
	}
	plan := d.Plan
	if !d.IsPlan() {
		plan = []simtime.Interval{{Start: d.Start, End: d.Start.Add(job.Length)}}
	} else {
		plan = normalizePlan(plan, job.Length)
	}

	if s.cfg.CheckpointInterval > 0 && len(plan) == 1 {
		s.scheduleCheckpointedSpot(job, rec, plan[0].Start)
		return
	}

	// Sample the eviction process over the planned execution. Checks
	// occur at whole run-hours within each contiguous interval.
	evictAt := simtime.Time(-1)
	for _, iv := range plan {
		if at, ev := s.evict.SampleEviction(iv.Start, iv.Len()); ev {
			evictAt = at
			break
		}
	}

	rec.Start = plan[0].Start
	if evictAt < 0 {
		// Clean spot execution.
		last := plan[len(plan)-1].End
		for _, iv := range plan {
			iv := iv
			s.engine.Schedule(iv.Start, sim.PriorityStart, func() {
				s.account(rec, iv, 0, 0, job.CPUs, false)
				if iv.End == last {
					s.engine.Schedule(last, sim.PriorityFinish, func() { s.finish(rec, last) })
				}
			})
		}
		return
	}

	// Evicted: all execution up to evictAt is waste; restart on demand.
	rec.Evictions = 1
	for _, iv := range plan {
		if iv.Start >= evictAt {
			break
		}
		wasted := iv
		if wasted.End > evictAt {
			wasted.End = evictAt
		}
		s.engine.Schedule(wasted.Start, sim.PriorityStart, func() {
			s.account(rec, wasted, 0, 0, job.CPUs, true)
		})
	}
	s.engine.Schedule(evictAt, sim.PriorityEvict, func() {
		reserved := s.pool.Acquire(job.CPUs)
		onDemand := job.CPUs - reserved
		iv := simtime.Interval{Start: evictAt, End: evictAt.Add(job.Length)}
		s.account(rec, iv, reserved, onDemand, 0, false)
		s.engine.Schedule(iv.End, sim.PriorityFinish, func() {
			s.pool.Release(reserved)
			s.finish(rec, iv.End)
		})
	})
}

// scheduleCheckpointedSpot runs a spot job that checkpoints after every
// CheckpointInterval of useful work (each checkpoint costing
// CheckpointOverhead of extra runtime). An eviction loses only the
// progress since the last completed checkpoint; the remainder resumes on
// on-demand capacity (reserved-first), checkpoint-free.
func (s *scheduler) scheduleCheckpointedSpot(job workload.Job, rec *metrics.JobResult, start simtime.Time) {
	ckInt := s.cfg.CheckpointInterval
	ckOver := s.cfg.CheckpointOverhead
	// Checkpoints strictly inside the job (none at completion).
	numCk := int((job.Length - 1) / ckInt)
	padded := job.Length + simtime.Duration(numCk)*ckOver
	cycle := ckInt + ckOver

	rec.Start = start
	evictAt, evicted := s.evict.SampleEviction(start, padded)
	if !evicted {
		// Clean run: whole padded execution on spot.
		iv := simtime.Interval{Start: start, End: start.Add(padded)}
		s.engine.Schedule(start, sim.PriorityStart, func() {
			s.account(rec, iv, 0, 0, job.CPUs, false)
		})
		s.engine.Schedule(iv.End, sim.PriorityFinish, func() { s.finish(rec, iv.End) })
		return
	}

	rec.Evictions = 1
	ran := evictAt.Sub(start)
	savedCycles := int(ran / cycle)
	if savedCycles > numCk {
		savedCycles = numCk
	}
	savedWork := simtime.Duration(savedCycles) * ckInt
	remaining := job.Length - savedWork
	// Everything run on spot is billed/emitted; only savedWork of it is
	// useful, the rest is eviction waste.
	spotIv := simtime.Interval{Start: start, End: evictAt}
	s.engine.Schedule(start, sim.PriorityStart, func() {
		useful := simtime.Interval{Start: start, End: start.Add(savedWork)}
		s.account(rec, useful, 0, 0, job.CPUs, false)
		wasted := simtime.Interval{Start: useful.End, End: spotIv.End}
		s.account(rec, wasted, 0, 0, job.CPUs, true)
	})
	s.engine.Schedule(evictAt, sim.PriorityEvict, func() {
		reserved := s.pool.Acquire(job.CPUs)
		onDemand := job.CPUs - reserved
		iv := simtime.Interval{Start: evictAt, End: evictAt.Add(remaining)}
		s.account(rec, iv, reserved, onDemand, 0, false)
		s.engine.Schedule(iv.End, sim.PriorityFinish, func() {
			s.pool.Release(reserved)
			s.finish(rec, iv.End)
		})
	})
}

// finish closes a job's record and, under work conservation, hands freed
// reserved units to the earliest-planned waiting jobs.
func (s *scheduler) finish(rec *metrics.JobResult, at simtime.Time) {
	rec.Finish = at
	rec.Waiting = at.Sub(rec.Arrival) - rec.Length
	if s.cfg.WorkConserving {
		s.drainWaiting()
	}
}

// drainWaiting starts waiting jobs (earliest planned start first) while
// they fit entirely into idle reserved capacity — the RES-First rule: a
// freed reserved server immediately picks up the next queued job instead
// of idling until that job's carbon-optimal start.
func (s *scheduler) drainWaiting() {
	for s.waiting.Len() > 0 {
		w := s.waiting[0]
		if s.pool.Idle() < w.job.CPUs {
			return
		}
		heap.Pop(&s.waiting)
		w.startEvent.Cancel()
		s.startJob(w.job, w.rec)
	}
}

// carbonOf converts execution over iv into grams of CO2eq using the
// realized trace.
func (s *scheduler) carbonOf(iv simtime.Interval, cpus int) float64 {
	return s.cfg.Power.Carbon(s.cfg.Carbon.Integral(iv), cpus)
}

// account books one execution interval split across purchase options.
func (s *scheduler) account(rec *metrics.JobResult, iv simtime.Interval, reserved, onDemand, spot int, wasted bool) {
	hours := iv.Len().Hours()
	carbonG := s.carbonOf(iv, reserved+onDemand+spot)
	cost := (float64(onDemand)*s.cfg.Pricing.HourlyRate(cloud.OnDemand) +
		float64(spot)*s.cfg.Pricing.HourlyRate(cloud.Spot)) * hours

	rec.Carbon += carbonG
	rec.UsageCost += cost
	rec.CPUHours[cloud.Reserved] += float64(reserved) * hours
	rec.CPUHours[cloud.OnDemand] += float64(onDemand) * hours
	rec.CPUHours[cloud.Spot] += float64(spot) * hours
	rec.Segments = append(rec.Segments, metrics.Segment{
		Interval: iv,
		Reserved: reserved,
		OnDemand: onDemand,
		Spot:     spot,
		Wasted:   wasted,
	})
	if wasted {
		rec.WastedCPUHours += float64(reserved+onDemand+spot) * hours
		rec.WastedCarbon += carbonG
		rec.WastedCost += cost
	}
}

// waiter is a job registered for RES-First work conservation: it holds
// both its policy-chosen start event and its queue position ordered by
// that planned start.
type waiter struct {
	job          workload.Job
	rec          *metrics.JobResult
	plannedStart simtime.Time
	startEvent   *sim.Event
	index        int
}

// waitQueue is a heap of waiters ordered by planned start, then job ID for
// determinism.
type waitQueue []*waiter

func (q waitQueue) Len() int { return len(q) }

func (q waitQueue) Less(i, j int) bool {
	if q[i].plannedStart != q[j].plannedStart {
		return q[i].plannedStart < q[j].plannedStart
	}
	return q[i].job.ID < q[j].job.ID
}

func (q waitQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *waitQueue) Push(x any) {
	w := x.(*waiter)
	w.index = len(*q)
	*q = append(*q, w)
}

func (q *waitQueue) Pop() any {
	old := *q
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*q = old[:n-1]
	return w
}
