package core

import (
	"container/heap"
	"context"
	"errors"
	"fmt"

	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/sim"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// Run simulates the configured GAIA cluster over the workload trace and
// returns cluster-level accounting. The input trace is never modified: an
// already-normalized trace (the output of workload.NewTrace) is shared
// as-is, so many concurrent Runs over the same trace cost no per-run
// copies. Runs are deterministic for a given (Config, trace).
//
// By default the scheduler streams each finished job into a metrics
// accumulator and keeps no per-job state beyond the jobs in flight, so
// memory is column-sized (tens of bytes per job) regardless of trace
// length; Config.RetainJobs additionally materializes the classic
// Result.Jobs records for per-job consumers. Aggregates are identical in
// both modes.
func Run(cfg Config, jobs *workload.Trace) (res *metrics.Result, err error) {
	return RunContext(context.Background(), cfg, jobs)
}

// interruptStride is how many simulation events execute between
// cancellation probes in RunContext. Coarse enough to keep the event loop
// hot, fine enough that a canceled year-long run stops within well under a
// millisecond of work.
const interruptStride = 4096

// RunContext is Run with cooperative cancellation: the event loop polls
// ctx every few thousand events and, once ctx is done, abandons the
// simulation and returns ctx's error. A run that completes is bit-identical
// to Run — the probe never reorders or drops events — so cached and
// uncancelled results are unaffected. Serving layers use this to make a
// client disconnect actually stop the simulation work it requested.
func RunContext(ctx context.Context, cfg Config, jobs *workload.Trace) (res *metrics.Result, err error) {
	// A run shorter than one probe stride never polls, so an already-dead
	// context is rejected up front rather than simulated to completion.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: run canceled: %w", err)
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Scheduler invariant violations surface as panics deep in event
	// callbacks; convert them to errors at the API boundary.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("core: run failed: %v", r)
		}
	}()

	trace := normalizedTrace(jobs)

	// The degenerate-elastic seam wraps rigid runs in an all-degenerate
	// ElasticTrace, exercising the elastic-aware configuration (engine
	// path, no caching) with zero managed jobs — bit-identity with the
	// unwrapped run is what the elastic differential tests pin.
	if cfg.Elastic == nil && forceElasticDegenerate.Load() {
		cfg.Elastic = workload.Degenerate(trace)
		if cfg.Allocator == nil {
			cfg.Allocator = policy.StaticAlloc{}
		}
	}
	// The elastic specs are keyed by normalized job ID, so the spec trace
	// must wrap this run's jobs — anything else would silently misapply
	// curves and edges across renumbered IDs.
	if cfg.Elastic != nil && cfg.Elastic.Jobs != jobs && cfg.Elastic.Jobs != trace {
		return nil, errors.New("core: config.Elastic must wrap the trace passed to Run")
	}

	// Decision-pure configurations skip the event engine entirely: the
	// direct path decides every job in parallel and replays accounting
	// over sorted endpoints, bit-identical to the engine (direct.go). The
	// Force* seams pin a run to a specific mechanism for differential
	// tests; a dynamic fallback (errDirectFallback) re-runs on the engine.
	if cfg.directEligible() && !forceEventEngine.Load() && !forceHeapEngine.Load() {
		res, err := runDirect(ctx, cfg, trace)
		if !errors.Is(err, errDirectFallback) {
			return res, err
		}
	}

	bounds := cfg.queueBounds()

	pool, err := cloud.NewReservedPool(cfg.Reserved)
	if err != nil {
		return nil, err
	}
	evict, err := cloud.NewEvictionModel(cfg.EvictionRate, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := &scheduler{
		cfg:    cfg,
		ctx:    cfg.policyContext(trace),
		engine: sim.NewEngine(),
		pool:   pool,
		evict:  evict,
		acc:    metrics.NewAccumulator(len(trace.Jobs), cfg.Horizon),
	}
	if cfg.RetainJobs {
		// A normalized trace numbers jobs 0..n-1, so each job's record
		// lives at results[job.ID]: no append growth, no final sort.
		s.results = make([]metrics.JobResult, len(trace.Jobs))
	}
	if et := cfg.Elastic; et != nil && et.ManagedCount() > 0 {
		s.el = newElasticState(s, et)
		if et.HasEdges() {
			s.ctx.SlackFn = et.Slack
		}
	}
	// Pre-size the jobState pool: its high-water mark is the peak
	// in-flight job count, which the paper's traces keep in the hundreds,
	// so a capped hint removes steady-state append growth without
	// reserving much on huge traces (the slice still grows on demand).
	if hint := len(trace.Jobs); hint > 0 {
		if hint > 1024 {
			hint = 1024
		}
		s.free = make([]*jobState, 0, hint)
	}
	// The scheduler's event loop is allocation-free in steady state: the
	// normalized trace's arrivals feed straight from the trace slice (no
	// materialized arrival events), in-flight jobs ride pooled jobState
	// action records, and the engine's arena recycles fired events. Queue
	// classification happens on the per-event copy of the job, never on
	// the (shared, immutable) trace.
	if forceHeapEngine.Load() {
		// Differential escape hatch (ForceHeapEngine): run the reference
		// heap queue instead of the timing wheel.
		s.engine.SetQueue(sim.QueueHeap)
	}
	s.engine.SetSource(len(trace.Jobs),
		func(i int) simtime.Time { return trace.Jobs[i].Arrival },
		sim.PriorityArrival,
		func(i int) {
			job := trace.Jobs[i]
			job.Queue = workload.ClassifyLength(job.Length, bounds)
			s.arrive(job)
		})
	if ctx.Done() != nil {
		s.engine.SetInterrupt(interruptStride, func() error { return ctx.Err() })
	}
	s.engine.Run()
	if err := s.engine.Err(); err != nil {
		return nil, fmt.Errorf("core: run canceled: %w", err)
	}

	res = &metrics.Result{
		Label:    cfg.Label,
		Region:   cfg.Carbon.Region(),
		Workload: trace.Name,
		Reserved: cfg.Reserved,
		Horizon:  cfg.Horizon,
		Pricing:  cfg.Pricing,
		Jobs:     s.results,
	}
	res.AttachAccumulator(s.acc)
	return res, nil
}

// normalizedTrace returns jobs itself when it already satisfies the
// invariants workload.NewTrace establishes — sorted by arrival, IDs
// numbered in order, every job valid — and a normalizing copy otherwise.
// The fast path is what makes a 30-cell sweep share one immutable trace
// instead of deep-copying it 30 times.
func normalizedTrace(jobs *workload.Trace) *workload.Trace {
	for i, j := range jobs.Jobs {
		if j.ID != i || (i > 0 && jobs.Jobs[i-1].Arrival > j.Arrival) || j.Validate() != nil {
			return workload.MustTrace(jobs.Name, jobs.Jobs)
		}
	}
	return jobs
}

// scheduler is the run-scoped state machine driven by the event engine.
type scheduler struct {
	cfg     Config
	ctx     *policy.Context
	engine  *sim.Engine
	pool    *cloud.ReservedPool
	evict   *cloud.EvictionModel
	waiting waitQueue
	acc     *metrics.Accumulator
	// el is the malleable-job machinery, nil unless the run's Elastic
	// trace has managed jobs (elastic.go).
	el *elasticState
	// results holds the retained per-job records (RetainJobs only).
	results []metrics.JobResult
	// free pools jobState records between finish and the next arrival, so
	// per-job state allocation is bounded by the peak in-flight count.
	free []*jobState
}

// jobState phases dispatched by Fire.
const (
	phaseStart uint8 = iota
	phasePlannedStart
	phaseFinish
)

// jobState carries one in-flight job through its scheduled events. It is
// the engine Action for the hot start/finish path (no closures, and the
// record recycles through scheduler.free when the job completes), the
// work-conservation waiter entry, and — in streaming mode — the scratch
// storage for the job's accounting record.
type jobState struct {
	s     *scheduler
	job   workload.Job
	rec   *metrics.JobResult
	phase uint8
	// reserved/end parameterize the phaseFinish action.
	reserved int
	end      simtime.Time
	// scratch is the streaming-mode accounting record (rec points here);
	// with RetainJobs rec points into scheduler.results instead.
	scratch metrics.JobResult
	// Work-conservation waiter state: the policy-chosen start event and
	// the position in the planned-start heap.
	plannedStart simtime.Time
	startEvent   sim.Handle
	index        int
}

// Fire dispatches the jobState's scheduled phase.
func (js *jobState) Fire() {
	switch js.phase {
	case phaseStart:
		js.s.startJob(js)
	case phasePlannedStart:
		js.s.startPlanned(js)
	case phaseFinish:
		js.s.pool.Release(js.reserved)
		js.s.finish(js, js.end)
	}
}

// newJobState takes a pooled (or fresh) jobState for an arriving job and
// points its accounting record at the retained slice or the embedded
// scratch record.
func (s *scheduler) newJobState(job workload.Job) *jobState {
	var js *jobState
	if n := len(s.free); n > 0 {
		js = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		*js = jobState{s: s, job: job}
	} else {
		js = &jobState{s: s, job: job}
	}
	if s.results != nil {
		js.rec = &s.results[job.ID]
	} else {
		js.rec = &js.scratch
	}
	return js
}

// arrive handles a job submission.
func (s *scheduler) arrive(job workload.Job) {
	// Managed (malleable or DAG) jobs divert into the elastic machinery;
	// every other job — including all jobs of a degenerate elastic trace —
	// continues through the rigid path below untouched.
	if s.el != nil && s.el.et.Managed(job.ID) {
		s.el.arrive(job)
		return
	}
	now := s.engine.Now()
	js := s.newJobState(job)
	rec := js.rec
	rec.JobID = job.ID
	rec.Queue = job.Queue
	rec.User = job.User
	rec.CPUs = job.CPUs
	rec.Length = job.Length
	rec.Arrival = now
	rec.BaselineCarbon = s.carbonOf(simtime.Interval{
		Start: now, End: now.Add(job.Length),
	}, job.CPUs)

	if s.spotEligible(job) {
		s.scheduleSpot(js)
		return
	}

	// RES-First work conservation: run immediately when the job fits in
	// idle reserved capacity — those units are pre-paid either way.
	if s.cfg.WorkConserving && s.pool.Idle() >= job.CPUs {
		s.startJob(js)
		return
	}

	d := s.cfg.Policy.Decide(job, now, s.ctx)
	if err := d.Validate(job, now); err != nil {
		panic(fmt.Sprintf("policy %s: %v", s.cfg.Policy.Name(), err))
	}

	if d.IsPlan() {
		if s.cfg.WorkConserving {
			panic(fmt.Sprintf("policy %s: suspend-resume plans cannot be work-conserving", s.cfg.Policy.Name()))
		}
		s.schedulePlan(js, d.Plan)
		return
	}

	if s.cfg.WorkConserving {
		js.phase = phasePlannedStart
		js.plannedStart = d.Start
		js.startEvent = s.engine.ScheduleAction(d.Start, sim.PriorityStart, js)
		heap.Push(&s.waiting, js)
		return
	}
	js.phase = phaseStart
	s.engine.ScheduleAction(d.Start, sim.PriorityStart, js)
}

// spotEligible reports whether the job is routed to spot capacity.
func (s *scheduler) spotEligible(job workload.Job) bool {
	return s.cfg.SpotMaxLen > 0 && job.Length <= s.cfg.SpotMaxLen
}

// startPlanned fires when a waiting job's carbon-aware start time arrives
// without a reserved unit having freed up first.
func (s *scheduler) startPlanned(js *jobState) {
	heap.Remove(&s.waiting, js.index)
	s.startJob(js)
}

// startJob begins uninterruptible execution now, filling from idle
// reserved units first and on-demand for the remainder (the resource
// manager's placement rule, §4.1). The same jobState record becomes the
// finish action — no allocation on the hot path.
func (s *scheduler) startJob(js *jobState) {
	now := s.engine.Now()
	reserved := s.pool.Acquire(js.job.CPUs)
	onDemand := js.job.CPUs - reserved
	iv := simtime.Interval{Start: now, End: now.Add(js.job.Length)}
	js.rec.Start = now
	s.account(js.rec, iv, reserved, onDemand, 0, false)
	js.phase = phaseFinish
	js.reserved = reserved
	js.end = iv.End
	s.engine.ScheduleAction(iv.End, sim.PriorityFinish, js)
}

// schedulePlan executes a suspend-resume plan: each interval independently
// claims reserved-first capacity at its start and releases it at its end.
func (s *scheduler) schedulePlan(js *jobState, plan []simtime.Interval) {
	plan = policy.NormalizePlan(plan, js.job.Length)
	rec := js.rec
	rec.Start = plan[0].Start
	last := plan[len(plan)-1].End
	for _, iv := range plan {
		iv := iv
		s.engine.Schedule(iv.Start, sim.PriorityStart, func() {
			reserved := s.pool.Acquire(js.job.CPUs)
			onDemand := js.job.CPUs - reserved
			s.account(rec, iv, reserved, onDemand, 0, false)
			s.engine.Schedule(iv.End, sim.PriorityFinish, func() {
				s.pool.Release(reserved)
				if iv.End == last {
					s.finish(js, last)
				}
			})
		})
	}
}

// scheduleSpot runs a spot-eligible job: the policy's carbon-aware
// schedule executes on spot capacity; if the spot allocation is revoked,
// all progress is lost (the paper's assumption) and the job restarts
// immediately on on-demand capacity — falling back to idle reserved units
// first under Spot-RES.
func (s *scheduler) scheduleSpot(js *jobState) {
	now := s.engine.Now()
	job := js.job
	rec := js.rec
	d := s.cfg.Policy.Decide(job, now, s.ctx)
	if err := d.Validate(job, now); err != nil {
		panic(fmt.Sprintf("policy %s: %v", s.cfg.Policy.Name(), err))
	}
	plan := d.Plan
	if !d.IsPlan() {
		plan = []simtime.Interval{{Start: d.Start, End: d.Start.Add(job.Length)}}
	} else {
		plan = policy.NormalizePlan(plan, job.Length)
	}

	if s.cfg.CheckpointInterval > 0 && len(plan) == 1 {
		s.scheduleCheckpointedSpot(js, plan[0].Start)
		return
	}

	// Sample the eviction process over the planned execution. Checks
	// occur at whole run-hours within each contiguous interval.
	evictAt := simtime.Time(-1)
	for _, iv := range plan {
		if at, ev := s.evict.SampleEviction(iv.Start, iv.Len()); ev {
			evictAt = at
			break
		}
	}

	rec.Start = plan[0].Start
	if evictAt < 0 {
		// Clean spot execution.
		last := plan[len(plan)-1].End
		for _, iv := range plan {
			iv := iv
			s.engine.Schedule(iv.Start, sim.PriorityStart, func() {
				s.account(rec, iv, 0, 0, job.CPUs, false)
				if iv.End == last {
					s.engine.Schedule(last, sim.PriorityFinish, func() { s.finish(js, last) })
				}
			})
		}
		return
	}

	// Evicted: all execution up to evictAt is waste; restart on demand.
	rec.Evictions = 1
	for _, iv := range plan {
		if iv.Start >= evictAt {
			break
		}
		wasted := iv
		if wasted.End > evictAt {
			wasted.End = evictAt
		}
		s.engine.Schedule(wasted.Start, sim.PriorityStart, func() {
			s.account(rec, wasted, 0, 0, job.CPUs, true)
		})
	}
	s.engine.Schedule(evictAt, sim.PriorityEvict, func() {
		reserved := s.pool.Acquire(job.CPUs)
		onDemand := job.CPUs - reserved
		iv := simtime.Interval{Start: evictAt, End: evictAt.Add(job.Length)}
		s.account(rec, iv, reserved, onDemand, 0, false)
		s.engine.Schedule(iv.End, sim.PriorityFinish, func() {
			s.pool.Release(reserved)
			s.finish(js, iv.End)
		})
	})
}

// scheduleCheckpointedSpot runs a spot job that checkpoints after every
// CheckpointInterval of useful work (each checkpoint costing
// CheckpointOverhead of extra runtime). An eviction loses only the
// progress since the last completed checkpoint; the remainder resumes on
// on-demand capacity (reserved-first), checkpoint-free.
func (s *scheduler) scheduleCheckpointedSpot(js *jobState, start simtime.Time) {
	job := js.job
	rec := js.rec
	ckInt := s.cfg.CheckpointInterval
	ckOver := s.cfg.CheckpointOverhead
	// Checkpoints strictly inside the job (none at completion).
	numCk := int((job.Length - 1) / ckInt)
	padded := job.Length + simtime.Duration(numCk)*ckOver
	cycle := ckInt + ckOver

	rec.Start = start
	evictAt, evicted := s.evict.SampleEviction(start, padded)
	if !evicted {
		// Clean run: whole padded execution on spot.
		iv := simtime.Interval{Start: start, End: start.Add(padded)}
		s.engine.Schedule(start, sim.PriorityStart, func() {
			s.account(rec, iv, 0, 0, job.CPUs, false)
		})
		s.engine.Schedule(iv.End, sim.PriorityFinish, func() { s.finish(js, iv.End) })
		return
	}

	rec.Evictions = 1
	ran := evictAt.Sub(start)
	savedCycles := int(ran / cycle)
	if savedCycles > numCk {
		savedCycles = numCk
	}
	savedWork := simtime.Duration(savedCycles) * ckInt
	remaining := job.Length - savedWork
	// Everything run on spot is billed/emitted; only savedWork of it is
	// useful, the rest is eviction waste.
	spotIv := simtime.Interval{Start: start, End: evictAt}
	s.engine.Schedule(start, sim.PriorityStart, func() {
		useful := simtime.Interval{Start: start, End: start.Add(savedWork)}
		s.account(rec, useful, 0, 0, job.CPUs, false)
		wasted := simtime.Interval{Start: useful.End, End: spotIv.End}
		s.account(rec, wasted, 0, 0, job.CPUs, true)
	})
	s.engine.Schedule(evictAt, sim.PriorityEvict, func() {
		reserved := s.pool.Acquire(job.CPUs)
		onDemand := job.CPUs - reserved
		iv := simtime.Interval{Start: evictAt, End: evictAt.Add(remaining)}
		s.account(rec, iv, reserved, onDemand, 0, false)
		s.engine.Schedule(iv.End, sim.PriorityFinish, func() {
			s.pool.Release(reserved)
			s.finish(js, iv.End)
		})
	})
}

// finish closes a job's record, folds it into the streaming accumulator,
// recycles the jobState, and — under work conservation — hands freed
// reserved units to the earliest-planned waiting jobs.
func (s *scheduler) finish(js *jobState, at simtime.Time) {
	rec := js.rec
	rec.Finish = at
	rec.Waiting = at.Sub(rec.Arrival) - rec.Length
	s.acc.AddJob(rec)
	s.free = append(s.free, js)
	if s.cfg.WorkConserving {
		s.drainWaiting()
	}
}

// drainWaiting starts waiting jobs (earliest planned start first) while
// they fit entirely into idle reserved capacity — the RES-First rule: a
// freed reserved server immediately picks up the next queued job instead
// of idling until that job's carbon-optimal start.
func (s *scheduler) drainWaiting() {
	for s.waiting.Len() > 0 {
		w := s.waiting[0]
		if s.pool.Idle() < w.job.CPUs {
			return
		}
		heap.Pop(&s.waiting)
		s.engine.Cancel(w.startEvent)
		s.startJob(w)
	}
}

// carbonOf converts execution over iv into grams of CO2eq using the
// realized trace.
func (s *scheduler) carbonOf(iv simtime.Interval, cpus int) float64 {
	return s.cfg.Power.Carbon(s.cfg.Carbon.Integral(iv), cpus)
}

// account books one execution interval split across purchase options: the
// scalar totals go to the job record, the usage bins stream into the
// accumulator, and the per-job Segment is materialized only when records
// are retained.
func (s *scheduler) account(rec *metrics.JobResult, iv simtime.Interval, reserved, onDemand, spot int, wasted bool) {
	hours := iv.Len().Hours()
	carbonG := s.carbonOf(iv, reserved+onDemand+spot)
	cost := (float64(onDemand)*s.cfg.Pricing.HourlyRate(cloud.OnDemand) +
		float64(spot)*s.cfg.Pricing.HourlyRate(cloud.Spot)) * hours

	rec.Carbon += carbonG
	rec.UsageCost += cost
	rec.CPUHours[cloud.Reserved] += float64(reserved) * hours
	rec.CPUHours[cloud.OnDemand] += float64(onDemand) * hours
	rec.CPUHours[cloud.Spot] += float64(spot) * hours
	s.acc.AddUsage(iv, reserved, onDemand, spot)
	if s.results != nil {
		rec.Segments = append(rec.Segments, metrics.Segment{
			Interval: iv,
			Reserved: reserved,
			OnDemand: onDemand,
			Spot:     spot,
			Wasted:   wasted,
		})
	}
	if wasted {
		rec.WastedCPUHours += float64(reserved+onDemand+spot) * hours
		rec.WastedCarbon += carbonG
		rec.WastedCost += cost
	}
}

// waitQueue is a heap of work-conservation waiters ordered by planned
// start, then job ID for determinism.
type waitQueue []*jobState

func (q waitQueue) Len() int { return len(q) }

func (q waitQueue) Less(i, j int) bool {
	if q[i].plannedStart != q[j].plannedStart {
		return q[i].plannedStart < q[j].plannedStart
	}
	return q[i].job.ID < q[j].job.ID
}

func (q waitQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *waitQueue) Push(x any) {
	w := x.(*jobState)
	w.index = len(*q)
	*q = append(*q, w)
}

func (q *waitQueue) Pop() any {
	old := *q
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*q = old[:n-1]
	return w
}
