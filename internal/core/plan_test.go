package core

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// mustDecidePlan decides a plan or fails the test.
func mustDecidePlan(t *testing.T, cfg Config, jobs *workload.Trace) *DecisionPlan {
	t.Helper()
	plan, err := DecidePlan(context.Background(), cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestPlanCodecRoundTrip pins the plan artifact format: encode→decode is
// the identity, and every corruption mode is rejected with an error rather
// than a partial plan.
func TestPlanCodecRoundTrip(t *testing.T) {
	plan := &DecisionPlan{
		starts:  []simtime.Time{0, 5, 5, 1 << 40},
		classes: []uint8{0, 0, 0, 0},
	}
	data := EncodeDecisionPlan(plan)
	got, err := DecodeDecisionPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, plan) {
		t.Errorf("round trip: got %+v, want %+v", got, plan)
	}

	empty := &DecisionPlan{}
	if got, err := DecodeDecisionPlan(EncodeDecisionPlan(empty)); err != nil || got.NumJobs() != 0 {
		t.Errorf("empty plan round trip: %+v, %v", got, err)
	}

	corruptions := map[string]func([]byte) []byte{
		"truncated header": func(b []byte) []byte { return b[:10] },
		"truncated payload": func(b []byte) []byte {
			// Drop one start and re-sign: the payload-length check, not
			// the checksum, must reject it.
			return resign(b[: len(b)-4-9 : len(b)-4-9])
		},
		"bad magic": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0xff
			return resign(c[:len(c)-4])
		},
		"bad version": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[8] ^= 0xff
			return resign(c[:len(c)-4])
		},
		"oversized job count": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[16], c[17] = 0xff, 0xff
			return resign(c[:len(c)-4])
		},
		"flipped start bit": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[24] ^= 0x01
			return c // checksum now stale — crc must catch it
		},
		"trailing garbage": func(b []byte) []byte {
			return resign(append(append([]byte(nil), b[:len(b)-4]...), 0xaa))
		},
		"empty": func([]byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		if _, err := DecodeDecisionPlan(corrupt(data)); err == nil {
			t.Errorf("%s: decode accepted corrupt data", name)
		}
	}
}

// resign appends a fresh crc32 trailer to a tampered plan body so decode
// exercises the structural checks behind the checksum.
func resign(body []byte) []byte {
	le := binary.LittleEndian
	return le.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
}

// TestDecidePlanEligibility pins the plan seam's admission rule: eligible
// configs yield a plan covering every job; ineligible ones fail with
// ErrNoPlan.
func TestDecidePlanEligibility(t *testing.T) {
	tr, jobs := randomInstance(53)
	cfg := baseConfig(tr, policy.CarbonTime{})
	cfg.RetainJobs = false
	plan := mustDecidePlan(t, cfg, jobs)
	if plan.NumJobs() != len(jobs.Jobs) {
		t.Errorf("plan covers %d jobs, trace has %d", plan.NumJobs(), len(jobs.Jobs))
	}

	wc := cfg
	wc.WorkConserving = true
	wc.Reserved = 10
	if _, err := DecidePlan(context.Background(), wc, jobs); !errors.Is(err, ErrNoPlan) {
		t.Errorf("work-conserving: got %v, want ErrNoPlan", err)
	}
	if _, err := RunWithPlan(context.Background(), wc, jobs, plan); !errors.Is(err, ErrNoPlan) {
		t.Errorf("RunWithPlan on ineligible config: got %v, want ErrNoPlan", err)
	}
}

// TestRunWithPlanRejectsBadPlans asserts a malformed plan surfaces as an
// error, never as wrong numbers.
func TestRunWithPlanRejectsBadPlans(t *testing.T) {
	tr, jobs := randomInstance(54)
	cfg := baseConfig(tr, policy.CarbonTime{})
	cfg.RetainJobs = false

	if _, err := RunWithPlan(context.Background(), cfg, jobs, nil); err == nil {
		t.Error("nil plan accepted")
	}
	short := &DecisionPlan{starts: make([]simtime.Time, 1), classes: make([]uint8, 1)}
	if _, err := RunWithPlan(context.Background(), cfg, jobs, short); err == nil {
		t.Error("wrong-length plan accepted")
	}
	early := mustDecidePlan(t, cfg, jobs)
	tampered := &DecisionPlan{
		starts:  append([]simtime.Time(nil), early.starts...),
		classes: append([]uint8(nil), early.classes...),
	}
	tampered.starts[0] = jobs.Jobs[0].Arrival - 1
	if _, err := RunWithPlan(context.Background(), cfg, jobs, tampered); err == nil {
		t.Error("start-before-arrival plan accepted")
	}
}

// TestPlanReplayMatchesDirect is the seam's correctness pin: decide once,
// then replay the plan under accounting knobs the decide never saw —
// different reserved sizes, prices, power model, realized carbon trace,
// retention — and require byte-identical results to a full Run of each
// configuration.
func TestPlanReplayMatchesDirect(t *testing.T) {
	tr, jobs := randomInstance(55)
	tr2, _ := randomInstance(56)
	decided := baseConfig(tr, policy.CarbonTime{})
	decided.RetainJobs = false
	plan := mustDecidePlan(t, decided, jobs)

	variants := map[string]func(*Config){
		"same":          func(*Config) {},
		"reserved-25":   func(c *Config) { c.Reserved = 25 },
		"reserved-huge": func(c *Config) { c.Reserved = 1 << 20 },
		"pricing": func(c *Config) {
			c.Pricing = cloud.Pricing{OnDemandHourly: 7, ReservedFraction: 0.3, SpotFraction: 0.1}
		},
		"power":   func(c *Config) { c.Power = cloud.Power{KWPerCPU: 0.25} },
		"horizon": func(c *Config) { c.Horizon = decided.Horizon + 3*simtime.Day },
		"realized-carbon": func(c *Config) {
			// Accounting integrates a different realized trace; decisions
			// still follow the decided CIS.
			c.Carbon = tr2
			c.CIS = decided.Canonical().CIS
		},
		"retained": func(c *Config) { c.RetainJobs = true },
	}
	for name, mutate := range variants {
		t.Run(name, func(t *testing.T) {
			cfg := decided
			mutate(&cfg)
			if dfpA, okA := decided.DecisionFingerprint(jobs); okA {
				if dfpB, okB := cfg.DecisionFingerprint(jobs); !okB || dfpA != dfpB {
					t.Fatalf("variant does not share the decision fingerprint (ok=%v)", okB)
				}
			} else {
				t.Fatal("base config has no decision fingerprint")
			}
			replayed, err := RunWithPlan(context.Background(), cfg, jobs, plan)
			if err != nil {
				t.Fatal(err)
			}
			full, err := Run(cfg, jobs)
			if err != nil {
				t.Fatal(err)
			}
			assertIdenticalResults(t, replayed, full)
		})
	}

	// The roundtripped artifact must replay identically to the in-memory
	// plan — the disk tier serves decoded plans.
	decoded, err := DecodeDecisionPlan(EncodeDecisionPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	cfg := decided
	cfg.Reserved = 40
	a, err := RunWithPlan(context.Background(), cfg, jobs, decoded)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWithPlan(context.Background(), cfg, jobs, plan)
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalResults(t, a, b)
}

// FuzzPlanReplayVsDirect fuzzes (config, trace) pairs through
// decide-once-replay-under-mutation vs a full direct run, pinning the
// byte-identity the plan cache rests on (the replay-side analogue of
// FuzzDirectVsEngine).
func FuzzPlanReplayVsDirect(f *testing.F) {
	f.Add(int64(1), 0, 0, int64(5), false)
	f.Add(int64(2), 25, 1, int64(8), true)
	f.Add(int64(3), 1000, 2, int64(13), false)
	f.Add(int64(4), 7, 3, int64(2), true)
	f.Add(int64(5), 120, 4, int64(21), false)
	f.Fuzz(func(t *testing.T, seed int64, reserved, policyIdx int, wait int64, retain bool) {
		policies := []policy.Policy{
			policy.NoWait{}, policy.AllWait{}, policy.LowestSlot{},
			policy.LowestWindow{}, policy.CarbonTime{},
		}
		if policyIdx < 0 || policyIdx >= len(policies) || reserved < 0 || reserved > 1<<20 {
			t.Skip()
		}
		if wait < 1 || wait > 96 {
			t.Skip()
		}
		tr, jobs := randomInstance(seed%64 + 1)
		base := baseConfig(tr, policies[policyIdx])
		base.RetainJobs = false
		base.WaitShort = simtime.Duration(wait) * simtime.Hour
		base.WaitLong = simtime.Duration(wait) * 4 * simtime.Hour
		directWorkersOverride.Store(int32(seed%4 + 1))
		defer directWorkersOverride.Store(0)

		// Decide with the accounting knobs zeroed, replay with them set —
		// the exact shape of a reserved sweep served by one plan.
		plan, err := DecidePlan(context.Background(), base, jobs)
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.Reserved = reserved
		cfg.RetainJobs = retain
		replayed, err := RunWithPlan(context.Background(), cfg, jobs, plan)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Run(cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		assertIdenticalResults(t, replayed, full)
	})
}

// TestReplayAllocs pins the scratch pooling: a replayed cell must not
// re-allocate the sweep's endpoint/order columns, so its allocation count
// stays flat — a handful of accumulator columns and fixed-size result
// framing — no matter how many times it runs.
func TestReplayAllocs(t *testing.T) {
	tr, jobs := randomInstance(57)
	cfg := baseConfig(tr, policy.CarbonTime{})
	cfg.RetainJobs = false
	cfg.Reserved = 25
	plan := mustDecidePlan(t, cfg, jobs)
	ctx := context.Background()

	allocs := testing.AllocsPerRun(10, func() {
		if _, err := RunWithPlan(ctx, cfg, jobs, plan); err != nil {
			t.Fatal(err)
		}
	})
	// Without the sync.Pool the sweep adds 7+ slices per replay (two order
	// columns, three rank columns, the allocation column, counting
	// buckets); pooled replay measures 20 allocs/run, unpooled ~28, so the
	// ceiling sits between them.
	const ceiling = 24
	if allocs > ceiling {
		t.Errorf("replay allocates %.0f objects/run, want <= %d (scratch pooling regressed?)", allocs, ceiling)
	}
}
