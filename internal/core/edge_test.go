package core

// Edge-case coverage: boundary conditions the main tests don't hit.

import (
	"math"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func TestSimultaneousArrivalsDeterministicOrder(t *testing.T) {
	// Ten jobs arriving at the same instant on one reserved unit: the
	// work-conserving queue must drain them in ID order (FIFO at equal
	// planned starts).
	tr := flatTrace(24*4, 100)
	cfg := baseConfig(tr, policy.AllWait{})
	cfg.Reserved = 1
	cfg.WorkConserving = true
	var specs []workload.Job
	for i := 0; i < 10; i++ {
		specs = append(specs, workload.Job{Arrival: 0, Length: 30 * simtime.Minute, CPUs: 1})
	}
	res, err := Run(cfg, workload.MustTrace("burst", specs))
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range res.Jobs {
		want := simtime.Time(simtime.Duration(i) * 30 * simtime.Minute)
		if j.Start != want {
			t.Errorf("job %d started at %v, want %v", i, j.Start, want)
		}
		if i > 0 && j.CPUHours[cloud.Reserved] != 0.5 {
			t.Errorf("job %d should run fully reserved: %v", i, j.CPUHours)
		}
	}
}

func TestJobAtCarbonHorizonEdge(t *testing.T) {
	// A job arriving in the final trace hour schedules into the clamped
	// region; accounting must use the final slot's intensity.
	tr := flatTrace(10, 100) // 10 hours of CI
	cfg := baseConfig(tr, policy.LowestWindow{})
	jobs := workload.MustTrace("edge", []workload.Job{
		{Arrival: simtime.Time(9*simtime.Hour + 30*simtime.Minute), Length: 4 * simtime.Hour, CPUs: 1},
	})
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	// Flat CI: 4 h × 100 g/kWh × 0.01 kW = 4 g wherever it runs.
	if math.Abs(j.Carbon-4) > 1e-9 {
		t.Errorf("carbon = %v", j.Carbon)
	}
}

func TestMinimumLengthJob(t *testing.T) {
	tr := flatTrace(24, 100)
	res, err := Run(baseConfig(tr, policy.CarbonTime{}), oneJob(simtime.Minute, 1))
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.Finish.Sub(j.Start) != simtime.Minute {
		t.Errorf("run length = %v", j.Finish.Sub(j.Start))
	}
}

func TestManyCPUSpotGang(t *testing.T) {
	// A 40-CPU spot job evicted once: all 40 units' waste is booked and
	// the restart claims reserved units first.
	tr := flatTrace(100, 100)
	cfg := baseConfig(tr, policy.NoWait{})
	cfg.SpotMaxLen = 10 * simtime.Hour
	cfg.EvictionRate = 0.9
	cfg.Reserved = 15
	cfg.Seed = 4
	res, err := Run(cfg, oneJob(4*simtime.Hour, 40))
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.Evictions != 1 {
		t.Skip("seed produced no eviction") // extremely unlikely at 0.9
	}
	if j.CPUHours[cloud.Reserved] != 15*4 {
		t.Errorf("reserved hours = %v, want 60", j.CPUHours[cloud.Reserved])
	}
	if j.CPUHours[cloud.OnDemand] != 25*4 {
		t.Errorf("on-demand hours = %v, want 100", j.CPUHours[cloud.OnDemand])
	}
	if j.WastedCPUHours < 40 { // at least one wasted hour across 40 units
		t.Errorf("wasted = %v", j.WastedCPUHours)
	}
}

func TestSuspendResumeWithReservedPool(t *testing.T) {
	// Two overlapping suspend-resume jobs share one reserved unit: each
	// plan interval claims it when free, overflowing to on-demand.
	vals := []float64{900, 100, 900, 100, 900, 100, 900, 900, 900, 900, 900, 900}
	tr := carbon.MustTrace("comb", vals)
	cfg := baseConfig(tr, policy.WaitAwhile{})
	cfg.Reserved = 1
	jobs := workload.MustTrace("two", []workload.Job{
		{Arrival: 0, Length: 2 * simtime.Hour, CPUs: 1},
		{Arrival: 0, Length: 2 * simtime.Hour, CPUs: 1},
	})
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Both target the same cheap slots (hours 1, 3): one unit reserved,
	// one on-demand per slot.
	var resH, odH float64
	for _, j := range res.Jobs {
		resH += j.CPUHours[cloud.Reserved]
		odH += j.CPUHours[cloud.OnDemand]
	}
	if resH != 2 || odH != 2 {
		t.Errorf("reserved/od hours = %v/%v, want 2/2", resH, odH)
	}
}

func TestZeroWaitEverywhereDegeneratesToNoWait(t *testing.T) {
	tr := carbon.RegionSAAU.Generate(24*10, 5)
	jobs := workload.AlibabaPAIWeek().GenerateByCount(newRand(6), 100, simtime.Week)
	cfg := baseConfig(tr, policy.CarbonTime{})
	cfg.WaitShort, cfg.WaitLong = -1, -1
	a, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig(tr, policy.NoWait{}), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.TotalCarbon()-b.TotalCarbon()) > 1e-9 {
		t.Errorf("zero-wait Carbon-Time %v != NoWait %v", a.TotalCarbon(), b.TotalCarbon())
	}
	if a.MeanWaiting() != 0 {
		t.Errorf("zero-wait waiting = %v", a.MeanWaiting())
	}
}
