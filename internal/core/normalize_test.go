package core

import (
	"reflect"
	"testing"

	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// TestRunSharesNormalizedTrace pins the zero-copy fast path: a trace that
// already satisfies NewTrace's invariants is scheduled as-is, without a
// per-run copy.
func TestRunSharesNormalizedTrace(t *testing.T) {
	jobs := workload.MustTrace("sorted", []workload.Job{
		{Arrival: 0, Length: simtime.Hour, CPUs: 1},
		{Arrival: simtime.Time(simtime.Hour), Length: 2 * simtime.Hour, CPUs: 2},
	})
	if got := normalizedTrace(jobs); got != jobs {
		t.Error("normalized trace was copied, want shared")
	}
}

// TestRunNormalizesUnsortedTrace covers the slow path: a hand-built trace
// with out-of-order arrivals and unset IDs must produce the same result as
// its explicitly normalized form, and must not be mutated by Run.
func TestRunNormalizesUnsortedTrace(t *testing.T) {
	raw := []workload.Job{
		{Arrival: simtime.Time(5 * simtime.Hour), Length: simtime.Hour, CPUs: 1},
		{Arrival: 0, Length: 3 * simtime.Hour, CPUs: 2},
		{Arrival: simtime.Time(2 * simtime.Hour), Length: 30 * simtime.Minute, CPUs: 1},
	}
	unsorted := &workload.Trace{Name: "raw", Jobs: append([]workload.Job(nil), raw...)}
	if got := normalizedTrace(unsorted); got == unsorted {
		t.Fatal("unsorted trace should be copied, not shared")
	}

	tr := flatTrace(48, 100)
	got, err := Run(baseConfig(tr, policy.CarbonTime{}), unsorted)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(baseConfig(tr, policy.CarbonTime{}), workload.MustTrace("raw", raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Jobs, want.Jobs) {
		t.Errorf("unsorted input diverged from normalized input:\ngot  %+v\nwant %+v", got.Jobs, want.Jobs)
	}
	// Run must never write to the caller's trace.
	for i, j := range unsorted.Jobs {
		if j != raw[i] {
			t.Errorf("job %d mutated by Run: %+v, was %+v", i, j, raw[i])
		}
	}
}

// TestRunDoesNotMutateSharedTrace asserts the share-immutable contract
// directly: queue classification happens on per-event copies, so the
// shared trace's Queue fields stay untouched across a Run.
func TestRunDoesNotMutateSharedTrace(t *testing.T) {
	jobs := workload.MustTrace("shared", []workload.Job{
		{Arrival: 0, Length: simtime.Hour, CPUs: 1},
		{Arrival: simtime.Time(simtime.Hour), Length: 40 * simtime.Hour, CPUs: 2},
	})
	before := append([]workload.Job(nil), jobs.Jobs...)
	if _, err := Run(baseConfig(flatTrace(100, 100), policy.CarbonTime{}), jobs); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs.Jobs, before) {
		t.Errorf("shared trace mutated:\nafter  %+v\nbefore %+v", jobs.Jobs, before)
	}
}
