// Package core implements GAIA, the carbon-, performance- and cost-aware
// cloud batch scheduler that is the paper's contribution. It wires the
// substrates together: jobs arrive from a workload trace, a policy picks
// start times (or suspend-resume plans) using the Carbon Information
// Service, and the resource manager places execution on reserved,
// on-demand and spot capacity while the accounting layer tracks carbon,
// cost and waiting time.
//
// The cost-aware mechanisms are configuration, orthogonal to the policy:
//
//   - Config.WorkConserving enables RES-First behaviour: an arriving job
//     starts immediately when it fits in idle reserved capacity, and a
//     waiting job is started early the moment reserved units free up.
//   - Config.SpotMaxLen enables Spot-First behaviour: jobs no longer than
//     the limit run on spot instances at the policy's carbon-aware start
//     and restart on on-demand capacity if evicted.
//   - Setting both reproduces the paper's combined Spot-RES policy.
package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// Config describes one GAIA cluster run.
type Config struct {
	// Label names the configuration in results; empty derives
	// "<modifiers><policy>" automatically.
	Label string

	// Policy chooses job start times. Required.
	Policy policy.Policy

	// Carbon is the realized carbon-intensity trace. Required.
	Carbon *carbon.Trace

	// CIS is the forecast service policies consult; nil wraps Carbon in
	// a perfect-knowledge service (the paper's assumption).
	CIS carbon.Service

	// Reserved is the pre-paid reserved capacity in CPU units.
	Reserved int

	// WorkConserving enables RES-First early starts on idle reserved
	// capacity. It requires an uninterruptible (start-based) policy.
	WorkConserving bool

	// SpotMaxLen routes jobs of at most this length to spot instances
	// (0 disables spot). The paper uses the short queue's bound (2 h) by
	// default and sweeps this "J^max" in Figures 18-19.
	SpotMaxLen simtime.Duration

	// EvictionRate is the hourly spot eviction probability in [0, 1).
	EvictionRate float64

	// CheckpointInterval enables checkpoint/restart for spot executions
	// (0 = disabled, the paper's default assumption of full progress
	// loss). A running spot job checkpoints after every interval of
	// useful work; an eviction then loses only the progress since the
	// last checkpoint, and the job resumes the remainder on on-demand
	// capacity. This realizes the checkpointing-overhead vs eviction
	// trade-off the paper defers to future work (§4.2.4).
	CheckpointInterval simtime.Duration

	// CheckpointOverhead is the runtime added per checkpoint
	// (default 2 min when checkpointing is enabled).
	CheckpointOverhead simtime.Duration

	// Pricing is the price book; zero value uses cloud.DefaultPricing.
	Pricing cloud.Pricing

	// Power is the energy model; zero value uses cloud.DefaultPower.
	Power cloud.Power

	// ShortMax is the short queue's maximum job length (default 2 h).
	ShortMax simtime.Duration

	// WaitShort / WaitLong are the queues' maximum waiting times
	// (defaults 6 h / 24 h, the paper's configuration). A negative value
	// means an explicit zero wait (0 selects the default).
	WaitShort, WaitLong simtime.Duration

	// Queues optionally replaces the two-queue configuration above with
	// an arbitrary ascending ladder of length classes (§4.2: "our
	// policies can be extended to an arbitrary number of queues"). The
	// last entry's MaxLength may be 0 (unbounded). When set, ShortMax,
	// WaitShort and WaitLong are ignored.
	Queues []QueueSpec

	// Horizon is the accounting horizon; reserved capacity is paid for
	// all of it. Zero uses the carbon trace's horizon.
	Horizon simtime.Duration

	// AvgLengthOverride replaces the queue-average length estimates that
	// length-oblivious policies consult (by default they are computed
	// from the trace). Used for estimate-quality sensitivity studies.
	AvgLengthOverride map[workload.Queue]simtime.Duration

	// Elastic attaches malleable specs and precedence edges to the run's
	// jobs (see workload.ElasticTrace). Its Jobs trace must be the very
	// trace passed to Run — the specs are keyed by normalized job ID. Nil
	// runs every job rigid. A trace whose specs are all degenerate and
	// edge-free behaves exactly like nil (no elastic machinery engages),
	// but still routes the run onto the event engine.
	Elastic *workload.ElasticTrace

	// Allocator reallocates replicas across running malleable jobs at
	// every hour boundary; nil defaults to policy.StaticAlloc (every job
	// pinned at its base width). Ignored without Elastic.
	Allocator policy.ElasticAllocator

	// ElasticCapacity further bounds the CPU budget the allocator may
	// spend on replicas beyond the jobs' base widths. The budget each
	// hour is the reserved pool's idle capacity — scale-ups only ever
	// ride prepaid capacity, so they are free by construction — and a
	// positive ElasticCapacity caps it lower still (0 = no extra cap).
	// Base widths are always granted regardless.
	ElasticCapacity int

	// RetainJobs materializes the full per-job JobResult records
	// (including execution segments) in Result.Jobs. By default the
	// scheduler streams each finished job into the metrics accumulator
	// and retains nothing per job; retention is the escape hatch for
	// per-job consumers — CSV detail export, the accounting DB, and
	// record-level tests. Every aggregate is answered identically in
	// both modes.
	RetainJobs bool

	// Seed drives the spot eviction process.
	Seed int64
}

// forceRetainJobs globally overrides Config.RetainJobs for differential
// tests that re-run whole figure suites in retained mode without
// threading a flag through every experiment.
var forceRetainJobs atomic.Bool

// ForceRetainJobs makes every subsequent Run retain per-job records as if
// Config.RetainJobs were set (v=false restores the configs' own flags).
// It exists for the retained-vs-streaming differential tests; production
// callers should set Config.RetainJobs instead.
func ForceRetainJobs(v bool) { forceRetainJobs.Store(v) }

// forceHeapEngine globally switches every subsequent Run's event engine
// to the reference 4-ary heap queue instead of the timing wheel.
var forceHeapEngine atomic.Bool

// ForceHeapEngine makes every subsequent Run drive its event loop with
// the heap queue the timing wheel replaced (v=false restores the wheel).
// Both mechanisms execute bit-identical event sequences; this seam exists
// for the wheel-vs-heap differential tests and benchmarks, and like
// ForceRetainJobs it also disables fingerprint-keyed caching so a forced
// run can never be answered from (or poison) a cache entry produced by
// the other mechanism.
func ForceHeapEngine(v bool) { forceHeapEngine.Store(v) }

// forceEventEngine globally disables the direct-execution run path so
// every subsequent Run drives the full event engine.
var forceEventEngine atomic.Bool

// ForceEventEngine makes every subsequent Run take the event-engine path
// even for configurations the direct-execution path could serve (v=false
// restores automatic selection). Both paths produce bit-identical results;
// this seam exists for the direct-vs-engine differential tests and
// benchmarks, and like the other Force* overrides it disables
// fingerprint-keyed caching so a forced run can never be answered from (or
// poison) a cache entry produced by the other path.
func ForceEventEngine(v bool) { forceEventEngine.Store(v) }

// forceElasticDegenerate globally wraps every subsequent non-elastic Run's
// trace in a degenerate ElasticTrace (flat curve, single replica, no
// edges), driving it through the elastic-aware engine configuration.
var forceElasticDegenerate atomic.Bool

// ForceElasticDegenerate makes every subsequent Run without an Elastic
// trace behave as if Config.Elastic were the degenerate wrapping of its
// workload (v=false restores the configs' own traces). Degenerate specs
// engage no elastic machinery, but the configuration leaves the direct
// path for the event engine — the seam exists for the elastic-vs-rigid
// differential tests, and like the other Force* overrides it disables
// fingerprint-keyed caching so a forced run can never be answered from
// (or poison) a cache entry produced by the rigid path.
func ForceElasticDegenerate(v bool) { forceElasticDegenerate.Store(v) }

// DirectPathEligible reports whether Run would serve this configuration
// via the direct-execution path (ignoring the Force* overrides, which are
// test seams, not configuration). The rule is deliberately conservative —
// see directEligible for the reasoning per knob.
func (c Config) DirectPathEligible() bool {
	canon := c.withDefaults()
	if canon.validate() != nil {
		return false
	}
	return canon.directEligible()
}

// directEligible is the direct-path admission rule, evaluated on a
// defaulted config. The path is sound exactly when every job's execution
// is a pure function of (job, arrival, oracle tables):
//
//   - WorkConserving couples decisions to pool occupancy (early starts on
//     freed reserved units), so starts stop being pure — fall back.
//   - SpotMaxLen > 0 routes jobs through the eviction process and
//     multi-interval spot schedules — fall back.
//   - Plan-capable policies (WaitAwhile, WaitAwhileEst, Ecovisor) execute
//     suspend-resume schedules the sweep replay does not model — only the
//     start-based policies known to return pure start decisions may ride.
//     Unknown policy implementations fall back unvetted.
//   - A non-perfect CIS is an opaque implementation whose Forecast may be
//     stateful or time-dependent; only the immutable PerfectService has
//     the purity guarantee the parallel decide phase needs.
//   - An Elastic trace — even an all-degenerate one — makes decisions
//     observe schedule state (precedence releases, hourly reallocation),
//     so the plan cache could serve a stale rigid plan for an elastic
//     cell; any non-nil Elastic falls back.
//
// Every other knob (Reserved level, queues, pricing, power, horizon,
// retention) is replicated exactly by the sweep replay.
func (c Config) directEligible() bool {
	if c.WorkConserving || c.SpotMaxLen > 0 {
		return false
	}
	if c.Elastic != nil {
		return false
	}
	if _, ok := c.CIS.(*carbon.PerfectService); !ok {
		return false
	}
	switch c.Policy.(type) {
	case policy.NoWait, policy.AllWait, policy.LowestSlot, policy.LowestWindow, policy.CarbonTime,
		policy.CriticalPathShift:
		// CriticalPathShift is pure too: with Elastic nil (guaranteed
		// above) its SlackFn is never set, so it degenerates to
		// Carbon-Time's start scan.
		return true
	default:
		return false
	}
}

// QueueSpec configures one job-length queue: the inclusive length bound
// that routes jobs into it and the maximum waiting time W the scheduler
// guarantees for it.
type QueueSpec struct {
	// MaxLength is the queue's inclusive job-length bound; 0 on the last
	// queue means unbounded.
	MaxLength simtime.Duration
	// MaxWait is the queue's waiting-time guarantee. Like the top-level
	// wait fields, a negative value means an explicit zero.
	MaxWait simtime.Duration
}

// withDefaults returns a copy with zero values filled in.
func (c Config) withDefaults() Config {
	if c.CIS == nil && c.Carbon != nil {
		c.CIS = carbon.NewPerfectService(c.Carbon)
	}
	if c.Pricing == (cloud.Pricing{}) {
		c.Pricing = cloud.DefaultPricing()
	}
	if c.Power == (cloud.Power{}) {
		c.Power = cloud.DefaultPower()
	}
	if c.ShortMax == 0 {
		c.ShortMax = 2 * simtime.Hour
	}
	switch {
	case c.WaitShort == 0:
		c.WaitShort = 6 * simtime.Hour
	case c.WaitShort < 0:
		c.WaitShort = 0
	}
	switch {
	case c.WaitLong == 0:
		c.WaitLong = 24 * simtime.Hour
	case c.WaitLong < 0:
		c.WaitLong = 0
	}
	if len(c.Queues) == 0 {
		c.Queues = []QueueSpec{
			{MaxLength: c.ShortMax, MaxWait: c.WaitShort},
			{MaxLength: 0, MaxWait: c.WaitLong},
		}
	} else {
		qs := append([]QueueSpec(nil), c.Queues...)
		for i := range qs {
			if qs[i].MaxWait < 0 {
				qs[i].MaxWait = 0
			}
		}
		c.Queues = qs
	}
	if c.Horizon == 0 && c.Carbon != nil {
		c.Horizon = c.Carbon.Horizon()
	}
	if c.CheckpointInterval > 0 && c.CheckpointOverhead == 0 {
		c.CheckpointOverhead = 2 * simtime.Minute
	}
	if c.Elastic != nil && c.Allocator == nil {
		c.Allocator = policy.StaticAlloc{}
	}
	if forceRetainJobs.Load() {
		c.RetainJobs = true
	}
	if c.Label == "" {
		c.Label = c.deriveLabel()
	}
	return c
}

// deriveLabel builds the paper-style configuration name.
func (c Config) deriveLabel() string {
	name := ""
	if c.Policy != nil {
		name = c.Policy.Name()
	}
	switch {
	case c.SpotMaxLen > 0 && c.Reserved > 0:
		return "Spot-RES-" + name
	case c.SpotMaxLen > 0:
		return "Spot-First-" + name
	case c.WorkConserving && c.Reserved >= 0 && name != "AllWait-Threshold" && name != "NoWait":
		return "RES-First-" + name
	default:
		return name
	}
}

// validate checks a defaulted config.
func (c Config) validate() error {
	if c.Policy == nil {
		return errors.New("core: config needs a policy")
	}
	if c.Carbon == nil {
		return errors.New("core: config needs a carbon trace")
	}
	if c.Reserved < 0 {
		return fmt.Errorf("core: reserved capacity %d must be non-negative", c.Reserved)
	}
	if err := c.Pricing.Validate(); err != nil {
		return err
	}
	if err := c.Power.Validate(); err != nil {
		return err
	}
	if c.EvictionRate < 0 || c.EvictionRate >= 1 {
		return fmt.Errorf("core: eviction rate %v must be in [0, 1)", c.EvictionRate)
	}
	if c.SpotMaxLen < 0 {
		return fmt.Errorf("core: spot max length %v must be non-negative", c.SpotMaxLen)
	}
	if c.CheckpointInterval < 0 || c.CheckpointOverhead < 0 {
		return fmt.Errorf("core: checkpoint configuration must be non-negative")
	}
	if c.ShortMax <= 0 || c.WaitShort < 0 || c.WaitLong < 0 {
		return fmt.Errorf("core: invalid queue configuration")
	}
	for i, q := range c.Queues {
		if q.MaxWait < 0 {
			return fmt.Errorf("core: queue %d has negative wait %v", i, q.MaxWait)
		}
		if i < len(c.Queues)-1 {
			if q.MaxLength <= 0 {
				return fmt.Errorf("core: queue %d needs a positive length bound", i)
			}
			if next := c.Queues[i+1].MaxLength; next != 0 && next <= q.MaxLength {
				return fmt.Errorf("core: queue bounds must ascend (queue %d: %v >= %v)", i, q.MaxLength, next)
			}
		}
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("core: horizon %v must be positive", c.Horizon)
	}
	if c.ElasticCapacity < 0 {
		return fmt.Errorf("core: elastic capacity %d must be non-negative", c.ElasticCapacity)
	}
	if c.Elastic != nil && c.Elastic.ManagedCount() > 0 {
		// Managed (non-degenerate or DAG) jobs execute through the hourly
		// reallocation machinery, which owns their finish events: the
		// work-conservation waiter heap, spot eviction replans and
		// suspend-resume plan policies would all fight it for the same
		// jobs. Degenerate elastic traces engage none of it and keep every
		// combination the rigid path allows.
		if c.WorkConserving {
			return errors.New("core: elastic managed jobs cannot be work-conserving")
		}
		if c.SpotMaxLen > 0 {
			return errors.New("core: elastic managed jobs cannot route to spot capacity")
		}
		switch c.Policy.(type) {
		case policy.WaitAwhile, policy.WaitAwhileEst, policy.Ecovisor:
			return fmt.Errorf("core: plan-capable policy %s cannot drive elastic managed jobs", c.Policy.Name())
		}
	}
	return nil
}

// policyContext builds the knowledge handed to policies: per-queue maximum
// waits and historical average lengths computed from the trace. Averages
// are derived from the classification bounds directly so the shared trace
// never needs its Queue fields rewritten.
//
// Fast paths are enabled unconditionally: with the default perfect CIS
// the context answers decisions from the trace's oracle tables (shared
// across every concurrent Run over that trace), and with any other CIS
// the call is a no-op and decisions take the reference path.
func (c Config) policyContext(jobs *workload.Trace) *policy.Context {
	means := jobs.MeanLengthsByBounds(c.queueBounds())
	queues := make(map[workload.Queue]policy.QueueInfo, len(c.Queues))
	for i, spec := range c.Queues {
		q := workload.Queue(i)
		avg := means[i]
		if v, ok := c.AvgLengthOverride[q]; ok {
			avg = v
		}
		queues[q] = policy.QueueInfo{MaxWait: spec.MaxWait, AvgLength: avg}
	}
	ctx := &policy.Context{CIS: c.CIS, Queues: queues}
	ctx.EnableFastPaths()
	return ctx
}

// queueBounds returns the classification bounds for ClassifyQueues: the
// MaxLength of every queue but the last.
func (c Config) queueBounds() []simtime.Duration {
	bounds := make([]simtime.Duration, 0, len(c.Queues)-1)
	for _, q := range c.Queues[:len(c.Queues)-1] {
		bounds = append(bounds, q.MaxLength)
	}
	return bounds
}
