package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func contextTestFixture() (Config, *workload.Trace) {
	tr := carbon.RegionSAAU.Generate(24*10, 1)
	jobs := workload.AlibabaPAIWeek().GenerateByCount(rand.New(rand.NewSource(3)), 500, simtime.Week)
	cfg := Config{
		Policy:         policy.CarbonTime{},
		Carbon:         tr,
		Reserved:       20,
		WorkConserving: true,
	}
	return cfg, jobs
}

// TestRunContextCanceled verifies a pre-canceled context stops the run
// with the context's error instead of a result.
func TestRunContextCanceled(t *testing.T) {
	cfg, jobs := contextTestFixture()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, cfg, jobs)
	if res != nil {
		t.Fatalf("canceled run returned a result: %v", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextMatchesRun pins that an uncancelled RunContext is
// bit-identical to Run: the interrupt probe must not perturb the event
// sequence or the accounting.
func TestRunContextMatchesRun(t *testing.T) {
	cfg, jobs := contextTestFixture()
	plain, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	ctxRes, err := RunContext(context.Background(), cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Background has no Done channel, so no probe is installed at all —
	// but exercise a live (never canceled) context too.
	live, liveCancel := context.WithCancel(context.Background())
	defer liveCancel()
	liveRes, err := RunContext(live, cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]*struct {
		carbon, cost float64
		wait         simtime.Duration
		n            int
	}{
		"background": {ctxRes.TotalCarbon(), ctxRes.TotalCost(), ctxRes.TotalWaiting(), ctxRes.JobCount()},
		"live":       {liveRes.TotalCarbon(), liveRes.TotalCost(), liveRes.TotalWaiting(), liveRes.JobCount()},
	} {
		want := &struct {
			carbon, cost float64
			wait         simtime.Duration
			n            int
		}{plain.TotalCarbon(), plain.TotalCost(), plain.TotalWaiting(), plain.JobCount()}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s RunContext diverged from Run: got %+v want %+v", name, got, want)
		}
	}
}
