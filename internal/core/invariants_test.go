package core

// Cross-policy invariant tests: properties that must hold for any
// workload/carbon combination, checked over seeded random instances.

import (
	"math"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func randomInstance(seed int64) (*carbon.Trace, *workload.Trace) {
	tr := carbon.RegionSAAU.Generate(24*30, seed)
	jobs := workload.AlibabaPAIWeek().GenerateByCount(newRand(seed+100), 150, simtime.Week)
	return tr, jobs
}

// WaitAwhile knows the exact length and may suspend: its feasible
// schedules are a superset of any uninterruptible policy with the same
// window, so its total carbon can never exceed Lowest-Slot's.
func TestWaitAwhileCarbonDominates(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		tr, jobs := randomInstance(seed)
		wa, err := Run(baseConfig(tr, policy.WaitAwhile{}), jobs)
		if err != nil {
			t.Fatal(err)
		}
		ls, err := Run(baseConfig(tr, policy.LowestSlot{}), jobs)
		if err != nil {
			t.Fatal(err)
		}
		if wa.TotalCarbon() > ls.TotalCarbon()+1e-6 {
			t.Errorf("seed %d: WaitAwhile %v > LowestSlot %v", seed, wa.TotalCarbon(), ls.TotalCarbon())
		}
	}
}

// A larger waiting window can only help WaitAwhile's carbon: the feasible
// slot set grows monotonically.
func TestWiderWindowNeverHurtsWaitAwhile(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		tr, jobs := randomInstance(seed)
		prev := math.Inf(1)
		for _, w := range []simtime.Duration{-1, 6 * simtime.Hour, 24 * simtime.Hour, 48 * simtime.Hour} {
			cfg := baseConfig(tr, policy.WaitAwhile{})
			cfg.WaitShort, cfg.WaitLong = w, w
			res, err := Run(cfg, jobs)
			if err != nil {
				t.Fatal(err)
			}
			if c := res.TotalCarbon(); c > prev+1e-6 {
				t.Errorf("seed %d: carbon rose to %v at window %v", seed, c, w)
			} else {
				prev = c
			}
		}
	}
}

// Work conservation can only reduce waiting versus the same policy
// without it (jobs start no later, never earlier than planned).
func TestWorkConservationReducesWaiting(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		tr, jobs := randomInstance(seed)
		mk := func(wc bool) *metrics.Result {
			cfg := baseConfig(tr, policy.CarbonTime{})
			cfg.Reserved = 10
			cfg.WorkConserving = wc
			res, err := Run(cfg, jobs)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		with, without := mk(true), mk(false)
		if with.MeanWaiting() > without.MeanWaiting() {
			t.Errorf("seed %d: WC waiting %v > plain %v", seed, with.MeanWaiting(), without.MeanWaiting())
		}
	}
}

// Accounting identities: billed CPU-hours equal executed CPU-hours
// (job volume + eviction waste), and carbon is additive and non-negative.
func TestAccountingIdentities(t *testing.T) {
	tr, jobs := randomInstance(7)
	cfg := baseConfig(tr, policy.CarbonTime{})
	cfg.Reserved = 8
	cfg.WorkConserving = true
	cfg.SpotMaxLen = 2 * simtime.Hour
	cfg.EvictionRate = 0.15
	cfg.Seed = 3
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	var volume, wasted float64
	for _, j := range res.Jobs {
		volume += float64(j.CPUs) * j.Length.Hours()
		wasted += j.WastedCPUHours
		if j.Carbon < 0 || j.UsageCost < 0 {
			t.Fatalf("negative accounting on job %d", j.JobID)
		}
		var byOpt float64
		for _, h := range j.CPUHours {
			byOpt += h
		}
		want := float64(j.CPUs)*j.Length.Hours() + j.WastedCPUHours
		if math.Abs(byOpt-want) > 1e-6 {
			t.Fatalf("job %d: billed %v CPUh, want %v", j.JobID, byOpt, want)
		}
	}
	total := res.CPUHoursByOption()
	sum := total[cloud.OnDemand] + total[cloud.Reserved] + total[cloud.Spot]
	if math.Abs(sum-(volume+wasted)) > 1e-6 {
		t.Errorf("cluster billed %v CPUh, want %v", sum, volume+wasted)
	}
	// Cost identity: total = upfront + usage; usage = od·rate + spot·rate.
	wantUsage := total[cloud.OnDemand]*cfg.Pricing.HourlyRate(cloud.OnDemand) +
		total[cloud.Spot]*cfg.Pricing.HourlyRate(cloud.Spot)
	if math.Abs(res.UsageCost()-wantUsage) > 1e-6 {
		t.Errorf("usage cost %v, want %v", res.UsageCost(), wantUsage)
	}
}

// Reserved capacity never exceeds its pool: total reserved CPU-hours over
// any run must be at most capacity × horizon.
func TestReservedNeverOverbooked(t *testing.T) {
	tr, jobs := randomInstance(9)
	for _, r := range []int{1, 5, 20} {
		cfg := baseConfig(tr, policy.AllWait{})
		cfg.Reserved = r
		cfg.WorkConserving = true
		res, err := Run(cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if used := res.CPUHoursByOption()[cloud.Reserved]; used > float64(r)*res.Horizon.Hours()+1e-6 {
			t.Errorf("R=%d: used %v reserved CPUh over %v capacity-hours", r, used, float64(r)*res.Horizon.Hours())
		}
		if res.ReservedUtilization() > 1+1e-9 {
			t.Errorf("R=%d: utilization %v > 1", r, res.ReservedUtilization())
		}
	}
}

// The estimate override plumbing reaches the policies: a wildly wrong
// estimate changes Lowest-Window's schedule.
func TestAvgLengthOverride(t *testing.T) {
	tr, jobs := randomInstance(11)
	run := func(override map[workload.Queue]simtime.Duration) *metrics.Result {
		cfg := baseConfig(tr, policy.LowestWindow{})
		cfg.AvgLengthOverride = override
		res, err := Run(cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	normal := run(nil)
	skewed := run(map[workload.Queue]simtime.Duration{
		workload.QueueShort: 20 * simtime.Hour,
		workload.QueueLong:  20 * simtime.Hour,
	})
	same := true
	for i := range normal.Jobs {
		if normal.Jobs[i].Start != skewed.Jobs[i].Start {
			same = false
			break
		}
	}
	if same {
		t.Error("20h estimate override should change some start times")
	}
}
