package core

import (
	"reflect"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// opaqueCIS hides the concrete service type, so EnableFastPaths cannot
// recognize a perfect-knowledge CIS and every decision takes the reference
// path. Forecasts are still bit-identical to the wrapped service.
type opaqueCIS struct{ carbon.Service }

// TestRunIdenticalWithFastPathsDefeated is the end-to-end counterpart of
// the policy-level differential tests: a full simulation answering every
// decision from the oracle tables must produce results DeepEqual to one
// forced onto the reference path.
func TestRunIdenticalWithFastPathsDefeated(t *testing.T) {
	rng := newRand(3)
	values := make([]float64, 24*10)
	for i := range values {
		values[i] = 30 + 700*rng.Float64()
	}
	tr := carbon.MustTrace("wiring", values)
	jobs := workload.AlibabaPAI().GenerateByCount(newRand(17), 300, 9*simtime.Day)

	cases := []struct {
		name string
		cfg  Config
	}{
		{"carbontime-res-first", Config{
			Policy: policy.CarbonTime{}, Carbon: tr,
			Reserved: 30, WorkConserving: true,
			Pricing: testPricing, Power: testPower,
			RetainJobs: true,
		}},
		{"lowestwindow-spot", Config{
			Policy: policy.LowestWindow{}, Carbon: tr,
			SpotMaxLen: 2 * simtime.Hour, EvictionRate: 0.05, Seed: 11,
			Pricing: testPricing, Power: testPower,
			RetainJobs: true,
		}},
		{"lowestslot", Config{
			Policy: policy.LowestSlot{}, Carbon: tr,
			Pricing: testPricing, Power: testPower,
			RetainJobs: true,
		}},
		{"waitawhile", Config{
			Policy: policy.WaitAwhile{}, Carbon: tr,
			Reserved: 20,
			Pricing:  testPricing, Power: testPower,
			RetainJobs: true,
		}},
		{"ecovisor", Config{
			Policy: policy.Ecovisor{}, Carbon: tr,
			Pricing: testPricing, Power: testPower,
			RetainJobs: true,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fast, err := Run(tc.cfg, jobs)
			if err != nil {
				t.Fatal(err)
			}
			ref := tc.cfg
			ref.CIS = opaqueCIS{carbon.NewPerfectService(tr)}
			slow, err := Run(ref, jobs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fast, slow) {
				t.Errorf("results diverge between oracle and reference paths:\n fast = %+v\n ref  = %+v", fast, slow)
			}
		})
	}
}
