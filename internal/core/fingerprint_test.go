package core

import (
	"encoding/hex"
	"math/rand"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// fpFixture builds a small valid trace pair for fingerprinting tests.
func fpFixture(t testing.TB) (*carbon.Trace, *workload.Trace) {
	t.Helper()
	tr := carbon.RegionSAAU.Generate(24*10, 1)
	jobs := workload.AlibabaPAIWeek().GenerateByCount(rand.New(rand.NewSource(3)), 200, simtime.Week)
	return tr, jobs
}

func mustFingerprint(t *testing.T, cfg Config, jobs *workload.Trace) [32]byte {
	t.Helper()
	fp, ok := cfg.Fingerprint(jobs)
	if !ok {
		t.Fatalf("config unexpectedly not fingerprintable: %+v", cfg)
	}
	return fp
}

// TestFingerprintCanonicalization asserts that every way of spelling the
// same effective configuration hashes identically: zero values vs their
// explicit defaults, permuted AvgLengthOverride insertion order, label
// changes, and knobs that are irrelevant in context (spot/eviction seeds
// with spot disabled).
func TestFingerprintCanonicalization(t *testing.T) {
	tr, jobs := fpFixture(t)
	base := Config{Policy: policy.CarbonTime{}, Carbon: tr}
	want := mustFingerprint(t, base, jobs)

	equivalents := map[string]Config{
		"explicit CIS": {Policy: policy.CarbonTime{}, Carbon: tr,
			CIS: carbon.NewPerfectService(tr)},
		"explicit defaults": {Policy: policy.CarbonTime{}, Carbon: tr,
			ShortMax: 2 * simtime.Hour, WaitShort: 6 * simtime.Hour, WaitLong: 24 * simtime.Hour,
			Horizon: tr.Horizon()},
		"explicit queue ladder": {Policy: policy.CarbonTime{}, Carbon: tr,
			Queues: []QueueSpec{
				{MaxLength: 2 * simtime.Hour, MaxWait: 6 * simtime.Hour},
				{MaxLength: 0, MaxWait: 24 * simtime.Hour},
			}},
		"label differs": {Policy: policy.CarbonTime{}, Carbon: tr, Label: "renamed"},
		"seed without spot": {Policy: policy.CarbonTime{}, Carbon: tr, Seed: 12345,
			EvictionRate: 0.3, CheckpointInterval: simtime.Hour},
		"override for queue out of range": {Policy: policy.CarbonTime{}, Carbon: tr,
			AvgLengthOverride: map[workload.Queue]simtime.Duration{7: simtime.Hour}},
	}
	for name, cfg := range equivalents {
		if got := mustFingerprint(t, cfg, jobs); got != want {
			t.Errorf("%s: fingerprint differs from base", name)
		}
	}
}

// TestFingerprintOverrideOrderInsensitive permutes map insertion order —
// the canonical encoding must sort keys, so iteration order artifacts can
// never split the cache.
func TestFingerprintOverrideOrderInsensitive(t *testing.T) {
	tr, jobs := fpFixture(t)
	mk := func(order []workload.Queue) Config {
		vals := map[workload.Queue]simtime.Duration{
			workload.QueueShort: 45 * simtime.Minute,
			workload.QueueLong:  5 * simtime.Hour,
		}
		override := make(map[workload.Queue]simtime.Duration, len(order))
		for _, q := range order {
			override[q] = vals[q]
		}
		return Config{Policy: policy.LowestWindow{}, Carbon: tr, AvgLengthOverride: override}
	}
	a := mustFingerprint(t, mk([]workload.Queue{workload.QueueShort, workload.QueueLong}), jobs)
	b := mustFingerprint(t, mk([]workload.Queue{workload.QueueLong, workload.QueueShort}), jobs)
	if a != b {
		t.Error("fingerprint depends on AvgLengthOverride insertion order")
	}
}

// TestFingerprintDistinguishes asserts that every knob that can change a
// simulation result changes the fingerprint.
func TestFingerprintDistinguishes(t *testing.T) {
	tr, jobs := fpFixture(t)
	tr2 := carbon.RegionCAUS.Generate(24*10, 1)
	jobs2 := workload.AlibabaPAIWeek().GenerateByCount(rand.New(rand.NewSource(4)), 200, simtime.Week)
	base := Config{Policy: policy.CarbonTime{}, Carbon: tr,
		SpotMaxLen: 2 * simtime.Hour, EvictionRate: 0.05}
	want := mustFingerprint(t, base, jobs)

	variants := map[string]struct {
		cfg  Config
		jobs *workload.Trace
	}{
		"policy": {Config{Policy: policy.LowestWindow{}, Carbon: tr,
			SpotMaxLen: 2 * simtime.Hour, EvictionRate: 0.05}, jobs},
		"carbon trace": {Config{Policy: policy.CarbonTime{}, Carbon: tr2,
			SpotMaxLen: 2 * simtime.Hour, EvictionRate: 0.05}, jobs},
		"workload": {base, jobs2},
		"reserved": {Config{Policy: policy.CarbonTime{}, Carbon: tr, Reserved: 10,
			SpotMaxLen: 2 * simtime.Hour, EvictionRate: 0.05}, jobs},
		"work-conserving": {Config{Policy: policy.CarbonTime{}, Carbon: tr, WorkConserving: true,
			SpotMaxLen: 2 * simtime.Hour, EvictionRate: 0.05}, jobs},
		"eviction seed": {Config{Policy: policy.CarbonTime{}, Carbon: tr,
			SpotMaxLen: 2 * simtime.Hour, EvictionRate: 0.05, Seed: 99}, jobs},
		"eviction rate": {Config{Policy: policy.CarbonTime{}, Carbon: tr,
			SpotMaxLen: 2 * simtime.Hour, EvictionRate: 0.10}, jobs},
		"spot bound": {Config{Policy: policy.CarbonTime{}, Carbon: tr,
			SpotMaxLen: 4 * simtime.Hour, EvictionRate: 0.05}, jobs},
		"checkpointing": {Config{Policy: policy.CarbonTime{}, Carbon: tr,
			SpotMaxLen: 2 * simtime.Hour, EvictionRate: 0.05,
			CheckpointInterval: simtime.Hour}, jobs},
		"horizon": {Config{Policy: policy.CarbonTime{}, Carbon: tr, Horizon: 5 * simtime.Day,
			SpotMaxLen: 2 * simtime.Hour, EvictionRate: 0.05}, jobs},
		"avg-length override": {Config{Policy: policy.CarbonTime{}, Carbon: tr,
			SpotMaxLen: 2 * simtime.Hour, EvictionRate: 0.05,
			AvgLengthOverride: map[workload.Queue]simtime.Duration{
				workload.QueueLong: 7 * simtime.Hour,
			}}, jobs},
		"ecovisor percentile": {Config{Policy: policy.Ecovisor{ThresholdPercentile: 50}, Carbon: tr,
			SpotMaxLen: 2 * simtime.Hour, EvictionRate: 0.05}, jobs},
	}
	for name, v := range variants {
		if got := mustFingerprint(t, v.cfg, v.jobs); got == want {
			t.Errorf("%s: fingerprint collides with base", name)
		}
	}

	// Ecovisor's zero percentile means 30 — those must collide with each
	// other, not with other percentiles.
	e0 := mustFingerprint(t, Config{Policy: policy.Ecovisor{}, Carbon: tr}, jobs)
	e30 := mustFingerprint(t, Config{Policy: policy.Ecovisor{ThresholdPercentile: 30}, Carbon: tr}, jobs)
	if e0 != e30 {
		t.Error("Ecovisor{} and Ecovisor{30} must fingerprint equal")
	}
}

// TestFingerprintNotCacheable pins the bypass conditions: opaque CIS
// implementations, unknown policies, per-job retention and nil inputs.
func TestFingerprintNotCacheable(t *testing.T) {
	tr, jobs := fpFixture(t)
	cases := map[string]Config{
		"noisy CIS": {Policy: policy.CarbonTime{}, Carbon: tr,
			CIS: carbon.NewNoisyService(tr, 0.05, 1)},
		"retain jobs": {Policy: policy.CarbonTime{}, Carbon: tr, RetainJobs: true},
		"no policy":   {Carbon: tr},
		"no carbon":   {Policy: policy.CarbonTime{}},
	}
	for name, cfg := range cases {
		if _, ok := cfg.Fingerprint(jobs); ok {
			t.Errorf("%s: expected not fingerprintable", name)
		}
	}
	if _, ok := (Config{Policy: policy.CarbonTime{}, Carbon: tr}).Fingerprint(nil); ok {
		t.Error("nil jobs: expected not fingerprintable")
	}

	// The global retention override must also force a bypass, or the
	// retained-vs-streaming differential suites would compare a cache
	// hit against itself.
	ForceRetainJobs(true)
	defer ForceRetainJobs(false)
	if _, ok := (Config{Policy: policy.CarbonTime{}, Carbon: tr}).Fingerprint(jobs); ok {
		t.Error("ForceRetainJobs: expected not fingerprintable")
	}
	ForceRetainJobs(false)

	// Same for the heap-engine override: a heap-forced differential run
	// answered from the cache would compare the wheel against itself.
	ForceHeapEngine(true)
	defer ForceHeapEngine(false)
	if _, ok := (Config{Policy: policy.CarbonTime{}, Carbon: tr}).Fingerprint(jobs); ok {
		t.Error("ForceHeapEngine: expected not fingerprintable")
	}
}

func mustDecisionFingerprint(t *testing.T, cfg Config, jobs *workload.Trace) [32]byte {
	t.Helper()
	fp, ok := cfg.DecisionFingerprint(jobs)
	if !ok {
		t.Fatalf("config unexpectedly has no decision fingerprint: %+v", cfg)
	}
	return fp
}

// TestDecisionFingerprintEquivalence asserts the projection property the
// plan cache rests on: configurations that differ only in accounting
// knobs — reserved size, prices, the power model, the horizon, labels,
// retention, even the realized carbon trace (with the CIS pinned) — share
// one decision fingerprint, so a sweep over any of them decides once.
func TestDecisionFingerprintEquivalence(t *testing.T) {
	tr, jobs := fpFixture(t)
	tr2 := carbon.RegionCAUS.Generate(24*10, 1)
	base := Config{Policy: policy.CarbonTime{}, Carbon: tr}
	want := mustDecisionFingerprint(t, base, jobs)

	equivalents := map[string]Config{
		"reserved": {Policy: policy.CarbonTime{}, Carbon: tr, Reserved: 500},
		"pricing": {Policy: policy.CarbonTime{}, Carbon: tr,
			Pricing: cloud.Pricing{OnDemandHourly: 9.9, ReservedFraction: 0.5, SpotFraction: 0.1}},
		"power": {Policy: policy.CarbonTime{}, Carbon: tr,
			Power: cloud.Power{KWPerCPU: 0.5}},
		"horizon":  {Policy: policy.CarbonTime{}, Carbon: tr, Horizon: 9 * simtime.Day},
		"label":    {Policy: policy.CarbonTime{}, Carbon: tr, Label: "renamed"},
		"retained": {Policy: policy.CarbonTime{}, Carbon: tr, RetainJobs: true},
		// The decisive trace is the CIS forecast, not the realized carbon
		// trace accounting integrates — the carbon-tax experiment's
		// schedule/bill pairs rely on exactly this sharing.
		"realized carbon trace": {Policy: policy.CarbonTime{}, Carbon: tr2,
			CIS: carbon.NewPerfectService(tr)},
		"explicit defaults": {Policy: policy.CarbonTime{}, Carbon: tr,
			ShortMax: 2 * simtime.Hour, WaitShort: 6 * simtime.Hour, WaitLong: 24 * simtime.Hour},
		"override for queue out of range": {Policy: policy.CarbonTime{}, Carbon: tr,
			AvgLengthOverride: map[workload.Queue]simtime.Duration{7: simtime.Hour}},
	}
	for name, cfg := range equivalents {
		if got := mustDecisionFingerprint(t, cfg, jobs); got != want {
			t.Errorf("%s: decision fingerprint differs from base", name)
		}
	}
}

// TestDecisionFingerprintDistinguishes asserts that every input the decide
// phase reads splits the fingerprint.
func TestDecisionFingerprintDistinguishes(t *testing.T) {
	tr, jobs := fpFixture(t)
	tr2 := carbon.RegionCAUS.Generate(24*10, 1)
	jobs2 := workload.AlibabaPAIWeek().GenerateByCount(rand.New(rand.NewSource(4)), 200, simtime.Week)
	base := Config{Policy: policy.CarbonTime{}, Carbon: tr}
	want := mustDecisionFingerprint(t, base, jobs)

	variants := map[string]struct {
		cfg  Config
		jobs *workload.Trace
	}{
		"policy":    {Config{Policy: policy.LowestWindow{}, Carbon: tr}, jobs},
		"cis trace": {Config{Policy: policy.CarbonTime{}, Carbon: tr, CIS: carbon.NewPerfectService(tr2)}, jobs},
		"workload":  {base, jobs2},
		"wait bound": {Config{Policy: policy.CarbonTime{}, Carbon: tr,
			WaitShort: 12 * simtime.Hour}, jobs},
		"queue ladder": {Config{Policy: policy.CarbonTime{}, Carbon: tr,
			ShortMax: 4 * simtime.Hour}, jobs},
		"avg-length override": {Config{Policy: policy.CarbonTime{}, Carbon: tr,
			AvgLengthOverride: map[workload.Queue]simtime.Duration{
				workload.QueueLong: 7 * simtime.Hour,
			}}, jobs},
	}
	for name, v := range variants {
		if got := mustDecisionFingerprint(t, v.cfg, v.jobs); got == want {
			t.Errorf("%s: decision fingerprint collides with base", name)
		}
	}

	// And it must never collide with the full simulation fingerprint of
	// the same configuration (distinct hash domains).
	if full := mustFingerprint(t, base, jobs); full == want {
		t.Error("decision fingerprint collides with the full fingerprint")
	}
}

// TestDecisionFingerprintBypass pins when a configuration has no decision
// projection: every non-direct-eligible shape, nil inputs, and active
// differential seams. Retention, by contrast, must NOT spoil it.
func TestDecisionFingerprintBypass(t *testing.T) {
	tr, jobs := fpFixture(t)
	cases := map[string]Config{
		"work-conserving": {Policy: policy.CarbonTime{}, Carbon: tr, WorkConserving: true},
		"spot":            {Policy: policy.CarbonTime{}, Carbon: tr, SpotMaxLen: 2 * simtime.Hour},
		"plan policy":     {Policy: policy.WaitAwhile{}, Carbon: tr},
		"opaque CIS": {Policy: policy.CarbonTime{}, Carbon: tr,
			CIS: carbon.NewNoisyService(tr, 0.05, 1)},
		"no policy": {Carbon: tr},
		"no carbon": {Policy: policy.CarbonTime{}},
	}
	for name, cfg := range cases {
		if _, ok := cfg.DecisionFingerprint(jobs); ok {
			t.Errorf("%s: expected no decision fingerprint", name)
		}
	}
	eligible := Config{Policy: policy.CarbonTime{}, Carbon: tr}
	if _, ok := eligible.DecisionFingerprint(nil); ok {
		t.Error("nil jobs: expected no decision fingerprint")
	}

	// Retention changes what the replay materializes, not what the decide
	// phase chooses — retained runs may share plans.
	retained := eligible
	retained.RetainJobs = true
	if _, ok := retained.DecisionFingerprint(jobs); !ok {
		t.Error("retained config should keep its decision fingerprint")
	}

	// Forced differential runs must not replay cached plans: the seams
	// exist to exercise a specific mechanism end to end.
	ForceEventEngine(true)
	if _, ok := eligible.DecisionFingerprint(jobs); ok {
		t.Error("ForceEventEngine: expected no decision fingerprint")
	}
	ForceEventEngine(false)
	ForceHeapEngine(true)
	defer ForceHeapEngine(false)
	if _, ok := eligible.DecisionFingerprint(jobs); ok {
		t.Error("ForceHeapEngine: expected no decision fingerprint")
	}
}

// TestDecisionFingerprintGolden pins the canonical hash of a fixed
// configuration over the deterministic fixture. A change here means the
// decision fingerprint layout changed: on-disk plan artifacts silently
// orphan, and decisionFingerprintLayout must be bumped alongside.
func TestDecisionFingerprintGolden(t *testing.T) {
	tr, jobs := fpFixture(t)
	cfg := Config{Policy: policy.LowestWindow{}, Carbon: tr, Reserved: 42}
	fp := mustDecisionFingerprint(t, cfg, jobs)
	const want = "1d1b16cd19304eb7eddc7995118b1a6f15ba1de3930704c1341280c5318c4035"
	if got := hex.EncodeToString(fp[:]); got != want {
		t.Errorf("decision fingerprint drifted:\n got %s\nwant %s", got, want)
	}
}
