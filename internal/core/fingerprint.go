package core

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/workload"
)

// Canonical returns the configuration exactly as Run will execute it:
// defaults filled in (CIS, price book, power model, queue ladder, horizon,
// checkpoint overhead, derived label, any forced retention). It is the
// normal form the simulation cache fingerprints, and what cache layers use
// to rebuild a Result identical to the one Run would have produced.
func (c Config) Canonical() Config { return c.withDefaults() }

// Fingerprint returns a content hash identifying the simulation outcome of
// running this configuration over jobs: two runs fingerprint equal if and
// only if core.Run is guaranteed to produce bit-identical aggregate
// results for them. ok=false means the configuration cannot be
// fingerprinted (an unrecognized policy or CIS implementation whose
// behaviour is opaque, or per-job retention requested) and the caller must
// simulate.
//
// The hash covers the canonical (defaulted) form, so a zero field and its
// explicit default collide as required, and it deliberately excludes or
// normalizes everything that cannot influence the numbers:
//
//   - Label never enters the hash — it only names the rendered row.
//   - Presentation-only retention (RetainJobs) makes the config
//     non-cacheable instead: retained runs carry per-job records the
//     cache does not store.
//   - With SpotMaxLen == 0 no job ever routes to spot, so the eviction
//     rate, checkpoint knobs and seed are zeroed before hashing; with
//     EvictionRate == 0 the eviction model never fires, so the seed
//     alone is zeroed (checkpoint padding still alters spot runtimes).
//   - AvgLengthOverride is hashed in sorted key order and restricted to
//     queues that exist in the ladder — entries for out-of-range queues
//     are ignored by the scheduler and must not perturb the key.
//
// Carbon and workload content enter through the traces' memoized
// fingerprints, so hashing a config is cheap enough to do per cell.
func (c Config) Fingerprint(jobs *workload.Trace) (fp [32]byte, ok bool) {
	canon := c.withDefaults()
	if canon.Policy == nil || canon.Carbon == nil || jobs == nil {
		return fp, false
	}
	if canon.RetainJobs {
		return fp, false
	}
	if forceHeapEngine.Load() || forceEventEngine.Load() || forceElasticDegenerate.Load() {
		// Forced differential runs (heap queue, event engine instead of
		// the direct path, or the degenerate-elastic wrap) must actually
		// simulate: answering from the cache would silently compare a
		// mechanism against itself.
		return fp, false
	}
	ptag, pparam, ok := policyIdentity(canon.Policy)
	if !ok {
		return fp, false
	}
	perfect, ok := canon.CIS.(*carbon.PerfectService)
	if !ok {
		return fp, false
	}
	var atag int
	var aparams [2]float64
	if canon.Elastic != nil {
		// The allocator chooses replica grants, so its identity is part of
		// the outcome; unknown implementations may carry hidden state the
		// hash cannot see and spoil cacheability like unknown policies do.
		atag, aparams, ok = allocatorIdentity(canon.Allocator)
		if !ok {
			return fp, false
		}
	}

	if canon.SpotMaxLen == 0 {
		canon.EvictionRate = 0
		canon.CheckpointInterval = 0
		canon.CheckpointOverhead = 0
		canon.Seed = 0
	}
	if canon.EvictionRate == 0 {
		canon.Seed = 0
	}

	h := sha256.New()
	var buf [8]byte
	le := binary.LittleEndian
	u64 := func(v uint64) {
		le.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }

	u64(fingerprintLayout)
	u64(uint64(ptag))
	f64(pparam)
	cfp := canon.Carbon.Fingerprint()
	h.Write(cfp[:])
	sfp := perfect.Trace().Fingerprint()
	h.Write(sfp[:])
	u64(uint64(canon.Reserved))
	if canon.WorkConserving {
		u64(1)
	} else {
		u64(0)
	}
	u64(uint64(canon.SpotMaxLen))
	f64(canon.EvictionRate)
	u64(uint64(canon.CheckpointInterval))
	u64(uint64(canon.CheckpointOverhead))
	f64(canon.Pricing.OnDemandHourly)
	f64(canon.Pricing.ReservedFraction)
	f64(canon.Pricing.SpotFraction)
	f64(canon.Power.KWPerCPU)
	u64(uint64(len(canon.Queues)))
	for _, q := range canon.Queues {
		u64(uint64(q.MaxLength))
		u64(uint64(q.MaxWait))
	}
	u64(uint64(canon.Horizon))
	keys := make([]int, 0, len(canon.AvgLengthOverride))
	for q := range canon.AvgLengthOverride {
		if int(q) >= 0 && int(q) < len(canon.Queues) {
			keys = append(keys, int(q))
		}
	}
	sort.Ints(keys)
	u64(uint64(len(keys)))
	for _, k := range keys {
		u64(uint64(k))
		u64(uint64(canon.AvgLengthOverride[workload.Queue(k)]))
	}
	u64(uint64(canon.Seed))
	jfp := jobs.Fingerprint()
	h.Write(jfp[:])
	if canon.Elastic != nil {
		// Elastic block, appended only when present: a rigid config's hash
		// is bit-for-bit what it was before elasticity existed, so the
		// on-disk cache stays valid without a layout bump, and the marker
		// keeps an elastic config from ever colliding with a rigid one.
		u64(0xE1A5)
		efp := canon.Elastic.Fingerprint()
		h.Write(efp[:])
		u64(uint64(atag))
		f64(aparams[0])
		f64(aparams[1])
		u64(uint64(canon.ElasticCapacity))
	}

	h.Sum(fp[:0])
	return fp, true
}

// allocatorIdentity maps an elastic allocator to a stable tag plus its
// parameters, the allocator counterpart of policyIdentity. Tags are frozen
// — append new allocators, never renumber.
func allocatorIdentity(a policy.ElasticAllocator) (tag int, params [2]float64, ok bool) {
	switch a := a.(type) {
	case policy.StaticAlloc:
		return 1, params, true
	case policy.GreedyMarginal:
		thresh := a.ScaleThreshold
		if thresh <= 0 {
			thresh = 0.75 // Allocate's documented default
		}
		preempt := a.PreemptAbove
		if preempt <= 0 {
			preempt = 1.25 // Allocate's documented default
		}
		return 2, [2]float64{thresh, preempt}, true
	default:
		return 0, params, false
	}
}

// fingerprintLayout versions the binary layout hashed above. Bump it
// whenever the set or order of fields changes so stale on-disk cache
// entries written under the old layout can never collide with new keys.
const fingerprintLayout = 1

// DecisionFingerprint returns a content hash identifying the *decide
// phase* of running this configuration over jobs: two configurations
// decision-fingerprint equal if and only if the direct path's decide phase
// is guaranteed to produce the identical start-time column for both, so a
// DecisionPlan cached under the hash replays bit-identically
// (plan.go). ok=false means the configuration has no decision projection —
// it is not direct-eligible (work-conserving, spot routing, a plan-capable
// or unrecognized policy, an opaque CIS), or a Force* differential seam is
// active — and callers must run the full path.
//
// The hash is a strict projection of Fingerprint onto the inputs the
// decide phase reads: policy identity, the CIS trace (the forecasts
// policies consult — NOT the realized Carbon trace, which only accounting
// integrates), the queue ladder's classification bounds and wait
// guarantees, the average-length estimates, and the workload itself.
// Everything else is accounting replayed per cell — Reserved, prices, the
// power model, the realized carbon trace, the horizon, retention, spot
// knobs (forced inert by eligibility) — and is deliberately excluded, so a
// reserved-size or carbon-tax sweep shares one plan across every cell.
//
// Unlike Fingerprint, RetainJobs does not spoil the hash: retention
// changes what the replay materializes, never what the decide phase
// chooses.
func (c Config) DecisionFingerprint(jobs *workload.Trace) (fp [32]byte, ok bool) {
	canon := c.withDefaults()
	if canon.Policy == nil || canon.Carbon == nil || jobs == nil {
		return fp, false
	}
	if canon.validate() != nil {
		return fp, false
	}
	if forceHeapEngine.Load() || forceEventEngine.Load() || forceElasticDegenerate.Load() {
		// Forced differential runs must exercise the forced mechanism end
		// to end; replaying a cached plan would skip the phase under test.
		return fp, false
	}
	if !canon.directEligible() {
		return fp, false
	}
	ptag, pparam, ok := policyIdentity(canon.Policy)
	if !ok {
		return fp, false
	}
	// directEligible admitted the config, so the CIS is the perfect
	// service wrapping some (possibly distinct) trace.
	perfect := canon.CIS.(*carbon.PerfectService)

	h := sha256.New()
	var buf [8]byte
	le := binary.LittleEndian
	u64 := func(v uint64) {
		le.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }

	// Domain separator: a decision fingerprint must never collide with a
	// full simulation fingerprint of any configuration.
	h.Write([]byte("gaia:decision-plan"))
	u64(decisionFingerprintLayout)
	u64(uint64(ptag))
	f64(pparam)
	sfp := perfect.Trace().Fingerprint()
	h.Write(sfp[:])
	u64(uint64(len(canon.Queues)))
	for _, q := range canon.Queues {
		u64(uint64(q.MaxLength))
		u64(uint64(q.MaxWait))
	}
	keys := make([]int, 0, len(canon.AvgLengthOverride))
	for q := range canon.AvgLengthOverride {
		if int(q) >= 0 && int(q) < len(canon.Queues) {
			keys = append(keys, int(q))
		}
	}
	sort.Ints(keys)
	u64(uint64(len(keys)))
	for _, k := range keys {
		u64(uint64(k))
		u64(uint64(canon.AvgLengthOverride[workload.Queue(k)]))
	}
	jfp := jobs.Fingerprint()
	h.Write(jfp[:])

	h.Sum(fp[:0])
	return fp, true
}

// decisionFingerprintLayout versions the DecisionFingerprint hash layout,
// independently of fingerprintLayout. Bump on any change to the set or
// order of hashed fields; it also participates in the plan cache's on-disk
// entry names so stale artifacts never match.
const decisionFingerprintLayout = 1

// policyIdentity maps a policy to a stable tag plus its parameters. Only
// policies this function knows are cacheable: an unknown implementation
// may carry hidden state the fingerprint cannot see. Tags are frozen —
// append new policies, never renumber.
func policyIdentity(p policy.Policy) (tag int, param float64, ok bool) {
	switch p := p.(type) {
	case policy.NoWait:
		return 1, 0, true
	case policy.AllWait:
		return 2, 0, true
	case policy.LowestSlot:
		return 3, 0, true
	case policy.LowestWindow:
		return 4, 0, true
	case policy.CarbonTime:
		return 5, 0, true
	case policy.WaitAwhile:
		return 6, 0, true
	case policy.WaitAwhileEst:
		return 7, 0, true
	case policy.Ecovisor:
		pct := p.ThresholdPercentile
		if pct <= 0 {
			pct = 30 // Decide's documented default
		}
		return 8, pct, true
	case policy.CriticalPathShift:
		return 9, 0, true
	default:
		return 0, 0, false
	}
}
