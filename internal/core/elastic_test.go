package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// scriptAlloc adapts a closure into an ElasticAllocator for hand-checked
// resize scenarios.
type scriptAlloc struct {
	grants func(views []policy.ElasticJobView, now simtime.Time) []int
}

func (scriptAlloc) Name() string { return "script" }

func (a scriptAlloc) Allocate(views []policy.ElasticJobView, now simtime.Time, _ int, _ *policy.Context) []int {
	return a.grants(views, now)
}

// grantAll returns an allocator granting every job the same replica count.
func grantAll(k int) scriptAlloc {
	return scriptAlloc{grants: func(views []policy.ElasticJobView, _ simtime.Time) []int {
		g := make([]int, len(views))
		for i := range g {
			g[i] = k
		}
		return g
	}}
}

func elasticConfig(tr *carbon.Trace, p policy.Policy, et *workload.ElasticTrace, alloc policy.ElasticAllocator) Config {
	cfg := baseConfig(tr, p)
	cfg.Elastic = et
	cfg.Allocator = alloc
	return cfg
}

// A 4-hour unit-CPU job with a linear curve scaled to 4 replicas at the
// first hour boundary: 1 replica for the first hour does 60 of 240
// unit-minutes, then 4 replicas finish the remaining 180 in 45 minutes.
// CPU-time is conserved (flat curve), carbon and cost follow the
// round-number fixture exactly.
func TestElasticLinearSpeedupHandChecked(t *testing.T) {
	tr := flatTrace(48, 100)
	et := workload.MustElasticTrace("lin", []workload.Job{
		{Arrival: 0, Length: 4 * simtime.Hour, CPUs: 1},
	}, []workload.ElasticSpec{
		{MinReplicas: 1, MaxReplicas: 4, Curve: workload.ScaleCurve{1, 1, 1, 1}},
	}, nil)
	res, err := Run(elasticConfig(tr, policy.NoWait{}, et, grantAll(4)), et.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.Start != 0 || j.Finish != simtime.Time(105*simtime.Minute) {
		t.Errorf("timing: start %v finish %v, want 0/105", j.Start, j.Finish)
	}
	if want := simtime.Duration(-135); j.Waiting != want {
		t.Errorf("waiting %v, want %v (elastic speedup)", j.Waiting, want)
	}
	// 1 CPU·h serial + 3 CPU·h wide = 4 CPU·h at CI 100 → 4 g, $4 on-demand.
	if math.Abs(j.Carbon-4) > 1e-9 || math.Abs(j.UsageCost-4) > 1e-9 {
		t.Errorf("carbon %v cost %v, want 4/4", j.Carbon, j.UsageCost)
	}
	if hrs := j.CPUHours[cloud.OnDemand]; math.Abs(hrs-4) > 1e-9 { // all on-demand
		t.Errorf("on-demand CPU hours %v, want 4", hrs)
	}
}

// A sublinear curve pays extra CPU-time for the speedup: 2 replicas at
// marginal 0.5 process 1.5 unit-minutes per minute but burn 2 CPU-minutes.
func TestElasticSublinearBurnsExtraCPU(t *testing.T) {
	tr := flatTrace(48, 100)
	et := workload.MustElasticTrace("sub", []workload.Job{
		{Arrival: 0, Length: 2 * simtime.Hour, CPUs: 1},
	}, []workload.ElasticSpec{
		{MinReplicas: 2, MaxReplicas: 2, Curve: workload.ScaleCurve{1, 0.5}},
	}, nil)
	res, err := Run(elasticConfig(tr, policy.NoWait{}, et, policy.StaticAlloc{}), et.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	// 120 unit-minutes at rate 1.5 → 80 minutes on 2 CPUs.
	if j.Finish != 80 {
		t.Errorf("finish %v, want 80", j.Finish)
	}
	if want := 2 * 80.0 / 60; math.Abs(j.CPUHours[cloud.OnDemand]-want) > 1e-9 {
		t.Errorf("CPU hours %v, want %v", j.CPUHours[cloud.OnDemand], want)
	}
}

// Suspend at the first boundary, resume at the second: a preemptible job
// (Min 0) pauses for exactly one hour and its completion slips by it.
func TestElasticSuspendResumeHandChecked(t *testing.T) {
	tr := flatTrace(48, 100)
	et := workload.MustElasticTrace("pre", []workload.Job{
		{Arrival: 0, Length: 3 * simtime.Hour, CPUs: 1},
	}, []workload.ElasticSpec{
		{MinReplicas: 0, MaxReplicas: 1, Curve: workload.ScaleCurve{1}},
	}, nil)
	alloc := scriptAlloc{grants: func(views []policy.ElasticJobView, now simtime.Time) []int {
		if now == simtime.Time(simtime.Hour) {
			return []int{0} // suspend for the second hour
		}
		return []int{1}
	}}
	res, err := Run(elasticConfig(tr, policy.NoWait{}, et, alloc), et.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.Finish != simtime.Time(4*simtime.Hour) || j.Waiting != simtime.Hour {
		t.Errorf("finish %v waiting %v, want 4h/1h", j.Finish, j.Waiting)
	}
	// Only 3 CPU·h of actual execution billed.
	if math.Abs(j.CPUHours[cloud.OnDemand]-3) > 1e-9 {
		t.Errorf("CPU hours %v, want 3", j.CPUHours[cloud.OnDemand])
	}
}

// An always-suspend allocator cannot starve a job past its queue's
// waiting-time guarantee: the deadline forcibly resumes it at base width,
// so the run terminates.
func TestElasticSuspensionDeadline(t *testing.T) {
	tr := flatTrace(24*10, 100)
	et := workload.MustElasticTrace("starve", []workload.Job{
		{Arrival: 0, Length: simtime.Hour, CPUs: 1},
	}, []workload.ElasticSpec{
		{MinReplicas: 0, MaxReplicas: 1, Curve: workload.ScaleCurve{1}},
	}, nil)
	cfg := elasticConfig(tr, policy.NoWait{}, et, grantAll(0))
	cfg.WaitShort = 2 * simtime.Hour
	res, err := Run(cfg, et.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	// Runs [0,60), suspends at 60 (deadline 120 still ahead), forcibly
	// resumes at 120 and cannot be re-suspended: finishes at 180... except
	// the first segment already did the whole hour of work minus nothing —
	// it suspends at the tick with 0 remaining? No: the finish event at 60
	// fires before the tick at 60 (PriorityFinish < PriorityLow), so the
	// job completes untouched.
	if j.Finish != simtime.Time(simtime.Hour) {
		t.Errorf("finish %v, want 1h (finish outranks the tick)", j.Finish)
	}

	// A 90-minute job straddles the boundary: suspended at 60 and 120 is
	// past the 2 h deadline guard only at 120, so it resumes there and
	// finishes at 150.
	et2 := workload.MustElasticTrace("starve2", []workload.Job{
		{Arrival: 0, Length: 90 * simtime.Minute, CPUs: 1},
	}, []workload.ElasticSpec{
		{MinReplicas: 0, MaxReplicas: 1, Curve: workload.ScaleCurve{1}},
	}, nil)
	cfg2 := elasticConfig(tr, policy.NoWait{}, et2, grantAll(0))
	cfg2.WaitShort = 2 * simtime.Hour
	res2, err := Run(cfg2, et2.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Jobs[0].Finish; got != simtime.Time(150*simtime.Minute) {
		t.Errorf("finish %v, want 150 (deadline-forced resume at 120)", got)
	}
}

// DAG precedence: the successor starts only when its predecessor finishes,
// regardless of its own earlier arrival, and its waiting reflects the
// inherited delay.
func TestElasticDAGChainHandChecked(t *testing.T) {
	tr := flatTrace(48, 100)
	et := workload.MustElasticTrace("chain", []workload.Job{
		{Arrival: 0, Length: 2 * simtime.Hour, CPUs: 1},
		{Arrival: 0, Length: simtime.Hour, CPUs: 1},
		{Arrival: 0, Length: simtime.Hour, CPUs: 1},
	}, []workload.ElasticSpec{
		workload.DegenerateSpec(), workload.DegenerateSpec(), workload.DegenerateSpec(),
	}, []workload.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	res, err := Run(elasticConfig(tr, policy.NoWait{}, et, policy.StaticAlloc{}), et.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	starts := []simtime.Time{0, simtime.Time(2 * simtime.Hour), simtime.Time(3 * simtime.Hour)}
	for i, want := range starts {
		if res.Jobs[i].Start != want {
			t.Errorf("job %d starts %v, want %v", i, res.Jobs[i].Start, want)
		}
	}
	if w := res.Jobs[2].Waiting; w != 3*simtime.Hour {
		t.Errorf("job 2 waiting %v, want 3h (inherited precedence delay)", w)
	}
}

// A predecessor finishing before the successor arrives releases it at
// arrival (ready = max(arrival, last predecessor finish)).
func TestElasticDAGLateArrival(t *testing.T) {
	tr := flatTrace(48, 100)
	et := workload.MustElasticTrace("late", []workload.Job{
		{Arrival: 0, Length: simtime.Hour, CPUs: 1},
		{Arrival: simtime.Time(5 * simtime.Hour), Length: simtime.Hour, CPUs: 1},
	}, []workload.ElasticSpec{
		workload.DegenerateSpec(), workload.DegenerateSpec(),
	}, []workload.Edge{{Src: 0, Dst: 1}})
	res, err := Run(elasticConfig(tr, policy.NoWait{}, et, policy.StaticAlloc{}), et.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[1].Start; got != simtime.Time(5*simtime.Hour) {
		t.Errorf("successor starts %v, want its own arrival 5h", got)
	}
	if w := res.Jobs[1].Waiting; w != 0 {
		t.Errorf("successor waiting %v, want 0", w)
	}
}

// Run rejects an elastic trace that does not wrap the run's workload.
func TestElasticTraceMismatchRejected(t *testing.T) {
	tr := flatTrace(48, 100)
	et := workload.Degenerate(oneJob(simtime.Hour, 1))
	other := oneJob(2*simtime.Hour, 1)
	cfg := elasticConfig(tr, policy.NoWait{}, et, nil)
	if _, err := Run(cfg, other); err == nil {
		t.Fatal("mismatched elastic trace accepted")
	}
}

// Managed elastic jobs are incompatible with the mechanisms that fight
// over finish events; degenerate traces keep every combination.
func TestElasticValidationRules(t *testing.T) {
	tr := flatTrace(48, 100)
	managed := workload.MustElasticTrace("m", []workload.Job{
		{Arrival: 0, Length: simtime.Hour, CPUs: 1},
	}, []workload.ElasticSpec{
		{MinReplicas: 1, MaxReplicas: 2, Curve: workload.ScaleCurve{1, 0.5}},
	}, nil)
	bad := []func(*Config){
		func(c *Config) { c.WorkConserving = true; c.Reserved = 4 },
		func(c *Config) { c.SpotMaxLen = 4 * simtime.Hour; c.EvictionRate = 0.1 },
		func(c *Config) { c.Policy = policy.WaitAwhile{} },
		func(c *Config) { c.Policy = policy.Ecovisor{} },
		func(c *Config) { c.ElasticCapacity = -1 },
	}
	for i, mutate := range bad {
		cfg := elasticConfig(tr, policy.NoWait{}, managed, nil)
		mutate(&cfg)
		if _, err := Run(cfg, managed.Jobs); err == nil {
			t.Errorf("case %d: invalid elastic config accepted", i)
		}
	}
	// The same knobs are fine when nothing is managed.
	degen := workload.Degenerate(managed.Jobs)
	cfg := elasticConfig(tr, policy.NoWait{}, degen, nil)
	cfg.SpotMaxLen = 4 * simtime.Hour
	cfg.EvictionRate = 0.1
	if _, err := Run(cfg, degen.Jobs); err != nil {
		t.Errorf("degenerate elastic + spot rejected: %v", err)
	}
}

// encodedResult is the byte-level pin used by the differentials below.
func encodedResult(t *testing.T, cfg Config, jobs *workload.Trace) ([]byte, *metrics.Result) {
	t.Helper()
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return metrics.EncodeAccumulator(res.Accumulator()), res
}

// TestElasticDegenerateMatchesRigid is the tentpole differential: under
// ForceElasticDegenerate every rigid run is wrapped in an all-degenerate
// ElasticTrace, and the results must be byte-identical to the unwrapped
// run across every mechanism the rigid path supports — including spot,
// work conservation and plan policies, which the wrap must leave alone.
func TestElasticDegenerateMatchesRigid(t *testing.T) {
	tr, jobs := randomInstance(55)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nowait", func(c *Config) { c.Policy = policy.NoWait{} }},
		{"carbon-time", func(c *Config) { c.Policy = policy.CarbonTime{} }},
		{"lowest-window", func(c *Config) { c.Policy = policy.LowestWindow{} }},
		{"critical-path", func(c *Config) { c.Policy = policy.CriticalPathShift{} }},
		{"work-conserving", func(c *Config) {
			c.Policy = policy.AllWait{}
			c.Reserved = 30
			c.WorkConserving = true
		}},
		{"spot", func(c *Config) {
			c.Policy = policy.LowestSlot{}
			c.SpotMaxLen = 4 * simtime.Hour
			c.EvictionRate = 0.25
			c.Seed = 9
		}},
		{"checkpointed-spot", func(c *Config) {
			c.Policy = policy.LowestSlot{}
			c.SpotMaxLen = 4 * simtime.Hour
			c.EvictionRate = 0.25
			c.CheckpointInterval = 30 * simtime.Minute
			c.Seed = 9
		}},
		{"plan-waitawhile", func(c *Config) { c.Policy = policy.WaitAwhile{} }},
		{"plan-ecovisor", func(c *Config) { c.Policy = policy.Ecovisor{} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig(tr, nil)
			tc.mutate(&cfg)
			rigidBytes, rigidRes := encodedResult(t, cfg, jobs)
			ForceElasticDegenerate(true)
			defer ForceElasticDegenerate(false)
			elasticBytes, elasticRes := encodedResult(t, cfg, jobs)
			if !bytes.Equal(rigidBytes, elasticBytes) {
				t.Error("degenerate elastic accumulator differs from rigid run")
			}
			if !reflect.DeepEqual(rigidRes.Jobs, elasticRes.Jobs) {
				t.Error("degenerate elastic per-job records differ from rigid run")
			}
		})
	}
}

// randomElasticInstance builds a seeded malleable+DAG workload over the
// paper's Alibaba arrival process: a mix of degenerate, scalable and
// preemptible specs plus forward precedence edges (arrival-ordered, hence
// acyclic by construction).
func randomElasticInstance(seed int64, n int) (*carbon.Trace, *workload.ElasticTrace) {
	r := newRand(seed)
	tr := carbon.RegionSAAU.Generate(24*14, seed)
	jobs := workload.AlibabaPAIWeek().GenerateByCount(newRand(seed+100), n, simtime.Week)
	specs := make([]workload.ElasticSpec, len(jobs.Jobs))
	for i := range specs {
		switch r.Intn(4) {
		case 0:
			specs[i] = workload.DegenerateSpec()
		case 1: // scalable
			max := 2 + r.Intn(6)
			specs[i] = workload.ElasticSpec{
				MinReplicas: 1, MaxReplicas: max,
				Curve: workload.AmdahlCurve(0.5+0.45*r.Float64(), max),
			}
		case 2: // preemptible and scalable
			max := 2 + r.Intn(3)
			specs[i] = workload.ElasticSpec{
				MinReplicas: 0, MaxReplicas: max,
				Curve: workload.AmdahlCurve(0.6+0.3*r.Float64(), max),
			}
		case 3: // preemptible only
			specs[i] = workload.ElasticSpec{MinReplicas: 0, MaxReplicas: 1, Curve: workload.ScaleCurve{1}}
		}
	}
	seen := map[workload.Edge]bool{}
	var edges []workload.Edge
	for k := 0; k < n/2; k++ {
		i := r.Intn(len(jobs.Jobs) - 1)
		j := i + 1 + r.Intn(len(jobs.Jobs)-1-i)
		e := workload.Edge{Src: i, Dst: j}
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	return tr, workload.MustElasticTrace("elastic-rand", jobs.Jobs, specs, edges)
}

// stormAlloc is a deterministic pseudo-random allocator: grants depend
// only on (seed, job ID, now), including over-max and zero grants, so the
// clamping rules are exercised identically on wheel and heap.
type stormAlloc struct{ seed uint64 }

func (stormAlloc) Name() string { return "storm" }

func (a stormAlloc) Allocate(views []policy.ElasticJobView, now simtime.Time, _ int, _ *policy.Context) []int {
	grants := make([]int, len(views))
	for i, v := range views {
		h := a.seed ^ uint64(v.ID)*0x9E3779B97F4A7C15 ^ uint64(now)*0xBF58476D1CE4E5B9
		h ^= h >> 31
		h *= 0x94D049BB133111EB
		h ^= h >> 29
		grants[i] = int(h % uint64(v.Max+2)) // 0..Max+1: suspends and over-grants
	}
	return grants
}

// runWheelAndHeap runs the same elastic config on the timing wheel and on
// the reference heap queue and returns both encodings.
func runWheelAndHeap(t *testing.T, cfg Config, jobs *workload.Trace) (wheel, heapB []byte) {
	t.Helper()
	wheel, _ = encodedResult(t, cfg, jobs)
	ForceHeapEngine(true)
	defer ForceHeapEngine(false)
	heapB, _ = encodedResult(t, cfg, jobs)
	return wheel, heapB
}

// TestElasticStormWheelVsHeap replays a resize/suspend storm — random
// specs, DAG edges and adversarial pseudo-random grants — on both event
// queues; the Reschedule/Cancel traffic must order identically.
func TestElasticStormWheelVsHeap(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		tr, et := randomElasticInstance(seed, 60)
		cfg := elasticConfig(tr, policy.CarbonTime{}, et, stormAlloc{seed: uint64(seed)})
		cfg.Reserved = 40
		wheel, heapB := runWheelAndHeap(t, cfg, et.Jobs)
		if !bytes.Equal(wheel, heapB) {
			t.Errorf("seed %d: wheel and heap diverge under elastic storm", seed)
		}
	}
}

// FuzzElasticWheelVsHeap extends the storm differential to fuzzed seeds,
// allocator behaviours and policies.
func FuzzElasticWheelVsHeap(f *testing.F) {
	f.Add(int64(1), uint64(7), uint8(0))
	f.Add(int64(2), uint64(99), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, allocSeed uint64, policyPick uint8) {
		pols := []policy.Policy{policy.NoWait{}, policy.CarbonTime{}, policy.CriticalPathShift{}}
		tr, et := randomElasticInstance(seed, 30)
		cfg := elasticConfig(tr, pols[int(policyPick)%len(pols)], et, stormAlloc{seed: allocSeed})
		cfg.Reserved = int(allocSeed % 32)
		wheel, heapB := runWheelAndHeap(t, cfg, et.Jobs)
		if !bytes.Equal(wheel, heapB) {
			t.Fatal("wheel and heap diverge")
		}
	})
}

// The GreedyMarginal allocator on real traces must conserve work: total
// useful CPU-time can grow (sublinear scaling) but carbon accounting and
// job counts stay consistent, and every job still finishes.
func TestElasticGreedyMarginalCompletes(t *testing.T) {
	tr, et := randomElasticInstance(11, 80)
	cfg := elasticConfig(tr, policy.CarbonTime{}, et, policy.GreedyMarginal{})
	cfg.Reserved = 50
	cfg.ElasticCapacity = 50
	res, err := Run(cfg, et.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.JobCount(); got != et.Len() {
		t.Fatalf("%d of %d jobs finished", got, et.Len())
	}
	for _, j := range res.Jobs {
		if j.Finish <= j.Start {
			t.Errorf("job %d has empty execution [%v,%v]", j.JobID, j.Start, j.Finish)
		}
	}
}

// Elastic configs must never ride the direct path or the decision-plan
// cache: decisions observe schedule state (precedence releases, hourly
// reallocation) the replay cannot model.
func TestElasticPathAndFingerprintGuards(t *testing.T) {
	tr, jobs := randomInstance(31)
	degen := workload.Degenerate(jobs)

	cfg := baseConfig(tr, policy.CarbonTime{})
	cfg.RetainJobs = false
	cfg.Elastic = degen
	if cfg.DirectPathEligible() {
		t.Error("elastic config is direct-path eligible")
	}
	if tookDirectPath(t, cfg, jobs) {
		t.Error("elastic run took the direct path")
	}
	if _, ok := cfg.DecisionFingerprint(jobs); ok {
		t.Error("elastic config has a decision fingerprint")
	}

	// The full fingerprint still works (known allocator) but must differ
	// from the rigid config's: the cache may never serve a rigid result
	// for an elastic cell or vice versa.
	rigid := baseConfig(tr, policy.CarbonTime{})
	rigid.RetainJobs = false
	rfp, ok := rigid.Fingerprint(jobs)
	if !ok {
		t.Fatal("rigid config not fingerprintable")
	}
	efp, ok := cfg.Fingerprint(jobs)
	if !ok {
		t.Fatal("degenerate elastic config not fingerprintable")
	}
	if rfp == efp {
		t.Error("elastic and rigid configs collide")
	}

	// Allocator identity and capacity are part of the key.
	alt := cfg
	alt.Allocator = policy.GreedyMarginal{}
	afp, ok := alt.Fingerprint(jobs)
	if !ok {
		t.Fatal("greedy-marginal config not fingerprintable")
	}
	if afp == efp {
		t.Error("allocator change did not change the fingerprint")
	}
	capCfg := cfg
	capCfg.ElasticCapacity = 16
	cfp2, ok := capCfg.Fingerprint(jobs)
	if !ok {
		t.Fatal("capacity config not fingerprintable")
	}
	if cfp2 == efp {
		t.Error("capacity change did not change the fingerprint")
	}

	// Unknown allocator implementations are opaque: not cacheable.
	opaque := cfg
	opaque.Allocator = grantAll(1)
	if _, ok := opaque.Fingerprint(jobs); ok {
		t.Error("unknown allocator fingerprinted")
	}

	// The degenerate seam, like every Force* override, disables caching.
	ForceElasticDegenerate(true)
	defer ForceElasticDegenerate(false)
	if _, ok := rigid.Fingerprint(jobs); ok {
		t.Error("ForceElasticDegenerate did not disable the simulation fingerprint")
	}
	if _, ok := rigid.DecisionFingerprint(jobs); ok {
		t.Error("ForceElasticDegenerate did not disable the decision fingerprint")
	}
}

// CriticalPathShift is policy tag 9 in the frozen registry.
func TestCriticalPathShiftCacheable(t *testing.T) {
	tag, _, ok := policyIdentity(policy.CriticalPathShift{})
	if !ok || tag != 9 {
		t.Errorf("policyIdentity(CriticalPathShift) = %d,%v, want 9,true", tag, ok)
	}
}
