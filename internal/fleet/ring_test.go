package fleet

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

// key derives a deterministic test fingerprint — uniform like the real
// cell fingerprints, which are sha256 output themselves.
func key(i int) [32]byte {
	return sha256.Sum256([]byte(fmt.Sprintf("cell-%d", i)))
}

// TestRingOrderInsensitive pins that member argument order is invisible:
// ownership is a pure function of the member *set*.
func TestRingOrderInsensitive(t *testing.T) {
	a := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	b := NewRing([]string{"http://c", "http://a", "http://b", "http://a", ""}, 0)
	for i := 0; i < 1000; i++ {
		k := key(i)
		if got, want := b.Owner(k), a.Owner(k); got != want {
			t.Fatalf("key %d: owner %q with reordered members, %q originally", i, got, want)
		}
	}
}

// TestRingDeterministicAcrossProcesses pins golden owners for fixed keys.
// Ownership is a pure function of (members, vnode count, key) — no map
// iteration order, randomness or process state participates — so these
// constants hold in any process on any platform; a change here means the
// hash layout changed and every deployed fleet would re-shard.
func TestRingDeterministicAcrossProcesses(t *testing.T) {
	r := NewRing([]string{"http://replica-a:8404", "http://replica-b:8404", "http://replica-c:8404"}, 0)
	golden := map[int]string{
		0: "http://replica-b:8404",
		1: "http://replica-c:8404",
		2: "http://replica-c:8404",
		3: "http://replica-b:8404",
		4: "http://replica-a:8404",
		5: "http://replica-b:8404",
		6: "http://replica-a:8404",
		7: "http://replica-c:8404",
	}
	for i, want := range golden {
		if got := r.Owner(key(i)); got != want {
			t.Errorf("Owner(key(%d)) = %q, want %q", i, got, want)
		}
	}
}

// TestRingRedistribution checks the consistent-hashing contract on
// membership change: a join moves only keys that land on the new member
// (~K/n of them), a leave moves only keys the departed member owned.
func TestRingRedistribution(t *testing.T) {
	const K = 20000
	members := []string{"http://a", "http://b", "http://c", "http://d", "http://e"}
	before := NewRing(members, 0)

	t.Run("join", func(t *testing.T) {
		after := NewRing(append(append([]string(nil), members...), "http://f"), 0)
		moved := 0
		for i := 0; i < K; i++ {
			k := key(i)
			was, is := before.Owner(k), after.Owner(k)
			if was == is {
				continue
			}
			moved++
			if is != "http://f" {
				t.Fatalf("key %d moved %q → %q, not to the joining member", i, was, is)
			}
		}
		ideal := K / (len(members) + 1)
		if moved == 0 || moved > 2*ideal {
			t.Fatalf("join moved %d of %d keys; want ~%d (bounded by 2x)", moved, K, ideal)
		}
	})

	t.Run("leave", func(t *testing.T) {
		after := NewRing(members[:len(members)-1], 0) // drop http://e
		moved := 0
		for i := 0; i < K; i++ {
			k := key(i)
			was, is := before.Owner(k), after.Owner(k)
			if was == is {
				continue
			}
			moved++
			if was != "http://e" {
				t.Fatalf("key %d moved %q → %q although its owner stayed in the ring", i, was, is)
			}
		}
		ideal := K / len(members)
		if moved == 0 || moved > 2*ideal {
			t.Fatalf("leave moved %d of %d keys; want ~%d (bounded by 2x)", moved, K, ideal)
		}
	})
}

// TestRingBalance checks that vnode spreading keeps per-member shares
// within a reasonable band of uniform.
func TestRingBalance(t *testing.T) {
	const K = 30000
	members := []string{"http://a", "http://b", "http://c"}
	r := NewRing(members, 0)
	counts := make(map[string]int)
	for i := 0; i < K; i++ {
		counts[r.Owner(key(i))]++
	}
	ideal := K / len(members)
	for m, n := range counts {
		if n < ideal/2 || n > 2*ideal {
			t.Errorf("member %s owns %d of %d keys; want within [%d, %d]", m, n, K, ideal/2, 2*ideal)
		}
	}
}

// TestRingEmpty pins the degenerate cases.
func TestRingEmpty(t *testing.T) {
	if got := NewRing(nil, 0).Owner(key(1)); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	one := NewRing([]string{"http://solo"}, 0)
	for i := 0; i < 100; i++ {
		if got := one.Owner(key(i)); got != "http://solo" {
			t.Fatalf("single-member ring owner = %q", got)
		}
	}
}
