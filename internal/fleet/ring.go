// Package fleet turns a set of gaia-serve replicas (or standalone
// gaia-cached nodes) into one shared simulation-result cache tier. The
// pieces compose around internal/runcache's RemoteStore seam:
//
//   - Ring: a consistent-hash ring mapping each cell fingerprint
//     (core.Config.Fingerprint) to exactly one owner member, so identical
//     cells land on the same replica no matter which replica received the
//     request — single-flight dedup, which stops at a process boundary,
//     becomes global because every replica asks the same owner.
//   - BlobStore: one member's shard of the tier — encoded accumulators
//     (the internal/metrics codec, already versioned and checksummed, is
//     the wire format) held in memory with an optional disk directory.
//   - CacheServer: the minimal HTTP protocol over a BlobStore
//     (GET/PUT /v1/cache/{fingerprint-hex}).
//   - Client: the runcache.RemoteStore implementation that routes each
//     fingerprint through the Ring, short-circuiting to the local shard
//     when this member owns the key.
//
// The tier is an accelerator, never a dependency: every Client error or
// timeout degrades to local compute (runcache logs and recomputes), so a
// dead peer costs latency on the cells it owned, not availability.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVnodes is the default number of virtual nodes per member. 128
// vnodes keep the share spread of a small fleet within a few percent of
// uniform while the ring stays small enough to rebuild on every
// membership change.
const DefaultVnodes = 128

// Ring is an immutable consistent-hash ring over named members. Build
// with NewRing; methods are safe for concurrent use.
//
// Determinism is part of the contract: two processes constructing a Ring
// from the same member list (any order) and vnode count route every key
// identically, because vnode positions are pure FNV-1a hashes of
// "member#index" and key positions are read straight out of the
// fingerprint bytes. No process-local state (map order, randomness,
// pointer values) participates.
type Ring struct {
	vnodes  []vnode
	members []string
}

type vnode struct {
	pos    uint64
	member int32
}

// NewRing builds a ring over members with vnodesPerMember virtual nodes
// each (DefaultVnodes when <= 0). Duplicate member names are collapsed;
// an empty member list yields a ring whose Owner returns "".
func NewRing(members []string, vnodesPerMember int) *Ring {
	if vnodesPerMember <= 0 {
		vnodesPerMember = DefaultVnodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	// Sort so the member index — and thus nothing observable — depends on
	// the caller's argument order.
	sort.Strings(uniq)
	r := &Ring{
		members: uniq,
		vnodes:  make([]vnode, 0, len(uniq)*vnodesPerMember),
	}
	for mi, m := range uniq {
		for i := 0; i < vnodesPerMember; i++ {
			r.vnodes = append(r.vnodes, vnode{pos: vnodePos(m, i), member: int32(mi)})
		}
	}
	sort.Slice(r.vnodes, func(a, b int) bool {
		if r.vnodes[a].pos != r.vnodes[b].pos {
			return r.vnodes[a].pos < r.vnodes[b].pos
		}
		// Position collisions are settled by member name, keeping the
		// order independent of the (already deterministic) input order.
		return r.members[r.vnodes[a].member] < r.members[r.vnodes[b].member]
	})
	return r
}

// vnodePos places one virtual node on the ring: sha256 over the member
// name and the vnode index, stable across processes and platforms. A
// cryptographic hash is deliberate — weaker mixers (FNV over near-equal
// strings) cluster the vnodes and skew member shares badly; sha256 runs
// only at ring-build time, so its cost is irrelevant.
func vnodePos(member string, index int) uint64 {
	h := sha256.New()
	h.Write([]byte(member))
	h.Write([]byte{'#'})
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(index))
	h.Write(buf[:])
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the member that owns key, or "" for an empty ring. Keys
// are cell fingerprints — already uniform sha256 output — so their ring
// position is simply the first eight bytes.
func (r *Ring) Owner(key [32]byte) string {
	if len(r.vnodes) == 0 {
		return ""
	}
	pos := binary.BigEndian.Uint64(key[:8])
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].pos >= pos })
	if i == len(r.vnodes) {
		i = 0 // wrap: keys past the last vnode belong to the first
	}
	return r.members[r.vnodes[i].member]
}

// Members returns the deduplicated, sorted member list.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// String summarizes the ring for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("fleet.Ring{%d members, %d vnodes}", len(r.members), len(r.vnodes))
}
