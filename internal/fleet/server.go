package fleet

import (
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"

	"github.com/carbonsched/gaia/internal/metrics"
)

// MaxBlobBytes bounds one cache entry on the wire. A 200k-job cell — the
// largest /v1/simulate accepts — encodes to ~10 MB; 64 MB leaves headroom
// without letting a confused client buffer gigabytes.
const MaxBlobBytes = 64 << 20

// CacheServer speaks the tier's minimal HTTP protocol over one member's
// BlobStore:
//
//	GET /v1/cache/{fp}    → 200 + raw blob | 404
//	PUT /v1/cache/{fp}    → 204 | 400 (bad key or blob) | 413 (too large)
//	GET /v1/cache/stats   → 200 + JSON StoreStats
//
// {fp} is the 64-hex-char cell fingerprint. Blobs are the internal/metrics
// accumulator codec — already versioned and checksummed — so the wire
// format needs no envelope of its own. PUT bodies are strictly validated:
// a blob that does not decode is rejected with 400, which keeps one
// misbehaving replica from poisoning the shard (peers would only detect
// the damage at read time, as a recompute).
type CacheServer struct {
	store *BlobStore
}

// NewCacheServer wraps store in the HTTP protocol.
func NewCacheServer(store *BlobStore) *CacheServer { return &CacheServer{store: store} }

// Register mounts the protocol on mux.
func (cs *CacheServer) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/cache/stats", cs.handleStats)
	mux.HandleFunc("GET /v1/cache/{fp}", cs.handleGet)
	mux.HandleFunc("PUT /v1/cache/{fp}", cs.handlePut)
}

// Handler returns a standalone handler serving only the cache protocol
// (cmd/gaia-cached).
func (cs *CacheServer) Handler() http.Handler {
	mux := http.NewServeMux()
	cs.Register(mux)
	return mux
}

// parseFingerprint decodes the path's {fp} element: exactly 64 hex chars.
func parseFingerprint(s string) (fp [32]byte, ok bool) {
	if len(s) != 64 {
		return fp, false
	}
	if _, err := hex.Decode(fp[:], []byte(s)); err != nil {
		return fp, false
	}
	return fp, true
}

func (cs *CacheServer) handleGet(w http.ResponseWriter, r *http.Request) {
	fp, ok := parseFingerprint(r.PathValue("fp"))
	if !ok {
		http.Error(w, "bad fingerprint", http.StatusBadRequest)
		return
	}
	blob := cs.store.Get(fp)
	if blob == nil {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

func (cs *CacheServer) handlePut(w http.ResponseWriter, r *http.Request) {
	fp, ok := parseFingerprint(r.PathValue("fp"))
	if !ok {
		http.Error(w, "bad fingerprint", http.StatusBadRequest)
		return
	}
	blob, err := io.ReadAll(io.LimitReader(r.Body, MaxBlobBytes+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(blob) > MaxBlobBytes {
		http.Error(w, "blob exceeds size limit", http.StatusRequestEntityTooLarge)
		return
	}
	if _, err := metrics.DecodeAccumulator(blob); err != nil {
		http.Error(w, "invalid blob: "+err.Error(), http.StatusBadRequest)
		return
	}
	cs.store.Put(fp, blob)
	w.WriteHeader(http.StatusNoContent)
}

func (cs *CacheServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	b, _ := json.Marshal(cs.store.Stats())
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}
