package fleet

import (
	"encoding/hex"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"github.com/carbonsched/gaia/internal/metrics"
)

// DefaultMaxBytes bounds a shard's in-memory footprint: 256 MB of encoded
// accumulators (a 1000-job cell encodes to ~50 KB, so roughly 5000 warm
// cells per member).
const DefaultMaxBytes = 256 << 20

// BlobStore is one member's shard of the shared cache tier: encoded
// accumulators keyed by cell fingerprint, held in memory with FIFO
// eviction under a byte budget, optionally written through to a disk
// directory so a restarted member comes back warm. All methods are safe
// for concurrent use.
//
// The store treats blobs as opaque at this layer — CacheServer validates
// them against the metrics codec on the way in, and every reader decodes
// (and checksums) on the way out, so a corrupt entry costs a recompute,
// never a wrong answer.
type BlobStore struct {
	// Logf receives diagnostics about disk problems; defaults to
	// log.Printf. Never called on the happy path.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	m        map[[32]byte][]byte
	order    [][32]byte // insertion order, for FIFO eviction
	curBytes int64
	maxBytes int64
	dir      string

	hits, misses, puts, evictions int64
}

// NewBlobStore returns an empty in-memory shard bounded to maxBytes
// (DefaultMaxBytes when <= 0).
func NewBlobStore(maxBytes int64) *BlobStore {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &BlobStore{
		Logf:     log.Printf,
		m:        make(map[[32]byte][]byte),
		maxBytes: maxBytes,
	}
}

// SetDir attaches a write-through disk directory, creating it if needed.
// Entries evicted from memory remain readable from disk.
func (s *BlobStore) SetDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	s.mu.Lock()
	s.dir = dir
	s.mu.Unlock()
	return nil
}

// Get returns the stored blob for fp, or nil when absent. The returned
// slice must not be modified.
func (s *BlobStore) Get(fp [32]byte) []byte {
	s.mu.Lock()
	b, ok := s.m[fp]
	dir := s.dir
	if ok {
		s.hits++
	}
	s.mu.Unlock()
	if ok {
		return b
	}
	if dir != "" {
		if b := s.loadDisk(dir, fp); b != nil {
			s.mu.Lock()
			s.hits++
			s.mu.Unlock()
			return b
		}
	}
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
	return nil
}

// Put stores blob under fp, evicting the oldest entries if the byte
// budget is exceeded. The caller must not modify blob afterwards.
func (s *BlobStore) Put(fp [32]byte, blob []byte) {
	s.mu.Lock()
	if _, exists := s.m[fp]; !exists {
		s.m[fp] = blob
		s.order = append(s.order, fp)
		s.curBytes += int64(len(blob))
		s.puts++
		for s.curBytes > s.maxBytes && len(s.order) > 1 {
			old := s.order[0]
			s.order = s.order[1:]
			if b, ok := s.m[old]; ok {
				s.curBytes -= int64(len(b))
				delete(s.m, old)
				s.evictions++
			}
		}
	}
	dir := s.dir
	s.mu.Unlock()
	if dir != "" {
		s.storeDisk(dir, fp, blob)
	}
}

// Stats reports the shard's cumulative counters and current occupancy.
func (s *BlobStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Entries:   len(s.m),
		Bytes:     s.curBytes,
		Hits:      s.hits,
		Misses:    s.misses,
		Puts:      s.puts,
		Evictions: s.evictions,
	}
}

// StoreStats is one shard's occupancy and cumulative traffic counters.
type StoreStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
}

// blobPath names a disk entry. The metrics codec version is spelled out in
// the file name so entries written by an incompatible binary never match,
// mirroring runcache's disk-store convention.
func blobPath(dir string, fp [32]byte) string {
	return filepath.Join(dir, fmt.Sprintf("%s.c%d.gblob", hex.EncodeToString(fp[:]), metrics.CodecVersion))
}

// loadDisk fetches a disk entry, re-validating it against the codec —
// a blob that no longer decodes (torn write, bit rot) is dropped here
// rather than shipped to a peer. Absent files are silent.
func (s *BlobStore) loadDisk(dir string, fp [32]byte) []byte {
	path := blobPath(dir, fp)
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.Logf("fleet: reading %s: %v (treating as miss)", path, err)
		}
		return nil
	}
	if _, err := metrics.DecodeAccumulator(data); err != nil {
		s.Logf("fleet: decoding %s: %v (treating as miss)", path, err)
		return nil
	}
	return data
}

// storeDisk persists a blob atomically (temp file + rename), logging and
// otherwise ignoring failures — the disk tier is an accelerator.
func (s *BlobStore) storeDisk(dir string, fp [32]byte, blob []byte) {
	path := blobPath(dir, fp)
	if _, err := os.Stat(path); err == nil {
		return // already present; entries are content-addressed and immutable
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		s.Logf("fleet: creating temp entry in %s: %v", dir, err)
		return
	}
	if _, err := tmp.Write(blob); err == nil {
		err = tmp.Close()
		if err == nil {
			err = os.Rename(tmp.Name(), path)
		}
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		s.Logf("fleet: writing %s: %v", path, err)
	}
}
