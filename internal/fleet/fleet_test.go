package fleet

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// testBlob builds a small valid wire blob — an encoded accumulator with
// recognizable contents.
func testBlob(t testing.TB, jobs int) []byte {
	t.Helper()
	a := metrics.NewAccumulator(jobs, 2*simtime.Hour)
	for i := 0; i < jobs; i++ {
		a.AddJob(&metrics.JobResult{
			JobID: i, Waiting: simtime.Duration(i), Length: simtime.Hour,
			Carbon: float64(i) * 1.5, BaselineCarbon: float64(i) * 2,
			UsageCost: 0.25, Queue: workload.QueueShort,
		})
	}
	return metrics.EncodeAccumulator(a)
}

func TestBlobStoreRoundtrip(t *testing.T) {
	s := NewBlobStore(0)
	s.Logf = t.Logf
	fp := key(1)
	if got := s.Get(fp); got != nil {
		t.Fatalf("empty store returned %d bytes", len(got))
	}
	blob := testBlob(t, 3)
	s.Put(fp, blob)
	if got := s.Get(fp); !bytes.Equal(got, blob) {
		t.Fatalf("roundtrip mismatch: got %d bytes, want %d", len(got), len(blob))
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBlobStoreEviction(t *testing.T) {
	blob := testBlob(t, 2)
	// Budget for two entries; the third insert evicts the oldest.
	s := NewBlobStore(int64(2 * len(blob)))
	s.Logf = t.Logf
	s.Put(key(1), blob)
	s.Put(key(2), blob)
	s.Put(key(3), blob)
	if got := s.Get(key(1)); got != nil {
		t.Fatal("oldest entry survived past the byte budget")
	}
	for _, i := range []int{2, 3} {
		if got := s.Get(key(i)); got == nil {
			t.Fatalf("entry %d evicted although within budget", i)
		}
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestBlobStoreDiskSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	blob := testBlob(t, 4)
	s := NewBlobStore(0)
	s.Logf = t.Logf
	if err := s.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	s.Put(key(7), blob)

	restarted := NewBlobStore(0)
	restarted.Logf = t.Logf
	if err := restarted.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := restarted.Get(key(7)); !bytes.Equal(got, blob) {
		t.Fatalf("disk reload mismatch: got %d bytes, want %d", len(got), len(blob))
	}
}

func TestBlobStoreDiskCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	blob := testBlob(t, 4)
	s := NewBlobStore(0)
	var logged bool
	s.Logf = func(string, ...any) { logged = true }
	if err := s.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	s.storeDisk(dir, key(9), append(append([]byte(nil), blob...), 0xFF)) // trailing garbage
	if got := s.loadDisk(dir, key(9)); got != nil {
		t.Fatal("corrupt disk entry served")
	}
	if !logged {
		t.Fatal("corruption was not logged")
	}
}

func TestCacheServerProtocol(t *testing.T) {
	store := NewBlobStore(0)
	store.Logf = t.Logf
	ts := httptest.NewServer(NewCacheServer(store).Handler())
	defer ts.Close()
	blob := testBlob(t, 5)
	fpHex := strings.Repeat("ab", 32)

	do := func(method, path string, body []byte) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := do("GET", "/v1/cache/"+fpHex, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET miss = %d, want 404", resp.StatusCode)
	}
	if resp := do("PUT", "/v1/cache/"+fpHex, blob); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT valid = %d, want 204", resp.StatusCode)
	}
	resp := do("GET", "/v1/cache/"+fpHex, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET hit = %d, want 200", resp.StatusCode)
	}
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), blob) {
		t.Fatalf("GET body mismatch: %d bytes, want %d", got.Len(), len(blob))
	}

	if resp := do("PUT", "/v1/cache/"+fpHex, []byte("not an accumulator")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT invalid blob = %d, want 400", resp.StatusCode)
	}
	if resp := do("PUT", "/v1/cache/zz", blob); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT bad fingerprint = %d, want 400", resp.StatusCode)
	}
	if resp := do("GET", "/v1/cache/stats", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET stats = %d, want 200", resp.StatusCode)
	}
}

// TestClientRouting drives two members — one live HTTP peer and one
// "self" served from the local shard — and checks that every key reaches
// exactly its ring owner.
func TestClientRouting(t *testing.T) {
	peerStore := NewBlobStore(0)
	peerStore.Logf = t.Logf
	peer := httptest.NewServer(NewCacheServer(peerStore).Handler())
	defer peer.Close()

	selfStore := NewBlobStore(0)
	selfStore.Logf = t.Logf
	self := "http://self.invalid:0" // never dialed: self traffic short-circuits
	ring := NewRing([]string{self, peer.URL}, 0)
	c := NewClient(ring, self, selfStore)

	blob := testBlob(t, 2)
	ctx := context.Background()
	var selfKeys, peerKeys int
	for i := 0; i < 64; i++ {
		fp := key(i)
		if err := c.Put(ctx, fp, blob); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		got, err := c.Get(ctx, fp)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(got, blob) {
			t.Fatalf("get %d: %d bytes, want %d", i, len(got), len(blob))
		}
		if c.Owner(fp) == self {
			selfKeys++
			if selfStore.Get(fp) == nil {
				t.Fatalf("key %d owned by self missing from local shard", i)
			}
		} else {
			peerKeys++
			if peerStore.Get(fp) == nil {
				t.Fatalf("key %d owned by peer missing from peer shard", i)
			}
		}
	}
	if selfKeys == 0 || peerKeys == 0 {
		t.Fatalf("degenerate split: self=%d peer=%d", selfKeys, peerKeys)
	}
}

// TestClientDeadPeer pins degradation: a dead owner yields errors, not
// hangs — and a clean miss is (nil, nil), distinguishable from failure.
func TestClientDeadPeer(t *testing.T) {
	dead := "http://127.0.0.1:1" // reserved port, nothing listens
	c := NewClient(NewRing([]string{dead}, 0), "", nil)
	c.SetTimeout(200 * time.Millisecond)
	ctx := context.Background()
	start := time.Now()
	if _, err := c.Get(ctx, key(1)); err == nil {
		t.Fatal("get from dead peer succeeded")
	}
	if err := c.Put(ctx, key(1), testBlob(t, 1)); err == nil {
		t.Fatal("put to dead peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dead-peer operations took %v; timeout not applied", elapsed)
	}
}

// FuzzCacheWire feeds arbitrary fingerprints and bodies through the cache
// protocol: the server must answer every request with a sane status and
// never panic, and only blobs that strictly decode may be stored.
func FuzzCacheWire(f *testing.F) {
	valid := testBlob(f, 2)
	f.Add(strings.Repeat("ab", 32), valid)
	f.Add(strings.Repeat("ab", 32), valid[:len(valid)-3])    // truncated
	f.Add(strings.Repeat("ab", 32), append([]byte{}, 0x00))  // garbage
	f.Add("zz", valid)                                       // bad hex
	f.Add("abc", valid)                                      // bad length
	f.Add(strings.Repeat("AB", 32), []byte{})                // upper hex, empty body
	f.Add(strings.Repeat("ab", 32), append(valid, valid...)) // trailing garbage
	f.Fuzz(func(t *testing.T, fp string, body []byte) {
		store := NewBlobStore(0)
		store.Logf = func(string, ...any) {}
		h := NewCacheServer(store).Handler()

		put := httptest.NewRequest(http.MethodPut, "/v1/cache/"+sanitizePath(fp), bytes.NewReader(body))
		pw := httptest.NewRecorder()
		h.ServeHTTP(pw, put)
		switch pw.Code {
		case http.StatusNoContent:
			// Stored — must therefore decode strictly.
			if _, err := metrics.DecodeAccumulator(body); err != nil {
				t.Fatalf("stored a blob that does not decode: %v", err)
			}
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge, http.StatusNotFound, http.StatusMovedPermanently:
			// Rejected (404/301 when the path escapes the route).
		default:
			t.Fatalf("PUT answered unexpected status %d", pw.Code)
		}

		get := httptest.NewRequest(http.MethodGet, "/v1/cache/"+sanitizePath(fp), nil)
		gw := httptest.NewRecorder()
		h.ServeHTTP(gw, get)
		if gw.Code == http.StatusOK {
			if _, err := metrics.DecodeAccumulator(gw.Body.Bytes()); err != nil {
				t.Fatalf("served a blob that does not decode: %v", err)
			}
		}
	})
}

// sanitizePath keeps fuzzed fingerprints usable as a URL path element —
// the client always sends lower hex; the fuzz explores near that space
// without tripping net/http's request-line validation.
func sanitizePath(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r > ' ' && r < 0x7f && r != '/' && r != '?' && r != '#' && r != '%' {
			b.WriteRune(r)
		} else {
			b.WriteByte('x')
		}
	}
	if b.Len() == 0 {
		return "x"
	}
	return b.String()
}
