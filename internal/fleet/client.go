package fleet

import (
	"bytes"
	"context"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"time"
)

// DefaultTimeout caps one remote cache operation. The tier trades a hit
// against recomputing a cell locally (tens of milliseconds and up), so a
// peer that cannot answer in half a second is not worth waiting for.
const DefaultTimeout = 500 * time.Millisecond

// Client routes cache operations through the ring: every fingerprint has
// exactly one owner member, Get asks it, Put tells it. A member that is
// its own owner short-circuits to the local shard — no HTTP self-call.
//
// Client implements runcache.RemoteStore. Per that contract, errors are
// advisory: the caller logs and falls back to local compute, so a slow or
// dead owner degrades the cells it owns to cache misses, nothing more.
type Client struct {
	ring  *Ring
	self  string     // this member's ring name ("" for a pure client)
	local *BlobStore // this member's shard (nil for a pure client)
	hc    *http.Client
}

// NewClient builds the routing client. self and local identify this
// process's own membership: requests the ring routes to self are served
// from local directly. A non-member (gaia-load, tests) passes "" and nil.
// Members must be base URLs (http://host:port); they double as ring names.
func NewClient(ring *Ring, self string, local *BlobStore) *Client {
	return &Client{
		ring:  ring,
		self:  self,
		local: local,
		hc:    &http.Client{Timeout: DefaultTimeout},
	}
}

// SetTimeout overrides the per-operation timeout (tests).
func (c *Client) SetTimeout(d time.Duration) { c.hc.Timeout = d }

// Owner exposes the ring decision for observability and tests.
func (c *Client) Owner(fp [32]byte) string { return c.ring.Owner(fp) }

func cacheURL(owner string, fp [32]byte) string {
	return owner + "/v1/cache/" + hex.EncodeToString(fp[:])
}

// Get fetches the blob for fp from its owner; (nil, nil) is a clean miss.
func (c *Client) Get(ctx context.Context, fp [32]byte) ([]byte, error) {
	owner := c.ring.Owner(fp)
	if owner == "" {
		return nil, nil
	}
	if owner == c.self {
		return c.local.Get(fp), nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cacheURL(owner, fp), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		blob, err := io.ReadAll(io.LimitReader(resp.Body, MaxBlobBytes+1))
		if err != nil {
			return nil, err
		}
		if len(blob) > MaxBlobBytes {
			return nil, fmt.Errorf("fleet: %s returned an oversized blob", owner)
		}
		return blob, nil
	case http.StatusNotFound:
		return nil, nil
	default:
		return nil, fmt.Errorf("fleet: %s answered %s", owner, resp.Status)
	}
}

// Put offers the blob for fp to its owner. Best-effort by contract.
func (c *Client) Put(ctx context.Context, fp [32]byte, blob []byte) error {
	owner := c.ring.Owner(fp)
	if owner == "" {
		return nil
	}
	if owner == c.self {
		c.local.Put(fp, blob)
		return nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, cacheURL(owner, fp), bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.ContentLength = int64(len(blob))
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("fleet: %s answered %s to put", owner, resp.Status)
	}
	return nil
}
