package runcache

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/workload"
)

// The decision-plan tier.
//
// The result cache (cache.go) shares work only between byte-identical
// cells. The plan tier shares the *decide phase* across cells that differ
// in accounting knobs only — a 20-point reserved sweep, a carbon-tax sweep
// — keyed by core.Config.DecisionFingerprint: the first cell decides every
// job and publishes the start-time column as an immutable
// core.DecisionPlan; every later cell replays the sweep-line and
// accounting phases over the shared plan under its own knobs
// (core.RunWithPlan), bit-identical to a full run. Like the result tiers,
// plans are single-flight in memory, persisted to the cache directory
// under the plan codec, and errors are never cached. A plan that fails to
// decode or replay is discarded and the cell recomputes from scratch — a
// bad artifact can cost time, never correctness.

// planEntry is one decision fingerprint's single-flight slot; the leader
// closes done after setting plan or err.
type planEntry struct {
	done chan struct{}
	plan *core.DecisionPlan
	err  error
}

// computePlanned runs one cell the result tiers missed, serving its decide
// phase from the plan tier when the configuration has a decision
// projection. The returned Outcome is Computed when the cell decided for
// itself (including priming the plan tier), PlanHit/PlanDiskHit when a
// cached plan served the decide phase and only the replay ran.
func (c *Cache) computePlanned(ctx context.Context, canon core.Config, jobs *workload.Trace) (*metrics.Result, Outcome, error) {
	dfp, ok := canon.DecisionFingerprint(jobs)
	if !ok {
		res, err := core.RunContext(ctx, canon, jobs)
		return res, Computed, err
	}
	plan, served, err := c.planFor(ctx, dfp, canon, jobs)
	if err != nil {
		if errors.Is(err, core.ErrNoPlan) {
			// The decide phase dynamically fell back (the policy returned a
			// suspend-resume plan); run the full engine path.
			res, rerr := core.RunContext(ctx, canon, jobs)
			return res, Computed, rerr
		}
		// A decide-phase failure is exactly the error core.Run would
		// return for this cell; surface it (planFor already dropped the
		// entry, so it is never cached).
		return nil, Computed, err
	}
	res, err := core.RunWithPlan(ctx, canon, jobs, plan)
	if err != nil {
		if ctx.Err() != nil {
			return nil, served, err
		}
		// A plan the replay rejects (shape skew from a stale or corrupt
		// artifact) costs a recompute, never correctness.
		c.Logf("runcache: replaying plan %s: %v (recomputing)", hex.EncodeToString(dfp[:8]), err)
		res, rerr := core.RunContext(ctx, canon, jobs)
		return res, Computed, rerr
	}
	return res, served, nil
}

// planFor serves one decision fingerprint through the plan tier: memory
// (single-flight) → disk → decide. The outcome is PlanHit for any caller
// served by an entry another caller created (completed or in flight —
// either way this cell skipped its decide phase), PlanDiskHit when this
// caller decoded the plan from disk, Computed when it ran the decide
// phase itself.
func (c *Cache) planFor(ctx context.Context, dfp [32]byte, canon core.Config, jobs *workload.Trace) (*core.DecisionPlan, Outcome, error) {
	c.mu.Lock()
	if e, exists := c.plans[dfp]; exists {
		c.mu.Unlock()
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, PlanHit, ctx.Err()
		}
		if e.err != nil {
			// The leader failed and removed the entry; the error is
			// deterministic for these inputs, so share it.
			return nil, PlanHit, e.err
		}
		return e.plan, PlanHit, nil
	}
	e := &planEntry{done: make(chan struct{})}
	c.plans[dfp] = e
	dir := c.dir
	c.mu.Unlock()

	served := Computed
	plan := c.loadPlanDisk(dir, dfp)
	if plan != nil {
		served = PlanDiskHit
	} else {
		var err error
		plan, err = core.DecidePlan(ctx, canon, jobs)
		if err != nil {
			c.mu.Lock()
			delete(c.plans, dfp)
			c.mu.Unlock()
			e.err = err
			close(e.done)
			return nil, Computed, err
		}
		c.storePlanDisk(dir, dfp, plan)
	}
	e.plan = plan
	close(e.done)
	return plan, served, nil
}

// planPath names a disk entry of the plan store. The decision fingerprint
// layout is already folded into dfp; the plan codec and store versions are
// spelled out in the name, so artifacts written by an incompatible binary
// simply never match.
func planPath(dir string, dfp [32]byte) string {
	name := fmt.Sprintf("%s.p%d.s%d.gplan", hex.EncodeToString(dfp[:]), core.PlanCodecVersion, StoreVersion)
	return filepath.Join(dir, name)
}

// loadPlanDisk fetches and decodes a plan entry, returning nil on any miss
// or problem. Absent files are silent; anything else is logged.
func (c *Cache) loadPlanDisk(dir string, dfp [32]byte) *core.DecisionPlan {
	if dir == "" {
		return nil
	}
	path := planPath(dir, dfp)
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			c.Logf("runcache: reading %s: %v (deciding)", path, err)
		}
		return nil
	}
	plan, err := core.DecodeDecisionPlan(data)
	if err != nil {
		c.Logf("runcache: decoding %s: %v (deciding)", path, err)
		return nil
	}
	return plan
}

// storePlanDisk persists a plan atomically (temp file + rename), like
// storeDisk. Failures are logged and otherwise ignored.
func (c *Cache) storePlanDisk(dir string, dfp [32]byte, plan *core.DecisionPlan) {
	if dir == "" {
		return
	}
	path := planPath(dir, dfp)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		c.Logf("runcache: creating temp plan in %s: %v", dir, err)
		return
	}
	data := core.EncodeDecisionPlan(plan)
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Close()
		if err == nil {
			err = os.Rename(tmp.Name(), path)
		}
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		c.Logf("runcache: writing %s: %v", path, err)
	}
}
