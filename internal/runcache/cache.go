// Package runcache is a two-tier content-addressed cache for simulation
// results. Tier 1 is an in-memory single-flight map: every core.Run routed
// through a Cache first derives the canonical fingerprint of its inputs
// (core.Config.Fingerprint, which folds in the memoized carbon- and
// workload-trace hashes), and duplicate cells — the same (policy, region,
// workload, reserved, ...) appearing in several figures — block on the one
// in-flight computation instead of re-running it. Tier 2 is an optional
// on-disk store of encoded accumulators (internal/metrics codec), so a
// warm re-run of the whole figure suite skips simulation entirely.
//
// Correctness contract: a cached cell is indistinguishable from a
// recomputed one. The cache stores only the immutable streaming
// accumulator; every requester gets a private metrics.Result rebuilt from
// its own canonical config (label, pricing, horizon, region), exactly as
// core.Run would have assembled it. Disk entries are versioned
// (fingerprint layout, codec version, store version all participate in
// the key) and checksummed; any mismatch, truncation or corruption is
// logged and silently recomputed — a bad cache can cost time, never
// correctness.
package runcache

import (
	"context"
	"encoding/hex"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/workload"
)

// StoreVersion names the on-disk entry format (file naming and contents
// beyond the accumulator codec itself). Bump to orphan all old files.
const StoreVersion = 1

// Outcome classifies how one Run request was served.
type Outcome int

const (
	// Computed: this call ran the simulation (and primed the cache).
	Computed Outcome = iota
	// Hit: served from an already-completed in-memory entry.
	Hit
	// Dedup: blocked on another caller's in-flight computation of the
	// same cell, then shared its accumulator.
	Dedup
	// DiskHit: decoded from the on-disk store, no simulation.
	DiskHit
	// RemoteHit: fetched from the shared fleet cache tier (another
	// replica computed this cell), no simulation.
	RemoteHit
	// Bypass: the configuration is not cacheable (unknown policy or CIS,
	// per-job retention); the simulation ran directly.
	Bypass
	// PlanHit: the cell was computed, but its decide phase was served from
	// an in-memory decision plan (another cell of the same decision
	// fingerprint decided first) and only the replay ran (plan.go).
	PlanHit
	// PlanDiskHit: like PlanHit, with the plan decoded from the on-disk
	// plan store.
	PlanDiskHit
)

// String returns the lower-case outcome name used in cache-stats lines.
func (o Outcome) String() string {
	switch o {
	case Computed:
		return "computed"
	case Hit:
		return "hit"
	case Dedup:
		return "dedup"
	case DiskHit:
		return "disk-hit"
	case RemoteHit:
		return "remote-hit"
	case Bypass:
		return "bypass"
	case PlanHit:
		return "plan-hit"
	case PlanDiskHit:
		return "plan-disk-hit"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Avoided reports whether the outcome skipped a simulation this process
// would otherwise have paid for. Plan outcomes are deliberately excluded:
// they avoided only the decide phase, and the replay still ran — they are
// a partial computation, tallied separately.
func (o Outcome) Avoided() bool {
	return o == Hit || o == Dedup || o == DiskHit || o == RemoteHit
}

// AvoidedDecide reports whether the outcome skipped at least the decide
// phase of a simulation (plan outcomes skip only that; full cache hits
// skip everything).
func (o Outcome) AvoidedDecide() bool {
	return o.Avoided() || o == PlanHit || o == PlanDiskHit
}

// entry is one cell's single-flight slot. The leader (whoever inserted
// it) closes done after setting acc or err; the channel close publishes
// both to waiters.
type entry struct {
	done chan struct{}
	acc  *metrics.Accumulator
	err  error
}

// Cache deduplicates simulation runs by content fingerprint. The zero
// value is not ready; use New.
type Cache struct {
	// Logf receives diagnostics about unusable disk entries (corruption,
	// version skew, IO errors). Defaults to log.Printf; replace before
	// first use. Never called on the happy path.
	Logf func(format string, args ...any)

	mu      sync.Mutex
	entries map[[32]byte]*entry
	plans   map[[32]byte]*planEntry // keyed by DecisionFingerprint
	dir     string                  // "" = in-memory tier only
	remote  RemoteStore             // nil = no shared fleet tier
}

// New returns an empty in-memory cache. Call SetDir to add the disk tier.
func New() *Cache {
	return &Cache{
		Logf:    log.Printf,
		entries: make(map[[32]byte]*entry),
		plans:   make(map[[32]byte]*planEntry),
	}
}

// SetDir attaches the on-disk store rooted at dir, creating it if needed.
func (c *Cache) SetDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	c.mu.Lock()
	c.dir = dir
	c.mu.Unlock()
	return nil
}

// Run serves one simulation cell through the cache: it returns the same
// (Result, error) core.Run(cfg, jobs) would, plus how the request was
// served. Results rebuilt from cache are bit-identical to fresh ones.
// Errors are never cached — a failing cell re-simulates on every request.
func (c *Cache) Run(cfg core.Config, jobs *workload.Trace) (*metrics.Result, Outcome, error) {
	return c.RunContext(context.Background(), cfg, jobs)
}

// RunContext is Run with cooperative cancellation, for serving layers
// whose clients may disconnect mid-simulation. A caller that becomes the
// single-flight leader passes ctx down to core.RunContext, so cancellation
// actually stops the event loop; a caller that joins an in-flight
// computation stops waiting when its own ctx is done, while the leader's
// computation keeps running for the remaining waiters. A canceled leader's
// error is shared with its waiters but — like every error — never cached,
// so the next request for the cell simply recomputes it. Serving layers
// that coalesce requests should therefore cancel the leader's ctx only
// when no requester remains interested (see internal/serve).
func (c *Cache) RunContext(ctx context.Context, cfg core.Config, jobs *workload.Trace) (*metrics.Result, Outcome, error) {
	fp, ok := cfg.Fingerprint(jobs)
	if !ok {
		res, err := core.RunContext(ctx, cfg, jobs)
		return res, Bypass, err
	}
	canon := cfg.Canonical()

	c.mu.Lock()
	if e, exists := c.entries[fp]; exists {
		// Completed entry → Hit; still in flight → Dedup. The split is
		// informational only, so the non-blocking probe racing a close
		// is harmless.
		outcome := Dedup
		select {
		case <-e.done:
			outcome = Hit
		default:
		}
		c.mu.Unlock()
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, outcome, ctx.Err()
		}
		if e.err != nil {
			// The leader failed and removed the entry; the error is
			// deterministic for these inputs, so share it.
			return nil, outcome, e.err
		}
		return buildResult(canon, jobs, e.acc), outcome, nil
	}
	e := &entry{done: make(chan struct{})}
	c.entries[fp] = e
	dir := c.dir
	remote := c.remote
	c.mu.Unlock()

	// Tier order for the single-flight leader: disk (local, trusted) →
	// remote fleet tier (another replica computed it) → compute. A remote
	// hit also warms the local disk tier; a computed cell is offered to
	// both, so the cell's ring owner ends up holding it for the fleet.
	// Computation itself consults one more tier: the decision-plan cache
	// (plan.go), which lets a cell whose decide phase matches an earlier
	// cell replay accounting over the shared plan (PlanHit/PlanDiskHit).
	outcome := Computed
	acc := c.loadDisk(dir, fp)
	if acc != nil {
		outcome = DiskHit
	} else if acc = c.loadRemote(ctx, remote, fp); acc != nil {
		outcome = RemoteHit
		c.storeDisk(dir, fp, acc)
	} else {
		res, served, err := c.computePlanned(ctx, canon, jobs)
		if err != nil {
			c.mu.Lock()
			delete(c.entries, fp)
			c.mu.Unlock()
			e.err = err
			close(e.done)
			return nil, served, err
		}
		outcome = served
		acc = res.Accumulator()
		c.storeDisk(dir, fp, acc)
		if remote != nil {
			c.storeRemote(ctx, remote, fp, metrics.EncodeAccumulator(acc))
		}
	}
	e.acc = acc
	close(e.done)
	return buildResult(canon, jobs, acc), outcome, nil
}

// buildResult assembles the Result core.Run would have returned for this
// canonical config around a (shared, immutable) accumulator. It mirrors
// the literal at the end of core.Run exactly: streaming runs carry no
// per-job records, and every identity field comes from the requester's
// own canonical config, so two callers sharing one accumulator still get
// their own labels.
func buildResult(canon core.Config, jobs *workload.Trace, acc *metrics.Accumulator) *metrics.Result {
	res := &metrics.Result{
		Label:    canon.Label,
		Region:   canon.Carbon.Region(),
		Workload: jobs.Name,
		Reserved: canon.Reserved,
		Horizon:  canon.Horizon,
		Pricing:  canon.Pricing,
	}
	res.AttachAccumulator(acc)
	return res
}

// entryPath names a disk entry. The fingerprint layout version is already
// folded into fp; the codec and store versions are spelled out in the file
// name, so entries written by an incompatible binary simply never match.
func entryPath(dir string, fp [32]byte) string {
	name := fmt.Sprintf("%s.c%d.s%d.gacc", hex.EncodeToString(fp[:]), metrics.CodecVersion, StoreVersion)
	return filepath.Join(dir, name)
}

// loadDisk fetches and decodes a disk entry, returning nil on any miss or
// problem. Absent files are silent; anything else is logged.
func (c *Cache) loadDisk(dir string, fp [32]byte) *metrics.Accumulator {
	if dir == "" {
		return nil
	}
	path := entryPath(dir, fp)
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			c.Logf("runcache: reading %s: %v (recomputing)", path, err)
		}
		return nil
	}
	acc, err := metrics.DecodeAccumulator(data)
	if err != nil {
		c.Logf("runcache: decoding %s: %v (recomputing)", path, err)
		return nil
	}
	return acc
}

// storeDisk persists an accumulator, atomically: the entry is written to
// a temp file in the same directory and renamed into place, so concurrent
// readers (a cold and a warm suite sharing one cache dir) only ever see
// complete entries. Failures are logged and otherwise ignored — the store
// is an accelerator, not a system of record.
func (c *Cache) storeDisk(dir string, fp [32]byte, acc *metrics.Accumulator) {
	if dir == "" {
		return
	}
	path := entryPath(dir, fp)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		c.Logf("runcache: creating temp entry in %s: %v", dir, err)
		return
	}
	data := metrics.EncodeAccumulator(acc)
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Close()
		if err == nil {
			err = os.Rename(tmp.Name(), path)
		}
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		c.Logf("runcache: writing %s: %v", path, err)
	}
}
