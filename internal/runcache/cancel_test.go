package runcache

import (
	"context"
	"errors"
	"testing"

	"github.com/carbonsched/gaia/internal/core"
)

// TestRunContextCanceledLeaderNotCached verifies a canceled leader's
// error is returned but never cached: the next request recomputes and
// succeeds.
func TestRunContextCanceledLeaderNotCached(t *testing.T) {
	cfg, jobs := fixture(t)
	c := New()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.RunContext(ctx, cfg, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled leader err = %v, want context.Canceled", err)
	}

	res, outcome, err := c.Run(cfg, jobs)
	if err != nil {
		t.Fatalf("recompute after cancel failed: %v", err)
	}
	if outcome != Computed {
		t.Fatalf("outcome after canceled leader = %v, want computed (errors are never cached)", outcome)
	}
	if res.JobCount() != jobs.Len() {
		t.Fatalf("recomputed result has %d jobs, want %d", res.JobCount(), jobs.Len())
	}
}

// TestRunContextCanceledWaiter verifies a waiter whose own context ends
// stops waiting with its context error while the leader completes and
// primes the cache normally.
func TestRunContextCanceledWaiter(t *testing.T) {
	cfg, jobs := fixture(t)
	c := New()

	// Occupy the single-flight slot by hand so the waiter deterministically
	// joins an in-flight entry.
	fp, ok := cfg.Fingerprint(jobs)
	if !ok {
		t.Fatal("fixture config unexpectedly not fingerprintable")
	}
	e := &entry{done: make(chan struct{})}
	c.mu.Lock()
	c.entries[fp] = e
	c.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, outcome, err := c.RunContext(ctx, cfg, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter err = %v (outcome %v), want context.Canceled", err, outcome)
	} else if outcome != Dedup {
		t.Fatalf("canceled waiter outcome = %v, want dedup", outcome)
	}

	// "Leader" finishes: publish a real accumulator and check new callers
	// are served from it.
	res, err := core.Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	e.acc = res.Accumulator()
	close(e.done)

	cached, outcome, err := c.Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Hit {
		t.Fatalf("outcome after publish = %v, want hit", outcome)
	}
	if cached.JobCount() != res.JobCount() {
		t.Fatalf("cached job count %d != computed %d", cached.JobCount(), res.JobCount())
	}
}
