package runcache

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/carbonsched/gaia/internal/core"
)

// fakeRemote is an in-memory RemoteStore with failure injection, standing
// in for the fleet tier.
type fakeRemote struct {
	mu      sync.Mutex
	m       map[[32]byte][]byte
	getErr  error
	putErr  error
	corrupt bool // serve stored blobs with flipped bytes
	gets    int
	puts    int
}

func newFakeRemote() *fakeRemote { return &fakeRemote{m: make(map[[32]byte][]byte)} }

func (r *fakeRemote) Get(_ context.Context, fp [32]byte) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gets++
	if r.getErr != nil {
		return nil, r.getErr
	}
	blob, ok := r.m[fp]
	if !ok {
		return nil, nil
	}
	if r.corrupt {
		bad := append([]byte(nil), blob...)
		bad[len(bad)/2] ^= 0xFF
		return bad, nil
	}
	return blob, nil
}

func (r *fakeRemote) Put(_ context.Context, fp [32]byte, blob []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.puts++
	if r.putErr != nil {
		return r.putErr
	}
	r.m[fp] = blob
	return nil
}

// TestRemoteHitAcrossCaches is the tier's core promise: a cell computed
// by one process (cache A) is served to another (cache B) as a remote
// hit, bit-identical to what B would have computed itself.
func TestRemoteHitAcrossCaches(t *testing.T) {
	cfg, jobs := fixture(t)
	want, err := core.Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	remote := newFakeRemote()

	a := New()
	a.Logf = t.Logf
	a.SetRemote(remote)
	resA, outcome, err := a.Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Computed {
		t.Fatalf("replica A outcome = %v, want computed", outcome)
	}
	if remote.puts != 1 {
		t.Fatalf("replica A issued %d remote puts, want 1", remote.puts)
	}
	sameResult(t, resA, want)

	b := New()
	b.Logf = t.Logf
	b.SetRemote(remote)
	resB, outcome, err := b.Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != RemoteHit {
		t.Fatalf("replica B outcome = %v, want remote-hit", outcome)
	}
	sameResult(t, resB, want)

	// B's in-memory tier is now warm: the remote is not asked again.
	gets := remote.gets
	if _, outcome, err := b.Run(cfg, jobs); err != nil || outcome != Hit {
		t.Fatalf("replica B second request = (%v, %v), want hit", outcome, err)
	}
	if remote.gets != gets {
		t.Fatalf("warm replica still asked the remote (%d → %d gets)", gets, remote.gets)
	}
}

// TestRemoteHitWarmsDisk pins that a remote hit is written through to the
// local disk tier, so a restarted replica does not re-ask the peer.
func TestRemoteHitWarmsDisk(t *testing.T) {
	cfg, jobs := fixture(t)
	remote := newFakeRemote()

	seed := New()
	seed.Logf = t.Logf
	seed.SetRemote(remote)
	if _, outcome, err := seed.Run(cfg, jobs); err != nil || outcome != Computed {
		t.Fatalf("seed = (%v, %v)", outcome, err)
	}

	dir := t.TempDir()
	b := New()
	b.Logf = t.Logf
	b.SetRemote(remote)
	if err := b.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, outcome, err := b.Run(cfg, jobs); err != nil || outcome != RemoteHit {
		t.Fatalf("replica B = (%v, %v), want remote-hit", outcome, err)
	}

	restarted := New()
	restarted.Logf = t.Logf
	restarted.SetRemote(remote)
	if err := restarted.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	gets := remote.gets
	if _, outcome, err := restarted.Run(cfg, jobs); err != nil || outcome != DiskHit {
		t.Fatalf("restarted replica = (%v, %v), want disk-hit", outcome, err)
	}
	if remote.gets != gets {
		t.Fatal("restarted replica asked the remote despite a warm disk tier")
	}
}

// TestRemoteOutageDegradesToCompute pins the failure contract: a dead or
// erroring tier is logged and the cell recomputes — the request succeeds.
func TestRemoteOutageDegradesToCompute(t *testing.T) {
	cfg, jobs := fixture(t)
	want, err := core.Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	remote := newFakeRemote()
	remote.getErr = errors.New("connection refused")
	remote.putErr = errors.New("connection refused")

	var logs []string
	c := New()
	c.Logf = func(format string, args ...any) { logs = append(logs, format) }
	c.SetRemote(remote)
	res, outcome, err := c.Run(cfg, jobs)
	if err != nil {
		t.Fatalf("remote outage surfaced as request error: %v", err)
	}
	if outcome != Computed {
		t.Fatalf("outcome = %v, want computed", outcome)
	}
	sameResult(t, res, want)
	var sawGet, sawPut bool
	for _, l := range logs {
		sawGet = sawGet || strings.Contains(l, "remote get")
		sawPut = sawPut || strings.Contains(l, "remote put")
	}
	if !sawGet || !sawPut {
		t.Fatalf("outage not logged (get=%v put=%v): %q", sawGet, sawPut, logs)
	}
}

// TestRemoteCorruptionDegradesToCompute pins that a tier serving damaged
// blobs costs a recompute, never a wrong or failed answer.
func TestRemoteCorruptionDegradesToCompute(t *testing.T) {
	cfg, jobs := fixture(t)
	want, err := core.Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	remote := newFakeRemote()
	seed := New()
	seed.Logf = t.Logf
	seed.SetRemote(remote)
	if _, _, err := seed.Run(cfg, jobs); err != nil {
		t.Fatal(err)
	}
	remote.corrupt = true

	var logged bool
	c := New()
	c.Logf = func(string, ...any) { logged = true }
	c.SetRemote(remote)
	res, outcome, err := c.Run(cfg, jobs)
	if err != nil {
		t.Fatalf("corrupt remote surfaced as request error: %v", err)
	}
	if outcome != Computed {
		t.Fatalf("outcome = %v, want computed", outcome)
	}
	if !logged {
		t.Fatal("corruption was not logged")
	}
	sameResult(t, res, want)
}
