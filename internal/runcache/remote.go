package runcache

import (
	"context"
	"time"

	"github.com/carbonsched/gaia/internal/metrics"
)

// RemoteStore is the seam between one process's run cache and a shared
// cache tier spanning a replica fleet (see internal/fleet). Values are
// encoded accumulators — exactly the bytes the disk tier writes, already
// versioned and checksummed by the internal/metrics codec — keyed by the
// same cell fingerprints as every other tier.
//
// The contract is deliberately loose, because the tier is an accelerator:
//
//   - Get returns (nil, nil) for a clean miss. Any error (timeout, dead
//     peer, protocol violation) is logged by the Cache and treated as a
//     miss — the cell recomputes locally, the request never fails.
//   - Put is best-effort; errors are logged and dropped.
//   - A blob that fails to decode or checksum is discarded like a corrupt
//     disk entry: a bad remote store can cost time, never correctness.
type RemoteStore interface {
	Get(ctx context.Context, fp [32]byte) ([]byte, error)
	Put(ctx context.Context, fp [32]byte, blob []byte) error
}

// remoteOpTimeout bounds one remote get/put independently of the caller's
// context, which may allow a multi-minute simulation: waiting longer than
// this for a peer is worse than recomputing.
const remoteOpTimeout = 2 * time.Second

// SetRemote attaches the shared cache tier. Pass nil to detach. Safe to
// call concurrently with Run, though it is normally wired once at startup.
func (c *Cache) SetRemote(r RemoteStore) {
	c.mu.Lock()
	c.remote = r
	c.mu.Unlock()
}

// loadRemote fetches and decodes a remote entry, returning nil on any
// miss or problem — errors are logged, never propagated, so the tier can
// only ever degrade to a recompute.
func (c *Cache) loadRemote(ctx context.Context, remote RemoteStore, fp [32]byte) *metrics.Accumulator {
	if remote == nil {
		return nil
	}
	rctx, cancel := context.WithTimeout(ctx, remoteOpTimeout)
	defer cancel()
	blob, err := remote.Get(rctx, fp)
	if err != nil {
		c.Logf("runcache: remote get %x: %v (recomputing)", fp[:8], err)
		return nil
	}
	if blob == nil {
		return nil
	}
	acc, err := metrics.DecodeAccumulator(blob)
	if err != nil {
		c.Logf("runcache: remote entry %x: %v (recomputing)", fp[:8], err)
		return nil
	}
	return acc
}

// storeRemote offers a freshly computed entry to the tier, best-effort.
// It reuses the blob encoding when the caller already has one (the disk
// tier produced it), else encodes once.
func (c *Cache) storeRemote(ctx context.Context, remote RemoteStore, fp [32]byte, blob []byte) {
	if remote == nil {
		return
	}
	rctx, cancel := context.WithTimeout(ctx, remoteOpTimeout)
	defer cancel()
	if err := remote.Put(rctx, fp, blob); err != nil {
		c.Logf("runcache: remote put %x: %v (dropped)", fp[:8], err)
	}
}
