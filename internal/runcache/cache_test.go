package runcache

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func fixture(t testing.TB) (core.Config, *workload.Trace) {
	t.Helper()
	tr := carbon.RegionSAAU.Generate(24*7, 1)
	jobs := workload.AlibabaPAIWeek().GenerateByCount(rand.New(rand.NewSource(5)), 300, simtime.Week)
	cfg := core.Config{Policy: policy.CarbonTime{}, Carbon: tr, Reserved: 20, WorkConserving: true}
	return cfg, jobs
}

// sameResult asserts a cached result is indistinguishable from a direct
// core.Run: identity fields, rendered summary, and the full accumulator
// state (unexported columns included) must match bit for bit.
func sameResult(t *testing.T, got, want *metrics.Result) {
	t.Helper()
	if got.String() != want.String() {
		t.Errorf("rendered result differs:\n got %s\nwant %s", got, want)
	}
	if got.Label != want.Label || got.Region != want.Region || got.Workload != want.Workload ||
		got.Reserved != want.Reserved || got.Horizon != want.Horizon || got.Pricing != want.Pricing {
		t.Errorf("identity fields differ: got %+v want %+v", got, want)
	}
	if !reflect.DeepEqual(got.Accumulator(), want.Accumulator()) {
		t.Error("accumulator state differs from direct core.Run")
	}
	if p, q := got.WaitingPercentile(99), want.WaitingPercentile(99); p != q {
		t.Errorf("WaitingPercentile(99) = %v, want %v", p, q)
	}
}

func TestCacheHitIsBitIdentical(t *testing.T) {
	cfg, jobs := fixture(t)
	want, err := core.Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	first, outcome, err := c.Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Computed {
		t.Fatalf("first request: outcome %v, want computed", outcome)
	}
	sameResult(t, first, want)

	second, outcome, err := c.Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Hit {
		t.Fatalf("second request: outcome %v, want hit", outcome)
	}
	sameResult(t, second, want)
	if second == first {
		t.Error("requesters must get private Result values")
	}
	if second.Accumulator() != first.Accumulator() {
		t.Error("requesters must share one accumulator")
	}
}

// TestCacheLabelsStayPerRequester: two configs differing only in Label
// share a cache cell yet keep their own labels.
func TestCacheLabelsStayPerRequester(t *testing.T) {
	cfg, jobs := fixture(t)
	c := New()
	a := cfg
	a.Label = "first-name"
	b := cfg
	b.Label = "second-name"
	ra, _, err := c.Run(a, jobs)
	if err != nil {
		t.Fatal(err)
	}
	rb, outcome, err := c.Run(b, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Hit {
		t.Fatalf("relabeled config: outcome %v, want hit", outcome)
	}
	if ra.Label != "first-name" || rb.Label != "second-name" {
		t.Errorf("labels leaked across requesters: %q, %q", ra.Label, rb.Label)
	}
}

func TestCacheBypass(t *testing.T) {
	cfg, jobs := fixture(t)
	c := New()
	noisy := cfg
	noisy.CIS = carbon.NewNoisyService(cfg.Carbon, 0.05, 1)
	for name, bad := range map[string]core.Config{
		"noisy CIS": noisy,
		"retained":  {Policy: cfg.Policy, Carbon: cfg.Carbon, RetainJobs: true},
	} {
		for i := 0; i < 2; i++ {
			res, outcome, err := c.Run(bad, jobs)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if outcome != Bypass {
				t.Errorf("%s request %d: outcome %v, want bypass", name, i, outcome)
			}
			if res == nil {
				t.Fatalf("%s: nil result", name)
			}
		}
	}
}

// TestCacheErrorsNotCached: a failing cell reports its error to everyone
// but never poisons the cache — the next request re-runs it.
func TestCacheErrorsNotCached(t *testing.T) {
	cfg, jobs := fixture(t)
	cfg.Reserved = -1 // fingerprints fine, fails core validation
	c := New()
	for i := 0; i < 2; i++ {
		res, outcome, err := c.Run(cfg, jobs)
		if err == nil || res != nil {
			t.Fatalf("request %d: want error, got res=%v err=%v", i, res, err)
		}
		if outcome != Computed {
			t.Errorf("request %d: outcome %v, want computed (errors must not cache)", i, outcome)
		}
	}
}

// TestCacheDisk covers the full disk tier: a second cache over the same
// directory serves DiskHit, bit-identically.
func TestCacheDisk(t *testing.T) {
	cfg, jobs := fixture(t)
	dir := t.TempDir()
	cold := New()
	if err := cold.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	want, outcome, err := cold.Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Computed {
		t.Fatalf("cold run: outcome %v", outcome)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.gacc"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want 1 disk entry, got %v (%v)", entries, err)
	}

	warm := New()
	if err := warm.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	got, outcome, err := warm.Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != DiskHit {
		t.Fatalf("warm run: outcome %v, want disk-hit", outcome)
	}
	sameResult(t, got, want)
}

// TestCacheDiskDamage: truncated, corrupted, emptied or version-skewed
// entries are logged and recomputed — never an error, never a wrong
// result.
func TestCacheDiskDamage(t *testing.T) {
	cfg, jobs := fixture(t)
	want, err := core.Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	damage := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/3] },
		"empty":     func([]byte) []byte { return nil },
		"bit flip":  func(b []byte) []byte { b[len(b)/2] ^= 1; return b },
		"version skew": func(b []byte) []byte {
			b[8]++ // codec version byte; crc trailer now stale too
			return b
		},
	}
	for name, corrupt := range damage {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			seed := New()
			if err := seed.SetDir(dir); err != nil {
				t.Fatal(err)
			}
			if _, _, err := seed.Run(cfg, jobs); err != nil {
				t.Fatal(err)
			}
			entries, _ := filepath.Glob(filepath.Join(dir, "*.gacc"))
			if len(entries) != 1 {
				t.Fatalf("want 1 entry, got %v", entries)
			}
			data, err := os.ReadFile(entries[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(entries[0], corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}

			var logged atomic.Int32
			c := New()
			c.Logf = func(string, ...any) { logged.Add(1) }
			if err := c.SetDir(dir); err != nil {
				t.Fatal(err)
			}
			got, outcome, err := c.Run(cfg, jobs)
			if err != nil {
				t.Fatalf("damaged entry surfaced an error: %v", err)
			}
			if outcome != Computed {
				t.Errorf("outcome %v, want computed (recompute on damage)", outcome)
			}
			if logged.Load() == 0 {
				t.Error("damage was not logged")
			}
			sameResult(t, got, want)
		})
	}
}

// TestCacheSingleFlight hammers one cache with concurrent requests for a
// handful of cells from many goroutines (run under -race): every result
// must be correct, and each cell must simulate at most once.
func TestCacheSingleFlight(t *testing.T) {
	baseCfg, jobs := fixture(t)
	const cellsN, perCell = 3, 8
	want := make([]*metrics.Result, cellsN)
	cfgs := make([]core.Config, cellsN)
	for i := range cfgs {
		cfgs[i] = baseCfg
		cfgs[i].Reserved = 10 * i
		r, err := core.Run(cfgs[i], jobs)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	c := New()
	var computed atomic.Int32
	results := make([]*metrics.Result, cellsN*perCell)
	var wg sync.WaitGroup
	for g := 0; g < cellsN*perCell; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, outcome, err := c.Run(cfgs[g%cellsN], jobs)
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			if outcome == Computed {
				computed.Add(1)
			}
			results[g] = res
		}(g)
	}
	wg.Wait()
	if got := computed.Load(); got != cellsN {
		t.Errorf("computed %d cells, want exactly %d (single flight)", got, cellsN)
	}
	for g, res := range results {
		if res == nil {
			continue
		}
		sameResult(t, res, want[g%cellsN])
	}
}

// TestCacheConcurrentWarmCold races two caches over one directory — a
// reader warming from disk while a writer is still publishing entries —
// the -race proof that atomic rename publication works.
func TestCacheConcurrentWarmCold(t *testing.T) {
	baseCfg, jobs := fixture(t)
	dir := t.TempDir()
	const cellsN = 4
	var wg sync.WaitGroup
	errs := make(chan error, 2*cellsN)
	for side := 0; side < 2; side++ {
		c := New()
		c.Logf = func(format string, args ...any) {
			errs <- fmt.Errorf("unexpected cache diagnostic: "+format, args...)
		}
		if err := c.SetDir(dir); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cellsN; i++ {
			wg.Add(1)
			go func(c *Cache, i int) {
				defer wg.Done()
				cfg := baseCfg
				cfg.Reserved = 5 * i
				if _, _, err := c.Run(cfg, jobs); err != nil {
					errs <- err
				}
			}(c, i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
