package runcache

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// planFixture builds a direct-eligible cell (the work-conserving knob in
// the shared fixture disqualifies the plan tier on purpose there).
func planFixture(t testing.TB) (core.Config, *workload.Trace) {
	t.Helper()
	tr := carbon.RegionSAAU.Generate(24*7, 1)
	jobs := workload.AlibabaPAIWeek().GenerateByCount(rand.New(rand.NewSource(6)), 300, simtime.Week)
	cfg := core.Config{Policy: policy.CarbonTime{}, Carbon: tr}
	return cfg, jobs
}

// TestPlanTierSharesDecideAcrossReservedSweep pins the tentpole behavior:
// cells that differ only in accounting knobs miss the result tier but
// share one decide via the plan tier, and replayed cells stay
// bit-identical to fresh core.Run results.
func TestPlanTierSharesDecideAcrossReservedSweep(t *testing.T) {
	cfg, jobs := planFixture(t)
	c := New()

	first, outcome, err := c.Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Computed {
		t.Fatalf("first cell: outcome %v, want computed", outcome)
	}
	want, err := core.Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, first, want)

	for _, reserved := range []int{10, 50, 200} {
		swept := cfg
		swept.Reserved = reserved
		got, outcome, err := c.Run(swept, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if outcome != PlanHit {
			t.Fatalf("reserved=%d: outcome %v, want plan-hit", reserved, outcome)
		}
		want, err := core.Run(swept, jobs)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, got, want)
	}

	// A repeated cell is served by the result tier, not replayed again.
	repeat := cfg
	repeat.Reserved = 50
	if _, outcome, err := c.Run(repeat, jobs); err != nil || outcome != Hit {
		t.Fatalf("repeated cell: outcome %v err %v, want hit", outcome, err)
	}
}

// TestPlanTierDisk pins the persistent tier: a fresh process (new Cache,
// same directory) sweeping a reserved size nobody computed before decodes
// the plan from disk instead of deciding.
func TestPlanTierDisk(t *testing.T) {
	cfg, jobs := planFixture(t)
	dir := t.TempDir()

	cold := New()
	if err := cold.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, outcome, err := cold.Run(cfg, jobs); err != nil || outcome != Computed {
		t.Fatalf("cold run: outcome %v err %v, want computed", outcome, err)
	}
	plans, err := filepath.Glob(filepath.Join(dir, "*.gplan"))
	if err != nil || len(plans) != 1 {
		t.Fatalf("expected exactly one plan artifact, got %v (%v)", plans, err)
	}

	warm := New()
	if err := warm.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	swept := cfg
	swept.Reserved = 77 // result fingerprint nobody has computed
	got, outcome, err := warm.Run(swept, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != PlanDiskHit {
		t.Fatalf("fresh-process sweep cell: outcome %v, want plan-disk-hit", outcome)
	}
	want, err := core.Run(swept, jobs)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got, want)

	// A reserved size nobody computed, on the cache that decided: replays
	// from the in-memory plan without touching disk.
	swept.Reserved = 88
	if _, outcome, err := cold.Run(swept, jobs); err != nil || outcome != PlanHit {
		t.Fatalf("memory-plan sweep cell: outcome %v err %v, want plan-hit", outcome, err)
	}
}

// TestPlanTierCorruptArtifact pins the correctness contract: a corrupted
// plan on disk is detected, logged, and the cell decides for itself.
func TestPlanTierCorruptArtifact(t *testing.T) {
	cfg, jobs := planFixture(t)
	dir := t.TempDir()

	cold := New()
	if err := cold.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cold.Run(cfg, jobs); err != nil {
		t.Fatal(err)
	}
	plans, _ := filepath.Glob(filepath.Join(dir, "*.gplan"))
	if len(plans) != 1 {
		t.Fatalf("expected one plan artifact, got %v", plans)
	}
	if err := os.WriteFile(plans[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	logged := 0
	warm := New()
	warm.Logf = func(string, ...any) { logged++ }
	if err := warm.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	swept := cfg
	swept.Reserved = 33
	got, outcome, err := warm.Run(swept, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Computed {
		t.Fatalf("corrupt plan: outcome %v, want computed", outcome)
	}
	if logged == 0 {
		t.Error("corrupt plan artifact was not logged")
	}
	want, err := core.Run(swept, jobs)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got, want)
}

// TestPlanTierSingleFlight asserts a concurrent sweep decides exactly
// once: every cell differs in Reserved (no result-tier sharing), so all
// but the one decide leader must report plan hits.
func TestPlanTierSingleFlight(t *testing.T) {
	cfg, jobs := planFixture(t)
	c := New()

	const cells = 8
	outcomes := make([]Outcome, cells)
	var wg sync.WaitGroup
	for i := 0; i < cells; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			swept := cfg
			swept.Reserved = (i + 1) * 10
			_, outcome, err := c.Run(swept, jobs)
			if err != nil {
				t.Error(err)
			}
			outcomes[i] = outcome
		}(i)
	}
	wg.Wait()

	computed, planHits := 0, 0
	for _, o := range outcomes {
		switch o {
		case Computed:
			computed++
		case PlanHit:
			planHits++
		default:
			t.Errorf("unexpected outcome %v", o)
		}
	}
	if computed != 1 || planHits != cells-1 {
		t.Errorf("got %d computed + %d plan hits, want 1 + %d", computed, planHits, cells-1)
	}
}

// TestPlanTierSkipsIneligibleConfigs asserts non-direct-eligible cells
// neither consult nor pollute the plan store.
func TestPlanTierSkipsIneligibleConfigs(t *testing.T) {
	cfg, jobs := fixture(t) // work-conserving: no decision projection
	dir := t.TempDir()
	c := New()
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, outcome, err := c.Run(cfg, jobs); err != nil || outcome != Computed {
		t.Fatalf("outcome %v err %v, want computed", outcome, err)
	}
	if plans, _ := filepath.Glob(filepath.Join(dir, "*.gplan")); len(plans) != 0 {
		t.Errorf("ineligible config wrote plan artifacts: %v", plans)
	}
}
