// Package par is the deterministic parallel execution layer for the
// simulator's embarrassingly parallel sweeps: a bounded worker pool that
// applies a function to every element of a slice, preserves input
// ordering in the results, propagates the lowest-indexed error, and
// contains panics.
//
// Determinism guarantee: for a pure fn, Map returns bit-identical results
// at any worker count, because results are stored at their input index
// and never depend on completion order. Error reporting is deterministic
// too: indices are claimed in ascending order and every claimed task runs
// to completion, so the lowest-indexed failing task is always executed
// and its error is the one returned.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-pool size: n > 0 is used as given, anything
// else selects GOMAXPROCS (one worker per usable core).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map applies fn to every item on at most Workers(workers) goroutines and
// returns the results in input order. fn receives the item's index and
// value. On failure Map returns the error of the lowest-indexed failing
// task (a panic inside fn is contained and reported as an error);
// unclaimed tasks after a failure are skipped, in-flight ones complete.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	_, err := MapN(workers, len(items), func(i int) (struct{}, error) {
		r, err := fn(i, items[i])
		if err != nil {
			return struct{}{}, err
		}
		out[i] = r
		return struct{}{}, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach is Map without results: it applies fn to every item and returns
// the lowest-indexed error, if any.
func ForEach[T any](workers int, items []T, fn func(i int, item T) error) error {
	_, err := Map(workers, items, func(i int, item T) (struct{}, error) {
		return struct{}{}, fn(i, item)
	})
	return err
}

// Range is a half-open index interval [Lo, Hi) produced by Shards.
type Range struct {
	Lo, Hi int
}

// Shards partitions the index space [0, n) into at most Workers(workers)
// contiguous near-equal ranges, one per worker. The split is a pure
// function of (workers, n) — shard boundaries never depend on runtime
// state — so a parallel pass writing disjoint output columns per shard is
// deterministic at a fixed worker count, and callers that want determinism
// across worker counts need only make the per-element work independent of
// its shard (as Map does). Every returned range is non-empty; n <= 0
// yields nil.
func Shards(workers, n int) []Range {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([]Range, workers)
	for i := 0; i < workers; i++ {
		out[i] = Range{Lo: i * n / workers, Hi: (i + 1) * n / workers}
	}
	return out
}

// MapN is index-based Map for loops without a materialized slice: it runs
// fn(0..n-1) on the pool and returns the n results in index order.
func MapN[R any](workers, n int, fn func(i int) (R, error)) ([]R, error) {
	if n <= 0 {
		return nil, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	out := make([]R, n)
	var (
		next   atomic.Int64 // next index to claim
		failed atomic.Bool  // stops claiming once any task errs
		wg     sync.WaitGroup

		mu       sync.Mutex
		firstIdx = n // lowest failing index seen so far
		firstErr error
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		failed.Store(true)
	}
	// call isolates fn so a panic in one task cannot tear down the
	// process: it is converted into that task's error.
	call := func(i int) (r R, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("par: task %d panicked: %v", i, p)
			}
		}()
		return fn(i)
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				r, err := call(i)
				if err != nil {
					record(i, err)
					continue
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
