package par

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-3); got != want {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, want)
	}
}

// TestMapOrdering checks that results land at their input index at every
// worker count, including pools larger than the input.
func TestMapOrdering(t *testing.T) {
	items := make([]int, 250)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 8, 500} {
		out, err := Map(workers, items, func(_ int, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != len(items) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(out), len(items))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapFirstError checks that the lowest-indexed error wins regardless
// of worker count or completion order.
func TestMapFirstError(t *testing.T) {
	items := make([]int, 100)
	for _, workers := range []int{1, 2, 8} {
		_, err := Map(workers, items, func(i int, _ int) (int, error) {
			if i == 7 || i == 23 || i == 99 {
				return 0, fmt.Errorf("boom at %d", i)
			}
			return 0, nil
		})
		if err == nil || err.Error() != "boom at 7" {
			t.Errorf("workers=%d: err = %v, want boom at 7", workers, err)
		}
	}
}

// TestMapStopsAfterError checks that an error cancels unclaimed work:
// with one worker, nothing past the failing index runs.
func TestMapStopsAfterError(t *testing.T) {
	var ran atomic.Int64
	items := make([]int, 1000)
	_, err := Map(1, items, func(i int, _ int) (int, error) {
		ran.Add(1)
		if i == 4 {
			return 0, errors.New("stop")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := ran.Load(); n != 5 {
		t.Errorf("ran %d tasks after early error, want 5", n)
	}
}

// TestMapPanicContained checks that a panicking task is reported as that
// task's error instead of crashing the process.
func TestMapPanicContained(t *testing.T) {
	items := []string{"a", "b", "c", "d"}
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, items, func(i int, s string) (string, error) {
			if i == 2 {
				panic("kaboom: " + s)
			}
			return s, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: want error from panic", workers)
		}
		if !strings.Contains(err.Error(), "task 2 panicked") || !strings.Contains(err.Error(), "kaboom: c") {
			t.Errorf("workers=%d: err = %v, want contained panic", workers, err)
		}
	}
}

// TestMapPanicBeatsLaterError checks panics and errors share the same
// lowest-index-wins rule.
func TestMapPanicBeatsLaterError(t *testing.T) {
	items := make([]int, 10)
	_, err := Map(4, items, func(i int, _ int) (int, error) {
		if i == 3 {
			panic("early")
		}
		if i == 8 {
			return 0, errors.New("late")
		}
		return 0, nil
	})
	if err == nil || !strings.Contains(err.Error(), "task 3 panicked") {
		t.Errorf("err = %v, want panic from task 3", err)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(8, nil, func(_ int, v int) (int, error) { return v, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("Map(nil) = %v, %v", out, err)
	}
}

func TestForEach(t *testing.T) {
	items := []int{10, 20, 30, 40}
	var sum atomic.Int64
	if err := ForEach(2, items, func(_ int, v int) error {
		sum.Add(int64(v))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 100 {
		t.Errorf("sum = %d, want 100", sum.Load())
	}
	err := ForEach(2, items, func(i int, _ int) error {
		if i == 1 {
			return errors.New("nope")
		}
		return nil
	})
	if err == nil || err.Error() != "nope" {
		t.Errorf("ForEach err = %v", err)
	}
}

func TestMapN(t *testing.T) {
	out, err := MapN(3, 50, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if out, err := MapN(3, 0, func(i int) (int, error) { return i, nil }); err != nil || out != nil {
		t.Errorf("MapN(0) = %v, %v", out, err)
	}
}

// TestMapDeterministic runs the same floating-point reduction shape at
// several worker counts and asserts bit-identical results — the property
// the experiment sweeps rely on.
func TestMapDeterministic(t *testing.T) {
	items := make([]float64, 300)
	for i := range items {
		items[i] = 1.0 / float64(i+3)
	}
	work := func(_ int, v float64) (float64, error) {
		s := 0.0
		for k := 0; k < 1000; k++ {
			s += v / float64(k+1)
		}
		return s, nil
	}
	ref, err := Map(1, items, work)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := Map(workers, items, work)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v (bit-exact)", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestShards checks the contiguous-cover contract the direct run path
// builds on: every index appears exactly once, shards are non-empty and
// ascending, and the split is a pure function of (workers, n).
func TestShards(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{
		{1, 1}, {1, 100}, {3, 100}, {7, 100}, {100, 100}, {8, 3}, {4, 4},
	} {
		shards := Shards(tc.workers, tc.n)
		next := 0
		for _, sh := range shards {
			if sh.Lo != next {
				t.Fatalf("Shards(%d, %d): gap or overlap at %d (got Lo=%d)", tc.workers, tc.n, next, sh.Lo)
			}
			if sh.Hi <= sh.Lo {
				t.Fatalf("Shards(%d, %d): empty shard %+v", tc.workers, tc.n, sh)
			}
			next = sh.Hi
		}
		if next != tc.n {
			t.Fatalf("Shards(%d, %d): covers [0, %d), want [0, %d)", tc.workers, tc.n, next, tc.n)
		}
		if want := Shards(tc.workers, tc.n); len(want) != len(shards) {
			t.Fatalf("Shards(%d, %d) not deterministic", tc.workers, tc.n)
		}
	}
	if got := Shards(4, 0); got != nil {
		t.Errorf("Shards(4, 0) = %v, want nil", got)
	}
	if got := Shards(0, 10); len(got) == 0 {
		t.Errorf("Shards(0, 10) = %v, want a usable cover", got)
	}
}
