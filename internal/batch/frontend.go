package batch

import (
	"errors"
	"fmt"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/cluster"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/sim"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// Config describes one prototype-cluster run. It mirrors core.Config where
// the two runtimes share concepts, plus the node-level knobs the
// simulator abstracts away.
type Config struct {
	// Policy picks carbon-aware start times (uninterruptible policies;
	// suspend-resume plans execute as hold/release segments).
	Policy policy.Policy
	// Carbon is the realized CI trace (also the perfect CIS by default).
	Carbon *carbon.Trace
	// CIS overrides the forecast service (nil = perfect).
	CIS carbon.Service
	// ReservedNodes is the fixed pre-paid fleet size.
	ReservedNodes int
	// SpotMaxLen routes jobs up to this length to spot nodes.
	SpotMaxLen simtime.Duration
	// EvictionRate is the hourly spot interruption probability.
	EvictionRate float64
	// BootDelay / IdleTimeout are the elastic-node lifecycle knobs
	// (defaults 3 min / 10 min, ParallelCluster-like).
	BootDelay, IdleTimeout simtime.Duration
	Pricing                cloud.Pricing
	Power                  cloud.Power
	// Queue configuration, as in the simulator.
	ShortMax            simtime.Duration
	WaitShort, WaitLong simtime.Duration
	// Horizon is the accounting horizon (0 = carbon trace horizon).
	Horizon simtime.Duration
	Seed    int64
}

// Result aggregates a prototype run. Unlike metrics.Result, cost and
// carbon are fleet-level (whole instance lifetimes), matching how a real
// cloud bill looks.
type Result struct {
	Label   string
	Jobs    []*Job
	Cost    float64 // dollars: reserved upfront + elastic lifetimes
	CarbonG float64 // grams: elastic lifetimes + reserved busy time
	// NodesLaunched counts elastic instances created (churn indicator).
	NodesLaunched int
	Horizon       simtime.Duration
}

// MeanWaiting returns the mean job delay.
func (r *Result) MeanWaiting() simtime.Duration {
	if len(r.Jobs) == 0 {
		return 0
	}
	var total simtime.Duration
	for _, j := range r.Jobs {
		total += j.Waiting()
	}
	return total / simtime.Duration(len(r.Jobs))
}

// CarbonKg returns total emissions in kilograms.
func (r *Result) CarbonKg() float64 { return r.CarbonG / 1000 }

// TotalEvictions counts spot interruptions (attempts beyond the first).
func (r *Result) TotalEvictions() int {
	n := 0
	for _, j := range r.Jobs {
		if j.Attempts > 1 {
			n += j.Attempts - 1
		}
	}
	return n
}

// Run executes the workload on the prototype runtime.
func Run(cfg Config, jobs *workload.Trace) (res *Result, err error) {
	if cfg.Policy == nil {
		return nil, errors.New("batch: config needs a policy")
	}
	if cfg.Carbon == nil {
		return nil, errors.New("batch: config needs a carbon trace")
	}
	if cfg.CIS == nil {
		cfg.CIS = carbon.NewPerfectService(cfg.Carbon)
	}
	if cfg.Pricing == (cloud.Pricing{}) {
		cfg.Pricing = cloud.DefaultPricing()
	}
	if cfg.Power == (cloud.Power{}) {
		cfg.Power = cloud.DefaultPower()
	}
	if cfg.ShortMax == 0 {
		cfg.ShortMax = 2 * simtime.Hour
	}
	if cfg.WaitShort == 0 {
		cfg.WaitShort = 6 * simtime.Hour
	}
	if cfg.WaitLong == 0 {
		cfg.WaitLong = 24 * simtime.Hour
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = cfg.Carbon.Horizon()
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("batch: run failed: %v", r)
		}
	}()

	trace := workload.MustTrace(jobs.Name, jobs.Jobs)
	trace.AssignQueues(cfg.ShortMax)

	engine := sim.NewEngine()
	mgr, err := cluster.NewManager(cluster.Config{
		Engine:        engine,
		Carbon:        cfg.Carbon,
		Pricing:       cfg.Pricing,
		Power:         cfg.Power,
		ReservedNodes: cfg.ReservedNodes,
		BootDelay:     cfg.BootDelay,
		IdleTimeout:   cfg.IdleTimeout,
		EvictionRate:  cfg.EvictionRate,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	sys := NewSystem(engine, mgr, cfg.Power, cfg.Carbon.Integral)

	ctx := &policy.Context{
		CIS: cfg.CIS,
		Queues: map[workload.Queue]policy.QueueInfo{
			workload.QueueShort: {MaxWait: cfg.WaitShort, AvgLength: trace.MeanLengthByQueue(workload.QueueShort)},
			workload.QueueLong:  {MaxWait: cfg.WaitLong, AvgLength: trace.MeanLengthByQueue(workload.QueueLong)},
		},
	}
	// No-op unless the CIS is perfect-knowledge; decisions are
	// bit-identical either way (see policy.Context.EnableFastPaths).
	ctx.EnableFastPaths()

	for _, spec := range trace.Jobs {
		spec := spec
		engine.Schedule(spec.Arrival, sim.PriorityArrival, func() {
			j := sys.Submit(spec)
			now := engine.Now()
			d := cfg.Policy.Decide(spec, now, ctx)
			if err := d.Validate(spec, now); err != nil {
				panic(fmt.Sprintf("policy %s: %v", cfg.Policy.Name(), err))
			}
			spotEligible := cfg.SpotMaxLen > 0 && spec.Length <= cfg.SpotMaxLen
			if d.IsPlan() {
				// Suspend-resume on the node runtime: each plan segment
				// is released separately (Slurm suspend/resume driven by
				// GAIA). Segments chain via onSuspend so boot delays
				// never overlap consecutive segments.
				plan := policy.NormalizePlan(d.Plan, spec.Length)
				prefs := []cloud.Option{cloud.Reserved, cloud.OnDemand}
				launch := cloud.OnDemand
				if spotEligible {
					prefs, launch = []cloud.Option{cloud.Spot}, cloud.Spot
				}
				next := 0
				var scheduleNext func()
				scheduleNext = func() {
					if next >= len(plan) {
						return
					}
					seg := plan[next]
					next++
					at := simtime.MaxTime(seg.Start, engine.Now())
					engine.Schedule(at, sim.PriorityStart, func() {
						sys.ReleaseSegment(j, seg.Len(), next == len(plan), prefs, launch)
					})
				}
				j.onSuspend = scheduleNext
				scheduleNext()
				return
			}
			if _, isAllWait := cfg.Policy.(policy.AllWait); isAllWait {
				// The cost baseline on the prototype: queue for reserved
				// capacity immediately; at the waiting deadline, fall
				// back to launching on-demand nodes.
				sys.Release(j, []cloud.Option{cloud.Reserved}, NeverLaunch)
				engine.Schedule(d.Start, sim.PriorityStart, func() {
					sys.Upgrade(j, []cloud.Option{cloud.Reserved, cloud.OnDemand}, cloud.OnDemand)
				})
				return
			}
			engine.Schedule(d.Start, sim.PriorityStart, func() {
				if spotEligible {
					sys.Release(j, []cloud.Option{cloud.Spot}, cloud.Spot)
					return
				}
				sys.Release(j, []cloud.Option{cloud.Reserved, cloud.OnDemand}, cloud.OnDemand)
			})
		})
	}
	engine.Run()
	mgr.Shutdown()

	cost, elasticCarbon := mgr.Bill(cfg.Horizon)
	result := &Result{
		Label:   cfg.Policy.Name(),
		Jobs:    sys.Jobs(),
		Cost:    cost,
		CarbonG: elasticCarbon,
		Horizon: cfg.Horizon,
	}
	for _, j := range sys.Jobs() {
		result.CarbonG += j.ReservedBusyCarbon
		if j.State != Completed {
			return nil, fmt.Errorf("batch: job %d ended in state %v", j.Spec.ID, j.State)
		}
	}
	for _, n := range mgr.Nodes() {
		if n.Option != cloud.Reserved {
			result.NodesLaunched++
		}
	}
	return result, nil
}
