package batch

import (
	"math/rand"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// Stress: a bursty mixed workload (multi-CPU gangs, spot-eligible short
// jobs, heavy evictions, tight reserved fleet) must complete every job
// with sane accounting — guards against gang-allocation deadlocks and
// node-state leaks.
func TestPrototypeStressMixedFleet(t *testing.T) {
	tr := carbon.RegionSAAU.Generate(24*16, 11)
	jobs := workload.MustangHPC().GenerateByCount(rand.New(rand.NewSource(12)), 250, simtime.Week)
	cfg := Config{
		Policy:        policy.CarbonTime{},
		Carbon:        tr,
		ReservedNodes: 30,
		SpotMaxLen:    2 * simtime.Hour,
		EvictionRate:  0.30,
		Pricing:       testPricing,
		Power:         testPower,
		Seed:          13,
	}
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != jobs.Len() {
		t.Fatalf("%d/%d jobs completed", len(res.Jobs), jobs.Len())
	}
	for _, j := range res.Jobs {
		if j.State != Completed {
			t.Fatalf("job %d in state %v", j.Spec.ID, j.State)
		}
		if j.End.Sub(j.Start) < j.Spec.Length {
			t.Fatalf("job %d ran %v < length %v", j.Spec.ID, j.End.Sub(j.Start), j.Spec.Length)
		}
		if j.Waiting() < 0 {
			t.Fatalf("job %d negative waiting", j.Spec.ID)
		}
	}
	if res.Cost <= 0 || res.CarbonG <= 0 {
		t.Error("accounting should be positive")
	}
}

// Simultaneous multi-CPU arrivals compete for a small reserved fleet plus
// elastic scale-up; nothing may deadlock even when gangs interleave.
func TestPrototypeSimultaneousGangs(t *testing.T) {
	tr := flatTrace(24*4, 100)
	var specs []workload.Job
	for i := 0; i < 12; i++ {
		specs = append(specs, workload.Job{
			Arrival: 0, // all at once
			Length:  simtime.Hour + simtime.Duration(i)*10,
			CPUs:    1 + i%5,
		})
	}
	jobs := workload.MustTrace("burst", specs)
	cfg := protoConfig(policy.NoWait{}, tr)
	cfg.ReservedNodes = 3
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 12 {
		t.Fatalf("%d jobs finished", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		// Everyone should start within one boot delay (elastic cloud).
		if j.Start > simtime.Time(10*simtime.Minute) {
			t.Errorf("job %d started at %v", j.Spec.ID, j.Start)
		}
	}
}
