// Package batch is a Slurm-like batch system running on the elastic
// cluster model — the counterpart of the paper's GAIA *prototype* on AWS
// ParallelCluster (§5). Where internal/core (the GAIA-Simulator) books
// idealized per-job intervals, this runtime schedules jobs onto individual
// nodes with boot delays, gang allocation for multi-CPU jobs, idle
// timeouts, and spot interruption, and bills entire instance lifetimes.
//
// GAIA sits in front as in the paper's deployment: submissions are
// intercepted, held until the policy's carbon-aware start time, and then
// released into the node queue (see Frontend).
package batch

import (
	"fmt"

	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/cluster"
	"github.com/carbonsched/gaia/internal/sim"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// JobState is a batch job's lifecycle state (a subset of Slurm's).
type JobState int

// Job lifecycle. Requeued covers spot-interrupted jobs awaiting restart.
const (
	Pending JobState = iota
	Running
	Completed
	Requeued
)

// String names the state like sacct would.
func (s JobState) String() string {
	switch s {
	case Pending:
		return "PENDING"
	case Running:
		return "RUNNING"
	case Completed:
		return "COMPLETED"
	case Requeued:
		return "REQUEUED"
	default:
		return fmt.Sprintf("STATE(%d)", int(s))
	}
}

// Job is one batch job's accounting record.
type Job struct {
	Spec  workload.Job
	State JobState
	// Submit is the user's submission instant; Start the first execution
	// instant; End the completion instant.
	Submit, Start, End simtime.Time
	// Attempts counts executions (1 + spot interruptions).
	Attempts int
	// ReservedBusyCarbon accumulates carbon for reserved nodes while
	// this job occupied them (reserved nodes are powered off when idle,
	// so their carbon is attributed per use; elastic nodes are accounted
	// whole-lifetime by the cluster manager).
	ReservedBusyCarbon float64

	started  bool
	nodes    []*cluster.Node
	segStart simtime.Time
	// onSuspend fires when a non-final plan segment completes, letting
	// the frontend schedule the next segment without overlap even when
	// boot delays pushed this one late.
	onSuspend func()
}

// Waiting returns the job's total non-running delay.
func (j *Job) Waiting() simtime.Duration {
	return j.End.Sub(j.Submit) - j.Spec.Length
}

// request is one gang allocation demand in the node queue.
type request struct {
	job *Job
	// prefs is the idle-node acquisition preference order.
	prefs []cloud.Option
	// launch is the option launched to cover a deficit; a negative value
	// means never launch (wait for idle capacity only).
	launch cloud.Option
	held   []*cluster.Node
	// duration is this execution segment's length (suspend-resume jobs
	// run as several segments; 0 means the job's full length).
	duration simtime.Duration
	// final marks the segment whose end completes the job.
	final bool
}

func (r *request) segLength() simtime.Duration {
	if r.duration > 0 {
		return r.duration
	}
	return r.job.Spec.Length
}

// NeverLaunch as a Release/Upgrade launch option means "wait for idle
// capacity, never scale up" — the reserved-only waiting phase of the
// AllWait-Threshold baseline.
const NeverLaunch cloud.Option = -1

// System is the batch scheduler: a FIFO node queue over the elastic
// cluster with per-request elastic scale-up.
type System struct {
	engine  *sim.Engine
	mgr     *cluster.Manager
	pending []*request
	jobs    []*Job
	power   interface {
		Carbon(float64, int) float64
	}
	carbonIntegral func(simtime.Interval) float64
}

// NewSystem wires the batch layer onto a cluster manager.
func NewSystem(engine *sim.Engine, mgr *cluster.Manager, power cloud.Power, integral func(simtime.Interval) float64) *System {
	s := &System{engine: engine, mgr: mgr, power: power, carbonIntegral: integral}
	mgr.SetOnReady(s.kick)
	return s
}

// Jobs returns every job record (in submission order).
func (s *System) Jobs() []*Job { return s.jobs }

// Submit registers a job at the current instant; execution is deferred
// until Release (GAIA's hold-until-start mechanism).
func (s *System) Submit(spec workload.Job) *Job {
	j := &Job{Spec: spec, State: Pending, Submit: s.engine.Now()}
	s.jobs = append(s.jobs, j)
	return j
}

// Release enqueues the job for execution with the given placement: idle
// nodes are claimed in prefs order, and any deficit launches fresh nodes
// of the launch option (neverLaunch waits for capacity instead — pass a
// negative option). Multi-CPU jobs gang-allocate: claimed nodes are held
// until the full set is ready.
func (s *System) Release(j *Job, prefs []cloud.Option, launch cloud.Option) {
	req := &request{job: j, prefs: prefs, launch: launch, final: true}
	s.pending = append(s.pending, req)
	s.satisfy(req)
	s.startIfReady(req)
}

// ReleaseSegment enqueues one suspend-resume execution segment of the job
// (Slurm-style scontrol suspend/resume driven by GAIA's plan): the job
// runs for duration, then releases its nodes; the final segment completes
// it. Segments must be released in order and not overlap.
func (s *System) ReleaseSegment(j *Job, duration simtime.Duration, final bool, prefs []cloud.Option, launch cloud.Option) {
	req := &request{job: j, prefs: prefs, launch: launch, duration: duration, final: final}
	s.pending = append(s.pending, req)
	s.satisfy(req)
	s.startIfReady(req)
}

// satisfy claims idle nodes and launches the remaining deficit.
func (s *System) satisfy(req *request) {
	for len(req.held) < req.job.Spec.CPUs {
		n := s.mgr.Acquire(req.prefs...)
		if n == nil {
			break
		}
		req.held = append(req.held, n)
	}
	if req.launch < 0 {
		return
	}
	// Launch the deficit once; boots arrive via the ready callback.
	deficit := req.job.Spec.CPUs - len(req.held) - s.outstandingLaunches(req)
	for i := 0; i < deficit; i++ {
		s.mgr.Launch(req.launch)
	}
}

// outstandingLaunches counts nodes of the request's launch option still
// provisioning — a fleet-wide approximation that avoids double-launching
// when several requests boot nodes concurrently.
func (s *System) outstandingLaunches(req *request) int {
	if req.launch < 0 {
		return 0
	}
	count := 0
	for _, n := range s.mgr.Nodes() {
		if n.State == cluster.Provisioning && n.Option == req.launch {
			count++
		}
	}
	// Subtract claims of requests ahead of this one in the queue.
	for _, other := range s.pending {
		if other == req {
			break
		}
		if other.launch == req.launch {
			count -= other.job.Spec.CPUs - len(other.held)
		}
	}
	if count < 0 {
		count = 0
	}
	return count
}

// Upgrade changes a still-pending job's placement (e.g. a job that waited
// for reserved capacity reaching its deadline and falling back to
// on-demand). It is a no-op once the job is running.
func (s *System) Upgrade(j *Job, prefs []cloud.Option, launch cloud.Option) {
	for _, req := range s.pending {
		if req.job == j {
			req.prefs = prefs
			req.launch = launch
			s.satisfy(req)
			s.startIfReady(req)
			return
		}
	}
}

// kick retries the pending queue in FIFO order whenever capacity appears.
func (s *System) kick() {
	for _, req := range append([]*request(nil), s.pending...) {
		s.satisfy(req)
		s.startIfReady(req)
	}
}

// startIfReady launches execution once the gang is complete.
func (s *System) startIfReady(req *request) {
	j := req.job
	if len(req.held) < j.Spec.CPUs {
		return
	}
	s.removePending(req)
	now := s.engine.Now()
	if !j.started {
		j.started = true
		j.Start = now
	}
	j.State = Running
	j.Attempts++
	j.nodes = req.held
	j.segStart = now
	segLen := req.segLength()
	end := now.Add(segLen)

	interrupted := false
	for _, n := range req.held {
		n := n
		s.mgr.Occupy(n, func(dead *cluster.Node) {
			if interrupted || j.State != Running {
				return
			}
			interrupted = true
			s.interrupt(j, dead)
		})
		s.mgr.StartSpotClock(n, segLen)
	}

	s.engine.Schedule(end, sim.PriorityFinish, func() {
		if j.State != Running || interrupted {
			return
		}
		j.End = end
		s.accountReserved(j, j.segStart, end)
		for _, n := range j.nodes {
			s.mgr.ReleaseNode(n)
		}
		j.nodes = nil
		if req.final {
			j.State = Completed
		} else {
			// Suspended between plan segments; the next ReleaseSegment
			// resumes it.
			j.State = Pending
		}
		s.kick()
		if !req.final && j.onSuspend != nil {
			j.onSuspend()
		}
	})
}

// interrupt handles a spot revocation: all progress is lost (the paper's
// assumption); surviving nodes are released and the job requeues on
// reserved-then-on-demand capacity.
func (s *System) interrupt(j *Job, dead *cluster.Node) {
	now := s.engine.Now()
	// Book reserved busy time of the lost segment (spot gangs normally
	// hold no reserved nodes, but a requeued mixed gang can).
	s.accountReserved(j, j.segStart, now)
	for _, n := range j.nodes {
		if n != dead && n.State == cluster.Busy {
			s.mgr.ReleaseNode(n)
		}
	}
	j.nodes = nil
	j.State = Requeued
	s.Release(j, []cloud.Option{cloud.Reserved, cloud.OnDemand}, cloud.OnDemand)
}

// accountReserved books busy-time carbon for the reserved nodes of a
// finished execution segment.
func (s *System) accountReserved(j *Job, start, end simtime.Time) {
	for _, n := range j.nodes {
		if n.Option == cloud.Reserved {
			iv := simtime.Interval{Start: start, End: end}
			j.ReservedBusyCarbon += s.power.Carbon(s.carbonIntegral(iv), 1)
		}
	}
}

func (s *System) removePending(req *request) {
	for i, r := range s.pending {
		if r == req {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return
		}
	}
}

// PendingCount returns the queue depth (for tests and monitoring).
func (s *System) PendingCount() int { return len(s.pending) }
