package batch

import (
	"math"
	"math/rand"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

var (
	testPricing = cloud.Pricing{OnDemandHourly: 1, ReservedFraction: 0.4, SpotFraction: 0.2}
	testPower   = cloud.Power{KWPerCPU: 0.01}
)

func flatTrace(hours int, ci float64) *carbon.Trace {
	vals := make([]float64, hours)
	for i := range vals {
		vals[i] = ci
	}
	return carbon.MustTrace("flat", vals)
}

func protoConfig(p policy.Policy, tr *carbon.Trace) Config {
	return Config{
		Policy:  p,
		Carbon:  tr,
		Pricing: testPricing,
		Power:   testPower,
		Seed:    1,
	}
}

func TestPrototypeSingleJob(t *testing.T) {
	tr := flatTrace(48, 100)
	jobs := workload.MustTrace("one", []workload.Job{
		{Arrival: 0, Length: 2 * simtime.Hour, CPUs: 1},
	})
	res, err := Run(protoConfig(policy.NoWait{}, tr), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 1 {
		t.Fatalf("%d jobs", len(res.Jobs))
	}
	j := res.Jobs[0]
	// No reserved fleet: the job waits out one boot delay (3 min).
	if j.Start != simtime.Time(3*simtime.Minute) {
		t.Errorf("start = %v, want 3m (boot delay)", j.Start)
	}
	if j.Waiting() != 3*simtime.Minute {
		t.Errorf("waiting = %v", j.Waiting())
	}
	if res.NodesLaunched != 1 {
		t.Errorf("nodes launched = %d", res.NodesLaunched)
	}
	// Billing: boot 3 min + run 120 min + idle 10 min = 133 min at $1/h.
	if math.Abs(res.Cost-133.0/60) > 1e-9 {
		t.Errorf("cost = %v, want %v", res.Cost, 133.0/60)
	}
	// Carbon likewise covers the whole lifetime: the prototype's
	// overhead relative to the simulator's ideal 2 h accounting.
	want := 100 * 0.01 * 133.0 / 60
	if math.Abs(res.CarbonG-want) > 1e-9 {
		t.Errorf("carbon = %v, want %v", res.CarbonG, want)
	}
}

func TestPrototypeReservedNoBootNoUsageCost(t *testing.T) {
	tr := flatTrace(48, 100)
	cfg := protoConfig(policy.NoWait{}, tr)
	cfg.ReservedNodes = 2
	jobs := workload.MustTrace("one", []workload.Job{
		{Arrival: 0, Length: simtime.Hour, CPUs: 1},
	})
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.Start != 0 || j.Waiting() != 0 {
		t.Errorf("reserved job should start instantly: %+v", j)
	}
	// Cost is the upfront only: 2 × 48 h × $0.40.
	if math.Abs(res.Cost-2*48*0.4) > 1e-9 {
		t.Errorf("cost = %v", res.Cost)
	}
	// Reserved carbon: busy hour only (idle reserved powered off).
	if math.Abs(res.CarbonG-100*0.01*1) > 1e-9 {
		t.Errorf("carbon = %v", res.CarbonG)
	}
	if res.NodesLaunched != 0 {
		t.Errorf("nodes launched = %d", res.NodesLaunched)
	}
}

func TestPrototypeGangAllocation(t *testing.T) {
	tr := flatTrace(48, 100)
	cfg := protoConfig(policy.NoWait{}, tr)
	cfg.ReservedNodes = 1
	jobs := workload.MustTrace("gang", []workload.Job{
		{Arrival: 0, Length: simtime.Hour, CPUs: 3},
	})
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	// One reserved node held immediately, two launched: start at boot end.
	if j.Start != simtime.Time(3*simtime.Minute) {
		t.Errorf("gang start = %v", j.Start)
	}
	if res.NodesLaunched != 2 {
		t.Errorf("nodes launched = %d, want 2", res.NodesLaunched)
	}
}

func TestPrototypeNodeReuse(t *testing.T) {
	// Two sequential jobs 5 min apart reuse one elastic node: only one
	// launch, no second boot delay.
	tr := flatTrace(48, 100)
	jobs := workload.MustTrace("two", []workload.Job{
		{Arrival: 0, Length: 30 * simtime.Minute, CPUs: 1},
		{Arrival: simtime.Time(35 * simtime.Minute), Length: 30 * simtime.Minute, CPUs: 1},
	})
	res, err := Run(protoConfig(policy.NoWait{}, tr), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesLaunched != 1 {
		t.Fatalf("nodes launched = %d, want 1 (reuse)", res.NodesLaunched)
	}
	b := res.Jobs[1]
	if b.Start != simtime.Time(35*simtime.Minute) || b.Waiting() != 0 {
		t.Errorf("second job should start instantly on the warm node: %+v", b)
	}
}

func TestPrototypeCarbonAwareDelay(t *testing.T) {
	vals := make([]float64, 48)
	for i := range vals {
		vals[i] = 500
	}
	vals[4] = 50
	tr := carbon.MustTrace("dip", vals)
	jobs := workload.MustTrace("one", []workload.Job{
		{Arrival: 0, Length: simtime.Hour, CPUs: 1},
	})
	res, err := Run(protoConfig(policy.LowestWindow{}, tr), jobs)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	// Released at hour 4, plus boot delay.
	if j.Start != simtime.Time(4*simtime.Hour+3*simtime.Minute) {
		t.Errorf("start = %v", j.Start)
	}
}

func TestPrototypeSpotInterruptRequeues(t *testing.T) {
	tr := flatTrace(100, 100)
	cfg := protoConfig(policy.NoWait{}, tr)
	cfg.SpotMaxLen = 10 * simtime.Hour
	cfg.EvictionRate = 0.95
	cfg.Seed = 2
	jobs := workload.MustTrace("one", []workload.Job{
		{Arrival: 0, Length: 5 * simtime.Hour, CPUs: 1},
	})
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.Attempts < 2 {
		t.Fatalf("attempts = %d, want interruption + restart", j.Attempts)
	}
	if j.State != Completed {
		t.Fatalf("state = %v", j.State)
	}
	if res.TotalEvictions() != j.Attempts-1 {
		t.Errorf("evictions = %d", res.TotalEvictions())
	}
	// The restart runs on on-demand: waiting includes the lost runtime.
	if j.Waiting() <= 0 {
		t.Errorf("waiting = %v", j.Waiting())
	}
}

func TestPrototypeDeterministic(t *testing.T) {
	tr := carbon.RegionSAAU.Generate(24*12, 3)
	jobs := workload.AlibabaPAIWeek().GenerateByCount(rand.New(rand.NewSource(5)), 120, simtime.Week)
	cfg := protoConfig(policy.CarbonTime{}, tr)
	cfg.ReservedNodes = 5
	cfg.SpotMaxLen = 2 * simtime.Hour
	cfg.EvictionRate = 0.1
	a, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.CarbonG != b.CarbonG || a.MeanWaiting() != b.MeanWaiting() {
		t.Fatal("prototype runs must be deterministic")
	}
}

func TestPrototypeAllJobsComplete(t *testing.T) {
	tr := carbon.RegionCAUS.Generate(24*12, 4)
	jobs := workload.AlibabaPAIWeek().GenerateByCount(rand.New(rand.NewSource(6)), 200, simtime.Week)
	for _, p := range []policy.Policy{policy.NoWait{}, policy.LowestSlot{}, policy.CarbonTime{}} {
		cfg := protoConfig(p, tr)
		cfg.ReservedNodes = 8
		res, err := Run(cfg, jobs)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if len(res.Jobs) != jobs.Len() {
			t.Fatalf("%s: %d/%d jobs", p.Name(), len(res.Jobs), jobs.Len())
		}
		for _, j := range res.Jobs {
			if j.State != Completed || j.End <= j.Start {
				t.Fatalf("%s: bad record %+v", p.Name(), j)
			}
		}
	}
}

func TestPrototypeAllWaitWaitsForReserved(t *testing.T) {
	// Job A holds the single reserved node 2 h; B (short queue, W=6h)
	// arrives at 1 h and must start at 2 h on the freed reserved node
	// rather than launching on-demand.
	tr := flatTrace(48, 100)
	cfg := protoConfig(policy.AllWait{}, tr)
	cfg.ReservedNodes = 1
	jobs := workload.MustTrace("two", []workload.Job{
		{Arrival: 0, Length: 2 * simtime.Hour, CPUs: 1},
		{Arrival: simtime.Time(simtime.Hour), Length: simtime.Hour, CPUs: 1},
	})
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Jobs[1]
	if b.Start != simtime.Time(2*simtime.Hour) {
		t.Errorf("B started at %v, want 2h (reserved freed)", b.Start)
	}
	if res.NodesLaunched != 0 {
		t.Errorf("no on-demand node should launch, got %d", res.NodesLaunched)
	}
}

func TestPrototypeAllWaitFallsBackAtDeadline(t *testing.T) {
	// The reserved node stays busy past B's 6 h short-queue deadline: B
	// must fall back to a launched on-demand node at the deadline.
	tr := flatTrace(48, 100)
	cfg := protoConfig(policy.AllWait{}, tr)
	cfg.ReservedNodes = 1
	jobs := workload.MustTrace("two", []workload.Job{
		{Arrival: 0, Length: 20 * simtime.Hour, CPUs: 1},
		{Arrival: 0, Length: simtime.Hour, CPUs: 1},
	})
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Jobs[1]
	want := simtime.Time(6*simtime.Hour + 3*simtime.Minute) // deadline + boot
	if b.Start != want {
		t.Errorf("B started at %v, want %v", b.Start, want)
	}
	if res.NodesLaunched != 1 {
		t.Errorf("nodes launched = %d, want 1", res.NodesLaunched)
	}
}

func TestPrototypeSuspendResumeSegments(t *testing.T) {
	// Two cheap slots at hours 2 and 5: WaitAwhile splits a 2 h job into
	// two segments; the prototype runs them as separate allocations with
	// a boot before each (no reserved fleet).
	vals := []float64{900, 900, 100, 900, 900, 100, 900, 900, 900, 900, 900, 900}
	tr := carbon.MustTrace("dips", vals)
	jobs := workload.MustTrace("one", []workload.Job{
		{Arrival: 0, Length: 2 * simtime.Hour, CPUs: 1},
	})
	res, err := Run(protoConfig(policy.WaitAwhile{}, tr), jobs)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.State != Completed {
		t.Fatalf("state = %v", j.State)
	}
	// First segment boots at hour 2 (+3 min), second at hour 5 (+3 min),
	// ending at 6h03m.
	wantEnd := simtime.Time(6*simtime.Hour + 3*simtime.Minute)
	if j.End != wantEnd {
		t.Errorf("end = %v, want %v", j.End, wantEnd)
	}
	if j.Start != simtime.Time(2*simtime.Hour+3*simtime.Minute) {
		t.Errorf("start = %v", j.Start)
	}
}

func TestPrototypeSuspendResumeOnReserved(t *testing.T) {
	// With a reserved node, segments claim it instantly (no boots), so
	// the prototype reproduces the simulator's plan timing exactly.
	vals := []float64{900, 900, 100, 900, 900, 100, 900, 900, 900, 900, 900, 900}
	tr := carbon.MustTrace("dips", vals)
	cfg := protoConfig(policy.WaitAwhile{}, tr)
	cfg.ReservedNodes = 1
	jobs := workload.MustTrace("one", []workload.Job{
		{Arrival: 0, Length: 2 * simtime.Hour, CPUs: 1},
	})
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.End != simtime.Time(6*simtime.Hour) {
		t.Errorf("end = %v, want 6h", j.End)
	}
	// Waiting = completion − length = 4 h of suspension.
	if j.Waiting() != 4*simtime.Hour {
		t.Errorf("waiting = %v", j.Waiting())
	}
	// Reserved busy carbon: two cheap hours at CI 100 × 0.01 kW = 2 g.
	if math.Abs(j.ReservedBusyCarbon-2) > 1e-9 {
		t.Errorf("reserved carbon = %v", j.ReservedBusyCarbon)
	}
}

func TestPrototypeEcovisorRuns(t *testing.T) {
	tr := carbon.RegionSAAU.Generate(24*10, 9)
	jobs := workload.AlibabaPAIWeek().GenerateByCount(rand.New(rand.NewSource(10)), 120, simtime.Week)
	cfg := protoConfig(policy.Ecovisor{}, tr)
	cfg.ReservedNodes = 10
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != jobs.Len() {
		t.Fatalf("%d/%d jobs", len(res.Jobs), jobs.Len())
	}
	for _, j := range res.Jobs {
		if j.State != Completed {
			t.Fatalf("job %d state %v", j.Spec.ID, j.State)
		}
	}
}

func TestPrototypeValidation(t *testing.T) {
	tr := flatTrace(10, 100)
	jobs := workload.MustTrace("one", []workload.Job{{Arrival: 0, Length: 60, CPUs: 1}})
	if _, err := Run(Config{Carbon: tr}, jobs); err == nil {
		t.Error("missing policy should error")
	}
	if _, err := Run(Config{Policy: policy.NoWait{}}, jobs); err == nil {
		t.Error("missing carbon should error")
	}
}

func TestJobStateString(t *testing.T) {
	names := map[JobState]string{
		Pending: "PENDING", Running: "RUNNING", Completed: "COMPLETED", Requeued: "REQUEUED",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%v != %s", s, want)
		}
	}
	if JobState(9).String() != "STATE(9)" {
		t.Error("unknown state")
	}
}
