package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	tests := []struct {
		x, want float64
	}{
		{0, 0},
		{1, 0.25},
		{1.5, 0.25},
		{2, 0.75},
		{3, 1},
		{99, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); !almostEq(got, tt.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(5) != 0 {
		t.Error("empty ECDF should return 0")
	}
	if _, err := e.Quantile(0.5); err != ErrEmpty {
		t.Error("empty quantile should return ErrEmpty")
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40, 50})
	q, err := e.Quantile(0.5)
	if err != nil || q != 30 {
		t.Errorf("Quantile(0.5) = %v, %v", q, err)
	}
	q, _ = e.Quantile(-1) // clamps
	if q != 10 {
		t.Errorf("Quantile(-1) = %v", q)
	}
	q, _ = e.Quantile(2) // clamps
	if q != 50 {
		t.Errorf("Quantile(2) = %v", q)
	}
}

// Property: ECDF is monotone non-decreasing and within [0, 1].
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []int16, a, b int16) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		e := NewECDF(xs)
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		fx, fy := e.At(x), e.At(y)
		return fx >= 0 && fy <= 1 && fx <= fy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedCDF(t *testing.T) {
	// Values 1..4 with weights equal to values: total 10.
	c := NewWeightedCDF([]float64{3, 1, 4, 2}, []float64{3, 1, 4, 2})
	if c.Total() != 10 {
		t.Errorf("Total = %v", c.Total())
	}
	tests := []struct {
		x, want float64
	}{
		{0.5, 0},
		{1, 0.1},
		{2, 0.3},
		{3, 0.6},
		{4, 1},
		{9, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); !almostEq(got, tt.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestWeightedCDFZeroTotal(t *testing.T) {
	c := NewWeightedCDF([]float64{1, 2}, []float64{0, 0})
	if c.At(2) != 0 {
		t.Error("zero-weight CDF should return 0")
	}
}

func TestWeightedCDFPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWeightedCDF([]float64{1}, []float64{1, 2})
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 10, 20, 30})
	for _, x := range []float64{-5, 0, 5, 10, 15, 25, 30, 99} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d", h.Over)
	}
	want := []int64{2, 2, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("Counts[%d] = %d, want %d", i, c, want[i])
		}
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d", h.Total())
	}
	fr := h.Fractions()
	if !almostEq(fr[0], 0.4, 1e-12) {
		t.Errorf("Fractions[0] = %v", fr[0])
	}
	if h.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, edges := range [][]float64{{1}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("edges %v: expected panic", edges)
				}
			}()
			NewHistogram(edges)
		}()
	}
}

func TestHistogramEmptyFractions(t *testing.T) {
	h := NewHistogram([]float64{0, 1})
	fr := h.Fractions()
	if len(fr) != 1 || fr[0] != 0 {
		t.Errorf("empty fractions = %v", fr)
	}
}

// Property: histogram conserves samples (under + over + total == adds).
func TestHistogramConservation(t *testing.T) {
	f := func(raw []int16) bool {
		h := NewHistogram([]float64{-100, 0, 100})
		for _, v := range raw {
			h.Add(float64(v))
		}
		return h.Under+h.Over+h.Total() == int64(len(raw))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: weighted CDF is monotone and ends at 1 for positive totals.
func TestWeightedCDFMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		ws := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v % 50)
			ws[i] = float64(v%7) + 1
		}
		c := NewWeightedCDF(vals, ws)
		prev := -1.0
		for x := -1.0; x <= 51; x++ {
			fx := c.At(x)
			if fx < prev-1e-12 || fx < 0 || fx > 1+1e-12 {
				return false
			}
			prev = fx
		}
		return math.Abs(c.At(50)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
