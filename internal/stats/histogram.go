package stats

import (
	"fmt"
	"math"
	"sort"
)

// CumulativeHistogram is a fixed-bucket histogram in the Prometheus cumulative
// style: bucket i counts observations <= Bounds[i], with an implicit
// +Inf bucket catching the rest. It is the serving layer's latency
// summary — bounded memory per endpoint regardless of request volume,
// and cheap O(log buckets) observation. The zero value is not usable;
// call NewCumulativeHistogram. Not safe for concurrent use; callers guard it.
type CumulativeHistogram struct {
	bounds []float64
	counts []int64 // len(bounds)+1; last is the +Inf overflow bucket
	count  int64
	sum    float64
}

// NewCumulativeHistogram builds a histogram over the given strictly ascending,
// finite upper bounds. At least one bound is required.
func NewCumulativeHistogram(bounds ...float64) (*CumulativeHistogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("stats: histogram bound %d is not finite: %v", i, b)
		}
		if i > 0 && b <= bounds[i-1] {
			return nil, fmt.Errorf("stats: histogram bounds must ascend (%v after %v)", b, bounds[i-1])
		}
	}
	return &CumulativeHistogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}, nil
}

// MustCumulativeHistogram is NewCumulativeHistogram that panics on error, for static bucket
// layouts known valid at compile time.
func MustCumulativeHistogram(bounds ...float64) *CumulativeHistogram {
	h, err := NewCumulativeHistogram(bounds...)
	if err != nil {
		panic(err)
	}
	return h
}

// ExponentialBounds returns n bounds starting at start, each factor times
// the previous — the standard latency-bucket ladder.
func ExponentialBounds(start, factor float64, n int) []float64 {
	out := make([]float64, 0, n)
	b := start
	for i := 0; i < n; i++ {
		out = append(out, b)
		b *= factor
	}
	return out
}

// Observe records one value. NaN observations are ignored — a poisoned
// latency sample must not poison the whole summary.
func (h *CumulativeHistogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *CumulativeHistogram) Count() int64 { return h.count }

// Sum returns the sum of all observations.
func (h *CumulativeHistogram) Sum() float64 { return h.sum }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *CumulativeHistogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Cumulative returns, for each bound, the count of observations <= that
// bound — the Prometheus `le` series. The final +Inf bucket is Count().
func (h *CumulativeHistogram) Cumulative() []int64 {
	out := make([]int64, len(h.bounds))
	var cum int64
	for i := range h.bounds {
		cum += h.counts[i]
		out[i] = cum
	}
	return out
}

// Quantile estimates the p-th quantile (p in [0, 1], clamped) assuming a
// uniform distribution within each bucket; observations beyond the last
// bound report that bound. It returns 0 for an empty histogram.
func (h *CumulativeHistogram) Quantile(p float64) float64 {
	if h.count == 0 || math.IsNaN(p) {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(h.count)
	var cum int64
	for i, c := range h.counts[:len(h.bounds)] {
		if float64(cum)+float64(c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if c == 0 {
				return hi
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Snapshot copies the histogram's current state, so a renderer can work
// from a consistent view while the caller's lock is released.
func (h *CumulativeHistogram) Snapshot() CumulativeHistogram {
	return CumulativeHistogram{
		bounds: h.bounds,
		counts: append([]int64(nil), h.counts...),
		count:  h.count,
		sum:    h.sum,
	}
}
