package stats

import (
	"fmt"
	"sort"
	"strings"
)

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. The input is copied.
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x), i.e. the fraction of samples not exceeding x.
// It returns 0 for an empty sample.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with sorted[i] > x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile (q in [0, 1]) with linear interpolation.
func (e *ECDF) Quantile(q float64) (float64, error) {
	if len(e.sorted) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return percentileSorted(e.sorted, q*100), nil
}

// WeightedCDF is a CDF over (value, weight) points — used for
// "fraction of total savings contributed by jobs up to length x"
// style curves (paper Figure 9).
type WeightedCDF struct {
	values  []float64
	cumsum  []float64 // cumulative weight up to and including values[i]
	totalW  float64
	sortedV bool
}

// NewWeightedCDF builds a weighted CDF from parallel slices of values and
// non-negative weights. Inputs are copied. It panics if lengths differ.
func NewWeightedCDF(values, weights []float64) *WeightedCDF {
	if len(values) != len(weights) {
		panic("stats: NewWeightedCDF length mismatch")
	}
	type vw struct{ v, w float64 }
	pairs := make([]vw, len(values))
	for i := range values {
		pairs[i] = vw{values[i], weights[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	c := &WeightedCDF{
		values: make([]float64, len(pairs)),
		cumsum: make([]float64, len(pairs)),
	}
	var run float64
	for i, p := range pairs {
		run += p.w
		c.values[i] = p.v
		c.cumsum[i] = run
	}
	c.totalW = run
	return c
}

// Total returns the total weight.
func (c *WeightedCDF) Total() float64 { return c.totalW }

// At returns the fraction of total weight carried by values <= x.
// It returns 0 when the total weight is 0.
func (c *WeightedCDF) At(x float64) float64 {
	if c.totalW == 0 || len(c.values) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.values, x)
	for i < len(c.values) && c.values[i] == x {
		i++
	}
	if i == 0 {
		return 0
	}
	return c.cumsum[i-1] / c.totalW
}

// Histogram counts samples into fixed bins defined by ascending edges:
// bin i covers [Edges[i], Edges[i+1]).
type Histogram struct {
	Edges  []float64
	Counts []int64
	Under  int64 // samples below Edges[0]
	Over   int64 // samples at or above Edges[len-1]
}

// NewHistogram creates a histogram with the given strictly ascending edges.
// It panics with fewer than two edges or non-ascending edges.
func NewHistogram(edges []float64) *Histogram {
	if len(edges) < 2 {
		panic("stats: histogram needs at least two edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("stats: histogram edges must be strictly ascending")
		}
	}
	return &Histogram{
		Edges:  append([]float64(nil), edges...),
		Counts: make([]int64, len(edges)-1),
	}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	if x < h.Edges[0] {
		h.Under++
		return
	}
	if x >= h.Edges[len(h.Edges)-1] {
		h.Over++
		return
	}
	// Last edge index with Edges[i] <= x.
	i := sort.SearchFloat64s(h.Edges, x)
	if i == len(h.Edges) || h.Edges[i] > x {
		i--
	}
	h.Counts[i]++
}

// Total returns the number of in-range samples.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Fractions returns per-bin fractions of the in-range total (zeros when
// empty).
func (h *Histogram) Fractions() []float64 {
	t := h.Total()
	fr := make([]float64, len(h.Counts))
	if t == 0 {
		return fr
	}
	for i, c := range h.Counts {
		fr[i] = float64(c) / float64(t)
	}
	return fr
}

// String renders the histogram as a compact text table.
func (h *Histogram) String() string {
	var b strings.Builder
	for i, c := range h.Counts {
		fmt.Fprintf(&b, "[%g,%g): %d\n", h.Edges[i], h.Edges[i+1], c)
	}
	return b.String()
}
