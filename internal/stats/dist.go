package stats

import (
	"math"
	"math/rand"
)

// Distribution draws float64 samples from some law. Implementations take
// randomness from the *rand.Rand supplied at construction so that trace
// generation is reproducible.
type Distribution interface {
	// Sample draws one value.
	Sample() float64
	// Mean returns the distribution's theoretical mean (after any
	// truncation an implementation applies, implementations may return
	// the untruncated mean as an approximation; see each type).
	Mean() float64
}

// Exponential samples Exp(1/mean).
type Exponential struct {
	rng  *rand.Rand
	mean float64
}

// NewExponential returns an exponential distribution with the given mean.
// It panics on a non-positive mean.
func NewExponential(rng *rand.Rand, mean float64) *Exponential {
	if mean <= 0 {
		panic("stats: exponential mean must be positive")
	}
	return &Exponential{rng: rng, mean: mean}
}

// Sample draws one exponential variate.
func (e *Exponential) Sample() float64 { return e.rng.ExpFloat64() * e.mean }

// Mean returns the configured mean.
func (e *Exponential) Mean() float64 { return e.mean }

// LogNormal samples exp(N(mu, sigma²)), optionally truncated to
// [Min, Max] by resampling (with a deterministic clamp fallback after 64
// rejected draws, so pathological configurations cannot loop forever).
type LogNormal struct {
	rng      *rand.Rand
	Mu       float64
	Sigma    float64
	Min, Max float64 // 0 values mean "no bound"
}

// NewLogNormal returns an untruncated log-normal distribution.
func NewLogNormal(rng *rand.Rand, mu, sigma float64) *LogNormal {
	if sigma < 0 {
		panic("stats: lognormal sigma must be non-negative")
	}
	return &LogNormal{rng: rng, Mu: mu, Sigma: sigma}
}

// NewTruncLogNormal returns a log-normal distribution truncated to
// [min, max] (either may be 0 for unbounded).
func NewTruncLogNormal(rng *rand.Rand, mu, sigma, min, max float64) *LogNormal {
	d := NewLogNormal(rng, mu, sigma)
	d.Min, d.Max = min, max
	return d
}

// Sample draws one variate, honouring the truncation bounds.
func (l *LogNormal) Sample() float64 {
	for i := 0; i < 64; i++ {
		x := math.Exp(l.Mu + l.Sigma*l.rng.NormFloat64())
		if l.Min > 0 && x < l.Min {
			continue
		}
		if l.Max > 0 && x > l.Max {
			continue
		}
		return x
	}
	// Clamp as a last resort: keeps the generator total and deterministic.
	x := math.Exp(l.Mu)
	if l.Min > 0 && x < l.Min {
		return l.Min
	}
	if l.Max > 0 && x > l.Max {
		return l.Max
	}
	return x
}

// Mean returns the untruncated log-normal mean exp(mu + sigma²/2).
func (l *LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// BoundedPareto samples a Pareto(alpha) law truncated to [L, H]
// via inverse-CDF. It is the classic heavy-tailed job-size model.
type BoundedPareto struct {
	rng   *rand.Rand
	Alpha float64
	L, H  float64
}

// NewBoundedPareto returns a bounded Pareto distribution on [l, h] with
// shape alpha. It panics unless 0 < l < h and alpha > 0.
func NewBoundedPareto(rng *rand.Rand, alpha, l, h float64) *BoundedPareto {
	if l <= 0 || h <= l || alpha <= 0 {
		panic("stats: bounded pareto requires 0 < L < H and alpha > 0")
	}
	return &BoundedPareto{rng: rng, Alpha: alpha, L: l, H: h}
}

// Sample draws one variate via inverse transform sampling.
func (p *BoundedPareto) Sample() float64 {
	u := p.rng.Float64()
	la := math.Pow(p.L, p.Alpha)
	ha := math.Pow(p.H, p.Alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.Alpha)
	if x < p.L {
		x = p.L
	}
	if x > p.H {
		x = p.H
	}
	return x
}

// Mean returns the theoretical bounded-Pareto mean.
func (p *BoundedPareto) Mean() float64 {
	a := p.Alpha
	if a == 1 {
		return p.L * p.H / (p.H - p.L) * math.Log(p.H/p.L)
	}
	la := math.Pow(p.L, a)
	ha := math.Pow(p.H, a)
	return la / (1 - la/ha) * (a / (a - 1)) * (1/math.Pow(p.L, a-1) - 1/math.Pow(p.H, a-1))
}

// Mixture draws from one of several component distributions with the given
// weights.
type Mixture struct {
	rng        *rand.Rand
	components []Distribution
	cumWeights []float64
}

// NewMixture builds a mixture; weights need not sum to 1 (they are
// normalized). It panics on length mismatch, empty input, or a
// non-positive total weight.
func NewMixture(rng *rand.Rand, components []Distribution, weights []float64) *Mixture {
	if len(components) == 0 || len(components) != len(weights) {
		panic("stats: mixture needs matching non-empty components and weights")
	}
	cum := make([]float64, len(weights))
	var run float64
	for i, w := range weights {
		if w < 0 {
			panic("stats: mixture weights must be non-negative")
		}
		run += w
		cum[i] = run
	}
	if run <= 0 {
		panic("stats: mixture total weight must be positive")
	}
	for i := range cum {
		cum[i] /= run
	}
	return &Mixture{rng: rng, components: components, cumWeights: cum}
}

// Sample picks a component by weight and samples it.
func (m *Mixture) Sample() float64 {
	u := m.rng.Float64()
	for i, c := range m.cumWeights {
		if u <= c {
			return m.components[i].Sample()
		}
	}
	return m.components[len(m.components)-1].Sample()
}

// Mean returns the weighted average of component means.
func (m *Mixture) Mean() float64 {
	var mean, prev float64
	for i, comp := range m.components {
		w := m.cumWeights[i] - prev
		prev = m.cumWeights[i]
		mean += w * comp.Mean()
	}
	return mean
}

// Constant is a degenerate distribution that always returns the same value;
// handy in tests and mixtures.
type Constant float64

// Sample returns the constant.
func (c Constant) Sample() float64 { return float64(c) }

// Mean returns the constant.
func (c Constant) Mean() float64 { return float64(c) }

// WeightedChoice picks an index in [0, len(weights)) with probability
// proportional to weights. It panics on empty or non-positive-total
// weights.
func WeightedChoice(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("stats: WeightedChoice needs positive total weight")
	}
	u := rng.Float64() * total
	var run float64
	for i, w := range weights {
		run += w
		if u <= run {
			return i
		}
	}
	return len(weights) - 1
}
