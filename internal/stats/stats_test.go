package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSumMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Sum(xs); got != 40 {
		t.Errorf("Sum = %v", got)
	}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v", got)
	}
	if got := CV(xs); got != 0.4 {
		t.Errorf("CV = %v", got)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || CV(nil) != 0 {
		t.Error("empty slice should yield zeros")
	}
	if Variance([]float64{7}) != 0 {
		t.Error("single sample variance should be 0")
	}
	if CV([]float64{0, 0}) != 0 {
		t.Error("zero-mean CV should be 0")
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Error("MinMax(nil) should return ErrEmpty")
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Error("Percentile(nil) should return ErrEmpty")
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 4, 1, 5})
	if err != nil || min != -1 || max != 5 {
		t.Errorf("MinMax = %v, %v, %v", min, max, err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p, want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{-5, 15},  // clamped
		{150, 50}, // clamped
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil || !almostEq(got, tt.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, %v; want %v", tt.p, got, err, tt.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 15 || xs[4] != 50 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	got, err := Percentile([]float64{0, 10}, 25)
	if err != nil || !almostEq(got, 2.5, 1e-9) {
		t.Errorf("Percentile interpolation = %v, want 2.5", got)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Correlation(xs, ys)
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Errorf("perfect correlation = %v, %v", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Correlation(xs, neg)
	if err != nil || !almostEq(r, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v, %v", r, err)
	}
	if _, err := Correlation(xs, ys[:3]); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Correlation([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("constant series should error")
	}
	if _, err := Correlation([]float64{1}, []float64{2}); err != ErrEmpty {
		t.Error("too-short input should return ErrEmpty")
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	if a.N() != int64(len(xs)) {
		t.Errorf("N = %d", a.N())
	}
	if !almostEq(a.Mean(), Mean(xs), 1e-12) {
		t.Errorf("Mean = %v", a.Mean())
	}
	if !almostEq(a.Variance(), Variance(xs), 1e-12) {
		t.Errorf("Variance = %v", a.Variance())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	if !almostEq(a.Sum(), 40, 1e-12) {
		t.Errorf("Sum = %v", a.Sum())
	}
}

func TestAccumulatorZeroValue(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 || a.StdDev() != 0 {
		t.Error("zero-value accumulator should report zeros")
	}
}

// Property: accumulator mean/variance agree with the batch formulas for any
// input.
func TestAccumulatorProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		var a Accumulator
		for _, x := range xs {
			a.Add(x)
		}
		scale := math.Max(1, math.Abs(a.Variance()))
		return almostEq(a.Mean(), Mean(xs), 1e-6) &&
			almostEq(a.Variance(), Variance(xs), 1e-6*scale)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []int16, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		lo, hi := float64(p1%101), float64(p2%101)
		if lo > hi {
			lo, hi = hi, lo
		}
		q1, _ := Percentile(xs, lo)
		q2, _ := Percentile(xs, hi)
		min, max, _ := MinMax(xs)
		return q1 <= q2+1e-9 && q1 >= min-1e-9 && q2 <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
