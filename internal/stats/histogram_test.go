package stats

import (
	"math"
	"reflect"
	"testing"
)

func TestHistogramValidation(t *testing.T) {
	if _, err := NewCumulativeHistogram(); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := NewCumulativeHistogram(1, 1); err == nil {
		t.Fatal("non-ascending bounds accepted")
	}
	if _, err := NewCumulativeHistogram(1, math.Inf(1)); err == nil {
		t.Fatal("infinite bound accepted")
	}
	if _, err := NewCumulativeHistogram(math.NaN()); err == nil {
		t.Fatal("NaN bound accepted")
	}
}

func TestHistogramObserveAndCumulative(t *testing.T) {
	h := MustCumulativeHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 2, 50, 1000, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5 (NaN ignored)", h.Count())
	}
	if want := 0.5 + 1 + 2 + 50 + 1000; h.Sum() != want {
		t.Fatalf("Sum = %v, want %v", h.Sum(), want)
	}
	// le=1: {0.5, 1}; le=10: +{2}; le=100: +{50}; +Inf: {1000}.
	if got, want := h.Cumulative(), []int64{2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Cumulative = %v, want %v", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := MustCumulativeHistogram(10, 20, 40)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(15) // all in (10, 20]
	}
	q := h.Quantile(0.5)
	if q < 10 || q > 20 {
		t.Fatalf("Quantile(0.5) = %v, want within the populated bucket (10, 20]", q)
	}
	// Out-of-range p clamps; values beyond the last bound report it.
	h.Observe(1e9)
	if got := h.Quantile(2); got != 40 {
		t.Fatalf("Quantile(2) = %v, want last bound 40", got)
	}
	if got := h.Quantile(-1); got != 10 {
		t.Fatalf("Quantile(-1) = %v, want first bound edge 10", got)
	}
}

func TestHistogramSnapshotIsolated(t *testing.T) {
	h := MustCumulativeHistogram(1, 2)
	h.Observe(1.5)
	snap := h.Snapshot()
	h.Observe(0.5)
	if snap.Count() != 1 {
		t.Fatalf("snapshot count = %d, want 1", snap.Count())
	}
	if h.Count() != 2 {
		t.Fatalf("live count = %d, want 2", h.Count())
	}
}

func TestExponentialBounds(t *testing.T) {
	got := ExponentialBounds(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("bounds[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
