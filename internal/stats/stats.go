// Package stats provides the small statistics toolkit used by the GAIA
// simulator: descriptive statistics, percentiles, empirical CDFs,
// histograms, Pearson correlation, and seeded random distributions for the
// synthetic trace generators.
//
// Everything here is deterministic given its inputs; the random samplers
// take an explicit *rand.Rand so experiments are reproducible.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// ErrNaN is returned by the percentile functions for a NaN rank: NaN
// comparisons are all false, so clamping cannot repair it and silently
// interpolating would index garbage.
var ErrNaN = errors.New("stats: NaN percentile")

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation (stddev/mean). It returns 0 when
// the mean is 0 to avoid dividing by zero on degenerate inputs.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// MinMax returns the minimum and maximum of xs. It returns ErrEmpty for an
// empty slice.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Percentile returns the p-th percentile of xs using linear interpolation
// between order statistics. p is clamped to [0, 100]; a NaN p returns
// ErrNaN. It returns ErrEmpty for an empty slice. The input is not
// modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if math.IsNaN(p) {
		return 0, ErrNaN
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, clampRank(p)), nil
}

// PercentileInPlace is Percentile without the defensive copy: xs is
// sorted in place. For callers that own a reusable scratch buffer it
// makes the percentile allocation-free; the interpolation arithmetic is
// identical to Percentile's.
func PercentileInPlace(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if math.IsNaN(p) {
		return 0, ErrNaN
	}
	sort.Float64s(xs)
	return percentileSorted(xs, clampRank(p)), nil
}

// PercentileSorted is Percentile over already-sorted data: callers that
// memoize one sorted copy (the metrics layer's waiting column) answer
// each percentile query with a single interpolation instead of a fresh
// copy-and-sort. The arithmetic is identical to Percentile's.
func PercentileSorted(sorted []float64, p float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, ErrEmpty
	}
	if math.IsNaN(p) {
		return 0, ErrNaN
	}
	return percentileSorted(sorted, clampRank(p)), nil
}

// clampRank pins a percentile rank into [0, 100].
func clampRank(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 100 {
		return 100
	}
	return p
}

// percentileSorted computes a percentile over already-sorted data.
func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Correlation returns the Pearson correlation coefficient of paired samples
// xs and ys. It returns an error when the lengths differ, when there are
// fewer than two points, or when either series is constant.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: correlation requires equal-length samples")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: correlation undefined for constant series")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Accumulator computes running mean/variance/extrema without retaining
// samples (Welford's algorithm). The zero value is ready to use.
type Accumulator struct {
	n        int64
	mean, m2 float64
	min, max float64
	sum      float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	a.sum += x
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of samples added.
func (a *Accumulator) N() int64 { return a.n }

// Sum returns the running total.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean returns the running mean (0 with no samples).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the running population variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// StdDev returns the running population standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample (0 with no samples).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample (0 with no samples).
func (a *Accumulator) Max() float64 { return a.max }
