package stats

import (
	"math"
	"math/rand"
	"testing"
)

func newRNG() *rand.Rand { return rand.New(rand.NewSource(42)) }

func sampleN(d Distribution, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample()
	}
	return xs
}

func TestExponentialMean(t *testing.T) {
	d := NewExponential(newRNG(), 48)
	xs := sampleN(d, 50000)
	m := Mean(xs)
	if math.Abs(m-48) > 1.5 {
		t.Errorf("empirical mean %v, want ≈48", m)
	}
	if d.Mean() != 48 {
		t.Errorf("Mean() = %v", d.Mean())
	}
	for _, x := range xs[:100] {
		if x < 0 {
			t.Fatal("negative exponential sample")
		}
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewExponential(newRNG(), 0)
}

func TestLogNormalMoments(t *testing.T) {
	mu, sigma := math.Log(120), 0.5
	d := NewLogNormal(newRNG(), mu, sigma)
	want := math.Exp(mu + sigma*sigma/2)
	if math.Abs(d.Mean()-want) > 1e-9 {
		t.Errorf("Mean() = %v, want %v", d.Mean(), want)
	}
	xs := sampleN(d, 50000)
	if m := Mean(xs); math.Abs(m-want)/want > 0.05 {
		t.Errorf("empirical mean %v, want ≈%v", m, want)
	}
}

func TestTruncLogNormalBounds(t *testing.T) {
	d := NewTruncLogNormal(newRNG(), math.Log(60), 2.0, 5, 300)
	for i := 0; i < 10000; i++ {
		x := d.Sample()
		if x < 5 || x > 300 {
			t.Fatalf("sample %v outside [5, 300]", x)
		}
	}
}

func TestTruncLogNormalClampFallback(t *testing.T) {
	// Impossible band far from the median forces the clamp path.
	d := NewTruncLogNormal(newRNG(), math.Log(1), 0.0001, 50, 60)
	x := d.Sample()
	if x < 50 || x > 60 {
		t.Errorf("clamped sample %v outside [50, 60]", x)
	}
}

func TestLogNormalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLogNormal(newRNG(), 0, -1)
}

func TestBoundedParetoRange(t *testing.T) {
	d := NewBoundedPareto(newRNG(), 1.1, 1, 100)
	xs := sampleN(d, 20000)
	min, max, _ := MinMax(xs)
	if min < 1 || max > 100 {
		t.Errorf("samples outside [1, 100]: min %v max %v", min, max)
	}
	// Heavy tail: mean should exceed median substantially.
	med, _ := Percentile(xs, 50)
	if Mean(xs) < med {
		t.Error("bounded pareto should be right-skewed")
	}
}

func TestBoundedParetoMean(t *testing.T) {
	d := NewBoundedPareto(newRNG(), 1.5, 1, 1000)
	xs := sampleN(d, 200000)
	m := Mean(xs)
	if math.Abs(m-d.Mean())/d.Mean() > 0.1 {
		t.Errorf("empirical mean %v vs theoretical %v", m, d.Mean())
	}
	// alpha == 1 branch.
	d1 := NewBoundedPareto(newRNG(), 1, 1, 100)
	if d1.Mean() <= 0 {
		t.Error("alpha=1 mean should be positive")
	}
}

func TestBoundedParetoPanics(t *testing.T) {
	for _, args := range [][3]float64{{0, 1, 2}, {1, 0, 2}, {1, 2, 2}, {1, 3, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("args %v: expected panic", args)
				}
			}()
			NewBoundedPareto(newRNG(), args[0], args[1], args[2])
		}()
	}
}

func TestMixture(t *testing.T) {
	rng := newRNG()
	m := NewMixture(rng,
		[]Distribution{Constant(1), Constant(10)},
		[]float64{3, 1})
	if math.Abs(m.Mean()-3.25) > 1e-12 {
		t.Errorf("Mean = %v, want 3.25", m.Mean())
	}
	var ones, tens int
	for i := 0; i < 10000; i++ {
		switch m.Sample() {
		case 1:
			ones++
		case 10:
			tens++
		default:
			t.Fatal("unexpected sample")
		}
	}
	frac := float64(ones) / 10000
	if math.Abs(frac-0.75) > 0.03 {
		t.Errorf("component-1 fraction = %v, want ≈0.75", frac)
	}
}

func TestMixturePanics(t *testing.T) {
	cases := []struct {
		comps []Distribution
		ws    []float64
	}{
		{nil, nil},
		{[]Distribution{Constant(1)}, []float64{1, 2}},
		{[]Distribution{Constant(1)}, []float64{-1}},
		{[]Distribution{Constant(1)}, []float64{0}},
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			NewMixture(newRNG(), c.comps, c.ws)
		}()
	}
}

func TestConstant(t *testing.T) {
	c := Constant(7)
	if c.Sample() != 7 || c.Mean() != 7 {
		t.Error("Constant broken")
	}
}

func TestWeightedChoice(t *testing.T) {
	rng := newRNG()
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[WeightedChoice(rng, []float64{1, 2, 7})]++
	}
	fr2 := float64(counts[2]) / 30000
	if math.Abs(fr2-0.7) > 0.02 {
		t.Errorf("choice-2 fraction = %v, want ≈0.7", fr2)
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Error("all indices should be chosen eventually")
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	for _, ws := range [][]float64{nil, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weights %v: expected panic", ws)
				}
			}()
			WeightedChoice(newRNG(), ws)
		}()
	}
}

func TestDeterminism(t *testing.T) {
	a := sampleN(NewExponential(rand.New(rand.NewSource(7)), 10), 100)
	b := sampleN(NewExponential(rand.New(rand.NewSource(7)), 10), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must produce identical streams")
		}
	}
}
