package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// Guardrails on advise inputs. They bound the oracle tables a request can
// force the server to build (tables are O(horizon + W) per distinct
// (W, L) pair) and reject the nonsense values a public endpoint sees.
const (
	maxAdviseLength  = 30 * simtime.Day
	maxAdviseWait    = 7 * simtime.Day
	maxAdviseCPUs    = 1 << 20
	maxAdviseBodyLen = 1 << 20
)

// Default waiting-time guarantees as request values, shared by reference
// so normalization never allocates them. Read-only by contract.
var (
	defaultWaitShortMinutes = int64(defaultWaitShort.Minutes())
	defaultWaitLongMinutes  = int64(defaultWaitLong.Minutes())
)

// AdviseRequest is one online scheduling query: "a job like this just
// arrived — when should it start?". Times are integer simulation minutes
// (the trace starts at minute 0), matching the simulator's clock.
type AdviseRequest struct {
	// Policy is the scheduling policy tag (policy.Names()).
	Policy string `json:"policy"`
	// Region is the carbon-trace region code (GET /v1/traces).
	Region string `json:"region"`
	// LengthMinutes is the job's (estimated) execution time. Required.
	LengthMinutes int64 `json:"length_minutes"`
	// CPUs is the job's parallel width; default 1.
	CPUs int `json:"cpus,omitempty"`
	// ArrivalMinute is the submission time on the trace clock; default 0.
	ArrivalMinute int64 `json:"arrival_minute,omitempty"`
	// Queue forces the job class ("short" or "long"); empty classifies by
	// length against the default 2 h bound, as the scheduler does.
	Queue string `json:"queue,omitempty"`
	// MaxWaitMinutes overrides the queue's waiting-time guarantee
	// (deadline slack). Default: 360 for short, 1440 for long — the
	// paper's 6 h / 24 h configuration. 0 means "start now or never wait".
	MaxWaitMinutes *int64 `json:"max_wait_minutes,omitempty"`
	// AvgLengthMinutes is the historical average length that
	// length-oblivious policies use as their estimate; default 60,
	// matching the policy package's fallback.
	AvgLengthMinutes int64 `json:"avg_length_minutes,omitempty"`
	// SpotMaxMinutes marks jobs up to this length spot-eligible for the
	// instance-class recommendation; 0 disables spot.
	SpotMaxMinutes int64 `json:"spot_max_minutes,omitempty"`
}

// AdviseWindow is one suspend-resume execution window, in trace minutes.
type AdviseWindow struct {
	StartMinute int64 `json:"start_minute"`
	EndMinute   int64 `json:"end_minute"`
}

// AdviseResponse is the advisory verdict plus its predicted consequences
// versus running the job immediately on arrival (the NoWait baseline).
type AdviseResponse struct {
	Policy string `json:"policy"`
	Region string `json:"region"`
	Queue  string `json:"queue"`

	// StartMinute is when execution (first) begins; Plan is set instead
	// of a contiguous run for suspend-resume policies.
	StartMinute  int64          `json:"start_minute"`
	FinishMinute int64          `json:"finish_minute"`
	WaitMinutes  int64          `json:"wait_minutes"`
	Plan         []AdviseWindow `json:"plan,omitempty"`

	// InstanceClass is "spot" when the job fits the request's spot bound,
	// else "on-demand".
	InstanceClass string `json:"instance_class"`

	CarbonGrams         float64 `json:"carbon_grams"`
	BaselineCarbonGrams float64 `json:"baseline_carbon_grams"`
	CarbonSavingsGrams  float64 `json:"carbon_savings_grams"`
	CostUSD             float64 `json:"cost_usd"`
	BaselineCostUSD     float64 `json:"baseline_cost_usd"`

	// FastPath reports whether the decision came from the precomputed
	// oracle tables (it is bit-identical either way; see carbon.Oracle).
	FastPath bool `json:"fast_path"`
}

// decodeAdvise strictly parses one advise body: unknown fields and
// trailing garbage are errors, so client typos fail loudly instead of
// silently meaning something else.
func decodeAdvise(r io.Reader) (AdviseRequest, error) {
	var req AdviseRequest
	if err := decodeAdviseInto(r, &req); err != nil {
		return AdviseRequest{}, err
	}
	return req, nil
}

// decodeAdviseInto is decodeAdvise writing into a caller-owned (possibly
// pooled) request, which it fully resets first. On error the request
// contents are unspecified.
func decodeAdviseInto(r io.Reader, req *AdviseRequest) error {
	*req = AdviseRequest{}
	dec := json.NewDecoder(io.LimitReader(r, maxAdviseBodyLen))
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return errors.New("invalid JSON: trailing data after request object")
	}
	return nil
}

// normalizeAdvise validates a decoded request against the server's trace
// registry and fills defaults in place. All failures map to HTTP 400.
func (s *Server) normalizeAdvise(req *AdviseRequest) error {
	if _, err := policy.ByName(req.Policy); err != nil {
		return err
	}
	req.Region = strings.ToUpper(strings.TrimSpace(req.Region))
	tr, ok := s.regions[req.Region]
	if !ok {
		return fmt.Errorf("unknown region %q (GET /v1/traces lists the available ones)", req.Region)
	}
	return normalizeAdviseJob(req, tr)
}

// normalizeAdviseJob is the per-job half of normalization — everything
// except the policy and region checks, which the batch endpoint resolves
// once for thousands of jobs. req.Region must already be normalized to a
// key of the region map that produced tr.
func normalizeAdviseJob(req *AdviseRequest, tr *carbon.Trace) error {
	length := simtime.Duration(req.LengthMinutes)
	if length <= 0 || length > maxAdviseLength {
		return fmt.Errorf("length_minutes must be in [1, %d]", maxAdviseLength.Minutes())
	}
	if req.CPUs == 0 {
		req.CPUs = 1
	}
	if req.CPUs < 1 || req.CPUs > maxAdviseCPUs {
		return fmt.Errorf("cpus must be in [1, %d]", maxAdviseCPUs)
	}
	if req.ArrivalMinute < 0 || simtime.Time(req.ArrivalMinute) >= simtime.Time(tr.Horizon()) {
		return fmt.Errorf("arrival_minute must be in [0, %d) for region %s", tr.Horizon().Minutes(), req.Region)
	}
	switch strings.ToLower(strings.TrimSpace(req.Queue)) {
	case "":
		if length <= defaultShortMax {
			req.Queue = workload.QueueShort.String()
		} else {
			req.Queue = workload.QueueLong.String()
		}
	case workload.QueueShort.String():
		req.Queue = workload.QueueShort.String()
	case workload.QueueLong.String():
		req.Queue = workload.QueueLong.String()
	default:
		return fmt.Errorf("queue must be %q or %q (or empty to classify by length)",
			workload.QueueShort.String(), workload.QueueLong.String())
	}
	if req.MaxWaitMinutes == nil {
		// Point at the shared defaults rather than allocating: nothing
		// downstream writes through the pointer, and the batch path
		// normalizes thousands of requests per call.
		if req.Queue == workload.QueueLong.String() {
			req.MaxWaitMinutes = &defaultWaitLongMinutes
		} else {
			req.MaxWaitMinutes = &defaultWaitShortMinutes
		}
	}
	if *req.MaxWaitMinutes < 0 || simtime.Duration(*req.MaxWaitMinutes) > maxAdviseWait {
		return fmt.Errorf("max_wait_minutes must be in [0, %d]", maxAdviseWait.Minutes())
	}
	if req.AvgLengthMinutes == 0 {
		req.AvgLengthMinutes = int64(simtime.Hour.Minutes())
	}
	if req.AvgLengthMinutes < 0 || simtime.Duration(req.AvgLengthMinutes) > maxAdviseLength {
		return fmt.Errorf("avg_length_minutes must be in [1, %d]", maxAdviseLength.Minutes())
	}
	if req.SpotMaxMinutes < 0 || simtime.Duration(req.SpotMaxMinutes) > maxAdviseLength {
		return fmt.Errorf("spot_max_minutes must be in [0, %d]", maxAdviseLength.Minutes())
	}
	return nil
}

// ctxKey identifies the inputs that determine a policy.Context for the
// advisory path. Region traces are built once at startup and shared, so
// trace pointer identity is region identity.
type ctxKey struct {
	tr      *carbon.Trace
	queue   workload.Queue
	maxWait simtime.Duration
	avgLen  simtime.Duration
}

// adviseScratch is the reusable per-request state of the advise hot path.
// handleAdvise pools these across requests and the batch endpoint carries
// one per batch, so steady-state serving reuses the policy context (and
// its oracle fast-path wiring), the response struct, the plan and window
// slices, and the output buffer instead of reallocating them per job.
//
// Reusing a policy.Context across sequential Decide calls is the
// simulator's own access pattern (core.Run drives every job in a run
// through one context); contexts are not concurrency-safe, which the
// pool's one-owner discipline already guarantees.
type adviseScratch struct {
	key     ctxKey
	pctx    *policy.Context
	req     AdviseRequest
	resp    AdviseResponse
	buf     []byte
	windows []simtime.Interval

	// Batch-path state: body buffer, decoder scratch, decoded batch,
	// normalized requests, and the duplicate-query memo with its line
	// arena. All reused across batches via the pool.
	body  []byte
	dec   batchDecoder
	batch AdviseBatchRequest
	reqs  []AdviseRequest
	memo  map[batchMemoKey]lineSpan
	arena []byte
}

var adviseScratchPool = sync.Pool{New: func() any { return new(adviseScratch) }}

// advise answers one normalized request through a fresh, unpooled scratch.
// It is the reference entry point: the pooled handler path and the batch
// endpoint must stay byte-identical to it (advise_diff_test.go and the
// batch differential test pin this).
func (s *Server) advise(req AdviseRequest) (*AdviseResponse, error) {
	sc := new(adviseScratch)
	return s.adviseInto(&req, sc)
}

// adviseInto answers one normalized request. It follows the offline
// scheduler's decision path exactly: a policy.Context (rebuilt only when
// the request's region/queue parameters change) layered over the region
// trace's shared, immutable oracle tables, then the same Policy.Decide
// call core.Run makes — so the advisory start times are byte-identical to
// what a simulation of that moment would choose. The returned response
// aliases sc.resp and is valid until sc is reused or released.
func (s *Server) adviseInto(req *AdviseRequest, sc *adviseScratch) (*AdviseResponse, error) {
	tr := s.regions[req.Region]
	pol, err := policy.ByName(req.Policy)
	if err != nil {
		return nil, err
	}
	queue := workload.QueueShort
	if req.Queue == workload.QueueLong.String() {
		queue = workload.QueueLong
	}
	length := simtime.Duration(req.LengthMinutes)
	now := simtime.Time(req.ArrivalMinute)
	job := workload.Job{
		Arrival: now,
		Length:  length,
		CPUs:    req.CPUs,
		Queue:   queue,
	}
	key := ctxKey{
		tr:      tr,
		queue:   queue,
		maxWait: simtime.Duration(*req.MaxWaitMinutes),
		avgLen:  simtime.Duration(req.AvgLengthMinutes),
	}
	pctx := sc.pctx
	if pctx == nil || sc.key != key {
		pctx = &policy.Context{
			CIS: carbon.NewPerfectService(tr),
			Queues: map[workload.Queue]policy.QueueInfo{
				queue: {MaxWait: key.maxWait, AvgLength: key.avgLen},
			},
		}
		pctx.EnableFastPaths()
		sc.pctx, sc.key = pctx, key
	}
	// A reused context accumulates fast-path hits, so "did this decision
	// take the fast path" is the delta, not the total.
	fastBefore := pctx.FastPathHits()
	dec := pol.Decide(job, now, pctx)
	if err := dec.Validate(job, now); err != nil {
		return nil, fmt.Errorf("policy returned an invalid decision: %w", err)
	}

	// Execution windows: a plan is normalized against the true length the
	// same way the simulator consumes it; a plain start is one window.
	var windows []simtime.Interval
	if dec.IsPlan() {
		windows = policy.NormalizePlan(dec.Plan, length)
	} else {
		windows = append(sc.windows[:0], simtime.Interval{Start: dec.Start, End: dec.Start.Add(length)})
	}
	sc.windows = windows[:0]

	pricing, power := cloud.DefaultPricing(), cloud.DefaultPower()
	var carbonG float64
	for _, iv := range windows {
		carbonG += power.Carbon(tr.Integral(iv), req.CPUs)
	}
	baselineG := power.Carbon(tr.Integral(simtime.Interval{Start: now, End: now.Add(length)}), req.CPUs)

	class := cloud.OnDemand
	if req.SpotMaxMinutes > 0 && length <= simtime.Duration(req.SpotMaxMinutes) {
		class = cloud.Spot
	}
	cost := pricing.HourlyRate(class) * float64(req.CPUs) * length.Hours()
	baseCost := pricing.HourlyRate(cloud.OnDemand) * float64(req.CPUs) * length.Hours()

	plan := sc.resp.Plan[:0]
	resp := &sc.resp
	*resp = AdviseResponse{
		Policy:              req.Policy,
		Region:              req.Region,
		Queue:               req.Queue,
		StartMinute:         int64(windows[0].Start),
		FinishMinute:        int64(windows[len(windows)-1].End),
		WaitMinutes:         int64(windows[len(windows)-1].End.Sub(now) - length),
		InstanceClass:       class.String(),
		CarbonGrams:         carbonG,
		BaselineCarbonGrams: baselineG,
		CarbonSavingsGrams:  baselineG - carbonG,
		CostUSD:             cost,
		BaselineCostUSD:     baseCost,
		FastPath:            pctx.FastPathHits() > fastBefore,
	}
	if dec.IsPlan() {
		for _, iv := range windows {
			plan = append(plan, AdviseWindow{StartMinute: int64(iv.Start), EndMinute: int64(iv.End)})
		}
		resp.Plan = plan
	}
	return resp, nil
}
