package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestGracefulDrain exercises the full drain contract over a real
// listener: an in-flight simulation completes during drain, a
// queued-but-unstarted request is shed with 503, and Shutdown returns
// (listener closed) within its deadline.
func TestGracefulDrain(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 2})
	s.simGate = make(chan struct{})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	// A acquires the only work slot and blocks on the gate.
	aDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/simulate", "application/json",
			strings.NewReader(`{"policy":"nowait","region":"SE","jobs":40,"days":1}`))
		if err != nil {
			aDone <- -1
			return
		}
		resp.Body.Close()
		aDone <- resp.StatusCode
	}()
	waitFor(t, "request A running", func() bool { return s.adm.running() == 1 })

	// B waits in the admission queue behind A.
	bDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/simulate", "application/json",
			strings.NewReader(`{"policy":"nowait","region":"SE","jobs":41,"days":1}`))
		if err != nil {
			bDone <- -1
			return
		}
		resp.Body.Close()
		bDone <- resp.StatusCode
	}()
	waitFor(t, "request B queued", func() bool { return s.adm.queued() == 1 })

	// Drain. B must be shed with 503 while A keeps running.
	shutdownDone := make(chan error, 1)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownDone <- s.Shutdown(shutdownCtx) }()

	select {
	case code := <-bDone:
		if code != http.StatusServiceUnavailable {
			t.Fatalf("queued request finished with %d, want 503", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request was not shed during drain")
	}
	_, drainShed := s.adm.sheds()
	if drainShed == 0 {
		t.Fatal("drain shed counter not incremented")
	}

	// The in-flight request completes normally once unblocked.
	close(s.simGate)
	select {
	case code := <-aDone:
		if code != http.StatusOK {
			t.Fatalf("in-flight request finished with %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request did not complete during drain")
	}

	// Shutdown returns cleanly within the drain deadline...
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after in-flight work finished")
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}

	// ...and the listener is really closed.
	if _, err := net.DialTimeout("tcp", l.Addr().String(), 500*time.Millisecond); err == nil {
		t.Fatal("listener still accepting connections after Shutdown")
	}
}

// TestDrainShedsNewRequests: once draining, brand-new work requests are
// refused with 503 + Retry-After before any queueing.
func TestDrainShedsNewRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.adm.startDrain()
	resp, body := postJSON(t, ts.URL+"/v1/simulate", `{"policy":"nowait","region":"SE","jobs":10,"days":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 shed response missing Retry-After")
	}
	var out map[string]string
	if err := json.Unmarshal(body, &out); err != nil || out["error"] == "" {
		t.Fatalf("shed body %s is not an error object", body)
	}
}

// TestShutdownIdempotent: draining twice and shutting down an unserved
// server are both safe.
func TestShutdownIdempotent(t *testing.T) {
	s := newTestServer(t, Config{})
	s.adm.startDrain()
	s.adm.startDrain()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown of idle server: %v", err)
	}
}
