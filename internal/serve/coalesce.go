package serve

import (
	"context"
	"sync"
)

// flight is one in-progress computation shared by every request that
// asked for the same key. The worker goroutine closes done after setting
// val/err; the channel close publishes both to all participants.
type flight struct {
	refs   int // participants still interested in the outcome
	cancel context.CancelFunc
	done   chan struct{}
	val    any
	err    error
}

// coalescer merges identical in-flight requests into one computation.
// It differs from a plain single-flight map in one production-critical
// way: the shared work runs under its own context, detached from any one
// request, and is canceled only when the participant refcount drops to
// zero. A leader whose client disconnects does not kill the simulation
// ten coalesced followers are still waiting for — runcache.RunContext
// documents this as the contract serving layers must uphold.
type coalescer struct {
	mu      sync.Mutex
	flights map[string]*flight
	leaders int64 // requests that started a computation
	joined  int64 // requests that attached to an existing flight
}

func newCoalescer() *coalescer {
	return &coalescer{flights: make(map[string]*flight)}
}

// do returns fn's result for key, computing it at most once across
// concurrent callers. fn receives the flight's own context — canceled
// when every participant has left — and runs in a separate goroutine, so
// a caller whose ctx expires stops waiting without stopping shared work
// others still want. leader reports whether this call started the
// computation (false = coalesced onto an existing flight).
func (c *coalescer) do(ctx context.Context, key string, fn func(ctx context.Context) (any, error)) (val any, leader bool, err error) {
	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		f.refs++
		c.joined++
		c.mu.Unlock()
		select {
		case <-f.done:
			c.leave(key, f)
			return f.val, false, f.err
		case <-ctx.Done():
			c.leave(key, f)
			return nil, false, ctx.Err()
		}
	}
	wctx, cancel := context.WithCancel(context.Background())
	f := &flight{refs: 1, cancel: cancel, done: make(chan struct{})}
	c.flights[key] = f
	c.leaders++
	c.mu.Unlock()

	go func() {
		f.val, f.err = fn(wctx)
		close(f.done)
	}()
	select {
	case <-f.done:
		c.leave(key, f)
		return f.val, true, f.err
	case <-ctx.Done():
		c.leave(key, f)
		return nil, true, ctx.Err()
	}
}

// leave drops one participant. The last one out cancels the flight's work
// context and retires the map entry — generation-checked, because a new
// flight for the same key may already have replaced a finished one.
func (c *coalescer) leave(key string, f *flight) {
	c.mu.Lock()
	f.refs--
	if f.refs == 0 {
		f.cancel()
		if c.flights[key] == f {
			delete(c.flights, key)
		}
	}
	c.mu.Unlock()
}

// stats returns the cumulative leader/joined counts for /metrics.
func (c *coalescer) stats() (leaders, joined int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leaders, c.joined
}

// inFlight reports the number of distinct computations currently running.
func (c *coalescer) inFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.flights)
}
