package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fleetPair builds two replicas joined into one cache tier, reachable
// over real HTTP so the remote path is exercised end to end.
func fleetPair(t *testing.T) (a, b *Server, tsA, tsB *httptest.Server) {
	t.Helper()
	a = newTestServer(t, Config{TraceDays: 2})
	b = newTestServer(t, Config{TraceDays: 2})
	tsA = httptest.NewServer(a.Handler())
	tsB = httptest.NewServer(b.Handler())
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)
	if err := a.ConfigureFleet(tsA.URL, []string{tsB.URL}); err != nil {
		t.Fatalf("ConfigureFleet(A): %v", err)
	}
	if err := b.ConfigureFleet(tsB.URL, []string{tsA.URL}); err != nil {
		t.Fatalf("ConfigureFleet(B): %v", err)
	}
	return a, b, tsA, tsB
}

func simulateOn(t *testing.T, url, body string) SimulateResponse {
	t.Helper()
	resp, raw := postJSON(t, url+"/v1/simulate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate on %s: status %d, body %s", url, resp.StatusCode, raw)
	}
	var out SimulateResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decoding simulate response: %v (%s)", err, raw)
	}
	return out
}

// TestFleetRemoteHit pins the tier's core promise: a cell computed on
// replica A is a remote hit on replica B — no second simulation — and the
// figures B serves are identical to A's.
func TestFleetRemoteHit(t *testing.T) {
	_, _, tsA, tsB := fleetPair(t)
	body := `{"policy":"carbon-time","region":"CA-US","jobs":300,"days":2,"seed":7}`

	first := simulateOn(t, tsA.URL, body)
	if first.CacheOutcome != "computed" {
		t.Fatalf("first run outcome = %q, want computed", first.CacheOutcome)
	}
	second := simulateOn(t, tsB.URL, body)
	if second.CacheOutcome != "remote-hit" {
		t.Fatalf("second replica outcome = %q, want remote-hit", second.CacheOutcome)
	}

	// Byte-identical figures, modulo the serving metadata.
	first.CacheOutcome, second.CacheOutcome = "", ""
	first.Coalesced, second.Coalesced = false, false
	fb, _ := json.Marshal(first)
	sb, _ := json.Marshal(second)
	if !bytes.Equal(fb, sb) {
		t.Fatalf("remote hit differs from the computing replica\nA: %s\nB: %s", fb, sb)
	}

	// The hit shows up in B's metrics, so operators can see the tier work.
	mresp, metricsBody := getBody(t, tsB.URL+"/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", mresp.StatusCode)
	}
	if !strings.Contains(string(metricsBody), `gaia_serve_simulate_cache_total{outcome="remote-hit"} 1`) {
		t.Fatalf("metrics do not count the remote hit:\n%s", metricsBody)
	}
}

// TestFleetDeadPeerDegrades pins the failure mode: with every ring member
// unreachable, requests still succeed — the cell is computed locally, the
// outage costs latency, not availability.
func TestFleetDeadPeerDegrades(t *testing.T) {
	s := newTestServer(t, Config{TraceDays: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Pure client of a tier whose only member is a dead address: every
	// get and put fails.
	if err := s.ConfigureFleet("", []string{"http://127.0.0.1:1"}); err != nil {
		t.Fatalf("ConfigureFleet: %v", err)
	}

	body := `{"policy":"nowait","region":"CA-US","jobs":200,"days":1,"seed":3}`
	out := simulateOn(t, ts.URL, body)
	if out.CacheOutcome != "computed" {
		t.Fatalf("outcome with dead tier = %q, want computed", out.CacheOutcome)
	}
	// And the in-process tiers still work on top of the dead remote.
	out = simulateOn(t, ts.URL, body)
	if out.CacheOutcome != "hit" {
		t.Fatalf("repeat outcome with dead tier = %q, want hit", out.CacheOutcome)
	}
}

// TestFleetShardRoutes pins that the shard protocol is served whether or
// not the replica has joined a ring, so fleets can be wired one process
// at a time.
func TestFleetShardRoutes(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, raw := getBody(t, ts.URL+"/v1/cache/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d, body %s", resp.StatusCode, raw)
	}
	missing := strings.Repeat("ab", 32)
	resp, _ = getBody(t, ts.URL+"/v1/cache/"+missing)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing blob status = %d, want 404", resp.StatusCode)
	}
	resp, _ = getBody(t, ts.URL+"/v1/cache/nothex")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad fingerprint status = %d, want 400", resp.StatusCode)
	}
}
