package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer builds a small, fast server for handler tests.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.TraceDays == 0 {
		cfg.TraceDays = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, b
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, b
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestTracesEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := getBody(t, ts.URL+"/v1/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out struct {
		Traces []TraceInfo `json:"traces"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if len(out.Traces) != 6 {
		t.Fatalf("got %d traces, want the paper's 6 regions", len(out.Traces))
	}
	for i := 1; i < len(out.Traces); i++ {
		if out.Traces[i-1].Code >= out.Traces[i].Code {
			t.Fatalf("traces not sorted: %q before %q", out.Traces[i-1].Code, out.Traces[i].Code)
		}
	}
	for _, tr := range out.Traces {
		if tr.Hours != (2+simulateSlackDays)*24 {
			t.Fatalf("region %s has %d hours, want %d", tr.Code, tr.Hours, (2+simulateSlackDays)*24)
		}
		if tr.MeanCI <= 0 || tr.MinCI > tr.MeanCI || tr.MaxCI < tr.MeanCI {
			t.Fatalf("region %s has implausible CI summary: %+v", tr.Code, tr)
		}
	}
}

func TestExperimentsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := getBody(t, ts.URL+"/v1/experiments")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out struct {
		Experiments []struct {
			ID, Title string
		} `json:"experiments"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if len(out.Experiments) == 0 {
		t.Fatal("no experiments listed")
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("body %s does not report ok", body)
	}

	s.adm.startDrain()
	resp, body = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status = %d, want 503", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte(`"draining"`)) {
		t.Fatalf("draining body %s does not report draining", body)
	}
}

func TestAdviseValidRequest(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/advise",
		`{"policy":"carbon-time","region":"ca-us","length_minutes":120,"arrival_minute":300}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out AdviseResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if out.Region != "CA-US" {
		t.Fatalf("region = %q, want canonicalized CA-US", out.Region)
	}
	if out.Queue != "short" {
		t.Fatalf("queue = %q, want short for a 2h job", out.Queue)
	}
	if out.StartMinute < 300 || out.StartMinute > 300+360 {
		t.Fatalf("start %d outside [arrival, arrival+6h]", out.StartMinute)
	}
	if out.FinishMinute != out.StartMinute+120 {
		t.Fatalf("finish %d != start %d + length", out.FinishMinute, out.StartMinute)
	}
	if out.WaitMinutes != out.StartMinute-300 {
		t.Fatalf("wait %d inconsistent with start %d", out.WaitMinutes, out.StartMinute)
	}
	if out.BaselineCarbonGrams <= 0 || out.CarbonGrams <= 0 {
		t.Fatalf("carbon fields not populated: %+v", out)
	}
	if out.CarbonSavingsGrams < 0 {
		t.Fatalf("carbon-time advisory increased carbon: %+v", out)
	}
	if out.InstanceClass != "on-demand" {
		t.Fatalf("instance class = %q, want on-demand without a spot bound", out.InstanceClass)
	}
	if !out.FastPath {
		t.Fatal("carbon-time decision did not use the oracle fast path")
	}
}

func TestAdviseSpotEligibility(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/advise",
		`{"policy":"nowait","region":"SE","length_minutes":60,"spot_max_minutes":120}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out AdviseResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if out.InstanceClass != "spot" {
		t.Fatalf("instance class = %q, want spot for an eligible job", out.InstanceClass)
	}
	if out.CostUSD >= out.BaselineCostUSD {
		t.Fatalf("spot cost %v not below on-demand %v", out.CostUSD, out.BaselineCostUSD)
	}
}

func TestAdviseBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
	}{
		{"empty", ``},
		{"not json", `{{`},
		{"unknown field", `{"policy":"nowait","region":"SE","length_minutes":5,"bogus":1}`},
		{"trailing garbage", `{"policy":"nowait","region":"SE","length_minutes":5} extra`},
		{"unknown policy", `{"policy":"mystery","region":"SE","length_minutes":5}`},
		{"unknown region", `{"policy":"nowait","region":"ZZ","length_minutes":5}`},
		{"zero length", `{"policy":"nowait","region":"SE","length_minutes":0}`},
		{"negative length", `{"policy":"nowait","region":"SE","length_minutes":-4}`},
		{"huge length", `{"policy":"nowait","region":"SE","length_minutes":99999999}`},
		{"bad queue", `{"policy":"nowait","region":"SE","length_minutes":5,"queue":"medium"}`},
		{"negative wait", `{"policy":"nowait","region":"SE","length_minutes":5,"max_wait_minutes":-1}`},
		{"arrival beyond trace", `{"policy":"nowait","region":"SE","length_minutes":5,"arrival_minute":99999999}`},
		{"negative cpus", `{"policy":"nowait","region":"SE","length_minutes":5,"cpus":-2}`},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/advise", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", tc.name, resp.StatusCode, body)
			continue
		}
		var out map[string]string
		if err := json.Unmarshal(body, &out); err != nil || out["error"] == "" {
			t.Errorf("%s: 400 body %s is not an error object", tc.name, body)
		}
	}
}

func TestSimulateComputedThenCached(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"policy":"carbon-time","region":"SA-AU","jobs":200,"days":2}`
	resp, raw := postJSON(t, ts.URL+"/v1/simulate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	var first SimulateResponse
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if first.CacheOutcome != "computed" {
		t.Fatalf("first run outcome = %q, want computed", first.CacheOutcome)
	}
	if first.Jobs != 200 || first.CarbonKg <= 0 || first.CostUSD <= 0 {
		t.Fatalf("implausible result: %+v", first)
	}
	if first.CarbonSavingsPercent <= 0 {
		t.Fatalf("carbon-time saved nothing: %+v", first)
	}

	resp, raw = postJSON(t, ts.URL+"/v1/simulate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second status = %d, body %s", resp.StatusCode, raw)
	}
	var second SimulateResponse
	if err := json.Unmarshal(raw, &second); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if second.CacheOutcome != "hit" {
		t.Fatalf("second run outcome = %q, want hit", second.CacheOutcome)
	}
	// A cached cell is indistinguishable from a recomputed one.
	first.CacheOutcome, second.CacheOutcome = "", ""
	if first != second {
		t.Fatalf("cached result differs:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

func TestSimulateBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []string{
		`{"policy":"nope","region":"SE"}`,
		`{"policy":"nowait","region":"XX"}`,
		`{"policy":"nowait","region":"SE","family":"netflix"}`,
		`{"policy":"nowait","region":"SE","jobs":-1}`,
		`{"policy":"nowait","region":"SE","days":9999}`,
		`{"policy":"nowait","region":"SE","eviction_rate":1.5}`,
		`{"policy":"nowait","region":"SE","reserved":-3}`,
	}
	for _, body := range cases {
		resp, raw := postJSON(t, ts.URL+"/v1/simulate", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status = %d, want 400 (%s)", body, resp.StatusCode, raw)
		}
	}
}

func TestSimulateCoalescing(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 4})
	s.simGate = make(chan struct{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"policy":"lowest-window","region":"NL","jobs":100,"days":2}`
	type reply struct {
		status int
		resp   SimulateResponse
	}
	results := make(chan reply, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, raw := postJSON(t, ts.URL+"/v1/simulate", body)
			var out SimulateResponse
			json.Unmarshal(raw, &out)
			results <- reply{resp.StatusCode, out}
		}()
	}
	// Both requests must be participants of ONE flight before the gate
	// opens: one leader, one joined.
	waitFor(t, "second request to coalesce", func() bool {
		_, joined := s.co.stats()
		return joined == 1
	})
	if got := s.co.inFlight(); got != 1 {
		t.Fatalf("in-flight computations = %d, want 1", got)
	}
	close(s.simGate)

	var coalesced, fresh int
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("status = %d", r.status)
		}
		if r.resp.Coalesced {
			coalesced++
		} else {
			fresh++
		}
	}
	if coalesced != 1 || fresh != 1 {
		t.Fatalf("coalesced/fresh = %d/%d, want 1/1", coalesced, fresh)
	}
	leaders, joined := s.co.stats()
	if leaders != 1 || joined != 1 {
		t.Fatalf("coalescer stats = %d leaders / %d joined, want 1/1", leaders, joined)
	}
}

func TestLoadSheddingQueueFull(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})
	s.simGate = make(chan struct{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A runs (blocked on the gate), B waits in the only queue slot.
	bodyA := `{"policy":"nowait","region":"SE","jobs":50,"days":1}`
	bodyB := `{"policy":"nowait","region":"SE","jobs":51,"days":1}`
	done := make(chan int, 2)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/simulate", bodyA)
		done <- resp.StatusCode
	}()
	waitFor(t, "first request running", func() bool { return s.adm.running() == 1 })
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/simulate", bodyB)
		done <- resp.StatusCode
	}()
	waitFor(t, "second request queued", func() bool { return s.adm.queued() == 1 })

	// C finds the queue full and must be shed immediately.
	resp, body := postJSON(t, ts.URL+"/v1/simulate", `{"policy":"nowait","region":"SE","jobs":52,"days":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response missing Retry-After header")
	}
	full, _ := s.adm.sheds()
	if full != 1 {
		t.Fatalf("shedFull = %d, want 1", full)
	}

	close(s.simGate)
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("queued request finished with %d, want 200", code)
		}
	}
}

func TestSimulateTimeout(t *testing.T) {
	s := newTestServer(t, Config{SimulateTimeout: 50 * time.Millisecond})
	s.simGate = make(chan struct{}) // never opened: the work cannot finish
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/simulate", `{"policy":"nowait","region":"SE","jobs":10,"days":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %s)", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timeout response took %v", elapsed)
	}
	// The abandoned flight must be torn down, not leaked.
	waitFor(t, "flight teardown", func() bool { return s.co.inFlight() == 0 })
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/v1/advise", `{"policy":"nowait","region":"SE","length_minutes":30}`)
	postJSON(t, ts.URL+"/v1/advise", `{"policy":"bogus","region":"SE","length_minutes":30}`)
	postJSON(t, ts.URL+"/v1/simulate", `{"policy":"nowait","region":"SE","jobs":20,"days":1}`)

	resp, body := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	text := string(body)
	wants := []string{
		`gaia_serve_requests_total{endpoint="advise",code="200"} 1`,
		`gaia_serve_requests_total{endpoint="advise",code="400"} 1`,
		`gaia_serve_requests_total{endpoint="simulate",code="200"} 1`,
		`gaia_serve_request_seconds_bucket{endpoint="advise",le="+Inf"} 2`,
		`gaia_serve_request_seconds_count{endpoint="advise"} 2`,
		`gaia_serve_simulate_cache_total{outcome="computed"} 1`,
		`gaia_serve_shed_total{reason="queue_full"} 0`,
		`gaia_serve_coalesce_total{role="leader"} 1`,
		`gaia_serve_queue_depth 0`,
		`gaia_serve_inflight 0`,
	}
	for _, want := range wants {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full metrics output:\n%s", text)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/advise")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/advise status = %d, want 405", resp.StatusCode)
	}
}
