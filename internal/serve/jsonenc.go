package serve

import (
	"math"
	"strconv"
	"unicode/utf8"
)

// This file is the serving layer's allocation-lean JSON encoder: append-
// style primitives whose output is byte-identical to encoding/json for
// the value shapes the advise endpoints emit. Byte-identity is a hard
// requirement, not cosmetics — the differential tests pin served bodies
// against json.Marshal of the same struct, and the batch endpoint pins
// each NDJSON line against the single-request endpoint. FuzzJSONEncode
// checks the equivalence over arbitrary strings and floats.

// jsonSafe marks the bytes encoding/json emits verbatim inside a string
// when HTML escaping is on (the json.Marshal default): printable ASCII
// minus the JSON metacharacters and the HTML-sensitive <, >, &.
var jsonSafe = func() (safe [utf8.RuneSelf]bool) {
	for b := ' '; b < utf8.RuneSelf; b++ {
		safe[b] = b != '"' && b != '\\' && b != '<' && b != '>' && b != '&'
	}
	return
}()

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, escaping exactly
// as encoding/json does with HTML escaping enabled: metacharacters and
// control bytes escaped, invalid UTF-8 replaced with U+FFFD, and the
// JavaScript line separators U+2028/U+2029 escaped.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		switch {
		case c == utf8.RuneError && size == 1:
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
		case c == '\u2028' || c == '\u2029':
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
		default:
			i += size
		}
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONFloat appends f in encoding/json's float format: %f-style for
// mid-range magnitudes, %e-style (with the exponent's leading zero
// stripped) outside [1e-6, 1e21). The caller must not pass NaN or ±Inf —
// json.Marshal rejects those, and no advisory figure can produce them.
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// strconv writes e-09; JSON convention is e-9.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// appendAdviseResponse appends r exactly as json.Marshal renders it:
// fields in declaration order, plan omitted when empty.
func appendAdviseResponse(dst []byte, r *AdviseResponse) []byte {
	dst = append(dst, `{"policy":`...)
	dst = appendJSONString(dst, r.Policy)
	dst = append(dst, `,"region":`...)
	dst = appendJSONString(dst, r.Region)
	dst = append(dst, `,"queue":`...)
	dst = appendJSONString(dst, r.Queue)
	dst = append(dst, `,"start_minute":`...)
	dst = strconv.AppendInt(dst, r.StartMinute, 10)
	dst = append(dst, `,"finish_minute":`...)
	dst = strconv.AppendInt(dst, r.FinishMinute, 10)
	dst = append(dst, `,"wait_minutes":`...)
	dst = strconv.AppendInt(dst, r.WaitMinutes, 10)
	if len(r.Plan) > 0 {
		dst = append(dst, `,"plan":[`...)
		for i, w := range r.Plan {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"start_minute":`...)
			dst = strconv.AppendInt(dst, w.StartMinute, 10)
			dst = append(dst, `,"end_minute":`...)
			dst = strconv.AppendInt(dst, w.EndMinute, 10)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"instance_class":`...)
	dst = appendJSONString(dst, r.InstanceClass)
	dst = append(dst, `,"carbon_grams":`...)
	dst = appendJSONFloat(dst, r.CarbonGrams)
	dst = append(dst, `,"baseline_carbon_grams":`...)
	dst = appendJSONFloat(dst, r.BaselineCarbonGrams)
	dst = append(dst, `,"carbon_savings_grams":`...)
	dst = appendJSONFloat(dst, r.CarbonSavingsGrams)
	dst = append(dst, `,"cost_usd":`...)
	dst = appendJSONFloat(dst, r.CostUSD)
	dst = append(dst, `,"baseline_cost_usd":`...)
	dst = appendJSONFloat(dst, r.BaselineCostUSD)
	dst = append(dst, `,"fast_path":`...)
	dst = strconv.AppendBool(dst, r.FastPath)
	return append(dst, '}')
}
