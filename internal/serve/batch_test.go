package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"github.com/carbonsched/gaia/internal/policy"
)

// batchFixtureJobs is a mixed bag of job shapes: both queues (explicit
// and classified-by-length), varied arrivals, custom waits and averages,
// spot eligibility — enough variety to force mid-batch policy-context
// rebuilds and plan-shaped responses.
func batchFixtureJobs() []AdviseBatchJob {
	wait := int64(90)
	avg := int64(30)
	return []AdviseBatchJob{
		{LengthMinutes: 90},
		{LengthMinutes: 300, CPUs: 4, ArrivalMinute: 61 * 24, SpotMaxMinutes: 120},
		{LengthMinutes: 45, Queue: "long", ArrivalMinute: 37},
		{LengthMinutes: 90, ArrivalMinute: 500, MaxWaitMinutes: &wait, AvgLengthMinutes: avg},
		{LengthMinutes: 15, CPUs: 2, ArrivalMinute: 1440, SpotMaxMinutes: 60},
		{LengthMinutes: 90}, // duplicate of job 0: exercises context reuse
	}
}

// TestAdviseBatchDifferential pins the batch contract: for every policy,
// the NDJSON response has one line per job, in order, each byte-identical
// to the /v1/advise body for the equivalent single request.
func TestAdviseBatchDifferential(t *testing.T) {
	s := newTestServer(t, Config{TraceDays: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	jobs := batchFixtureJobs()
	for _, pol := range policy.Names() {
		for _, region := range []string{"CA-US", "SA-AU"} {
			t.Run(pol+"/"+region, func(t *testing.T) {
				batch := AdviseBatchRequest{Policy: pol, Region: region, Jobs: jobs}
				body, err := json.Marshal(batch)
				if err != nil {
					t.Fatal(err)
				}
				resp, raw := postJSON(t, ts.URL+"/v1/advise/batch", string(body))
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
				}
				if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
					t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
				}
				if len(raw) == 0 || raw[len(raw)-1] != '\n' {
					t.Fatalf("response does not end in a newline: %q", raw)
				}
				lines := bytes.Split(raw[:len(raw)-1], []byte{'\n'})
				if len(lines) != len(jobs) {
					t.Fatalf("got %d lines, want %d", len(lines), len(jobs))
				}
				for i := range jobs {
					single, err := json.Marshal(batch.single(i))
					if err != nil {
						t.Fatal(err)
					}
					sresp, want := postJSON(t, ts.URL+"/v1/advise", string(single))
					if sresp.StatusCode != http.StatusOK {
						t.Fatalf("single advise for job %d: status %d, body %s", i, sresp.StatusCode, want)
					}
					if !bytes.Equal(lines[i], want) {
						t.Fatalf("job %d differs from single advise\nbatch:  %s\nsingle: %s", i, lines[i], want)
					}
				}
			})
		}
	}
}

// TestAdviseBatchValidation pins the all-or-nothing error contract: any
// bad input fails the whole request with 400 before a single verdict
// byte, naming the offending job.
func TestAdviseBatchValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, body, wantErr string
	}{
		{"empty body", ``, "invalid JSON"},
		{"no jobs", `{"policy":"nowait","region":"CA-US"}`, "at least one"},
		{"empty jobs", `{"policy":"nowait","region":"CA-US","jobs":[]}`, "at least one"},
		{"unknown top-level field", `{"policy":"nowait","region":"CA-US","queue":"short","jobs":[{"length_minutes":5}]}`, "invalid JSON"},
		{"unknown job field", `{"policy":"nowait","region":"CA-US","jobs":[{"length_minutes":5,"nope":1}]}`, "invalid JSON"},
		{"trailing garbage", `{"policy":"nowait","region":"CA-US","jobs":[{"length_minutes":5}]} x`, "trailing data"},
		{"truncated", `{"policy":"nowait","region":"CA-US","jobs":[{"length_minutes":5}`, "invalid JSON"},
		{"bad policy", `{"policy":"mystery","region":"CA-US","jobs":[{"length_minutes":5}]}`, "unknown policy"},
		{"bad region", `{"policy":"nowait","region":"??","jobs":[{"length_minutes":5}]}`, "unknown region"},
		{"null jobs", `{"policy":"nowait","region":"CA-US","jobs":null}`, "invalid JSON"},
		{"duplicate field", `{"policy":"nowait","policy":"nowait","region":"CA-US","jobs":[{"length_minutes":5}]}`, "duplicate"},
		{"exponent number", `{"policy":"nowait","region":"CA-US","jobs":[{"length_minutes":1e2}]}`, "invalid JSON"},
		{"second job bad", `{"policy":"nowait","region":"CA-US","jobs":[{"length_minutes":5},{"length_minutes":-1}]}`, "jobs[1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postJSON(t, ts.URL+"/v1/advise/batch", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s, want 400", resp.StatusCode, raw)
			}
			if !strings.Contains(string(raw), tc.wantErr) {
				t.Fatalf("error %s does not mention %q", raw, tc.wantErr)
			}
		})
	}

	t.Run("too many jobs", func(t *testing.T) {
		var b strings.Builder
		b.WriteString(`{"policy":"nowait","region":"CA-US","jobs":[`)
		for i := 0; i <= maxBatchJobs; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(`{}`)
		}
		b.WriteString(`]}`)
		resp, raw := postJSON(t, ts.URL+"/v1/advise/batch", b.String())
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		if !strings.Contains(string(raw), "at most") {
			t.Fatalf("error %s does not mention the job cap", raw)
		}
	})
}

// decodeAdviseBatchRef is the reference batch decoder: encoding/json with
// the same strictness switches the single endpoint uses. The hand-rolled
// decoder's accept set is a strict subset of this one's; the fuzz below
// pins that whatever it accepts, this reference decodes identically.
func decodeAdviseBatchRef(body []byte) (AdviseBatchRequest, error) {
	var req AdviseBatchRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return AdviseBatchRequest{}, err
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return AdviseBatchRequest{}, fmt.Errorf("trailing data")
	}
	return req, nil
}

// FuzzAdviseBatchDecode feeds arbitrary bodies through the batch
// pipeline: strict decode, per-job normalization, and — when everything
// validates — the decisions themselves. Malformed input maps to an error
// (the endpoint's 400), never a panic; whatever the hand-rolled decoder
// accepts must decode byte-for-byte like encoding/json; and valid batches
// must answer every job.
func FuzzAdviseBatchDecode(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{{`,
		`null`,
		`{"policy":"nowait","region":"CA-US","jobs":[]}`,
		`{"policy":"carbon-time","region":"CA-US","jobs":[{"length_minutes":120}]}`,
		`{"policy":"wait-awhile","region":"SE","jobs":[{"length_minutes":90,"arrival_minute":61,"cpus":3},{"length_minutes":45,"queue":"long"}]}`,
		`{"policy":"suspend-resume","region":"NL","jobs":[{"length_minutes":200,"max_wait_minutes":90,"avg_length_minutes":30,"spot_max_minutes":10}]}`,
		`{"policy":"nowait","region":"CA-US","jobs":[{"length_minutes":5,"unknown":1}]}`,
		`{"policy":"nowait","region":"CA-US","jobs":[{"length_minutes":5}]} trailing`,
		`{"policy":"nowait","region":"CA-US","jobs":[{"length_minutes":-5},{"length_minutes":99999999999}]}`,
		`{"policy":"nowait","region":"CA-US","queue":"short","jobs":[{"length_minutes":5}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	srv, err := New(Config{TraceDays: 2, Logf: func(string, ...any) {}})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		batch, err := decodeAdviseBatch(bytes.NewReader(body))
		if err != nil {
			return // → 400, by contract
		}
		ref, referr := decodeAdviseBatchRef(body)
		if referr != nil {
			t.Fatalf("hand decoder accepted what encoding/json rejects (%v): %q", referr, body)
		}
		if len(batch.Jobs) == 0 && len(ref.Jobs) == 0 {
			batch.Jobs, ref.Jobs = nil, nil // nil vs empty: same decoded batch
		}
		if !reflect.DeepEqual(batch, ref) {
			t.Fatalf("hand decoder diverges from encoding/json\n got %+v\nwant %+v\nbody %q", batch, ref, body)
		}
		if len(batch.Jobs) == 0 || len(batch.Jobs) > maxBatchJobs {
			return // → 400, by contract
		}
		sc := new(adviseScratch)
		for i := range batch.Jobs {
			req := batch.single(i)
			if err := srv.normalizeAdvise(&req); err != nil {
				return // → 400, by contract
			}
			resp, err := srv.adviseInto(&req, sc)
			if err != nil {
				t.Fatalf("validated job %d failed to advise: %v (request %+v)", i, err, req)
			}
			line := appendAdviseResponse(nil, resp)
			want, merr := json.Marshal(resp)
			if merr != nil {
				t.Fatal(merr)
			}
			if !bytes.Equal(line, want) {
				t.Fatalf("job %d: encoder diverges from json.Marshal\n got %s\nwant %s", i, line, want)
			}
		}
	})
}

// TestAdviseBatchDeadline pins that an expired deadline truncates the
// stream instead of hanging or erroring mid-response.
func TestAdviseBatchDeadline(t *testing.T) {
	s := newTestServer(t, Config{BatchTimeout: 1}) // 1ns: expires immediately
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var b strings.Builder
	b.WriteString(`{"policy":"nowait","region":"CA-US","jobs":[`)
	for i := 0; i < 4*batchDeadlineStride; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"length_minutes":%d}`, 1+i%100)
	}
	b.WriteString(`]}`)
	resp, raw := postJSON(t, ts.URL+"/v1/advise/batch", b.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	lines := bytes.Count(raw, []byte{'\n'})
	if lines >= 4*batchDeadlineStride {
		t.Fatalf("expired deadline did not truncate the stream (%d lines)", lines)
	}
}
