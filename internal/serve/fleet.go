package serve

import (
	"errors"

	"github.com/carbonsched/gaia/internal/fleet"
)

// ConfigureFleet joins this server to a shared simulation-result cache
// tier (internal/fleet): a consistent-hash ring over the member base URLs
// routes every cell fingerprint to exactly one owner, so a cell computed
// on any replica is a remote hit everywhere else.
//
// self is this replica's own base URL as peers see it ("http://host:port");
// it is added to the ring and requests it owns short-circuit to the local
// shard. Pass self == "" to participate as a pure client — the replica
// consults the tier (e.g. a set of standalone gaia-cached nodes named in
// peers) without owning a shard of it. peers lists the other members'
// base URLs; duplicates and empty strings are ignored.
//
// Call after New and before serving traffic. The /v1/cache/* shard routes
// are always registered — a replica serves its shard even before (or
// without) joining a ring, which lets a fleet be wired one process at a
// time. The tier is an accelerator by contract: every remote error or
// timeout degrades to local compute (logged by runcache), so a dead peer
// costs latency on the cells it owned, never availability.
func (s *Server) ConfigureFleet(self string, peers []string) error {
	members := make([]string, 0, len(peers)+1)
	if self != "" {
		members = append(members, self)
	}
	members = append(members, peers...)
	ring := fleet.NewRing(members, 0)
	if len(ring.Members()) == 0 {
		return errors.New("serve: fleet needs at least one member URL")
	}
	client := fleet.NewClient(ring, self, s.blobs)
	s.cache.SetRemote(client)
	label := self
	if label == "" {
		label = "(pure client)"
	}
	s.cfg.Logf("serve: joined cache tier %s as %s", ring, label)
	return nil
}
