package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	a := newAdmission(0, 2)
	r1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.running() != 2 {
		t.Fatalf("running = %d, want 2", a.running())
	}
	// Zero queue depth: the third request is shed immediately.
	if _, err := a.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("err = %v, want errQueueFull", err)
	}
	full, _ := a.sheds()
	if full != 1 {
		t.Fatalf("shedFull = %d, want 1", full)
	}
	r1()
	r2()
	if a.running() != 0 {
		t.Fatalf("running = %d after releases, want 0", a.running())
	}
}

func TestAdmissionQueueHandoff(t *testing.T) {
	a := newAdmission(1, 1)
	r1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r2, err := a.acquire(context.Background())
		if err == nil {
			defer r2()
		}
		got <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for a.queued() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.queued() != 1 {
		t.Fatal("second request never queued")
	}
	r1()
	if err := <-got; err != nil {
		t.Fatalf("queued request: %v", err)
	}
}

func TestAdmissionCtxCanceledWhileQueued(t *testing.T) {
	a := newAdmission(1, 1)
	r1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx)
		got <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for a.queued() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The abandoned queue slot must be returned.
	if a.queued() != 0 {
		t.Fatalf("queued = %d after cancellation, want 0", a.queued())
	}
}

func TestAdmissionDrainShedsQueued(t *testing.T) {
	a := newAdmission(1, 1)
	r1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	got := make(chan error, 1)
	go func() {
		_, err := a.acquire(context.Background())
		got <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for a.queued() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	a.startDrain()
	if err := <-got; !errors.Is(err, errDraining) {
		t.Fatalf("err = %v, want errDraining", err)
	}
	if _, err := a.acquire(context.Background()); !errors.Is(err, errDraining) {
		t.Fatalf("post-drain err = %v, want errDraining", err)
	}
	_, drain := a.sheds()
	if drain != 2 {
		t.Fatalf("shedDrain = %d, want 2", drain)
	}
}

// fakeClock is a manually-advanced clock for service-time tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestAdmissionRetryAfterScalesWithDrainRate pins the adaptive hint: with
// no observations it is the configured fallback; once requests complete,
// it is the backlog divided by the observed drain rate — long for a queue
// of slow work, the floor for a queue of fast work — and capped.
func TestAdmissionRetryAfterScalesWithDrainRate(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	a := newAdmission(4, 1)
	a.now = clock.now

	fallback := time.Second
	if got := a.retryAfter(fallback); got != fallback {
		t.Fatalf("retryAfter with no observations = %v, want fallback %v", got, fallback)
	}

	// Observe slow work: 10s per request, one worker.
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	clock.advance(10 * time.Second)
	release()
	if got := a.serviceTime(); got != 10*time.Second {
		t.Fatalf("serviceTime = %v, want 10s", got)
	}

	// Fill the running slot and the queue so retryAfter sees a backlog.
	hold, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan func(), 4)
	for i := 0; i < 4; i++ {
		go func() {
			r, err := a.acquire(context.Background())
			if err == nil {
				queued <- r
			}
		}()
	}
	waitFor(t, "queue to fill", func() bool { return a.queued() == 4 })

	// Backlog of 5 (queue + the retrying client) at 10s each on 1 worker.
	if got := a.retryAfter(fallback); got != 50*time.Second {
		t.Fatalf("retryAfter = %v, want 50s", got)
	}

	// Faster observed work shrinks the hint down to the fallback floor.
	a.mu.Lock()
	a.ewmaNanos = float64(50 * time.Millisecond)
	a.mu.Unlock()
	if got := a.retryAfter(fallback); got != fallback {
		t.Fatalf("retryAfter with fast drain = %v, want floor %v", got, fallback)
	}

	// And pathological slowness is capped.
	a.mu.Lock()
	a.ewmaNanos = float64(10 * time.Minute)
	a.mu.Unlock()
	if got := a.retryAfter(fallback); got != maxRetryAfter {
		t.Fatalf("retryAfter with huge ewma = %v, want cap %v", got, maxRetryAfter)
	}

	hold()
	for i := 0; i < 4; i++ {
		(<-queued)()
	}
}

// TestAdmissionServiceTimeEWMA pins the averaging: later observations
// move the estimate by the documented weight, so one outlier cannot swing
// the retry hint to its full value.
func TestAdmissionServiceTimeEWMA(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	a := newAdmission(0, 1)
	a.now = clock.now

	serve := func(d time.Duration) {
		r, err := a.acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		clock.advance(d)
		r()
	}
	serve(time.Second)
	serve(11 * time.Second) // outlier
	want := time.Duration(ewmaAlpha*float64(11*time.Second) + (1-ewmaAlpha)*float64(time.Second))
	if got := a.serviceTime(); got != want {
		t.Fatalf("serviceTime after outlier = %v, want %v", got, want)
	}
}
