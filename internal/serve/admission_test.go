package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	a := newAdmission(0, 2)
	r1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.running() != 2 {
		t.Fatalf("running = %d, want 2", a.running())
	}
	// Zero queue depth: the third request is shed immediately.
	if _, err := a.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("err = %v, want errQueueFull", err)
	}
	full, _ := a.sheds()
	if full != 1 {
		t.Fatalf("shedFull = %d, want 1", full)
	}
	r1()
	r2()
	if a.running() != 0 {
		t.Fatalf("running = %d after releases, want 0", a.running())
	}
}

func TestAdmissionQueueHandoff(t *testing.T) {
	a := newAdmission(1, 1)
	r1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r2, err := a.acquire(context.Background())
		if err == nil {
			defer r2()
		}
		got <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for a.queued() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.queued() != 1 {
		t.Fatal("second request never queued")
	}
	r1()
	if err := <-got; err != nil {
		t.Fatalf("queued request: %v", err)
	}
}

func TestAdmissionCtxCanceledWhileQueued(t *testing.T) {
	a := newAdmission(1, 1)
	r1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx)
		got <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for a.queued() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The abandoned queue slot must be returned.
	if a.queued() != 0 {
		t.Fatalf("queued = %d after cancellation, want 0", a.queued())
	}
}

func TestAdmissionDrainShedsQueued(t *testing.T) {
	a := newAdmission(1, 1)
	r1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	got := make(chan error, 1)
	go func() {
		_, err := a.acquire(context.Background())
		got <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for a.queued() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	a.startDrain()
	if err := <-got; !errors.Is(err, errDraining) {
		t.Fatalf("err = %v, want errDraining", err)
	}
	if _, err := a.acquire(context.Background()); !errors.Is(err, errDraining) {
		t.Fatalf("post-drain err = %v, want errDraining", err)
	}
	_, drain := a.sheds()
	if drain != 2 {
		t.Fatalf("shedDrain = %d, want 2", drain)
	}
}
