package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// offlineDecide reproduces the offline scheduler's decision path for one
// advise request — a fresh policy.Context with the same queue knowledge,
// but WITHOUT the oracle fast paths, so the reference scans answer. The
// HTTP service answers from the fast-path tables; comparing the two pins
// the whole chain: fast path ≡ reference scan ≡ served bytes.
func offlineDecide(tr *carbon.Trace, req AdviseRequest) policy.Decision {
	pol, err := policy.ByName(req.Policy)
	if err != nil {
		panic(err)
	}
	queue := workload.QueueShort
	if req.Queue == "long" {
		queue = workload.QueueLong
	}
	now := simtime.Time(req.ArrivalMinute)
	job := workload.Job{
		Arrival: now,
		Length:  simtime.Duration(req.LengthMinutes),
		CPUs:    req.CPUs,
		Queue:   queue,
	}
	ctx := &policy.Context{
		CIS: carbon.NewPerfectService(tr),
		Queues: map[workload.Queue]policy.QueueInfo{
			queue: {
				MaxWait:   simtime.Duration(*req.MaxWaitMinutes),
				AvgLength: simtime.Duration(req.AvgLengthMinutes),
			},
		},
	}
	// Deliberately no EnableFastPaths: this is the reference path.
	return pol.Decide(job, now, ctx)
}

// offlineResponse assembles, with independent arithmetic, the exact JSON
// body the service must produce for a normalized request and the offline
// decision. Duplicating the formulas here (instead of calling the
// handler's helpers) is the point of the differential test.
func offlineResponse(tr *carbon.Trace, req AdviseRequest, dec policy.Decision) AdviseResponse {
	length := simtime.Duration(req.LengthMinutes)
	now := simtime.Time(req.ArrivalMinute)
	var windows []simtime.Interval
	if dec.IsPlan() {
		windows = policy.NormalizePlan(dec.Plan, length)
	} else {
		windows = []simtime.Interval{{Start: dec.Start, End: dec.Start.Add(length)}}
	}
	power, pricing := cloud.DefaultPower(), cloud.DefaultPricing()
	var carbonG float64
	for _, iv := range windows {
		carbonG += power.Carbon(tr.Integral(iv), req.CPUs)
	}
	baselineG := power.Carbon(tr.Integral(simtime.Interval{Start: now, End: now.Add(length)}), req.CPUs)
	class := cloud.OnDemand
	if req.SpotMaxMinutes > 0 && length <= simtime.Duration(req.SpotMaxMinutes) {
		class = cloud.Spot
	}

	// FastPath is the one field the reference path cannot predict from
	// first principles; derive it the way the service does, from a
	// fast-path-enabled context.
	fastCtx := &policy.Context{
		CIS: carbon.NewPerfectService(tr),
		Queues: map[workload.Queue]policy.QueueInfo{
			queueOf(req): {
				MaxWait:   simtime.Duration(*req.MaxWaitMinutes),
				AvgLength: simtime.Duration(req.AvgLengthMinutes),
			},
		},
	}
	fastCtx.EnableFastPaths()
	pol, _ := policy.ByName(req.Policy)
	pol.Decide(workload.Job{
		Arrival: now, Length: length, CPUs: req.CPUs, Queue: queueOf(req),
	}, now, fastCtx)

	resp := AdviseResponse{
		Policy:              req.Policy,
		Region:              req.Region,
		Queue:               req.Queue,
		StartMinute:         int64(windows[0].Start),
		FinishMinute:        int64(windows[len(windows)-1].End),
		WaitMinutes:         int64(windows[len(windows)-1].End.Sub(now) - length),
		InstanceClass:       class.String(),
		CarbonGrams:         carbonG,
		BaselineCarbonGrams: baselineG,
		CarbonSavingsGrams:  baselineG - carbonG,
		CostUSD:             pricing.HourlyRate(class) * float64(req.CPUs) * length.Hours(),
		BaselineCostUSD:     pricing.HourlyRate(cloud.OnDemand) * float64(req.CPUs) * length.Hours(),
		FastPath:            fastCtx.FastPathHits() > 0,
	}
	if dec.IsPlan() {
		resp.Plan = make([]AdviseWindow, len(windows))
		for i, iv := range windows {
			resp.Plan[i] = AdviseWindow{StartMinute: int64(iv.Start), EndMinute: int64(iv.End)}
		}
	}
	return resp
}

func queueOf(req AdviseRequest) workload.Queue {
	if req.Queue == "long" {
		return workload.QueueLong
	}
	return workload.QueueShort
}

// TestAdviseDifferential pins /v1/advise decisions byte-identical to the
// offline policy path across every policy, several arrival minutes and
// both queues.
func TestAdviseDifferential(t *testing.T) {
	s := newTestServer(t, Config{TraceDays: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	arrivals := []int64{0, 37, 61 * 24, 3 * 24 * 60}
	type shape struct {
		lengthMin int64
		cpus      int
		spotMax   int64
	}
	shapes := []shape{
		{lengthMin: 90, cpus: 1, spotMax: 0},
		{lengthMin: 300, cpus: 4, spotMax: 120},
	}
	for _, pol := range policy.Names() {
		for _, region := range []string{"CA-US", "SA-AU"} {
			for _, arrival := range arrivals {
				for _, sh := range shapes {
					name := fmt.Sprintf("%s/%s/t%d/l%d", pol, region, arrival, sh.lengthMin)
					t.Run(name, func(t *testing.T) {
						body := fmt.Sprintf(
							`{"policy":%q,"region":%q,"length_minutes":%d,"cpus":%d,"arrival_minute":%d,"spot_max_minutes":%d}`,
							pol, region, sh.lengthMin, sh.cpus, arrival, sh.spotMax)
						resp, raw := postJSON(t, ts.URL+"/v1/advise", body)
						if resp.StatusCode != http.StatusOK {
							t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
						}

						// Reconstruct the normalized request the handler saw.
						req := AdviseRequest{
							Policy: pol, Region: region,
							LengthMinutes: sh.lengthMin, CPUs: sh.cpus,
							ArrivalMinute: arrival, SpotMaxMinutes: sh.spotMax,
						}
						if err := s.normalizeAdvise(&req); err != nil {
							t.Fatalf("normalize: %v", err)
						}
						tr := s.regions[req.Region]
						dec := offlineDecide(tr, req)
						want, err := json.Marshal(offlineResponse(tr, req, dec))
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(raw, want) {
							t.Fatalf("served body differs from offline policy path\nserved:  %s\noffline: %s", raw, want)
						}
					})
				}
			}
		}
	}
}
