// Package serve is gaia-serve's HTTP layer: a long-running advisory
// service that answers online scheduling queries (POST /v1/advise) and
// full what-if simulations (POST /v1/simulate) over the same substrates
// the offline tools use — the policy implementations, the per-trace
// carbon oracle tables (built once at startup and shared immutably by
// every request), and the content-addressed run cache.
//
// The serving behaviors the offline tools never needed live here:
//
//   - Admission control: a bounded queue in front of the work endpoints
//     sheds load with 429 + Retry-After instead of building an unbounded
//     backlog (admission.go).
//   - Request coalescing: identical in-flight /v1/simulate cells share
//     one computation, refcounted so a disconnecting client cancels the
//     work only when nobody else wants it (coalesce.go).
//   - Deadlines that mean it: per-endpoint timeouts propagate through
//     context into the simulator's event loop, which actually stops.
//   - Graceful drain: SIGTERM stops admissions (queued requests shed
//     with 503), lets in-flight work finish, then closes the listener.
//   - Observability: GET /metrics (Prometheus text) and GET /healthz.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/experiments"
	"github.com/carbonsched/gaia/internal/fleet"
	"github.com/carbonsched/gaia/internal/par"
	"github.com/carbonsched/gaia/internal/runcache"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// Default queue configuration mirrored from core.Config.withDefaults, so
// an advisory answer matches what a simulation of the same moment does.
const (
	defaultShortMax  = 2 * simtime.Hour
	defaultWaitShort = 6 * simtime.Hour
	defaultWaitLong  = 24 * simtime.Hour
)

// Config tunes one Server. The zero value serves with the documented
// defaults.
type Config struct {
	// Addr is the listen address for ListenAndServe; default ":8404".
	Addr string
	// TraceDays is the advisory horizon: each region's carbon trace
	// covers TraceDays (+3 days of slack) from minute 0. Default 14.
	TraceDays int
	// MaxConcurrent bounds requests doing work at once; default 4.
	MaxConcurrent int
	// QueueDepth bounds requests waiting for a work slot beyond
	// MaxConcurrent; the rest are shed with 429. Default 64.
	QueueDepth int
	// AdviseTimeout / BatchTimeout / SimulateTimeout cap one request's
	// total time in the respective handler, queueing included.
	// Defaults 2s / 30s / 120s.
	AdviseTimeout   time.Duration
	BatchTimeout    time.Duration
	SimulateTimeout time.Duration
	// RetryAfter is the hint attached to shed responses; default 1s. For
	// 429 sheds it is the floor (and the no-data fallback) of an adaptive
	// hint derived from the observed queue drain rate; 503 drain sheds
	// use it as-is, since the answer there is "go elsewhere".
	RetryAfter time.Duration
	// CacheDir attaches runcache's disk tier when non-empty, so warm
	// simulation cells survive restarts.
	CacheDir string
	// Logf receives operational diagnostics; default log.Printf.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8404"
	}
	if c.TraceDays <= 0 {
		c.TraceDays = 14
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.AdviseTimeout <= 0 {
		c.AdviseTimeout = 2 * time.Second
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = 30 * time.Second
	}
	if c.SimulateTimeout <= 0 {
		c.SimulateTimeout = 120 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Server is one gaia-serve instance. Create with New; all methods are
// safe for concurrent use.
type Server struct {
	cfg Config

	// regions holds the advisory carbon traces, one per built-in region,
	// generated once at startup. Traces and their lazily-extended oracle
	// tables are immutable and shared by every request.
	regions    map[string]*carbon.Trace
	regionList []TraceInfo

	adm   *admission
	co    *coalescer
	obs   *observer
	cache *runcache.Cache
	// blobs is this replica's shard of the shared fleet cache tier,
	// served on /v1/cache/* whether or not ConfigureFleet has run.
	blobs *fleet.BlobStore

	traceMu      sync.Mutex
	carbonMemo   map[carbonKey]*carbon.Trace
	workloadMemo map[workloadKey]*workload.Trace

	mux     *http.ServeMux
	httpSrv *http.Server

	// simGate, when non-nil, blocks each simulate computation until the
	// channel is closed (or its flight canceled). Test hook for
	// deterministic drain and coalescing tests; nil in production.
	simGate chan struct{}
}

// TraceInfo summarizes one advisory region for GET /v1/traces.
type TraceInfo struct {
	Code   string  `json:"code"`
	Name   string  `json:"name"`
	Class  string  `json:"class"`
	Hours  int     `json:"hours"`
	MeanCI float64 `json:"mean_ci_g_per_kwh"`
	MinCI  float64 `json:"min_ci_g_per_kwh"`
	MaxCI  float64 `json:"max_ci_g_per_kwh"`
}

// New builds a ready-to-serve Server: region traces generated, default
// oracle tables prewarmed in parallel, routes registered.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:          cfg,
		regions:      make(map[string]*carbon.Trace),
		adm:          newAdmission(cfg.QueueDepth, cfg.MaxConcurrent),
		co:           newCoalescer(),
		obs:          newObserver(),
		cache:        runcache.New(),
		blobs:        fleet.NewBlobStore(0),
		carbonMemo:   make(map[carbonKey]*carbon.Trace),
		workloadMemo: make(map[workloadKey]*workload.Trace),
		mux:          http.NewServeMux(),
	}
	s.cache.Logf = cfg.Logf
	s.blobs.Logf = cfg.Logf
	if cfg.CacheDir != "" {
		if err := s.cache.SetDir(cfg.CacheDir); err != nil {
			return nil, err
		}
		// The fleet shard persists next to the run cache, so a restarted
		// member rejoins the tier warm.
		if err := s.blobs.SetDir(filepath.Join(cfg.CacheDir, "fleet")); err != nil {
			return nil, err
		}
	}

	specs := carbon.Regions()
	hours := (cfg.TraceDays + simulateSlackDays) * 24
	for _, spec := range specs {
		tr := spec.Generate(hours, carbonTraceSeed)
		s.regions[spec.Code] = tr
		sum := tr.Summary()
		s.regionList = append(s.regionList, TraceInfo{
			Code: spec.Code, Name: spec.Name, Class: spec.Class,
			Hours: tr.Len(), MeanCI: sum.Mean, MinCI: sum.Min, MaxCI: sum.Max,
		})
	}
	sort.Slice(s.regionList, func(i, j int) bool { return s.regionList[i].Code < s.regionList[j].Code })

	// Prewarm the default advisory tables — (W, L) = (6h, 1h) and
	// (24h, 1h) per region — so first requests don't pay the build. Other
	// (W, L) pairs are built lazily by the shared oracle on first use.
	err := par.ForEach(0, s.regionList, func(_ int, info TraceInfo) error {
		o := s.regions[info.Code].Oracle()
		o.Queue(defaultWaitShort, simtime.Hour)
		o.Queue(defaultWaitLong, simtime.Hour)
		return nil
	})
	if err != nil {
		return nil, err
	}

	s.routes()
	s.httpSrv = &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
	}

	s.obs.registerGauge("gaia_serve_queue_depth",
		"Requests waiting for a work slot.", func() float64 { return float64(s.adm.queued()) })
	s.obs.registerGauge("gaia_serve_inflight",
		"Requests currently doing work.", func() float64 { return float64(s.adm.running()) })
	s.obs.registerGauge("gaia_serve_service_time_ewma_seconds",
		"Moving average of admitted-request service time feeding Retry-After.",
		func() float64 { return s.adm.serviceTime().Seconds() })
	s.obs.registerGauge("gaia_serve_coalesced_flights",
		"Distinct simulate computations currently in flight.", func() float64 { return float64(s.co.inFlight()) })
	s.obs.registerGauge("gaia_serve_cache_shard_entries",
		"Entries held by this replica's shard of the fleet cache tier.",
		func() float64 { return float64(s.blobs.Stats().Entries) })
	s.obs.registerGauge("gaia_serve_cache_shard_bytes",
		"Bytes held by this replica's shard of the fleet cache tier.",
		func() float64 { return float64(s.blobs.Stats().Bytes) })
	return s, nil
}

func (s *Server) routes() {
	s.mux.Handle("POST /v1/advise", s.instrument("advise", s.handleAdvise))
	s.mux.Handle("POST /v1/advise/batch", s.instrument("advise_batch", s.handleAdviseBatch))
	s.mux.Handle("POST /v1/simulate", s.instrument("simulate", s.handleSimulate))
	s.mux.Handle("GET /v1/traces", s.instrument("traces", s.handleTraces))
	s.mux.Handle("GET /v1/experiments", s.instrument("experiments", s.handleExperiments))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	// Fleet cache-tier shard protocol (GET/PUT /v1/cache/{fp}). Peer
	// traffic, not client traffic: it skips admission on purpose — a
	// saturated replica that sheds its peers' cache lookups would convert
	// its own overload into fleet-wide recomputes.
	fleet.NewCacheServer(s.blobs).Register(s.mux)
}

// Handler exposes the route tree (httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe blocks serving on cfg.Addr until Shutdown or failure,
// mirroring net/http semantics (returns http.ErrServerClosed after a
// clean shutdown).
func (s *Server) ListenAndServe() error { return s.httpSrv.ListenAndServe() }

// Serve blocks serving on l; same contract as ListenAndServe.
func (s *Server) Serve(l net.Listener) error { return s.httpSrv.Serve(l) }

// Shutdown drains the server: admissions stop immediately (queued
// requests shed with 503), in-flight requests run to completion, and the
// listener closes once they have — or when ctx expires, whichever comes
// first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.adm.startDrain()
	return s.httpSrv.Shutdown(ctx)
}

// instrument wraps a handler with request accounting: every response's
// endpoint, status code and latency feed /metrics.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		s.obs.observe(endpoint, sw.status(), time.Since(start).Seconds())
	})
}

// statusWriter captures the response code for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// admit runs the admission gate for one work request and translates
// shedding into the HTTP contract: 429 + Retry-After for a full queue,
// 503 + Retry-After while draining. ok=false means the response has been
// written.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	release, err := s.adm.acquire(r.Context())
	switch {
	case err == nil:
		return release, true
	case errors.Is(err, errQueueFull):
		// The hint adapts to the observed drain rate: a backlog of quick
		// advisory calls asks the client back almost immediately, a backlog
		// of simulations pushes it out accordingly (admission.retryAfter).
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.adm.retryAfter(s.cfg.RetryAfter))))
		writeError(w, http.StatusTooManyRequests, "admission queue full, retry later")
	case errors.Is(err, errDraining):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	default: // client went away while queued
		writeError(w, http.StatusServiceUnavailable, "request canceled while queued")
	}
	return nil, false
}

func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.AdviseTimeout)
	defer cancel()

	// The hot path runs allocation-lean: request, response, policy context
	// and output buffer all come from a pooled scratch, and the body is
	// rendered by the hand encoder (jsonenc.go), which the differential and
	// fuzz tests pin byte-identical to writeJSON's json.Marshal.
	sc := adviseScratchPool.Get().(*adviseScratch)
	defer adviseScratchPool.Put(sc)
	err := decodeAdviseInto(r.Body, &sc.req)
	if err == nil {
		err = s.normalizeAdvise(&sc.req)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, err := s.adviseInto(&sc.req, sc)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if ctx.Err() != nil {
		writeError(w, http.StatusServiceUnavailable, "deadline exceeded")
		return
	}
	sc.buf = appendAdviseResponse(sc.buf[:0], resp)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(sc.buf)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.SimulateTimeout)
	defer cancel()

	req, err := decodeSimulate(r.Body)
	if err == nil {
		err = s.normalizeSimulate(&req)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	gate := s.simGate
	val, leader, err := s.co.do(ctx, req.coalesceKey(), func(wctx context.Context) (any, error) {
		// The flight context has no deadline of its own (it must outlive
		// any single requester); bound the work by this endpoint's
		// timeout instead.
		wctx, wcancel := context.WithTimeout(wctx, s.cfg.SimulateTimeout)
		defer wcancel()
		if gate != nil {
			select {
			case <-gate:
			case <-wctx.Done():
				return nil, wctx.Err()
			}
		}
		return s.simulate(wctx, req)
	})
	if err != nil {
		code := http.StatusInternalServerError
		msg := err.Error()
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			code = http.StatusServiceUnavailable
			msg = "simulation did not finish in time"
		}
		writeError(w, code, msg)
		return
	}
	resp := *val.(*SimulateResponse)
	resp.Coalesced = !leader
	writeJSON(w, http.StatusOK, &resp)
}

func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.regionList})
}

// handleExperiments lists the offline experiment catalog, so a service
// client can discover which paper figures gaia-lab can regenerate.
func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	type expInfo struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	all := experiments.All()
	infos := make([]expInfo, len(all))
	for i, e := range all {
		infos[i] = expInfo{ID: e.ID, Title: e.Title}
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": infos})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.obs.render(w)
	// Counters owned by the admission gate and coalescer are rendered
	// from their own state rather than mirrored into the observer.
	full, drain := s.adm.sheds()
	fmt.Fprintf(w, "# HELP gaia_serve_shed_total Requests shed by the admission gate, by reason.\n")
	fmt.Fprintf(w, "# TYPE gaia_serve_shed_total counter\n")
	fmt.Fprintf(w, "gaia_serve_shed_total{reason=\"queue_full\"} %d\n", full)
	fmt.Fprintf(w, "gaia_serve_shed_total{reason=\"draining\"} %d\n", drain)
	leaders, joined := s.co.stats()
	fmt.Fprintf(w, "# HELP gaia_serve_coalesce_total Simulate requests by coalescing role.\n")
	fmt.Fprintf(w, "# TYPE gaia_serve_coalesce_total counter\n")
	fmt.Fprintf(w, "gaia_serve_coalesce_total{role=\"leader\"} %d\n", leaders)
	fmt.Fprintf(w, "gaia_serve_coalesce_total{role=\"joined\"} %d\n", joined)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.adm.draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "regions": len(s.regionList)})
}

// writeJSON emits v as a compact JSON body. Marshal-then-write (rather
// than streaming) keeps bodies byte-deterministic for the differential
// tests and avoids half-written responses on encode errors.
func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	b, _ := json.Marshal(map[string]string{"error": msg})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
}
