package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCoalescerSharesOneComputation(t *testing.T) {
	c := newCoalescer()
	var calls atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})

	const n = 8
	var wg sync.WaitGroup
	vals := make([]any, n)
	leaders := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, leader, err := c.do(context.Background(), "k", func(context.Context) (any, error) {
				calls.Add(1)
				close(started)
				<-gate
				return 42, nil
			})
			if err != nil {
				t.Errorf("do: %v", err)
			}
			vals[i], leaders[i] = v, leader
		}(i)
	}
	<-started
	// Wait until every goroutine is a participant, then open the gate.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		l, j := c.stats()
		if l+j == n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	var leaderCount int
	for i := 0; i < n; i++ {
		if vals[i] != 42 {
			t.Fatalf("vals[%d] = %v, want 42", i, vals[i])
		}
		if leaders[i] {
			leaderCount++
		}
	}
	if leaderCount != 1 {
		t.Fatalf("leaders = %d, want exactly 1", leaderCount)
	}
	if c.inFlight() != 0 {
		t.Fatalf("inFlight = %d after completion, want 0", c.inFlight())
	}
}

func TestCoalescerCancelsWhenAllLeave(t *testing.T) {
	c := newCoalescer()
	canceled := make(chan struct{})
	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())

	fn := func(wctx context.Context) (any, error) {
		<-wctx.Done()
		close(canceled)
		return nil, wctx.Err()
	}
	errs := make(chan error, 2)
	go func() {
		_, _, err := c.do(ctx1, "k", fn)
		errs <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.inFlight() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	go func() {
		_, _, err := c.do(ctx2, "k", fn)
		errs <- err
	}()
	for {
		if _, j := c.stats(); j == 1 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("second caller never joined")
		}
		time.Sleep(time.Millisecond)
	}

	// One participant leaving must NOT cancel the shared work.
	cancel1()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("first leaver err = %v, want context.Canceled", err)
	}
	select {
	case <-canceled:
		t.Fatal("work canceled while a participant remained")
	case <-time.After(50 * time.Millisecond):
	}

	// The last participant leaving cancels it.
	cancel2()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("second leaver err = %v, want context.Canceled", err)
	}
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("work not canceled after every participant left")
	}
	for c.inFlight() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.inFlight() != 0 {
		t.Fatalf("inFlight = %d after teardown, want 0", c.inFlight())
	}
}

func TestCoalescerDistinctKeysRunIndependently(t *testing.T) {
	c := newCoalescer()
	var calls atomic.Int64
	var wg sync.WaitGroup
	for _, key := range []string{"a", "b"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			v, _, err := c.do(context.Background(), key, func(context.Context) (any, error) {
				calls.Add(1)
				return key, nil
			})
			if err != nil || v != key {
				t.Errorf("do(%q) = %v, %v", key, v, err)
			}
		}(key)
	}
	wg.Wait()
	if calls.Load() != 2 {
		t.Fatalf("fn ran %d times, want 2 (distinct keys must not coalesce)", calls.Load())
	}
}

// TestCoalescerGenerationCheck: a finished flight being replaced by a new
// one for the same key must not be deleted by the old flight's stragglers.
func TestCoalescerGenerationCheck(t *testing.T) {
	c := newCoalescer()
	// First flight completes and is retired.
	if _, _, err := c.do(context.Background(), "k", func(context.Context) (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	// Second flight for the same key, still running: make sure an old
	// flight handle cannot evict it. Simulate a straggler by holding a
	// stale flight and calling leave directly.
	stale := &flight{refs: 1, cancel: func() {}, done: make(chan struct{})}
	gate := make(chan struct{})
	started := make(chan struct{})
	res := make(chan error, 1)
	go func() {
		_, _, err := c.do(context.Background(), "k", func(context.Context) (any, error) {
			close(started)
			<-gate
			return 2, nil
		})
		res <- err
	}()
	<-started
	c.leave("k", stale) // straggler from a dead generation
	if c.inFlight() != 1 {
		t.Fatal("straggler leave evicted a live flight")
	}
	close(gate)
	if err := <-res; err != nil {
		t.Fatal(err)
	}
}
