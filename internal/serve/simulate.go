package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// Guardrails on simulate inputs: a serving process answers interactive
// what-if queries, not paper-scale year runs — those belong to gaia-lab.
const (
	maxSimulateDays = 60
	maxSimulateJobs = 200_000
)

// workloadFamilies maps the accepted family tags to their generators.
var workloadFamilies = map[string]func() workload.Family{
	"alibaba": workload.AlibabaPAI,
	"azure":   workload.AzureVM,
	"mustang": workload.MustangHPC,
}

// SimulateRequest describes one what-if simulation cell. Zero-valued
// fields take the documented defaults, and the normalized form of the
// request is the coalescing key: two clients asking for the same cell in
// different spellings share one computation.
type SimulateRequest struct {
	Policy string `json:"policy"`
	Region string `json:"region"`
	// Family is the synthetic workload family: alibaba (default), azure
	// or mustang.
	Family string `json:"family,omitempty"`
	// Jobs and Days size the workload; defaults 1000 jobs over 7 days.
	Jobs int `json:"jobs,omitempty"`
	Days int `json:"days,omitempty"`
	// Seed drives workload generation and spot evictions; default 1.
	Seed int64 `json:"seed,omitempty"`
	// Reserved / WorkConserving / SpotMaxHours / EvictionRate select the
	// paper's cost-aware mechanisms, exactly as in gaia-sim.
	Reserved       int     `json:"reserved,omitempty"`
	WorkConserving bool    `json:"work_conserving,omitempty"`
	SpotMaxHours   float64 `json:"spot_max_hours,omitempty"`
	EvictionRate   float64 `json:"eviction_rate,omitempty"`
	// WaitShortHours / WaitLongHours override the queues' waiting-time
	// guarantees; 0 keeps the paper's 6 h / 24 h defaults.
	WaitShortHours float64 `json:"wait_short_hours,omitempty"`
	WaitLongHours  float64 `json:"wait_long_hours,omitempty"`
}

// SimulateResponse reports the cell's aggregates plus how the request
// was served — clients can see coalescing and caching working.
type SimulateResponse struct {
	Label    string `json:"label"`
	Region   string `json:"region"`
	Workload string `json:"workload"`
	Jobs     int    `json:"jobs"`

	CarbonKg              float64 `json:"carbon_kg"`
	BaselineCarbonKg      float64 `json:"baseline_carbon_kg"`
	CarbonSavingsPercent  float64 `json:"carbon_savings_percent"`
	CostUSD               float64 `json:"cost_usd"`
	MeanWaitingMinutes    int64   `json:"mean_waiting_minutes"`
	MeanCompletionMinutes int64   `json:"mean_completion_minutes"`
	Evictions             int     `json:"evictions"`

	// CacheOutcome is the runcache verdict (computed, hit, dedup,
	// disk-hit); Coalesced reports whether this HTTP request attached to
	// another request's in-flight computation.
	CacheOutcome string `json:"cache_outcome"`
	Coalesced    bool   `json:"coalesced"`
}

// decodeSimulate strictly parses one simulate body (same contract as
// decodeAdvise).
func decodeSimulate(r io.Reader) (SimulateRequest, error) {
	var req SimulateRequest
	dec := json.NewDecoder(io.LimitReader(r, maxAdviseBodyLen))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return SimulateRequest{}, fmt.Errorf("invalid JSON: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return SimulateRequest{}, errors.New("invalid JSON: trailing data after request object")
	}
	return req, nil
}

// normalizeSimulate validates and canonicalizes a request in place. The
// result is deterministic, so its JSON form can serve as the coalescing
// key. All failures map to HTTP 400.
func (s *Server) normalizeSimulate(req *SimulateRequest) error {
	if _, err := policy.ByName(req.Policy); err != nil {
		return err
	}
	req.Policy = strings.ToLower(req.Policy)
	req.Region = strings.ToUpper(strings.TrimSpace(req.Region))
	if _, err := carbon.RegionByCode(req.Region); err != nil {
		return fmt.Errorf("unknown region %q (GET /v1/traces lists the available ones)", req.Region)
	}
	if req.Family == "" {
		req.Family = "alibaba"
	}
	req.Family = strings.ToLower(req.Family)
	if _, ok := workloadFamilies[req.Family]; !ok {
		return fmt.Errorf("unknown workload family %q (want alibaba, azure or mustang)", req.Family)
	}
	if req.Jobs == 0 {
		req.Jobs = 1000
	}
	if req.Jobs < 1 || req.Jobs > maxSimulateJobs {
		return fmt.Errorf("jobs must be in [1, %d]", maxSimulateJobs)
	}
	if req.Days == 0 {
		req.Days = 7
	}
	if req.Days < 1 || req.Days > maxSimulateDays {
		return fmt.Errorf("days must be in [1, %d]", maxSimulateDays)
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.Reserved < 0 {
		return errors.New("reserved must be non-negative")
	}
	if req.SpotMaxHours < 0 {
		return errors.New("spot_max_hours must be non-negative")
	}
	if req.EvictionRate < 0 || req.EvictionRate >= 1 {
		return errors.New("eviction_rate must be in [0, 1)")
	}
	if req.WaitShortHours < 0 || req.WaitLongHours < 0 {
		return errors.New("wait hours must be non-negative")
	}
	return nil
}

// coalesceKey is the canonical identity of a simulation cell at the HTTP
// layer. Struct field order is fixed, so the encoding is deterministic.
func (req SimulateRequest) coalesceKey() string {
	b, err := json.Marshal(req)
	if err != nil {
		// A plain struct of scalars cannot fail to marshal.
		panic(err)
	}
	return string(b)
}

// simulate runs one normalized cell through the run cache under ctx. The
// ctx is the coalesced flight's context: it outlives any single request
// and is canceled only when every requester has gone.
func (s *Server) simulate(ctx context.Context, req SimulateRequest) (*SimulateResponse, error) {
	carbonTr := s.carbonTrace(req.Region, req.Days)
	jobsTr := s.workloadTrace(req.Family, req.Jobs, req.Days, req.Seed)
	pol, err := policy.ByName(req.Policy)
	if err != nil {
		return nil, err
	}
	conv := func(h float64) simtime.Duration {
		if h == 0 {
			return 0 // keep the config default
		}
		return simtime.HoursDur(h)
	}
	cfg := core.Config{
		Policy:         pol,
		Carbon:         carbonTr,
		Reserved:       req.Reserved,
		WorkConserving: req.WorkConserving,
		SpotMaxLen:     simtime.HoursDur(req.SpotMaxHours),
		EvictionRate:   req.EvictionRate,
		WaitShort:      conv(req.WaitShortHours),
		WaitLong:       conv(req.WaitLongHours),
		Horizon:        simtime.Duration(req.Days+simulateSlackDays) * simtime.Day,
		Seed:           req.Seed,
	}
	res, outcome, err := s.cache.RunContext(ctx, cfg, jobsTr)
	if err != nil && ctx.Err() == nil && errors.Is(err, context.Canceled) {
		// Lost a race with a dying flight: another request's canceled
		// leader shared its error through the runcache entry before the
		// entry was retired. Our own context is live, so retry once —
		// the entry is gone and this call becomes the new leader.
		res, outcome, err = s.cache.RunContext(ctx, cfg, jobsTr)
	}
	if err != nil {
		return nil, err
	}
	s.obs.observeCache(outcome.String())
	return &SimulateResponse{
		Label:                 res.Label,
		Region:                res.Region,
		Workload:              res.Workload,
		Jobs:                  res.JobCount(),
		CarbonKg:              res.TotalCarbonKg(),
		BaselineCarbonKg:      res.BaselineCarbon() / 1000,
		CarbonSavingsPercent:  100 * res.CarbonSavingsFraction(),
		CostUSD:               res.TotalCost(),
		MeanWaitingMinutes:    res.MeanWaiting().Minutes(),
		MeanCompletionMinutes: res.MeanCompletion().Minutes(),
		Evictions:             res.TotalEvictions(),
		CacheOutcome:          outcome.String(),
	}, nil
}

// simulateSlackDays pads the carbon trace and accounting horizon past the
// workload span so late arrivals can still wait out their full windows —
// the same 3-day slack gaia-sim applies.
const simulateSlackDays = 3

// carbonKey / workloadKey index the server's trace memos. Memoization
// matters beyond speed: runcache fingerprints fold in per-instance
// memoized trace hashes, so handing the same *Trace instance to every
// identical request is what makes repeated cells cache hits.
type carbonKey struct {
	region string
	days   int
}

type workloadKey struct {
	family string
	jobs   int
	days   int
	seed   int64
}

// carbonTrace returns the memoized trace for (region, days), generating
// (days+slack)*24 hours with the same fixed seed gaia-sim uses, so the
// service simulates the exact cells the CLI would.
func (s *Server) carbonTrace(region string, days int) *carbon.Trace {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	key := carbonKey{region: region, days: days}
	if tr, ok := s.carbonMemo[key]; ok {
		return tr
	}
	spec, err := carbon.RegionByCode(region)
	if err != nil {
		// normalizeSimulate already vetted the region.
		panic(err)
	}
	tr := spec.Generate((days+simulateSlackDays)*24, carbonTraceSeed)
	s.carbonMemo[key] = tr
	return tr
}

// workloadTrace returns the memoized workload for its generation inputs.
// The memo is bounded: seeds are client-controlled, so at capacity it is
// simply cleared — correctness never depends on it (see carbonKey docs),
// only cache hit rates do.
func (s *Server) workloadTrace(family string, jobs, days int, seed int64) *workload.Trace {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	key := workloadKey{family: family, jobs: jobs, days: days, seed: seed}
	if tr, ok := s.workloadMemo[key]; ok {
		return tr
	}
	if len(s.workloadMemo) >= maxWorkloadMemo {
		s.workloadMemo = make(map[workloadKey]*workload.Trace)
	}
	gen := workloadFamilies[family]
	rng := rand.New(rand.NewSource(seed))
	tr := gen().GenerateByCount(rng, jobs, simtime.Duration(days)*simtime.Day)
	s.workloadMemo[key] = tr
	return tr
}

// carbonTraceSeed pins synthetic carbon traces to gaia-sim's generation
// seed so CLI and service answer identical cells identically.
const carbonTraceSeed = 2022

// maxWorkloadMemo bounds the workload memo (each entry holds a full job
// slice; 256 × 200k jobs worst case is still modest).
const maxWorkloadMemo = 256
