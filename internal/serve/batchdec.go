package serve

import (
	"fmt"
	"unicode/utf16"
	"unicode/utf8"
)

// This file is the batch endpoint's hand-rolled request decoder. The
// stdlib decoder costs more per job than answering the job does, so the
// batch path parses its one known shape directly. The accepted grammar is
// a strict subset of what encoding/json accepts — canonical JSON, meaning
// everything json.Marshal(AdviseBatchRequest) can emit, plus arbitrary
// inter-token whitespace:
//
//   - field names are case-SENSITIVE and unknown ones are errors;
//   - duplicate fields are errors (stdlib silently keeps the last);
//   - null is rejected everywhere;
//   - integers are plain decimal (no exponents, fractions, or leading
//     zeros — stdlib rejects those for int64 fields too, just later);
//   - unpaired UTF-16 surrogate escapes are errors (stdlib substitutes
//     U+FFFD).
//
// Everything this decoder accepts, encoding/json accepts with the
// identical decoded value — FuzzAdviseBatchDecode pins that property
// differentially, so the batch endpoint cannot drift from the documented
// AdviseBatchRequest semantics.

// batchDecoder carries one parse over a fully-read body. The scratch
// buffer is reused across string unescapes (and across requests, via
// adviseScratch).
type batchDecoder struct {
	data    []byte
	pos     int
	scratch []byte
}

func (d *batchDecoder) errAt(format string, args ...any) error {
	return fmt.Errorf("invalid JSON at offset %d: %s", d.pos, fmt.Sprintf(format, args...))
}

func (d *batchDecoder) skipWS() {
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\t', '\n', '\r':
			d.pos++
		default:
			return
		}
	}
}

// expect consumes c (after whitespace) or fails.
func (d *batchDecoder) expect(c byte) error {
	d.skipWS()
	if d.pos >= len(d.data) || d.data[d.pos] != c {
		return d.errAt("expected %q", c)
	}
	d.pos++
	return nil
}

// peek returns the next non-whitespace byte without consuming it, or 0 at
// end of input.
func (d *batchDecoder) peek() byte {
	d.skipWS()
	if d.pos >= len(d.data) {
		return 0
	}
	return d.data[d.pos]
}

// parseStringBytes parses a JSON string and returns its decoded bytes.
// The result may alias d.data (no escapes) or d.scratch (escapes), so
// callers must copy before the next parse call.
func (d *batchDecoder) parseStringBytes() ([]byte, error) {
	if err := d.expect('"'); err != nil {
		return nil, err
	}
	start := d.pos
	for d.pos < len(d.data) {
		c := d.data[d.pos]
		if c == '"' {
			s := d.data[start:d.pos]
			d.pos++
			return s, nil
		}
		if c == '\\' || c < 0x20 || c >= utf8.RuneSelf {
			return d.parseStringSlow(start)
		}
		d.pos++
	}
	return nil, d.errAt("unterminated string")
}

// parseStringSlow finishes a string that contains escapes, control bytes,
// or non-ASCII. It mirrors encoding/json's unquoting for everything it
// accepts (including U+FFFD substitution for invalid UTF-8 bytes), and
// rejects the rest.
func (d *batchDecoder) parseStringSlow(start int) ([]byte, error) {
	buf := append(d.scratch[:0], d.data[start:d.pos]...)
	for d.pos < len(d.data) {
		c := d.data[d.pos]
		switch {
		case c == '"':
			d.pos++
			d.scratch = buf
			return buf, nil
		case c == '\\':
			d.pos++
			if d.pos >= len(d.data) {
				return nil, d.errAt("unterminated escape")
			}
			e := d.data[d.pos]
			d.pos++
			switch e {
			case '"', '\\', '/':
				buf = append(buf, e)
			case 'b':
				buf = append(buf, '\b')
			case 'f':
				buf = append(buf, '\f')
			case 'n':
				buf = append(buf, '\n')
			case 'r':
				buf = append(buf, '\r')
			case 't':
				buf = append(buf, '\t')
			case 'u':
				r, err := d.hex4()
				if err != nil {
					return nil, err
				}
				if utf16.IsSurrogate(r) {
					if d.pos+1 >= len(d.data) || d.data[d.pos] != '\\' || d.data[d.pos+1] != 'u' {
						return nil, d.errAt("unpaired surrogate escape")
					}
					d.pos += 2
					r2, err := d.hex4()
					if err != nil {
						return nil, err
					}
					combined := utf16.DecodeRune(r, r2)
					if combined == utf8.RuneError {
						return nil, d.errAt("invalid surrogate pair")
					}
					r = combined
				}
				buf = utf8.AppendRune(buf, r)
			default:
				return nil, d.errAt("invalid escape \\%c", e)
			}
		case c < 0x20:
			return nil, d.errAt("control character in string")
		case c < utf8.RuneSelf:
			buf = append(buf, c)
			d.pos++
		default:
			r, size := utf8.DecodeRune(d.data[d.pos:])
			if r == utf8.RuneError && size == 1 {
				buf = utf8.AppendRune(buf, utf8.RuneError) // as encoding/json does
			} else {
				buf = append(buf, d.data[d.pos:d.pos+size]...)
			}
			d.pos += size
		}
	}
	return nil, d.errAt("unterminated string")
}

func (d *batchDecoder) hex4() (rune, error) {
	if d.pos+4 > len(d.data) {
		return 0, d.errAt("truncated \\u escape")
	}
	var r rune
	for _, c := range d.data[d.pos : d.pos+4] {
		r <<= 4
		switch {
		case c >= '0' && c <= '9':
			r += rune(c - '0')
		case c >= 'a' && c <= 'f':
			r += rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			r += rune(c-'A') + 10
		default:
			return 0, d.errAt("invalid \\u escape")
		}
	}
	d.pos += 4
	return r, nil
}

// parseInt64 parses a plain decimal integer with the same accept/reject
// outcome encoding/json has for int64-typed fields: leading zeros,
// fractions, exponents, and overflow are all errors there too.
func (d *batchDecoder) parseInt64() (int64, error) {
	d.skipWS()
	neg := false
	if d.pos < len(d.data) && d.data[d.pos] == '-' {
		neg = true
		d.pos++
	}
	if d.pos >= len(d.data) || d.data[d.pos] < '0' || d.data[d.pos] > '9' {
		return 0, d.errAt("expected a number")
	}
	var v uint64
	if d.data[d.pos] == '0' {
		d.pos++
	} else {
		for d.pos < len(d.data) && d.data[d.pos] >= '0' && d.data[d.pos] <= '9' {
			digit := uint64(d.data[d.pos] - '0')
			if v > (1<<63-digit)/10 {
				return 0, d.errAt("integer overflow")
			}
			v = v*10 + digit
			d.pos++
		}
	}
	if d.pos < len(d.data) {
		switch d.data[d.pos] {
		case '.', 'e', 'E':
			return 0, d.errAt("non-integer number")
		case '0', '1', '2', '3', '4', '5', '6', '7', '8', '9':
			return 0, d.errAt("leading zero in number")
		}
	}
	if neg {
		return -int64(v), nil
	}
	if v == 1<<63 {
		return 0, d.errAt("integer overflow")
	}
	return int64(v), nil
}

// internQueue maps the common queue spellings to shared constants so the
// per-job hot path doesn't allocate a string for them.
func internQueue(b []byte) string {
	switch string(b) {
	case "":
		return ""
	case "short":
		return "short"
	case "long":
		return "long"
	default:
		return string(b)
	}
}

// decodeAdviseBatchBytes parses one batch body into req, reusing req.Jobs
// and d's scratch. req is fully reset first; on error its contents are
// unspecified.
func decodeAdviseBatchBytes(d *batchDecoder, data []byte, req *AdviseBatchRequest) error {
	d.data, d.pos = data, 0
	req.Policy, req.Region, req.Jobs = "", "", req.Jobs[:0]
	if err := d.expect('{'); err != nil {
		return err
	}
	var seen uint8 // 1 policy, 2 region, 4 jobs
	for first := true; ; first = false {
		if d.peek() == '}' && first {
			d.pos++
			break
		}
		key, err := d.parseStringBytes()
		if err != nil {
			return err
		}
		var bit uint8
		switch string(key) {
		case "policy":
			bit = 1
		case "region":
			bit = 2
		case "jobs":
			bit = 4
		default:
			return d.errAt("unknown field %q", key)
		}
		if seen&bit != 0 {
			return d.errAt("duplicate field %q", key)
		}
		seen |= bit
		if err := d.expect(':'); err != nil {
			return err
		}
		switch bit {
		case 1, 2:
			v, err := d.parseStringBytes()
			if err != nil {
				return err
			}
			if bit == 1 {
				req.Policy = string(v)
			} else {
				req.Region = string(v)
			}
		case 4:
			if err := d.parseJobs(req); err != nil {
				return err
			}
		}
		if c := d.peek(); c == ',' {
			d.pos++
			continue
		} else if c == '}' {
			d.pos++
			break
		}
		return d.errAt("expected ',' or '}'")
	}
	d.skipWS()
	if d.pos != len(d.data) {
		return d.errAt("trailing data after request object")
	}
	return nil
}

// parseJobs parses the jobs array, enforcing maxBatchJobs during the
// parse so an oversized batch aborts early.
func (d *batchDecoder) parseJobs(req *AdviseBatchRequest) error {
	if err := d.expect('['); err != nil {
		return err
	}
	if d.peek() == ']' {
		d.pos++
		return nil
	}
	for {
		if len(req.Jobs) >= maxBatchJobs {
			return fmt.Errorf("jobs must contain at most %d entries", maxBatchJobs)
		}
		req.Jobs = append(req.Jobs, AdviseBatchJob{})
		if err := d.parseJob(&req.Jobs[len(req.Jobs)-1]); err != nil {
			return err
		}
		if c := d.peek(); c == ',' {
			d.pos++
		} else if c == ']' {
			d.pos++
			return nil
		} else {
			return d.errAt("expected ',' or ']'")
		}
	}
}

func (d *batchDecoder) parseJob(j *AdviseBatchJob) error {
	if err := d.expect('{'); err != nil {
		return err
	}
	if d.peek() == '}' {
		d.pos++
		return nil
	}
	var seen uint8
	for {
		key, err := d.parseStringBytes()
		if err != nil {
			return err
		}
		var bit uint8
		switch string(key) {
		case "length_minutes":
			bit = 1
		case "cpus":
			bit = 2
		case "arrival_minute":
			bit = 4
		case "queue":
			bit = 8
		case "max_wait_minutes":
			bit = 16
		case "avg_length_minutes":
			bit = 32
		case "spot_max_minutes":
			bit = 64
		default:
			return d.errAt("unknown field %q", key)
		}
		if seen&bit != 0 {
			return d.errAt("duplicate field %q", key)
		}
		seen |= bit
		if err := d.expect(':'); err != nil {
			return err
		}
		if bit == 8 {
			q, err := d.parseStringBytes()
			if err != nil {
				return err
			}
			j.Queue = internQueue(q)
		} else {
			v, err := d.parseInt64()
			if err != nil {
				return err
			}
			switch bit {
			case 1:
				j.LengthMinutes = v
			case 2:
				j.CPUs = int(v)
			case 4:
				j.ArrivalMinute = v
			case 16:
				w := v
				j.MaxWaitMinutes = &w
			case 32:
				j.AvgLengthMinutes = v
			case 64:
				j.SpotMaxMinutes = v
			}
		}
		if c := d.peek(); c == ',' {
			d.pos++
		} else if c == '}' {
			d.pos++
			return nil
		} else {
			return d.errAt("expected ',' or '}'")
		}
	}
}
