package serve

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Sentinel admission outcomes. Handlers translate them to HTTP statuses:
// a full queue is the client's signal to back off and retry (429 +
// Retry-After), while draining means this process is going away and the
// request should be re-sent elsewhere (503).
var (
	errQueueFull = errors.New("serve: admission queue full")
	errDraining  = errors.New("serve: server draining")
)

// admission is the bounded gate in front of the work endpoints. It
// provides two-stage load shedding: at most maxConcurrent requests run at
// once, at most queueDepth more wait for a running slot, and anything
// beyond that is shed immediately with errQueueFull — the server never
// builds an unbounded backlog of goroutines it cannot serve before their
// clients give up. Once startDrain is called, queued-but-unstarted
// requests are released with errDraining while already-running requests
// finish normally.
type admission struct {
	queue chan struct{} // slots held while waiting for a running slot
	run   chan struct{} // slots held while the handler does work
	drain chan struct{} // closed by startDrain
	once  sync.Once
	now   func() time.Time // injected clock; time.Now in production

	mu        sync.Mutex
	shedFull  int64   // requests rejected with errQueueFull
	shedDrain int64   // requests rejected with errDraining
	ewmaNanos float64 // moving average of admit→release service time; 0 = none yet
}

// ewmaAlpha weights the newest service-time observation: high enough to
// track load shifts within a few tens of requests, low enough that one
// slow outlier doesn't swing the retry hint.
const ewmaAlpha = 0.2

// maxRetryAfter caps the adaptive hint: past a minute the estimate says
// less "when to retry" than "find another replica".
const maxRetryAfter = time.Minute

func newAdmission(queueDepth, maxConcurrent int) *admission {
	if queueDepth < 0 {
		queueDepth = 0
	}
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	return &admission{
		queue: make(chan struct{}, queueDepth),
		run:   make(chan struct{}, maxConcurrent),
		drain: make(chan struct{}),
		now:   time.Now,
	}
}

// acquire admits one request, blocking in the bounded queue until a
// running slot frees up. On success the caller must invoke release when
// its work is done. The error is errQueueFull (shed, queue at capacity),
// errDraining (shed, server shutting down) or the caller's own context
// error (client gave up while queued).
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	if a.draining() {
		a.count(&a.shedDrain)
		return nil, errDraining
	}
	// Fast path: a free running slot admits without touching the queue.
	select {
	case a.run <- struct{}{}:
		return a.releaseRun(), nil
	default:
	}
	select {
	case a.queue <- struct{}{}:
	default:
		a.count(&a.shedFull)
		return nil, errQueueFull
	}
	defer func() { <-a.queue }()
	select {
	case a.run <- struct{}{}:
		return a.releaseRun(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-a.drain:
		a.count(&a.shedDrain)
		return nil, errDraining
	}
}

// releaseRun builds the release closure for one admitted request: it
// frees the running slot and feeds the observed service time into the
// drain-rate estimate behind Retry-After.
func (a *admission) releaseRun() func() {
	start := a.now()
	return func() {
		a.observe(a.now().Sub(start))
		<-a.run
	}
}

func (a *admission) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	a.mu.Lock()
	if a.ewmaNanos == 0 {
		a.ewmaNanos = float64(d)
	} else {
		a.ewmaNanos = ewmaAlpha*float64(d) + (1-ewmaAlpha)*a.ewmaNanos
	}
	a.mu.Unlock()
}

// serviceTime returns the current service-time estimate, zero before any
// request has completed.
func (a *admission) serviceTime() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return time.Duration(a.ewmaNanos)
}

// retryAfter estimates how long a just-shed client should wait before
// retrying: the backlog ahead of it (the full queue plus itself) drains
// at maxConcurrent requests per observed service time. The estimate
// scales with load — a queue of quick advisory calls empties in well
// under a second, a queue of simulations takes many — where a fixed hint
// either hammers a busy server or idles a recovering one. Before any
// observation exists the configured fallback applies; the result is
// clamped to [fallback, maxRetryAfter].
func (a *admission) retryAfter(fallback time.Duration) time.Duration {
	a.mu.Lock()
	ewma := a.ewmaNanos
	a.mu.Unlock()
	if ewma <= 0 {
		return fallback
	}
	backlog := float64(len(a.queue) + 1)
	wait := time.Duration(ewma * backlog / float64(cap(a.run)))
	if wait < fallback {
		return fallback
	}
	if wait > maxRetryAfter {
		return maxRetryAfter
	}
	return wait
}

// startDrain flips the gate into shedding mode; idempotent.
func (a *admission) startDrain() { a.once.Do(func() { close(a.drain) }) }

func (a *admission) draining() bool {
	select {
	case <-a.drain:
		return true
	default:
		return false
	}
}

// queued and running report instantaneous occupancy for /metrics gauges.
func (a *admission) queued() int  { return len(a.queue) }
func (a *admission) running() int { return len(a.run) }

// sheds returns the cumulative shed counts by reason.
func (a *admission) sheds() (full, drain int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shedFull, a.shedDrain
}

func (a *admission) count(c *int64) {
	a.mu.Lock()
	*c++
	a.mu.Unlock()
}
