package serve

import (
	"context"
	"errors"
	"sync"
)

// Sentinel admission outcomes. Handlers translate them to HTTP statuses:
// a full queue is the client's signal to back off and retry (429 +
// Retry-After), while draining means this process is going away and the
// request should be re-sent elsewhere (503).
var (
	errQueueFull = errors.New("serve: admission queue full")
	errDraining  = errors.New("serve: server draining")
)

// admission is the bounded gate in front of the work endpoints. It
// provides two-stage load shedding: at most maxConcurrent requests run at
// once, at most queueDepth more wait for a running slot, and anything
// beyond that is shed immediately with errQueueFull — the server never
// builds an unbounded backlog of goroutines it cannot serve before their
// clients give up. Once startDrain is called, queued-but-unstarted
// requests are released with errDraining while already-running requests
// finish normally.
type admission struct {
	queue chan struct{} // slots held while waiting for a running slot
	run   chan struct{} // slots held while the handler does work
	drain chan struct{} // closed by startDrain
	once  sync.Once

	mu        sync.Mutex
	shedFull  int64 // requests rejected with errQueueFull
	shedDrain int64 // requests rejected with errDraining
}

func newAdmission(queueDepth, maxConcurrent int) *admission {
	if queueDepth < 0 {
		queueDepth = 0
	}
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	return &admission{
		queue: make(chan struct{}, queueDepth),
		run:   make(chan struct{}, maxConcurrent),
		drain: make(chan struct{}),
	}
}

// acquire admits one request, blocking in the bounded queue until a
// running slot frees up. On success the caller must invoke release when
// its work is done. The error is errQueueFull (shed, queue at capacity),
// errDraining (shed, server shutting down) or the caller's own context
// error (client gave up while queued).
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	if a.draining() {
		a.count(&a.shedDrain)
		return nil, errDraining
	}
	// Fast path: a free running slot admits without touching the queue.
	select {
	case a.run <- struct{}{}:
		return a.releaseRun, nil
	default:
	}
	select {
	case a.queue <- struct{}{}:
	default:
		a.count(&a.shedFull)
		return nil, errQueueFull
	}
	defer func() { <-a.queue }()
	select {
	case a.run <- struct{}{}:
		return a.releaseRun, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-a.drain:
		a.count(&a.shedDrain)
		return nil, errDraining
	}
}

func (a *admission) releaseRun() { <-a.run }

// startDrain flips the gate into shedding mode; idempotent.
func (a *admission) startDrain() { a.once.Do(func() { close(a.drain) }) }

func (a *admission) draining() bool {
	select {
	case <-a.drain:
		return true
	default:
		return false
	}
}

// queued and running report instantaneous occupancy for /metrics gauges.
func (a *admission) queued() int  { return len(a.queue) }
func (a *admission) running() int { return len(a.run) }

// sheds returns the cumulative shed counts by reason.
func (a *admission) sheds() (full, drain int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shedFull, a.shedDrain
}

func (a *admission) count(c *int64) {
	a.mu.Lock()
	*c++
	a.mu.Unlock()
}
