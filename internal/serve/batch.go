package serve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/carbonsched/gaia/internal/policy"
)

// This file is the fleet-scale advisory path: POST /v1/advise/batch
// answers thousands of scheduling queries in one request over the same
// startup-built oracle tables as /v1/advise, amortizing the per-request
// HTTP, decode, and policy-context costs across the whole batch. The
// response is NDJSON — one line per job, in input order, each line
// byte-identical to the /v1/advise response body for the equivalent
// single request (the batch differential test pins this).
//
// The per-job budget is what makes the endpoint worth having, so the hot
// loop is allocation-lean end to end: a hand-rolled strict decoder
// (batchdec.go), one pooled scratch carrying the policy context and
// output buffer across jobs, the hand-rolled response encoder
// (jsonenc.go), and an intra-batch memo that answers duplicate queries by
// replaying the first verdict's bytes — fleet batches are template-heavy,
// and an advisory answer is a pure function of the normalized request.
//
// Error contract: everything is validated before the first response byte
// — a bad item fails the whole request with 400 naming jobs[i], so a 200
// status means every line that follows is a verdict. After streaming
// starts the only failures left are client disconnect and deadline
// expiry, both of which truncate the stream mid-line at worst; a client
// sees that as a line without a trailing newline.

// Guardrails on batch inputs, scaled up from the single-request bounds.
const (
	maxBatchBodyLen = 16 << 20
	maxBatchJobs    = 100_000
)

// batchDeadlineStride bounds how many jobs are answered between deadline
// checks while streaming; checking every job would cost more than a job.
const batchDeadlineStride = 512

// batchMemoMax caps the intra-batch dedup memo: past this many distinct
// queries the remainder computes directly, bounding the memo's memory at
// a few MB however large (and however diverse) the batch is.
const batchMemoMax = 1 << 14

// AdviseBatchRequest is one batch query: the policy and region are shared
// by every job (one advisory context answers the whole batch), the
// per-job fields match AdviseRequest.
type AdviseBatchRequest struct {
	// Policy and Region apply to every job; see AdviseRequest.
	Policy string `json:"policy"`
	Region string `json:"region"`
	// Jobs are the queries, answered in order, one NDJSON line each.
	Jobs []AdviseBatchJob `json:"jobs"`
}

// AdviseBatchJob carries the per-job fields of AdviseRequest; semantics
// and defaults are identical to the single-request endpoint.
type AdviseBatchJob struct {
	LengthMinutes    int64  `json:"length_minutes"`
	CPUs             int    `json:"cpus,omitempty"`
	ArrivalMinute    int64  `json:"arrival_minute,omitempty"`
	Queue            string `json:"queue,omitempty"`
	MaxWaitMinutes   *int64 `json:"max_wait_minutes,omitempty"`
	AvgLengthMinutes int64  `json:"avg_length_minutes,omitempty"`
	SpotMaxMinutes   int64  `json:"spot_max_minutes,omitempty"`
}

// single converts one batch job to the equivalent single-endpoint request.
func (b *AdviseBatchRequest) single(i int) AdviseRequest {
	j := &b.Jobs[i]
	return AdviseRequest{
		Policy:           b.Policy,
		Region:           b.Region,
		LengthMinutes:    j.LengthMinutes,
		CPUs:             j.CPUs,
		ArrivalMinute:    j.ArrivalMinute,
		Queue:            j.Queue,
		MaxWaitMinutes:   j.MaxWaitMinutes,
		AvgLengthMinutes: j.AvgLengthMinutes,
		SpotMaxMinutes:   j.SpotMaxMinutes,
	}
}

// batchMemoKey is a normalized request minus the batch-constant policy
// and region: equal keys get byte-identical verdicts.
type batchMemoKey struct {
	lengthMin int64
	cpus      int
	arrival   int64
	queueLong bool
	maxWait   int64
	avgLen    int64
	spotMax   int64
}

// lineSpan locates one memoized verdict line in the batch arena.
type lineSpan struct{ off, end int }

// decodeAdviseBatch strictly parses one batch body (see batchdec.go for
// the accepted grammar). Kept as a reader-based entry point for tests;
// the handler decodes from its pooled body buffer directly.
func decodeAdviseBatch(r io.Reader) (AdviseBatchRequest, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxBatchBodyLen+1))
	if err != nil {
		return AdviseBatchRequest{}, fmt.Errorf("reading body: %w", err)
	}
	if len(data) > maxBatchBodyLen {
		return AdviseBatchRequest{}, fmt.Errorf("body exceeds %d bytes", maxBatchBodyLen)
	}
	var req AdviseBatchRequest
	var d batchDecoder
	if err := decodeAdviseBatchBytes(&d, data, &req); err != nil {
		return AdviseBatchRequest{}, err
	}
	return req, nil
}

func (s *Server) handleAdviseBatch(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.BatchTimeout)
	defer cancel()

	sc := adviseScratchPool.Get().(*adviseScratch)
	defer adviseScratchPool.Put(sc)
	body, err := readBody(&sc.body, r.Body, maxBatchBodyLen)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	batch := &sc.batch
	if err := decodeAdviseBatchBytes(&sc.dec, body, batch); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(batch.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "jobs must contain at least one entry")
		return
	}

	// Resolve the batch-constant policy and region once, then validate
	// every job before the first response byte. The normalized requests
	// are kept (in pooled storage) so the streaming pass repeats no
	// validation work.
	if _, err := policy.ByName(batch.Policy); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	region := strings.ToUpper(strings.TrimSpace(batch.Region))
	tr, ok := s.regions[region]
	if !ok {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown region %q (GET /v1/traces lists the available ones)", batch.Region))
		return
	}
	reqs := sc.reqs[:0]
	for i := range batch.Jobs {
		req := batch.single(i)
		req.Region = region
		if err := normalizeAdviseJob(&req, tr); err != nil {
			sc.reqs = reqs[:0]
			writeError(w, http.StatusBadRequest, fmt.Sprintf("jobs[%d]: %v", i, err))
			return
		}
		reqs = append(reqs, req)
	}
	sc.reqs = reqs

	if sc.memo == nil {
		sc.memo = make(map[batchMemoKey]lineSpan)
	}
	clear(sc.memo)
	arena := sc.arena[:0]

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriterSize(w, 64<<10)
	for i := range reqs {
		if i%batchDeadlineStride == 0 && ctx.Err() != nil {
			break // deadline or client gone: truncate the stream
		}
		req := &reqs[i]
		key := batchMemoKey{
			lengthMin: req.LengthMinutes,
			cpus:      req.CPUs,
			arrival:   req.ArrivalMinute,
			queueLong: req.Queue == "long",
			maxWait:   *req.MaxWaitMinutes,
			avgLen:    req.AvgLengthMinutes,
			spotMax:   req.SpotMaxMinutes,
		}
		if span, ok := sc.memo[key]; ok {
			if _, err := bw.Write(arena[span.off:span.end]); err != nil {
				break
			}
			continue
		}
		resp, err := s.adviseInto(req, sc)
		if err != nil {
			// Unreachable for validated input (Decide is deterministic and
			// its decisions validate); if a policy bug ever trips it, the
			// truncated stream is the only honest signal left post-200.
			s.cfg.Logf("serve: batch advise job %d: %v (stream truncated)", i, err)
			break
		}
		sc.buf = appendAdviseResponse(sc.buf[:0], resp)
		sc.buf = append(sc.buf, '\n')
		if len(sc.memo) < batchMemoMax {
			off := len(arena)
			arena = append(arena, sc.buf...)
			sc.memo[key] = lineSpan{off: off, end: len(arena)}
		}
		if _, err := bw.Write(sc.buf); err != nil {
			break
		}
	}
	sc.arena = arena
	bw.Flush()
}

// readBody reads at most limit bytes into the pooled buffer *dst,
// erroring on larger bodies.
func readBody(dst *[]byte, r io.Reader, limit int) ([]byte, error) {
	buf := (*dst)[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			*dst = buf
			if len(buf) > limit {
				return nil, fmt.Errorf("body exceeds %d bytes", limit)
			}
			return buf, nil
		}
		if err != nil {
			*dst = buf
			return nil, fmt.Errorf("reading body: %w", err)
		}
		if len(buf) > limit {
			*dst = buf
			return nil, fmt.Errorf("body exceeds %d bytes", limit)
		}
	}
}
