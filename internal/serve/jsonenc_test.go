package serve

import (
	"encoding/json"
	"math"
	"testing"
)

// FuzzJSONEncode pins the hand-rolled string and float encoders
// byte-identical to encoding/json over arbitrary input — the property
// every differential test in this package ultimately leans on.
func FuzzJSONEncode(f *testing.F) {
	f.Add("", 0.0)
	f.Add("carbon-time", 123.456)
	f.Add("quote\"back\\slash", 1e-7)
	f.Add("html<&>chars", 1e21)
	f.Add("control\x00\x01\x1f\tchars", -1e-300)
	f.Add("line\u2028sep\u2029ators", math.MaxFloat64)
	f.Add("invalid\xff\xfeutf8", math.SmallestNonzeroFloat64)
	f.Add("bell\bform\ffeed", -0.0)
	f.Add("ünïcødé ☃", 9.999999e20)
	f.Add("surrogate\xed\xa0\x80tail", 1e-6)
	f.Fuzz(func(t *testing.T, s string, v float64) {
		wantS, err := json.Marshal(s)
		if err != nil {
			t.Skip()
		}
		if got := appendJSONString(nil, s); string(got) != string(wantS) {
			t.Errorf("appendJSONString(%q) = %s, json.Marshal = %s", s, got, wantS)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return // json.Marshal rejects; the encoder's contract excludes them
		}
		wantV, err := json.Marshal(v)
		if err != nil {
			t.Skip()
		}
		if got := appendJSONFloat(nil, v); string(got) != string(wantV) {
			t.Errorf("appendJSONFloat(%v) = %s, json.Marshal = %s", v, got, wantV)
		}
	})
}

// TestAppendAdviseResponse pins the struct encoder against json.Marshal
// across the response shapes the endpoints produce.
func TestAppendAdviseResponse(t *testing.T) {
	cases := []AdviseResponse{
		{},
		{
			Policy: "carbon-time", Region: "CA-US", Queue: "short",
			StartMinute: 300, FinishMinute: 420, WaitMinutes: 0,
			InstanceClass: "on-demand",
			CarbonGrams:   123.456789, BaselineCarbonGrams: 200,
			CarbonSavingsGrams: 76.543211, CostUSD: 0.475, BaselineCostUSD: 0.475,
			FastPath: true,
		},
		{
			Policy: "wait-awhile", Region: "SE", Queue: "long",
			StartMinute: -1, FinishMinute: 1 << 40, WaitMinutes: 59,
			Plan: []AdviseWindow{
				{StartMinute: 10, EndMinute: 20},
				{StartMinute: 60, EndMinute: 120},
				{StartMinute: 180, EndMinute: 181},
			},
			InstanceClass: "spot",
			CarbonGrams:   1e-9, BaselineCarbonGrams: 1e22,
			CarbonSavingsGrams: -0.0, CostUSD: math.MaxFloat64,
			BaselineCostUSD: math.SmallestNonzeroFloat64,
		},
		{Policy: "na<me&>\"x\\", Region: "…\u2028", Queue: "\x01"},
	}
	for i, r := range cases {
		want, err := json.Marshal(&r)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := appendAdviseResponse(nil, &r); string(got) != string(want) {
			t.Errorf("case %d:\n got %s\nwant %s", i, got, want)
		}
	}
}
