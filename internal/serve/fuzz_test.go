package serve

import (
	"bytes"
	"testing"
)

// FuzzAdviseDecode feeds arbitrary bodies through the advise request
// pipeline: decode, normalize, and — when both accept — the decision
// itself. The invariant is the endpoint's 400 contract: malformed input
// is reported as an error, never a panic, and anything that passes
// validation must produce a decision.
func FuzzAdviseDecode(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{{`,
		`null`,
		`[1,2,3]`,
		`"just a string"`,
		`{"policy":"carbon-time","region":"CA-US","length_minutes":120}`,
		`{"policy":"wait-awhile","region":"SE","length_minutes":90,"arrival_minute":61,"cpus":3}`,
		`{"policy":"ecovisor","region":"NL","length_minutes":45,"queue":"long"}`,
		`{"policy":"mystery","region":"CA-US","length_minutes":10}`,
		`{"policy":"nowait","region":"??","length_minutes":10}`,
		`{"policy":"nowait","region":"CA-US","length_minutes":-5}`,
		`{"policy":"nowait","region":"CA-US","length_minutes":99999999999}`,
		`{"policy":"nowait","region":"CA-US","length_minutes":10,"max_wait_minutes":-1}`,
		`{"policy":"nowait","region":"CA-US","length_minutes":10,"max_wait_minutes":999999999}`,
		`{"policy":"nowait","region":"CA-US","length_minutes":10,"arrival_minute":-7}`,
		`{"policy":"nowait","region":"CA-US","length_minutes":10,"cpus":-1}`,
		`{"policy":"nowait","region":"CA-US","length_minutes":10,"queue":"medium"}`,
		`{"policy":"nowait","region":"CA-US","length_minutes":10,"unknown_field":true}`,
		`{"policy":"nowait","region":"CA-US","length_minutes":10} trailing`,
		`{"policy":"nowait","region":"ca-us","length_minutes":1,"avg_length_minutes":1,"spot_max_minutes":1}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	srv, err := New(Config{TraceDays: 2, Logf: func(string, ...any) {}})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := decodeAdvise(bytes.NewReader(body))
		if err != nil {
			return // → 400, by contract
		}
		if err := srv.normalizeAdvise(&req); err != nil {
			return // → 400, by contract
		}
		resp, err := srv.advise(req)
		if err != nil {
			t.Fatalf("validated request failed to advise: %v (request %+v)", err, req)
		}
		if resp.StartMinute < req.ArrivalMinute {
			t.Fatalf("advice starts before arrival: %+v", resp)
		}
		if resp.FinishMinute < resp.StartMinute+req.LengthMinutes {
			t.Fatalf("finish precedes start+length: %+v", resp)
		}
	})
}
