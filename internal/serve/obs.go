package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"github.com/carbonsched/gaia/internal/stats"
)

// defaultLatencyBounds is the request-latency bucket ladder: 1 ms to
// ~8 s in powers of two, wide enough to straddle both the microsecond
// advise path and multi-second cold simulations.
var defaultLatencyBounds = stats.ExponentialBounds(0.001, 2, 14)

// observer is the server's metrics registry. All counters are cumulative
// since process start; rendering is the Prometheus text exposition format
// with deterministically sorted label sets, so scrapes (and tests) see a
// stable layout. Gauges are sampled at render time via callbacks, which
// keeps hot paths free of gauge bookkeeping.
type observer struct {
	mu       sync.Mutex
	requests map[reqKey]int64
	latency  map[string]*stats.CumulativeHistogram // endpoint → seconds
	cache    map[string]int64                      // runcache outcome → count

	gaugesMu sync.Mutex
	gauges   []gauge
}

type reqKey struct {
	endpoint string
	code     int
}

type gauge struct {
	name, help string
	sample     func() float64
}

func newObserver() *observer {
	return &observer{
		requests: make(map[reqKey]int64),
		latency:  make(map[string]*stats.CumulativeHistogram),
		cache:    make(map[string]int64),
	}
}

// observe records one finished request: its endpoint, HTTP status and
// wall-clock seconds.
func (o *observer) observe(endpoint string, code int, seconds float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.requests[reqKey{endpoint, code}]++
	h := o.latency[endpoint]
	if h == nil {
		h = stats.MustCumulativeHistogram(defaultLatencyBounds...)
		o.latency[endpoint] = h
	}
	h.Observe(seconds)
}

// observeCache records one runcache outcome from /v1/simulate.
func (o *observer) observeCache(outcome string) {
	o.mu.Lock()
	o.cache[outcome]++
	o.mu.Unlock()
}

// registerGauge adds a sampled-at-scrape-time gauge.
func (o *observer) registerGauge(name, help string, sample func() float64) {
	o.gaugesMu.Lock()
	o.gauges = append(o.gauges, gauge{name: name, help: help, sample: sample})
	o.gaugesMu.Unlock()
}

// render writes the Prometheus text exposition of every metric. Label
// sets are emitted in sorted order and histograms are snapshotted under
// the lock, so a scrape racing live traffic still sees each histogram's
// buckets, sum and count mutually consistent.
func (o *observer) render(w io.Writer) {
	o.mu.Lock()
	reqs := make([]reqKey, 0, len(o.requests))
	for k := range o.requests {
		reqs = append(reqs, k)
	}
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].endpoint != reqs[j].endpoint {
			return reqs[i].endpoint < reqs[j].endpoint
		}
		return reqs[i].code < reqs[j].code
	})
	reqCounts := make([]int64, len(reqs))
	for i, k := range reqs {
		reqCounts[i] = o.requests[k]
	}
	endpoints := make([]string, 0, len(o.latency))
	for ep := range o.latency {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	hists := make([]stats.CumulativeHistogram, len(endpoints))
	for i, ep := range endpoints {
		hists[i] = o.latency[ep].Snapshot()
	}
	outcomes := make([]string, 0, len(o.cache))
	for oc := range o.cache {
		outcomes = append(outcomes, oc)
	}
	sort.Strings(outcomes)
	cacheCounts := make([]int64, len(outcomes))
	for i, oc := range outcomes {
		cacheCounts[i] = o.cache[oc]
	}
	o.mu.Unlock()

	fmt.Fprintf(w, "# HELP gaia_serve_requests_total Finished HTTP requests by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE gaia_serve_requests_total counter\n")
	for i, k := range reqs {
		fmt.Fprintf(w, "gaia_serve_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, reqCounts[i])
	}

	fmt.Fprintf(w, "# HELP gaia_serve_request_seconds Request latency by endpoint.\n")
	fmt.Fprintf(w, "# TYPE gaia_serve_request_seconds histogram\n")
	for i, ep := range endpoints {
		h := &hists[i]
		bounds := h.Bounds()
		cum := h.Cumulative()
		for j, b := range bounds {
			fmt.Fprintf(w, "gaia_serve_request_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ep, formatFloat(b), cum[j])
		}
		fmt.Fprintf(w, "gaia_serve_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, h.Count())
		fmt.Fprintf(w, "gaia_serve_request_seconds_sum{endpoint=%q} %s\n", ep, formatFloat(h.Sum()))
		fmt.Fprintf(w, "gaia_serve_request_seconds_count{endpoint=%q} %d\n", ep, h.Count())
	}

	fmt.Fprintf(w, "# HELP gaia_serve_simulate_cache_total Simulation requests by runcache outcome.\n")
	fmt.Fprintf(w, "# TYPE gaia_serve_simulate_cache_total counter\n")
	for i, oc := range outcomes {
		fmt.Fprintf(w, "gaia_serve_simulate_cache_total{outcome=%q} %d\n", oc, cacheCounts[i])
	}

	o.gaugesMu.Lock()
	gauges := append([]gauge(nil), o.gauges...)
	o.gaugesMu.Unlock()
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n", g.name, g.help)
		fmt.Fprintf(w, "# TYPE %s gauge\n", g.name)
		fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.sample()))
	}
}

// formatFloat renders a float the way Prometheus clients conventionally
// do: shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
