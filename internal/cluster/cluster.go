// Package cluster models an elastic cloud cluster the way the paper's
// AWS ParallelCluster prototype sees it: individual nodes with boot
// delays, idle timeouts, per-purchase-option billing over the *entire*
// instance lifetime (including initiation and termination, §5), and spot
// interruption. It complements internal/core — the GAIA-Simulator — which
// deliberately abstracts these overheads away; comparing the two
// reproduces the paper's simulator-vs-prototype methodology.
package cluster

import (
	"fmt"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/sim"
	"github.com/carbonsched/gaia/internal/simtime"
)

// NodeState is a node's lifecycle state.
type NodeState int

// Node lifecycle: Provisioning (booting) → Idle ⇄ Busy → Terminated.
const (
	Provisioning NodeState = iota
	Idle
	Busy
	Terminated
)

// String names the state.
func (s NodeState) String() string {
	switch s {
	case Provisioning:
		return "provisioning"
	case Idle:
		return "idle"
	case Busy:
		return "busy"
	case Terminated:
		return "terminated"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Node is one cloud instance. The paper normalizes resources to 1-CPU
// units, so a node hosts exactly one unit of one job at a time.
type Node struct {
	ID     int
	Option cloud.Option
	State  NodeState
	// LaunchedAt is when the launch request was issued (billing starts
	// here — the paper accounts the entire instance time).
	LaunchedAt simtime.Time
	// ReadyAt is when the node finished booting.
	ReadyAt simtime.Time
	// TerminatedAt closes the billing interval.
	TerminatedAt simtime.Time
	// idleSince tracks the scale-down timer.
	idleSince simtime.Time
	// epoch increments on every occupancy, so stale spot-interruption
	// events (sampled for a previous job on this node) can be discarded.
	epoch int
}

// Uptime returns the billed duration of the node as of t (or its final
// lifetime when terminated).
func (n *Node) Uptime(t simtime.Time) simtime.Duration {
	end := t
	if n.State == Terminated {
		end = n.TerminatedAt
	}
	return end.Sub(n.LaunchedAt)
}

// Config parameterizes the elastic cluster manager.
type Config struct {
	// Engine drives all node lifecycle events.
	Engine *sim.Engine
	// Carbon is the realized CI trace for node carbon accounting.
	Carbon *carbon.Trace
	// Pricing and Power follow the cloud market model.
	Pricing cloud.Pricing
	Power   cloud.Power
	// ReservedNodes is the pre-paid fixed fleet, present from time 0.
	ReservedNodes int
	// BootDelay is the instance initiation time (ParallelCluster nodes
	// take on the order of minutes to join the scheduler).
	BootDelay simtime.Duration
	// IdleTimeout is the elastic scale-down timer: an on-demand or spot
	// node idle this long is terminated (ParallelCluster's
	// scaledown_idletime, default 10 min).
	IdleTimeout simtime.Duration
	// EvictionRate is the hourly spot interruption probability.
	EvictionRate float64
	// Seed drives the spot interruption process.
	Seed int64
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Pricing == (cloud.Pricing{}) {
		c.Pricing = cloud.DefaultPricing()
	}
	if c.Power == (cloud.Power{}) {
		c.Power = cloud.DefaultPower()
	}
	if c.BootDelay == 0 {
		c.BootDelay = 3 * simtime.Minute
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 10 * simtime.Minute
	}
	return c
}

// Manager owns the node fleet. All methods must be called from the event
// engine's goroutine (the whole simulation is single-threaded and
// deterministic).
type Manager struct {
	cfg     Config
	nodes   []*Node
	evict   *cloud.EvictionModel
	nextID  int
	onReady func()
	// onInterrupt notifies the batch layer that a busy spot node died;
	// the occupying allocation is already released.
	onInterrupt func(node *Node)
	occupants   map[int]func(*Node) // busy node ID → interruption handler
}

// NewManager creates the fleet manager and provisions the reserved nodes
// (ready immediately at time 0: the fixed fleet pre-exists the run).
func NewManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Engine == nil {
		return nil, fmt.Errorf("cluster: config needs an engine")
	}
	if cfg.Carbon == nil {
		return nil, fmt.Errorf("cluster: config needs a carbon trace")
	}
	if err := cfg.Pricing.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Power.Validate(); err != nil {
		return nil, err
	}
	if cfg.ReservedNodes < 0 {
		return nil, fmt.Errorf("cluster: reserved nodes %d must be non-negative", cfg.ReservedNodes)
	}
	evict, err := cloud.NewEvictionModel(cfg.EvictionRate, cfg.Seed)
	if err != nil {
		return nil, err
	}
	m := &Manager{cfg: cfg, evict: evict, occupants: make(map[int]func(*Node))}
	for i := 0; i < cfg.ReservedNodes; i++ {
		n := &Node{ID: m.nextID, Option: cloud.Reserved, State: Idle}
		m.nextID++
		m.nodes = append(m.nodes, n)
	}
	return m, nil
}

// SetOnReady registers the callback fired whenever a provisioning node
// becomes available (the batch layer retries its pending queue).
func (m *Manager) SetOnReady(fn func()) { m.onReady = fn }

// Nodes returns the full fleet (all states).
func (m *Manager) Nodes() []*Node { return m.nodes }

// CountByState tallies live nodes.
func (m *Manager) CountByState(s NodeState) int {
	n := 0
	for _, nd := range m.nodes {
		if nd.State == s {
			n++
		}
	}
	return n
}

// idleNode returns an idle node of the given option, or nil.
func (m *Manager) idleNode(opt cloud.Option) *Node {
	for _, nd := range m.nodes {
		if nd.State == Idle && nd.Option == opt {
			return nd
		}
	}
	return nil
}

// Acquire claims one idle node, preferring the options in order. It
// returns nil when no idle node of any listed option exists.
func (m *Manager) Acquire(prefs ...cloud.Option) *Node {
	for _, opt := range prefs {
		if nd := m.idleNode(opt); nd != nil {
			nd.State = Busy
			return nd
		}
	}
	return nil
}

// Launch starts provisioning a fresh on-demand or spot node; after the
// boot delay it becomes idle and the ready callback fires. Reserved nodes
// cannot be launched (the fixed fleet exists from the start).
func (m *Manager) Launch(opt cloud.Option) *Node {
	if opt == cloud.Reserved {
		panic("cluster: reserved nodes are fixed, not launched")
	}
	now := m.cfg.Engine.Now()
	n := &Node{
		ID:         m.nextID,
		Option:     opt,
		State:      Provisioning,
		LaunchedAt: now,
		ReadyAt:    now.Add(m.cfg.BootDelay),
	}
	m.nextID++
	m.nodes = append(m.nodes, n)
	m.cfg.Engine.Schedule(n.ReadyAt, sim.PriorityFinish, func() {
		if n.State != Provisioning {
			return
		}
		n.State = Idle
		n.idleSince = m.cfg.Engine.Now()
		m.scheduleIdleCheck(n)
		if m.onReady != nil {
			m.onReady()
		}
	})
	return n
}

// Occupy marks an idle/just-acquired node busy with an interruption
// handler (invoked if the node is a spot instance that gets revoked while
// busy). Use after Acquire or when a launched node is claimed.
func (m *Manager) Occupy(n *Node, onInterrupt func(*Node)) {
	if n.State != Busy {
		panic(fmt.Sprintf("cluster: occupying node %d in state %v", n.ID, n.State))
	}
	n.epoch++
	if n.Option == cloud.Spot {
		m.occupants[n.ID] = onInterrupt
	}
}

// StartSpotClock samples this busy spot node's interruption for a job of
// the given remaining length; if interrupted, the node terminates at the
// sampled instant and the handler fires.
func (m *Manager) StartSpotClock(n *Node, length simtime.Duration) {
	if n.Option != cloud.Spot {
		return
	}
	at, ev := m.evict.SampleEviction(m.cfg.Engine.Now(), length)
	if !ev {
		return
	}
	epoch := n.epoch
	m.cfg.Engine.Schedule(at, sim.PriorityEvict, func() {
		if n.State != Busy || n.epoch != epoch {
			return // that occupancy already ended; stale clock
		}
		handler := m.occupants[n.ID]
		delete(m.occupants, n.ID)
		m.terminate(n)
		if handler != nil {
			handler(n)
		}
	})
}

// ReleaseNode returns a busy node to idle and arms its scale-down timer.
func (m *Manager) ReleaseNode(n *Node) {
	if n.State != Busy {
		panic(fmt.Sprintf("cluster: releasing node %d in state %v", n.ID, n.State))
	}
	delete(m.occupants, n.ID)
	n.State = Idle
	n.idleSince = m.cfg.Engine.Now()
	m.scheduleIdleCheck(n)
}

// scheduleIdleCheck terminates elastic nodes that stay idle past the
// timeout. Reserved nodes are never terminated (they are pre-paid).
func (m *Manager) scheduleIdleCheck(n *Node) {
	if n.Option == cloud.Reserved {
		return
	}
	deadline := n.idleSince.Add(m.cfg.IdleTimeout)
	idleMark := n.idleSince
	m.cfg.Engine.Schedule(deadline, sim.PriorityLow, func() {
		if n.State == Idle && n.idleSince == idleMark {
			m.terminate(n)
		}
	})
}

func (m *Manager) terminate(n *Node) {
	n.State = Terminated
	n.TerminatedAt = m.cfg.Engine.Now()
}

// Shutdown terminates every live elastic node and closes billing at the
// current instant (end of run). Reserved nodes stay up; their cost is the
// horizon-long upfront payment.
func (m *Manager) Shutdown() {
	for _, n := range m.nodes {
		if n.Option != cloud.Reserved && n.State != Terminated {
			m.terminate(n)
		}
	}
}

// Bill computes the fleet's dollar cost and carbon up to the accounting
// horizon. Elastic nodes are billed and powered for their entire lifetime
// — boot, busy AND idle time — which is exactly the overhead the
// GAIA-Simulator ignores (§5). Reserved nodes are billed upfront for the
// whole horizon; following the simulator's convention they are powered
// off while idle, so their carbon accrues only when busy (tracked by the
// batch layer, not here).
func (m *Manager) Bill(horizon simtime.Duration) (cost, carbonG float64) {
	cost = m.cfg.Pricing.ReservedUpfront(m.cfg.ReservedNodes, horizon.Hours())
	for _, n := range m.nodes {
		if n.Option == cloud.Reserved {
			continue
		}
		end := n.TerminatedAt
		if n.State != Terminated {
			end = simtime.Time(horizon)
		}
		up := end.Sub(n.LaunchedAt)
		cost += up.Hours() * m.cfg.Pricing.HourlyRate(n.Option)
		iv := simtime.Interval{Start: n.LaunchedAt, End: end}
		carbonG += m.cfg.Power.Carbon(m.cfg.Carbon.Integral(iv), 1)
	}
	return cost, carbonG
}
