package cluster

import (
	"math"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/sim"
	"github.com/carbonsched/gaia/internal/simtime"
)

func testConfig(engine *sim.Engine, reserved int) Config {
	vals := make([]float64, 24*10)
	for i := range vals {
		vals[i] = 100
	}
	return Config{
		Engine:        engine,
		Carbon:        carbon.MustTrace("flat", vals),
		Pricing:       cloud.Pricing{OnDemandHourly: 1, ReservedFraction: 0.4, SpotFraction: 0.2},
		Power:         cloud.Power{KWPerCPU: 0.01},
		ReservedNodes: reserved,
		BootDelay:     3 * simtime.Minute,
		IdleTimeout:   10 * simtime.Minute,
	}
}

func TestManagerValidation(t *testing.T) {
	e := sim.NewEngine()
	if _, err := NewManager(Config{}); err == nil {
		t.Error("missing engine should error")
	}
	cfg := testConfig(e, -1)
	if _, err := NewManager(cfg); err == nil {
		t.Error("negative reserved should error")
	}
	cfg = testConfig(e, 0)
	cfg.EvictionRate = 1.5
	if _, err := NewManager(cfg); err == nil {
		t.Error("bad eviction rate should error")
	}
}

func TestReservedFleetPreexists(t *testing.T) {
	e := sim.NewEngine()
	m, err := NewManager(testConfig(e, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CountByState(Idle); got != 3 {
		t.Fatalf("idle reserved = %d", got)
	}
	n := m.Acquire(cloud.Reserved)
	if n == nil || n.Option != cloud.Reserved || n.State != Busy {
		t.Fatalf("Acquire = %+v", n)
	}
	if m.Acquire(cloud.OnDemand) != nil {
		t.Error("no on-demand nodes should exist yet")
	}
}

func TestLaunchBootDelayAndReadyCallback(t *testing.T) {
	e := sim.NewEngine()
	m, _ := NewManager(testConfig(e, 0))
	readyAt := simtime.Time(-1)
	m.SetOnReady(func() { readyAt = e.Now() })
	n := m.Launch(cloud.OnDemand)
	if n.State != Provisioning {
		t.Fatalf("state = %v", n.State)
	}
	e.RunUntil(2 * simtime.Time(simtime.Minute))
	if n.State != Provisioning {
		t.Fatal("node ready too early")
	}
	e.RunUntil(5 * simtime.Time(simtime.Minute))
	if n.State != Idle {
		t.Fatalf("state after boot = %v", n.State)
	}
	if readyAt != simtime.Time(3*simtime.Minute) {
		t.Errorf("ready callback at %v", readyAt)
	}
}

func TestLaunchReservedPanics(t *testing.T) {
	e := sim.NewEngine()
	m, _ := NewManager(testConfig(e, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Launch(cloud.Reserved)
}

func TestIdleTimeoutTerminatesElasticOnly(t *testing.T) {
	e := sim.NewEngine()
	m, _ := NewManager(testConfig(e, 1))
	od := m.Launch(cloud.OnDemand)
	e.RunUntil(simtime.Time(3 * simtime.Minute)) // boot completes
	// Idle for the full timeout: terminated at 3+10 min.
	e.RunUntil(simtime.Time(20 * simtime.Minute))
	if od.State != Terminated {
		t.Errorf("elastic node state = %v, want terminated", od.State)
	}
	if m.CountByState(Idle) != 1 {
		t.Error("reserved node must survive idleness")
	}
}

func TestIdleTimerResetsOnReuse(t *testing.T) {
	e := sim.NewEngine()
	m, _ := NewManager(testConfig(e, 0))
	n := m.Launch(cloud.OnDemand)
	e.RunUntil(simtime.Time(3 * simtime.Minute))
	// Occupy at minute 8 (before the idle deadline at 13).
	e.Schedule(simtime.Time(8*simtime.Minute), sim.PriorityStart, func() {
		got := m.Acquire(cloud.OnDemand)
		if got != n {
			t.Error("acquire should return the idle node")
		}
		m.Occupy(got, nil)
	})
	// Release at minute 30; node should then live until 40.
	e.Schedule(simtime.Time(30*simtime.Minute), sim.PriorityFinish, func() {
		m.ReleaseNode(n)
	})
	e.RunUntil(simtime.Time(35 * simtime.Minute))
	if n.State != Idle {
		t.Fatalf("node at 35min = %v, want idle", n.State)
	}
	e.RunUntil(simtime.Time(45 * simtime.Minute))
	if n.State != Terminated {
		t.Fatalf("node at 45min = %v, want terminated", n.State)
	}
}

func TestSpotInterruptionFiresHandler(t *testing.T) {
	e := sim.NewEngine()
	cfg := testConfig(e, 0)
	cfg.EvictionRate = 0.95
	cfg.Seed = 1
	m, _ := NewManager(cfg)
	n := m.Launch(cloud.Spot)
	interrupted := false
	e.RunUntil(simtime.Time(3 * simtime.Minute))
	got := m.Acquire(cloud.Spot)
	if got != n {
		t.Fatal("acquire failed")
	}
	m.Occupy(n, func(dead *Node) { interrupted = true })
	m.StartSpotClock(n, 10*simtime.Hour)
	e.Run()
	if !interrupted {
		t.Fatal("handler should fire at 95% hourly eviction")
	}
	if n.State != Terminated {
		t.Errorf("interrupted node state = %v", n.State)
	}
}

func TestStaleSpotClockIgnored(t *testing.T) {
	e := sim.NewEngine()
	cfg := testConfig(e, 0)
	cfg.EvictionRate = 0.95
	cfg.Seed = 1
	m, _ := NewManager(cfg)
	n := m.Launch(cloud.Spot)
	e.RunUntil(simtime.Time(3 * simtime.Minute))
	m.Acquire(cloud.Spot)
	firstInterrupted := false
	m.Occupy(n, func(*Node) { firstInterrupted = true })
	m.StartSpotClock(n, 10*simtime.Hour) // eviction sampled somewhere in 10h
	// First job finishes after 30 min, long before any whole-hour check.
	e.Schedule(simtime.Time(33*simtime.Minute), sim.PriorityFinish, func() {
		m.ReleaseNode(n)
	})
	// Second job occupies the same node; the stale clock must not kill it.
	secondInterrupted := false
	e.Schedule(simtime.Time(35*simtime.Minute), sim.PriorityStart, func() {
		if got := m.Acquire(cloud.Spot); got != n {
			t.Error("second acquire failed")
			return
		}
		m.Occupy(n, func(*Node) { secondInterrupted = true })
		// No new spot clock: this occupancy must be immune to the old one.
	})
	e.Schedule(simtime.Time(20*simtime.Hour), sim.PriorityFinish, func() {
		if n.State == Busy {
			m.ReleaseNode(n)
		}
	})
	e.Run()
	if firstInterrupted {
		t.Error("first job finished before any eviction check")
	}
	if secondInterrupted {
		t.Error("stale spot clock killed the second occupancy")
	}
}

func TestBillWholeLifetimes(t *testing.T) {
	e := sim.NewEngine()
	m, _ := NewManager(testConfig(e, 2))
	n := m.Launch(cloud.OnDemand)
	e.RunUntil(simtime.Time(3 * simtime.Minute))
	m.Acquire(cloud.OnDemand)
	m.Occupy(n, nil)
	e.Schedule(simtime.Time(63*simtime.Minute), sim.PriorityFinish, func() { m.ReleaseNode(n) })
	e.RunUntil(simtime.Time(2 * simtime.Hour)) // idle timeout kills it at 73 min
	cost, carbonG := m.Bill(10 * simtime.Hour)
	// Reserved upfront: 2 × 10 h × $0.40 = $8.
	// Elastic: lifetime 0→73 min (3 boot + 60 busy + 10 idle) at $1/h.
	wantCost := 8 + 73.0/60
	if math.Abs(cost-wantCost) > 1e-9 {
		t.Errorf("cost = %v, want %v", cost, wantCost)
	}
	// Elastic carbon: 73 min at CI 100, 0.01 kW.
	wantCarbon := 100 * 0.01 * 73.0 / 60
	if math.Abs(carbonG-wantCarbon) > 1e-9 {
		t.Errorf("carbon = %v, want %v", carbonG, wantCarbon)
	}
	if n.Uptime(0) != 73*simtime.Minute {
		t.Errorf("uptime = %v", n.Uptime(0))
	}
}

func TestShutdownClosesBilling(t *testing.T) {
	e := sim.NewEngine()
	m, _ := NewManager(testConfig(e, 1))
	m.Launch(cloud.OnDemand)
	e.RunUntil(simtime.Time(simtime.Minute))
	m.Shutdown()
	for _, n := range m.Nodes() {
		if n.Option != cloud.Reserved && n.State != Terminated {
			t.Errorf("node %d state %v after shutdown", n.ID, n.State)
		}
	}
}

func TestNodeStateString(t *testing.T) {
	names := map[NodeState]string{
		Provisioning: "provisioning", Idle: "idle", Busy: "busy", Terminated: "terminated",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%v", s)
		}
	}
	if NodeState(9).String() != "state(9)" {
		t.Error("unknown state name")
	}
}

func TestReleasePanicsOnNonBusy(t *testing.T) {
	e := sim.NewEngine()
	m, _ := NewManager(testConfig(e, 1))
	n := m.Nodes()[0]
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.ReleaseNode(n)
}
