// Package cloud models the cloud resource market GAIA schedules against:
// purchase options (on-demand, reserved, spot) with their pricing
// structure, an instance power model for carbon accounting, the
// reserved-capacity pool, and the spot eviction process.
//
// Resources are homogeneous 1-CPU units (the paper's demand
// normalization); a k-CPU job occupies k units concurrently, possibly
// split across purchase options.
package cloud

import "fmt"

// Option is a cloud purchase option.
type Option int

// The three purchase options the paper evaluates.
const (
	// OnDemand is pay-as-you-go at full price, always available.
	OnDemand Option = iota
	// Reserved is long-term pre-paid capacity at a steep discount; the
	// full contract is paid whether or not the units are used.
	Reserved
	// Spot is deeply discounted surplus capacity that may be revoked at
	// any time.
	Spot
)

// Options lists all purchase options.
func Options() []Option { return []Option{OnDemand, Reserved, Spot} }

// String returns the option's conventional name.
func (o Option) String() string {
	switch o {
	case OnDemand:
		return "on-demand"
	case Reserved:
		return "reserved"
	case Spot:
		return "spot"
	default:
		return fmt.Sprintf("option(%d)", int(o))
	}
}

// Pricing is the cluster's price book, normalized per CPU unit.
type Pricing struct {
	// OnDemandHourly is the on-demand price per CPU·hour in dollars.
	OnDemandHourly float64
	// ReservedFraction is the reserved price as a fraction of on-demand
	// (the paper uses 0.40 for 3-year reservations).
	ReservedFraction float64
	// SpotFraction is the spot price as a fraction of on-demand (the
	// paper uses 0.20).
	SpotFraction float64
}

// DefaultPricing matches the paper's deployment: c7gn.medium at
// $0.0624/hour on demand, 3-year reserved at 40 % and spot at 20 % of the
// on-demand price.
func DefaultPricing() Pricing {
	return Pricing{OnDemandHourly: 0.0624, ReservedFraction: 0.40, SpotFraction: 0.20}
}

// Validate reports whether the price book is sane.
func (p Pricing) Validate() error {
	if p.OnDemandHourly <= 0 {
		return fmt.Errorf("cloud: on-demand rate %v must be positive", p.OnDemandHourly)
	}
	if p.ReservedFraction <= 0 || p.ReservedFraction > 1 {
		return fmt.Errorf("cloud: reserved fraction %v must be in (0, 1]", p.ReservedFraction)
	}
	if p.SpotFraction <= 0 || p.SpotFraction > 1 {
		return fmt.Errorf("cloud: spot fraction %v must be in (0, 1]", p.SpotFraction)
	}
	return nil
}

// HourlyRate returns the per-CPU·hour price of an option. Note that for
// Reserved this is the amortized contract rate: reserved capacity is paid
// for every hour of the contract regardless of use (see ReservedUpfront).
func (p Pricing) HourlyRate(o Option) float64 {
	switch o {
	case Reserved:
		return p.OnDemandHourly * p.ReservedFraction
	case Spot:
		return p.OnDemandHourly * p.SpotFraction
	default:
		return p.OnDemandHourly
	}
}

// ReservedUpfront returns the pre-paid cost of holding n reserved CPU
// units for horizonHours, independent of utilization — the term that makes
// idle reserved capacity raise the effective price per unit of work.
func (p Pricing) ReservedUpfront(n int, horizonHours float64) float64 {
	if n <= 0 || horizonHours <= 0 {
		return 0
	}
	return float64(n) * horizonHours * p.HourlyRate(Reserved)
}

// Power is the energy model used for carbon accounting.
type Power struct {
	// KWPerCPU is the active power draw per occupied CPU unit in kW.
	// Idle reserved units are powered off (paper §3) and draw nothing.
	KWPerCPU float64
}

// DefaultPower models a small cloud instance drawing 10 W per CPU unit.
// Carbon results in the paper are normalized, so the absolute value only
// scales totals.
func DefaultPower() Power { return Power{KWPerCPU: 0.010} }

// Validate reports whether the power model is sane.
func (pw Power) Validate() error {
	if pw.KWPerCPU <= 0 {
		return fmt.Errorf("cloud: power draw %v must be positive", pw.KWPerCPU)
	}
	return nil
}

// Carbon converts a CI integral ((g/kWh)·hours, from carbon.Trace.Integral)
// and a CPU count into grams of CO2eq.
func (pw Power) Carbon(ciIntegral float64, cpus int) float64 {
	return ciIntegral * pw.KWPerCPU * float64(cpus)
}

// Energy returns the energy in kWh drawn by cpus units over hours.
func (pw Power) Energy(cpus int, hours float64) float64 {
	return pw.KWPerCPU * float64(cpus) * hours
}
