package cloud

import (
	"testing"
	"testing/quick"
)

func TestPoolBasics(t *testing.T) {
	p, err := NewReservedPool(5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Capacity() != 5 || p.Idle() != 5 || p.InUse() != 0 {
		t.Fatal("fresh pool state wrong")
	}
	if got := p.Acquire(3); got != 3 {
		t.Errorf("Acquire(3) = %d", got)
	}
	if got := p.Acquire(4); got != 2 {
		t.Errorf("Acquire(4) over capacity = %d", got)
	}
	if p.Idle() != 0 || p.InUse() != 5 {
		t.Fatal("full pool state wrong")
	}
	if got := p.Acquire(1); got != 0 {
		t.Errorf("Acquire on full pool = %d", got)
	}
	p.Release(2)
	if p.Idle() != 2 {
		t.Errorf("Idle after release = %d", p.Idle())
	}
	if got := p.Acquire(0); got != 0 {
		t.Errorf("Acquire(0) = %d", got)
	}
	if got := p.Acquire(-3); got != 0 {
		t.Errorf("Acquire(-3) = %d", got)
	}
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewReservedPool(-1); err == nil {
		t.Error("negative capacity should error")
	}
	if p, err := NewReservedPool(0); err != nil || p.Acquire(5) != 0 {
		t.Error("zero-capacity pool should grant nothing")
	}
}

func TestPoolReleasePanics(t *testing.T) {
	p, _ := NewReservedPool(2)
	p.Acquire(1)
	for _, n := range []int{2, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Release(%d) should panic", n)
				}
			}()
			p.Release(n)
		}()
	}
}

// Property: occupancy never exceeds capacity or goes negative under any
// acquire/release sequence.
func TestPoolInvariant(t *testing.T) {
	f := func(ops []int8) bool {
		p, _ := NewReservedPool(10)
		for _, op := range ops {
			if op >= 0 {
				p.Acquire(int(op))
			} else {
				n := -int(op) // negate in int to avoid int8 overflow at -128
				if n > p.InUse() {
					n = p.InUse()
				}
				p.Release(n)
			}
			if p.InUse() < 0 || p.InUse() > p.Capacity() || p.Idle()+p.InUse() != p.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
