package cloud

import (
	"math"
	"testing"
)

func TestOptionString(t *testing.T) {
	if OnDemand.String() != "on-demand" || Reserved.String() != "reserved" || Spot.String() != "spot" {
		t.Error("option names broken")
	}
	if Option(9).String() != "option(9)" {
		t.Error("unknown option name broken")
	}
	if len(Options()) != 3 {
		t.Error("Options() should list 3")
	}
}

func TestPricingRates(t *testing.T) {
	p := DefaultPricing()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.HourlyRate(OnDemand) != 0.0624 {
		t.Errorf("on-demand rate = %v", p.HourlyRate(OnDemand))
	}
	if math.Abs(p.HourlyRate(Reserved)-0.0624*0.4) > 1e-12 {
		t.Errorf("reserved rate = %v", p.HourlyRate(Reserved))
	}
	if math.Abs(p.HourlyRate(Spot)-0.0624*0.2) > 1e-12 {
		t.Errorf("spot rate = %v", p.HourlyRate(Spot))
	}
}

func TestPricingValidate(t *testing.T) {
	bad := []Pricing{
		{OnDemandHourly: 0, ReservedFraction: 0.4, SpotFraction: 0.2},
		{OnDemandHourly: 1, ReservedFraction: 0, SpotFraction: 0.2},
		{OnDemandHourly: 1, ReservedFraction: 1.5, SpotFraction: 0.2},
		{OnDemandHourly: 1, ReservedFraction: 0.4, SpotFraction: 0},
		{OnDemandHourly: 1, ReservedFraction: 0.4, SpotFraction: 2},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestReservedUpfront(t *testing.T) {
	p := Pricing{OnDemandHourly: 1, ReservedFraction: 0.4, SpotFraction: 0.2}
	// 5 units × 100 h × $0.40 = $200, paid regardless of use.
	if got := p.ReservedUpfront(5, 100); got != 200 {
		t.Errorf("ReservedUpfront = %v", got)
	}
	if p.ReservedUpfront(0, 100) != 0 || p.ReservedUpfront(5, 0) != 0 {
		t.Error("degenerate upfront should be 0")
	}
}

func TestPower(t *testing.T) {
	pw := DefaultPower()
	if err := pw.Validate(); err != nil {
		t.Fatal(err)
	}
	if (Power{}).Validate() == nil {
		t.Error("zero power should fail validation")
	}
	// 100 (g/kWh)·h integral × 0.01 kW × 2 CPUs = 2 g.
	if got := pw.Carbon(100, 2); math.Abs(got-2) > 1e-12 {
		t.Errorf("Carbon = %v", got)
	}
	// 3 CPUs × 2 h × 0.01 kW = 0.06 kWh.
	if got := pw.Energy(3, 2); math.Abs(got-0.06) > 1e-12 {
		t.Errorf("Energy = %v", got)
	}
}
