package cloud

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/carbonsched/gaia/internal/simtime"
)

// EvictionModel is the spot revocation process: in each full hour a
// running spot allocation survives with probability 1−HourlyRate
// (the paper's "eviction rate ... percent of evicted customers in a time
// slot, e.g., an hour"). Eviction ends the allocation at the end of that
// hour of runtime; the paper assumes all progress is lost.
type EvictionModel struct {
	// HourlyRate is the per-hour eviction probability in [0, 1).
	HourlyRate float64
	rng        *rand.Rand
}

// NewEvictionModel creates an eviction process with the given per-hour
// rate, seeded for reproducibility.
func NewEvictionModel(hourlyRate float64, seed int64) (*EvictionModel, error) {
	if hourlyRate < 0 || hourlyRate >= 1 {
		return nil, fmt.Errorf("cloud: eviction rate %v must be in [0, 1)", hourlyRate)
	}
	return &EvictionModel{HourlyRate: hourlyRate, rng: rand.New(rand.NewSource(seed))}, nil
}

// SampleEviction draws the eviction instant for a spot allocation that
// starts at start and would otherwise run for length. It returns
// (evictAt, true) when the allocation is evicted before completing, or
// (0, false) when it survives. Eviction lands on whole run-hours, after at
// least one hour of runtime.
func (e *EvictionModel) SampleEviction(start simtime.Time, length simtime.Duration) (simtime.Time, bool) {
	if e.HourlyRate == 0 || length <= 0 {
		return 0, false
	}
	// The allocation faces one eviction check at every whole run-hour
	// boundary strictly before completion: a 90 min job is checked once
	// (at 60 min), a 3 h job twice. Geometric sampling: P(pass h checks,
	// fail check h+1) = (1-p)^h · p.
	checks := evictionChecks(length)
	if checks == 0 {
		return 0, false
	}
	u := e.rng.Float64()
	h := int(math.Floor(math.Log(u) / math.Log(1-e.HourlyRate)))
	if h >= checks {
		return 0, false
	}
	return start.Add(simtime.Duration(h+1) * simtime.Hour), true
}

// evictionChecks counts the whole run-hour boundaries strictly inside
// (0, length) at which an eviction can strike.
func evictionChecks(length simtime.Duration) int {
	if length <= simtime.Hour {
		if length == simtime.Hour {
			return 0
		}
		return 0
	}
	return int((length - 1) / simtime.Hour)
}

// SurvivalProbability returns the probability that an allocation of the
// given length completes without eviction.
func (e *EvictionModel) SurvivalProbability(length simtime.Duration) float64 {
	if e.HourlyRate == 0 || length <= 0 {
		return 1
	}
	return math.Pow(1-e.HourlyRate, float64(evictionChecks(length)))
}
