package cloud

import (
	"math"
	"testing"

	"github.com/carbonsched/gaia/internal/simtime"
)

func TestEvictionModelValidation(t *testing.T) {
	for _, r := range []float64{-0.1, 1, 1.5} {
		if _, err := NewEvictionModel(r, 1); err == nil {
			t.Errorf("rate %v should error", r)
		}
	}
	if _, err := NewEvictionModel(0, 1); err != nil {
		t.Errorf("rate 0 should be valid: %v", err)
	}
}

func TestZeroRateNeverEvicts(t *testing.T) {
	e, _ := NewEvictionModel(0, 1)
	for i := 0; i < 100; i++ {
		if _, ev := e.SampleEviction(0, 24*simtime.Hour); ev {
			t.Fatal("zero rate must never evict")
		}
	}
	if e.SurvivalProbability(24*simtime.Hour) != 1 {
		t.Error("zero-rate survival should be 1")
	}
}

func TestShortJobsNeverEvicted(t *testing.T) {
	// Jobs with no whole run-hour boundary before completion face no
	// eviction check in this hourly model.
	e, _ := NewEvictionModel(0.5, 1)
	for i := 0; i < 200; i++ {
		if _, ev := e.SampleEviction(0, simtime.Hour); ev {
			t.Fatal("1 h job has no interior check")
		}
		if _, ev := e.SampleEviction(0, 30*simtime.Minute); ev {
			t.Fatal("30 min job has no interior check")
		}
	}
	if e.SurvivalProbability(simtime.Hour) != 1 {
		t.Error("1 h survival should be 1")
	}
}

func TestEvictionChecksCounting(t *testing.T) {
	tests := []struct {
		length simtime.Duration
		want   int
	}{
		{30 * simtime.Minute, 0},
		{simtime.Hour, 0},
		{simtime.Hour + 1, 1},
		{90 * simtime.Minute, 1},
		{2 * simtime.Hour, 1},
		{2*simtime.Hour + 1, 2},
		{24 * simtime.Hour, 23},
	}
	for _, tt := range tests {
		if got := evictionChecks(tt.length); got != tt.want {
			t.Errorf("evictionChecks(%v) = %d, want %d", tt.length, got, tt.want)
		}
	}
}

func TestEvictionRateEmpirical(t *testing.T) {
	// 10 %/h rate over a 6 h job: survival should be ≈ 0.9^5 ≈ 0.59.
	e, _ := NewEvictionModel(0.10, 42)
	length := 6 * simtime.Hour
	want := e.SurvivalProbability(length)
	if math.Abs(want-math.Pow(0.9, 5)) > 1e-12 {
		t.Fatalf("analytic survival = %v", want)
	}
	const n = 20000
	survived := 0
	for i := 0; i < n; i++ {
		if _, ev := e.SampleEviction(0, length); !ev {
			survived++
		}
	}
	got := float64(survived) / n
	if math.Abs(got-want) > 0.02 {
		t.Errorf("empirical survival %v, want %v", got, want)
	}
}

func TestEvictionTimesValid(t *testing.T) {
	e, _ := NewEvictionModel(0.3, 7)
	start := simtime.Time(90)
	length := 10 * simtime.Hour
	for i := 0; i < 2000; i++ {
		at, ev := e.SampleEviction(start, length)
		if !ev {
			continue
		}
		ran := at.Sub(start)
		if ran <= 0 || ran >= length {
			t.Fatalf("eviction after %v of a %v job", ran, length)
		}
		if ran%simtime.Hour != 0 {
			t.Fatalf("eviction at non-hour runtime %v", ran)
		}
	}
}

func TestEvictionDeterministic(t *testing.T) {
	a, _ := NewEvictionModel(0.2, 5)
	b, _ := NewEvictionModel(0.2, 5)
	for i := 0; i < 100; i++ {
		at1, ev1 := a.SampleEviction(0, 8*simtime.Hour)
		at2, ev2 := b.SampleEviction(0, 8*simtime.Hour)
		if at1 != at2 || ev1 != ev2 {
			t.Fatal("same seed must sample identically")
		}
	}
}

func TestSurvivalMonotoneInLength(t *testing.T) {
	e, _ := NewEvictionModel(0.15, 1)
	prev := 1.0
	for h := 1; h <= 48; h++ {
		s := e.SurvivalProbability(simtime.Duration(h) * simtime.Hour)
		if s > prev+1e-12 {
			t.Fatalf("survival increased at %dh", h)
		}
		prev = s
	}
}
