package cloud

import "fmt"

// ReservedPool tracks the fixed reserved capacity. It is plain
// bookkeeping: the scheduler decides placement; the pool only enforces the
// capacity invariant.
type ReservedPool struct {
	capacity int
	inUse    int
}

// NewReservedPool creates a pool of n reserved CPU units (n >= 0).
func NewReservedPool(n int) (*ReservedPool, error) {
	if n < 0 {
		return nil, fmt.Errorf("cloud: reserved capacity %d must be non-negative", n)
	}
	return &ReservedPool{capacity: n}, nil
}

// Capacity returns the pool size.
func (p *ReservedPool) Capacity() int { return p.capacity }

// Idle returns the number of currently unoccupied reserved units.
func (p *ReservedPool) Idle() int { return p.capacity - p.inUse }

// InUse returns the number of occupied reserved units.
func (p *ReservedPool) InUse() int { return p.inUse }

// Acquire takes up to want units and returns how many were granted
// (possibly 0). Granting fewer than requested lets a job straddle reserved
// and on-demand capacity.
func (p *ReservedPool) Acquire(want int) int {
	if want <= 0 {
		return 0
	}
	got := want
	if idle := p.Idle(); got > idle {
		got = idle
	}
	p.inUse += got
	return got
}

// Release returns n units to the pool. It panics if the release would
// exceed the pool's occupancy — that is always a scheduler bug worth
// failing loudly on.
func (p *ReservedPool) Release(n int) {
	if n < 0 || n > p.inUse {
		panic(fmt.Sprintf("cloud: releasing %d units with %d in use", n, p.inUse))
	}
	p.inUse -= n
}
