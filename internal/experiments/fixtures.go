package experiments

import (
	"math/rand"
	"sync"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// Deterministic seeds for every stochastic fixture; changing one re-rolls
// only that fixture.
const (
	seedCarbon   = 2022 // carbon traces (per-region offsets added)
	seedWorkload = 4242 // workload traces (per-family offsets added)
	seedEviction = 7    // spot eviction processes
)

// horizon returns the simulation horizon for a scale: the paper's year or
// a 60-day quick run.
func horizon(s Scale) simtime.Duration {
	if s == Full {
		return simtime.Year
	}
	return 60 * simtime.Day
}

var (
	regionOnce   sync.Once
	regionTraces map[string]*carbon.Trace
)

// regionTrace returns the cached year-long trace for a region code.
func regionTrace(code string) *carbon.Trace {
	regionOnce.Do(func() {
		regionTraces = make(map[string]*carbon.Trace)
		for i, spec := range carbon.Regions() {
			regionTraces[spec.Code] = spec.GenerateYear(seedCarbon + int64(i))
		}
	})
	tr, ok := regionTraces[code]
	if !ok {
		panic("experiments: unknown region " + code)
	}
	return tr
}

// evaluationRegions lists the five regions of the large-scale evaluation
// (Figures 15-16; Sweden appears only in Figure 6's classification).
func evaluationRegions() []string {
	return []string{"SA-AU", "ON-CA", "CA-US", "NL", "KY-US"}
}

// The paper's per-trace reserved capacities (Figure 17): each trace's mean
// demand. Quick runs scale demand down 4× to keep runtimes low.
func meanDemand(family string, s Scale) float64 {
	demands := map[string]float64{"mustang": 468, "alibaba": 100, "azure": 142}
	d := demands[family]
	if s == Quick {
		d /= 4
	}
	return d
}

type workloadKey struct {
	family string
	scale  Scale
}

var (
	workloadMu     sync.Mutex
	workloadTraces = map[workloadKey]*workload.Trace{}
)

// yearTrace returns the cached demand-calibrated workload for a family at
// the given scale ("mustang", "alibaba", "azure").
func yearTrace(family string, s Scale) *workload.Trace {
	workloadMu.Lock()
	defer workloadMu.Unlock()
	key := workloadKey{family, s}
	if tr, ok := workloadTraces[key]; ok {
		return tr
	}
	var fam workload.Family
	var seedOff int64
	switch family {
	case "mustang":
		fam, seedOff = workload.MustangHPC(), 1
	case "alibaba":
		fam, seedOff = workload.AlibabaPAI(), 2
	case "azure":
		fam, seedOff = workload.AzureVM(), 3
	default:
		panic("experiments: unknown workload family " + family)
	}
	rng := rand.New(rand.NewSource(seedWorkload + seedOff))
	tr := fam.GenerateByDemand(rng, meanDemand(family, s), horizon(s))
	workloadTraces[key] = tr
	return tr
}

var (
	weekOnce  sync.Once
	weekTrace *workload.Trace
)

// prototypeWeek returns the cached week-long 1k-job <=4-CPU Alibaba trace
// used by the prototype experiments (Figures 8-12).
func prototypeWeek() *workload.Trace {
	weekOnce.Do(func() {
		rng := rand.New(rand.NewSource(seedWorkload + 10))
		weekTrace = workload.AlibabaPAIWeek().GenerateByCount(rng, 1000, simtime.Week)
	})
	return weekTrace
}
