package experiments

import (
	"sync/atomic"

	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/par"
	"github.com/carbonsched/gaia/internal/workload"
)

// Every figure of the evaluation is a sweep of independent simulation
// cells — (policy, region, workload, reserved-size) combinations that
// share immutable inputs and never observe each other. Sweeps therefore
// fan out through par.Map, whose index-ordered results make the rendered
// tables bit-identical to a sequential run at any worker count.

// sweepWorkers bounds how many simulation cells run concurrently inside
// one experiment; 0 selects GOMAXPROCS.
var sweepWorkers atomic.Int32

// SetParallelism bounds the number of concurrent simulation cells inside
// each experiment: 1 forces sequential execution, 0 restores the default
// of one worker per core. Results are identical at any setting; the knob
// exists for benchmarking and determinism tests.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	sweepWorkers.Store(int32(n))
}

// Parallelism returns the current sweep worker bound (0 = GOMAXPROCS).
func Parallelism() int { return int(sweepWorkers.Load()) }

// cell is one independent simulation of a sweep: a cluster configuration
// applied to a workload trace.
type cell struct {
	cfg  core.Config
	jobs *workload.Trace
}

// runCells executes every cell through core.Run on the sweep worker pool
// and returns the results in input order — exactly what running the cells
// sequentially would produce.
func runCells(cells []cell) ([]*metrics.Result, error) {
	return par.Map(Parallelism(), cells, func(_ int, c cell) (*metrics.Result, error) {
		return core.Run(c.cfg, c.jobs)
	})
}
