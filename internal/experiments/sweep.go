package experiments

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/par"
	"github.com/carbonsched/gaia/internal/runcache"
	"github.com/carbonsched/gaia/internal/workload"
)

// Every figure of the evaluation is a sweep of independent simulation
// cells — (policy, region, workload, reserved-size) combinations that
// share immutable inputs and never observe each other. Sweeps therefore
// fan out through par.Map, whose index-ordered results make the rendered
// tables bit-identical to a sequential run at any worker count.
//
// Cells are additionally routed through a content-addressed cache
// (internal/runcache): the baseline runs that recur across figures —
// NoWait on the default fixture appears in nearly every sweep — simulate
// once per process and are shared, bit-identically, by every figure that
// needs them. SetCache(nil) restores raw core.Run for tests that must
// exercise the simulator itself.

// sweepWorkers bounds how many simulation cells run concurrently inside
// one experiment; 0 selects GOMAXPROCS.
var sweepWorkers atomic.Int32

// SetParallelism bounds the number of concurrent simulation cells inside
// each experiment: 1 forces sequential execution, 0 restores the default
// of one worker per core. Results are identical at any setting; the knob
// exists for benchmarking and determinism tests.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	sweepWorkers.Store(int32(n))
}

// Parallelism returns the current sweep worker bound (0 = GOMAXPROCS).
func Parallelism() int { return int(sweepWorkers.Load()) }

// activeCache is the simulation cache runCells routes through; it may
// hold nil (caching disabled).
var activeCache atomic.Pointer[runcache.Cache]

func init() { activeCache.Store(runcache.New()) }

// SetCache replaces the simulation cache every figure's cells run
// through. The default is a process-lifetime in-memory cache; pass a
// cache with a disk tier (runcache.SetDir) for warm re-runs across
// processes, or nil to disable caching entirely — determinism tests and
// simulator benchmarks need every cell to really simulate.
func SetCache(c *runcache.Cache) { activeCache.Store(c) }

// ActiveCache returns the cache cells currently route through (nil when
// caching is disabled).
func ActiveCache() *runcache.Cache { return activeCache.Load() }

// CellStats counts how one figure's simulation cells were served.
type CellStats struct {
	// Computed cells actually simulated (priming the cache); Bypassed
	// cells simulated outside it (non-cacheable configs).
	Computed, Bypassed int
	// Hits were served from a completed in-memory entry, Dedups piggy-
	// backed on a concurrent in-flight computation, DiskHits decoded a
	// persisted entry.
	Hits, Dedups, DiskHits int
	// PlanHits and PlanDiskHits are cells whose decide phase was served
	// by the decision-plan tier (from memory and disk respectively) and
	// which therefore only replayed accounting — partial computations,
	// counted in Total but not in Avoided.
	PlanHits, PlanDiskHits int
}

// Total returns how many cells the figure requested.
func (s CellStats) Total() int {
	return s.Computed + s.Bypassed + s.Hits + s.Dedups + s.DiskHits +
		s.PlanHits + s.PlanDiskHits
}

// Avoided returns how many simulations the cache saved this figure.
func (s CellStats) Avoided() int { return s.Hits + s.Dedups + s.DiskHits }

// DecisionsAvoided returns how many cells skipped their decide phase by
// replaying a shared decision plan (still paying for accounting replay).
func (s CellStats) DecisionsAvoided() int { return s.PlanHits + s.PlanDiskHits }

func (s *CellStats) add(o runcache.Outcome) {
	switch o {
	case runcache.Computed:
		s.Computed++
	case runcache.Hit:
		s.Hits++
	case runcache.Dedup:
		s.Dedups++
	case runcache.DiskHit:
		s.DiskHits++
	case runcache.Bypass:
		s.Bypassed++
	case runcache.PlanHit:
		s.PlanHits++
	case runcache.PlanDiskHit:
		s.PlanDiskHits++
	}
}

// merge folds other into s.
func (s *CellStats) merge(o CellStats) {
	s.Computed += o.Computed
	s.Bypassed += o.Bypassed
	s.Hits += o.Hits
	s.Dedups += o.Dedups
	s.DiskHits += o.DiskHits
	s.PlanHits += o.PlanHits
	s.PlanDiskHits += o.PlanDiskHits
}

// cellStats attributes cache outcomes to the figure that requested the
// cell, keyed by experiment ID.
var (
	cellStatsMu sync.Mutex
	cellStats   = map[string]*CellStats{}
)

func recordOutcome(id string, o runcache.Outcome) {
	cellStatsMu.Lock()
	s := cellStats[id]
	if s == nil {
		s = &CellStats{}
		cellStats[id] = s
	}
	s.add(o)
	cellStatsMu.Unlock()
}

// CacheStats returns a snapshot of per-figure cell accounting since the
// last reset, with figure IDs sorted, plus the totals across figures.
func CacheStats() (ids []string, byFigure map[string]CellStats, total CellStats) {
	cellStatsMu.Lock()
	defer cellStatsMu.Unlock()
	byFigure = make(map[string]CellStats, len(cellStats))
	for id, s := range cellStats {
		ids = append(ids, id)
		byFigure[id] = *s
		total.merge(*s)
	}
	sort.Strings(ids)
	return ids, byFigure, total
}

// ResetCacheStats clears the per-figure accounting (not the cache).
func ResetCacheStats() {
	cellStatsMu.Lock()
	cellStats = map[string]*CellStats{}
	cellStatsMu.Unlock()
}

// cell is one independent simulation of a sweep: a cluster configuration
// applied to a workload trace.
type cell struct {
	cfg  core.Config
	jobs *workload.Trace
}

// runCells executes every cell of the figure with the given experiment ID
// on the sweep worker pool and returns the results in input order —
// exactly what running the cells sequentially through core.Run would
// produce. Cells route through the active simulation cache (when one is
// set), which serves repeated cells from memory or disk bit-identically;
// outcomes are recorded against id for the cache-stats report.
func runCells(id string, cells []cell) ([]*metrics.Result, error) {
	cache := ActiveCache()
	return par.Map(Parallelism(), cells, func(_ int, c cell) (*metrics.Result, error) {
		if cache == nil {
			return core.Run(c.cfg, c.jobs)
		}
		res, outcome, err := cache.Run(c.cfg, c.jobs)
		recordOutcome(id, outcome)
		return res, err
	})
}
