package experiments

import (
	"testing"

	"github.com/carbonsched/gaia/internal/core"
)

// TestFiguresIdenticalAcrossRunPaths pins the direct-execution run path
// against the figure suite: every registered experiment rendered with the
// default path selection (direct where eligible, event engine elsewhere)
// must be byte-identical to the same experiment with the event engine
// forced for everything. Together with the core package's fuzz
// differential this is the contract that lets Run silently route eligible
// cells around the engine — no figure can tell the run paths apart.
func TestFiguresIdenticalAcrossRunPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the full quick-scale figure suite twice")
	}
	defer core.ForceEventEngine(false)
	for _, e := range All() {
		t.Run(e.ID, func(t *testing.T) {
			core.ForceEventEngine(false)
			out, err := e.Run(Quick)
			if err != nil {
				t.Fatalf("direct: %v", err)
			}
			direct := out.String()

			core.ForceEventEngine(true)
			out, err = e.Run(Quick)
			core.ForceEventEngine(false)
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			if engine := out.String(); engine != direct {
				t.Errorf("figure differs between run paths:\n--- direct ---\n%s\n--- engine ---\n%s",
					direct, engine)
			}
		})
	}
}
