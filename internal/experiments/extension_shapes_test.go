package experiments

// Shape guards for the extension results, mirroring shapes_test.go.

import (
	"math"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/scaling"
	"github.com/carbonsched/gaia/internal/simtime"
)

// Checkpointing must reduce eviction waste versus full progress loss at
// the same eviction rate (x05).
func TestShapeCheckpointReducesWaste(t *testing.T) {
	tr, err := prototypeCarbon()
	if err != nil {
		t.Fatal(err)
	}
	run := func(ckpt simtime.Duration) float64 {
		cfg := core.Config{
			Policy:             policy.CarbonTime{},
			Carbon:             tr,
			Horizon:            10 * simtime.Day,
			SpotMaxLen:         12 * simtime.Hour,
			EvictionRate:       0.15,
			Seed:               seedEviction,
			CheckpointInterval: ckpt,
			CheckpointOverhead: 3 * simtime.Minute,
		}
		res, err := core.Run(cfg, prototypeWeek())
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalWastedCPUHours()
	}
	none := run(0)
	ckpt := run(30 * simtime.Minute)
	if ckpt >= none {
		t.Errorf("30m checkpointing waste %v should beat none %v", ckpt, none)
	}
	if none == 0 {
		t.Error("15% eviction should produce some waste")
	}
}

// The carbon-tax sweep must be monotone: higher taxes never yield more
// carbon from the cost-only scheduler (x07).
func TestShapeCarbonTaxMonotone(t *testing.T) {
	hours := 24 * 30
	ci, price := carbon.DefaultERCOTModel().Generate(hours+7*24, seedCarbon+100)
	jobs := prototypeWeek()
	prev := math.Inf(1)
	for _, tax := range []float64{0, 100, 500, 5000} {
		tariff := make([]float64, hours)
		for i := range tariff {
			p := price.At(simtime.Time(simtime.Duration(i) * simtime.Hour))
			if p < 0 {
				p = 0
			}
			tariff[i] = p + tax*ci.Value(i)/1000
		}
		res, err := core.Run(core.Config{
			Policy:  policy.LowestWindow{},
			Carbon:  ci,
			CIS:     carbon.NewPerfectService(carbon.MustTrace("tariff", tariff)),
			Horizon: simtime.Duration(hours) * simtime.Hour,
		}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		c := res.TotalCarbon()
		// Allow tiny non-monotonicity from tie-breaking.
		if c > prev*1.01 {
			t.Errorf("carbon rose with tax %v: %v > %v", tax, c, prev)
		}
		if c < prev {
			prev = c
		}
	}
}

// Scaling dominance (x08): with a linear curve the scaler is never
// dirtier than unit-width suspend-resume over the same deadline.
func TestShapeScalingDominatesNarrow(t *testing.T) {
	tr := regionTrace("SA-AU")
	cis := carbon.NewPerfectService(tr)
	const kw = 0.01
	for i := 0; i < 10; i++ {
		job := scaling.ElasticJob{
			Arrival:     simtime.Time(simtime.Duration(i*13) * simtime.Hour),
			Work:        6,
			MaxParallel: 8,
			Curve:       scaling.Linear{},
			Deadline:    48 * simtime.Hour,
		}
		wide, err := scaling.PlanJob(job, cis)
		if err != nil {
			t.Fatal(err)
		}
		narrowJob := job
		narrowJob.MaxParallel = 1
		narrow, err := scaling.PlanJob(narrowJob, cis)
		if err != nil {
			t.Fatal(err)
		}
		if wide.Carbon(tr, kw) > narrow.Carbon(tr, kw)+1e-9 {
			t.Errorf("arrival %v: wide plan dirtier than narrow", job.Arrival)
		}
	}
}
