package experiments

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "a", "b")
	tb.AddRowf("x", 1.23456)
	tb.AddRow("longer-cell") // short row padded
	tb.Caption = "cap"
	s := tb.String()
	for _, want := range []string{"Title", "a", "b", "x", "1.235", "longer-cell", "cap", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// Oversized rows are truncated to the header width.
	tb2 := NewTable("t", "only")
	tb2.AddRow("a", "dropped")
	if strings.Contains(tb2.String(), "dropped") {
		t.Error("extra cell should be dropped")
	}
}

func TestTableUnicodeAlignment(t *testing.T) {
	tb := NewTable("t", "spark", "v")
	tb.AddRow("▁▂▃", "1")
	tb.AddRow("xxxxx", "2")
	// Lines: 0 title, 1 header, 2 separator, 3-4 data rows.
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	// Both data lines end with their value after rune-aware padding, so
	// their rune lengths must match despite the multibyte glyphs.
	if !strings.HasSuffix(lines[3], "1") || !strings.HasSuffix(lines[4], "2") {
		t.Errorf("rows malformed:\n%s", tb.String())
	}
	if len([]rune(lines[3])) != len([]rune(lines[4])) {
		t.Errorf("unicode misalignment:\n%q\n%q", lines[3], lines[4])
	}
}

func TestTSV(t *testing.T) {
	tb := NewTable("Title", "a", "b")
	tb.AddRowf("x", 1.0)
	tsv := tb.TSV()
	if !strings.HasPrefix(tsv, "a\tb\n") || !strings.Contains(tsv, "x\t1.000") {
		t.Errorf("TSV = %q", tsv)
	}
	if strings.Contains(tsv, "Title") {
		t.Error("TSV must not include the title")
	}
	group := Tables{tb, tb}
	if got := strings.Count(group.TSV(), "a\tb"); got != 2 {
		t.Errorf("grouped TSV headers = %d", got)
	}
	var _ TSVer = tb
	var _ TSVer = group
}
