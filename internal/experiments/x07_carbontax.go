package experiments

import (
	"fmt"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
)

func init() {
	register(Experiment{
		ID:    "x07-carbontax",
		Title: "Extension: carbon tax folds the trade-off into cost (Discussion §7)",
		Run:   runX07CarbonTax,
	})
}

// runX07CarbonTax realizes the paper's Discussion: assign an explicit
// price to carbon so that a purely cost-minimizing scheduler becomes
// carbon-aware. On an ERCOT-like grid (Figure 20: energy price and CI
// only weakly correlated, ≈0.16-0.26), a scheduler that chases the
// cheapest energy windows under a combined tariff
//
//	w(t) = energyPrice(t) + tax × CI(t)
//
// is swept over tax ∈ {0, 50, 100, 200, 500, 2000} $/tonne. At tax 0 it
// optimizes the bill and saves carbon only incidentally; as the tax grows
// its schedule converges to the carbon-optimal one.
func runX07CarbonTax(scale Scale) (fmt.Stringer, error) {
	hours := int(horizon(scale)/60) / 60 * 60 // whole hours of the horizon
	ci, price := carbon.DefaultERCOTModel().Generate(hours+7*24, seedCarbon+100)
	jobs := yearTrace("alibaba", scale)

	// billFor measures the energy bill of a schedule by re-running the
	// identical decisions with the price series as the "carbon" trace:
	// the resulting "emissions" are ∫ price × power dt, i.e. dollars
	// (per kW of draw, scaled by the power model).
	priceVals := make([]float64, hours)
	for i := range priceVals {
		v := price.At(simtime.Time(simtime.Duration(i) * simtime.Hour))
		if v < 0 {
			v = 0 // negative-price hours bill as zero, keeping traces valid
		}
		priceVals[i] = v
	}
	priceTrace := carbon.MustTrace("TX-price", priceVals)

	// Baselines on the Texas grid (carbon-agnostic, carbon-optimal, and
	// the carbon-agnostic energy bill) run as one parallel batch.
	baselines, err := runCells("x07-carbontax", []cell{
		{core.Config{Policy: policy.NoWait{}, Carbon: ci, Horizon: horizon(scale)}, jobs},
		{core.Config{Policy: policy.LowestWindow{}, Carbon: ci, Horizon: horizon(scale)}, jobs},
		{core.Config{Policy: policy.NoWait{}, Carbon: priceTrace, Horizon: horizon(scale)}, jobs},
	})
	if err != nil {
		return nil, err
	}
	base, carbonOpt, baseBill := baselines[0], baselines[1], baselines[2]

	// Each tax level contributes two cells: schedule against its combined
	// tariff, then re-run the identical schedule against the price trace
	// to measure the bill. Both cells share the tariff CIS and differ only
	// in the accounting ("carbon") trace, so the decision-plan tier
	// decides each tax level once and replays the bill run from the
	// shared plan.
	taxes := []float64{0, 50, 100, 200, 500, 2000}
	taxCells := make([]cell, 0, 2*len(taxes))
	for _, tax := range taxes {
		// Combined tariff in $/kWh: price/1000 ($/MWh→$/kWh) plus
		// tax ($/tonne) × CI (g/kWh) / 1e6 (g→tonne).
		tariff := make([]float64, hours)
		for i := range tariff {
			w := priceVals[i]/1000 + tax*ci.Value(i)/1e6
			tariff[i] = w * 1000 // scale up: trace values stay well-conditioned
		}
		tariffTrace := carbon.MustTrace("TX-tariff", tariff)
		cfg := core.Config{
			Policy:  policy.LowestWindow{}, // cost-only: chases cheap tariff windows
			Carbon:  ci,
			CIS:     carbon.NewPerfectService(tariffTrace),
			Horizon: horizon(scale),
		}
		billCfg := cfg
		billCfg.Carbon = priceTrace
		taxCells = append(taxCells, cell{cfg, jobs}, cell{billCfg, jobs})
	}
	taxResults, err := runCells("x07-carbontax", taxCells)
	if err != nil {
		return nil, err
	}
	type taxRun struct {
		res, bill *metrics.Result
	}
	runs := make([]taxRun, len(taxes))
	for i := range taxes {
		runs[i] = taxRun{taxResults[2*i], taxResults[2*i+1]}
	}

	t := NewTable("Extension x07 — cost-only scheduling under a carbon tax (Alibaba, ERCOT-like grid)",
		"tax $/tonne", "carbon(norm)", "share of carbon-opt savings", "bill(norm)")
	optSaving := 1 - carbonOpt.TotalCarbon()/base.TotalCarbon()
	for i, tax := range taxes {
		res, bill := runs[i].res, runs[i].bill
		saving := 1 - res.TotalCarbon()/base.TotalCarbon()
		t.AddRowf(tax,
			res.TotalCarbon()/base.TotalCarbon(),
			safeDiv(saving, optSaving),
			bill.TotalCarbon()/baseBill.TotalCarbon())
	}
	t.Caption = fmt.Sprintf(
		"carbon-optimal (Lowest-Window on CI) reaches %.3f normalized carbon; a rising tax drives the cost-only scheduler toward it while the bill advantage shrinks — the Discussion's point that a tax collapses the three-way trade-off",
		carbonOpt.TotalCarbon()/base.TotalCarbon())
	return t, nil
}
