package experiments

import (
	"fmt"
	"math"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
)

func init() {
	register(Experiment{
		ID:    "fig08",
		Title: "Normalized carbon and waiting time across policies (week trace, SA-AU)",
		Run:   runFig08,
	})
	register(Experiment{
		ID:    "fig09",
		Title: "CDF of carbon savings by job length (Carbon-Time, Alibaba, SA-AU)",
		Run:   runFig09,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Carbon, cost and waiting across policies with reserved capacity",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Reserved-capacity sweep under RES-First-Carbon-Time",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Spot and reserved instance combinations",
		Run:   runFig12,
	})
}

// prototypeCarbon returns the 10-day SA-AU slice used by the prototype
// experiments (week of jobs plus scheduling slack).
func prototypeCarbon() (*carbon.Trace, error) {
	return regionTrace("SA-AU").Slice(0, 10*24)
}

// weekConfig is the base configuration of the prototype experiments.
func weekConfig(p policy.Policy, tr *carbon.Trace) core.Config {
	return core.Config{
		Policy:  p,
		Carbon:  tr,
		Horizon: 10 * simtime.Day,
		Seed:    seedEviction,
	}
}

// weekReserved returns the paper-equivalent reserved sizes for the
// prototype trace: the paper's R=9 and R=6 are roughly half and a third
// of its week trace's mean demand, so we scale to ours.
func weekReserved() (rHalf, rThird int) {
	demand := prototypeWeek().MeanDemand(simtime.Week)
	return int(math.Round(demand / 2)), int(math.Round(demand / 3))
}

// runFig08 reproduces Figure 8: six policies on on-demand capacity only;
// carbon and waiting normalized to the worst policy per metric.
// Paper shape: suspend-resume (WaitAwhile, Ecovisor) lowest carbon but
// highest waiting; Lowest-Window within ~16 % of WaitAwhile's carbon;
// Carbon-Time halves WaitAwhile's waiting at ~23 % more carbon.
func runFig08(Scale) (fmt.Stringer, error) {
	tr, err := prototypeCarbon()
	if err != nil {
		return nil, err
	}
	jobs := prototypeWeek()
	policies := []policy.Policy{
		policy.NoWait{}, policy.LowestSlot{}, policy.LowestWindow{},
		policy.CarbonTime{}, policy.Ecovisor{}, policy.WaitAwhile{},
	}
	cells := make([]cell, 0, len(policies))
	for _, p := range policies {
		cells = append(cells, cell{weekConfig(p, tr), jobs})
	}
	results, err := runCells("fig08", cells)
	if err != nil {
		return nil, err
	}
	var maxCarbon, maxWait float64
	for _, res := range results {
		maxCarbon = math.Max(maxCarbon, res.TotalCarbon())
		maxWait = math.Max(maxWait, res.MeanWaiting().Hours())
	}
	t := NewTable("Figure 8 — normalized carbon and waiting (on-demand only, SA-AU)",
		"policy", "carbon(norm)", "waiting(norm)", "carbon(kg)", "wait(h)")
	for _, res := range results {
		t.AddRowf(res.Label,
			res.TotalCarbon()/maxCarbon,
			res.MeanWaiting().Hours()/maxWait,
			res.TotalCarbonKg(),
			res.MeanWaiting().Hours())
	}
	t.Caption = "paper shape: WaitAwhile/Ecovisor lowest carbon + highest waiting; Carbon-Time ≈50% of WaitAwhile's waiting"
	return t, nil
}

// runFig09 reproduces Figure 9: the cumulative share of total carbon
// savings contributed by jobs up to each length, under Carbon-Time on the
// year-long Alibaba trace in South Australia. Paper: <1 h jobs ≈10 % of
// savings, 3-12 h ≈50 %, >24 h ≈7.5 %.
func runFig09(scale Scale) (fmt.Stringer, error) {
	results, err := runCells("fig09", []cell{{
		cfg: core.Config{
			Policy: policy.CarbonTime{},
			Carbon: regionTrace("SA-AU"),
		},
		jobs: yearTrace("alibaba", scale),
	}})
	if err != nil {
		return nil, err
	}
	cdf := results[0].SavingsByLengthCDF()
	t := NewTable("Figure 9 — cumulative fraction of carbon savings by job length",
		"job length ≤", "savings fraction")
	points := []struct {
		label string
		min   float64
	}{
		{"5min", 5}, {"30min", 30}, {"1h", 60}, {"3h", 3 * 60},
		{"6h", 6 * 60}, {"12h", 12 * 60}, {"24h", 24 * 60}, {"60h", 60 * 60},
	}
	for _, p := range points {
		t.AddRowf(p.label, cdf.At(p.min))
	}
	t.Caption = fmt.Sprintf(
		"shares: <1h %.1f%%, 3-12h %.1f%%, >24h %.1f%% (paper: ≈10%%, ≈50%%, ≈7.5%%)",
		100*cdf.At(60),
		100*(cdf.At(12*60)-cdf.At(3*60)),
		100*(1-cdf.At(24*60)))
	return t, nil
}

// runFig10 reproduces Figure 10: six policies with reserved capacity
// (the paper's R=9 on its week trace; scaled to ours), reporting carbon,
// cost and waiting normalized to the worst per metric.
func runFig10(Scale) (fmt.Stringer, error) {
	tr, err := prototypeCarbon()
	if err != nil {
		return nil, err
	}
	jobs := prototypeWeek()
	rHalf, _ := weekReserved()

	mk := func(p policy.Policy, workConserving bool) cell {
		cfg := weekConfig(p, tr)
		cfg.Reserved = rHalf
		cfg.WorkConserving = workConserving
		return cell{cfg, jobs}
	}
	cells := []cell{
		mk(policy.NoWait{}, false),
		mk(policy.AllWait{}, true),
		mk(policy.WaitAwhile{}, false),
		mk(policy.Ecovisor{}, false),
		mk(policy.CarbonTime{}, false),
		mk(policy.CarbonTime{}, true), // RES-First-Carbon-Time
	}
	results, err := runCells("fig10", cells)
	if err != nil {
		return nil, err
	}
	var maxCarbon, maxCost, maxWait float64
	for _, res := range results {
		maxCarbon = math.Max(maxCarbon, res.TotalCarbon())
		maxCost = math.Max(maxCost, res.TotalCost())
		maxWait = math.Max(maxWait, res.MeanWaiting().Hours())
	}
	t := NewTable(fmt.Sprintf("Figure 10 — policies with R=%d reserved (SA-AU)", rHalf),
		"policy", "carbon(norm)", "cost(norm)", "waiting(norm)", "cost($)", "resUtil")
	for _, res := range results {
		t.AddRowf(res.Label,
			res.TotalCarbon()/maxCarbon,
			res.TotalCost()/maxCost,
			safeDiv(res.MeanWaiting().Hours(), maxWait),
			res.TotalCost(),
			res.ReservedUtilization())
	}
	t.Caption = "paper shape: NoWait worst carbon; AllWait-Threshold cheapest, worst waiting; suspend-resume costliest; RES-First-Carbon-Time balances"
	return t, nil
}

// runFig11 reproduces Figure 11: sweeping reserved capacity under
// RES-First-Carbon-Time. Cost falls to a valley near the mean demand then
// rises; carbon savings shrink as reserved capacity grows; waiting
// strictly decreases.
func runFig11(Scale) (fmt.Stringer, error) {
	tr, err := prototypeCarbon()
	if err != nil {
		return nil, err
	}
	jobs := prototypeWeek()
	demand := jobs.MeanDemand(simtime.Week)
	// Cell 0 is the NoWait baseline; the rest sweep reserved capacity.
	cells := []cell{{weekConfig(policy.NoWait{}, tr), jobs}}
	var sizes []int
	for frac := 0.0; frac <= 1.51; frac += 0.125 {
		r := int(math.Round(frac * demand))
		cfg := weekConfig(policy.CarbonTime{}, tr)
		cfg.Reserved = r
		cfg.WorkConserving = true
		cells = append(cells, cell{cfg, jobs})
		sizes = append(sizes, r)
	}
	results, err := runCells("fig11", cells)
	if err != nil {
		return nil, err
	}
	base := results[0]
	t := NewTable("Figure 11 — reserved sweep, RES-First-Carbon-Time vs NoWait(R=0) (SA-AU)",
		"reserved", "carbon(norm)", "cost(norm)", "wait(h)", "resUtil")
	for i, res := range results[1:] {
		rel := res.CompareTo(base)
		t.AddRowf(sizes[i], rel.Carbon, rel.Cost, res.MeanWaiting().Hours(), res.ReservedUtilization())
	}
	t.Caption = fmt.Sprintf("mean demand = %.1f CPUs; paper shape: cost valley near mean demand, carbon rises and waiting falls with R", demand)
	return t, nil
}

// runFig12 reproduces Figure 12: spot-only, and spot+reserved mixes.
// Paper shape: Spot-First keeps Carbon-Time's carbon at ≈17 % lower cost;
// Spot-RES trades carbon for further cost cuts as reserved grows.
func runFig12(Scale) (fmt.Stringer, error) {
	tr, err := prototypeCarbon()
	if err != nil {
		return nil, err
	}
	jobs := prototypeWeek()
	rHalf, rThird := weekReserved()

	var cells []cell
	add := func(label string, p policy.Policy, reserved int, spot bool, workConserving bool) {
		cfg := weekConfig(p, tr)
		cfg.Reserved = reserved
		cfg.WorkConserving = workConserving
		if spot {
			cfg.SpotMaxLen = 2 * simtime.Hour
		}
		cfg.Label = fmt.Sprintf("%s(R=%d)", label, reserved)
		cells = append(cells, cell{cfg, jobs})
	}
	add("Carbon-Time", policy.CarbonTime{}, 0, false, false)
	add("Spot-First-Carbon-Time", policy.CarbonTime{}, 0, true, false)
	add("Spot-First-Ecovisor", policy.Ecovisor{}, 0, true, false)
	add("Spot-RES-Carbon-Time", policy.CarbonTime{}, rHalf, true, true)
	add("Spot-RES-Carbon-Time", policy.CarbonTime{}, rThird, true, true)

	results, err := runCells("fig12", cells)
	if err != nil {
		return nil, err
	}
	var maxCarbon, maxCost, maxWait float64
	for _, res := range results {
		maxCarbon = math.Max(maxCarbon, res.TotalCarbon())
		maxCost = math.Max(maxCost, res.TotalCost())
		maxWait = math.Max(maxWait, res.MeanWaiting().Hours())
	}
	t := NewTable("Figure 12 — spot and reserved combinations (SA-AU, eviction rate 0)",
		"config", "carbon(norm)", "cost(norm)", "waiting(norm)", "cost($)")
	for _, res := range results {
		t.AddRowf(res.Label,
			res.TotalCarbon()/maxCarbon,
			res.TotalCost()/maxCost,
			safeDiv(res.MeanWaiting().Hours(), maxWait),
			res.TotalCost())
	}
	t.Caption = "paper shape: Spot-First preserves Carbon-Time's carbon at lower cost; adding reserved cuts cost but yields carbon"
	return t, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
