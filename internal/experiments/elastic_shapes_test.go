package experiments

import (
	"testing"

	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/policy"
)

// The elastic configuration of x09 must strictly dominate rigid
// Carbon-Time on the (carbon, cost) plane in every evaluation region:
// suspension and clean-hour scaling cut emissions while free scale-ups
// (idle reserved capacity only) shorten the on-demand tail. This is the
// acceptance shape of the elastic subsystem — the README quotes the
// quick-scale numbers this test pins.
func TestShapeElasticDominatesRigidCarbonTime(t *testing.T) {
	et := elasticYearTrace(Quick)
	reserved := int(meanDemand("alibaba", Quick))
	for _, code := range evaluationRegions() {
		base := core.Config{
			Policy:   policy.CarbonTime{},
			Reserved: reserved,
			Carbon:   regionTrace(code),
			Horizon:  horizon(Quick),
		}
		elastic := base
		elastic.Elastic = et
		elastic.Allocator = policy.GreedyMarginal{ScaleThreshold: 1.0, PreemptAbove: 1.04}
		rigid, err := core.Run(base, et.Jobs)
		if err != nil {
			t.Fatalf("%s rigid: %v", code, err)
		}
		el, err := core.Run(elastic, et.Jobs)
		if err != nil {
			t.Fatalf("%s elastic: %v", code, err)
		}
		if el.TotalCarbon() >= rigid.TotalCarbon() {
			t.Errorf("%s: elastic carbon %.4f >= rigid Carbon-Time %.4f",
				code, el.TotalCarbon(), rigid.TotalCarbon())
		}
		if el.TotalCost() >= rigid.TotalCost() {
			t.Errorf("%s: elastic cost %.4f >= rigid Carbon-Time %.4f",
				code, el.TotalCost(), rigid.TotalCost())
		}
	}
}

// Critical-Path must sit strictly between No-Wait and Carbon-Time on the
// DAG workload: it saves carbon over No-Wait, keeps completion time well
// under Carbon-Time's blanket stretch, and — the invariant that names the
// policy — a branch shifted within its slack cannot delay the sink, so
// completion stays near No-Wait's.
func TestShapeCriticalPathBetweenExtremes(t *testing.T) {
	et := dagPipelineTrace(Quick)
	run := func(p policy.Policy) (carbon float64, completion float64) {
		res, err := core.Run(core.Config{
			Policy:  p,
			Carbon:  regionTrace("SA-AU"),
			Horizon: horizon(Quick),
			Elastic: et,
		}, et.Jobs)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalCarbon(), float64(res.MeanCompletion())
	}
	nwC, nwT := run(policy.NoWait{})
	ctC, ctT := run(policy.CarbonTime{})
	cpC, cpT := run(policy.CriticalPathShift{})
	if cpC >= nwC {
		t.Errorf("Critical-Path carbon %.1f should beat No-Wait %.1f", cpC, nwC)
	}
	if cpC <= ctC {
		t.Errorf("Critical-Path carbon %.1f should not beat blanket Carbon-Time %.1f", cpC, ctC)
	}
	if cpT >= ctT {
		t.Errorf("Critical-Path completion %.1f should beat Carbon-Time %.1f", cpT, ctT)
	}
	// Slack-bounded shifting keeps completion within 25% of No-Wait even
	// though over half the pipeline energy moved to cleaner hours.
	if cpT > 1.25*nwT {
		t.Errorf("Critical-Path completion %.1f stretches No-Wait %.1f by more than 25%%", cpT, nwT)
	}
}
