package experiments

import (
	"fmt"
	"math/rand"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/par"
	"github.com/carbonsched/gaia/internal/scaling"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "x08-scaling",
		Title: "Extension: demand scaling as a carbon-saving modality (conclusion's future work)",
		Run:   runX08Scaling,
	})
}

// runX08Scaling compares the carbon-saving modalities on elastic batch
// jobs in South Australia: running serially at arrival (NoWait), shifting
// the serial run in time, suspend-resume at unit width, and
// CarbonScaler-style width scaling (run wide in clean hours). Scaling
// trades extra CPU-hours (Amdahl inefficiency) for the freedom to
// concentrate work into the cleanest hours.
func runX08Scaling(scale Scale) (fmt.Stringer, error) {
	tr := regionTrace("SA-AU")
	cis := carbon.NewPerfectService(tr)
	rng := rand.New(rand.NewSource(seedWorkload + 80))

	nJobs := 300
	if scale == Full {
		nJobs = 3000
	}
	span := horizon(scale) - 4*simtime.Day
	lengths := stats.NewTruncLogNormal(rng, 1.6, 1.0, 0.5, 36) // serial hours
	jobs := make([]scaling.ElasticJob, 0, nJobs)
	for i := 0; i < nJobs; i++ {
		jobs = append(jobs, scaling.ElasticJob{
			Arrival:     simtime.Time(rng.Float64() * float64(span)),
			Work:        lengths.Sample(),
			MaxParallel: 8,
			Curve:       scaling.Amdahl{Parallel: 0.9},
			Deadline:    simtime.HoursDur(lengths.Mean()) + 48*simtime.Hour,
		})
	}

	const kw = 0.01
	type agg struct {
		carbonG, cpuH, complH float64
	}
	modalities := []string{
		"static-1 (NoWait)", "temporal shift (k=1)", "suspend-resume (k=1)", "carbon-scaler (k≤8)",
	}

	// Each job's four plans (serial, shifted, suspend-resume, scaled) are
	// computed in parallel; per-modality sums are then accumulated in job
	// order so totals match the sequential loop bit for bit.
	measure := func(plan scaling.Plan, job scaling.ElasticJob) agg {
		return agg{
			carbonG: plan.Carbon(tr, kw),
			cpuH:    plan.CPUHours(),
			complH:  plan.Completion(job.Arrival).Sub(job.Arrival).Hours(),
		}
	}
	perJob, err := par.Map(Parallelism(), jobs, func(_ int, job scaling.ElasticJob) ([4]agg, error) {
		var out [4]agg
		job.Deadline = simtime.HoursDur(job.Work) + 48*simtime.Hour
		serial, err := scaling.StaticPlan(job, 1)
		if err != nil {
			return out, err
		}
		out[0] = measure(serial, job)

		// Temporal shifting of the serial run: best contiguous start.
		shifted, err := bestShiftedSerial(job, cis, tr)
		if err != nil {
			return out, err
		}
		out[1] = measure(shifted, job)

		// Suspend-resume at unit width = scaling capped at 1.
		narrow := job
		narrow.MaxParallel = 1
		sr, err := scaling.PlanJob(narrow, cis)
		if err != nil {
			return out, err
		}
		out[2] = measure(sr, job)

		scaler, err := scaling.PlanJob(job, cis)
		if err != nil {
			return out, err
		}
		out[3] = measure(scaler, job)
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	results := map[string]*agg{}
	for _, name := range modalities {
		results[name] = &agg{}
	}
	for _, out := range perJob {
		for m, name := range modalities {
			a := results[name]
			a.carbonG += out[m].carbonG
			a.cpuH += out[m].cpuH
			a.complH += out[m].complH
		}
	}

	base := results["static-1 (NoWait)"]
	t := NewTable("Extension x08 — carbon-saving modalities on elastic jobs (SA-AU, Amdahl p=0.9)",
		"modality", "carbon(norm)", "cpu·h(norm)", "mean completion(h)")
	for _, name := range modalities {
		a := results[name]
		t.AddRowf(name,
			a.carbonG/base.carbonG,
			a.cpuH/base.cpuH,
			a.complH/float64(nJobs))
	}
	t.Caption = "expectation: scaling saves the most carbon and completes faster than unit-width suspend-resume, paying extra CPU-hours (Amdahl inefficiency) — the energy-vs-carbon tension CarbonScaler navigates"
	return t, nil
}

// bestShiftedSerial finds the lowest-carbon contiguous serial (k=1) run
// within the job's deadline.
func bestShiftedSerial(job scaling.ElasticJob, cis carbon.Service, tr *carbon.Trace) (scaling.Plan, error) {
	runLen := simtime.HoursDur(job.Work)
	latest := job.Arrival.Add(job.Deadline - runLen)
	bestStart := job.Arrival
	bestC := cis.ForecastIntegral(job.Arrival, simtime.Interval{Start: job.Arrival, End: job.Arrival.Add(runLen)})
	for s := job.Arrival; s <= latest; s = s.Add(simtime.Hour) {
		c := cis.ForecastIntegral(job.Arrival, simtime.Interval{Start: s, End: s.Add(runLen)})
		if c < bestC {
			bestStart, bestC = s, c
		}
	}
	shift := job
	shift.Arrival = bestStart
	return scaling.StaticPlan(shift, 1)
}
