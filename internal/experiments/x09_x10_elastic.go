package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "x09-elastic",
		Title: "Extension: malleable jobs — carbon-elastic allocation vs rigid baselines (CarbonScaler §2.3)",
		Run:   runX09Elastic,
	})
	register(Experiment{
		ID:    "x10-dag",
		Title: "Extension: DAG pipelines — critical-path-aware shifting vs blanket Carbon-Time",
		Run:   runX10DAG,
	})
}

// elasticYearTrace attaches a seeded elasticity mix to the alibaba
// demand-calibrated workload: 40% rigid jobs, 35% scalable (Amdahl curves,
// parallel fraction 0.75-0.95, up to 2/4/8 replicas) and 25% preemptible
// (MinReplicas 0, suspendable in dirty hours). The mix follows the
// CarbonScaler observation that production ML clusters mingle malleable
// trainers with rigid services. The trace is cached per scale; the spec
// roll consumes exactly two rng draws per job so the assignment is stable
// under job-count changes elsewhere.
func elasticYearTrace(s Scale) *workload.ElasticTrace {
	elasticMu.Lock()
	defer elasticMu.Unlock()
	if et, ok := elasticTraces[s]; ok {
		return et
	}
	base := yearTrace("alibaba", s)
	jobs := append([]workload.Job(nil), base.Jobs...)
	rng := rand.New(rand.NewSource(seedWorkload + 20))
	specs := make([]workload.ElasticSpec, len(jobs))
	maxes := []int{2, 4, 8}
	for i := range specs {
		u := rng.Float64()
		p := 0.75 + 0.2*rng.Float64()
		switch {
		case u < 0.40:
			specs[i] = workload.DegenerateSpec()
		case u < 0.75:
			max := maxes[i%len(maxes)]
			specs[i] = workload.ElasticSpec{
				MinReplicas: 1,
				MaxReplicas: max,
				Curve:       workload.AmdahlCurve(p, max),
			}
		default:
			max := maxes[i%len(maxes)] / 2
			if max < 1 {
				max = 1
			}
			specs[i] = workload.ElasticSpec{
				MinReplicas: 0,
				MaxReplicas: max,
				Curve:       workload.AmdahlCurve(p, max),
			}
		}
	}
	et := workload.MustElasticTrace("alibaba-elastic", jobs, specs, nil)
	elasticTraces[s] = et
	return et
}

var (
	elasticMu     sync.Mutex
	elasticTraces = map[Scale]*workload.ElasticTrace{}
	dagMu         sync.Mutex
	dagTraces     = map[Scale]*workload.ElasticTrace{}
)

// dagPipelineTrace builds a diamond-pipeline workload: each pipeline is a
// preprocessing source fanning out to three parallel branches that join in
// a sink (5 jobs, 6 edges), all five stages submitted together. A pure
// chain would put every stage on its critical path (zero slack
// everywhere), so the diamonds are what give Critical-Path something to
// shift: the two shorter branches carry slack equal to their gap behind
// the longest one. Every job carries the rigid contract — the DAG figure
// isolates precedence scheduling from malleability.
func dagPipelineTrace(s Scale) *workload.ElasticTrace {
	dagMu.Lock()
	defer dagMu.Unlock()
	if et, ok := dagTraces[s]; ok {
		return et
	}
	n := 1200 // pipelines; 5 stages each
	if s == Quick {
		n = 240
	}
	rng := rand.New(rand.NewSource(seedWorkload + 21))
	span := horizon(s) - 7*simtime.Day // leave room for pipelines to drain
	jobs := make([]workload.Job, 0, 5*n)
	edges := make([]workload.Edge, 0, 6*n)
	for i := 0; i < n; i++ {
		arrival := simtime.Time(rng.Int63n(int64(span)))
		user := fmt.Sprintf("pipe-%02d", i%97)
		add := func(length simtime.Duration, cpus int) {
			q := workload.QueueShort
			if length > 2*simtime.Hour {
				q = workload.QueueLong
			}
			jobs = append(jobs, workload.Job{
				Arrival: arrival, Length: length, CPUs: cpus, Queue: q, User: user,
			})
		}
		// The diamond is deliberately unbalanced: a narrow 8-12 h training
		// branch sets the critical path while two wide 1-3 h evaluation
		// branches carry most of the energy *and* 5-11 h of slack — the
		// population Critical-Path can shift without stretching the chain.
		add(simtime.Duration(30+rng.Int63n(60))*simtime.Minute, 2)   // source: preprocess
		add(simtime.Duration(600+rng.Int63n(240))*simtime.Minute, 2) // long branch: train
		add(simtime.Duration(150+rng.Int63n(90))*simtime.Minute, 8)  // side branch: eval sweep
		add(simtime.Duration(150+rng.Int63n(90))*simtime.Minute, 8)  // side branch: eval sweep
		add(simtime.Duration(30+rng.Int63n(60))*simtime.Minute, 2)   // sink: merge
		// Positions: b = source, b+1..b+3 = branches, b+4 = sink.
		b := 5 * i
		edges = append(edges,
			workload.Edge{Src: b, Dst: b + 1},
			workload.Edge{Src: b, Dst: b + 2},
			workload.Edge{Src: b, Dst: b + 3},
			workload.Edge{Src: b + 1, Dst: b + 4},
			workload.Edge{Src: b + 2, Dst: b + 4},
			workload.Edge{Src: b + 3, Dst: b + 4})
	}
	specs := make([]workload.ElasticSpec, len(jobs))
	for i := range specs {
		specs[i] = workload.DegenerateSpec()
	}
	et := workload.MustElasticTrace("dag-pipelines", jobs, specs, edges)
	dagTraces[s] = et
	return et
}

// runX09Elastic compares the carbon-elastic policy family against the
// rigid baselines on every evaluation region: Lowest-Window and
// Carbon-Time shift rigid jobs, while the elastic configuration runs
// Carbon-Time temporal shifting plus the Greedy-Marginal allocator
// resizing malleable jobs each hour — extra replicas ride idle reserved
// capacity in clean hours and preemptible jobs suspend in dirty ones. All
// columns are normalized to No-Wait in the same region.
func runX09Elastic(scale Scale) (fmt.Stringer, error) {
	et := elasticYearTrace(scale)
	jobs := et.Jobs
	reserved := int(meanDemand("alibaba", scale))

	regions := evaluationRegions()
	var cells []cell
	for _, code := range regions {
		tr := regionTrace(code)
		base := core.Config{Reserved: reserved, Carbon: tr, Horizon: horizon(scale)}
		noWait, lowest, ctime := base, base, base
		noWait.Policy = policy.NoWait{}
		lowest.Policy = policy.LowestWindow{}
		ctime.Policy = policy.CarbonTime{}
		elastic := base
		elastic.Policy = policy.CarbonTime{}
		elastic.Elastic = et
		// Scale-ups only in genuinely clean hours (a marginal must beat
		// the hour's greenness outright) and only into idle reserved
		// capacity; preemptibles suspend once the hour is 4% dirtier than
		// the daily mean — tight thresholds because even the flattest
		// evaluation grid (KY-US, greenness 0.89-1.10) must come out
		// strictly ahead on both axes.
		elastic.Allocator = policy.GreedyMarginal{ScaleThreshold: 1.0, PreemptAbove: 1.04}
		cells = append(cells,
			cell{noWait, jobs}, cell{lowest, jobs}, cell{ctime, jobs}, cell{elastic, jobs})
	}
	results, err := runCells("x09-elastic", cells)
	if err != nil {
		return nil, err
	}

	t := NewTable("Extension x09 — elastic vs rigid scheduling (Alibaba, reserved = mean demand)",
		"region", "policy", "carbon(norm)", "cost(norm)", "mean completion (h)")
	names := []string{"No-Wait (rigid)", "Lowest-Window (rigid)", "Carbon-Time (rigid)", "Carbon-Time + Greedy-Marginal"}
	for ri, code := range regions {
		base := results[4*ri]
		for pi, name := range names {
			res := results[4*ri+pi]
			t.AddRowf(code, name,
				res.TotalCarbon()/base.TotalCarbon(),
				res.TotalCost()/base.TotalCost(),
				float64(res.MeanCompletion())/60)
		}
	}
	t.Caption = "the elastic row strictly dominates rigid Carbon-Time on both carbon and cost in every region: suspension and green-hour scaling cut emissions, while replicas absorbed by idle reserved capacity shorten the on-demand tail"
	return t, nil
}

// runX10DAG compares precedence-aware shifting on the pipeline workload:
// No-Wait starts every released stage immediately, Carbon-Time shifts each
// stage by its full queue window (stretching the chain), and
// Critical-Path caps each stage's window by its slack so only
// off-critical-path stages wait.
func runX10DAG(scale Scale) (fmt.Stringer, error) {
	et := dagPipelineTrace(scale)
	jobs := et.Jobs
	tr := regionTrace("SA-AU")

	pols := []struct {
		name string
		p    policy.Policy
	}{
		{"No-Wait", policy.NoWait{}},
		{"Carbon-Time", policy.CarbonTime{}},
		{"Critical-Path", policy.CriticalPathShift{}},
	}
	var cells []cell
	for _, pc := range pols {
		cells = append(cells, cell{core.Config{
			Policy:  pc.p,
			Carbon:  tr,
			Horizon: horizon(scale),
			Elastic: et,
		}, jobs})
	}
	results, err := runCells("x10-dag", cells)
	if err != nil {
		return nil, err
	}

	t := NewTable(fmt.Sprintf("Extension x10 — DAG pipelines on SA-AU (%d stages, critical path %s)",
		et.Len(), et.CriticalPathLength()),
		"policy", "carbon(norm)", "mean completion (h)", "p99 wait (h)")
	base := results[0]
	for i, pc := range pols {
		res := results[i]
		t.AddRowf(pc.name,
			res.TotalCarbon()/base.TotalCarbon(),
			float64(res.MeanCompletion())/60,
			float64(res.WaitingPercentile(99))/60)
	}
	t.Caption = "Critical-Path lands between the extremes: a disproportionate share of Carbon-Time's savings per hour of stretch, because zero-slack stages never wait and a branch shifted within its slack cannot delay the sink"
	return t, nil
}
