package experiments

import (
	"fmt"
	"math"

	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
)

func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "Carbon and waiting across workload traces and policies (CA-US)",
		Run:   runFig13,
	})
	register(Experiment{
		ID:    "fig14",
		Title: "Carbon saved per waiting hour vs waiting-time thresholds",
		Run:   runFig14,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "Normalized carbon across regions and workloads (Carbon-Time)",
		Run:   runFig15,
	})
	register(Experiment{
		ID:    "fig16",
		Title: "Normalized and total saved carbon across regions (Alibaba)",
		Run:   runFig16,
	})
	register(Experiment{
		ID:    "fig17",
		Title: "Cost and carbon with reserved capacity across workload traces (SA-AU)",
		Run:   runFig17,
	})
	register(Experiment{
		ID:    "fig18",
		Title: "Spot-First cost/carbon vs J^max and eviction rate (Azure, SA-AU)",
		Run:   runFig18,
	})
	register(Experiment{
		ID:    "fig19",
		Title: "Hybrid spot+reserved sweep at 10% eviction (Azure, SA-AU)",
		Run:   runFig19,
	})
}

// families in the paper's presentation order.
var figFamilies = []string{"mustang", "alibaba", "azure"}

// runFig13 reproduces Figure 13: four policies on the three year-long
// traces in California. Carbon is normalized to NoWait; waiting to the
// worst policy per trace. Paper shape: WaitAwhile saves most carbon at the
// worst waiting (Mustang −26 %, Azure −19 %); Lowest-Window retains ≈68 %
// of that saving on Mustang but only ≈44 % on Azure; Carbon-Time cuts
// waiting ≈20 % versus Lowest-Window at similar carbon.
func runFig13(scale Scale) (fmt.Stringer, error) {
	carbonTr := regionTrace("CA-US")
	policies := []policy.Policy{
		policy.LowestWindow{}, policy.CarbonTime{}, policy.Ecovisor{}, policy.WaitAwhile{},
	}
	// Per family: one NoWait baseline cell followed by the four policies.
	stride := 1 + len(policies)
	var cells []cell
	for _, fam := range figFamilies {
		jobs := yearTrace(fam, scale)
		cells = append(cells, cell{core.Config{Policy: policy.NoWait{}, Carbon: carbonTr, Horizon: horizon(scale)}, jobs})
		for _, p := range policies {
			cells = append(cells, cell{core.Config{Policy: p, Carbon: carbonTr, Horizon: horizon(scale)}, jobs})
		}
	}
	all, err := runCells("fig13", cells)
	if err != nil {
		return nil, err
	}
	t := NewTable("Figure 13 — normalized carbon (vs NoWait) and waiting (vs worst) in CA-US",
		"trace", "policy", "carbon(norm)", "waiting(norm)", "wait(h)", "savingRetained")
	for fi, fam := range figFamilies {
		group := all[fi*stride : (fi+1)*stride]
		base, results := group[0], group[1:]
		var maxWait float64
		for _, res := range results {
			maxWait = math.Max(maxWait, res.MeanWaiting().Hours())
		}
		// WaitAwhile's saving is the reference for "savings retained".
		waSaving := 1 - results[len(results)-1].TotalCarbon()/base.TotalCarbon()
		for _, res := range results {
			saving := 1 - res.TotalCarbon()/base.TotalCarbon()
			t.AddRowf(fam, res.Label,
				res.TotalCarbon()/base.TotalCarbon(),
				safeDiv(res.MeanWaiting().Hours(), maxWait),
				res.MeanWaiting().Hours(),
				safeDiv(saving, waSaving))
		}
	}
	t.Caption = "paper: WaitAwhile saves 26% (Mustang) / 19% (Azure); Lowest-Window retains 68% vs 44% of it; Carbon-Time ≈20% less waiting than Lowest-Window"
	return t, nil
}

// runFig14 reproduces Figure 14: carbon saved per waiting hour while
// sweeping one queue's waiting threshold and pinning the other
// (paper: W_short ∈ 0..24 h with W_long=24 h; W_long ∈ 0..84 h with
// W_short=6 h). Carbon-Time should dominate Lowest-Window on savings per
// waiting hour everywhere, with diminishing returns beyond ≈12 h.
func runFig14(scale Scale) (fmt.Stringer, error) {
	carbonTr := regionTrace("SA-AU")
	jobs := yearTrace("alibaba", scale)
	asCfg := func(w simtime.Duration) simtime.Duration {
		if w == 0 {
			return -1 // explicit zero (0 would select the default)
		}
		return w
	}
	mk := func(p policy.Policy, wShort, wLong simtime.Duration) cell {
		return cell{core.Config{
			Policy:    p,
			Carbon:    carbonTr,
			Horizon:   horizon(scale),
			WaitShort: asCfg(wShort),
			WaitLong:  asCfg(wLong),
		}, jobs}
	}

	// Cell 0 is the NoWait baseline; each sweep point contributes a
	// Lowest-Window and a Carbon-Time cell.
	shortWs := []int{0, 3, 6, 9, 12, 18, 24}
	longWs := []int{0, 12, 24, 36, 48, 60, 72, 84}
	cells := []cell{{core.Config{Policy: policy.NoWait{}, Carbon: carbonTr, Horizon: horizon(scale)}, jobs}}
	for _, w := range shortWs {
		cells = append(cells,
			mk(policy.LowestWindow{}, simtime.Duration(w)*simtime.Hour, 24*simtime.Hour),
			mk(policy.CarbonTime{}, simtime.Duration(w)*simtime.Hour, 24*simtime.Hour))
	}
	for _, w := range longWs {
		cells = append(cells,
			mk(policy.LowestWindow{}, 6*simtime.Hour, simtime.Duration(w)*simtime.Hour),
			mk(policy.CarbonTime{}, 6*simtime.Hour, simtime.Duration(w)*simtime.Hour))
	}
	results, err := runCells("fig14", cells)
	if err != nil {
		return nil, err
	}
	base := results[0]
	perHour := func(res *metrics.Result) (gPerHour, savingPct float64) {
		savedG := base.TotalCarbon() - res.TotalCarbon()
		return safeDiv(savedG, res.TotalWaitingHours()), 100 * (1 - res.TotalCarbon()/base.TotalCarbon())
	}

	idx := 1
	shortSweep := NewTable("Figure 14a — saved carbon per waiting hour vs W_short (W_long = 24h)",
		"W_short(h)", "Lowest-Window g/h", "Carbon-Time g/h", "LW saving%", "CT saving%")
	for _, w := range shortWs {
		lw, lwPct := perHour(results[idx])
		ct, ctPct := perHour(results[idx+1])
		idx += 2
		shortSweep.AddRowf(w, lw, ct, lwPct, ctPct)
	}

	longSweep := NewTable("Figure 14b — saved carbon per waiting hour vs W_long (W_short = 6h)",
		"W_long(h)", "Lowest-Window g/h", "Carbon-Time g/h", "LW saving%", "CT saving%")
	for _, w := range longWs {
		lw, lwPct := perHour(results[idx])
		ct, ctPct := perHour(results[idx+1])
		idx += 2
		longSweep.AddRowf(w, lw, ct, lwPct, ctPct)
	}
	longSweep.Caption = "paper shape: Carbon-Time ≥ Lowest-Window per waiting hour; diminishing returns beyond ≈12h for long jobs"
	return Tables{shortSweep, longSweep}, nil
}

// runFig15 reproduces Figure 15: Carbon-Time's normalized carbon across
// the five evaluation regions and three workloads. Paper: SA-AU saves the
// most (≈27.5 %), KY-US almost nothing (≈1 %).
func runFig15(scale Scale) (fmt.Stringer, error) {
	// One (NoWait, Carbon-Time) cell pair per region × family.
	var cells []cell
	for _, region := range evaluationRegions() {
		carbonTr := regionTrace(region)
		for _, fam := range figFamilies {
			jobs := yearTrace(fam, scale)
			cells = append(cells,
				cell{core.Config{Policy: policy.NoWait{}, Carbon: carbonTr, Horizon: horizon(scale)}, jobs},
				cell{core.Config{Policy: policy.CarbonTime{}, Carbon: carbonTr, Horizon: horizon(scale)}, jobs})
		}
	}
	results, err := runCells("fig15", cells)
	if err != nil {
		return nil, err
	}
	t := NewTable("Figure 15 — normalized carbon vs NoWait (Carbon-Time policy)",
		"region", "mustang", "alibaba", "azure")
	idx := 0
	for _, region := range evaluationRegions() {
		row := []any{region}
		for range figFamilies {
			base, res := results[idx], results[idx+1]
			idx += 2
			row = append(row, res.TotalCarbon()/base.TotalCarbon())
		}
		t.AddRowf(row...)
	}
	t.Caption = "paper: high-variability regions (SA-AU ≈0.725) save most; stable high-CI regions (KY-US ≈0.99) save least; waiting time is region-independent"
	return t, nil
}

// runFig16 reproduces Figure 16: normalized carbon and total saved
// kilograms for the Alibaba trace across regions — total savings depend on
// the region's absolute CI, not just its variability.
func runFig16(scale Scale) (fmt.Stringer, error) {
	jobs := yearTrace("alibaba", scale)
	var cells []cell
	for _, region := range evaluationRegions() {
		carbonTr := regionTrace(region)
		cells = append(cells,
			cell{core.Config{Policy: policy.NoWait{}, Carbon: carbonTr, Horizon: horizon(scale)}, jobs},
			cell{core.Config{Policy: policy.CarbonTime{}, Carbon: carbonTr, Horizon: horizon(scale)}, jobs})
	}
	results, err := runCells("fig16", cells)
	if err != nil {
		return nil, err
	}
	t := NewTable("Figure 16 — Alibaba trace: normalized carbon and total savings (Carbon-Time)",
		"region", "carbon(norm)", "saved(kg)", "total(kg)")
	for i, region := range evaluationRegions() {
		base, res := results[2*i], results[2*i+1]
		t.AddRowf(region,
			res.TotalCarbon()/base.TotalCarbon(),
			base.TotalCarbonKg()-res.TotalCarbonKg(),
			res.TotalCarbonKg())
	}
	t.Caption = "paper: regions with similar total savings can differ ≈20% in normalized savings — judge by total reduction"
	return t, nil
}

// runFig17 reproduces Figure 17: cost and carbon across the three traces
// with R = each trace's mean demand, in South Australia. Paper shape:
// AllWait-Threshold cheapest/highest-carbon; Ecovisor costliest;
// RES-First-Carbon-Time lands within ≈9 % of the cheapest cost at close to
// Ecovisor's carbon; high-demand-variability traces (Mustang) save more
// carbon but less cost.
func runFig17(scale Scale) (fmt.Stringer, error) {
	carbonTr := regionTrace("SA-AU")
	type entry struct {
		p  policy.Policy
		wc bool
	}
	entries := []entry{
		{policy.AllWait{}, true},
		{policy.Ecovisor{}, false},
		{policy.CarbonTime{}, false},
		{policy.CarbonTime{}, true}, // RES-First
	}
	var cells []cell
	rs := make([]int, len(figFamilies))
	for fi, fam := range figFamilies {
		jobs := yearTrace(fam, scale)
		rs[fi] = int(math.Round(meanDemand(fam, scale)))
		for _, e := range entries {
			cells = append(cells, cell{core.Config{
				Policy:         e.p,
				Carbon:         carbonTr,
				Horizon:        horizon(scale),
				Reserved:       rs[fi],
				WorkConserving: e.wc,
			}, jobs})
		}
	}
	all, err := runCells("fig17", cells)
	if err != nil {
		return nil, err
	}
	t := NewTable("Figure 17 — policies with R = mean demand (SA-AU)",
		"trace", "R", "policy", "carbon(norm)", "cost(norm)", "resUtil")
	for fi, fam := range figFamilies {
		results := all[fi*len(entries) : (fi+1)*len(entries)]
		var maxCarbon, maxCost float64
		for _, res := range results {
			maxCarbon = math.Max(maxCarbon, res.TotalCarbon())
			maxCost = math.Max(maxCost, res.TotalCost())
		}
		for _, res := range results {
			t.AddRowf(fam, rs[fi], res.Label,
				res.TotalCarbon()/maxCarbon,
				res.TotalCost()/maxCost,
				res.ReservedUtilization())
		}
	}
	t.Caption = "paper shape: AllWait cheapest + dirtiest; Ecovisor costliest; RES-First-Carbon-Time bridges; Mustang (demand CV 0.8) saves more carbon, Azure (CV 0.3) more cost"
	return t, nil
}

// runFig18 reproduces Figure 18: Spot-First-Carbon-Time on the Azure
// trace, sweeping the maximum job length placed on spot (J^max) against
// eviction rates. Paper shape: with zero evictions longer J^max always
// helps cost at unchanged carbon; at 15 % eviction extending beyond ≈6 h
// buys no cost and adds up to ≈12 % carbon.
func runFig18(scale Scale) (fmt.Stringer, error) {
	carbonTr := regionTrace("SA-AU")
	jobs := yearTrace("azure", scale)
	evicts := []float64{0, 0.05, 0.10, 0.15}
	jmaxes := []int{2, 6, 12, 18, 24}
	// Cell 0 is the NoWait baseline; the rest sweep (eviction, Jmax).
	cells := []cell{{core.Config{Policy: policy.NoWait{}, Carbon: carbonTr, Horizon: horizon(scale)}, jobs}}
	for _, evict := range evicts {
		for _, jmax := range jmaxes {
			cells = append(cells, cell{core.Config{
				Policy:       policy.CarbonTime{},
				Carbon:       carbonTr,
				Horizon:      horizon(scale),
				SpotMaxLen:   simtime.Duration(jmax) * simtime.Hour,
				EvictionRate: evict,
				Seed:         seedEviction,
			}, jobs})
		}
	}
	results, err := runCells("fig18", cells)
	if err != nil {
		return nil, err
	}
	base := results[0]
	t := NewTable("Figure 18 — Spot-First-Carbon-Time vs NoWait(on-demand), Azure trace (SA-AU)",
		"evict%", "Jmax(h)", "carbon(norm)", "cost(norm)", "evictions")
	idx := 1
	for _, evict := range evicts {
		for _, jmax := range jmaxes {
			res := results[idx]
			idx++
			rel := res.CompareTo(base)
			t.AddRowf(100*evict, jmax, rel.Carbon, rel.Cost, res.TotalEvictions())
		}
	}
	t.Caption = "paper shape: at 0% eviction longer Jmax strictly cuts cost; at 15% beyond 6h no cost benefit and up to +12% carbon"
	return t, nil
}

// runFig19 reproduces Figure 19: the combined Spot-RES-Carbon-Time on the
// Azure trace at 10 % eviction, sweeping reserved capacity for several
// J^max values. Paper shape: every curve has a cost valley; splitting
// demand between spot and reserved keeps several % carbon savings at the
// valley.
func runFig19(scale Scale) (fmt.Stringer, error) {
	carbonTr := regionTrace("SA-AU")
	jobs := yearTrace("azure", scale)
	demand := meanDemand("azure", scale)
	// Cell 0 is the NoWait baseline; the rest sweep (Jmax, reserved).
	cells := []cell{{core.Config{Policy: policy.NoWait{}, Carbon: carbonTr, Horizon: horizon(scale)}, jobs}}
	type point struct{ jmax, r int }
	var points []point
	for _, jmax := range []int{0, 2, 6, 12} {
		for frac := 0.0; frac <= 1.21; frac += 0.2 {
			r := int(math.Round(frac * demand))
			cfg := core.Config{
				Policy:         policy.CarbonTime{},
				Carbon:         carbonTr,
				Horizon:        horizon(scale),
				Reserved:       r,
				WorkConserving: true,
				EvictionRate:   0.10,
				Seed:           seedEviction,
			}
			if jmax > 0 {
				cfg.SpotMaxLen = simtime.Duration(jmax) * simtime.Hour
			}
			cells = append(cells, cell{cfg, jobs})
			points = append(points, point{jmax, r})
		}
	}
	results, err := runCells("fig19", cells)
	if err != nil {
		return nil, err
	}
	base := results[0]
	t := NewTable("Figure 19 — Spot-RES-Carbon-Time, 10% eviction, Azure trace (SA-AU)",
		"Jmax(h)", "reserved", "carbon(norm)", "cost(norm)")
	for i, res := range results[1:] {
		rel := res.CompareTo(base)
		t.AddRowf(points[i].jmax, points[i].r, rel.Carbon, rel.Cost)
	}
	t.Caption = fmt.Sprintf("mean demand = %.0f CPUs; paper shape: cost valleys below mean demand; larger Jmax shifts the valley down and keeps more carbon savings", demand)
	return t, nil
}
