package experiments

import (
	"testing"

	"github.com/carbonsched/gaia/internal/core"
)

// TestFiguresIdenticalAcrossEventQueues pins the timing-wheel event core
// against the figure suite: every registered experiment rendered with the
// default wheel engine must be byte-identical to the same experiment with
// the reference heap queue forced on. Together with the sim package's
// fuzz differential this is the contract that let the wheel replace the
// heap — no figure can tell the queue mechanisms apart.
func TestFiguresIdenticalAcrossEventQueues(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the full quick-scale figure suite twice")
	}
	// Force the event engine on for both passes so this stays a
	// wheel-vs-heap comparison; without it the first pass would ride the
	// direct-execution path and never touch the wheel at all (the direct
	// differential lives in runpath_differential_test.go).
	core.ForceEventEngine(true)
	defer core.ForceEventEngine(false)
	defer core.ForceHeapEngine(false)
	for _, e := range All() {
		t.Run(e.ID, func(t *testing.T) {
			core.ForceHeapEngine(false)
			out, err := e.Run(Quick)
			if err != nil {
				t.Fatalf("wheel: %v", err)
			}
			wheel := out.String()

			core.ForceHeapEngine(true)
			out, err = e.Run(Quick)
			core.ForceHeapEngine(false)
			if err != nil {
				t.Fatalf("heap: %v", err)
			}
			if heap := out.String(); heap != wheel {
				t.Errorf("figure differs between event queues:\n--- wheel ---\n%s\n--- heap ---\n%s",
					wheel, heap)
			}
		})
	}
}
