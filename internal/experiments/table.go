package experiments

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Table is a simple aligned text table used by every experiment's output.
type Table struct {
	Title   string
	Header  []string
	rows    [][]string
	Caption string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells beyond the header width are dropped, short
// rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v unless it is a float64, which is rendered with 3 decimals.
func (t *Table) AddRowf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.3f", v)
		default:
			out[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(out...)
}

// String renders the table. Column widths are computed in runes so that
// sparkline glyphs align.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - utf8.RuneCountInString(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}

// TSV renders the table as tab-separated values (header + rows, no title
// or caption) for plotting tools.
func (t *Table) TSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, "\t"))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// Tables groups several tables into one printable result.
type Tables []*Table

// String renders all tables separated by blank lines.
func (ts Tables) String() string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, "\n")
}

// TSV renders all tables' TSV separated by blank lines.
func (ts Tables) TSV() string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.TSV()
	}
	return strings.Join(parts, "\n")
}

// TSVer is implemented by experiment results that can emit plot-ready
// tab-separated data (both Table and Tables do).
type TSVer interface {
	TSV() string
}
