package experiments

import (
	"fmt"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/geo"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
)

func init() {
	register(Experiment{
		ID:    "x05-checkpoint",
		Title: "Extension: spot checkpoint/restart trade-off (§4.2.4 future work)",
		Run:   runX05Checkpoint,
	})
	register(Experiment{
		ID:    "x06-spatial",
		Title: "Extension: spatial + temporal shifting across regions (§2.1 future work)",
		Run:   runX06Spatial,
	})
}

// runX05Checkpoint explores the trade-off the paper identifies but defers:
// checkpointing overhead vs eviction rate vs recomputation. Replays the
// Figure-18 setting (Azure trace, SA-AU, Spot-First-Carbon-Time,
// J^max = 12 h) with checkpoint/restart enabled at various intervals.
func runX05Checkpoint(scale Scale) (fmt.Stringer, error) {
	carbonTr := regionTrace("SA-AU")
	jobs := yearTrace("azure", scale)
	evicts := []float64{0.05, 0.10, 0.15}
	intervals := []simtime.Duration{0, 30 * simtime.Minute, simtime.Hour, 2 * simtime.Hour, 6 * simtime.Hour}
	// Cell 0 is the NoWait baseline; the rest sweep (eviction, interval).
	cells := []cell{{core.Config{Policy: policy.NoWait{}, Carbon: carbonTr, Horizon: horizon(scale)}, jobs}}
	for _, evict := range evicts {
		for _, interval := range intervals {
			cells = append(cells, cell{core.Config{
				Policy:             policy.CarbonTime{},
				Carbon:             carbonTr,
				Horizon:            horizon(scale),
				SpotMaxLen:         12 * simtime.Hour,
				EvictionRate:       evict,
				Seed:               seedEviction,
				CheckpointInterval: interval,
				CheckpointOverhead: 3 * simtime.Minute,
			}, jobs})
		}
	}
	results, err := runCells("x05-checkpoint", cells)
	if err != nil {
		return nil, err
	}
	base := results[0]
	t := NewTable("Extension x05 — checkpointed Spot-First-Carbon-Time (Azure, SA-AU, Jmax=12h, ckpt overhead 3min)",
		"evict%", "ckpt interval", "carbon(norm)", "cost(norm)", "wasted CPU·h", "evictions")
	idx := 1
	for _, evict := range evicts {
		for _, interval := range intervals {
			res := results[idx]
			idx++
			rel := res.CompareTo(base)
			wasted := res.TotalWastedCPUHours()
			label := "none"
			if interval > 0 {
				label = interval.String()
			}
			t.AddRowf(100*evict, label, rel.Carbon, rel.Cost, wasted, res.TotalEvictions())
		}
	}
	t.Caption = "expectation: checkpointing recovers most of the eviction losses of Figure 18; very short intervals pay overhead, very long ones recompute — a shallow optimum between"
	return t, nil
}

// runX06Spatial quantifies the future work the paper's §2.1 defers:
// combining temporal shifting with region choice. Compares each
// single-region Carbon-Time deployment against the spatial scheduler
// choosing per job among all five evaluation regions.
func runX06Spatial(scale Scale) (fmt.Stringer, error) {
	jobs := yearTrace("alibaba", scale)
	t := NewTable("Extension x06 — temporal-only vs spatial+temporal (Alibaba, Carbon-Time)",
		"deployment", "carbon(kg)", "vs dirtiest", "wait(h)")
	var regions []*carbon.Trace
	var cells []cell
	for _, code := range evaluationRegions() {
		tr := regionTrace(code)
		regions = append(regions, tr)
		cells = append(cells, cell{core.Config{Policy: policy.CarbonTime{}, Carbon: tr, Horizon: horizon(scale)}, jobs})
	}
	results, err := runCells("x06-spatial", cells)
	if err != nil {
		return nil, err
	}
	worst := 0.0
	type row struct {
		name string
		kg   float64
		wait float64
	}
	var rows []row
	for i, code := range evaluationRegions() {
		res := results[i]
		rows = append(rows, row{code + " only", res.TotalCarbonKg(), res.MeanWaiting().Hours()})
		if res.TotalCarbonKg() > worst {
			worst = res.TotalCarbonKg()
		}
	}
	multi, err := geo.Run(geo.Config{
		Policy:  policy.CarbonTime{},
		Regions: regions,
		Horizon: horizon(scale),
	}, jobs)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row{"spatial (all 5)", multi.TotalCarbon() / 1000, multi.MeanWaiting().Hours()})
	for _, r := range rows {
		t.AddRowf(r.name, r.kg, r.kg/worst, r.wait)
	}
	shares := multi.JobShare()
	parts := ""
	for i, code := range evaluationRegions() {
		if i > 0 {
			parts += ", "
		}
		parts += fmt.Sprintf("%s %.0f%%", code, 100*shares[i])
	}
	t.Caption = "spatial placement shares: " + parts +
		" — region choice dominates temporal shifting, which is why the paper scopes to one region and why related work treats them separately"
	return t, nil
}
