package experiments

import (
	"fmt"

	"github.com/carbonsched/gaia/internal/batch"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
)

func init() {
	register(Experiment{
		ID:    "x04-prototype",
		Title: "Validation: GAIA-Simulator vs the node-level prototype runtime",
		Run:   runX04Prototype,
	})
}

// runX04Prototype reproduces the paper's dual methodology (§5): the same
// policies run through the idealized GAIA-Simulator (internal/core) and
// through the ParallelCluster-like prototype runtime (internal/batch) that
// models node boot delays, idle timeouts and whole-lifetime billing. The
// paper argues normalized metrics let the simulator neglect these
// overheads — this experiment quantifies exactly how much the overheads
// shift absolute and normalized numbers.
func runX04Prototype(Scale) (fmt.Stringer, error) {
	tr, err := prototypeCarbon()
	if err != nil {
		return nil, err
	}
	jobs := prototypeWeek()
	rHalf, _ := weekReserved()

	type pair struct {
		name string
		p    policy.Policy
	}
	policies := []pair{
		{"NoWait", policy.NoWait{}},
		{"Lowest-Window", policy.LowestWindow{}},
		{"WaitAwhile", policy.WaitAwhile{}},
		{"Carbon-Time", policy.CarbonTime{}},
	}

	t := NewTable("Extension x04 — simulator vs prototype (week trace, SA-AU, R="+fmt.Sprint(rHalf)+")",
		"policy", "runtime", "carbon(kg)", "cost($)", "wait(h)", "nodes")
	var simBase, protoBase float64
	for i, pp := range policies {
		simRes, err := core.Run(core.Config{
			Policy:   pp.p,
			Carbon:   tr,
			Reserved: rHalf,
			Horizon:  10 * simtime.Day,
		}, jobs)
		if err != nil {
			return nil, err
		}
		protoRes, err := batch.Run(batch.Config{
			Policy:        pp.p,
			Carbon:        tr,
			ReservedNodes: rHalf,
			Horizon:       10 * simtime.Day,
			Seed:          seedEviction,
		}, jobs)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			simBase, protoBase = simRes.TotalCarbon(), protoRes.CarbonG
		}
		t.AddRowf(pp.name, "simulator",
			simRes.TotalCarbonKg(), simRes.TotalCost(), simRes.MeanWaiting().Hours(), "-")
		t.AddRowf(pp.name, "prototype",
			protoRes.CarbonKg(), protoRes.Cost, protoRes.MeanWaiting().Hours(),
			protoRes.NodesLaunched)
		if i == len(policies)-1 {
			simNorm := simRes.TotalCarbon() / simBase
			protoNorm := protoRes.CarbonG / protoBase
			t.Caption = fmt.Sprintf(
				"normalized Carbon-Time carbon: simulator %.3f vs prototype %.3f — overheads (boot, idle tails, node churn) raise absolutes but barely move normalized results, the paper's justification for simulator-scale studies. Note WaitAwhile's node churn: suspend-resume fragments demand into many short allocations, the §6.3.1 cost mechanism",
				simNorm, protoNorm)
		}
	}
	return t, nil
}
