package experiments

// Shape-regression tests: the paper's qualitative claims, asserted on
// quick-scale runs. These guard the reproduction itself — if a refactor
// flips an ordering or erases a trade-off, these fail even though every
// unit test still passes.

import (
	"math"
	"testing"

	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/metrics"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
)

func mustRun(t *testing.T, cfg core.Config) *metrics.Result {
	t.Helper()
	res, err := core.Run(cfg, prototypeWeek())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func weekCfg(t *testing.T, p policy.Policy) core.Config {
	t.Helper()
	tr, err := prototypeCarbon()
	if err != nil {
		t.Fatal(err)
	}
	return core.Config{Policy: p, Carbon: tr, Horizon: 10 * simtime.Day, Seed: seedEviction}
}

// Figure 8's ordering: WaitAwhile ≤ Ecovisor ≤ Lowest-Window ≤
// Lowest-Slot < NoWait on carbon; Carbon-Time waits less than
// Lowest-Window and WaitAwhile.
func TestShapeFig08PolicyOrdering(t *testing.T) {
	carbonOf := func(p policy.Policy) float64 {
		return mustRun(t, weekCfg(t, p)).TotalCarbon()
	}
	noWait := carbonOf(policy.NoWait{})
	lowestSlot := carbonOf(policy.LowestSlot{})
	lowestWindow := carbonOf(policy.LowestWindow{})
	ecovisor := carbonOf(policy.Ecovisor{})
	waitAwhile := carbonOf(policy.WaitAwhile{})
	if !(waitAwhile < ecovisor && ecovisor < lowestWindow && lowestWindow < lowestSlot && lowestSlot < noWait) {
		t.Errorf("carbon ordering violated: WA=%v Eco=%v LW=%v LS=%v NW=%v",
			waitAwhile, ecovisor, lowestWindow, lowestSlot, noWait)
	}
	ctWait := mustRun(t, weekCfg(t, policy.CarbonTime{})).MeanWaiting()
	lwWait := mustRun(t, weekCfg(t, policy.LowestWindow{})).MeanWaiting()
	waWait := mustRun(t, weekCfg(t, policy.WaitAwhile{})).MeanWaiting()
	if ctWait >= lwWait || ctWait >= waWait {
		t.Errorf("Carbon-Time should wait least among carbon policies: CT=%v LW=%v WA=%v",
			ctWait, lwWait, waWait)
	}
}

// Figure 11's three curves: as reserved capacity grows, cost falls to a
// valley then rises, carbon increases monotonically (within tolerance),
// and waiting decreases monotonically.
func TestShapeFig11ReservedSweep(t *testing.T) {
	demand := prototypeWeek().MeanDemand(simtime.Week)
	var costs, carbons, waits []float64
	var rs []int
	for frac := 0.0; frac <= 1.51; frac += 0.25 {
		cfg := weekCfg(t, policy.CarbonTime{})
		cfg.Reserved = int(math.Round(frac * demand))
		cfg.WorkConserving = true
		res := mustRun(t, cfg)
		rs = append(rs, cfg.Reserved)
		costs = append(costs, res.TotalCost())
		carbons = append(carbons, res.TotalCarbon())
		waits = append(waits, res.MeanWaiting().Hours())
	}
	// Valley: minimum cost strictly inside the sweep.
	minIdx := 0
	for i, c := range costs {
		if c < costs[minIdx] {
			minIdx = i
		}
	}
	if minIdx == 0 || minIdx == len(costs)-1 {
		t.Errorf("cost valley at sweep edge (idx %d of %d): %v", minIdx, len(costs), costs)
	}
	// The valley sits between half the mean demand and 1.25x of it.
	if r := float64(rs[minIdx]); r < 0.5*demand || r > 1.25*demand {
		t.Errorf("valley at R=%v, demand %v", r, demand)
	}
	for i := 1; i < len(carbons); i++ {
		if carbons[i] < carbons[i-1]*0.99 {
			t.Errorf("carbon should rise with R: %v", carbons)
			break
		}
	}
	for i := 1; i < len(waits); i++ {
		if waits[i] > waits[i-1]+0.05 {
			t.Errorf("waiting should fall with R: %v", waits)
			break
		}
	}
}

// Figure 12/18's spot arithmetic: with zero evictions, Spot-First keeps
// carbon identical and strictly cuts cost; with heavy evictions, longer
// spot exposure raises carbon.
func TestShapeSpotTradeoffs(t *testing.T) {
	plain := mustRun(t, weekCfg(t, policy.CarbonTime{}))
	spotCfg := weekCfg(t, policy.CarbonTime{})
	spotCfg.SpotMaxLen = 2 * simtime.Hour
	spot := mustRun(t, spotCfg)
	if math.Abs(spot.TotalCarbon()-plain.TotalCarbon()) > 1e-6 {
		t.Errorf("zero-eviction spot must not change carbon: %v vs %v",
			spot.TotalCarbon(), plain.TotalCarbon())
	}
	if spot.TotalCost() >= plain.TotalCost() {
		t.Errorf("spot should cut cost: %v vs %v", spot.TotalCost(), plain.TotalCost())
	}
	// Evictions: longer Jmax ⇒ more carbon at a 15% hourly rate.
	carbonAt := func(jmax simtime.Duration) float64 {
		cfg := weekCfg(t, policy.CarbonTime{})
		cfg.SpotMaxLen = jmax
		cfg.EvictionRate = 0.15
		return mustRun(t, cfg).TotalCarbon()
	}
	if carbonAt(24*simtime.Hour) <= carbonAt(2*simtime.Hour) {
		t.Error("longer spot exposure should raise carbon under evictions")
	}
}

// Figure 14's diminishing returns: quadrupling the long-queue wait from
// 24h to 96h must raise savings by less than the first 24h did.
func TestShapeFig14DiminishingReturns(t *testing.T) {
	carbonAt := func(wLong simtime.Duration) float64 {
		cfg := weekCfg(t, policy.LowestWindow{})
		cfg.WaitLong = wLong
		return mustRun(t, cfg).TotalCarbon()
	}
	base := carbonAt(-1) // zero wait
	at24 := carbonAt(24 * simtime.Hour)
	at96 := carbonAt(96 * simtime.Hour)
	firstGain := base - at24
	extraGain := at24 - at96
	if firstGain <= 0 {
		t.Fatalf("waiting 24h should save carbon: %v -> %v", base, at24)
	}
	if extraGain > firstGain {
		t.Errorf("returns should diminish: first 24h saved %v, next 72h saved %v", firstGain, extraGain)
	}
}

// The headline claim: RES-First-Carbon-Time earns more carbon saving per
// percentage point of cost increase than plain Carbon-Time (both measured
// against the cost-optimal AllWait-Threshold and carbon baseline NoWait).
func TestShapeHeadlineSavingsPerCostPoint(t *testing.T) {
	demand := prototypeWeek().MeanDemand(simtime.Week)
	r := int(math.Round(demand / 2))
	mk := func(p policy.Policy, wc bool) *metrics.Result {
		cfg := weekCfg(t, p)
		cfg.Reserved = r
		cfg.WorkConserving = wc
		return mustRun(t, cfg)
	}
	noWait := mk(policy.NoWait{}, false)
	allWait := mk(policy.AllWait{}, true)
	carbonTime := mk(policy.CarbonTime{}, false)
	resFirst := mk(policy.CarbonTime{}, true)

	ratio := func(res *metrics.Result) float64 {
		saving := 1 - res.TotalCarbon()/noWait.TotalCarbon()
		costInc := res.TotalCost()/allWait.TotalCost() - 1
		if costInc <= 0 {
			return math.Inf(1)
		}
		return saving / costInc
	}
	ct, rf := ratio(carbonTime), ratio(resFirst)
	if rf < 1.5*ct {
		t.Errorf("RES-First savings/cost-point = %v, want ≥1.5x Carbon-Time's %v", rf, ct)
	}
}
