package experiments

import (
	"testing"

	"github.com/carbonsched/gaia/internal/core"
)

// TestFiguresIdenticalAcrossRetentionModes pins the streaming metrics
// engine against the figure suite: every registered experiment rendered
// with the default streaming scheduler must be byte-identical to the same
// experiment with full per-job retention forced on. This is the contract
// that lets the scheduler drop per-job records by default — no figure can
// tell the modes apart.
func TestFiguresIdenticalAcrossRetentionModes(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the full quick-scale figure suite twice")
	}
	defer core.ForceRetainJobs(false)
	for _, e := range All() {
		t.Run(e.ID, func(t *testing.T) {
			core.ForceRetainJobs(false)
			out, err := e.Run(Quick)
			if err != nil {
				t.Fatalf("streaming: %v", err)
			}
			streaming := out.String()

			core.ForceRetainJobs(true)
			out, err = e.Run(Quick)
			core.ForceRetainJobs(false)
			if err != nil {
				t.Fatalf("retained: %v", err)
			}
			if retained := out.String(); retained != streaming {
				t.Errorf("figure differs between modes:\n--- streaming ---\n%s\n--- retained ---\n%s",
					streaming, retained)
			}
		})
	}
}
