package experiments

import (
	"testing"

	"github.com/carbonsched/gaia/internal/runcache"
)

// TestCellStatsPlanTotals pins the cell accounting around the plan tier:
// every outcome lands in its own counter, plan outcomes participate in
// Total and DecisionsAvoided but never in Avoided (the replay still ran),
// and merged per-figure stats sum field-wise.
func TestCellStatsPlanTotals(t *testing.T) {
	var s CellStats
	outcomes := []runcache.Outcome{
		runcache.Computed, runcache.Computed,
		runcache.Hit,
		runcache.Dedup,
		runcache.DiskHit,
		runcache.Bypass,
		runcache.PlanHit, runcache.PlanHit, runcache.PlanHit,
		runcache.PlanDiskHit,
	}
	for _, o := range outcomes {
		s.add(o)
	}
	if s.PlanHits != 3 || s.PlanDiskHits != 1 {
		t.Errorf("plan counters = %d/%d, want 3/1", s.PlanHits, s.PlanDiskHits)
	}
	if got := s.Total(); got != len(outcomes) {
		t.Errorf("Total() = %d, want %d", got, len(outcomes))
	}
	if got := s.Avoided(); got != 3 {
		t.Errorf("Avoided() = %d, want 3 (plan outcomes must not count)", got)
	}
	if got := s.DecisionsAvoided(); got != 4 {
		t.Errorf("DecisionsAvoided() = %d, want 4", got)
	}

	other := CellStats{Computed: 1, Bypassed: 2, Hits: 3, Dedups: 4,
		DiskHits: 5, PlanHits: 6, PlanDiskHits: 7}
	merged := s
	merged.merge(other)
	want := CellStats{
		Computed: s.Computed + 1, Bypassed: s.Bypassed + 2,
		Hits: s.Hits + 3, Dedups: s.Dedups + 4, DiskHits: s.DiskHits + 5,
		PlanHits: s.PlanHits + 6, PlanDiskHits: s.PlanDiskHits + 7,
	}
	if merged != want {
		t.Errorf("merge = %+v, want %+v", merged, want)
	}

	// The cross-figure snapshot totals must fold plan outcomes the same
	// way.
	ResetCacheStats()
	defer ResetCacheStats()
	recordOutcome("figA", runcache.PlanHit)
	recordOutcome("figA", runcache.Computed)
	recordOutcome("figB", runcache.PlanDiskHit)
	ids, byFigure, total := CacheStats()
	if len(ids) != 2 || ids[0] != "figA" || ids[1] != "figB" {
		t.Fatalf("ids = %v, want [figA figB]", ids)
	}
	if byFigure["figA"].PlanHits != 1 || byFigure["figB"].PlanDiskHits != 1 {
		t.Errorf("per-figure plan counters wrong: %+v", byFigure)
	}
	if total.DecisionsAvoided() != 2 || total.Total() != 3 {
		t.Errorf("totals = %+v, want 2 decisions avoided of 3 cells", total)
	}
}
