// Package experiments regenerates every table and figure of the paper's
// evaluation (Figures 1-2 and 5-20) on the GAIA simulator with the
// synthetic trace substitutes documented in DESIGN.md. Each experiment
// returns a printable result whose rows mirror the paper's series; the
// absolute numbers depend on the synthetic substrates, but the shape —
// who wins, by roughly what factor, where the crossovers fall — is the
// reproduction target recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
)

// Experiment is one reproducible figure.
type Experiment struct {
	// ID is the figure identifier, e.g. "fig08".
	ID string
	// Title summarizes what the figure shows.
	Title string
	// Run executes the experiment at the given scale and returns a
	// printable result.
	Run func(scale Scale) (fmt.Stringer, error)
}

// Scale selects how much work an experiment does. Quick runs use shorter
// horizons and fewer jobs (for tests and -bench on laptops); Full runs the
// paper-scale year-long 100k-job configurations.
type Scale int

// Supported scales.
const (
	// Quick is a reduced-size run for tests and benchmarks: ~60-day
	// horizons and proportionally fewer jobs. Shapes are preserved.
	Quick Scale = iota
	// Full is the paper-scale configuration (year-long, ~100k jobs).
	Full
)

// String returns "quick" or "full".
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment by its identifier.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(registry))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}
