package experiments

import (
	"testing"

	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/runcache"
)

// TestFiguresIdenticalElasticDegenerate pins the elastic machinery's
// degenerate contract against the whole figure suite: with
// ForceElasticDegenerate on, every rigid config is wrapped in a
// single-replica flat-curve ElasticTrace before running, and every figure
// must still render byte-identically — with the cache disabled and with a
// cache set (the force seam spoils fingerprints, so the second pass also
// proves forced runs never answer from or poison a live cache). This is
// the figure-level face of the core package's degenerate differential:
// jobs whose contract is rigid must be untouchable by the elastic path.
func TestFiguresIdenticalElasticDegenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the full quick-scale figure suite four times")
	}
	prev := ActiveCache()
	defer SetCache(prev)
	defer core.ForceElasticDegenerate(false)

	SetCache(nil)
	core.ForceElasticDegenerate(false)
	want := renderAll(t, "rigid, cache off")

	compare := func(label string, got map[string]string) {
		t.Helper()
		for id, text := range want {
			if got[id] != text {
				t.Errorf("%s: %s differs from rigid render:\n--- rigid ---\n%s\n--- %s ---\n%s",
					id, label, text, label, got[id])
			}
		}
	}

	core.ForceElasticDegenerate(true)
	compare("degenerate wrap, cache off", renderAll(t, "degenerate wrap, cache off"))

	// A live cache must not change anything: the seam makes every cell
	// non-fingerprintable, so these renders simulate end to end too.
	SetCache(runcache.New())
	compare("degenerate wrap, cache on", renderAll(t, "degenerate wrap, cache on"))

	// The cache warmed while the seam was up must not have stored forced
	// results: a rigid render against it has to stay byte-identical.
	core.ForceElasticDegenerate(false)
	compare("rigid, warm cache", renderAll(t, "rigid, warm cache"))
}
