package experiments

import (
	"testing"

	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/runcache"
)

// renderAll renders every registered experiment at quick scale and
// returns the outputs keyed by experiment ID.
func renderAll(t *testing.T, label string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(All()))
	for _, e := range All() {
		res, err := e.Run(Quick)
		if err != nil {
			t.Fatalf("%s (%s): %v", e.ID, label, err)
		}
		out[e.ID] = res.String()
	}
	return out
}

// TestFiguresIdenticalWithCache is the correctness bar of the simulation
// cache: the entire figure suite must render byte-identically with the
// cache off, cold, warm, and warm from a freshly written disk store. It
// also asserts the cache is actually doing something — cross-figure hits
// on the cold pass, memory hits on the warm pass, disk hits on the
// disk-warm pass — so a silently disabled cache fails loudly.
func TestFiguresIdenticalWithCache(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the full quick-scale figure suite five times")
	}
	prev := ActiveCache()
	defer SetCache(prev)
	defer ResetCacheStats()

	SetCache(nil)
	want := renderAll(t, "cache off")

	compare := func(label string, got map[string]string) {
		t.Helper()
		for id, text := range want {
			if got[id] != text {
				t.Errorf("%s: %s differs from cache-off render:\n--- cache off ---\n%s\n--- %s ---\n%s",
					id, label, text, label, got[id])
			}
		}
	}

	// Cold and warm passes over one in-memory cache.
	SetCache(runcache.New())
	ResetCacheStats()
	compare("cache cold", renderAll(t, "cache cold"))
	if _, _, total := CacheStats(); total.Hits == 0 {
		t.Error("cold pass: expected cross-figure cache hits, got none")
	} else if total.Computed == 0 {
		t.Error("cold pass: expected computed cells, got none")
	} else if total.PlanHits == 0 {
		// Reserved sweeps and the carbon-tax schedule/bill pairs differ
		// only in accounting knobs; the plan tier must be sharing their
		// decide phases even on a cold cache.
		t.Error("cold pass: expected decision-plan hits, got none")
	}
	ResetCacheStats()
	compare("cache warm", renderAll(t, "cache warm"))
	if _, _, total := CacheStats(); total.Computed != 0 {
		t.Errorf("warm pass: %d cells re-simulated, want 0", total.Computed)
	}

	// Disk tier: one cache writes the store, a fresh one warms from it.
	dir := t.TempDir()
	seed := runcache.New()
	seed.Logf = t.Logf
	if err := seed.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	SetCache(seed)
	ResetCacheStats()
	compare("disk cold", renderAll(t, "disk cold"))

	fresh := runcache.New()
	fresh.Logf = t.Logf
	if err := fresh.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	SetCache(fresh)
	ResetCacheStats()
	compare("disk warm", renderAll(t, "disk warm"))
	if _, _, total := CacheStats(); total.DiskHits == 0 {
		t.Error("disk-warm pass: expected disk hits, got none")
	} else if total.Computed != 0 {
		t.Errorf("disk-warm pass: %d cells re-simulated, want 0", total.Computed)
	}
}

// TestReservedSweepSharesPlans is the plan-reuse smoke (wired into
// `make bench-quick`): a reserved-size sweep through a fresh cache decides
// exactly once, replays every other cell from the shared plan, and renders
// byte-identically to uncached runs; a second process over the same disk
// store replays a disjoint sweep from the persisted plan.
func TestReservedSweepSharesPlans(t *testing.T) {
	prev := ActiveCache()
	defer SetCache(prev)
	defer ResetCacheStats()

	tr, err := prototypeCarbon()
	if err != nil {
		t.Fatal(err)
	}
	jobs := prototypeWeek()
	cells := make([]cell, 0, 8)
	for r := 0; r < 8; r++ {
		cfg := weekConfig(policy.CarbonTime{}, tr)
		cfg.Reserved = r * 10
		cells = append(cells, cell{cfg, jobs})
	}

	SetCache(nil)
	want, err := runCells("plan-smoke", cells)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cold := runcache.New()
	cold.Logf = t.Logf
	if err := cold.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	SetCache(cold)
	ResetCacheStats()
	got, err := runCells("plan-smoke", cells)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].String() != want[i].String() {
			t.Errorf("cell %d differs from uncached render:\n%s\nvs\n%s", i, got[i], want[i])
		}
	}
	_, _, total := CacheStats()
	if total.PlanHits != len(cells)-1 || total.Computed != 1 {
		t.Errorf("cold sweep: %d computed + %d plan hits, want 1 + %d (stats %+v)",
			total.Computed, total.PlanHits, len(cells)-1, total)
	}

	// A fresh cache over the same store, sweeping reserved sizes nobody
	// computed: every cell replays the plan decoded from disk.
	warm := runcache.New()
	warm.Logf = t.Logf
	if err := warm.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	SetCache(warm)
	ResetCacheStats()
	disjoint := make([]cell, len(cells))
	for i, c := range cells {
		c.cfg.Reserved += 25
		disjoint[i] = c
	}
	fresh, err := runCells("plan-smoke", disjoint)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh {
		ref, err := core.Run(disjoint[i].cfg, disjoint[i].jobs)
		if err != nil {
			t.Fatal(err)
		}
		if fresh[i].String() != ref.String() {
			t.Errorf("disk-replayed cell %d differs from direct run", i)
		}
	}
	if _, _, total := CacheStats(); total.PlanDiskHits == 0 {
		t.Errorf("disjoint sweep: expected plan disk hits, got %+v", total)
	} else if total.Computed != 0 {
		t.Errorf("disjoint sweep: %d cells re-decided, want 0 (stats %+v)", total.Computed, total)
	}
}
