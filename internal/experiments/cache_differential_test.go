package experiments

import (
	"testing"

	"github.com/carbonsched/gaia/internal/runcache"
)

// renderAll renders every registered experiment at quick scale and
// returns the outputs keyed by experiment ID.
func renderAll(t *testing.T, label string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(All()))
	for _, e := range All() {
		res, err := e.Run(Quick)
		if err != nil {
			t.Fatalf("%s (%s): %v", e.ID, label, err)
		}
		out[e.ID] = res.String()
	}
	return out
}

// TestFiguresIdenticalWithCache is the correctness bar of the simulation
// cache: the entire figure suite must render byte-identically with the
// cache off, cold, warm, and warm from a freshly written disk store. It
// also asserts the cache is actually doing something — cross-figure hits
// on the cold pass, memory hits on the warm pass, disk hits on the
// disk-warm pass — so a silently disabled cache fails loudly.
func TestFiguresIdenticalWithCache(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the full quick-scale figure suite five times")
	}
	prev := ActiveCache()
	defer SetCache(prev)
	defer ResetCacheStats()

	SetCache(nil)
	want := renderAll(t, "cache off")

	compare := func(label string, got map[string]string) {
		t.Helper()
		for id, text := range want {
			if got[id] != text {
				t.Errorf("%s: %s differs from cache-off render:\n--- cache off ---\n%s\n--- %s ---\n%s",
					id, label, text, label, got[id])
			}
		}
	}

	// Cold and warm passes over one in-memory cache.
	SetCache(runcache.New())
	ResetCacheStats()
	compare("cache cold", renderAll(t, "cache cold"))
	if _, _, total := CacheStats(); total.Hits == 0 {
		t.Error("cold pass: expected cross-figure cache hits, got none")
	} else if total.Computed == 0 {
		t.Error("cold pass: expected computed cells, got none")
	}
	ResetCacheStats()
	compare("cache warm", renderAll(t, "cache warm"))
	if _, _, total := CacheStats(); total.Computed != 0 {
		t.Errorf("warm pass: %d cells re-simulated, want 0", total.Computed)
	}

	// Disk tier: one cache writes the store, a fresh one warms from it.
	dir := t.TempDir()
	seed := runcache.New()
	seed.Logf = t.Logf
	if err := seed.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	SetCache(seed)
	ResetCacheStats()
	compare("disk cold", renderAll(t, "disk cold"))

	fresh := runcache.New()
	fresh.Logf = t.Logf
	if err := fresh.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	SetCache(fresh)
	ResetCacheStats()
	compare("disk warm", renderAll(t, "disk warm"))
	if _, _, total := CacheStats(); total.DiskHits == 0 {
		t.Error("disk-warm pass: expected disk hits, got none")
	} else if total.Computed != 0 {
		t.Errorf("disk-warm pass: %d cells re-simulated, want 0", total.Computed)
	}
}
