package experiments

import (
	"fmt"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/forecast"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// Extensions beyond the paper's figures: ablations of GAIA's assumptions
// (perfect forecasts, queue-average length estimates) and the paper's
// stated future work (suspend-resume without exact lengths). IDs sort
// after the figures as "x01"..."x03".

func init() {
	register(Experiment{
		ID:    "x01-forecast",
		Title: "Ablation: Carbon-Time savings under imperfect CI forecasts",
		Run:   runX01Forecast,
	})
	register(Experiment{
		ID:    "x02-estimates",
		Title: "Ablation: sensitivity of Lowest-Window/Carbon-Time to the Javg estimate",
		Run:   runX02Estimates,
	})
	register(Experiment{
		ID:    "x03-suspend",
		Title: "Extension: suspend-resume GAIA without exact job lengths (future work §4.1)",
		Run:   runX03Suspend,
	})
}

// runX01Forecast checks the paper's perfect-forecast assumption two ways:
// synthetic multiplicative noise growing with lead time, and a real
// trained forecaster (forecast.SeasonalNaive) that only sees past data.
func runX01Forecast(scale Scale) (fmt.Stringer, error) {
	tr := regionTrace("SA-AU")
	jobs := yearTrace("alibaba", scale)
	seasonal, err := forecast.NewSeasonalNaive(tr, 28, 0.9)
	if err != nil {
		return nil, err
	}

	t := NewTable("Extension x01 — Carbon-Time savings vs CIS quality (Alibaba, SA-AU)",
		"CIS", "carbon(norm)", "savings%", "wait(h)")
	rows := []struct {
		name string
		cis  carbon.Service
	}{
		{"perfect", carbon.NewPerfectService(tr)},
		{"noise 5%/day", carbon.NewNoisyService(tr, 0.05, seedCarbon+50)},
		{"noise 20%/day", carbon.NewNoisyService(tr, 0.20, seedCarbon+50)},
		{"noise 40%/day", carbon.NewNoisyService(tr, 0.40, seedCarbon+50)},
		{"seasonal-naive (trained)", seasonal},
	}
	// Cell 0 is the shared NoWait baseline (cacheable across figures);
	// the noisy/seasonal CIS rows bypass the cache by design.
	cells := []cell{{cfg: core.Config{Policy: policy.NoWait{}, Carbon: tr, Horizon: horizon(scale)}, jobs: jobs}}
	for _, r := range rows {
		cells = append(cells, cell{cfg: core.Config{
			Policy:  policy.CarbonTime{},
			Carbon:  tr,
			CIS:     r.cis,
			Horizon: horizon(scale),
		}, jobs: jobs})
	}
	results, err := runCells("x01-forecast", cells)
	if err != nil {
		return nil, err
	}
	base := results[0]
	for i, r := range rows {
		res := results[i+1]
		t.AddRowf(r.name,
			res.TotalCarbon()/base.TotalCarbon(),
			100*(1-res.TotalCarbon()/base.TotalCarbon()),
			res.MeanWaiting().Hours())
	}
	t.Caption = "expectation: savings degrade gracefully — most shifting targets the next diurnal trough, where forecast error is small"

	acc := NewTable("Forecaster accuracy (seasonal-naive, SA-AU)",
		"lead (h)", "MAPE", "RMSE (g/kWh)")
	for _, a := range seasonal.Evaluate([]int{1, 6, 12, 24, 48}) {
		acc.AddRowf(a.LeadHours, a.MAPE, a.RMSE)
	}
	return Tables{t, acc}, nil
}

// runX02Estimates perturbs the queue-average length estimate Javg that
// length-oblivious policies plan with, quantifying how coarse the
// "historical queue average" may be before savings collapse.
func runX02Estimates(scale Scale) (fmt.Stringer, error) {
	tr := regionTrace("SA-AU")
	jobs := yearTrace("alibaba", scale)
	trueShort := jobs.MeanLengthByQueue(workload.QueueShort)
	trueLong := jobs.MeanLengthByQueue(workload.QueueLong)
	scales := []float64{0.25, 0.5, 1, 2, 4}
	// Cell 0 is the shared NoWait baseline; then (LW, CT) per scale.
	cells := []cell{{cfg: core.Config{Policy: policy.NoWait{}, Carbon: tr, Horizon: horizon(scale)}, jobs: jobs}}
	for _, scaleF := range scales {
		override := map[workload.Queue]simtime.Duration{
			workload.QueueShort: simtime.Duration(float64(trueShort) * scaleF),
			workload.QueueLong:  simtime.Duration(float64(trueLong) * scaleF),
		}
		for _, p := range []policy.Policy{policy.LowestWindow{}, policy.CarbonTime{}} {
			cells = append(cells, cell{cfg: core.Config{
				Policy:            p,
				Carbon:            tr,
				Horizon:           horizon(scale),
				AvgLengthOverride: override,
			}, jobs: jobs})
		}
	}
	results, err := runCells("x02-estimates", cells)
	if err != nil {
		return nil, err
	}
	base := results[0]
	t := NewTable("Extension x02 — savings vs Javg estimate scale (Alibaba, SA-AU)",
		"Javg scale", "LW carbon(norm)", "CT carbon(norm)", "LW wait(h)", "CT wait(h)")
	for i, scaleF := range scales {
		lw, ct := results[1+2*i], results[2+2*i]
		t.AddRowf(scaleF,
			lw.TotalCarbon()/base.TotalCarbon(), ct.TotalCarbon()/base.TotalCarbon(),
			lw.MeanWaiting().Hours(), ct.MeanWaiting().Hours())
	}
	t.Caption = "expectation: robust to severalfold estimate error (mildly favouring under-estimates, whose shorter windows lock onto troughs) — why coarse queue averages suffice"
	return t, nil
}

// runX03Suspend evaluates the paper's future work: adding suspend-resume
// to GAIA's own (length-oblivious) scheduling. WaitAwhile-Est plans
// lowest-carbon slots for the queue-average length; the simulator adapts
// the plan to each job's true length.
func runX03Suspend(scale Scale) (fmt.Stringer, error) {
	tr := regionTrace("SA-AU")
	jobs := yearTrace("alibaba", scale)
	t := NewTable("Extension x03 — suspend-resume without exact lengths (Alibaba, SA-AU)",
		"policy", "knows J", "suspends", "carbon(norm)", "wait(h)")
	rows := []struct {
		p      policy.Policy
		knowsJ string
		susp   string
	}{
		{policy.CarbonTime{}, "avg", "no"},
		{policy.LowestWindow{}, "avg", "no"},
		{policy.WaitAwhileEst{}, "avg", "yes"},
		{policy.WaitAwhile{}, "exact", "yes"},
	}
	// Cell 0 is the shared NoWait baseline, then one cell per row.
	cells := []cell{{cfg: core.Config{Policy: policy.NoWait{}, Carbon: tr, Horizon: horizon(scale)}, jobs: jobs}}
	for _, r := range rows {
		cells = append(cells, cell{cfg: core.Config{Policy: r.p, Carbon: tr, Horizon: horizon(scale)}, jobs: jobs})
	}
	results, err := runCells("x03-suspend", cells)
	if err != nil {
		return nil, err
	}
	base := results[0]
	for i, r := range rows {
		res := results[i+1]
		t.AddRowf(res.Label, r.knowsJ, r.susp,
			res.TotalCarbon()/base.TotalCarbon(),
			res.MeanWaiting().Hours())
	}
	t.Caption = "expectation: estimate-based suspend-resume recovers a large share of exact WaitAwhile's extra savings over uninterruptible GAIA policies"
	return t, nil
}
