package experiments

import (
	"fmt"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/par"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/viz"
)

func init() {
	register(Experiment{
		ID:    "fig20",
		Title: "Carbon intensity vs energy price on an ERCOT-like grid",
		Run:   runFig20,
	})
}

// runFig20 reproduces Figure 20 (Discussion): two consecutive days of
// carbon intensity and wholesale energy price on a Texas-like grid,
// plus the year-long correlation coefficient (paper: 0.16). The point:
// on some days the price valley aligns with the carbon valley and a
// single schedule optimizes both; on others they conflict and private
// cloud operators face their own carbon-cost trade-off.
func runFig20(Scale) (fmt.Stringer, error) {
	ci, price := carbon.DefaultERCOTModel().Generate(24*365, seedCarbon+100)
	corr, err := carbon.CarbonPriceCorrelation(ci, price)
	if err != nil {
		return nil, err
	}

	// Find an aligned day followed closely by a conflicting day, like the
	// paper's June 7-8 pair.
	argminHour := func(day int, f func(h int) float64) int {
		best, bh := f(0), 0
		for h := 1; h < 24; h++ {
			if v := f(h); v < best {
				best, bh = v, h
			}
		}
		return bh
	}
	dayGap := func(day int) int {
		cMin := argminHour(day, func(h int) float64 { return ci.Value(day*24 + h) })
		pMin := argminHour(day, func(h int) float64 {
			return price.At(simtime.Time(simtime.Duration(day*24+h) * simtime.Hour))
		})
		d := cMin - pMin
		if d < 0 {
			d = -d
		}
		return d
	}
	// Scan all days' carbon-vs-price minima gaps in parallel, then pick
	// the first qualifying days in order (identical to a sequential scan).
	gaps, err := par.MapN(Parallelism(), 364, func(d int) (int, error) {
		return dayGap(d), nil
	})
	if err != nil {
		return nil, err
	}
	alignedDay, conflictDay := -1, -1
	for d, gap := range gaps {
		if gap <= 2 && alignedDay < 0 {
			alignedDay = d
		}
		if gap >= 8 && conflictDay < 0 {
			conflictDay = d
		}
		if alignedDay >= 0 && conflictDay >= 0 {
			break
		}
	}

	t := NewTable("Figure 20 — hourly carbon intensity and energy price (two illustrative days)",
		"day", "hour", "CI(g/kWh)", "price($/MWh)")
	for _, d := range []struct {
		label string
		day   int
	}{{"aligned", alignedDay}, {"conflict", conflictDay}} {
		if d.day < 0 {
			continue
		}
		for h := 0; h < 24; h += 3 {
			idx := d.day*24 + h
			t.AddRowf(d.label, h, ci.Value(idx),
				price.At(simtime.Time(simtime.Duration(idx)*simtime.Hour)))
		}
	}
	caption := fmt.Sprintf("year-long carbon-price correlation: %.3f (paper: 0.16); aligned day=%d conflict day=%d",
		corr, alignedDay, conflictDay)
	for _, d := range []struct {
		label string
		day   int
	}{{"aligned ", alignedDay}, {"conflict", conflictDay}} {
		if d.day < 0 {
			continue
		}
		ciVals := make([]float64, 24)
		prVals := make([]float64, 24)
		for h := 0; h < 24; h++ {
			idx := d.day*24 + h
			ciVals[h] = ci.Value(idx)
			prVals[h] = price.At(simtime.Time(simtime.Duration(idx) * simtime.Hour))
		}
		caption += fmt.Sprintf("\n%s day: CI %s  price %s",
			d.label, viz.Sparkline(ciVals), viz.Sparkline(prVals))
	}
	t.Caption = caption
	return t, nil
}
