package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig01", "fig02", "fig05", "fig06", "fig07", "fig08", "fig09",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig18", "fig19", "fig20",
		"x01-forecast", "x02-estimates", "x03-suspend", "x04-prototype",
		"x05-checkpoint", "x06-spatial", "x07-carbontax", "x08-scaling",
		"x09-elastic", "x10-dag",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig08")
	if err != nil || e.ID != "fig08" {
		t.Errorf("ByID = %+v, %v", e, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("scale names broken")
	}
}

// TestAllExperimentsRunQuick executes every figure at Quick scale and
// sanity-checks the output. This doubles as the integration test of the
// whole stack (policies × cloud options × accounting).
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still takes seconds")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(Quick)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			s := out.String()
			if len(s) < 50 {
				t.Fatalf("%s output suspiciously short:\n%s", e.ID, s)
			}
			if !strings.Contains(s, "Figure") && !strings.Contains(s, "Extension") {
				t.Errorf("%s output lacks a title", e.ID)
			}
		})
	}
}
