package experiments

import "testing"

// TestSweepDeterminism asserts the contract of the parallel sweep engine:
// a figure rendered with N workers is byte-identical to the sequential
// render, for any N. The sample covers the sweep shapes — a policy sweep
// (fig08), a baseline-plus-grid sweep (fig11), and a slack sweep (fig12).
func TestSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full quick-scale sweeps several times")
	}
	defer SetParallelism(0)
	// Disable the simulation cache: with it on, the repeated renders
	// would be served from memory and the worker pool under test would
	// never re-run a cell.
	prev := ActiveCache()
	SetCache(nil)
	defer SetCache(prev)
	ids := []string{"fig08", "fig11", "fig12"}
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		SetParallelism(1)
		out, err := e.Run(Quick)
		if err != nil {
			t.Fatalf("%s sequential: %v", id, err)
		}
		want := out.String()
		for _, workers := range []int{2, 8} {
			SetParallelism(workers)
			out, err := e.Run(Quick)
			if err != nil {
				t.Fatalf("%s at %d workers: %v", id, workers, err)
			}
			if got := out.String(); got != want {
				t.Errorf("%s at %d workers differs from sequential run:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					id, workers, want, got)
			}
		}
	}
}

// TestParallelismKnob covers the SetParallelism/Parallelism pair.
func TestParallelismKnob(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Errorf("Parallelism() = %d, want 3", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got != 0 {
		t.Errorf("Parallelism() = %d, want 0 (auto)", got)
	}
	SetParallelism(-4)
	if got := Parallelism(); got != 0 {
		t.Errorf("Parallelism(-4) = %d, want 0 (auto)", got)
	}
}
