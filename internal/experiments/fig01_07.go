package experiments

import (
	"fmt"
	"math/rand"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/core"
	"github.com/carbonsched/gaia/internal/policy"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/viz"
	"github.com/carbonsched/gaia/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig01",
		Title: "Grid carbon intensity for three regions: diurnal and spatial variation",
		Run:   runFig01,
	})
	register(Experiment{
		ID:    "fig02",
		Title: "The carbon/cost/completion tension of Wait Awhile on the Section-3 workload",
		Run:   runFig02,
	})
	register(Experiment{
		ID:    "fig05",
		Title: "Job length and CPU demand distributions of the sampled Alibaba-PAI traces",
		Run:   runFig05,
	})
	register(Experiment{
		ID:    "fig06",
		Title: "Carbon intensity classification across cloud regions",
		Run:   runFig06,
	})
	register(Experiment{
		ID:    "fig07",
		Title: "Monthly mean carbon intensity, California vs South Australia",
		Run:   runFig07,
	})
}

// runFig01 reproduces Figure 1: three days of CI for California, Ontario
// and the Netherlands, with the paper's headline variation factors
// (up to 3.37× temporal within a region, ≈9× spatial across regions).
func runFig01(Scale) (fmt.Stringer, error) {
	regions := []string{"CA-US", "ON-CA", "NL"}
	t := NewTable("Figure 1 — three-day carbon intensity by region (g·CO2eq/kWh)",
		"region", "mean", "min", "max", "peak/trough", "shape (72h)")
	window := simtime.Interval{Start: 0, End: simtime.Time(3 * simtime.Day)}
	var meanMin, meanMax float64
	// Search the year for each region's widest 3-day swing, like the
	// paper's hand-picked illustrative days.
	for _, code := range regions {
		tr := regionTrace(code)
		bestRatio, bestDay := 0.0, 0
		for day := 0; day+3 <= 365; day++ {
			iv := simtime.Interval{
				Start: simtime.Time(simtime.Duration(day) * simtime.Day),
				End:   simtime.Time(simtime.Duration(day+3) * simtime.Day),
			}
			if r := tr.PeakToTrough(iv); r > bestRatio {
				bestRatio, bestDay = r, day
			}
		}
		iv := simtime.Interval{
			Start: simtime.Time(simtime.Duration(bestDay) * simtime.Day),
			End:   simtime.Time(simtime.Duration(bestDay+3) * simtime.Day),
		}
		sub, err := tr.Slice(bestDay*24, (bestDay+3)*24)
		if err != nil {
			return nil, err
		}
		s := sub.Summary()
		mean := tr.MeanOver(window)
		if meanMin == 0 || mean < meanMin {
			meanMin = mean
		}
		if mean > meanMax {
			meanMax = mean
		}
		t.AddRowf(code, s.Mean, s.Min, s.Max, tr.PeakToTrough(iv),
			viz.Sparkline(viz.Downsample(sub.Values(), 36)))
	}
	t.Caption = fmt.Sprintf("spatial variation (max/min regional mean over the window): %.2fx (paper: ~9x; temporal paper: up to 3.37x)",
		meanMax/meanMin)
	return t, nil
}

// runFig02 reproduces the Section-3/Figure-2 tension demo: a three-day
// Poisson workload (λ=48 min, J̄=4 h, 1 CPU) on 5 reserved instances, in
// California (February) and in low-variability Sweden. Paper: CA −36 %
// carbon, +68 % cost, +5.3 % completion; Sweden −4 % carbon, +76 % cost,
// 4.9× completion.
func runFig02(Scale) (fmt.Stringer, error) {
	// Slice February (+slack for windows) out of the year traces.
	febStart := simtime.MonthInterval(1).Start.HourIndex()
	caFeb, err := regionTrace("CA-US").Slice(febStart, febStart+9*24)
	if err != nil {
		return nil, err
	}
	seFeb, err := regionTrace("SE").Slice(febStart, febStart+9*24)
	if err != nil {
		return nil, err
	}

	jobs := workload.SectionThreeWorkload().Generate(
		rand.New(rand.NewSource(seedWorkload+20)), 3*simtime.Day)

	t := NewTable("Figure 2 — Wait Awhile vs NoWait, Section-3 workload, R=5",
		"region", "metric", "NoWait", "WaitAwhile", "ratio")
	for _, rc := range []struct {
		name  string
		trace *carbon.Trace
	}{{"CA-US(Feb)", caFeb}, {"SE(Feb)", seFeb}} {
		mk := func(p policy.Policy) core.Config {
			return core.Config{
				Policy:   p,
				Carbon:   rc.trace,
				Reserved: 5,
				// The example uses a 24 h maximum wait for all jobs.
				WaitShort: 24 * simtime.Hour,
				WaitLong:  24 * simtime.Hour,
				// Reserved capacity is paid over the experiment span
				// (3 days of arrivals plus the scheduling tail).
				Horizon: 5 * simtime.Day,
			}
		}
		base, err := core.Run(mk(policy.NoWait{}), jobs)
		if err != nil {
			return nil, err
		}
		wa, err := core.Run(mk(policy.WaitAwhile{}), jobs)
		if err != nil {
			return nil, err
		}
		rel := wa.CompareTo(base)
		t.AddRowf(rc.name, "carbon (kg)", base.TotalCarbonKg(), wa.TotalCarbonKg(), rel.Carbon)
		t.AddRowf(rc.name, "cost ($)", base.TotalCost(), wa.TotalCost(), rel.Cost)
		t.AddRowf(rc.name, "completion (h)", base.MeanCompletion().Hours(), wa.MeanCompletion().Hours(), rel.Completion)
		// Figure 2a's mechanism: the carbon-aware schedule concentrates
		// demand into low-CI spikes served by on-demand capacity.
		horizon := 5 * simtime.Day
		basePeak := base.PeakDemand(horizon)
		waPeak := wa.PeakDemand(horizon)
		t.AddRowf(rc.name, "peak demand", basePeak, waPeak, safeDiv(waPeak, basePeak))
	}
	t.Caption = "paper: CA-US 0.64x carbon, 1.68x cost, 1.053x completion; SE 0.96x carbon, 1.76x cost, 4.9x completion"
	return t, nil
}

// runFig05 reproduces Figure 5: job length and CPU demand distribution
// quantiles for the year-long (100k) and week-long (1k) Alibaba samples.
func runFig05(scale Scale) (fmt.Stringer, error) {
	year := yearTrace("alibaba", scale)
	week := prototypeWeek()
	lengths := NewTable("Figure 5a — job length CDF points (fraction of jobs ≤ x)",
		"trace", "≤10min", "≤1h", "≤3h", "≤12h", "≤24h", "≤72h")
	demands := NewTable("Figure 5b — CPU demand CDF points (fraction of jobs ≤ x)",
		"trace", "≤1", "≤2", "≤4", "≤10", "≤100")
	for _, tc := range []struct {
		name  string
		trace *workload.Trace
	}{{"year-100k", year}, {"week-1k", week}} {
		lc := tc.trace.LengthCDF()
		lengths.AddRowf(tc.name,
			lc.At(10), lc.At(60), lc.At(3*60), lc.At(12*60), lc.At(24*60), lc.At(72*60))
		cc := tc.trace.CPUCDF()
		demands.AddRowf(tc.name, cc.At(1), cc.At(2), cc.At(4), cc.At(10), cc.At(100))
	}
	demands.Caption = fmt.Sprintf(
		"week trace CPUs capped at 4 (prototype budget); year jobs=%d week jobs=%d",
		year.Len(), week.Len())
	return Tables{lengths, demands}, nil
}

// runFig06 reproduces Figure 6: the regions' mean CI and
// stability classification.
func runFig06(Scale) (fmt.Stringer, error) {
	t := NewTable("Figure 6 — carbon intensity across cloud regions (full year)",
		"region", "class", "mean", "std", "CV", "min", "max")
	for _, spec := range carbon.Regions() {
		s := regionTrace(spec.Code).Summary()
		t.AddRowf(spec.Code, spec.Class, s.Mean, s.Std, s.CV, s.Min, s.Max)
	}
	return t, nil
}

// runFig07 reproduces Figure 7: monthly mean CI for California and South
// Australia (whose mean roughly doubles July→December).
func runFig07(Scale) (fmt.Stringer, error) {
	ca := regionTrace("CA-US").MonthlyMeans()
	sa := regionTrace("SA-AU").MonthlyMeans()
	t := NewTable("Figure 7 — monthly mean carbon intensity (g/kWh)",
		"month", "CA-US", "SA-AU")
	months := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun",
		"Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	for m, name := range months {
		t.AddRowf(name, ca[m], sa[m])
	}
	t.Caption = fmt.Sprintf("SA-AU Dec/Jul ratio: %.2f (paper: ≈2)\nCA-US year %s\nSA-AU year %s",
		sa[11]/sa[6], viz.Sparkline(ca[:]), viz.Sparkline(sa[:]))
	return t, nil
}
