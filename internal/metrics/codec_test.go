package metrics

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"reflect"
	"testing"

	"github.com/carbonsched/gaia/internal/simtime"
)

// codecFixture builds an accumulator with every field exercised,
// including non-trivial float bit patterns and usage bins grown past the
// initial horizon.
func codecFixture() *Accumulator {
	a := NewAccumulator(5, 3*simtime.Hour)
	for i := 0; i < 5; i++ {
		a.AddJob(&JobResult{
			JobID:          i,
			Queue:          1,
			Waiting:        simtime.Duration(i * 17),
			Length:         simtime.Duration(100 + i),
			Carbon:         1.0 / float64(i+3),
			BaselineCarbon: math.Pi * float64(i),
			UsageCost:      0.0624 * float64(i),
			CPUHours:       [3]float64{float64(i), 0.5, 1e-9},
			Evictions:      i % 2,
			WastedCPUHours: 0.25,
			WastedCarbon:   0.125,
			WastedCost:     1e-3,
		})
	}
	a.AddUsage(simtime.Interval{Start: 30, End: 400}, 2, 1, 0)
	// Spill past the sized horizon so decoded bin growth is covered.
	a.AddUsage(simtime.Interval{Start: 200, End: 6*60 + 30}, 0, 0, 3)
	return a
}

// TestCodecRoundTrip pins the bit-exactness contract: a decoded
// accumulator is deep-equal to the original, private state included.
func TestCodecRoundTrip(t *testing.T) {
	a := codecFixture()
	data := EncodeAccumulator(a)
	got, err := DecodeAccumulator(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, a)
	}
}

// TestCodecRoundTripEmpty covers the zero-job, zero-horizon corner.
func TestCodecRoundTripEmpty(t *testing.T) {
	a := NewAccumulator(0, 0)
	got, err := DecodeAccumulator(EncodeAccumulator(a))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Errorf("round-trip mismatch: got %+v want %+v", got, a)
	}
}

// TestDecodeRejectsDamage feeds the decoder every class of bad input it
// must survive: truncations at each boundary, single-bit corruption,
// version/magic skew, and trailing garbage. All must error; none may
// panic or return a partial accumulator.
func TestDecodeRejectsDamage(t *testing.T) {
	data := EncodeAccumulator(codecFixture())

	if _, err := DecodeAccumulator(nil); err == nil {
		t.Error("nil input: want error")
	}
	for _, n := range []int{1, 7, 8, 16, 24, len(data) / 2, len(data) - 1} {
		if _, err := DecodeAccumulator(data[:n]); err == nil {
			t.Errorf("truncated to %d bytes: want error", n)
		}
	}
	for _, off := range []int{0, 8, 16, 24, len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		if _, err := DecodeAccumulator(bad); err == nil {
			t.Errorf("bit flip at offset %d: want error", off)
		}
	}
	if _, err := DecodeAccumulator(append(append([]byte(nil), data...), 0)); err == nil {
		t.Error("trailing garbage: want error")
	}
}

// appendCRC re-checksums a mutated body, producing a blob that passes the
// crc so the structural checks behind it are reached.
func appendCRC(body []byte) []byte {
	return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
}

// TestDecodeRejectsVersionSkew re-checksums otherwise valid blobs with a
// bumped version or magic byte, isolating those checks from the crc.
func TestDecodeRejectsVersionSkew(t *testing.T) {
	data := EncodeAccumulator(codecFixture())
	body := append([]byte(nil), data[:len(data)-4]...)
	body[8]++ // codec version field (first byte of the u64 after magic)
	if _, err := DecodeAccumulator(appendCRC(body)); err == nil {
		t.Error("bumped codec version: want error")
	}
	body2 := append([]byte(nil), data[:len(data)-4]...)
	body2[7]++ // magic generation byte
	if _, err := DecodeAccumulator(appendCRC(body2)); err == nil {
		t.Error("bumped magic generation: want error")
	}
	// A corrupted length prefix must be caught by the bounds check, not
	// drive a huge allocation: nJobs lives right after magic+version.
	body3 := append([]byte(nil), data[:len(data)-4]...)
	body3[16] = 0xFF
	body3[17] = 0xFF
	if _, err := DecodeAccumulator(appendCRC(body3)); err == nil {
		t.Error("corrupt job count: want error")
	}
}
