package metrics

import (
	"sync/atomic"

	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// Accumulator is the streaming metrics sink the scheduler feeds as jobs
// execute. It keeps, instead of per-job records:
//
//   - compact columnar (SoA) arrays indexed by job ID — waiting, length,
//     carbon, baseline carbon, usage cost, queue tag — the exact inputs of
//     the percentile, CDF and total queries, stored in ID order so every
//     derived float64 sum runs in the same deterministic order as a scan
//     over retained JobResult records and is bit-identical to it;
//   - fused scalar totals folded in as each job finishes (CPU·hours by
//     option, eviction counts, wasted work);
//   - hourly usage bins in integer minute-CPU units, an online replacement
//     for replaying every execution segment (UsageSeries): per-hour sums
//     of small integers are exact in float64, so the binned series equals
//     the segment replay bit for bit.
//
// At ~41 bytes per job this is what lets one binary serve million-job
// traces; full JobResult retention (~230 bytes per job plus segment
// slices) stays available behind core's RetainJobs flag.
type Accumulator struct {
	waitings  []simtime.Duration
	lengths   []simtime.Duration
	carbons   []float64
	baselines []float64
	costs     []float64
	queues    []uint8

	cpuHours                              [3]float64
	evictions                             int
	wastedCPUHours, wastedCarbon, wastedC float64

	// usage[option][hour] holds CPU·minutes of allocation in that hour.
	// The bins grow on demand past the initial horizon so execution
	// spilling over the accounting horizon is never silently dropped.
	usage [3][]int64
}

// NewAccumulator sizes the columns for a trace of n jobs (IDs 0..n-1) and
// the usage bins for the given accounting horizon.
func NewAccumulator(n int, horizon simtime.Duration) *Accumulator {
	a := &Accumulator{
		waitings:  make([]simtime.Duration, n),
		lengths:   make([]simtime.Duration, n),
		carbons:   make([]float64, n),
		baselines: make([]float64, n),
		costs:     make([]float64, n),
		queues:    make([]uint8, n),
	}
	slots := int(horizon / simtime.Hour)
	if slots < 0 {
		slots = 0
	}
	for o := range a.usage {
		a.usage[o] = make([]int64, slots)
	}
	return a
}

// JobCount returns the number of jobs the columns cover.
func (a *Accumulator) JobCount() int { return len(a.waitings) }

// AddJob folds one finished job's record into the columns and totals. It
// must be called exactly once per job, with rec.JobID in [0, n).
func (a *Accumulator) AddJob(rec *JobResult) {
	i := rec.JobID
	a.waitings[i] = rec.Waiting
	a.lengths[i] = rec.Length
	a.carbons[i] = rec.Carbon
	a.baselines[i] = rec.BaselineCarbon
	a.costs[i] = rec.UsageCost
	a.queues[i] = uint8(rec.Queue)
	for o := range a.cpuHours {
		a.cpuHours[o] += rec.CPUHours[o]
	}
	a.evictions += rec.Evictions
	a.wastedCPUHours += rec.WastedCPUHours
	a.wastedCarbon += rec.WastedCarbon
	a.wastedC += rec.WastedCost
}

// The sharded-fill API below decomposes AddJob for producers that compute
// per-job metrics out of finish order (core's direct-execution run path):
// PutJob writes the order-free ID-indexed columns, AddCPUHours folds the
// order-sensitive float totals, and AddUsageAtomic bins usage from
// concurrent shards. Splitting the fold out is what makes the
// decomposition exact: every float64 the accumulator ever sums across jobs
// is either stored per job (columns — summation order fixed at query time)
// or folded here by the caller in the engine's finish order, so a sharded
// fill is bit-identical to a sequential AddJob stream. The remaining
// totals (evictions, wasted work) are only ever incremented by zero in the
// configurations that shard (no spot, no evictions), so skipping them
// changes nothing.

// PutJob writes job i's order-free columns. Concurrent callers are safe
// iff they cover disjoint job IDs; each ID must be written exactly once.
func (a *Accumulator) PutJob(i int, waiting, length simtime.Duration, carbon, baseline float64, q workload.Queue) {
	a.waitings[i] = waiting
	a.lengths[i] = length
	a.carbons[i] = carbon
	a.baselines[i] = baseline
	a.queues[i] = uint8(q)
}

// PutCost writes job i's usage-cost column under the same disjoint-ID
// contract as PutJob.
func (a *Accumulator) PutCost(i int, cost float64) { a.costs[i] = cost }

// AddCPUHours folds one job's per-option CPU·hours into the running
// totals. Float addition is order-sensitive, so callers must invoke this
// sequentially in the exact finish order the event engine would produce.
func (a *Accumulator) AddCPUHours(h [3]float64) {
	for o := range a.cpuHours {
		a.cpuHours[o] += h[o]
	}
}

// GrowUsage extends the usage bins to cover an execution ending at end,
// replicating AddUsage's on-demand growth rule so a pre-grown accumulator
// is indistinguishable from one grown incrementally to the same maximum.
// Callers using AddUsageAtomic must pre-grow with the latest end they will
// bin — the atomic path cannot resize concurrently-shared slices.
func (a *Accumulator) GrowUsage(end simtime.Time) {
	e := int64(end)
	if e <= 0 {
		return
	}
	lastHour := int((e - 1) / 60)
	if need := lastHour + 1; need > len(a.usage[0]) {
		for o := range a.usage {
			a.usage[o] = append(a.usage[o], make([]int64, need-len(a.usage[o]))...)
		}
	}
}

// AddUsageAtomic is AddUsage for concurrent shards: identical binning
// arithmetic, but bin updates go through atomic adds. Integer addition
// commutes exactly, so any interleaving yields the same bins as the
// sequential calls. The bins must already cover the interval (GrowUsage);
// an out-of-range interval panics rather than silently dropping usage.
func (a *Accumulator) AddUsageAtomic(iv simtime.Interval, reserved, onDemand, spot int) {
	s, e := int64(iv.Start), int64(iv.End)
	if s < 0 {
		s = 0
	}
	if s >= e {
		return
	}
	lastHour := int((e - 1) / 60)
	if lastHour >= len(a.usage[0]) {
		panic("metrics: AddUsageAtomic past GrowUsage horizon")
	}
	var byOption [3]int
	byOption[cloud.Reserved] = reserved
	byOption[cloud.OnDemand] = onDemand
	byOption[cloud.Spot] = spot
	for o, units := range byOption {
		if units == 0 {
			continue
		}
		for h := int(s / 60); h <= lastHour; h++ {
			lo, hi := int64(h)*60, int64(h+1)*60
			if lo < s {
				lo = s
			}
			if hi > e {
				hi = e
			}
			atomic.AddInt64(&a.usage[o][h], int64(units)*(hi-lo))
		}
	}
}

// AddUsage bins one execution interval's allocation per purchase option —
// the streaming equivalent of appending a Segment. Units are CPU·minutes,
// so the hourly mean is an exact integer division by 60 at query time.
func (a *Accumulator) AddUsage(iv simtime.Interval, reserved, onDemand, spot int) {
	s, e := int64(iv.Start), int64(iv.End)
	if s < 0 {
		s = 0
	}
	if s >= e {
		return
	}
	lastHour := int((e - 1) / 60)
	if need := lastHour + 1; need > len(a.usage[0]) {
		for o := range a.usage {
			a.usage[o] = append(a.usage[o], make([]int64, need-len(a.usage[o]))...)
		}
	}
	var byOption [3]int
	byOption[cloud.Reserved] = reserved
	byOption[cloud.OnDemand] = onDemand
	byOption[cloud.Spot] = spot
	for o, units := range byOption {
		if units == 0 {
			continue
		}
		for h := int(s / 60); h <= lastHour; h++ {
			lo, hi := int64(h)*60, int64(h+1)*60
			if lo < s {
				lo = s
			}
			if hi > e {
				hi = e
			}
			a.usage[o][h] += int64(units) * (hi - lo)
		}
	}
}

// Queue returns job i's queue tag.
func (a *Accumulator) Queue(i int) workload.Queue { return workload.Queue(a.queues[i]) }
