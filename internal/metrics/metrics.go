// Package metrics defines the per-job and cluster-level accounting records
// the GAIA simulator produces, and the aggregations the paper's evaluation
// reports: total/normalized carbon, total cost (reserved upfront plus
// usage), waiting and completion times, and savings breakdowns.
package metrics

import (
	"fmt"

	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/stats"
	"github.com/carbonsched/gaia/internal/workload"
)

// JobResult is the accounting record of one executed job.
type JobResult struct {
	JobID   int
	Queue   workload.Queue
	User    string
	CPUs    int
	Length  simtime.Duration
	Arrival simtime.Time
	// Start is the first instant the job executed (including execution
	// later lost to eviction).
	Start simtime.Time
	// Finish is the completion instant.
	Finish simtime.Time
	// Waiting is the job's total non-running delay:
	// Finish − Arrival − Length. For uninterruptible, eviction-free
	// execution this equals Start − Arrival; for suspend-resume jobs it
	// includes pauses, and for evicted spot jobs the lost runtime.
	Waiting simtime.Duration
	// Carbon is the job's total emissions in grams CO2eq, including any
	// emissions from execution lost to eviction.
	Carbon float64
	// BaselineCarbon is what the job would have emitted had it started
	// at arrival (the NoWait counterfactual), used for savings analyses.
	BaselineCarbon float64
	// UsageCost is the pay-as-you-go dollars attributed to the job
	// (on-demand plus spot, including wasted spot time). Reserved
	// capacity is pre-paid at cluster level and contributes nothing here.
	UsageCost float64
	// CPUHours breaks billed execution down by purchase option, indexed
	// by cloud.Option.
	CPUHours [3]float64
	// Evictions counts spot revocations suffered.
	Evictions int
	// WastedCPUHours/WastedCarbon/WastedCost quantify execution lost to
	// evictions (already included in the totals above).
	WastedCPUHours float64
	WastedCarbon   float64
	WastedCost     float64
	// Segments records the job's execution intervals with their
	// placement split — the raw material of allocation timelines (the
	// artifact's "runtime file" and Figure 2a's demand curves).
	Segments []Segment
}

// Segment is one contiguous execution interval of a job on a fixed
// placement.
type Segment struct {
	Interval simtime.Interval
	// Reserved/OnDemand/Spot are the concurrently held CPU units per
	// purchase option.
	Reserved, OnDemand, Spot int
	// Wasted marks execution later lost to a spot eviction.
	Wasted bool
}

// Completion returns the job's completion time (Finish − Arrival).
func (r JobResult) Completion() simtime.Duration { return r.Finish.Sub(r.Arrival) }

// CarbonSaving returns the emissions avoided versus running at arrival
// (negative when the schedule emitted more).
func (r JobResult) CarbonSaving() float64 { return r.BaselineCarbon - r.Carbon }

// Result is the outcome of one simulated cluster run.
type Result struct {
	// Label identifies the configuration (e.g. "RES-First-Carbon-Time").
	Label string
	// Region is the carbon trace's region code.
	Region string
	// Workload is the workload trace name.
	Workload string
	// Reserved is the reserved capacity in CPU units.
	Reserved int
	// Horizon is the accounting horizon (reserved capacity is paid for
	// all of it).
	Horizon simtime.Duration
	// Pricing is the price book used.
	Pricing cloud.Pricing
	// Jobs holds one record per executed job.
	Jobs []JobResult
}

// TotalCarbon returns cluster emissions in grams.
func (r *Result) TotalCarbon() float64 {
	var total float64
	for i := range r.Jobs {
		total += r.Jobs[i].Carbon
	}
	return total
}

// TotalCarbonKg returns cluster emissions in kilograms (the unit of
// Figure 16).
func (r *Result) TotalCarbonKg() float64 { return r.TotalCarbon() / 1000 }

// BaselineCarbon returns the NoWait counterfactual emissions in grams.
func (r *Result) BaselineCarbon() float64 {
	var total float64
	for i := range r.Jobs {
		total += r.Jobs[i].BaselineCarbon
	}
	return total
}

// CarbonSavingsFraction returns 1 − carbon/baseline, the paper's
// "normalized carbon savings". It returns 0 when the baseline is 0.
func (r *Result) CarbonSavingsFraction() float64 {
	base := r.BaselineCarbon()
	if base == 0 {
		return 0
	}
	return 1 - r.TotalCarbon()/base
}

// ReservedUpfront returns the pre-paid reserved cost over the horizon.
func (r *Result) ReservedUpfront() float64 {
	return r.Pricing.ReservedUpfront(r.Reserved, r.Horizon.Hours())
}

// UsageCost returns the pay-as-you-go dollars (on-demand + spot).
func (r *Result) UsageCost() float64 {
	var total float64
	for i := range r.Jobs {
		total += r.Jobs[i].UsageCost
	}
	return total
}

// TotalCost returns the cluster's total dollars: reserved upfront plus
// usage. This is the paper's cost metric.
func (r *Result) TotalCost() float64 { return r.ReservedUpfront() + r.UsageCost() }

// MeanWaiting returns the mean per-job waiting time.
func (r *Result) MeanWaiting() simtime.Duration {
	if len(r.Jobs) == 0 {
		return 0
	}
	var total simtime.Duration
	for i := range r.Jobs {
		total += r.Jobs[i].Waiting
	}
	return total / simtime.Duration(len(r.Jobs))
}

// MeanCompletion returns the mean per-job completion time.
func (r *Result) MeanCompletion() simtime.Duration {
	if len(r.Jobs) == 0 {
		return 0
	}
	var total simtime.Duration
	for i := range r.Jobs {
		total += r.Jobs[i].Completion()
	}
	return total / simtime.Duration(len(r.Jobs))
}

// WaitingPercentile returns the p-th percentile (0-100) of per-job
// waiting times; tail waits matter for user-facing SLOs even when the
// mean looks benign. It returns 0 for an empty result.
func (r *Result) WaitingPercentile(p float64) simtime.Duration {
	if len(r.Jobs) == 0 {
		return 0
	}
	xs := make([]float64, len(r.Jobs))
	for i := range r.Jobs {
		xs[i] = float64(r.Jobs[i].Waiting)
	}
	v, err := stats.Percentile(xs, p)
	if err != nil {
		return 0
	}
	return simtime.Duration(v)
}

// TotalEvictions counts spot revocations across the run.
func (r *Result) TotalEvictions() int {
	var total int
	for i := range r.Jobs {
		total += r.Jobs[i].Evictions
	}
	return total
}

// CPUHoursByOption returns total CPU·hours billed per purchase option.
func (r *Result) CPUHoursByOption() [3]float64 {
	var out [3]float64
	for i := range r.Jobs {
		for o := range out {
			out[o] += r.Jobs[i].CPUHours[o]
		}
	}
	return out
}

// ReservedUtilization returns used reserved CPU·hours over paid reserved
// CPU·hours (0 with no reserved capacity). Low utilization is exactly the
// effect that raises the effective price of reservations under
// carbon-aware schedules.
func (r *Result) ReservedUtilization() float64 {
	paid := float64(r.Reserved) * r.Horizon.Hours()
	if paid == 0 {
		return 0
	}
	return r.CPUHoursByOption()[cloud.Reserved] / paid
}

// UsageSeries returns the cluster's hourly mean CPU allocation per
// purchase option over [0, horizon) — the carbon-aware demand curves of
// Figure 2a and the artifact's runtime file. Index the outer dimension
// with cloud.Option.
func (r *Result) UsageSeries(horizon simtime.Duration) [3][]float64 {
	slots := int(horizon / simtime.Hour)
	var out [3][]float64
	if slots <= 0 {
		return out
	}
	minutes := slots * 60
	var diff [3][]int32
	for o := range diff {
		diff[o] = make([]int32, minutes+1)
	}
	addSeg := func(opt int, iv simtime.Interval, units int) {
		if units == 0 {
			return
		}
		s, e := int(iv.Start), int(iv.End)
		if s < 0 {
			s = 0
		}
		if e > minutes {
			e = minutes
		}
		if s >= e {
			return
		}
		diff[opt][s] += int32(units)
		diff[opt][e] -= int32(units)
	}
	for i := range r.Jobs {
		for _, seg := range r.Jobs[i].Segments {
			addSeg(int(cloud.Reserved), seg.Interval, seg.Reserved)
			addSeg(int(cloud.OnDemand), seg.Interval, seg.OnDemand)
			addSeg(int(cloud.Spot), seg.Interval, seg.Spot)
		}
	}
	for o := range out {
		out[o] = make([]float64, slots)
		var cur int32
		for m := 0; m < minutes; m++ {
			cur += diff[o][m]
			out[o][m/60] += float64(cur)
		}
		for s := range out[o] {
			out[o][s] /= 60
		}
	}
	return out
}

// PeakDemand returns the maximum total hourly CPU allocation across all
// options over [0, horizon).
func (r *Result) PeakDemand(horizon simtime.Duration) float64 {
	series := r.UsageSeries(horizon)
	var peak float64
	for s := range series[0] {
		total := series[0][s] + series[1][s] + series[2][s]
		if total > peak {
			peak = total
		}
	}
	return peak
}

// SavingsByLengthCDF returns the cumulative fraction of total carbon
// savings contributed by jobs of length <= x minutes (Figure 9). Only
// positive savings contribute weight.
func (r *Result) SavingsByLengthCDF() *stats.WeightedCDF {
	values := make([]float64, 0, len(r.Jobs))
	weights := make([]float64, 0, len(r.Jobs))
	for i := range r.Jobs {
		s := r.Jobs[i].CarbonSaving()
		if s <= 0 {
			continue
		}
		values = append(values, float64(r.Jobs[i].Length))
		weights = append(weights, s)
	}
	return stats.NewWeightedCDF(values, weights)
}

// String summarizes the run for logs.
func (r *Result) String() string {
	return fmt.Sprintf("%s[%s/%s R=%d]: carbon=%.2fkg cost=$%.2f wait=%v jobs=%d",
		r.Label, r.Workload, r.Region, r.Reserved,
		r.TotalCarbonKg(), r.TotalCost(), r.MeanWaiting(), len(r.Jobs))
}

// Relative compares this result against a baseline run of the same
// workload: the paper's normalized metrics.
type Relative struct {
	Carbon     float64 // carbon / baseline carbon
	Cost       float64 // cost / baseline cost
	Waiting    float64 // mean waiting / baseline mean waiting (Inf-safe)
	Completion float64 // mean completion / baseline mean completion
}

// CompareTo computes normalized metrics against base. Waiting falls back
// to 0 denominator handling: a zero baseline (NoWait never waits) yields
// the raw hours instead of a ratio.
func (r *Result) CompareTo(base *Result) Relative {
	rel := Relative{Carbon: 1, Cost: 1, Waiting: 0, Completion: 1}
	if bc := base.TotalCarbon(); bc > 0 {
		rel.Carbon = r.TotalCarbon() / bc
	}
	if bcost := base.TotalCost(); bcost > 0 {
		rel.Cost = r.TotalCost() / bcost
	}
	if bw := base.MeanWaiting(); bw > 0 {
		rel.Waiting = float64(r.MeanWaiting()) / float64(bw)
	} else {
		rel.Waiting = r.MeanWaiting().Hours()
	}
	if bcm := base.MeanCompletion(); bcm > 0 {
		rel.Completion = float64(r.MeanCompletion()) / float64(bcm)
	}
	return rel
}
