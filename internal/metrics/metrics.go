// Package metrics defines the per-job and cluster-level accounting records
// the GAIA simulator produces, and the aggregations the paper's evaluation
// reports: total/normalized carbon, total cost (reserved upfront plus
// usage), waiting and completion times, and savings breakdowns.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/stats"
	"github.com/carbonsched/gaia/internal/workload"
)

// JobResult is the accounting record of one executed job.
type JobResult struct {
	JobID   int
	Queue   workload.Queue
	User    string
	CPUs    int
	Length  simtime.Duration
	Arrival simtime.Time
	// Start is the first instant the job executed (including execution
	// later lost to eviction).
	Start simtime.Time
	// Finish is the completion instant.
	Finish simtime.Time
	// Waiting is the job's total non-running delay:
	// Finish − Arrival − Length. For uninterruptible, eviction-free
	// execution this equals Start − Arrival; for suspend-resume jobs it
	// includes pauses, and for evicted spot jobs the lost runtime.
	Waiting simtime.Duration
	// Carbon is the job's total emissions in grams CO2eq, including any
	// emissions from execution lost to eviction.
	Carbon float64
	// BaselineCarbon is what the job would have emitted had it started
	// at arrival (the NoWait counterfactual), used for savings analyses.
	BaselineCarbon float64
	// UsageCost is the pay-as-you-go dollars attributed to the job
	// (on-demand plus spot, including wasted spot time). Reserved
	// capacity is pre-paid at cluster level and contributes nothing here.
	UsageCost float64
	// CPUHours breaks billed execution down by purchase option, indexed
	// by cloud.Option.
	CPUHours [3]float64
	// Evictions counts spot revocations suffered.
	Evictions int
	// WastedCPUHours/WastedCarbon/WastedCost quantify execution lost to
	// evictions (already included in the totals above).
	WastedCPUHours float64
	WastedCarbon   float64
	WastedCost     float64
	// Segments records the job's execution intervals with their
	// placement split — the raw material of allocation timelines (the
	// artifact's "runtime file" and Figure 2a's demand curves).
	Segments []Segment
}

// Segment is one contiguous execution interval of a job on a fixed
// placement.
type Segment struct {
	Interval simtime.Interval
	// Reserved/OnDemand/Spot are the concurrently held CPU units per
	// purchase option.
	Reserved, OnDemand, Spot int
	// Wasted marks execution later lost to a spot eviction.
	Wasted bool
}

// Completion returns the job's completion time (Finish − Arrival).
func (r JobResult) Completion() simtime.Duration { return r.Finish.Sub(r.Arrival) }

// CarbonSaving returns the emissions avoided versus running at arrival
// (negative when the schedule emitted more).
func (r JobResult) CarbonSaving() float64 { return r.BaselineCarbon - r.Carbon }

// Result is the outcome of one simulated cluster run.
type Result struct {
	// Label identifies the configuration (e.g. "RES-First-Carbon-Time").
	Label string
	// Region is the carbon trace's region code.
	Region string
	// Workload is the workload trace name.
	Workload string
	// Reserved is the reserved capacity in CPU units.
	Reserved int
	// Horizon is the accounting horizon (reserved capacity is paid for
	// all of it).
	Horizon simtime.Duration
	// Pricing is the price book used.
	Pricing cloud.Pricing
	// Jobs holds one record per executed job. In the scheduler's default
	// streaming mode it is empty — aggregates come from the attached
	// Accumulator — and it is populated only under core's RetainJobs flag
	// (CSV export, accounting DB, per-job tests). Results built by hand
	// with Jobs filled in are fully supported: every aggregate falls back
	// to scanning Jobs when no accumulator is attached.
	Jobs []JobResult

	// agg is the streaming accumulator, when the run was produced by the
	// scheduler; nil for hand-built results.
	agg *Accumulator
	// memo caches derived queries so table rendering stops rescanning.
	memo resultMemo
}

// resultMemo holds lazily computed aggregate caches. Guarded by mu so
// concurrent readers of a shared Result are safe.
type resultMemo struct {
	mu      sync.Mutex
	scalars bool
	// Fused single-pass totals over the columns, accumulated in job-ID
	// order — the same order as a scan over retained Jobs records, so the
	// float64 sums are bit-identical to the legacy path.
	totalCarbon, baselineCarbon, usageCost float64
	totalWaitingHours                      float64
	totalWaiting, totalCompletion          simtime.Duration

	sortedWaitings []float64
	cdf            *stats.WeightedCDF
	seriesHorizon  simtime.Duration
	series         *[3][]float64
}

// AttachAccumulator binds the streaming accumulator the aggregates are
// answered from. The scheduler calls it once per run; results that carry
// both an accumulator and retained Jobs answer every aggregate from the
// accumulator, so the two modes are observationally identical.
func (r *Result) AttachAccumulator(a *Accumulator) { r.agg = a }

// Accumulator returns the attached streaming accumulator, or nil for
// hand-built results. Callers treat it as immutable: the simulation cache
// shares one accumulator across every Result rebuilt from the same cached
// run.
func (r *Result) Accumulator() *Accumulator { return r.agg }

// JobCount returns the number of jobs in the run, independent of whether
// per-job records were retained.
func (r *Result) JobCount() int {
	if r.agg != nil {
		return r.agg.JobCount()
	}
	return len(r.Jobs)
}

// memoScalars fills the fused scalar totals from the columns on first use.
func (r *Result) memoScalars() {
	r.memo.mu.Lock()
	defer r.memo.mu.Unlock()
	if r.memo.scalars {
		return
	}
	a := r.agg
	var tc, bc, uc, wh float64
	var tw, tcomp simtime.Duration
	for i := range a.carbons {
		tc += a.carbons[i]
		bc += a.baselines[i]
		uc += a.costs[i]
		wh += a.waitings[i].Hours()
		tw += a.waitings[i]
		tcomp += a.waitings[i] + a.lengths[i]
	}
	r.memo.totalCarbon = tc
	r.memo.baselineCarbon = bc
	r.memo.usageCost = uc
	r.memo.totalWaitingHours = wh
	r.memo.totalWaiting = tw
	r.memo.totalCompletion = tcomp
	r.memo.scalars = true
}

// TotalCarbon returns cluster emissions in grams.
func (r *Result) TotalCarbon() float64 {
	if r.agg != nil {
		r.memoScalars()
		return r.memo.totalCarbon
	}
	var total float64
	for i := range r.Jobs {
		total += r.Jobs[i].Carbon
	}
	return total
}

// TotalCarbonKg returns cluster emissions in kilograms (the unit of
// Figure 16).
func (r *Result) TotalCarbonKg() float64 { return r.TotalCarbon() / 1000 }

// BaselineCarbon returns the NoWait counterfactual emissions in grams.
func (r *Result) BaselineCarbon() float64 {
	if r.agg != nil {
		r.memoScalars()
		return r.memo.baselineCarbon
	}
	var total float64
	for i := range r.Jobs {
		total += r.Jobs[i].BaselineCarbon
	}
	return total
}

// CarbonSavingsFraction returns 1 − carbon/baseline, the paper's
// "normalized carbon savings". It returns 0 when the baseline is 0.
func (r *Result) CarbonSavingsFraction() float64 {
	base := r.BaselineCarbon()
	if base == 0 {
		return 0
	}
	return 1 - r.TotalCarbon()/base
}

// ReservedUpfront returns the pre-paid reserved cost over the horizon.
func (r *Result) ReservedUpfront() float64 {
	return r.Pricing.ReservedUpfront(r.Reserved, r.Horizon.Hours())
}

// UsageCost returns the pay-as-you-go dollars (on-demand + spot).
func (r *Result) UsageCost() float64 {
	if r.agg != nil {
		r.memoScalars()
		return r.memo.usageCost
	}
	var total float64
	for i := range r.Jobs {
		total += r.Jobs[i].UsageCost
	}
	return total
}

// TotalCost returns the cluster's total dollars: reserved upfront plus
// usage. This is the paper's cost metric.
func (r *Result) TotalCost() float64 { return r.ReservedUpfront() + r.UsageCost() }

// TotalWaiting returns the summed per-job waiting time.
func (r *Result) TotalWaiting() simtime.Duration {
	if r.agg != nil {
		r.memoScalars()
		return r.memo.totalWaiting
	}
	var total simtime.Duration
	for i := range r.Jobs {
		total += r.Jobs[i].Waiting
	}
	return total
}

// TotalWaitingHours returns the per-job waiting times summed in hours
// (each converted before summing, in job-ID order).
func (r *Result) TotalWaitingHours() float64 {
	if r.agg != nil {
		r.memoScalars()
		return r.memo.totalWaitingHours
	}
	var total float64
	for i := range r.Jobs {
		total += r.Jobs[i].Waiting.Hours()
	}
	return total
}

// MeanWaiting returns the mean per-job waiting time (0 for an empty run).
func (r *Result) MeanWaiting() simtime.Duration {
	n := r.JobCount()
	if n == 0 {
		return 0
	}
	return r.TotalWaiting() / simtime.Duration(n)
}

// MeanCompletion returns the mean per-job completion time (0 for an
// empty run). Completion is Waiting + Length by the accounting identity,
// so no separate column is needed.
func (r *Result) MeanCompletion() simtime.Duration {
	n := r.JobCount()
	if n == 0 {
		return 0
	}
	if r.agg != nil {
		r.memoScalars()
		return r.memo.totalCompletion / simtime.Duration(n)
	}
	var total simtime.Duration
	for i := range r.Jobs {
		total += r.Jobs[i].Completion()
	}
	return total / simtime.Duration(n)
}

// WaitingPercentile returns the p-th percentile of per-job waiting times;
// tail waits matter for user-facing SLOs even when the mean looks benign.
// p is clamped to [0, 100]; a NaN p or an empty result yields 0. The
// sorted column is memoized, so successive percentile queries cost O(1)
// scans instead of a fresh copy-and-sort each.
func (r *Result) WaitingPercentile(p float64) simtime.Duration {
	if math.IsNaN(p) || r.JobCount() == 0 {
		return 0
	}
	if r.agg == nil {
		xs := make([]float64, len(r.Jobs))
		for i := range r.Jobs {
			xs[i] = float64(r.Jobs[i].Waiting)
		}
		v, err := stats.Percentile(xs, p)
		if err != nil {
			return 0
		}
		return simtime.Duration(v)
	}
	r.memo.mu.Lock()
	if r.memo.sortedWaitings == nil {
		xs := make([]float64, len(r.agg.waitings))
		for i, w := range r.agg.waitings {
			xs[i] = float64(w)
		}
		sort.Float64s(xs)
		r.memo.sortedWaitings = xs
	}
	xs := r.memo.sortedWaitings
	r.memo.mu.Unlock()
	v, err := stats.PercentileSorted(xs, p)
	if err != nil {
		return 0
	}
	return simtime.Duration(v)
}

// TotalEvictions counts spot revocations across the run.
func (r *Result) TotalEvictions() int {
	if r.agg != nil {
		return r.agg.evictions
	}
	var total int
	for i := range r.Jobs {
		total += r.Jobs[i].Evictions
	}
	return total
}

// TotalWastedCPUHours returns CPU·hours of execution lost to spot
// evictions (already included in the billed totals).
func (r *Result) TotalWastedCPUHours() float64 {
	if r.agg != nil {
		return r.agg.wastedCPUHours
	}
	var total float64
	for i := range r.Jobs {
		total += r.Jobs[i].WastedCPUHours
	}
	return total
}

// CPUHoursByOption returns total CPU·hours billed per purchase option.
func (r *Result) CPUHoursByOption() [3]float64 {
	if r.agg != nil {
		return r.agg.cpuHours
	}
	var out [3]float64
	for i := range r.Jobs {
		for o := range out {
			out[o] += r.Jobs[i].CPUHours[o]
		}
	}
	return out
}

// ReservedUtilization returns used reserved CPU·hours over paid reserved
// CPU·hours (0 with no or degenerate reserved capacity). Low utilization
// is exactly the effect that raises the effective price of reservations
// under carbon-aware schedules.
func (r *Result) ReservedUtilization() float64 {
	paid := float64(r.Reserved) * r.Horizon.Hours()
	if paid <= 0 {
		return 0
	}
	return r.CPUHoursByOption()[cloud.Reserved] / paid
}

// UsageSeries returns the cluster's hourly mean CPU allocation per
// purchase option over [0, horizon) — the carbon-aware demand curves of
// Figure 2a and the artifact's runtime file. Index the outer dimension
// with cloud.Option.
func (r *Result) UsageSeries(horizon simtime.Duration) [3][]float64 {
	slots := int(horizon / simtime.Hour)
	var out [3][]float64
	if slots <= 0 {
		return out
	}
	if r.agg != nil {
		r.memo.mu.Lock()
		defer r.memo.mu.Unlock()
		if r.memo.series != nil && r.memo.seriesHorizon == horizon {
			return *r.memo.series
		}
		// The bins hold integer CPU·minutes per hour; dividing by 60 here
		// equals the segment replay below bit for bit, because per-hour
		// float64 sums of small integers are exact. Hours past the last
		// bin saw no execution at all, so they read as zero either way.
		for o := range out {
			out[o] = make([]float64, slots)
			bins := r.agg.usage[o]
			for s := 0; s < slots && s < len(bins); s++ {
				out[o][s] = float64(bins[s]) / 60
			}
		}
		r.memo.series, r.memo.seriesHorizon = &out, horizon
		return out
	}
	minutes := slots * 60
	var diff [3][]int32
	for o := range diff {
		diff[o] = make([]int32, minutes+1)
	}
	addSeg := func(opt int, iv simtime.Interval, units int) {
		if units == 0 {
			return
		}
		s, e := int(iv.Start), int(iv.End)
		if s < 0 {
			s = 0
		}
		if e > minutes {
			e = minutes
		}
		if s >= e {
			return
		}
		diff[opt][s] += int32(units)
		diff[opt][e] -= int32(units)
	}
	for i := range r.Jobs {
		for _, seg := range r.Jobs[i].Segments {
			addSeg(int(cloud.Reserved), seg.Interval, seg.Reserved)
			addSeg(int(cloud.OnDemand), seg.Interval, seg.OnDemand)
			addSeg(int(cloud.Spot), seg.Interval, seg.Spot)
		}
	}
	for o := range out {
		out[o] = make([]float64, slots)
		var cur int32
		for m := 0; m < minutes; m++ {
			cur += diff[o][m]
			out[o][m/60] += float64(cur)
		}
		for s := range out[o] {
			out[o][s] /= 60
		}
	}
	return out
}

// PeakDemand returns the maximum total hourly CPU allocation across all
// options over [0, horizon).
func (r *Result) PeakDemand(horizon simtime.Duration) float64 {
	series := r.UsageSeries(horizon)
	var peak float64
	for s := range series[0] {
		total := series[0][s] + series[1][s] + series[2][s]
		if total > peak {
			peak = total
		}
	}
	return peak
}

// SavingsByLengthCDF returns the cumulative fraction of total carbon
// savings contributed by jobs of length <= x minutes (Figure 9). Only
// positive savings contribute weight.
func (r *Result) SavingsByLengthCDF() *stats.WeightedCDF {
	if r.agg != nil {
		r.memo.mu.Lock()
		defer r.memo.mu.Unlock()
		if r.memo.cdf != nil {
			return r.memo.cdf
		}
		a := r.agg
		values := make([]float64, 0, len(a.lengths))
		weights := make([]float64, 0, len(a.lengths))
		for i := range a.lengths {
			s := a.baselines[i] - a.carbons[i]
			if s <= 0 {
				continue
			}
			values = append(values, float64(a.lengths[i]))
			weights = append(weights, s)
		}
		r.memo.cdf = stats.NewWeightedCDF(values, weights)
		return r.memo.cdf
	}
	values := make([]float64, 0, len(r.Jobs))
	weights := make([]float64, 0, len(r.Jobs))
	for i := range r.Jobs {
		s := r.Jobs[i].CarbonSaving()
		if s <= 0 {
			continue
		}
		values = append(values, float64(r.Jobs[i].Length))
		weights = append(weights, s)
	}
	return stats.NewWeightedCDF(values, weights)
}

// String summarizes the run for logs.
func (r *Result) String() string {
	return fmt.Sprintf("%s[%s/%s R=%d]: carbon=%.2fkg cost=$%.2f wait=%v jobs=%d",
		r.Label, r.Workload, r.Region, r.Reserved,
		r.TotalCarbonKg(), r.TotalCost(), r.MeanWaiting(), r.JobCount())
}

// Relative compares this result against a baseline run of the same
// workload: the paper's normalized metrics.
type Relative struct {
	Carbon     float64 // carbon / baseline carbon
	Cost       float64 // cost / baseline cost
	Waiting    float64 // mean waiting / baseline mean waiting (Inf-safe)
	Completion float64 // mean completion / baseline mean completion
}

// CompareTo computes normalized metrics against base. Waiting falls back
// to 0 denominator handling: a zero baseline (NoWait never waits) yields
// the raw hours instead of a ratio.
func (r *Result) CompareTo(base *Result) Relative {
	rel := Relative{Carbon: 1, Cost: 1, Waiting: 0, Completion: 1}
	if bc := base.TotalCarbon(); bc > 0 {
		rel.Carbon = r.TotalCarbon() / bc
	}
	if bcost := base.TotalCost(); bcost > 0 {
		rel.Cost = r.TotalCost() / bcost
	}
	if bw := base.MeanWaiting(); bw > 0 {
		rel.Waiting = float64(r.MeanWaiting()) / float64(bw)
	} else {
		rel.Waiting = r.MeanWaiting().Hours()
	}
	if bcm := base.MeanCompletion(); bcm > 0 {
		rel.Completion = float64(r.MeanCompletion()) / float64(bcm)
	}
	return rel
}
