package metrics

import (
	"math"
	"reflect"
	"testing"

	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// streamedResult rebuilds a retained result as its streaming twin: the
// same jobs folded into an accumulator (segments binned as usage), no
// per-job records kept.
func streamedResult(r *Result) *Result {
	s := &Result{
		Label:    r.Label,
		Region:   r.Region,
		Workload: r.Workload,
		Reserved: r.Reserved,
		Horizon:  r.Horizon,
		Pricing:  r.Pricing,
	}
	acc := NewAccumulator(len(r.Jobs), r.Horizon)
	for i := range r.Jobs {
		j := &r.Jobs[i]
		acc.AddJob(j)
		for _, seg := range j.Segments {
			acc.AddUsage(seg.Interval, seg.Reserved, seg.OnDemand, seg.Spot)
		}
	}
	s.AttachAccumulator(acc)
	return s
}

// Division-by-zero audit: the ratio metrics must answer 0, not NaN or a
// panic, on degenerate runs — in both retained and streaming modes.
func TestDegenerateRunsYieldZeros(t *testing.T) {
	emptyAgg := &Result{Horizon: 10 * simtime.Hour}
	emptyAgg.AttachAccumulator(NewAccumulator(0, 10*simtime.Hour))
	cases := []struct {
		name string
		r    *Result
	}{
		{"zero-value", &Result{}},
		{"empty-retained", &Result{Jobs: []JobResult{}, Horizon: simtime.Hour}},
		{"empty-streaming", emptyAgg},
		{"no-reserved", &Result{Jobs: []JobResult{{Length: simtime.Hour}}, Horizon: simtime.Hour}},
		{"zero-horizon", &Result{Reserved: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checks := []struct {
				name string
				got  float64
			}{
				{"MeanWaiting", float64(tc.r.MeanWaiting())},
				{"MeanCompletion", float64(tc.r.MeanCompletion())},
				{"ReservedUtilization", tc.r.ReservedUtilization()},
				{"CarbonSavingsFraction", tc.r.CarbonSavingsFraction()},
				{"WaitingPercentile(50)", float64(tc.r.WaitingPercentile(50))},
			}
			for _, c := range checks {
				if c.got != 0 || math.IsNaN(c.got) {
					t.Errorf("%s = %v, want 0", c.name, c.got)
				}
			}
		})
	}
}

// CarbonSavingsFraction must stay finite when only the baseline is zero.
func TestSavingsFractionZeroBaseline(t *testing.T) {
	r := &Result{Jobs: []JobResult{{Carbon: 5, BaselineCarbon: 0}}}
	if got := r.CarbonSavingsFraction(); got != 0 {
		t.Errorf("savings with zero baseline = %v, want 0", got)
	}
	if got := streamedResult(r).CarbonSavingsFraction(); got != 0 {
		t.Errorf("streaming savings with zero baseline = %v, want 0", got)
	}
}

func waitingResult(waits ...simtime.Duration) *Result {
	r := &Result{Horizon: simtime.Hour}
	for i, w := range waits {
		r.Jobs = append(r.Jobs, JobResult{JobID: i, Waiting: w, Length: simtime.Hour})
	}
	return r
}

// WaitingPercentile edge cases, exercised in both modes: empty result,
// rank clamping at both ends, NaN rank, and the single-job degenerate.
func TestWaitingPercentileEdges(t *testing.T) {
	cases := []struct {
		name string
		r    *Result
		p    float64
		want simtime.Duration
	}{
		{"empty", waitingResult(), 50, 0},
		{"nan", waitingResult(simtime.Hour), math.NaN(), 0},
		{"p0-is-min", waitingResult(3*simtime.Hour, simtime.Hour, 2*simtime.Hour), 0, simtime.Hour},
		{"p100-is-max", waitingResult(3*simtime.Hour, simtime.Hour, 2*simtime.Hour), 100, 3 * simtime.Hour},
		{"clamp-low", waitingResult(3*simtime.Hour, simtime.Hour), -40, simtime.Hour},
		{"clamp-high", waitingResult(3*simtime.Hour, simtime.Hour), 250, 3 * simtime.Hour},
		{"single-job", waitingResult(90 * simtime.Minute), 37.5, 90 * simtime.Minute},
		{"median-interpolates", waitingResult(0, simtime.Hour), 50, 30 * simtime.Minute},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.r.WaitingPercentile(tc.p); got != tc.want {
				t.Errorf("retained: percentile(%v) = %v, want %v", tc.p, got, tc.want)
			}
			s := streamedResult(tc.r)
			if got := s.WaitingPercentile(tc.p); got != tc.want {
				t.Errorf("streaming: percentile(%v) = %v, want %v", tc.p, got, tc.want)
			}
			// Memoized second query must agree with the first.
			if got := s.WaitingPercentile(tc.p); got != tc.want {
				t.Errorf("streaming memoized: percentile(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
}

// usageResult builds a retained result with one job holding the given
// execution segments.
func usageResult(horizon simtime.Duration, segs ...Segment) *Result {
	return &Result{
		Horizon: horizon,
		Jobs: []JobResult{{
			JobID: 0, Length: simtime.Hour, Segments: segs,
		}},
	}
}

// UsageSeries bin boundaries: segments straddling hour edges must split
// their minutes across bins, segments past the horizon must truncate, and
// the streaming bins must agree with the retained segment replay exactly.
func TestUsageSeriesBinBoundaries(t *testing.T) {
	seg := func(startMin, endMin simtime.Duration, res, od, spot int) Segment {
		return Segment{
			Interval: simtime.Interval{Start: simtime.Time(startMin), End: simtime.Time(endMin)},
			Reserved: res, OnDemand: od, Spot: spot,
		}
	}
	cases := []struct {
		name    string
		horizon simtime.Duration
		segs    []Segment
		// wantOnDemand is the expected series for the on-demand option.
		wantOnDemand []float64
	}{
		{
			"aligned-hour",
			3 * simtime.Hour,
			[]Segment{seg(60, 120, 0, 2, 0)},
			[]float64{0, 2, 0},
		},
		{
			"straddles-edge",
			3 * simtime.Hour,
			[]Segment{seg(90, 150, 0, 1, 0)},
			[]float64{0, 0.5, 0.5},
		},
		{
			"sub-hour-sliver",
			2 * simtime.Hour,
			[]Segment{seg(59, 61, 0, 4, 0)},
			[]float64{4.0 / 60, 4.0 / 60},
		},
		{
			"truncated-at-horizon",
			2 * simtime.Hour,
			[]Segment{seg(90, 240, 0, 3, 0)},
			[]float64{0, 1.5},
		},
		{
			"starts-past-horizon",
			simtime.Hour,
			[]Segment{seg(120, 180, 0, 1, 0)},
			[]float64{0},
		},
		{
			"overlapping-segments-sum",
			2 * simtime.Hour,
			[]Segment{seg(0, 120, 0, 1, 0), seg(30, 90, 0, 2, 0)},
			[]float64{2, 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := usageResult(tc.horizon, tc.segs...)
			retained := r.UsageSeries(tc.horizon)
			streaming := streamedResult(r).UsageSeries(tc.horizon)
			if !reflect.DeepEqual(retained, streaming) {
				t.Fatalf("modes disagree:\nretained  %v\nstreaming %v", retained, streaming)
			}
			if got := retained[cloud.OnDemand]; !reflect.DeepEqual(got, tc.wantOnDemand) {
				t.Errorf("on-demand series = %v, want %v", got, tc.wantOnDemand)
			}
		})
	}
}

func TestAccumulatorQueueTags(t *testing.T) {
	acc := NewAccumulator(2, simtime.Hour)
	acc.AddJob(&JobResult{JobID: 1, Queue: workload.QueueLong})
	if acc.Queue(0) != workload.QueueShort || acc.Queue(1) != workload.QueueLong {
		t.Errorf("queue tags = %v, %v", acc.Queue(0), acc.Queue(1))
	}
}
