package metrics

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

// TestShardedFillMatchesAddJob pins the sharded-fill decomposition: a
// concurrent PutJob/PutCost/AddUsageAtomic fill plus a sequential
// AddCPUHours fold must be byte-identical to the classic AddJob+AddUsage
// stream over the same jobs in the same finish order.
func TestShardedFillMatchesAddJob(t *testing.T) {
	const n = 1000
	horizon := 24 * simtime.Hour
	rnd := rand.New(rand.NewSource(7))
	recs := make([]JobResult, n)
	for i := range recs {
		start := simtime.Time(rnd.Int63n(int64(horizon)))
		length := simtime.Duration(1 + rnd.Int63n(int64(10*simtime.Hour)))
		cpus := 1 + rnd.Intn(8)
		res := rnd.Intn(cpus + 1)
		hours := simtime.Interval{Start: start, End: start.Add(length)}.Len().Hours()
		recs[i] = JobResult{
			JobID:          i,
			Queue:          workload.Queue(rnd.Intn(2)),
			CPUs:           cpus,
			Length:         length,
			Arrival:        start - simtime.Time(rnd.Int63n(120)),
			Start:          start,
			Finish:         start.Add(length),
			Waiting:        simtime.Duration(rnd.Int63n(120)),
			Carbon:         rnd.Float64() * 10,
			BaselineCarbon: rnd.Float64() * 10,
			UsageCost:      rnd.Float64() * 5,
			CPUHours: [3]float64{
				float64(res) * hours,
				float64(cpus-res) * hours,
				0,
			},
			Segments: []Segment{{
				Interval: simtime.Interval{Start: start, End: start.Add(length)},
				Reserved: res,
				OnDemand: cpus - res,
			}},
		}
	}
	// The engine folds jobs in finish order, not ID order.
	finishOrder := rnd.Perm(n)

	seq := NewAccumulator(n, horizon)
	for _, i := range finishOrder {
		rec := &recs[i]
		seq.AddJob(rec)
		seg := rec.Segments[0]
		seq.AddUsage(seg.Interval, seg.Reserved, seg.OnDemand, 0)
	}

	shard := NewAccumulator(n, horizon)
	// Pre-grow to the maximum end the atomic fill will bin, as the direct
	// path does before fanning out.
	maxEnd := simtime.Time(0)
	for i := range recs {
		if recs[i].Finish > maxEnd {
			maxEnd = recs[i].Finish
		}
	}
	shard.GrowUsage(maxEnd)
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				rec := &recs[i]
				shard.PutJob(i, rec.Waiting, rec.Length, rec.Carbon, rec.BaselineCarbon, rec.Queue)
				shard.PutCost(i, rec.UsageCost)
				seg := rec.Segments[0]
				shard.AddUsageAtomic(seg.Interval, seg.Reserved, seg.OnDemand, 0)
			}
		}()
	}
	wg.Wait()
	for _, i := range finishOrder {
		shard.AddCPUHours(recs[i].CPUHours)
	}

	sb, hb := EncodeAccumulator(seq), EncodeAccumulator(shard)
	if !bytes.Equal(sb, hb) {
		t.Error("sharded fill does not match sequential AddJob stream byte for byte")
	}
}

// TestAddUsageAtomicPastHorizonPanics pins the contract that the atomic
// binning path refuses to bin past the pre-grown bins instead of silently
// dropping usage (it cannot resize concurrently-shared slices).
func TestAddUsageAtomicPastHorizonPanics(t *testing.T) {
	a := NewAccumulator(1, simtime.Hour)
	a.GrowUsage(simtime.Time(2 * simtime.Hour))
	a.AddUsageAtomic(simtime.Interval{Start: 0, End: simtime.Time(2 * simtime.Hour)}, 1, 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("AddUsageAtomic past the grown horizon did not panic")
		}
	}()
	a.AddUsageAtomic(simtime.Interval{
		Start: simtime.Time(2 * simtime.Hour),
		End:   simtime.Time(3 * simtime.Hour),
	}, 1, 0, 0)
}

// TestGrowUsageMatchesOnDemandGrowth pins GrowUsage's growth rule against
// AddUsage's incremental rule: pre-growing to an end and binning nothing
// must leave the same bin count as binning an interval reaching that end.
func TestGrowUsageMatchesOnDemandGrowth(t *testing.T) {
	for _, end := range []simtime.Time{1, 59, 60, 61, 600, 3601} {
		grown := NewAccumulator(0, 0)
		grown.GrowUsage(end)
		incr := NewAccumulator(0, 0)
		incr.AddUsage(simtime.Interval{Start: 0, End: end}, 1, 0, 0)
		// Bin counts must match; contents differ (incr actually binned).
		for o := range grown.usage {
			if g, i := len(grown.usage[o]), len(incr.usage[o]); g != i {
				t.Errorf("end %d option %d: GrowUsage made %d bins, AddUsage %d", end, o, g, i)
			}
		}
	}
}
