package metrics

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/carbonsched/gaia/internal/simtime"
)

// CodecVersion identifies the binary layout EncodeAccumulator writes. It
// is part of every on-disk cache key: bump it whenever the Accumulator
// gains, loses or reorders state, and old entries simply miss instead of
// decoding into garbage.
const CodecVersion = 1

// accumulatorMagic opens every encoded accumulator. The trailing byte is
// a format generation separate from CodecVersion so a future incompatible
// container (say, compression) is distinguishable even before the version
// field is reachable.
var accumulatorMagic = [8]byte{'G', 'A', 'I', 'A', 'A', 'C', 'C', 1}

// EncodeAccumulator serializes an accumulator into a self-contained blob:
//
//	magic [8] | codec version u64 | nJobs u64
//	| waitings, lengths (u64 LE each)
//	| carbons, baselines, costs (Float64bits LE each)
//	| queues (1 byte each)
//	| cpuHours [3]f64 | evictions u64 | wastedCPUHours, wastedCarbon,
//	  wastedCost f64
//	| 3 × (len u64 | usage bins u64 LE each)
//	| crc32-IEEE of everything above (u32 LE)
//
// All integers are little-endian; floats are stored as exact bit
// patterns, so a decoded accumulator answers every aggregate query
// bit-identically to the original.
func EncodeAccumulator(a *Accumulator) []byte {
	n := len(a.waitings)
	size := 8 + 8 + 8 + // magic, version, nJobs
		n*8*2 + n*8*3 + n + // duration, float columns, queues
		3*8 + 8 + 3*8 + // cpuHours, evictions, wasted
		3*8 + 8*(len(a.usage[0])+len(a.usage[1])+len(a.usage[2])) +
		4 // crc
	buf := make([]byte, 0, size)
	le := binary.LittleEndian

	buf = append(buf, accumulatorMagic[:]...)
	buf = le.AppendUint64(buf, CodecVersion)
	buf = le.AppendUint64(buf, uint64(n))
	for _, v := range a.waitings {
		buf = le.AppendUint64(buf, uint64(v))
	}
	for _, v := range a.lengths {
		buf = le.AppendUint64(buf, uint64(v))
	}
	for _, v := range a.carbons {
		buf = le.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range a.baselines {
		buf = le.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range a.costs {
		buf = le.AppendUint64(buf, math.Float64bits(v))
	}
	buf = append(buf, a.queues...)
	for _, v := range a.cpuHours {
		buf = le.AppendUint64(buf, math.Float64bits(v))
	}
	buf = le.AppendUint64(buf, uint64(a.evictions))
	buf = le.AppendUint64(buf, math.Float64bits(a.wastedCPUHours))
	buf = le.AppendUint64(buf, math.Float64bits(a.wastedCarbon))
	buf = le.AppendUint64(buf, math.Float64bits(a.wastedC))
	for o := range a.usage {
		buf = le.AppendUint64(buf, uint64(len(a.usage[o])))
		for _, v := range a.usage[o] {
			buf = le.AppendUint64(buf, uint64(v))
		}
	}
	buf = le.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

// accDecoder is a bounds-checked cursor over an encoded accumulator. Any
// out-of-range read flips err, and every subsequent read is a no-op, so
// decode loops never panic on truncated input.
type accDecoder struct {
	data []byte
	off  int
	err  error
}

func (d *accDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *accDecoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.data) {
		d.fail("metrics: truncated accumulator (need %d bytes at offset %d of %d)", n, d.off, len(d.data))
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *accDecoder) u64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *accDecoder) f64() float64 { return math.Float64frombits(d.u64()) }

// length reads a u64 element count and sanity-bounds it against the bytes
// remaining, so a corrupted count cannot drive a multi-gigabyte make.
func (d *accDecoder) length(elemSize int) int {
	n := d.u64()
	if d.err == nil && n > uint64(len(d.data)-d.off)/uint64(elemSize) {
		d.fail("metrics: accumulator length %d exceeds remaining payload", n)
	}
	if d.err != nil {
		return 0
	}
	return int(n)
}

// DecodeAccumulator parses a blob produced by EncodeAccumulator. It
// returns an error — never a partial accumulator — on a bad magic,
// version mismatch, checksum failure, truncation, or trailing garbage.
func DecodeAccumulator(data []byte) (*Accumulator, error) {
	if len(data) < len(accumulatorMagic)+8+8+4 {
		return nil, fmt.Errorf("metrics: encoded accumulator too short (%d bytes)", len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("metrics: accumulator checksum mismatch (got %08x want %08x)", got, want)
	}
	d := &accDecoder{data: body}
	var magic [8]byte
	copy(magic[:], d.bytes(8))
	if magic != accumulatorMagic {
		return nil, fmt.Errorf("metrics: bad accumulator magic %q", magic)
	}
	if v := d.u64(); v != CodecVersion {
		return nil, fmt.Errorf("metrics: accumulator codec version %d, want %d", v, CodecVersion)
	}

	n := d.length(1)
	a := &Accumulator{
		waitings:  make([]simtime.Duration, n),
		lengths:   make([]simtime.Duration, n),
		carbons:   make([]float64, n),
		baselines: make([]float64, n),
		costs:     make([]float64, n),
		queues:    make([]uint8, n),
	}
	for i := range a.waitings {
		a.waitings[i] = simtime.Duration(d.u64())
	}
	for i := range a.lengths {
		a.lengths[i] = simtime.Duration(d.u64())
	}
	for i := range a.carbons {
		a.carbons[i] = d.f64()
	}
	for i := range a.baselines {
		a.baselines[i] = d.f64()
	}
	for i := range a.costs {
		a.costs[i] = d.f64()
	}
	copy(a.queues, d.bytes(n))
	for o := range a.cpuHours {
		a.cpuHours[o] = d.f64()
	}
	a.evictions = int(d.u64())
	a.wastedCPUHours = d.f64()
	a.wastedCarbon = d.f64()
	a.wastedC = d.f64()
	for o := range a.usage {
		m := d.length(8)
		a.usage[o] = make([]int64, m)
		for i := range a.usage[o] {
			a.usage[o][i] = int64(d.u64())
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.data) {
		return nil, fmt.Errorf("metrics: %d trailing bytes after accumulator", len(d.data)-d.off)
	}
	return a, nil
}
