package metrics

import (
	"math"
	"strings"
	"testing"

	"github.com/carbonsched/gaia/internal/cloud"
	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/workload"
)

func sampleResult() *Result {
	p := cloud.Pricing{OnDemandHourly: 1, ReservedFraction: 0.4, SpotFraction: 0.2}
	return &Result{
		Label:    "test",
		Region:   "XX",
		Workload: "wl",
		Reserved: 2,
		Horizon:  100 * simtime.Hour,
		Pricing:  p,
		Jobs: []JobResult{
			{
				JobID: 0, Queue: workload.QueueShort, CPUs: 1,
				Length: simtime.Hour, Arrival: 0, Start: 0,
				Finish: simtime.Time(simtime.Hour),
				Carbon: 10, BaselineCarbon: 10, UsageCost: 0,
				CPUHours: [3]float64{0, 1, 0}, // reserved hour
			},
			{
				JobID: 1, Queue: workload.QueueLong, CPUs: 2,
				Length: 2 * simtime.Hour, Arrival: 0,
				Start:   simtime.Time(simtime.Hour),
				Finish:  simtime.Time(3 * simtime.Hour),
				Waiting: simtime.Hour,
				Carbon:  20, BaselineCarbon: 50, UsageCost: 4,
				CPUHours: [3]float64{4, 0, 0}, // on-demand hours
			},
		},
	}
}

func TestResultTotals(t *testing.T) {
	r := sampleResult()
	if r.TotalCarbon() != 30 {
		t.Errorf("TotalCarbon = %v", r.TotalCarbon())
	}
	if r.TotalCarbonKg() != 0.03 {
		t.Errorf("TotalCarbonKg = %v", r.TotalCarbonKg())
	}
	if r.BaselineCarbon() != 60 {
		t.Errorf("BaselineCarbon = %v", r.BaselineCarbon())
	}
	if got := r.CarbonSavingsFraction(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("savings = %v", got)
	}
	// Upfront: 2 × 100 h × 0.4 = 80; usage 4.
	if r.ReservedUpfront() != 80 {
		t.Errorf("upfront = %v", r.ReservedUpfront())
	}
	if r.UsageCost() != 4 {
		t.Errorf("usage = %v", r.UsageCost())
	}
	if r.TotalCost() != 84 {
		t.Errorf("total = %v", r.TotalCost())
	}
	if r.MeanWaiting() != 30*simtime.Minute {
		t.Errorf("mean waiting = %v", r.MeanWaiting())
	}
	if r.MeanCompletion() != 2*simtime.Hour {
		t.Errorf("mean completion = %v", r.MeanCompletion())
	}
	if r.TotalEvictions() != 0 {
		t.Errorf("evictions = %d", r.TotalEvictions())
	}
	byOpt := r.CPUHoursByOption()
	if byOpt[cloud.Reserved] != 1 || byOpt[cloud.OnDemand] != 4 {
		t.Errorf("byOption = %v", byOpt)
	}
	// Utilization: 1 used / 200 paid reserved hours.
	if got := r.ReservedUtilization(); math.Abs(got-0.005) > 1e-12 {
		t.Errorf("utilization = %v", got)
	}
	if !strings.Contains(r.String(), "test") {
		t.Error("String should include the label")
	}
}

func TestWaitingPercentile(t *testing.T) {
	r := &Result{}
	for _, w := range []simtime.Duration{0, simtime.Hour, 2 * simtime.Hour, 3 * simtime.Hour, 4 * simtime.Hour} {
		r.Jobs = append(r.Jobs, JobResult{Waiting: w})
	}
	if got := r.WaitingPercentile(50); got != 2*simtime.Hour {
		t.Errorf("p50 = %v", got)
	}
	if got := r.WaitingPercentile(100); got != 4*simtime.Hour {
		t.Errorf("p100 = %v", got)
	}
	empty := &Result{}
	if empty.WaitingPercentile(95) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestEmptyResult(t *testing.T) {
	r := &Result{Pricing: cloud.DefaultPricing()}
	if r.TotalCarbon() != 0 || r.MeanWaiting() != 0 || r.MeanCompletion() != 0 {
		t.Error("empty result should be zeros")
	}
	if r.CarbonSavingsFraction() != 0 {
		t.Error("zero-baseline savings should be 0")
	}
	if r.ReservedUtilization() != 0 {
		t.Error("zero-reserved utilization should be 0")
	}
}

func TestJobResultHelpers(t *testing.T) {
	j := JobResult{
		Arrival: 10, Finish: 130, Length: simtime.Hour,
		Carbon: 5, BaselineCarbon: 8,
	}
	if j.Completion() != 2*simtime.Hour {
		t.Errorf("Completion = %v", j.Completion())
	}
	if j.CarbonSaving() != 3 {
		t.Errorf("CarbonSaving = %v", j.CarbonSaving())
	}
}

func TestCompareTo(t *testing.T) {
	base := sampleResult()
	r := sampleResult()
	r.Jobs[1].Carbon = 5 // total 15 vs base 30
	rel := r.CompareTo(base)
	if math.Abs(rel.Carbon-0.5) > 1e-12 {
		t.Errorf("rel carbon = %v", rel.Carbon)
	}
	if math.Abs(rel.Cost-1) > 1e-12 {
		t.Errorf("rel cost = %v", rel.Cost)
	}
	if math.Abs(rel.Waiting-1) > 1e-12 {
		t.Errorf("rel waiting = %v", rel.Waiting)
	}
	if math.Abs(rel.Completion-1) > 1e-12 {
		t.Errorf("rel completion = %v", rel.Completion)
	}
}

func TestCompareToZeroWaitBaseline(t *testing.T) {
	base := sampleResult()
	base.Jobs[1].Waiting = 0
	r := sampleResult()
	r.Jobs[1].Waiting = 4 * simtime.Hour
	rel := r.CompareTo(base)
	// Baseline never waits: report raw hours instead of a ratio.
	if math.Abs(rel.Waiting-2) > 1e-12 { // mean of 0 and 4 h
		t.Errorf("rel waiting = %v", rel.Waiting)
	}
}

func TestUsageSeries(t *testing.T) {
	r := &Result{Jobs: []JobResult{
		{Segments: []Segment{
			{Interval: simtime.Interval{Start: 0, End: 60}, Reserved: 2},
			{Interval: simtime.Interval{Start: 60, End: 120}, OnDemand: 1, Spot: 1},
		}},
		{Segments: []Segment{
			{Interval: simtime.Interval{Start: 30, End: 90}, OnDemand: 3},
		}},
	}}
	s := r.UsageSeries(2 * simtime.Hour)
	if s[cloud.Reserved][0] != 2 || s[cloud.Reserved][1] != 0 {
		t.Errorf("reserved series = %v", s[cloud.Reserved])
	}
	// On-demand: job2 runs 30-90 (half of hour 0, half of hour 1) at 3
	// CPUs; job1 adds 1 CPU in hour 1.
	if s[cloud.OnDemand][0] != 1.5 || s[cloud.OnDemand][1] != 2.5 {
		t.Errorf("on-demand series = %v", s[cloud.OnDemand])
	}
	if s[cloud.Spot][1] != 1 {
		t.Errorf("spot series = %v", s[cloud.Spot])
	}
	// Hourly mean totals: hour 0 = 2 reserved + 1.5 od = 3.5;
	// hour 1 = 2.5 od + 1 spot = 3.5.
	if got := r.PeakDemand(2 * simtime.Hour); got != 3.5 {
		t.Errorf("peak = %v", got)
	}
	if out := r.UsageSeries(0); out[0] != nil {
		t.Error("zero horizon should be empty")
	}
}

func TestSavingsByLengthCDF(t *testing.T) {
	r := &Result{Jobs: []JobResult{
		{Length: 60, Carbon: 5, BaselineCarbon: 10},   // saving 5 at 1 h
		{Length: 600, Carbon: 10, BaselineCarbon: 25}, // saving 15 at 10 h
		{Length: 60, Carbon: 10, BaselineCarbon: 5},   // negative saving, skipped
	}}
	cdf := r.SavingsByLengthCDF()
	if cdf.Total() != 20 {
		t.Errorf("total savings = %v", cdf.Total())
	}
	if got := cdf.At(60); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("CDF(1h) = %v", got)
	}
	if got := cdf.At(600); math.Abs(got-1) > 1e-12 {
		t.Errorf("CDF(10h) = %v", got)
	}
}
