package metrics

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteDetailsCSV(t *testing.T) {
	r := sampleResult()
	var buf bytes.Buffer
	if err := r.WriteDetailsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + 2 jobs
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "job_id" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][1] != "short" || rows[2][1] != "long" {
		t.Errorf("queue columns wrong: %v / %v", rows[1], rows[2])
	}
}

func TestWriteSummary(t *testing.T) {
	r := sampleResult()
	var buf bytes.Buffer
	if err := r.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, key := range []string{"carbon_kg", "total_cost", "mean_waiting_hours", "reserved_utilization"} {
		if !strings.Contains(s, key) {
			t.Errorf("summary missing %q:\n%s", key, s)
		}
	}
	if !strings.Contains(s, "total_cost,84.000000") {
		t.Errorf("total cost row wrong:\n%s", s)
	}
}
