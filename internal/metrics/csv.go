package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteDetailsCSV writes one row per job — the equivalent of the paper
// artifact's "details file" — with timing, carbon, cost and placement
// columns. It consumes the per-job records, so the run must have been
// configured with core.Config.RetainJobs; a streaming-mode result writes
// only the header.
func (r *Result) WriteDetailsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"job_id", "queue", "user", "cpus", "length_min", "arrival_min", "start_min",
		"finish_min", "waiting_min", "carbon_g", "baseline_carbon_g",
		"usage_cost", "reserved_cpuh", "ondemand_cpuh", "spot_cpuh",
		"evictions", "wasted_cpuh",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("metrics: writing header: %w", err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	for _, j := range r.Jobs {
		rec := []string{
			strconv.Itoa(j.JobID),
			j.Queue.String(),
			j.User,
			strconv.Itoa(j.CPUs),
			strconv.FormatInt(int64(j.Length), 10),
			strconv.FormatInt(int64(j.Arrival), 10),
			strconv.FormatInt(int64(j.Start), 10),
			strconv.FormatInt(int64(j.Finish), 10),
			strconv.FormatInt(int64(j.Waiting), 10),
			f(j.Carbon),
			f(j.BaselineCarbon),
			f(j.UsageCost),
			f(j.CPUHours[1]), // cloud.Reserved
			f(j.CPUHours[0]), // cloud.OnDemand
			f(j.CPUHours[2]), // cloud.Spot
			strconv.Itoa(j.Evictions),
			f(j.WastedCPUHours),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("metrics: writing job %d: %w", j.JobID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSummary writes the aggregate metrics — the artifact's "aggregate
// file" — as key,value CSV rows.
func (r *Result) WriteSummary(w io.Writer) error {
	cw := csv.NewWriter(w)
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	rows := [][]string{
		{"label", r.Label},
		{"region", r.Region},
		{"workload", r.Workload},
		{"jobs", strconv.Itoa(r.JobCount())},
		{"reserved", strconv.Itoa(r.Reserved)},
		{"horizon_hours", f(r.Horizon.Hours())},
		{"carbon_kg", f(r.TotalCarbonKg())},
		{"baseline_carbon_kg", f(r.BaselineCarbon() / 1000)},
		{"carbon_savings_frac", f(r.CarbonSavingsFraction())},
		{"total_cost", f(r.TotalCost())},
		{"reserved_upfront", f(r.ReservedUpfront())},
		{"usage_cost", f(r.UsageCost())},
		{"mean_waiting_hours", f(r.MeanWaiting().Hours())},
		{"p50_waiting_hours", f(r.WaitingPercentile(50).Hours())},
		{"p95_waiting_hours", f(r.WaitingPercentile(95).Hours())},
		{"mean_completion_hours", f(r.MeanCompletion().Hours())},
		{"reserved_utilization", f(r.ReservedUtilization())},
		{"evictions", strconv.Itoa(r.TotalEvictions())},
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: writing summary: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
