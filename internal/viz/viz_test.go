package viz

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestSparklineBasics(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty input should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("rune count = %d", utf8.RuneCountInString(s))
	}
	if !strings.HasPrefix(s, "▁") || !strings.HasSuffix(s, "█") {
		t.Errorf("monotone ramp should go ▁..█: %q", s)
	}
}

func TestSparklineConstant(t *testing.T) {
	s := Sparkline([]float64{5, 5, 5})
	if utf8.RuneCountInString(s) != 3 {
		t.Fatalf("len = %d", utf8.RuneCountInString(s))
	}
	for _, r := range s {
		if r != '▅' {
			t.Errorf("constant series should render mid-height, got %q", s)
		}
	}
}

// Property: output length equals input length and min/max map to the
// extreme glyphs.
func TestSparklineProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		vals := make([]float64, len(raw))
		allSame := true
		for i, v := range raw {
			vals[i] = float64(v)
			if v != raw[0] {
				allSame = false
			}
		}
		s := []rune(Sparkline(vals))
		if len(s) != len(vals) {
			return false
		}
		if allSame {
			return true
		}
		var hasLow, hasHigh bool
		for _, r := range s {
			if r == '▁' {
				hasLow = true
			}
			if r == '█' {
				hasHigh = true
			}
		}
		return hasLow && hasHigh
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDownsample(t *testing.T) {
	in := []float64{1, 1, 3, 3, 5, 5}
	out := Downsample(in, 3)
	if len(out) != 3 || out[0] != 1 || out[1] != 3 || out[2] != 5 {
		t.Errorf("Downsample = %v", out)
	}
	// No-op when already short enough.
	same := Downsample(in, 10)
	if len(same) != 6 {
		t.Errorf("short input resampled: %v", same)
	}
	// Copy semantics.
	same[0] = 99
	if in[0] == 99 {
		t.Error("Downsample must copy")
	}
	if got := Downsample(in, 0); len(got) != 6 {
		t.Errorf("width 0 = %v", got)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "█████·····" {
		t.Errorf("Bar = %q", got)
	}
	if got := Bar(0, 10, 4); got != "····" {
		t.Errorf("empty bar = %q", got)
	}
	if got := Bar(20, 10, 4); got != "████" {
		t.Errorf("clamped bar = %q", got)
	}
	if got := Bar(5, 0, 4); got != "····" {
		t.Errorf("zero max = %q", got)
	}
	if Bar(1, 1, 0) != "" {
		t.Error("zero width should be empty")
	}
}
