// Package viz renders tiny terminal visualizations — sparklines and
// horizontal bars — so the experiment CLIs can show the *shape* of a
// series (diurnal carbon curves, monthly trends) alongside its numbers.
package viz

import "strings"

// ticks are the eight block glyphs a sparkline quantizes into.
var ticks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-height unicode strip, scaling
// min..max onto the eight block glyphs. Empty input yields "".
// A constant series renders at half height.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	min, max := values[0], values[0]
	for _, v := range values[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	span := max - min
	for _, v := range values {
		idx := len(ticks) / 2
		if span > 0 {
			idx = int((v - min) / span * float64(len(ticks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ticks) {
			idx = len(ticks) - 1
		}
		b.WriteRune(ticks[idx])
	}
	return b.String()
}

// Downsample reduces values to at most width points by averaging
// consecutive buckets, so long series fit a terminal row.
func Downsample(values []float64, width int) []float64 {
	if width <= 0 || len(values) <= width {
		return append([]float64(nil), values...)
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * len(values) / width
		hi := (i + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// Bar renders value on a [0, max] scale as a width-character bar like
// "████████··" — for quick magnitude comparison in tables.
func Bar(value, max float64, width int) string {
	if width <= 0 {
		return ""
	}
	filled := 0
	if max > 0 {
		filled = int(value/max*float64(width) + 0.5)
	}
	if filled < 0 {
		filled = 0
	}
	if filled > width {
		filled = width
	}
	return strings.Repeat("█", filled) + strings.Repeat("·", width-filled)
}
