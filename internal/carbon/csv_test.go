package carbon

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	tr := RegionCAUS.Generate(100, 1)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("CA-US", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip length %d != %d", got.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		if got.Value(i) != tr.Value(i) {
			t.Fatalf("round trip value mismatch at %d", i)
		}
	}
	if got.Region() != "CA-US" {
		t.Errorf("region = %q", got.Region())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"headerOnly", "hour,carbon_intensity\n"},
		{"badHour", "hour,ci\nx,100\n"},
		{"outOfOrder", "hour,ci\n1,100\n"},
		{"badValue", "hour,ci\n0,abc\n"},
		{"negative", "hour,ci\n0,-5\n"},
		{"wrongFields", "hour,ci\n0\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV("x", strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
