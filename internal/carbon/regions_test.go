package carbon

import (
	"math"
	"strings"
	"testing"

	"github.com/carbonsched/gaia/internal/simtime"
)

func TestRegionCalibrationBands(t *testing.T) {
	// Each region's year mean must land near its spec mean and its
	// variability must match its Stable/Variable class (Figure 6).
	for _, spec := range Regions() {
		tr := spec.GenerateYear(1)
		s := tr.Summary()
		if math.Abs(s.Mean-spec.Mean)/spec.Mean > 0.15 {
			t.Errorf("%s: year mean %v, spec %v", spec.Code, s.Mean, spec.Mean)
		}
		variable := strings.Contains(spec.Class, "Variable")
		if variable && s.CV < 0.15 {
			t.Errorf("%s: classified Variable but CV = %v", spec.Code, s.CV)
		}
		if !variable && s.CV > 0.15 {
			t.Errorf("%s: classified Stable but CV = %v", spec.Code, s.CV)
		}
		if s.Min < spec.Floor-1e-9 {
			t.Errorf("%s: min %v below floor %v", spec.Code, s.Min, spec.Floor)
		}
	}
}

func TestSpatialVariation(t *testing.T) {
	// Figure 1: ≈9× spread between the cleanest and dirtiest of the three
	// shown regions (ON-CA vs NL); the full Figure 6 set spreads wider.
	on := RegionONCA.GenerateYear(1).Mean()
	nl := RegionNL.GenerateYear(1).Mean()
	ratio := nl / on
	if ratio < 6 || ratio > 13 {
		t.Errorf("NL/ON-CA mean ratio = %v, want ≈9", ratio)
	}
}

func TestCaliforniaDiurnalSwing(t *testing.T) {
	// Figure 1: up to ≈3.37× peak-to-trough within three days in CA.
	tr := RegionCAUS.Generate(24*90, 1)
	best := 0.0
	for day := 0; day+3 <= 90; day++ {
		iv := simtime.Interval{
			Start: simtime.Time(simtime.Duration(day) * simtime.Day),
			End:   simtime.Time(simtime.Duration(day+3) * simtime.Day),
		}
		if r := tr.PeakToTrough(iv); r > best {
			best = r
		}
	}
	if best < 2.2 || best > 6 {
		t.Errorf("CA 3-day peak/trough max = %v, want ≈3.4", best)
	}
}

func TestSouthAustraliaSeasonality(t *testing.T) {
	// Figure 7: SA-AU mean CI roughly doubles July → December.
	tr := RegionSAAU.GenerateYear(3)
	mm := tr.MonthlyMeans()
	ratio := mm[11] / mm[6]
	if ratio < 1.5 || ratio > 2.8 {
		t.Errorf("SA-AU Dec/Jul ratio = %v, want ≈2", ratio)
	}
}

func TestDuckCurveShape(t *testing.T) {
	// The duck profile must trough midday and peak in the evening.
	minH, maxH := 0, 0
	for h := 1; h < 24; h++ {
		if duckProfile[h] < duckProfile[minH] {
			minH = h
		}
		if duckProfile[h] > duckProfile[maxH] {
			maxH = h
		}
	}
	if minH < 10 || minH > 16 {
		t.Errorf("duck trough at hour %d, want midday", minH)
	}
	if maxH < 17 || maxH > 22 {
		t.Errorf("duck peak at hour %d, want evening", maxH)
	}
}

func TestProfilesNormalized(t *testing.T) {
	for h := 0; h < 24; h++ {
		if math.Abs(duckProfile[h]) > 1 || math.Abs(eveningProfile[h]) > 1 {
			t.Fatalf("profile value at hour %d exceeds [-1, 1]", h)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := RegionSAAU.Generate(500, 99)
	b := RegionSAAU.Generate(500, 99)
	for i := 0; i < 500; i++ {
		if a.Value(i) != b.Value(i) {
			t.Fatal("same seed must generate identical traces")
		}
	}
	c := RegionSAAU.Generate(500, 100)
	same := true
	for i := 0; i < 500; i++ {
		if a.Value(i) != c.Value(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should generate different traces")
	}
}

func TestGenerateYearLength(t *testing.T) {
	tr := RegionSE.GenerateYear(1)
	wantHours := int((simtime.Year + simtime.Week) / simtime.Hour)
	if tr.Len() != wantHours {
		t.Errorf("GenerateYear length = %d, want %d", tr.Len(), wantHours)
	}
}

func TestRegionByCode(t *testing.T) {
	r, err := RegionByCode("SA-AU")
	if err != nil || r.Name != "South Australia" {
		t.Errorf("RegionByCode = %+v, %v", r, err)
	}
	if _, err := RegionByCode("XX"); err == nil {
		t.Error("unknown code should error")
	}
}

func TestFlatShape(t *testing.T) {
	if ShapeFlat.offset(12) != 0 {
		t.Error("flat shape must be 0")
	}
}

func TestSeasonalMultiplier(t *testing.T) {
	s := RegionSpec{SeasonalAmp: 1.0 / 3, SeasonalPeakMonth: 11}
	peak := s.seasonal(11)
	trough := s.seasonal(5)
	if math.Abs(peak-4.0/3) > 1e-9 || math.Abs(trough-2.0/3) > 1e-9 {
		t.Errorf("seasonal peak/trough = %v/%v", peak, trough)
	}
	flat := RegionSpec{}
	if flat.seasonal(3) != 1 {
		t.Error("zero amplitude should return 1")
	}
}
