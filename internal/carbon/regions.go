package carbon

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/carbonsched/gaia/internal/simtime"
)

// DiurnalShape selects the daily CI profile of a grid.
type DiurnalShape int

// Supported diurnal profiles.
const (
	// ShapeFlat has no daily structure (hydro/nuclear/coal baseload).
	ShapeFlat DiurnalShape = iota
	// ShapeDuck is the solar "duck curve": a deep midday trough and an
	// evening ramp peak (California, South Australia).
	ShapeDuck
	// ShapeEvening is a demand-following profile peaking in the evening
	// with a mild overnight trough (fossil-marginal grids such as NL).
	ShapeEvening
)

// duckProfile and eveningProfile are normalized hour-of-day offsets in
// [-1, 1]; the generator scales them by the region's diurnal amplitude.
var duckProfile = [24]float64{
	0.30, 0.20, 0.10, 0.05, 0.10, 0.25, // 00-05 night
	0.45, 0.55, 0.30, -0.15, -0.55, -0.85, // 06-11 morning, solar rising
	-1.00, -1.00, -0.95, -0.75, -0.40, 0.15, // 12-17 solar trough, ramp
	0.70, 1.00, 0.95, 0.80, 0.60, 0.45, // 18-23 evening peak
}

var eveningProfile = [24]float64{
	-0.55, -0.70, -0.85, -1.00, -0.95, -0.75, // 00-05 overnight trough
	-0.35, 0.10, 0.35, 0.40, 0.35, 0.30, // 06-11 morning rise
	0.25, 0.20, 0.25, 0.35, 0.55, 0.80, // 12-17 afternoon
	1.00, 0.95, 0.75, 0.40, 0.00, -0.30, // 18-23 evening peak, decline
}

func (s DiurnalShape) offset(hourOfDay int) float64 {
	switch s {
	case ShapeDuck:
		return duckProfile[hourOfDay]
	case ShapeEvening:
		return eveningProfile[hourOfDay]
	default:
		return 0
	}
}

// RegionSpec parameterizes a synthetic grid region. Generate produces a
// trace with hourly CI:
//
//	CI(t) = seasonal(month) × (Mean + DiurnalAmp·shape(hour) + weather(t) + noise(t))
//
// clamped below at Floor, where weather is an AR(1) process capturing
// multi-day renewable availability swings and noise is white.
type RegionSpec struct {
	Code  string // short region code, e.g. "CA-US"
	Name  string // human-readable name
	Class string // paper's classification, e.g. "Medium/Variable"

	Mean       float64      // g/kWh, annual mean before seasonal scaling
	DiurnalAmp float64      // g/kWh amplitude of the daily profile
	Shape      DiurnalShape // daily profile
	// SeasonalAmp is the relative amplitude of the annual cosine
	// (e.g. 1/3 makes the peak month ≈2× the trough month).
	SeasonalAmp float64
	// SeasonalPeakMonth is the zero-based month of maximum CI.
	SeasonalPeakMonth int
	WeatherStd        float64 // g/kWh std of the AR(1) weather process
	WeatherRho        float64 // AR(1) coefficient per hour, in [0, 1)
	NoiseStd          float64 // g/kWh std of the white noise
	Floor             float64 // minimum CI, g/kWh
}

// seasonal returns the month multiplier.
func (s RegionSpec) seasonal(month int) float64 {
	if s.SeasonalAmp == 0 {
		return 1
	}
	phase := 2 * math.Pi * float64(month-s.SeasonalPeakMonth) / 12
	return 1 + s.SeasonalAmp*math.Cos(phase)
}

// Generate produces an hourly trace of the given length. The same
// (spec, hours, seed) always yields the same trace.
func (s RegionSpec) Generate(hours int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	values := make([]float64, hours)
	var weather float64
	// Stationary-ish start for AR(1).
	if s.WeatherRho > 0 && s.WeatherRho < 1 {
		weather = rng.NormFloat64() * s.WeatherStd
	}
	innovStd := s.WeatherStd * math.Sqrt(1-s.WeatherRho*s.WeatherRho)
	for i := 0; i < hours; i++ {
		t := simtime.Time(simtime.Duration(i) * simtime.Hour)
		hod := t.HourOfDay()
		month := t.Month()
		weather = s.WeatherRho*weather + innovStd*rng.NormFloat64()
		v := s.Mean + s.DiurnalAmp*s.Shape.offset(hod) + weather + s.NoiseStd*rng.NormFloat64()
		v *= s.seasonal(month)
		if v < s.Floor {
			v = s.Floor
		}
		values[i] = v
	}
	return MustTrace(s.Code, values)
}

// GenerateYear produces one simulated year plus a week of slack so that
// scheduling windows of jobs arriving near year end stay in range.
func (s RegionSpec) GenerateYear(seed int64) *Trace {
	return s.Generate(int((simtime.Year+simtime.Week)/simtime.Hour), seed)
}

// The six regions evaluated in the paper (Figure 6), calibrated to the
// reported classes: average intensity Low/Medium/High crossed with
// Stable/Variable, a ~9× spatial spread across Figure 1's regions
// (ON-CA vs NL), up to ≈3.4× diurnal swing in California, and South
// Australia's mean roughly doubling between July and December (Figure 7).
var (
	// Sweden: hydro+nuclear, Low/Stable.
	RegionSE = RegionSpec{
		Code: "SE", Name: "Sweden", Class: "Low/Stable",
		Mean: 36, DiurnalAmp: 5, Shape: ShapeEvening,
		SeasonalAmp: 0.08, SeasonalPeakMonth: 0,
		WeatherStd: 3, WeatherRho: 0.98, NoiseStd: 1.5, Floor: 15,
	}
	// Ontario, Canada: hydro+nuclear, Low/Stable (slightly more varied).
	RegionONCA = RegionSpec{
		Code: "ON-CA", Name: "Ontario, Canada", Class: "Low/Stable",
		Mean: 52, DiurnalAmp: 8, Shape: ShapeEvening,
		SeasonalAmp: 0.06, SeasonalPeakMonth: 7,
		WeatherStd: 4, WeatherRho: 0.97, NoiseStd: 2, Floor: 18,
	}
	// South Australia: wind+solar dominated, Medium/Variable — the most
	// volatile grid in the study; CI nearly doubles July→December.
	RegionSAAU = RegionSpec{
		Code: "SA-AU", Name: "South Australia", Class: "Medium/Variable",
		Mean: 265, DiurnalAmp: 190, Shape: ShapeDuck,
		SeasonalAmp: 0.42, SeasonalPeakMonth: 11,
		WeatherStd: 65, WeatherRho: 0.992, NoiseStd: 24, Floor: 20,
	}
	// California, US: solar duck curve, Medium/Variable.
	RegionCAUS = RegionSpec{
		Code: "CA-US", Name: "California, US", Class: "Medium/Variable",
		Mean: 262, DiurnalAmp: 112, Shape: ShapeDuck,
		SeasonalAmp: 0.15, SeasonalPeakMonth: 9,
		WeatherStd: 26, WeatherRho: 0.985, NoiseStd: 14, Floor: 70,
	}
	// Netherlands: gas-marginal, Medium-High/Variable.
	RegionNL = RegionSpec{
		Code: "NL", Name: "Netherlands", Class: "Medium/Variable",
		Mean: 430, DiurnalAmp: 92, Shape: ShapeEvening,
		SeasonalAmp: 0.10, SeasonalPeakMonth: 11,
		WeatherStd: 38, WeatherRho: 0.985, NoiseStd: 18, Floor: 160,
	}
	// Kentucky, US: coal baseload, High/Stable.
	RegionKYUS = RegionSpec{
		Code: "KY-US", Name: "Kentucky, US", Class: "High/Stable",
		Mean: 905, DiurnalAmp: 48, Shape: ShapeEvening,
		SeasonalAmp: 0.04, SeasonalPeakMonth: 6,
		WeatherStd: 18, WeatherRho: 0.96, NoiseStd: 10, Floor: 680,
	}
)

// Regions lists every built-in region in the paper's Figure 6 order.
func Regions() []RegionSpec {
	return []RegionSpec{RegionSE, RegionONCA, RegionSAAU, RegionCAUS, RegionNL, RegionKYUS}
}

// RegionByCode looks a built-in region up by its code (case-sensitive).
func RegionByCode(code string) (RegionSpec, error) {
	for _, r := range Regions() {
		if r.Code == code {
			return r, nil
		}
	}
	codes := make([]string, 0, 6)
	for _, r := range Regions() {
		codes = append(codes, r.Code)
	}
	sort.Strings(codes)
	return RegionSpec{}, fmt.Errorf("carbon: unknown region %q (have %v)", code, codes)
}
