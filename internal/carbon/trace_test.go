package carbon

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/carbonsched/gaia/internal/simtime"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewTraceValidation(t *testing.T) {
	if _, err := NewTrace("x", nil); err == nil {
		t.Error("empty trace should error")
	}
	if _, err := NewTrace("x", []float64{10, -1}); err == nil {
		t.Error("negative intensity should error")
	}
	tr, err := NewTrace("x", []float64{10, 20})
	if err != nil || tr.Len() != 2 || tr.Region() != "x" {
		t.Errorf("NewTrace = %v, %v", tr, err)
	}
}

func TestMustTracePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustTrace("x", nil)
}

func TestAtAndClamping(t *testing.T) {
	tr := MustTrace("x", []float64{100, 200, 300})
	tests := []struct {
		t    simtime.Time
		want float64
	}{
		{0, 100},
		{59, 100},
		{60, 200},
		{179, 300},
		{-10, 100},  // clamps before start
		{9999, 300}, // clamps past end
	}
	for _, tt := range tests {
		if got := tr.At(tt.t); got != tt.want {
			t.Errorf("At(%d) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestIntegralExact(t *testing.T) {
	tr := MustTrace("x", []float64{100, 200, 300})
	tests := []struct {
		iv   simtime.Interval
		want float64
	}{
		{simtime.Interval{Start: 0, End: 60}, 100},
		{simtime.Interval{Start: 0, End: 180}, 600},
		{simtime.Interval{Start: 30, End: 90}, 50 + 100},
		{simtime.Interval{Start: 30, End: 30}, 0},
		{simtime.Interval{Start: 90, End: 150}, 100 + 150},
		{simtime.Interval{Start: 0, End: 90}, 100 + 100},
		{simtime.Interval{Start: 45, End: 60}, 25},
		// Clamped: 1h before start at first value + first slot.
		{simtime.Interval{Start: -60, End: 60}, 100 + 100},
		// Clamped: last slot + 2h beyond end at last value.
		{simtime.Interval{Start: 120, End: 300}, 300 + 600},
		// Entirely beyond end.
		{simtime.Interval{Start: 300, End: 360}, 300},
		// Entirely before start.
		{simtime.Interval{Start: -120, End: -60}, 100},
	}
	for _, tt := range tests {
		if got := tr.Integral(tt.iv); !almostEq(got, tt.want, 1e-9) {
			t.Errorf("Integral(%v) = %v, want %v", tt.iv, got, tt.want)
		}
	}
}

// Property: prefix-sum Integral equals a naive per-minute sum.
func TestIntegralMatchesNaive(t *testing.T) {
	tr := MustTrace("x", []float64{100, 250, 50, 400, 175, 300})
	naive := func(iv simtime.Interval) float64 {
		var sum float64
		for m := iv.Start; m < iv.End; m++ {
			sum += tr.At(m) / 60
		}
		return sum
	}
	f := func(a, b uint16) bool {
		s := simtime.Time(a % 400)
		e := simtime.Time(b % 400)
		if s > e {
			s, e = e, s
		}
		iv := simtime.Interval{Start: s, End: e}
		return almostEq(tr.Integral(iv), naive(iv), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Integral is additive over adjacent intervals.
func TestIntegralAdditive(t *testing.T) {
	tr := RegionCAUS.Generate(100, 7)
	f := func(a, b, c uint16) bool {
		ts := []simtime.Time{simtime.Time(a % 6000), simtime.Time(b % 6000), simtime.Time(c % 6000)}
		if ts[0] > ts[1] {
			ts[0], ts[1] = ts[1], ts[0]
		}
		if ts[1] > ts[2] {
			ts[1], ts[2] = ts[2], ts[1]
		}
		if ts[0] > ts[1] {
			ts[0], ts[1] = ts[1], ts[0]
		}
		whole := tr.Integral(simtime.Interval{Start: ts[0], End: ts[2]})
		split := tr.Integral(simtime.Interval{Start: ts[0], End: ts[1]}) +
			tr.Integral(simtime.Interval{Start: ts[1], End: ts[2]})
		return almostEq(whole, split, 1e-6*(1+math.Abs(whole)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanOver(t *testing.T) {
	tr := MustTrace("x", []float64{100, 300})
	iv := simtime.Interval{Start: 0, End: 120}
	if got := tr.MeanOver(iv); !almostEq(got, 200, 1e-9) {
		t.Errorf("MeanOver = %v", got)
	}
	if tr.MeanOver(simtime.Interval{Start: 5, End: 5}) != 0 {
		t.Error("empty interval mean should be 0")
	}
	if got := tr.Mean(); !almostEq(got, 200, 1e-9) {
		t.Errorf("Mean = %v", got)
	}
}

func TestSummary(t *testing.T) {
	tr := MustTrace("x", []float64{100, 200, 300, 400})
	s := tr.Summary()
	if s.Mean != 250 || s.Min != 100 || s.Max != 400 {
		t.Errorf("Summary = %+v", s)
	}
	if s.CV <= 0 || s.Std <= 0 {
		t.Errorf("Summary variability = %+v", s)
	}
}

func TestSlice(t *testing.T) {
	tr := MustTrace("x", []float64{1, 2, 3, 4, 5})
	sub, err := tr.Slice(1, 3)
	if err != nil || sub.Len() != 2 || sub.Value(0) != 2 {
		t.Errorf("Slice = %v, %v", sub, err)
	}
	// Clamping.
	sub, err = tr.Slice(-5, 100)
	if err != nil || sub.Len() != 5 {
		t.Errorf("clamped Slice = %v, %v", sub, err)
	}
	if _, err := tr.Slice(3, 3); err == nil {
		t.Error("empty slice should error")
	}
}

func TestPeakToTrough(t *testing.T) {
	tr := MustTrace("x", []float64{100, 300, 200})
	iv := simtime.Interval{Start: 0, End: 180}
	if got := tr.PeakToTrough(iv); !almostEq(got, 3, 1e-9) {
		t.Errorf("PeakToTrough = %v", got)
	}
	zero := MustTrace("x", []float64{0, 10})
	if zero.PeakToTrough(simtime.Interval{Start: 0, End: 120}) != 0 {
		t.Error("zero-min should return 0")
	}
}

func TestMonthlyMeans(t *testing.T) {
	// Constant trace: every covered month reports the constant.
	hours := int(simtime.Year / simtime.Hour)
	vals := make([]float64, hours)
	for i := range vals {
		vals[i] = 42
	}
	tr := MustTrace("x", vals)
	mm := tr.MonthlyMeans()
	for m, v := range mm {
		if !almostEq(v, 42, 1e-9) {
			t.Errorf("month %d mean = %v", m, v)
		}
	}
	// Short trace: only January covered.
	short := MustTrace("x", []float64{10, 10})
	mm = short.MonthlyMeans()
	if !almostEq(mm[0], 10, 1e-9) {
		t.Errorf("short trace January = %v", mm[0])
	}
	if mm[1] != 0 {
		t.Errorf("short trace February = %v, want 0", mm[1])
	}
}

func TestValuesCopied(t *testing.T) {
	src := []float64{1, 2, 3}
	tr := MustTrace("x", src)
	src[0] = 99
	if tr.Value(0) != 1 {
		t.Error("NewTrace must copy its input")
	}
	vs := tr.Values()
	vs[1] = 99
	if tr.Value(1) != 2 {
		t.Error("Values must return a copy")
	}
}
