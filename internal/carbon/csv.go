package carbon

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// WriteCSV writes the trace as "hour,carbon_intensity" rows with a header.
// The format matches common CIS exports (one row per hourly slot) so real
// ElectricityMaps/WattTime data can be round-tripped.
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"hour", "carbon_intensity"}); err != nil {
		return fmt.Errorf("carbon: writing header: %w", err)
	}
	for i, v := range tr.values {
		rec := []string{strconv.Itoa(i), strconv.FormatFloat(v, 'f', -1, 64)}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("carbon: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV (or any CSV whose second
// column is an hourly g/kWh value, with a single header row). Rows must be
// in hour order starting at 0.
func ReadCSV(region string, r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("carbon: reading csv: %w", err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("carbon: csv has no data rows")
	}
	values := make([]float64, 0, len(rows)-1)
	for i, row := range rows[1:] {
		hour, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("carbon: row %d: bad hour %q: %w", i+1, row[0], err)
		}
		if hour != i {
			return nil, fmt.Errorf("carbon: row %d: hour %d out of order", i+1, hour)
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("carbon: row %d: bad intensity %q: %w", i+1, row[1], err)
		}
		values = append(values, v)
	}
	return NewTrace(region, values)
}

// ReadElectricityMapsCSV parses the common export schema of public CIS
// feeds (ElectricityMaps and similar): a header row, an ISO-8601 or
// "2006-01-02 15:04" datetime in column datetimeCol and the carbon
// intensity (g/kWh) in column valueCol. Rows must be hourly and
// consecutive; the first row defines simulated time 0.
func ReadElectricityMapsCSV(region string, r io.Reader, datetimeCol, valueCol int) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("carbon: reading csv: %w", err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("carbon: csv has no data rows")
	}
	parseTime := func(s string) (time.Time, error) {
		for _, layout := range []string{time.RFC3339, "2006-01-02 15:04:05", "2006-01-02 15:04"} {
			if ts, err := time.Parse(layout, s); err == nil {
				return ts, nil
			}
		}
		return time.Time{}, fmt.Errorf("carbon: unparseable datetime %q", s)
	}
	var values []float64
	var prev time.Time
	for i, row := range rows[1:] {
		if datetimeCol >= len(row) || valueCol >= len(row) {
			return nil, fmt.Errorf("carbon: row %d: only %d columns", i+1, len(row))
		}
		ts, err := parseTime(row[datetimeCol])
		if err != nil {
			return nil, fmt.Errorf("carbon: row %d: %w", i+1, err)
		}
		if i > 0 && ts.Sub(prev) != time.Hour {
			return nil, fmt.Errorf("carbon: row %d: non-hourly step %v", i+1, ts.Sub(prev))
		}
		prev = ts
		v, err := strconv.ParseFloat(row[valueCol], 64)
		if err != nil {
			return nil, fmt.Errorf("carbon: row %d: bad intensity %q: %w", i+1, row[valueCol], err)
		}
		values = append(values, v)
	}
	return NewTrace(region, values)
}
