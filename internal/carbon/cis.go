package carbon

import (
	"math/rand"

	"github.com/carbonsched/gaia/internal/simtime"
)

// Service is the Carbon Information Service (CIS) interface consumed by
// schedulers: real-time intensity plus forecasts over a future window.
// The paper assumes perfect forecasts (citing CarbonCast's accuracy);
// PerfectService provides that, and NoisyService models forecast error for
// sensitivity studies.
type Service interface {
	// Intensity returns the current carbon intensity at t in g/kWh.
	Intensity(t simtime.Time) float64
	// ForecastIntegral returns the time-integral of CI over iv in
	// (g/kWh)·hours as forecast at time asOf (asOf <= iv.Start for a
	// scheduler asking about the future). A perfect CIS returns the
	// realized integral; real forecasters may only consult data up to
	// asOf.
	ForecastIntegral(asOf simtime.Time, iv simtime.Interval) float64
	// Region returns the grid region label.
	Region() string
}

// PerfectService is a CIS with perfect knowledge of the future: forecasts
// are the realized trace values.
type PerfectService struct {
	trace *Trace
}

// NewPerfectService wraps a trace as a perfect-knowledge CIS.
func NewPerfectService(tr *Trace) *PerfectService { return &PerfectService{trace: tr} }

// Intensity returns the realized CI at t.
func (s *PerfectService) Intensity(t simtime.Time) float64 { return s.trace.At(t) }

// ForecastIntegral returns the realized integral over iv regardless of
// asOf: perfect knowledge.
func (s *PerfectService) ForecastIntegral(_ simtime.Time, iv simtime.Interval) float64 {
	return s.trace.Integral(iv)
}

// Region returns the underlying trace's region.
func (s *PerfectService) Region() string { return s.trace.Region() }

// Trace exposes the underlying trace (accounting uses realized values).
func (s *PerfectService) Trace() *Trace { return s.trace }

// NoisyService perturbs forecasts with multiplicative noise whose standard
// deviation grows linearly with lead time, while Intensity (the "now"
// reading) stays exact. It models an imperfect CIS such as a day-ahead
// forecast feed.
type NoisyService struct {
	trace *Trace
	// ErrPerDay is the relative forecast error accrued per day of lead
	// time (e.g. 0.05 = 5 %/day).
	ErrPerDay float64
	noise     []float64 // per-slot frozen noise draws, pre-generated
}

// NewNoisyService wraps tr with multiplicative forecast noise seeded by
// seed. errPerDay is the relative error per day of lead time.
func NewNoisyService(tr *Trace, errPerDay float64, seed int64) *NoisyService {
	rng := rand.New(rand.NewSource(seed))
	noise := make([]float64, tr.Len())
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	return &NoisyService{trace: tr, ErrPerDay: errPerDay, noise: noise}
}

// Intensity returns the exact current CI.
func (s *NoisyService) Intensity(t simtime.Time) float64 { return s.trace.At(t) }

// ForecastIntegral integrates the noisy per-slot forecast over iv, with
// error growing with the lead time from asOf. Noise is frozen per slot so
// repeated queries are consistent within a run.
//
// The loop keeps each slot's arithmetic — sigma, factor, overlap hours —
// in the reference operand order so hoisting the per-slot interval and
// clamp bookkeeping cannot perturb a single bit of the result.
func (s *NoisyService) ForecastIntegral(asOf simtime.Time, iv simtime.Interval) float64 {
	if iv.IsEmpty() {
		return 0
	}
	if asOf > iv.Start {
		asOf = iv.Start
	}
	first := iv.Start.HourIndex()
	last := (iv.End - 1).HourIndex()
	errPerDay := s.ErrPerDay
	lastIdx := len(s.noise) - 1
	var total float64
	slotStart := simtime.Time(simtime.Duration(first) * simtime.Hour)
	for i := first; i <= last; i++ {
		slotEnd := slotStart + simtime.Time(simtime.Hour)
		ovStart, ovEnd := slotStart, slotEnd
		if iv.Start > ovStart {
			ovStart = iv.Start
		}
		if iv.End < ovEnd {
			ovEnd = iv.End
		}
		lead := slotStart.Sub(asOf)
		if lead < 0 {
			lead = 0
		}
		sigma := errPerDay * lead.Days()
		idx := i
		if idx < 0 {
			idx = 0
		} else if idx > lastIdx {
			idx = lastIdx
		}
		factor := 1 + sigma*s.noise[idx]
		if factor < 0.05 {
			factor = 0.05
		}
		total += s.trace.values[idx] * factor * ovEnd.Sub(ovStart).Hours()
		slotStart = slotEnd
	}
	return total
}

// Region returns the underlying trace's region.
func (s *NoisyService) Region() string { return s.trace.Region() }

var (
	_ Service = (*PerfectService)(nil)
	_ Service = (*NoisyService)(nil)
)
