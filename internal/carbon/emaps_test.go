package carbon

import (
	"strings"
	"testing"
)

func TestReadElectricityMapsCSV(t *testing.T) {
	in := "datetime,zone,carbon_intensity\n" +
		"2022-01-01T00:00:00Z,SE,35.2\n" +
		"2022-01-01T01:00:00Z,SE,36.1\n" +
		"2022-01-01T02:00:00Z,SE,34.9\n"
	tr, err := ReadElectricityMapsCSV("SE", strings.NewReader(in), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 || tr.Value(1) != 36.1 || tr.Region() != "SE" {
		t.Errorf("trace = %+v", tr)
	}
}

func TestReadElectricityMapsCSVSpaceFormat(t *testing.T) {
	in := "datetime,ci\n" +
		"2022-06-07 00:00,410\n" +
		"2022-06-07 01:00,395\n"
	tr, err := ReadElectricityMapsCSV("TX", strings.NewReader(in), 0, 1)
	if err != nil || tr.Len() != 2 {
		t.Fatalf("trace = %v, %v", tr, err)
	}
}

func TestReadElectricityMapsCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"headerOnly", "datetime,ci\n"},
		{"badTime", "datetime,ci\nnot-a-time,100\n"},
		{"badValue", "datetime,ci\n2022-01-01T00:00:00Z,abc\n"},
		{"gap", "datetime,ci\n2022-01-01T00:00:00Z,100\n2022-01-01T02:00:00Z,100\n"},
		{"negative", "datetime,ci\n2022-01-01T00:00:00Z,-5\n"},
		{"shortRow", "datetime,ci\n2022-01-01T00:00:00Z\n"},
	}
	for _, c := range cases {
		if _, err := ReadElectricityMapsCSV("x", strings.NewReader(c.in), 0, 1); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
