// Package carbon models grid carbon intensity: hourly traces with O(1)
// window integrals, a Carbon Information Service (CIS) abstraction that
// schedulers consume, synthetic generators for the six grid regions the
// paper evaluates, and an ERCOT-style energy price model.
//
// Carbon intensity (CI) is measured in g·CO2eq/kWh. A job drawing P kW for
// an interval iv emits P × Trace.Integral(iv) grams, where Integral is the
// time integral of CI over iv in (g/kWh)·hours.
package carbon

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/stats"
)

// Trace is an hourly carbon-intensity time series starting at simulated
// time 0. Queries outside the covered horizon clamp to the first/last slot
// so that schedulers probing slightly past the end of a run (e.g. a job
// arriving in the final hour with a 24 h window) remain well-defined.
type Trace struct {
	region string
	values []float64 // g/kWh per hourly slot
	prefix []float64 // prefix[i] = sum of values[0:i]
	oracle atomic.Pointer[Oracle]
	fp     atomic.Pointer[[32]byte]
}

// NewTrace builds a trace from hourly CI values (g/kWh). The slice is
// copied. It returns an error when values is empty or contains a negative
// intensity.
func NewTrace(region string, values []float64) (*Trace, error) {
	if len(values) == 0 {
		return nil, errors.New("carbon: trace needs at least one hourly value")
	}
	tr := &Trace{
		region: region,
		values: append([]float64(nil), values...),
		prefix: make([]float64, len(values)+1),
	}
	for i, v := range tr.values {
		if v < 0 {
			return nil, fmt.Errorf("carbon: negative intensity %v at hour %d", v, i)
		}
		tr.prefix[i+1] = tr.prefix[i] + v
	}
	return tr, nil
}

// MustTrace is NewTrace that panics on error; for tests and generators
// whose inputs are valid by construction.
func MustTrace(region string, values []float64) *Trace {
	tr, err := NewTrace(region, values)
	if err != nil {
		panic(err)
	}
	return tr
}

// Region returns the region label.
func (tr *Trace) Region() string { return tr.region }

// Fingerprint returns a content hash of the trace — the region label and
// the exact bit patterns of every hourly value — memoized on first use.
// Traces are immutable after construction, so the fingerprint is computed
// at most once and is safe to read from concurrent simulations. It is the
// carbon half of the content-addressed simulation cache key.
func (tr *Trace) Fingerprint() [32]byte {
	if fp := tr.fp.Load(); fp != nil {
		return *fp
	}
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(tr.region)))
	h.Write(buf[:])
	h.Write([]byte(tr.region))
	binary.LittleEndian.PutUint64(buf[:], uint64(len(tr.values)))
	h.Write(buf[:])
	for _, v := range tr.values {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	fp := new([32]byte)
	h.Sum(fp[:0])
	tr.fp.Store(fp)
	return *fp
}

// Len returns the number of hourly slots.
func (tr *Trace) Len() int { return len(tr.values) }

// Horizon returns the covered duration.
func (tr *Trace) Horizon() simtime.Duration {
	return simtime.Duration(len(tr.values)) * simtime.Hour
}

// Values returns a copy of the hourly values.
func (tr *Trace) Values() []float64 { return append([]float64(nil), tr.values...) }

// clampIndex maps an hour index onto the trace, clamping out-of-range
// queries to the boundary slots.
func (tr *Trace) clampIndex(i int) int {
	if i < 0 {
		return 0
	}
	if i >= len(tr.values) {
		return len(tr.values) - 1
	}
	return i
}

// At returns the carbon intensity of the slot containing t.
func (tr *Trace) At(t simtime.Time) float64 {
	return tr.values[tr.clampIndex(t.HourIndex())]
}

// Value returns the intensity of hourly slot i (clamped).
func (tr *Trace) Value(i int) float64 { return tr.values[tr.clampIndex(i)] }

// Integral returns the time integral of CI over iv, in (g/kWh)·hours.
// Multiplying by a power draw in kW yields grams of CO2eq. Minutes are
// weighted by their slot's intensity; out-of-range portions clamp to the
// boundary slots.
func (tr *Trace) Integral(iv simtime.Interval) float64 {
	if iv.IsEmpty() {
		return 0
	}
	// Clamp the interval to the covered horizon, accounting for the
	// clamped boundary slots explicitly.
	var total float64
	start, end := iv.Start, iv.End
	if start < 0 {
		pre := simtime.MinTime(end, 0).Sub(start)
		total += tr.values[0] * pre.Hours()
		start = 0
		if end < start {
			return total
		}
	}
	horizonEnd := simtime.Time(tr.Horizon())
	if end > horizonEnd {
		post := end.Sub(simtime.MaxTime(start, horizonEnd))
		total += tr.values[len(tr.values)-1] * post.Hours()
		end = horizonEnd
		if end < start {
			return total
		}
	}
	if end <= start {
		return total
	}

	first := start.HourIndex()
	last := (end - 1).HourIndex() // slot containing the final minute
	if first == last {
		return total + tr.values[first]*end.Sub(start).Hours()
	}
	// Partial first slot.
	firstSlotEnd := simtime.Time(first+1) * simtime.Time(simtime.Hour)
	total += tr.values[first] * firstSlotEnd.Sub(start).Hours()
	// Whole middle slots via prefix sums.
	total += tr.prefix[last] - tr.prefix[first+1]
	// Partial last slot.
	lastSlotStart := simtime.Time(last) * simtime.Time(simtime.Hour)
	total += tr.values[last] * end.Sub(lastSlotStart).Hours()
	return total
}

// MeanOver returns the average CI over iv, or 0 for an empty interval.
func (tr *Trace) MeanOver(iv simtime.Interval) float64 {
	if iv.Len() == 0 {
		return 0
	}
	return tr.Integral(iv) / iv.Len().Hours()
}

// Mean returns the average CI over the whole trace.
func (tr *Trace) Mean() float64 { return tr.prefix[len(tr.values)] / float64(len(tr.values)) }

// Stats summarizes a trace: used to classify regions (Figure 6).
type Stats struct {
	Mean, Std, CV, Min, Max float64
}

// Summary computes trace statistics.
func (tr *Trace) Summary() Stats {
	min, max, _ := stats.MinMax(tr.values)
	return Stats{
		Mean: tr.Mean(),
		Std:  stats.StdDev(tr.values),
		CV:   stats.CV(tr.values),
		Min:  min,
		Max:  max,
	}
}

// Slice returns a sub-trace covering hourly slots [from, to).
// Indices are clamped; an inverted range returns an error.
func (tr *Trace) Slice(from, to int) (*Trace, error) {
	if from < 0 {
		from = 0
	}
	if to > len(tr.values) {
		to = len(tr.values)
	}
	if to <= from {
		return nil, fmt.Errorf("carbon: empty slice [%d, %d)", from, to)
	}
	return NewTrace(tr.region, tr.values[from:to])
}

// MonthlyMeans returns the mean CI per month for the first simulated year
// of the trace (Figure 7). Months not covered by the trace report 0.
func (tr *Trace) MonthlyMeans() [12]float64 {
	var out [12]float64
	for m := 0; m < 12; m++ {
		iv := simtime.MonthInterval(m)
		if simtime.Time(tr.Horizon()) <= iv.Start {
			break
		}
		iv = iv.Intersect(simtime.Interval{Start: 0, End: simtime.Time(tr.Horizon())})
		out[m] = tr.MeanOver(iv)
	}
	return out
}

// PeakToTrough returns max/min CI over the window iv — the paper's
// "temporal variation" factor (Figure 1 reports up to 3.37× for
// California). It returns 0 when the minimum is 0.
func (tr *Trace) PeakToTrough(iv simtime.Interval) float64 {
	first := iv.Start.HourIndex()
	last := (iv.End - 1).HourIndex()
	min, max := tr.Value(first), tr.Value(first)
	for i := first + 1; i <= last; i++ {
		v := tr.Value(i)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min == 0 {
		return 0
	}
	return max / min
}
