package carbon

import (
	"sync"

	"github.com/carbonsched/gaia/internal/simtime"
)

// Oracle holds derived decision tables for one trace. Policies answer
// "where is the lowest-CI slot/window inside [now, now+W]?" in O(1) from
// these tables instead of re-scanning W forecast queries per job. Tables
// are built lazily, once per (W, L) pair, and cached for the lifetime of
// the trace, so a 30-cell sweep over one trace shares a single table set
// the same way it shares the immutable trace itself.
//
// All table entries are computed through the very same Trace.Value and
// Trace.Integral calls the reference policy implementations make, so
// consulting a table yields bit-identical floats — and therefore
// bit-identical decisions — to a fresh scan.
type Oracle struct {
	trace  *Trace
	mu     sync.Mutex
	queues map[oracleKey]*QueueTables
}

type oracleKey struct {
	w, l simtime.Duration
}

// Oracle returns the trace's decision-table cache, creating it on first
// use. Safe for concurrent callers; all of them observe the same Oracle.
func (tr *Trace) Oracle() *Oracle {
	if o := tr.oracle.Load(); o != nil {
		return o
	}
	o := &Oracle{trace: tr, queues: make(map[oracleKey]*QueueTables)}
	if tr.oracle.CompareAndSwap(nil, o) {
		return o
	}
	return tr.oracle.Load()
}

// Queue returns the tables for a queue with maximum wait w and length
// estimate l, building them on first request. It returns nil for
// configurations the tables cannot represent (negative wait or
// non-positive estimate). Safe for concurrent callers.
func (o *Oracle) Queue(w, l simtime.Duration) *QueueTables {
	if w < 0 || l <= 0 {
		return nil
	}
	key := oracleKey{w: w, l: l}
	o.mu.Lock()
	defer o.mu.Unlock()
	if t := o.queues[key]; t != nil {
		return t
	}
	t := newQueueTables(o.trace, w, l)
	o.queues[key] = t
	return t
}

// QueueTables are the precomputed per-(W, L) decision tables.
//
// A job arriving at minute `now` inside hourly slot i0 = now.HourIndex()
// considers the candidate starts {now} ∪ {hourly boundaries in
// (now, now+W]}; the number of boundaries is k = (now%60 + W) / 60, which
// is either k0 = W/60 or k0+1 depending on the arrival minute. The tables
// therefore hold, for both window widths, the leftmost index of the
// minimum over every window position:
//
//	vals[i]    = Trace.Value(i)                     (slot CI)
//	winSums[i] = Trace.Integral([i·1h, i·1h + L))   (the G_L window array)
//	slotMin[d] = sliding argmin of vals over k0+1+d consecutive slots
//	winMin[d]  = sliding argmin of winSums over k0+d consecutive slots
//
// Arrays extend k0+2 slots past the trace horizon — computed through the
// same clamped Value/Integral calls as any direct query — so jobs
// arriving in the final hours still answer from the tables.
type QueueTables struct {
	trace   *Trace
	w, l    simtime.Duration
	k0      int
	vals    []float64
	winSums []float64
	slotMin [2][]int32
	winMin  [2][]int32
}

func newQueueTables(tr *Trace, w, l simtime.Duration) *QueueTables {
	k0 := int(w / simtime.Hour)
	size := tr.Len() + k0 + 2
	vals := make([]float64, size)
	winSums := make([]float64, size)
	for i := 0; i < size; i++ {
		vals[i] = tr.Value(i)
		start := simtime.Time(simtime.Duration(i) * simtime.Hour)
		winSums[i] = tr.Integral(simtime.Interval{Start: start, End: start.Add(l)})
	}
	t := &QueueTables{trace: tr, w: w, l: l, k0: k0, vals: vals, winSums: winSums}
	t.slotMin[0] = slideMinIndex(vals, k0+1)
	t.slotMin[1] = slideMinIndex(vals, k0+2)
	if k0 >= 1 {
		t.winMin[0] = slideMinIndex(winSums, k0)
	}
	t.winMin[1] = slideMinIndex(winSums, k0+1)
	return t
}

// MaxWait returns the W the tables were built for.
func (t *QueueTables) MaxWait() simtime.Duration { return t.w }

// EstLength returns the length estimate L the window integrals use.
func (t *QueueTables) EstLength() simtime.Duration { return t.l }

// Integral is the underlying trace's window integral (policies use it for
// the minute-precise baseline window starting at `now`).
func (t *QueueTables) Integral(iv simtime.Interval) float64 { return t.trace.Integral(iv) }

// Boundaries returns the number k of hourly-boundary candidates in
// (now, now+W]. ok is false when now precedes the simulation origin or k
// falls outside the two precomputed widths (only possible for a caller
// asking about a different W than the tables were built for).
func (t *QueueTables) Boundaries(now simtime.Time) (k int, ok bool) {
	if now < 0 {
		return 0, false
	}
	m := int64(now) % int64(simtime.Hour)
	k = int((m + int64(t.w)) / int64(simtime.Hour))
	if k < t.k0 || k > t.k0+1 {
		return 0, false
	}
	return k, true
}

// Covers reports whether the window [i0, i0+k] lies inside the padded
// tables; callers fall back to a direct scan when it does not.
func (t *QueueTables) Covers(i0, k int) bool {
	return i0 >= 0 && i0+k < len(t.vals)
}

// LowestSlot returns the leftmost index of the minimum slot CI over
// candidate slots [i0, i0+k] — exactly the slot a strict-< scan in
// candidate order selects.
func (t *QueueTables) LowestSlot(i0, k int) (slot int, ok bool) {
	if !t.Covers(i0, k) {
		return 0, false
	}
	return int(t.slotMin[k-t.k0][i0]), true
}

// LowestWindow returns the leftmost index of the minimum L-window
// integral over the boundary slots [i0+1, i0+k]. It requires k >= 1.
func (t *QueueTables) LowestWindow(i0, k int) (slot int, ok bool) {
	if k < 1 || !t.Covers(i0, k) {
		return 0, false
	}
	return int(t.winMin[k-t.k0][i0+1]), true
}

// WindowSum returns the precomputed Integral([j·1h, j·1h+L)).
func (t *QueueTables) WindowSum(j int) float64 { return t.winSums[j] }

// SlotValue returns the (clamp-padded) CI of slot j.
func (t *QueueTables) SlotValue(j int) float64 { return t.vals[j] }

// slideMinIndex returns, for every i, the leftmost index of the minimum
// of base[i : min(i+k, len)] via a monotonic deque: the back is popped
// only on strictly greater values, so ties keep the earliest index —
// matching the strict-< scan the reference policies perform.
func slideMinIndex(base []float64, k int) []int32 {
	n := len(base)
	out := make([]int32, n)
	dq := make([]int32, n)
	head, tail, next := 0, 0, 0
	for i := 0; i < n; i++ {
		hi := i + k
		if hi > n {
			hi = n
		}
		for ; next < hi; next++ {
			v := base[next]
			for tail > head && base[dq[tail-1]] > v {
				tail--
			}
			dq[tail] = int32(next)
			tail++
		}
		for dq[head] < int32(i) {
			head++
		}
		out[i] = dq[head]
	}
	return out
}
