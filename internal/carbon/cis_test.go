package carbon

import (
	"math"
	"testing"

	"github.com/carbonsched/gaia/internal/simtime"
)

func TestPerfectService(t *testing.T) {
	tr := MustTrace("x", []float64{100, 200, 300})
	s := NewPerfectService(tr)
	if s.Region() != "x" {
		t.Errorf("Region = %q", s.Region())
	}
	if s.Intensity(90) != 200 {
		t.Errorf("Intensity = %v", s.Intensity(90))
	}
	iv := simtime.Interval{Start: 0, End: 120}
	if got := s.ForecastIntegral(0, iv); !almostEq(got, 300, 1e-9) {
		t.Errorf("ForecastIntegral = %v", got)
	}
	if s.Trace() != tr {
		t.Error("Trace accessor broken")
	}
}

func TestNoisyServiceNowIsExact(t *testing.T) {
	tr := RegionCAUS.Generate(200, 5)
	s := NewNoisyService(tr, 0.05, 9)
	for _, tm := range []simtime.Time{0, 500, 9000} {
		if s.Intensity(tm) != tr.At(tm) {
			t.Error("current intensity must be exact")
		}
	}
	if s.Region() != tr.Region() {
		t.Error("Region mismatch")
	}
}

func TestNoisyServiceZeroErrorMatchesPerfect(t *testing.T) {
	tr := RegionCAUS.Generate(200, 5)
	noisy := NewNoisyService(tr, 0, 9)
	iv := simtime.Interval{Start: 90, End: 3000}
	if got, want := noisy.ForecastIntegral(0, iv), tr.Integral(iv); !almostEq(got, want, 1e-6) {
		t.Errorf("zero-error forecast %v != realized %v", got, want)
	}
	if noisy.ForecastIntegral(0, simtime.Interval{Start: 10, End: 10}) != 0 {
		t.Error("empty interval should be 0")
	}
}

func TestNoisyServiceErrorGrowsWithLead(t *testing.T) {
	tr := RegionCAUS.Generate(24*40, 5)
	s := NewNoisyService(tr, 0.10, 9)
	relErr := func(asOf simtime.Time, iv simtime.Interval) float64 {
		want := tr.Integral(iv)
		got := s.ForecastIntegral(asOf, iv)
		return math.Abs(got-want) / want
	}
	// Average over several windows to damp luck.
	var nearSum, farSum float64
	n := 20
	for k := 0; k < n; k++ {
		base := simtime.Time(simtime.Duration(k) * simtime.Day)
		near := simtime.Interval{Start: base, End: base.Add(6 * simtime.Hour)}
		far := simtime.Interval{Start: base.Add(7 * simtime.Day), End: base.Add(7*simtime.Day + 6*simtime.Hour)}
		nearSum += relErr(base, near)
		farSum += relErr(base, far)
	}
	if farSum <= nearSum {
		t.Errorf("far-lead error %v should exceed near-lead error %v", farSum/float64(n), nearSum/float64(n))
	}
}

func TestNoisyServiceDeterministic(t *testing.T) {
	tr := RegionCAUS.Generate(100, 5)
	a := NewNoisyService(tr, 0.1, 42)
	b := NewNoisyService(tr, 0.1, 42)
	iv := simtime.Interval{Start: 0, End: 6000}
	if a.ForecastIntegral(0, iv) != b.ForecastIntegral(0, iv) {
		t.Error("same seed must give same forecasts")
	}
}
