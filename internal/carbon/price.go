package carbon

import (
	"errors"
	"math/rand"

	"github.com/carbonsched/gaia/internal/simtime"
	"github.com/carbonsched/gaia/internal/stats"
)

// PriceTrace is an hourly electricity price series ($/MWh). It supports
// the paper's Figure 20 discussion: in wholesale markets such as ERCOT the
// price and carbon-intensity valleys only partially align (reported
// correlation coefficient ≈0.16), leaving private-cloud operators with a
// carbon-cost trade-off of their own.
type PriceTrace struct {
	values []float64
}

// NewPriceTrace wraps hourly prices. Negative prices are allowed (they
// occur in real markets during renewable oversupply).
func NewPriceTrace(values []float64) (*PriceTrace, error) {
	if len(values) == 0 {
		return nil, errors.New("carbon: price trace needs at least one value")
	}
	return &PriceTrace{values: append([]float64(nil), values...)}, nil
}

// Len returns the number of hourly slots.
func (p *PriceTrace) Len() int { return len(p.values) }

// At returns the price of the slot containing t (clamped at the edges).
func (p *PriceTrace) At(t simtime.Time) float64 {
	i := t.HourIndex()
	if i < 0 {
		i = 0
	}
	if i >= len(p.values) {
		i = len(p.values) - 1
	}
	return p.values[i]
}

// Values returns a copy of the hourly prices.
func (p *PriceTrace) Values() []float64 { return append([]float64(nil), p.values...) }

// ERCOTModel generates a paired (carbon, price) hour series resembling the
// Texas grid: a duck-ish CI profile, demand-driven evening price peaks,
// occasional scarcity spikes, and a weak positive carbon-price coupling.
type ERCOTModel struct {
	// BasePrice is the mean energy price in $/MWh.
	BasePrice float64
	// PeakAmp is the diurnal price amplitude in $/MWh.
	PeakAmp float64
	// SpikeProb is the per-hour probability of a scarcity spike.
	SpikeProb float64
	// SpikeScale is the mean magnitude of scarcity spikes in $/MWh.
	SpikeScale float64
	// CarbonCoupling converts CI deviation (g/kWh) into price ($/MWh);
	// small positive values yield the weak observed correlation.
	CarbonCoupling float64
	// NoiseStd is white price noise in $/MWh.
	NoiseStd float64
}

// DefaultERCOTModel matches the paper's qualitative description and a
// correlation coefficient near 0.16 against the generated carbon trace.
func DefaultERCOTModel() ERCOTModel {
	return ERCOTModel{
		BasePrice:      42,
		PeakAmp:        26,
		SpikeProb:      0.012,
		SpikeScale:     260,
		CarbonCoupling: 0.055,
		NoiseStd:       11,
	}
}

// ercotRegion is the CI model used alongside ERCOT prices (gas-heavy Texas
// grid with substantial wind and solar).
var ercotRegion = RegionSpec{
	Code: "TX-US", Name: "Texas, US (ERCOT)", Class: "Medium/Variable",
	Mean: 410, DiurnalAmp: 95, Shape: ShapeDuck,
	SeasonalAmp: 0.08, SeasonalPeakMonth: 7,
	WeatherStd: 35, WeatherRho: 0.98, NoiseStd: 16, Floor: 150,
}

// Generate produces hours of paired carbon and price data. The price's
// diurnal peak is deliberately offset from the CI trough so that on some
// days the valleys align and on others they conflict (Figure 20).
func (m ERCOTModel) Generate(hours int, seed int64) (*Trace, *PriceTrace) {
	ci := ercotRegion.Generate(hours, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	prices := make([]float64, hours)
	ciMean := ci.Mean()
	// Per-day renewable-supply weight: on high-renewable days the price
	// profile follows the solar duck (midday valley aligns with the CI
	// valley); on low-renewable days it follows demand (evening peak,
	// overnight valley) and the two valleys conflict.
	blend := 0.0
	for i := 0; i < hours; i++ {
		t := simtime.Time(simtime.Duration(i) * simtime.Hour)
		hod := t.HourOfDay()
		if hod == 0 || i == 0 {
			blend = rng.Float64()
		}
		diurnal := blend*duckProfile[hod] + (1-blend)*eveningProfile[hod]
		v := m.BasePrice + m.PeakAmp*diurnal
		v += m.CarbonCoupling * (ci.Value(i) - ciMean)
		v += m.NoiseStd * rng.NormFloat64()
		if rng.Float64() < m.SpikeProb {
			v += m.SpikeScale * rng.ExpFloat64()
		}
		if v < -20 {
			v = -20
		}
		prices[i] = v
	}
	pt, err := NewPriceTrace(prices)
	if err != nil {
		panic(err) // unreachable: hours > 0 validated by trace generation
	}
	return ci, pt
}

// CarbonPriceCorrelation computes the Pearson correlation between a carbon
// trace and a price trace over their common prefix.
func CarbonPriceCorrelation(ci *Trace, pr *PriceTrace) (float64, error) {
	n := ci.Len()
	if pr.Len() < n {
		n = pr.Len()
	}
	cs := make([]float64, n)
	ps := make([]float64, n)
	for i := 0; i < n; i++ {
		cs[i] = ci.Value(i)
		ps[i] = pr.values[i]
	}
	return stats.Correlation(cs, ps)
}
