package carbon

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the carbon parser never panics and accepted traces
// round-trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("hour,carbon_intensity\n0,100\n1,200.5\n")
	f.Add("hour,ci\n0,-1\n")
	f.Add("")
	f.Add("hour,ci\n1,100\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV("fuzz", strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		again, err := ReadCSV("fuzz2", &buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.Len() != tr.Len() {
			t.Fatalf("round trip changed length")
		}
	})
}

// FuzzReadElectricityMapsCSV asserts the external-schema parser never
// panics on arbitrary input.
func FuzzReadElectricityMapsCSV(f *testing.F) {
	f.Add("datetime,ci\n2022-01-01T00:00:00Z,100\n", 0, 1)
	f.Add("a,b,c\n2022-01-01 05:00,x,9\n", 0, 2)
	f.Add("", 3, 7)
	f.Fuzz(func(t *testing.T, input string, dtCol, vCol int) {
		if dtCol < 0 || vCol < 0 || dtCol > 16 || vCol > 16 {
			return
		}
		_, _ = ReadElectricityMapsCSV("fuzz", strings.NewReader(input), dtCol, vCol)
	})
}
