package carbon

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/carbonsched/gaia/internal/simtime"
)

// FuzzReadCSV asserts the carbon parser never panics and accepted traces
// round-trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("hour,carbon_intensity\n0,100\n1,200.5\n")
	f.Add("hour,ci\n0,-1\n")
	f.Add("")
	f.Add("hour,ci\n1,100\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV("fuzz", strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		again, err := ReadCSV("fuzz2", &buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.Len() != tr.Len() {
			t.Fatalf("round trip changed length")
		}
	})
}

// FuzzTraceIntegral differentially tests the prefix-sum Integral against a
// naive minute-by-minute summation, including intervals that straddle the
// pre-horizon (negative start) and post-horizon clamping regions.
func FuzzTraceIntegral(f *testing.F) {
	f.Add(int64(1), 24, int64(0), int64(90))         // in-horizon, partial slots
	f.Add(int64(2), 1, int64(-30), int64(90))        // single-slot trace, both clamps
	f.Add(int64(3), 48, int64(-120), int64(30))      // pre-horizon straddle
	f.Add(int64(4), 48, int64(47*60+30), int64(200)) // post-horizon straddle
	f.Add(int64(5), 6, int64(400), int64(0))         // empty interval
	f.Fuzz(func(t *testing.T, seed int64, n int, start, length int64) {
		if n < 1 || n > 200 || length < 0 || length > 20000 || start < -20000 || start > 20000 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		values := make([]float64, n)
		for i := range values {
			values[i] = 800 * rng.Float64()
		}
		tr := MustTrace("fuzz", values)
		iv := simtime.Interval{Start: simtime.Time(start), End: simtime.Time(start + length)}
		got := tr.Integral(iv)

		// Naive reference: each minute contributes 1/60 h at its slot's
		// (clamped) intensity.
		var want float64
		for m := iv.Start; m < iv.End; m++ {
			i := m.HourIndex()
			if i < 0 {
				i = 0
			}
			if i >= n {
				i = n - 1
			}
			want += values[i] / 60
		}
		if diff := math.Abs(got - want); diff > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("Integral(%v) = %v, naive sum = %v (diff %g)", iv, got, want, diff)
		}
	})
}

// FuzzReadElectricityMapsCSV asserts the external-schema parser never
// panics on arbitrary input.
func FuzzReadElectricityMapsCSV(f *testing.F) {
	f.Add("datetime,ci\n2022-01-01T00:00:00Z,100\n", 0, 1)
	f.Add("a,b,c\n2022-01-01 05:00,x,9\n", 0, 2)
	f.Add("", 3, 7)
	f.Fuzz(func(t *testing.T, input string, dtCol, vCol int) {
		if dtCol < 0 || vCol < 0 || dtCol > 16 || vCol > 16 {
			return
		}
		_, _ = ReadElectricityMapsCSV("fuzz", strings.NewReader(input), dtCol, vCol)
	})
}
