package carbon

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/carbonsched/gaia/internal/simtime"
)

// naiveSlideMin is the brute-force leftmost argmin slideMinIndex must
// reproduce.
func naiveSlideMin(base []float64, k int) []int32 {
	out := make([]int32, len(base))
	for i := range base {
		hi := i + k
		if hi > len(base) {
			hi = len(base)
		}
		best := i
		for j := i + 1; j < hi; j++ {
			if base[j] < base[best] {
				best = j
			}
		}
		out[i] = int32(best)
	}
	return out
}

func TestSlideMinIndexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 7, 48, 200} {
		for _, k := range []int{1, 2, 5, 24, n + 3} {
			// Quantized values force ties: the deque must keep the
			// leftmost index, like a strict-< scan.
			base := make([]float64, n)
			for i := range base {
				base[i] = float64(rng.Intn(4)) * 100
			}
			got := slideMinIndex(base, k)
			want := naiveSlideMin(base, k)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d k=%d: argmin[%d] = %d, want %d", n, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestQueueTablesMatchDirectQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	values := make([]float64, 72)
	for i := range values {
		values[i] = 50 + 400*rng.Float64()
	}
	tr := MustTrace("test", values)
	w := 6*simtime.Hour + 30*simtime.Minute
	l := 95 * simtime.Minute
	qt := tr.Oracle().Queue(w, l)

	if qt.MaxWait() != w || qt.EstLength() != l {
		t.Fatalf("tables report (%v, %v), want (%v, %v)", qt.MaxWait(), qt.EstLength(), w, l)
	}
	// Every table entry — including the padding past the horizon — must
	// be the exact float a direct query returns.
	for j := 0; j < tr.Len()+int(w/simtime.Hour)+2; j++ {
		start := simtime.Time(simtime.Duration(j) * simtime.Hour)
		if got, want := qt.SlotValue(j), tr.Value(j); got != want {
			t.Fatalf("vals[%d] = %v, want %v", j, got, want)
		}
		iv := simtime.Interval{Start: start, End: start.Add(l)}
		if got, want := qt.WindowSum(j), tr.Integral(iv); got != want {
			t.Fatalf("winSums[%d] = %v, want %v", j, got, want)
		}
	}
	// Boundary counts across arrival minutes: k hourly boundaries lie in
	// (now, now+w].
	for _, now := range []simtime.Time{0, 1, 29, 30, 59, 60, 61, 4321} {
		k, ok := qt.Boundaries(now)
		if !ok {
			t.Fatalf("Boundaries(%v) not ok", now)
		}
		want := 0
		for b := simtime.Time((now.HourIndex() + 1) * int(simtime.Hour)); b <= now.Add(w); b = b.Add(simtime.Hour) {
			want++
		}
		if k != want {
			t.Fatalf("Boundaries(%v) = %d, want %d", now, k, want)
		}
		// The argmin lookups agree with a direct strict-< scan.
		i0 := now.HourIndex()
		if slot, ok := qt.LowestSlot(i0, k); ok {
			best := i0
			for j := i0 + 1; j <= i0+k; j++ {
				if tr.Value(j) < tr.Value(best) {
					best = j
				}
			}
			if slot != best {
				t.Fatalf("LowestSlot(%d, %d) = %d, want %d", i0, k, slot, best)
			}
		} else {
			t.Fatalf("LowestSlot(%d, %d) not covered", i0, k)
		}
	}
}

func TestOracleIsCachedPerTraceAndKey(t *testing.T) {
	tr := MustTrace("test", []float64{100, 200, 300})
	if tr.Oracle() != tr.Oracle() {
		t.Fatal("Oracle() returned distinct caches for one trace")
	}
	o := tr.Oracle()
	a := o.Queue(6*simtime.Hour, simtime.Hour)
	if b := o.Queue(6*simtime.Hour, simtime.Hour); a != b {
		t.Fatal("same (W, L) built tables twice")
	}
	if c := o.Queue(24*simtime.Hour, simtime.Hour); c == a {
		t.Fatal("distinct W shared tables")
	}
	if o.Queue(-simtime.Hour, simtime.Hour) != nil {
		t.Fatal("negative wait should have no tables")
	}
	if o.Queue(simtime.Hour, 0) != nil {
		t.Fatal("non-positive estimate should have no tables")
	}
}

// TestOracleConcurrentAccess exercises the lazy init and the (W, L) cache
// from many goroutines; `go test -race` verifies the synchronization.
func TestOracleConcurrentAccess(t *testing.T) {
	tr := MustTrace("test", []float64{100, 200, 300, 400})
	var wg sync.WaitGroup
	tables := make([]*QueueTables, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			tables[g] = tr.Oracle().Queue(6*simtime.Hour, simtime.Hour)
		}()
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		if tables[g] != tables[0] {
			t.Fatal("concurrent callers observed distinct tables")
		}
	}
}
