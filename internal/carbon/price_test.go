package carbon

import (
	"testing"

	"github.com/carbonsched/gaia/internal/simtime"
)

func TestPriceTraceBasics(t *testing.T) {
	if _, err := NewPriceTrace(nil); err == nil {
		t.Error("empty price trace should error")
	}
	pt, err := NewPriceTrace([]float64{10, -5, 30})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Len() != 3 {
		t.Errorf("Len = %d", pt.Len())
	}
	if pt.At(0) != 10 || pt.At(70) != -5 || pt.At(-9) != 10 || pt.At(1e6) != 30 {
		t.Error("At clamping broken")
	}
	vs := pt.Values()
	vs[0] = 99
	if pt.At(0) != 10 {
		t.Error("Values must return a copy")
	}
}

func TestERCOTCorrelationBand(t *testing.T) {
	// The paper reports a carbon-price correlation coefficient of 0.16
	// for ERCOT; our generator should land in a loose band around it.
	ci, pr := DefaultERCOTModel().Generate(24*365, 11)
	r, err := CarbonPriceCorrelation(ci, pr)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.02 || r > 0.45 {
		t.Errorf("carbon-price correlation = %v, want weakly positive ≈0.16", r)
	}
}

func TestERCOTGenerateDeterministic(t *testing.T) {
	ci1, pr1 := DefaultERCOTModel().Generate(200, 3)
	ci2, pr2 := DefaultERCOTModel().Generate(200, 3)
	for i := 0; i < 200; i++ {
		if ci1.Value(i) != ci2.Value(i) || pr1.values[i] != pr2.values[i] {
			t.Fatal("same seed must reproduce the pair")
		}
	}
}

func TestERCOTConflictDaysExist(t *testing.T) {
	// Figure 20's point: on some days the cheapest window is not the
	// cleanest window. Check both aligned and conflicting days occur.
	ci, pr := DefaultERCOTModel().Generate(24*120, 11)
	aligned, conflict := 0, 0
	for d := 0; d < 120; d++ {
		argmin := func(vals func(h int) float64) int {
			best, bh := vals(0), 0
			for h := 1; h < 24; h++ {
				if v := vals(h); v < best {
					best, bh = v, h
				}
			}
			return bh
		}
		base := d * 24
		cMin := argmin(func(h int) float64 { return ci.Value(base + h) })
		pMin := argmin(func(h int) float64 { return pr.At(simtime.Time(simtime.Duration(base+h) * simtime.Hour)) })
		diff := cMin - pMin
		if diff < 0 {
			diff = -diff
		}
		if diff <= 3 {
			aligned++
		} else {
			conflict++
		}
	}
	if aligned == 0 || conflict == 0 {
		t.Errorf("want both aligned and conflicting days, got %d/%d", aligned, conflict)
	}
}

func TestCarbonPriceCorrelationLengthMismatch(t *testing.T) {
	ci := MustTrace("x", []float64{1, 2, 3, 4})
	pr, _ := NewPriceTrace([]float64{5, 6})
	if _, err := CarbonPriceCorrelation(ci, pr); err != nil {
		t.Errorf("common-prefix correlation should work: %v", err)
	}
}
