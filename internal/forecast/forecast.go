// Package forecast implements a real carbon-intensity forecaster, so the
// paper's perfect-forecast assumption (justified there by CarbonCast's
// accuracy) can be replaced by a model that only sees past data.
//
// The model is a seasonal profile plus a decaying residual correction,
// the standard strong baseline for day-ahead grid CI:
//
//	forecast(τ | asOf) = profile(hourOfWeek(τ); trailing window before asOf)
//	                   + ρ^(τ−asOf) · (actual(asOf) − profile(asOf))
//
// where the profile is the mean CI at the same hour-of-week over the
// trailing training window, and the residual term propagates the
// currently observed deviation with persistence ρ per hour.
package forecast

import (
	"fmt"
	"math"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/simtime"
)

const hoursPerWeek = 24 * 7

// SeasonalNaive is a trailing-window seasonal forecaster over a realized
// trace. It implements carbon.Service: Intensity reads the live value and
// ForecastIntegral uses only data at or before asOf.
type SeasonalNaive struct {
	trace *carbon.Trace
	// TrainingDays is the trailing window the profile averages over.
	TrainingDays int
	// Rho is the per-hour persistence of the current residual.
	Rho float64

	// occPrefix[w][k] = sum of the first k realized values at
	// hour-of-week w (occurrences in hour-index order), enabling O(1)
	// trailing-window means.
	occPrefix [hoursPerWeek][]float64
}

// NewSeasonalNaive builds the forecaster over tr. trainingDays must be at
// least 7 (one full week of seasonal coverage); rho in [0, 1).
func NewSeasonalNaive(tr *carbon.Trace, trainingDays int, rho float64) (*SeasonalNaive, error) {
	if trainingDays < 7 {
		return nil, fmt.Errorf("forecast: training window %d days must be >= 7", trainingDays)
	}
	if rho < 0 || rho >= 1 {
		return nil, fmt.Errorf("forecast: rho %v must be in [0, 1)", rho)
	}
	s := &SeasonalNaive{trace: tr, TrainingDays: trainingDays, Rho: rho}
	for w := 0; w < hoursPerWeek; w++ {
		n := (tr.Len()-w+hoursPerWeek-1)/hoursPerWeek + 1
		s.occPrefix[w] = make([]float64, 1, n)
	}
	for i := 0; i < tr.Len(); i++ {
		w := i % hoursPerWeek
		p := s.occPrefix[w]
		s.occPrefix[w] = append(p, p[len(p)-1]+tr.Value(i))
	}
	return s, nil
}

// Region implements carbon.Service.
func (s *SeasonalNaive) Region() string { return s.trace.Region() }

// Intensity implements carbon.Service: the live reading is exact.
func (s *SeasonalNaive) Intensity(t simtime.Time) float64 { return s.trace.At(t) }

// profileAt returns the trailing-window hour-of-week mean for hour index
// h, training on hours in [h - trainingDays*24, h). It falls back to the
// current value when no history exists yet (cold start).
func (s *SeasonalNaive) profileAt(h int) float64 {
	if h <= 0 {
		return s.trace.Value(0)
	}
	w := h % hoursPerWeek
	// Occurrences of hour-of-week w strictly before h: indices w,
	// w+168, ... < min(h, len).
	end := h
	if end > s.trace.Len() {
		end = s.trace.Len()
	}
	start := h - s.TrainingDays*24
	if start < 0 {
		start = 0
	}
	countBefore := func(limit int) int {
		if limit <= w {
			return 0
		}
		return (limit-w-1)/hoursPerWeek + 1
	}
	hi := countBefore(end)
	lo := countBefore(start)
	if hi <= lo {
		// No same-hour-of-week history in the window; fall back to the
		// most recent observed value.
		return s.trace.Value(end - 1)
	}
	p := s.occPrefix[w]
	return (p[hi] - p[lo]) / float64(hi-lo)
}

// ForecastValue returns the forecast CI for the slot containing τ as seen
// at asOf.
func (s *SeasonalNaive) ForecastValue(asOf, tau simtime.Time) float64 {
	hNow := asOf.HourIndex()
	hTau := tau.HourIndex()
	if hTau <= hNow {
		// The past (and the current slot) is observed, not forecast.
		return s.trace.At(tau)
	}
	prof := s.profileAt(hTau)
	residual := s.trace.At(asOf) - s.profileAt(hNow)
	lead := float64(hTau - hNow)
	v := prof + residual*math.Pow(s.Rho, lead)
	if v < 0 {
		v = 0
	}
	return v
}

// ForecastIntegral implements carbon.Service: slot-by-slot integration of
// the forecast over iv as seen at asOf.
func (s *SeasonalNaive) ForecastIntegral(asOf simtime.Time, iv simtime.Interval) float64 {
	if iv.IsEmpty() {
		return 0
	}
	var total float64
	first := iv.Start.HourIndex()
	last := (iv.End - 1).HourIndex()
	for i := first; i <= last; i++ {
		slot := simtime.Interval{
			Start: simtime.Time(simtime.Duration(i) * simtime.Hour),
			End:   simtime.Time(simtime.Duration(i+1) * simtime.Hour),
		}
		ov := slot.Intersect(iv)
		total += s.ForecastValue(asOf, slot.Start) * ov.Len().Hours()
	}
	return total
}

var _ carbon.Service = (*SeasonalNaive)(nil)

// Accuracy summarizes forecast error at one lead time.
type Accuracy struct {
	LeadHours int
	MAPE      float64 // mean absolute percentage error
	RMSE      float64 // root mean squared error, g/kWh
	N         int     // evaluation points
}

// Evaluate measures forecast accuracy at the given lead times over the
// whole trace (skipping a warm-up of trainingDays so the profile is
// populated).
func (s *SeasonalNaive) Evaluate(leads []int) []Accuracy {
	out := make([]Accuracy, 0, len(leads))
	warm := s.TrainingDays * 24
	for _, lead := range leads {
		var apeSum, seSum float64
		n := 0
		for h := warm; h+lead < s.trace.Len(); h++ {
			asOf := simtime.Time(simtime.Duration(h) * simtime.Hour)
			tau := simtime.Time(simtime.Duration(h+lead) * simtime.Hour)
			got := s.ForecastValue(asOf, tau)
			want := s.trace.Value(h + lead)
			if want <= 0 {
				continue
			}
			apeSum += math.Abs(got-want) / want
			seSum += (got - want) * (got - want)
			n++
		}
		acc := Accuracy{LeadHours: lead, N: n}
		if n > 0 {
			acc.MAPE = apeSum / float64(n)
			acc.RMSE = math.Sqrt(seSum / float64(n))
		}
		out = append(out, acc)
	}
	return out
}
