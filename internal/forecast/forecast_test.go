package forecast

import (
	"math"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/simtime"
)

func TestNewSeasonalNaiveValidation(t *testing.T) {
	tr := carbon.RegionCAUS.Generate(24*40, 1)
	if _, err := NewSeasonalNaive(tr, 3, 0.9); err == nil {
		t.Error("window < 7 days should error")
	}
	for _, rho := range []float64{-0.1, 1.0} {
		if _, err := NewSeasonalNaive(tr, 14, rho); err == nil {
			t.Errorf("rho %v should error", rho)
		}
	}
	if _, err := NewSeasonalNaive(tr, 14, 0.9); err != nil {
		t.Fatal(err)
	}
}

func TestPerfectOnPerfectlyPeriodicSignal(t *testing.T) {
	// A strictly weekly-periodic signal is forecast exactly (beyond warmup)
	// because the profile equals the signal and the residual is 0.
	vals := make([]float64, 24*28)
	for i := range vals {
		vals[i] = 100 + 50*math.Sin(2*math.Pi*float64(i%168)/168)
	}
	tr := carbon.MustTrace("periodic", vals)
	s, err := NewSeasonalNaive(tr, 14, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	asOf := simtime.Time(20 * simtime.Day)
	for lead := 1; lead <= 48; lead++ {
		tau := asOf.Add(simtime.Duration(lead) * simtime.Hour)
		got := s.ForecastValue(asOf, tau)
		want := tr.At(tau)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("lead %dh: forecast %v, want %v", lead, got, want)
		}
	}
}

func TestPastIsObservedNotForecast(t *testing.T) {
	tr := carbon.RegionSAAU.Generate(24*30, 2)
	s, _ := NewSeasonalNaive(tr, 14, 0.9)
	asOf := simtime.Time(20 * simtime.Day)
	for _, back := range []simtime.Duration{0, simtime.Hour, simtime.Day} {
		tau := asOf.Add(-back)
		if got := s.ForecastValue(asOf, tau); got != tr.At(tau) {
			t.Errorf("past value at -%v should be exact", back)
		}
	}
}

func TestErrorGrowsWithLead(t *testing.T) {
	tr := carbon.RegionSAAU.Generate(24*120, 3)
	s, _ := NewSeasonalNaive(tr, 28, 0.9)
	acc := s.Evaluate([]int{1, 6, 24, 72})
	for i := 1; i < len(acc); i++ {
		if acc[i].N == 0 {
			t.Fatalf("lead %d: no evaluation points", acc[i].LeadHours)
		}
	}
	if acc[0].MAPE >= acc[3].MAPE {
		t.Errorf("1h MAPE %v should be below 72h MAPE %v", acc[0].MAPE, acc[3].MAPE)
	}
	// Day-ahead error should be in a plausible band for a seasonal model
	// on a volatile grid — meaningful but far from useless.
	if acc[2].MAPE < 0.02 || acc[2].MAPE > 0.8 {
		t.Errorf("24h MAPE = %v, want a plausible band", acc[2].MAPE)
	}
}

func TestForecastBeatsNaiveMean(t *testing.T) {
	// The seasonal forecaster must beat the trivial "predict the annual
	// mean" baseline at day-ahead leads on a duck-curve grid.
	tr := carbon.RegionCAUS.Generate(24*120, 4)
	s, _ := NewSeasonalNaive(tr, 28, 0.9)
	mean := tr.Mean()
	var apeModel, apeMean float64
	n := 0
	warm := 28 * 24
	for h := warm; h+24 < tr.Len(); h += 7 {
		asOf := simtime.Time(simtime.Duration(h) * simtime.Hour)
		tau := asOf.Add(24 * simtime.Hour)
		want := tr.At(tau)
		apeModel += math.Abs(s.ForecastValue(asOf, tau)-want) / want
		apeMean += math.Abs(mean-want) / want
		n++
	}
	if apeModel >= apeMean {
		t.Errorf("seasonal MAPE %v should beat mean-baseline MAPE %v", apeModel/float64(n), apeMean/float64(n))
	}
}

func TestForecastIntegralConsistency(t *testing.T) {
	tr := carbon.RegionCAUS.Generate(24*60, 5)
	s, _ := NewSeasonalNaive(tr, 14, 0.9)
	asOf := simtime.Time(30 * simtime.Day)
	// Integral is additive over adjacent windows.
	a := simtime.Interval{Start: asOf.Add(2 * simtime.Hour), End: asOf.Add(5 * simtime.Hour)}
	b := simtime.Interval{Start: asOf.Add(5 * simtime.Hour), End: asOf.Add(9 * simtime.Hour)}
	whole := simtime.Interval{Start: a.Start, End: b.End}
	sum := s.ForecastIntegral(asOf, a) + s.ForecastIntegral(asOf, b)
	if math.Abs(sum-s.ForecastIntegral(asOf, whole)) > 1e-9 {
		t.Error("forecast integral not additive")
	}
	if s.ForecastIntegral(asOf, simtime.Interval{Start: 5, End: 5}) != 0 {
		t.Error("empty interval should be 0")
	}
	// Integral over the observed past equals the realized integral.
	past := simtime.Interval{Start: asOf.Add(-5 * simtime.Hour), End: asOf.Add(-2 * simtime.Hour)}
	if math.Abs(s.ForecastIntegral(asOf, past)-tr.Integral(past)) > 1e-9 {
		t.Error("past integral should be realized")
	}
}

func TestColdStartFallsBack(t *testing.T) {
	tr := carbon.RegionCAUS.Generate(24*30, 6)
	s, _ := NewSeasonalNaive(tr, 14, 0.9)
	// With asOf in the first hours there is no profile history; the
	// forecaster must still return finite non-negative values.
	for lead := 1; lead <= 24; lead++ {
		v := s.ForecastValue(2, simtime.Time(2).Add(simtime.Duration(lead)*simtime.Hour))
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("cold-start forecast invalid: %v", v)
		}
	}
}

func TestServiceContract(t *testing.T) {
	tr := carbon.RegionCAUS.Generate(24*30, 7)
	s, _ := NewSeasonalNaive(tr, 14, 0.9)
	if s.Region() != tr.Region() {
		t.Error("Region mismatch")
	}
	if s.Intensity(90) != tr.At(90) {
		t.Error("Intensity should read the live trace")
	}
}
