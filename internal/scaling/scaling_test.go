package scaling

import (
	"math"
	"testing"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/simtime"
)

func cisOver(values []float64) carbon.Service {
	return carbon.NewPerfectService(carbon.MustTrace("t", values))
}

func TestAmdahl(t *testing.T) {
	a := Amdahl{Parallel: 0.9}
	if a.Throughput(1) != 1 {
		t.Errorf("s(1) = %v", a.Throughput(1))
	}
	if a.Throughput(0) != 0 {
		t.Errorf("s(0) = %v", a.Throughput(0))
	}
	// Monotone, concave, bounded by 1/(1-p) = 10.
	prev, prevDelta := 1.0, math.Inf(1)
	for k := 2; k <= 64; k++ {
		s := a.Throughput(k)
		if s <= prev {
			t.Fatalf("not monotone at k=%d", k)
		}
		delta := s - prev
		if delta > prevDelta+1e-12 {
			t.Fatalf("not concave at k=%d", k)
		}
		prev, prevDelta = s, delta
	}
	if prev >= 10 {
		t.Errorf("speedup should stay below 1/(1-p)=10, got %v", prev)
	}
	if (Linear{}).Throughput(7) != 7 || (Linear{}).Throughput(-1) != 0 {
		t.Error("Linear curve broken")
	}
}

func TestValidate(t *testing.T) {
	good := ElasticJob{Work: 4, MaxParallel: 4, Deadline: 24 * simtime.Hour, Curve: Linear{}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ElasticJob{
		{Work: 0, MaxParallel: 1, Deadline: simtime.Hour},
		{Work: 1, MaxParallel: 0, Deadline: simtime.Hour},
		{Work: 1, MaxParallel: 1, Deadline: 0},
		// Infeasible: 100 units of serial work, 2h deadline, max 2x.
		{Work: 100, MaxParallel: 2, Deadline: 2 * simtime.Hour, Curve: Linear{}},
	}
	for i, j := range bad {
		if j.Validate() == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestPlanTargetsCheapSlots(t *testing.T) {
	// Hours 2 and 3 are clean: a 4-unit linear job (max 2) should run
	// 2 CPUs in each clean hour and nothing elsewhere.
	cis := cisOver([]float64{900, 900, 50, 60, 900, 900, 900, 900})
	job := ElasticJob{
		Arrival: 0, Work: 4, MaxParallel: 2,
		Deadline: 8 * simtime.Hour, Curve: Linear{},
	}
	plan, err := PlanJob(job, cis)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Allocs) != 2 {
		t.Fatalf("plan = %+v", plan.Allocs)
	}
	for _, a := range plan.Allocs {
		if a.Slot != 2 && a.Slot != 3 {
			t.Errorf("allocated dirty slot %d", a.Slot)
		}
		if a.CPUs != 2 {
			t.Errorf("slot %d CPUs = %d", a.Slot, a.CPUs)
		}
	}
	if plan.CPUHours() != 4 {
		t.Errorf("cpu hours = %v", plan.CPUHours())
	}
	if plan.Completion(0) != simtime.Time(4*simtime.Hour) {
		t.Errorf("completion = %v", plan.Completion(0))
	}
}

func TestPlanRespectsDiminishingReturns(t *testing.T) {
	// With Amdahl(0.5) the second CPU adds only 1/3 throughput: when a
	// moderately clean slot exists, spreading beats piling into the
	// single cleanest slot.
	cis := cisOver([]float64{100, 120, 900, 900, 900, 900, 900, 900})
	job := ElasticJob{
		Arrival: 0, Work: 2, MaxParallel: 8,
		Deadline: 8 * simtime.Hour, Curve: Amdahl{Parallel: 0.5},
	}
	plan, err := PlanJob(job, cis)
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]int{}
	for _, a := range plan.Allocs {
		used[a.Slot] = a.CPUs
	}
	if used[0] == 0 || used[1] == 0 {
		t.Errorf("both clean slots should be used: %+v", plan.Allocs)
	}
	if used[2] != 0 {
		t.Errorf("dirty slot used: %+v", plan.Allocs)
	}
}

func TestPlanCoversWork(t *testing.T) {
	cis := cisOver(carbon.RegionSAAU.Generate(24*4, 1).Values())
	for _, curve := range []SpeedupCurve{Linear{}, Amdahl{Parallel: 0.9}, Amdahl{Parallel: 0.5}} {
		job := ElasticJob{
			Arrival: 90, Work: 10, MaxParallel: 6,
			Deadline: 36 * simtime.Hour, Curve: curve,
		}
		plan, err := PlanJob(job, cis)
		if err != nil {
			t.Fatal(err)
		}
		var done float64
		for _, a := range plan.Allocs {
			done += curve.Throughput(a.CPUs)
		}
		if done < job.Work-1e-9 {
			t.Errorf("%T: plan does %v of %v work", curve, done, job.Work)
		}
		// At most one marginal overshoot.
		if done > job.Work+curve.Throughput(job.MaxParallel) {
			t.Errorf("%T: excessive overshoot %v", curve, done)
		}
	}
}

func TestScalerNeverDirtierThanStatic(t *testing.T) {
	// The greedy plan's carbon is bounded by both static baselines on
	// any trace (it can always imitate them).
	tr := carbon.RegionSAAU.Generate(24*4, 2)
	cis := carbon.NewPerfectService(tr)
	job := ElasticJob{
		Arrival: 0, Work: 12, MaxParallel: 4,
		Deadline: 48 * simtime.Hour, Curve: Linear{},
	}
	plan, err := PlanJob(job, cis)
	if err != nil {
		t.Fatal(err)
	}
	const kw = 0.01
	planC := plan.Carbon(tr, kw)
	for _, k := range []int{1, 4} {
		static, err := StaticPlan(job, k)
		if err != nil {
			t.Fatal(err)
		}
		if c := static.Carbon(tr, kw); planC > c+1e-9 {
			t.Errorf("scaler %v dirtier than static-%d %v", planC, k, c)
		}
	}
}

func TestStaticPlan(t *testing.T) {
	job := ElasticJob{Arrival: 0, Work: 4, MaxParallel: 4, Deadline: 24 * simtime.Hour, Curve: Linear{}}
	p1, err := StaticPlan(job, 1)
	if err != nil || len(p1.Allocs) != 4 || p1.CPUHours() != 4 {
		t.Errorf("static-1 = %+v, %v", p1, err)
	}
	p4, err := StaticPlan(job, 4)
	if err != nil || len(p4.Allocs) != 1 || p4.CPUHours() != 4 {
		t.Errorf("static-4 = %+v, %v", p4, err)
	}
	if _, err := StaticPlan(job, 9); err == nil {
		t.Error("k beyond max should error")
	}
	if _, err := StaticPlan(ElasticJob{}, 1); err == nil {
		t.Error("invalid job should error")
	}
}

func TestAmdahlCostsMoreCPUHours(t *testing.T) {
	// Scaling wide with Amdahl burns more CPU-hours than serial — the
	// energy/carbon tension CarbonScaler navigates.
	job := ElasticJob{Arrival: 0, Work: 6, MaxParallel: 8, Deadline: 48 * simtime.Hour, Curve: Amdahl{Parallel: 0.9}}
	cis := cisOver([]float64{10, 900, 900, 900, 900, 900, 900, 900,
		900, 900, 900, 900, 900, 900, 900, 900,
		900, 900, 900, 900, 900, 900, 900, 900,
		900, 900, 900, 900, 900, 900, 900, 900,
		900, 900, 900, 900, 900, 900, 900, 900,
		900, 900, 900, 900, 900, 900, 900, 900})
	plan, err := PlanJob(job, cis)
	if err != nil {
		t.Fatal(err)
	}
	serial, _ := StaticPlan(job, 1)
	if plan.CPUHours() <= serial.CPUHours() {
		t.Errorf("wide plan should burn more CPU·h: %v vs %v", plan.CPUHours(), serial.CPUHours())
	}
}

func TestEmptyPlanCompletion(t *testing.T) {
	var p Plan
	if p.Completion(500) != 500 {
		t.Error("empty plan completes at arrival")
	}
}
