// Package scaling implements carbon-aware *demand regulation* — the
// other carbon-saving modality the paper's conclusion defers to future
// work ("we will focus on other carbon-saving modalities, such as
// scaling") and its related work discusses as CarbonScaler: instead of
// only shifting a job in time, an elastic job changes its parallelism
// over time, running wide in clean hours and narrow (or not at all) in
// dirty ones.
//
// The planner is the greedy marginal-allocation algorithm: repeatedly buy
// the cheapest next unit of throughput, where a slot's price is
// CI(slot) / marginal-speedup. For concave speedup curves the marginal
// throughput per slot is non-increasing, so the greedy plan matches the
// continuous-relaxation optimum.
package scaling

import (
	"container/heap"
	"fmt"

	"github.com/carbonsched/gaia/internal/carbon"
	"github.com/carbonsched/gaia/internal/simtime"
)

// SpeedupCurve maps parallelism to throughput in work-units/hour, with
// Throughput(1) == 1 by convention (one CPU does one unit of serial work
// per hour).
type SpeedupCurve interface {
	Throughput(k int) float64
}

// Amdahl is the classic speedup law: a Parallel fraction of the work
// scales perfectly, the rest is serial.
type Amdahl struct {
	// Parallel is the parallelizable fraction in [0, 1].
	Parallel float64
}

// Throughput implements SpeedupCurve.
func (a Amdahl) Throughput(k int) float64 {
	if k <= 0 {
		return 0
	}
	return 1 / ((1 - a.Parallel) + a.Parallel/float64(k))
}

// Linear is the embarrassingly-parallel limit: s(k) = k.
type Linear struct{}

// Throughput implements SpeedupCurve.
func (Linear) Throughput(k int) float64 {
	if k <= 0 {
		return 0
	}
	return float64(k)
}

// ElasticJob is a malleable batch job: Work serial CPU-hours that may run
// at any parallelism up to MaxParallel, with diminishing returns given by
// Curve.
type ElasticJob struct {
	Arrival simtime.Time
	// Work is the job volume in serial CPU-hours (time at k=1).
	Work float64
	// MaxParallel caps the per-slot allocation.
	MaxParallel int
	// Curve is the speedup law; nil means Amdahl{0.9}.
	Curve SpeedupCurve
	// Deadline bounds completion at Arrival+Deadline.
	Deadline simtime.Duration
}

func (j ElasticJob) curve() SpeedupCurve {
	if j.Curve == nil {
		return Amdahl{Parallel: 0.9}
	}
	return j.Curve
}

// Validate reports whether the job is well-formed and feasible at maximum
// parallelism within its deadline.
func (j ElasticJob) Validate() error {
	if j.Work <= 0 {
		return fmt.Errorf("scaling: work %v must be positive", j.Work)
	}
	if j.MaxParallel < 1 {
		return fmt.Errorf("scaling: max parallelism %d must be >= 1", j.MaxParallel)
	}
	if j.Deadline <= 0 {
		return fmt.Errorf("scaling: deadline %v must be positive", j.Deadline)
	}
	slots := float64(j.Deadline / simtime.Hour)
	if capacity := j.curve().Throughput(j.MaxParallel) * slots; capacity < j.Work {
		return fmt.Errorf("scaling: infeasible: %v work > %v capacity within deadline", j.Work, capacity)
	}
	return nil
}

// Alloc is one hour-slot's parallelism in a plan.
type Alloc struct {
	Slot int // hour index
	CPUs int
}

// Plan is a per-hour parallelism schedule.
type Plan struct {
	Allocs []Alloc // ascending by slot, zero-CPU slots omitted
}

// CPUHours returns the plan's total resource consumption.
func (p Plan) CPUHours() float64 {
	var total float64
	for _, a := range p.Allocs {
		total += float64(a.CPUs)
	}
	return total
}

// Completion returns the end of the last active slot, or arrival when the
// plan is empty.
func (p Plan) Completion(arrival simtime.Time) simtime.Time {
	if len(p.Allocs) == 0 {
		return arrival
	}
	last := p.Allocs[len(p.Allocs)-1].Slot
	return simtime.Time(simtime.Duration(last+1) * simtime.Hour)
}

// Carbon returns the plan's emissions in grams given the realized trace
// and per-CPU power in kW.
func (p Plan) Carbon(tr *carbon.Trace, kwPerCPU float64) float64 {
	var g float64
	for _, a := range p.Allocs {
		iv := simtime.Interval{
			Start: simtime.Time(simtime.Duration(a.Slot) * simtime.Hour),
			End:   simtime.Time(simtime.Duration(a.Slot+1) * simtime.Hour),
		}
		g += tr.Integral(iv) * kwPerCPU * float64(a.CPUs)
	}
	return g
}

// slotState tracks a slot's current allocation in the greedy heap.
type slotState struct {
	slot  int
	ci    float64
	cpus  int
	index int
}

type slotHeap struct {
	items []*slotState
	curve SpeedupCurve
	max   int
}

// price is the marginal carbon per unit of added throughput.
func (h *slotHeap) price(s *slotState) float64 {
	delta := h.curve.Throughput(s.cpus+1) - h.curve.Throughput(s.cpus)
	if delta <= 0 {
		return 0
	}
	return s.ci / delta
}

func (h *slotHeap) Len() int { return len(h.items) }
func (h *slotHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	pa, pb := h.price(a), h.price(b)
	if pa != pb {
		return pa < pb
	}
	return a.slot < b.slot // earlier slot on ties: shorter completion
}
func (h *slotHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}
func (h *slotHeap) Push(x any) {
	s := x.(*slotState)
	s.index = len(h.items)
	h.items = append(h.items, s)
}
func (h *slotHeap) Pop() any {
	old := h.items
	n := len(old)
	s := old[n-1]
	h.items = old[:n-1]
	return s
}

// PlanJob builds the carbon-minimal parallelism schedule for the job as
// seen at its arrival, buying marginal throughput in the cheapest
// (CI/marginal-speedup) slots until the work fits. The final marginal
// unit may overshoot slightly, exactly as a real malleable job finishes
// mid-slot.
func PlanJob(job ElasticJob, cis carbon.Service) (Plan, error) {
	if err := job.Validate(); err != nil {
		return Plan{}, err
	}
	curve := job.curve()
	firstSlot := job.Arrival.HourIndex()
	lastSlot := (job.Arrival.Add(job.Deadline) - 1).HourIndex()

	h := &slotHeap{curve: curve, max: job.MaxParallel}
	for s := firstSlot; s <= lastSlot; s++ {
		slotStart := simtime.Time(simtime.Duration(s) * simtime.Hour)
		ci := cis.ForecastIntegral(job.Arrival, simtime.Interval{
			Start: slotStart, End: slotStart.Add(simtime.Hour),
		})
		heap.Push(h, &slotState{slot: s, ci: ci})
	}

	remaining := job.Work
	cpus := make(map[int]int)
	for remaining > 1e-12 && h.Len() > 0 {
		s := h.items[0]
		delta := curve.Throughput(s.cpus+1) - curve.Throughput(s.cpus)
		s.cpus++
		cpus[s.slot] = s.cpus
		remaining -= delta
		if s.cpus >= job.MaxParallel {
			heap.Pop(h)
		} else {
			heap.Fix(h, s.index)
		}
	}
	if remaining > 1e-12 {
		return Plan{}, fmt.Errorf("scaling: internal: %v work unplaced", remaining)
	}

	var plan Plan
	for s := firstSlot; s <= lastSlot; s++ {
		if k := cpus[s]; k > 0 {
			plan.Allocs = append(plan.Allocs, Alloc{Slot: s, CPUs: k})
		}
	}
	return plan, nil
}

// StaticPlan runs the job at constant parallelism k from arrival until
// the work completes (the carbon-agnostic baseline; k=1 is the paper's
// uninterruptible single-width execution).
func StaticPlan(job ElasticJob, k int) (Plan, error) {
	if err := job.Validate(); err != nil {
		return Plan{}, err
	}
	if k < 1 || k > job.MaxParallel {
		return Plan{}, fmt.Errorf("scaling: static parallelism %d out of [1, %d]", k, job.MaxParallel)
	}
	throughput := job.curve().Throughput(k)
	remaining := job.Work
	var plan Plan
	slot := job.Arrival.HourIndex()
	for remaining > 1e-12 {
		plan.Allocs = append(plan.Allocs, Alloc{Slot: slot, CPUs: k})
		remaining -= throughput
		slot++
	}
	return plan, nil
}
