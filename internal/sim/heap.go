package sim

// 4-ary index min-heap ordered by Engine.before. It serves two roles: the
// whole queue when the engine runs in QueueHeap mode (the differential
// reference), and the wheel's overflow level for events beyond the outermost
// wheel window. Hole-based sifts move each displaced element once instead of
// swapping pairs, the wide fan-out shortens the sift-down walk, and the
// monomorphic comparisons inline. Because the event order is strict, the pop
// sequence is bit-identical to the *Event heap it replaced.

const heapArity = 4

func (e *Engine) heapPush(h *[]int32, idx int32) {
	a := append(*h, idx)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !e.before(idx, a[p]) {
			break
		}
		a[i] = a[p]
		i = p
	}
	a[i] = idx
	*h = a
}

func (e *Engine) heapPop(h *[]int32) int32 {
	a := *h
	top := a[0]
	n := len(a) - 1
	last := a[n]
	a = a[:n]
	*h = a
	if n == 0 {
		return top
	}
	// Sift the former tail down from the root: promote the smallest child
	// into the hole until the tail fits.
	i := 0
	for {
		c := heapArity*i + 1
		if c >= n {
			break
		}
		end := c + heapArity
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if e.before(a[j], a[m]) {
				m = j
			}
		}
		if !e.before(a[m], last) {
			break
		}
		a[i] = a[m]
		i = m
	}
	a[i] = last
	return top
}
