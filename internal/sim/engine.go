// Package sim is a minimal deterministic discrete-event engine. Events are
// callbacks scheduled at simulated instants; ties are broken first by an
// explicit priority class (so that, e.g., a finishing job releases its
// reserved units before a job starting at the same instant tries to claim
// them) and then by schedule order, making runs bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"

	"github.com/carbonsched/gaia/internal/simtime"
)

// Priority orders events that fire at the same instant: lower values run
// first.
type Priority int

// The scheduler's event classes, in same-instant execution order. Finish
// must precede Start so freed capacity is visible to jobs starting at the
// same minute; Evict precedes Start so a restarted job sees consistent
// state; Arrival runs last so a newly arrived job observes the
// post-transition cluster.
const (
	PriorityFinish Priority = iota
	PriorityEvict
	PriorityStart
	PriorityArrival
	PriorityLow
)

// Event is a scheduled callback. It is returned by Schedule so callers can
// cancel it (e.g. a planned carbon-aware start that was preempted by a
// work-conserving early start).
type Event struct {
	time     simtime.Time
	priority Priority
	seq      int64
	fn       func()
	canceled bool
	index    int // heap position, -1 when popped
}

// Time returns the instant the event fires at.
func (ev *Event) Time() simtime.Time { return ev.time }

// Cancel prevents the event from firing. Canceling an already-fired event
// is a no-op.
func (ev *Event) Cancel() { ev.canceled = true }

// Canceled reports whether Cancel was called.
func (ev *Event) Canceled() bool { return ev.canceled }

// Engine is the event loop. The zero value is not usable; call NewEngine.
type Engine struct {
	now      simtime.Time
	events   eventHeap
	seq      int64
	executed int64
}

// NewEngine creates an engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() simtime.Time { return e.now }

// Executed returns the number of events run so far (canceled events are
// not counted).
func (e *Engine) Executed() int64 { return e.executed }

// Pending returns the number of events still queued (including canceled
// ones not yet reaped).
func (e *Engine) Pending() int { return len(e.events) }

// Schedule enqueues fn to run at t with the given priority. It panics if t
// is in the past — schedulers deriving a start time must clamp to now
// themselves, and silently reordering history would corrupt accounting.
func (e *Engine) Schedule(t simtime.Time, p Priority, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	ev := &Event{time: t, priority: p, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for len(e.events) > 0 {
		e.step()
	}
}

// RunUntil executes events with time <= deadline, then advances the clock
// to deadline. Events scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline simtime.Time) {
	for len(e.events) > 0 && e.events[0].time <= deadline {
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

func (e *Engine) step() {
	ev := heap.Pop(&e.events).(*Event)
	e.now = ev.time
	if ev.canceled {
		return
	}
	e.executed++
	ev.fn()
}

// eventHeap implements container/heap ordered by (time, priority, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.time != b.time {
		return a.time < b.time
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
