// Package sim is a minimal deterministic discrete-event engine. Events are
// callbacks scheduled at simulated instants; ties are broken first by an
// explicit priority class (so that, e.g., a finishing job releases its
// reserved units before a job starting at the same instant tries to claim
// them) and then by schedule order, making runs bit-for-bit reproducible.
package sim

import (
	"fmt"

	"github.com/carbonsched/gaia/internal/simtime"
)

// Priority orders events that fire at the same instant: lower values run
// first.
type Priority int

// The scheduler's event classes, in same-instant execution order. Finish
// must precede Start so freed capacity is visible to jobs starting at the
// same minute; Evict precedes Start so a restarted job sees consistent
// state; Arrival runs last so a newly arrived job observes the
// post-transition cluster.
const (
	PriorityFinish Priority = iota
	PriorityEvict
	PriorityStart
	PriorityArrival
	PriorityLow
)

// Event is a scheduled callback. It is returned by Schedule so callers can
// cancel it (e.g. a planned carbon-aware start that was preempted by a
// work-conserving early start).
type Event struct {
	time     simtime.Time
	priority Priority
	seq      int64
	fn       func()
	canceled bool
}

// before is the engine's total event order: (time, priority, seq). seq is
// unique, so the order is strict and the execution sequence is
// independent of heap layout.
func (ev *Event) before(o *Event) bool {
	if ev.time != o.time {
		return ev.time < o.time
	}
	if ev.priority != o.priority {
		return ev.priority < o.priority
	}
	return ev.seq < o.seq
}

// Time returns the instant the event fires at.
func (ev *Event) Time() simtime.Time { return ev.time }

// Cancel prevents the event from firing. Canceling an already-fired event
// is a no-op.
func (ev *Event) Cancel() { ev.canceled = true }

// Canceled reports whether Cancel was called.
func (ev *Event) Canceled() bool { return ev.canceled }

// Engine is the event loop. The zero value is not usable; call NewEngine.
type Engine struct {
	now      simtime.Time
	events   eventHeap
	seq      int64
	executed int64
	// slab chunk-allocates events: one bump-pointer allocation per 256
	// Schedule calls instead of one per call. Popped events stay reachable
	// through their chunk until the whole chunk is dropped — engine
	// lifetimes are run-scoped, so the trade is bounded and worth it.
	slab []Event
	// stream holds pre-sorted events (ScheduleSorted) consumed in order
	// and merged with the heap at pop time. Feeding the known-sorted bulk
	// — a workload's arrivals — through the stream keeps the heap down to
	// the in-flight events, shortening every sift.
	stream    []*Event
	streamPos int
}

// NewEngine creates an engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() simtime.Time { return e.now }

// Executed returns the number of events run so far (canceled events are
// not counted).
func (e *Engine) Executed() int64 { return e.executed }

// Pending returns the number of events still queued (including canceled
// ones not yet reaped).
func (e *Engine) Pending() int { return len(e.events) + len(e.stream) - e.streamPos }

// Schedule enqueues fn to run at t with the given priority. It panics if t
// is in the past — schedulers deriving a start time must clamp to now
// themselves, and silently reordering history would corrupt accounting.
func (e *Engine) Schedule(t simtime.Time, p Priority, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	if len(e.slab) == 0 {
		e.slab = make([]Event, 256)
	}
	ev := &e.slab[0]
	e.slab = e.slab[1:]
	*ev = Event{time: t, priority: p, seq: e.seq, fn: fn}
	e.seq++
	e.events.push(ev)
	return ev
}

// ScheduleSorted enqueues fn like Schedule, but onto the engine's
// pre-sorted stream instead of the priority heap. Successive calls must
// be in non-decreasing (time, priority) order — the natural order of a
// workload trace's arrivals — and the engine merges stream and heap at
// each step, so execution order is exactly what Schedule would produce.
// It panics on an out-of-order call.
func (e *Engine) ScheduleSorted(t simtime.Time, p Priority, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	if len(e.slab) == 0 {
		e.slab = make([]Event, 256)
	}
	ev := &e.slab[0]
	e.slab = e.slab[1:]
	*ev = Event{time: t, priority: p, seq: e.seq, fn: fn}
	e.seq++
	if n := len(e.stream); n > 0 && ev.before(e.stream[n-1]) {
		panic(fmt.Sprintf("sim: ScheduleSorted out of order at %v", t))
	}
	e.stream = append(e.stream, ev)
	return ev
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Pending() > 0 {
		e.step()
	}
}

// RunUntil executes events with time <= deadline, then advances the clock
// to deadline. Events scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline simtime.Time) {
	for next := e.peek(); next != nil && next.time <= deadline; next = e.peek() {
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// peek returns the next event to fire without removing it, or nil.
func (e *Engine) peek() *Event {
	if e.streamPos >= len(e.stream) {
		if len(e.events) == 0 {
			return nil
		}
		return e.events[0]
	}
	if len(e.events) == 0 || e.stream[e.streamPos].before(e.events[0]) {
		return e.stream[e.streamPos]
	}
	return e.events[0]
}

func (e *Engine) step() {
	var ev *Event
	if e.streamPos < len(e.stream) &&
		(len(e.events) == 0 || e.stream[e.streamPos].before(e.events[0])) {
		ev = e.stream[e.streamPos]
		e.stream[e.streamPos] = nil
		e.streamPos++
		if e.streamPos == len(e.stream) {
			e.stream, e.streamPos = e.stream[:0], 0
		}
	} else {
		ev = e.events.pop()
	}
	e.now = ev.time
	if ev.canceled {
		return
	}
	e.executed++
	ev.fn()
}

// eventHeap is a hand-rolled 4-ary min-heap ordered by Event.before. It
// replaces container/heap on the engine's hottest path: hole-based sifts
// move each displaced element once instead of swapping pairs, the wider
// fan-out shortens the sift-down walk, and the monomorphic comparisons
// inline. Because the event order is strict, the pop sequence is
// bit-identical to the container/heap implementation it replaced.
type eventHeap []*Event

const heapArity = 4

func (h *eventHeap) push(ev *Event) {
	a := append(*h, ev)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !ev.before(a[p]) {
			break
		}
		a[i] = a[p]
		i = p
	}
	a[i] = ev
	*h = a
}

func (h *eventHeap) pop() *Event {
	a := *h
	top := a[0]
	n := len(a) - 1
	last := a[n]
	a[n] = nil
	a = a[:n]
	*h = a
	if n == 0 {
		return top
	}
	// Sift the former tail down from the root: promote the smallest child
	// into the hole until the tail fits.
	i := 0
	for {
		c := heapArity*i + 1
		if c >= n {
			break
		}
		end := c + heapArity
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if a[j].before(a[m]) {
				m = j
			}
		}
		if !a[m].before(last) {
			break
		}
		a[i] = a[m]
		i = m
	}
	a[i] = last
	return top
}
