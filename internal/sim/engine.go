// Package sim is a minimal deterministic discrete-event engine. Events are
// callbacks scheduled at simulated instants; ties are broken first by an
// explicit priority class (so that, e.g., a finishing job releases its
// reserved units before a job starting at the same instant tries to claim
// them) and then by schedule order, making runs bit-for-bit reproducible.
package sim

import (
	"fmt"

	"github.com/carbonsched/gaia/internal/simtime"
)

// Priority orders events that fire at the same instant: lower values run
// first.
type Priority int

// The scheduler's event classes, in same-instant execution order. Finish
// must precede Start so freed capacity is visible to jobs starting at the
// same minute; Evict precedes Start so a restarted job sees consistent
// state; Arrival runs last so a newly arrived job observes the
// post-transition cluster.
const (
	PriorityFinish Priority = iota
	PriorityEvict
	PriorityStart
	PriorityArrival
	PriorityLow
)

// Action is a pre-allocated event callback: scheduling one stores an
// interface value instead of allocating a closure, so callers that pool
// their action records (the core scheduler's per-job state) run the whole
// event loop allocation-free.
type Action interface {
	Fire()
}

// Event is a scheduled callback. It is returned by Schedule so callers can
// cancel it (e.g. a planned carbon-aware start that was preempted by a
// work-conserving early start).
type Event struct {
	time     simtime.Time
	priority Priority
	seq      int64
	fn       func()
	act      Action
	canceled bool
}

// before is the engine's total event order: (time, priority, seq). seq is
// unique, so the order is strict and the execution sequence is
// independent of heap layout.
func (ev *Event) before(o *Event) bool {
	if ev.time != o.time {
		return ev.time < o.time
	}
	if ev.priority != o.priority {
		return ev.priority < o.priority
	}
	return ev.seq < o.seq
}

// Time returns the instant the event fires at.
func (ev *Event) Time() simtime.Time { return ev.time }

// Cancel prevents the event from firing. Canceling an already-fired event
// is a no-op.
func (ev *Event) Cancel() { ev.canceled = true }

// Canceled reports whether Cancel was called.
func (ev *Event) Canceled() bool { return ev.canceled }

// Engine is the event loop. The zero value is not usable; call NewEngine.
type Engine struct {
	now      simtime.Time
	events   eventHeap
	seq      int64
	executed int64
	// slab chunk-allocates events: one bump-pointer allocation per 256
	// Schedule calls instead of one per call. Popped events stay reachable
	// through their chunk until the whole chunk is dropped — engine
	// lifetimes are run-scoped, so the trade is bounded and worth it.
	slab []Event
	// stream holds pre-sorted events (ScheduleSorted) consumed in order
	// and merged with the heap at pop time. Feeding the known-sorted bulk
	// — a workload's arrivals — through the stream keeps the heap down to
	// the in-flight events, shortening every sift.
	stream    []*Event
	streamPos int
	// source is the zero-materialization variant of the stream: events are
	// described by index-addressed callbacks and never exist as Event
	// records at all (see SetSource).
	source srcState
	// free holds fired events for reuse when recycling is enabled,
	// bounding event storage by the in-flight count instead of the total
	// event count (see SetRecycle).
	free []*Event
	// recycle gates the freelist: reusing an Event invalidates pointers
	// callers may still hold after it fires, so it is opt-in.
	recycle bool
	// Interrupt probe (SetInterrupt): Run polls check every `every`
	// executed events and stops when it returns an error.
	interruptEvery int64
	interruptCheck func() error
	interruptNext  int64
	interruptErr   error
}

// srcState is the engine's pull-based sorted event source.
type srcState struct {
	n        int
	pos      int
	timeAt   func(i int) simtime.Time
	priority Priority
	fire     func(i int)
}

// NewEngine creates an engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() simtime.Time { return e.now }

// Executed returns the number of events run so far (canceled events are
// not counted).
func (e *Engine) Executed() int64 { return e.executed }

// Pending returns the number of events still queued (including canceled
// ones not yet reaped).
func (e *Engine) Pending() int {
	return len(e.events) + len(e.stream) - e.streamPos + e.source.n - e.source.pos
}

// SetRecycle enables event reuse: once a scheduled event has fired (or
// been popped canceled), its storage goes onto a freelist for the next
// Schedule call, so a long run allocates events proportional to its peak
// in-flight count rather than its total event count. Callers must not
// retain *Event pointers past the event's firing — Cancel on a fired
// event could cancel an unrelated reused one — which the core scheduler
// guarantees by construction.
func (e *Engine) SetRecycle(v bool) { e.recycle = v }

// SetSource installs a pull-based pre-sorted event source: n events whose
// times are timeAt(0..n-1) in non-decreasing order, all at the given
// priority, fired via fire(i). The engine merges the source with the heap
// (and stream) at each step without ever materializing Event records, so
// a million-arrival trace costs zero event storage. Source events win
// ties against heap events at the same (time, priority) — exactly the
// order ScheduleSorted produces, since its events are enqueued (and thus
// sequence-numbered) before any dynamic event. Source events cannot be
// canceled. Calling SetSource replaces any previous source.
func (e *Engine) SetSource(n int, timeAt func(i int) simtime.Time, p Priority, fire func(i int)) {
	if n > 0 && (timeAt == nil || fire == nil) {
		panic("sim: SetSource needs timeAt and fire callbacks")
	}
	e.source = srcState{n: n, timeAt: timeAt, priority: p, fire: fire}
}

// newEvent takes an event record from the freelist or the slab.
func (e *Engine) newEvent() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	if len(e.slab) == 0 {
		e.slab = make([]Event, 256)
	}
	ev := &e.slab[0]
	e.slab = e.slab[1:]
	return ev
}

// retire returns a popped event to the freelist when recycling is on.
func (e *Engine) retire(ev *Event) {
	if e.recycle {
		ev.fn, ev.act = nil, nil
		e.free = append(e.free, ev)
	}
}

// Schedule enqueues fn to run at t with the given priority. It panics if t
// is in the past — schedulers deriving a start time must clamp to now
// themselves, and silently reordering history would corrupt accounting.
func (e *Engine) Schedule(t simtime.Time, p Priority, fn func()) *Event {
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	ev := e.schedule(t, p)
	ev.fn = fn
	return ev
}

// ScheduleAction is Schedule for a pre-allocated Action — no closure is
// created, so pooled action records make scheduling allocation-free.
func (e *Engine) ScheduleAction(t simtime.Time, p Priority, a Action) *Event {
	if a == nil {
		panic("sim: scheduling nil action")
	}
	ev := e.schedule(t, p)
	ev.act = a
	return ev
}

// schedule allocates and enqueues a callback-less event at (t, p).
func (e *Engine) schedule(t simtime.Time, p Priority) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	ev := e.newEvent()
	*ev = Event{time: t, priority: p, seq: e.seq}
	e.seq++
	e.events.push(ev)
	return ev
}

// ScheduleSorted enqueues fn like Schedule, but onto the engine's
// pre-sorted stream instead of the priority heap. Successive calls must
// be in non-decreasing (time, priority) order — the natural order of a
// workload trace's arrivals — and the engine merges stream and heap at
// each step, so execution order is exactly what Schedule would produce.
// It panics on an out-of-order call.
func (e *Engine) ScheduleSorted(t simtime.Time, p Priority, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	ev := e.newEvent()
	*ev = Event{time: t, priority: p, seq: e.seq, fn: fn}
	e.seq++
	if n := len(e.stream); n > 0 && ev.before(e.stream[n-1]) {
		panic(fmt.Sprintf("sim: ScheduleSorted out of order at %v", t))
	}
	e.stream = append(e.stream, ev)
	return ev
}

// SetInterrupt installs a cancellation probe: Run polls check after every
// `every` executed events (minimum 1) and abandons the remaining events
// the first time it returns a non-nil error, which Err then reports. The
// probe exists for long simulations driven by an online service — a
// canceled request must stop costing CPU — and is deliberately coarse:
// probing between events keeps the event loop allocation- and
// branch-cheap, and an uncanceled run executes exactly the same event
// sequence as one with no probe installed. Pass a nil check to remove the
// probe.
func (e *Engine) SetInterrupt(every int64, check func() error) {
	if every < 1 {
		every = 1
	}
	e.interruptEvery = every
	e.interruptCheck = check
	e.interruptNext = e.executed + every
}

// Err returns the interrupt error that stopped Run early, or nil for a
// run that drained its event queue.
func (e *Engine) Err() error { return e.interruptErr }

// Run executes events until the queue is empty, or until an installed
// interrupt probe reports an error (see SetInterrupt).
func (e *Engine) Run() {
	for e.Pending() > 0 {
		if e.interruptCheck != nil && e.executed >= e.interruptNext {
			if err := e.interruptCheck(); err != nil {
				e.interruptErr = err
				return
			}
			e.interruptNext = e.executed + e.interruptEvery
		}
		e.step()
	}
}

// RunUntil executes events with time <= deadline, then advances the clock
// to deadline. Events scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline simtime.Time) {
	for t, ok := e.nextTime(); ok && t <= deadline; t, ok = e.nextTime() {
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// nextTime returns the instant of the next event to fire, if any.
func (e *Engine) nextTime() (simtime.Time, bool) {
	var t simtime.Time
	ok := false
	if e.streamPos < len(e.stream) {
		t, ok = e.stream[e.streamPos].time, true
	}
	if len(e.events) > 0 && (!ok || e.events[0].time < t) {
		t, ok = e.events[0].time, true
	}
	if s := &e.source; s.pos < s.n {
		if st := s.timeAt(s.pos); !ok || st < t {
			t, ok = st, true
		}
	}
	return t, ok
}

func (e *Engine) step() {
	// Candidate from the materialized queues: stream merged with heap by
	// the strict (time, priority, seq) order.
	var ev *Event
	fromStream := false
	if e.streamPos < len(e.stream) &&
		(len(e.events) == 0 || e.stream[e.streamPos].before(e.events[0])) {
		ev = e.stream[e.streamPos]
		fromStream = true
	} else if len(e.events) > 0 {
		ev = e.events[0]
	}
	// The source wins ties against the materialized queues: its events
	// are, by construction, enqueued before any dynamic event, so they
	// carry the smaller (conceptual) sequence numbers.
	if s := &e.source; s.pos < s.n {
		t := s.timeAt(s.pos)
		if ev == nil || t < ev.time || (t == ev.time && s.priority <= ev.priority) {
			if t < e.now {
				panic(fmt.Sprintf("sim: source event at %v before now %v", t, e.now))
			}
			i := s.pos
			s.pos++
			e.now = t
			e.executed++
			s.fire(i)
			return
		}
	}
	if fromStream {
		e.stream[e.streamPos] = nil
		e.streamPos++
		if e.streamPos == len(e.stream) {
			e.stream, e.streamPos = e.stream[:0], 0
		}
	} else {
		ev = e.events.pop()
	}
	e.now = ev.time
	if ev.canceled {
		e.retire(ev)
		return
	}
	e.executed++
	// Capture the callback before retiring: an event scheduled from
	// inside the callback may legitimately reuse this very record.
	fn, act := ev.fn, ev.act
	e.retire(ev)
	if fn != nil {
		fn()
	} else {
		act.Fire()
	}
}

// eventHeap is a hand-rolled 4-ary min-heap ordered by Event.before. It
// replaces container/heap on the engine's hottest path: hole-based sifts
// move each displaced element once instead of swapping pairs, the wider
// fan-out shortens the sift-down walk, and the monomorphic comparisons
// inline. Because the event order is strict, the pop sequence is
// bit-identical to the container/heap implementation it replaced.
type eventHeap []*Event

const heapArity = 4

func (h *eventHeap) push(ev *Event) {
	a := append(*h, ev)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !ev.before(a[p]) {
			break
		}
		a[i] = a[p]
		i = p
	}
	a[i] = ev
	*h = a
}

func (h *eventHeap) pop() *Event {
	a := *h
	top := a[0]
	n := len(a) - 1
	last := a[n]
	a[n] = nil
	a = a[:n]
	*h = a
	if n == 0 {
		return top
	}
	// Sift the former tail down from the root: promote the smallest child
	// into the hole until the tail fits.
	i := 0
	for {
		c := heapArity*i + 1
		if c >= n {
			break
		}
		end := c + heapArity
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if a[j].before(a[m]) {
				m = j
			}
		}
		if !a[m].before(last) {
			break
		}
		a[i] = a[m]
		i = m
	}
	a[i] = last
	return top
}
